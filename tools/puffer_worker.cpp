// puffer_worker: remote trial evaluator for distributed exploration.
//
// Loads the same benchmark as the coordinator (structure verified by a
// design key in the handshake), attaches over a Unix-domain or TCP
// socket, then evaluates trial assignments with the identical in-process
// session code and reports the deterministic result fields back. Holds
// no exploration state: killing a worker mid-trial only costs the
// in-flight evaluation, which the coordinator reassigns.
//
// Usage:
//   puffer_worker --connect /tmp/puffer.sock --bench OR1200 [--scale 64]
//   puffer_worker --connect host:port --aux design.aux
//
// Options:
//   --name NAME             identity in logs and the handshake
//   --gen-seed N            synthetic benchmark generator seed override
//   --connect-timeout S     retry window for the initial connect (60)
//   --reconnect-timeout S   reattach window after a coordinator restart
//                           (0 = exit on first EOF)
//   --quiet                 warnings and errors only
#include <cstdio>
#include <cstring>
#include <string>

#include "common/cli.h"
#include "common/logger.h"
#include "io/bookshelf.h"
#include "orchestrate/worker.h"

namespace {

const std::string kUsage =
    "usage: puffer_worker --connect ADDR\n"
    "       (--aux design.aux | --bench NAME [--scale N])\n"
    "       [--name NAME] [--gen-seed N] [--connect-timeout S]\n"
    "       [--reconnect-timeout S] [--quiet] [--help] [--version]\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace puffer;
  handle_help_version(argc, argv, "puffer_worker", kUsage);

  std::string aux, bench;
  int scale = 64;
  std::uint64_t gen_seed = 0;
  WorkerConfig worker;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage_error(kUsage, arg + " needs a value");
      return argv[++i];
    };
    if (arg == "--connect") worker.connect = next();
    else if (arg == "--aux") aux = next();
    else if (arg == "--bench") bench = next();
    else if (arg == "--scale") scale = std::atoi(next());
    else if (arg == "--name") worker.name = next();
    else if (arg == "--gen-seed") gen_seed = std::strtoull(next(), nullptr, 10);
    else if (arg == "--connect-timeout")
      worker.connect_timeout_s = std::atof(next());
    else if (arg == "--reconnect-timeout")
      worker.reconnect_timeout_s = std::atof(next());
    else if (arg == "--quiet") Logger::instance().set_level(LogLevel::kWarn);
    else {
      usage_error(kUsage, "unknown option " + arg);
    }
  }
  if (worker.connect.empty() || aux.empty() == bench.empty()) {
    usage_error(kUsage,
                "need --connect and exactly one of --aux / --bench");
  }

  Design design;
  try {
    if (!aux.empty()) {
      design = read_bookshelf(aux);
    } else {
      SyntheticSpec spec = table1_spec(bench, scale);
      if (gen_seed != 0) spec.seed = gen_seed;
      design = generate_synthetic(spec);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "failed to load design: %s\n", e.what());
    return 1;
  }

  try {
    ExperimentConfig base;
    return run_worker(design, base, worker);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "worker failed: %s\n", e.what());
    return 1;
  }
}
