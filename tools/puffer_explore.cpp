// puffer_explore: concurrent, resumable strategy exploration.
//
// Runs the trial orchestrator (src/orchestrate/) on a benchmark: one
// shared global-placement prefix is checkpointed, then K concurrent
// sessions fork from it to evaluate TPE-suggested strategies, with
// optional median-rule early-stop pruning and a crash-safe trial
// journal. Re-running with --resume replays completed trials from the
// journal instead of re-evaluating them; the final best strategy is
// bit-identical to an uninterrupted run.
//
// Usage:
//   puffer_explore --bench OR1200 [--scale 64] [options]
//   puffer_explore --aux design.aux [options]
//
// Options:
//   --trials N           trial budget (default 16)
//   --concurrency K      concurrent sessions (default 2)
//   --batch B            TPE statistical batch size (default 4); the
//                        result depends on B but never on K
//   --early-stop N       stop after N non-improving trials
//   --fork-overflow F    prefix fork point (default 0.45)
//   --prune              enable median-rule early-stop pruning
//   --checkpoint-dir DIR where the prefix checkpoint lives
//   --journal FILE       crash-safe trial journal (JSONL)
//   --resume             replay the journal / reuse the checkpoint
//   --seed N             exploration seed (default 1234)
//   --save-config FILE   write the best strategy as a config file
//   --csv FILE           write per-trial observations as CSV
//   --quiet              warnings and errors only
//
// Distributed mode (coordinator/worker over the binary wire protocol;
// bit-identical to the in-process scheduler for any worker count):
//   --listen ADDR        run as coordinator; ADDR is a Unix-socket path
//                        (contains '/') or host:port / :port for TCP
//   --min-workers N      wait for N workers before the first batch (1)
//   --attach-timeout S   worker-attach window before the in-process
//                        fallback kicks in (120)
//   --workers N          convenience: spawn N local puffer_worker
//                        children on a private Unix socket
//   --connect ADDR       run as a worker attached to ADDR (same as the
//                        puffer_worker binary)
#include <libgen.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/logger.h"
#include "core/config_io.h"
#include "common/cli.h"
#include "io/bookshelf.h"
#include "orchestrate/coordinator.h"
#include "orchestrate/orchestrator.h"
#include "orchestrate/worker.h"

namespace {

const std::string kUsage =
    "usage: puffer_explore (--aux design.aux | --bench NAME [--scale N])\n"
    "       [--trials N] [--concurrency K] [--batch B] [--early-stop N]\n"
    "       [--fork-overflow F] [--prune] [--checkpoint-dir DIR]\n"
    "       [--journal FILE] [--resume] [--seed N]\n"
    "       [--save-config FILE] [--csv FILE] [--quiet]\n"
    "       [--listen ADDR [--min-workers N] [--attach-timeout S]]\n"
    "       [--workers N] [--connect ADDR] [--help] [--version]\n";

// Path of the puffer_worker binary, assumed to sit next to this one.
std::string sibling_worker_path() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "puffer_worker";
  buf[n] = '\0';
  return std::string(::dirname(buf)) + "/puffer_worker";
}

// Spawn a local puffer_worker child attached to `address`, loading the
// same benchmark. Returns the child pid (or -1 on fork failure).
pid_t spawn_worker(const std::string& address, const std::string& aux,
                   const std::string& bench, int scale,
                   std::uint64_t gen_seed, int index) {
  const std::string exe = sibling_worker_path();
  const std::string scale_s = std::to_string(scale);
  const std::string seed_s = std::to_string(gen_seed);
  const std::string name = "local-worker-" + std::to_string(index);
  std::vector<const char*> args = {exe.c_str(), "--connect", address.c_str(),
                                   "--name", name.c_str()};
  if (!aux.empty()) {
    args.insert(args.end(), {"--aux", aux.c_str()});
  } else {
    args.insert(args.end(), {"--bench", bench.c_str(), "--scale",
                             scale_s.c_str()});
    if (gen_seed != 0) args.insert(args.end(), {"--gen-seed", seed_s.c_str()});
  }
  args.push_back("--quiet");
  args.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execv(exe.c_str(), const_cast<char* const*>(args.data()));
    std::fprintf(stderr, "exec %s failed: %s\n", exe.c_str(),
                 std::strerror(errno));
    ::_exit(127);
  }
  return pid;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace puffer;
  handle_help_version(argc, argv, "puffer_explore", kUsage);

  std::string aux, bench, save_config_path, csv_path;
  int scale = 64;
  std::uint64_t gen_seed = 0;
  OrchestratorConfig orch;
  CoordinatorConfig coord;
  std::string connect_addr;
  int spawn_workers = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage_error(kUsage, arg + " needs a value");
      return argv[++i];
    };
    if (arg == "--aux") aux = next();
    else if (arg == "--bench") bench = next();
    else if (arg == "--scale") scale = std::atoi(next());
    else if (arg == "--trials") orch.trials = std::atoi(next());
    else if (arg == "--concurrency") orch.concurrency = std::atoi(next());
    else if (arg == "--batch") orch.batch_size = std::atoi(next());
    else if (arg == "--early-stop") orch.early_stop = std::atoi(next());
    else if (arg == "--fork-overflow") orch.fork_overflow = std::atof(next());
    else if (arg == "--prune") orch.prune.enabled = true;
    else if (arg == "--checkpoint-dir") orch.checkpoint_dir = next();
    else if (arg == "--journal") orch.journal_path = next();
    else if (arg == "--resume") orch.resume = true;
    else if (arg == "--seed") orch.seed = std::strtoull(next(), nullptr, 10);
    else if (arg == "--gen-seed") gen_seed = std::strtoull(next(), nullptr, 10);
    else if (arg == "--save-config") save_config_path = next();
    else if (arg == "--csv") csv_path = next();
    else if (arg == "--listen") coord.listen = next();
    else if (arg == "--min-workers") coord.min_workers = std::atoi(next());
    else if (arg == "--attach-timeout") coord.attach_timeout_s = std::atof(next());
    else if (arg == "--workers") spawn_workers = std::atoi(next());
    else if (arg == "--connect") connect_addr = next();
    else if (arg == "--quiet") Logger::instance().set_level(LogLevel::kWarn);
    else {
      usage_error(kUsage, "unknown option " + arg);
    }
  }
  if (aux.empty() == bench.empty()) {  // exactly one input source
    usage_error(kUsage, "need exactly one of --aux / --bench");
  }

  Design design;
  try {
    if (!aux.empty()) {
      design = read_bookshelf(aux);
    } else {
      SyntheticSpec spec = table1_spec(bench, scale);
      if (gen_seed != 0) spec.seed = gen_seed;
      design = generate_synthetic(spec);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "failed to load design: %s\n", e.what());
    return 1;
  }
  std::printf("design %s: %zu cells, %zu nets, %zu macros\n",
              design.name.c_str(), design.num_movable(), design.nets.size(),
              design.num_macros());

  if (!connect_addr.empty()) {
    // Worker mode: same as the puffer_worker binary, for convenience.
    WorkerConfig worker;
    worker.connect = connect_addr;
    try {
      ExperimentConfig base;
      return run_worker(design, base, worker);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "worker failed: %s\n", e.what());
      return 1;
    }
  }

  // --workers N spawns local worker children on a private Unix socket
  // (unless an explicit --listen address was given).
  std::vector<pid_t> children;
  if (spawn_workers > 0) {
    if (coord.listen.empty()) {
      coord.listen = "/tmp/puffer_explore." + std::to_string(::getpid()) +
                     ".sock";
    }
    coord.min_workers = spawn_workers;
    for (int w = 0; w < spawn_workers; ++w) {
      const pid_t pid =
          spawn_worker(coord.listen, aux, bench, scale, gen_seed, w);
      if (pid < 0) {
        std::fprintf(stderr, "fork failed: %s\n", std::strerror(errno));
        return 1;
      }
      children.push_back(pid);
    }
  }
  const auto reap_children = [&children]() {
    for (const pid_t pid : children) {
      int status = 0;
      ::waitpid(pid, &status, 0);
    }
  };

  try {
    ExperimentConfig base;
    const bool distributed = !coord.listen.empty();
    OrchestrationResult result;
    if (distributed) {
      result = run_distributed_orchestration(design, puffer_param_specs(),
                                             base, orch, coord);
    } else {
      TrialOrchestrator orchestrator(design, puffer_param_specs(), base, orch);
      result = orchestrator.run();
    }
    reap_children();

    std::printf("trials        : %d evaluated (%d run, %d pruned, %d "
                "resumed)%s\n",
                result.trials_evaluated, result.stats.trials_run,
                result.stats.trials_pruned, result.stats.trials_resumed,
                result.early_stopped ? ", early-stopped" : "");
    std::printf("prefix        : %.2f s (checkpoint save %.3f s, restore "
                "%.3f s)\n",
                result.stats.prefix_s, result.stats.checkpoint_save_s,
                result.stats.checkpoint_restore_s);
    std::printf("trial phase   : %.2f s, scheduler utilization %.0f %%\n",
                result.stats.trials_s,
                100.0 * result.stats.scheduler_utilization);
    std::printf("best trial    : #%d, loss %.6g (HOF+VOF %%)\n",
                result.best_trial, result.best_loss);
    // Deterministic line the kill-and-resume smoke test compares.
    std::printf("best_checksum: %016" PRIx64 "\n", result.best_checksum);

    if (!save_config_path.empty()) {
      const PufferConfig best_cfg =
          apply_assignment(base.puffer, result.best);
      save_config(best_cfg, save_config_path);
      std::printf("wrote best strategy to %s\n", save_config_path.c_str());
    }
    if (!csv_path.empty()) {
      std::FILE* f = std::fopen(csv_path.c_str(), "w");
      if (!f) {
        std::fprintf(stderr, "cannot write %s\n", csv_path.c_str());
        return 1;
      }
      // Per-trial losses plus the orchestrator and padding-feature stage
      // metrics (constant per run, repeated per row to keep the CSV
      // rectangular), matching the router/legalization stage columns of
      // the experiment tables. The padding columns come from the best
      // trial's flow and are zero when that trial was replayed from the
      // journal (best_metrics_valid false).
      std::fprintf(f,
                   "trial,loss,trials_run,trials_pruned,trials_resumed,"
                   "checkpoint_save_ms,checkpoint_restore_ms,"
                   "scheduler_utilization,padding_feature_time_s,"
                   "padding_dirty_gcell_frac,padding_incidence_hit_rate,"
                   "padding_full_rebuilds\n");
      const OrchestratorStageMetrics& st = result.stats;
      const PaddingStageMetrics pf = result.best_metrics_valid
                                         ? result.best_flow.padding_stage
                                         : PaddingStageMetrics{};
      for (std::size_t i = 0; i < result.observations.size(); ++i) {
        std::fprintf(f, "%zu,%.17g,%d,%d,%d,%.3f,%.3f,%.4f,%.4f,%.4f,%.4f,%d\n",
                     i, result.observations[i].loss, st.trials_run,
                     st.trials_pruned, st.trials_resumed,
                     1000.0 * st.checkpoint_save_s,
                     1000.0 * st.checkpoint_restore_s,
                     st.scheduler_utilization, pf.feature_time_s,
                     pf.dirty_gcell_frac(), pf.incidence_hit_rate(),
                     pf.full_rebuilds);
      }
      std::fclose(f);
      std::printf("wrote %s\n", csv_path.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "exploration failed: %s\n", e.what());
    reap_children();
    return 1;
  }
  return 0;
}
