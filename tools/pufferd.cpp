// pufferd: the placement-as-a-service daemon.
//
// Serves placement jobs over a Unix-domain or TCP socket (see
// src/serve/): sessioned flows with streaming per-round telemetry,
// bounded admission, and an append-only request log that makes the
// daemon restartable (spooled jobs re-run deterministically). SIGTERM /
// SIGINT start a graceful drain: running sessions finish, their frames
// are delivered, then the process exits.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/cli.h"
#include "common/logger.h"
#include "core/config_io.h"
#include "serve/server.h"

namespace {

const std::string kUsage =
    "usage: pufferd --listen ADDR [options]\n"
    "\n"
    "  ADDR is host:port (TCP) or a filesystem path (Unix socket).\n"
    "\n"
    "options:\n"
    "  --spool DIR       request log + job/result spool directory\n"
    "                    (default pufferd_spool); an existing log is\n"
    "                    replayed and unfinished sessions re-run\n"
    "  --max-running N   concurrent running sessions (default 1)\n"
    "  --max-queued N    bounded admission queue (default 4)\n"
    "  --per-conn N      in-flight sessions per connection (default 2)\n"
    "  --config FILE     base strategy config; per-job overrides apply\n"
    "                    on top (see config_io.h)\n"
    "  --name NAME       daemon name in the hello exchange\n"
    "  --quiet           warnings and errors only\n"
    "  --help, --version\n";

puffer::PufferServer* g_server = nullptr;

void on_signal(int) {
  if (g_server) g_server->request_drain();  // async-signal-safe
}

}  // namespace

int main(int argc, char** argv) {
  using namespace puffer;
  handle_help_version(argc, argv, "pufferd", kUsage);

  std::string listen_addr;
  ServeConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage_error(kUsage, arg + " needs a value");
      return argv[++i];
    };
    if (arg == "--listen") listen_addr = next();
    else if (arg == "--spool") config.spool_dir = next();
    else if (arg == "--max-running") config.max_running = std::atoi(next());
    else if (arg == "--max-queued") config.max_queued = std::atoi(next());
    else if (arg == "--per-conn") config.per_conn_inflight = std::atoi(next());
    else if (arg == "--name") config.daemon_name = next();
    else if (arg == "--config") {
      try {
        config.base_config = load_config(next(), config.base_config);
      } catch (const ConfigError& e) {
        std::fprintf(stderr, "config error: %s\n", e.what());
        return 1;
      }
    } else if (arg == "--quiet") {
      Logger::instance().set_level(LogLevel::kWarn);
    } else {
      usage_error(kUsage, "unknown option " + arg);
    }
  }
  if (listen_addr.empty()) usage_error(kUsage, "--listen is required");

  try {
    PufferServer server(listen_addr, config);
    g_server = &server;
    std::signal(SIGTERM, on_signal);
    std::signal(SIGINT, on_signal);
    server.run();
    g_server = nullptr;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pufferd: %s\n", e.what());
    return 1;
  }
  return 0;
}
