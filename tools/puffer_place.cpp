// puffer_place: command-line routability-driven placer.
//
// Usage:
//   puffer_place --aux design.aux [options]            # Bookshelf input
//   puffer_place --bench MEDIA_SUBSYS [--scale 64]     # synthetic suite
//
// Options:
//   --placer puffer|replace|commercial   placement flow (default puffer)
//   --config FILE        load strategy parameters (see config_io.h)
//   --save-config FILE   write the effective strategy parameters
//   --out PREFIX         write PREFIX.pl (and PREFIX.svg with --svg)
//   --svg                also render the placement + congestion overlay
//   --dp                 run detailed placement after legalization
//   --seed N             synthetic generator seed override
//   --report             print the routed HOF/VOF/WL report
//   --quality            print the placement quality analysis
//   --quiet              warnings and errors only
#include <cstdio>
#include <cstring>
#include <string>

#include "analysis/quality.h"
#include "common/cli.h"
#include "common/logger.h"
#include "core/config_io.h"
#include "core/experiment.h"
#include "dp/detailed_place.h"
#include "io/bookshelf.h"
#include "viz/svg.h"

namespace {

const std::string kUsage =
    "usage: puffer_place (--aux design.aux | --bench NAME [--scale N])\n"
    "       [--placer puffer|replace|commercial] [--out PREFIX]\n"
    "       [--config FILE] [--save-config FILE] [--svg] [--dp]\n"
    "       [--seed N] [--report] [--quality] [--quiet]\n"
    "       [--help] [--version]\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace puffer;
  handle_help_version(argc, argv, "puffer_place", kUsage);

  std::string aux, bench, out, placer = "puffer";
  std::string config_path, save_config_path;
  int scale = 64;
  bool svg = false, dp = false, report = false, quality = false;
  std::uint64_t seed = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage_error(kUsage, arg + " needs a value");
      return argv[++i];
    };
    if (arg == "--aux") aux = next();
    else if (arg == "--bench") bench = next();
    else if (arg == "--scale") scale = std::atoi(next());
    else if (arg == "--placer") placer = next();
    else if (arg == "--out") out = next();
    else if (arg == "--config") config_path = next();
    else if (arg == "--save-config") save_config_path = next();
    else if (arg == "--quality") quality = true;
    else if (arg == "--seed") seed = std::strtoull(next(), nullptr, 10);
    else if (arg == "--svg") svg = true;
    else if (arg == "--dp") dp = true;
    else if (arg == "--report") report = true;
    else if (arg == "--quiet") Logger::instance().set_level(LogLevel::kWarn);
    else {
      usage_error(kUsage, "unknown option " + arg);
    }
  }
  if (aux.empty() == bench.empty()) {  // exactly one input source
    usage_error(kUsage, "need exactly one of --aux / --bench");
  }

  PlacerKind kind;
  if (placer == "puffer") kind = PlacerKind::kPuffer;
  else if (placer == "replace") kind = PlacerKind::kReplaceRc;
  else if (placer == "commercial") kind = PlacerKind::kCommercialProxy;
  else {
    usage_error(kUsage, "unknown placer '" + placer + "'");
  }

  Design design;
  try {
    if (!aux.empty()) {
      design = read_bookshelf(aux);
    } else {
      SyntheticSpec spec = table1_spec(bench, scale);
      if (seed != 0) spec.seed = seed;
      design = generate_synthetic(spec);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "failed to load design: %s\n", e.what());
    return 1;
  }
  std::printf("design %s: %zu cells, %zu nets, %zu macros\n",
              design.name.c_str(), design.num_movable(), design.nets.size(),
              design.num_macros());

  ExperimentConfig config;
  try {
    if (!config_path.empty()) {
      config.puffer = load_config(config_path, config.puffer);
      std::printf("loaded strategy from %s\n", config_path.c_str());
    }
    if (!save_config_path.empty()) {
      save_config(config.puffer, save_config_path);
      std::printf("wrote strategy to %s\n", save_config_path.c_str());
    }
  } catch (const ConfigError& e) {
    std::fprintf(stderr, "config error: %s\n", e.what());
    return 1;
  }
  const ExperimentResult result = run_experiment(design, kind, config);
  if (dp) {
    const DetailedPlaceResult dpr = detailed_place(design);
    std::printf("detailed placement: %d moves, HPWL %.4g -> %.4g (%.2f%%)\n",
                dpr.accepted_moves, dpr.hpwl_before, dpr.hpwl_after,
                dpr.improvement_pct());
  }

  std::printf("placer        : %s\n", placer_name(kind));
  std::printf("HPWL (legal)  : %.6g\n", design.total_hpwl());
  std::printf("legality      : %s\n", result.flow.legality.summary().c_str());
  std::printf("runtime       : %.1f s\n", result.runtime_s());
  if (report) {
    std::printf("HOF / VOF     : %.2f %% / %.2f %%  (pass: %s/%s)\n",
                result.hof_pct(), result.vof_pct(),
                result.pass_h() ? "yes" : "no", result.pass_v() ? "yes" : "no");
    std::printf("routed WL     : %.6g\n", result.routed_wl());
  }

  if (quality) {
    const QualityReport q = analyze_quality(design, &result.route.maps);
    std::printf("%s", q.to_string().c_str());
  }

  if (!out.empty()) {
    write_pl(design, out + ".pl");
    std::printf("wrote %s.pl\n", out.c_str());
    if (svg) {
      write_placement_svg(design, result.route.maps.grid,
                          result.route.maps.cg_map(), out + ".svg");
      std::printf("wrote %s.svg\n", out.c_str());
    }
  }
  return 0;
}
