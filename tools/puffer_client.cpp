// puffer_client: command-line client for pufferd.
//
// Submits placement jobs, streams per-round telemetry, cancels,
// re-attaches and fetches results. The `direct` subcommand runs the
// identical flow in-process and prints the same final `checksum` line,
// so a daemon run can be checked for bit-identity against a local run
// with two invocations and a diff (scripts/daemon_smoke.sh does exactly
// that).
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/logger.h"
#include "core/config_io.h"
#include "io/bookshelf.h"
#include "io/checkpoint.h"
#include "io/design_codec.h"
#include "io/synthetic.h"
#include "serve/client.h"

namespace {

const std::string kUsage =
    "usage: puffer_client ADDRESS COMMAND [options]\n"
    "       puffer_client direct JOB... [--config FILE]\n"
    "\n"
    "  ADDRESS is host:port (TCP) or a filesystem path (Unix socket).\n"
    "\n"
    "commands:\n"
    "  submit JOB...        submit and print the session id\n"
    "  run JOB...           submit, stream telemetry, fetch the result\n"
    "  subscribe SID        attach; print snapshot + telemetry until done\n"
    "  detach-probe SID     attach, then immediately detach (ack barrier)\n"
    "  cancel SID           request cancellation\n"
    "  fetch SID            fetch the final placement of a done session\n"
    "  status [SID]         daemon-wide (and per-session) counters\n"
    "  direct JOB...        run the flow in-process (no daemon), printing\n"
    "                       the same final checksum line as `run`\n"
    "\n"
    "job sources (JOB...):\n"
    "  --aux FILE           Bookshelf design (parsed locally, sent binary)\n"
    "  --bench NAME [--scale N] [--seed N]   synthetic Table-I design\n"
    "  --config FILE        strategy override text sent with the job\n"
    "  --name LABEL         job label for the daemon log\n"
    "  --help, --version\n";

using namespace puffer;

struct JobArgs {
  std::string aux, bench, config_path, name = "cli-job";
  int scale = 64;
  std::uint64_t seed = 0;
};

Design build_design(const JobArgs& job) {
  if (!job.aux.empty()) return read_bookshelf(job.aux);
  SyntheticSpec spec = table1_spec(job.bench, job.scale);
  if (job.seed != 0) spec.seed = job.seed;
  return generate_synthetic(spec);
}

std::string read_config_text(const JobArgs& job) {
  return job.config_path.empty() ? std::string() : read_file(job.config_path);
}

// Parses job-source options from argv[from..); exits on unknown args.
JobArgs parse_job(int argc, char** argv, int from) {
  JobArgs job;
  for (int i = from; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage_error(kUsage, arg + " needs a value");
      return argv[++i];
    };
    if (arg == "--aux") job.aux = next();
    else if (arg == "--bench") job.bench = next();
    else if (arg == "--scale") job.scale = std::atoi(next());
    else if (arg == "--seed") job.seed = std::strtoull(next(), nullptr, 10);
    else if (arg == "--config") job.config_path = next();
    else if (arg == "--name") job.name = next();
    else usage_error(kUsage, "unknown option " + arg);
  }
  if (job.aux.empty() == job.bench.empty()) {
    usage_error(kUsage, "need exactly one of --aux / --bench");
  }
  return job;
}

void print_round(const TelemetryRound& t) {
  std::printf("round %d: overflow %.2f%% (%+.2f) hpwl %.6g (%+.3g)\n",
              t.round, t.est_overflow_pct, t.overflow_delta, t.hpwl,
              t.hpwl_delta);
}

void print_summary(const SessionSummary& s) {
  std::printf("state %s rounds %d runtime %.1fs",
              session_state_name(static_cast<SessionState>(s.state)),
              s.padding_rounds, s.runtime_s);
  if (s.state == static_cast<std::uint8_t>(SessionState::kDone)) {
    std::printf(" hpwl %.6g", s.hpwl_legal);
  }
  if (!s.message.empty()) std::printf(" (%s)", s.message.c_str());
  std::printf("\n");
  if (s.state == static_cast<std::uint8_t>(SessionState::kDone)) {
    std::printf("checksum 0x%016" PRIx64 "\n", s.checksum);
  }
}

std::uint64_t parse_sid(const char* s) {
  char* end = nullptr;
  const std::uint64_t sid = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0' || sid == 0) {
    usage_error(kUsage, std::string("bad session id '") + s + "'");
  }
  return sid;
}

int cmd_direct(int argc, char** argv, int from) {
  const JobArgs job = parse_job(argc, argv, from);
  // Round-trip through the binary codec so the in-process run sees the
  // byte-identical design a daemon would decode.
  Design design = decode_design(encode_design(build_design(job)));
  PufferConfig cfg = config_from_text(read_config_text(job), PufferConfig{});
  cfg.num_threads = 0;
  PufferFlow flow(design, cfg);
  const FlowMetrics metrics = flow.run();
  SessionSummary s;
  s.state = static_cast<std::uint8_t>(SessionState::kDone);
  s.checksum = position_checksum(design);
  s.hpwl_legal = metrics.hpwl_legal;
  s.runtime_s = metrics.runtime_s;
  s.padding_rounds = metrics.padding_rounds;
  print_summary(s);
  return 0;
}

SubmitMsg make_submit(const JobArgs& job) {
  SubmitMsg msg;
  msg.job_name = job.name;
  msg.design_blob = encode_design(build_design(job));
  msg.config_text = read_config_text(job);
  return msg;
}

// Submit helper shared by `submit` and `run`; exits 1 on rejection.
std::uint64_t do_submit(ServeClient& client, const JobArgs& job) {
  const ServeEvent reply = client.submit(make_submit(job));
  if (reply.type == ServeMsgType::kRejected) {
    std::fprintf(stderr, "rejected (%s): %s\n",
                 reject_reason_name(
                     static_cast<RejectReason>(reply.rejected.reason)),
                 reply.rejected.message.c_str());
    std::exit(1);
  }
  std::printf("session %" PRIu64 " %s (%d ahead)\n", reply.ack.session_id,
              session_state_name(static_cast<SessionState>(reply.ack.state)),
              reply.ack.queue_depth);
  return reply.ack.session_id;
}

// Attach + stream until the session settles; prints history then deltas.
SessionSummary follow(ServeClient& client, std::uint64_t sid) {
  const SnapshotMsg snap = client.subscribe(sid);
  for (const TelemetryRound& t : snap.history) print_round(t);
  if (snap.has_summary) return snap.summary;
  std::vector<TelemetryRound> rounds;
  const DoneMsg done = client.wait_done(sid, &rounds);
  for (const TelemetryRound& t : rounds) print_round(t);
  return done.summary;
}

int cmd_fetch(ServeClient& client, std::uint64_t sid) {
  const ServeEvent reply = client.fetch(sid);
  if (reply.type == ServeMsgType::kError) {
    std::fprintf(stderr, "fetch failed: %s\n", reply.error.message.c_str());
    return 1;
  }
  std::printf("cells %zu hpwl %.6g\n", reply.result.x.size(),
              reply.result.hpwl_legal);
  std::printf("checksum 0x%016" PRIx64 "\n", reply.result.checksum);
  return 0;
}

void print_status(const StatusMsg& s) {
  std::printf(
      "queued %d running %d done %d cancelled %d failed %d "
      "(max_running %d max_queued %d)%s\n",
      s.queued, s.running, s.done, s.cancelled, s.failed, s.max_running,
      s.max_queued, s.draining ? " draining" : "");
  if (s.has_session) {
    std::printf("session %" PRIu64 ": %s, %d round(s) streamed\n",
                s.session_id,
                session_state_name(
                    static_cast<SessionState>(s.session_state)),
                s.session_rounds);
  }
}

}  // namespace

int main(int argc, char** argv) {
  handle_help_version(argc, argv, "puffer_client", kUsage);
  if (argc < 3) usage_error(kUsage);
  Logger::instance().set_level(LogLevel::kWarn);  // metrics go to stdout

  const std::string first = argv[1];
  try {
    if (first == "direct") {
      return cmd_direct(argc, argv, 2);
    }
    const std::string address = first;
    const std::string cmd = argv[2];
    if (cmd == "direct") usage_error(kUsage, "direct takes no ADDRESS");

    ServeClient client(address);
    if (cmd == "submit") {
      do_submit(client, parse_job(argc, argv, 3));
      return 0;
    }
    if (cmd == "run") {
      const std::uint64_t sid = do_submit(client, parse_job(argc, argv, 3));
      const SessionSummary summary = follow(client, sid);
      print_summary(summary);
      return summary.state == static_cast<std::uint8_t>(SessionState::kDone)
                 ? 0
                 : 1;
    }
    if (cmd == "subscribe") {
      if (argc < 4) usage_error(kUsage, "subscribe needs a session id");
      const SessionSummary summary = follow(client, parse_sid(argv[3]));
      print_summary(summary);
      return 0;
    }
    if (cmd == "detach-probe") {
      if (argc < 4) usage_error(kUsage, "detach-probe needs a session id");
      const std::uint64_t sid = parse_sid(argv[3]);
      const SnapshotMsg snap = client.subscribe(sid);
      std::printf("snapshot: %zu round(s), state %s\n", snap.history.size(),
                  session_state_name(static_cast<SessionState>(snap.state)));
      const std::vector<ServeEvent> in_flight = client.detach(sid);
      std::printf("detached; %zu event(s) before the ack\n",
                  in_flight.size());
      return 0;
    }
    if (cmd == "cancel") {
      if (argc < 4) usage_error(kUsage, "cancel needs a session id");
      const ServeEvent reply = client.cancel(parse_sid(argv[3]));
      if (reply.type == ServeMsgType::kError) {
        std::fprintf(stderr, "cancel failed: %s\n",
                     reply.error.message.c_str());
        return 1;
      }
      print_status(reply.status);
      return 0;
    }
    if (cmd == "fetch") {
      if (argc < 4) usage_error(kUsage, "fetch needs a session id");
      return cmd_fetch(client, parse_sid(argv[3]));
    }
    if (cmd == "status") {
      const std::uint64_t sid = argc >= 4 ? parse_sid(argv[3]) : 0;
      const ServeEvent reply = client.query(sid);
      if (reply.type == ServeMsgType::kError) {
        std::fprintf(stderr, "status failed: %s\n",
                     reply.error.message.c_str());
        return 1;
      }
      print_status(reply.status);
      return 0;
    }
    usage_error(kUsage, "unknown command " + cmd);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "puffer_client: %s\n", e.what());
    return 1;
  }
}
