// Figure 4 reproduction: multi-feature extraction for cells.
//
// Shows the three feature families (local, CNN-inspired surrounding,
// GNN-inspired pin congestion) for representative cells of a congested
// synthetic design: one in a routing hot spot, one at its fringe, one in
// a quiet region -- demonstrating how the combination separates cells
// that purely local information cannot distinguish.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/table.h"
#include "congestion/estimator.h"
#include "core/flow.h"
#include "io/synthetic.h"
#include "padding/features.h"

int main() {
  using namespace puffer;
  std::printf("=== Figure 4: CNN/GNN-inspired feature extraction ===\n\n");

  SyntheticSpec spec;
  spec.name = "fig4";
  spec.num_cells = 4000;
  spec.num_nets = 6000;
  spec.num_macros = 10;
  spec.target_utilization = 0.84;
  spec.cluster_net_ratio = 0.8;
  Design d = generate_synthetic(spec);
  initial_place(d);
  GpConfig gp;
  EPlaceEngine engine(d, gp);
  engine.run_to_overflow(0.25);

  CongestionConfig cc;
  CongestionEstimator estimator(d, cc);
  const CongestionResult congestion = estimator.estimate();
  const Map2D<double> cg = congestion.maps.cg_map();

  // Pick the hottest Gcell and a cold one; sample cells in both.
  int hot_gx = 0, hot_gy = 0, cold_gx = 0, cold_gy = 0;
  double hot = -1e300, cold = 1e300;
  for (int gy = 0; gy < cg.ny(); ++gy) {
    for (int gx = 0; gx < cg.nx(); ++gx) {
      if (cg.at(gx, gy) > hot) {
        hot = cg.at(gx, gy);
        hot_gx = gx;
        hot_gy = gy;
      }
      if (cg.at(gx, gy) < cold) {
        cold = cg.at(gx, gy);
        cold_gx = gx;
        cold_gy = gy;
      }
    }
  }
  std::printf("hottest Gcell (%d,%d): Cg=%.2f; coldest (%d,%d): Cg=%.2f\n\n",
              hot_gx, hot_gy, hot, cold_gx, cold_gy, cold);

  const auto pick_cells_in = [&](int gx, int gy, int count) {
    std::vector<CellId> out;
    const Rect r = congestion.maps.grid.gcell_rect(gx, gy).expanded(16.0);
    for (CellId c = 0; c < static_cast<CellId>(d.cells.size()); ++c) {
      const Cell& cell = d.cells[static_cast<std::size_t>(c)];
      if (cell.movable() && r.contains(cell.center())) {
        out.push_back(c);
        if (static_cast<int>(out.size()) >= count) break;
      }
    }
    return out;
  };

  std::vector<CellId> samples = pick_cells_in(hot_gx, hot_gy, 3);
  const auto cold_cells = pick_cells_in(cold_gx, cold_gy, 3);
  samples.insert(samples.end(), cold_cells.begin(), cold_cells.end());

  FeatureExtractor fx(d);
  const auto features = fx.extract(congestion, samples);

  TextTable table({"cell", "region", "LCg (local)", "LPin (local)",
                   "SCg (CNN)", "SPin (CNN)", "PCg (GNN)"});
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const FeatureVector& f = features[i];
    table.add_row({d.cells[static_cast<std::size_t>(samples[i])].name,
                   i < samples.size() - cold_cells.size() ? "hot" : "cold",
                   TextTable::fmt(f.local_cg, 3), TextTable::fmt(f.local_pin, 3),
                   TextTable::fmt(f.sur_cg, 3), TextTable::fmt(f.sur_pin, 3),
                   TextTable::fmt(f.pin_cg, 3)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Local features are signed (negative = slack kept, per the paper);\n"
      "surrounding features average a kernel-expanded window; pin\n"
      "congestion aggregates min-over-candidate-path congestion across the\n"
      "cell's routing topology (Eqs. 9-13).\n");
  return 0;
}
