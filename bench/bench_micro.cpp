// Kernel micro-benchmarks (google-benchmark): FFT/DCT transforms, RSMT
// construction, WA wirelength gradient, density rasterization + field
// solve, congestion estimation and the evaluation router.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "congestion/estimator.h"
#include "fft/dct.h"
#include "fft/fft.h"
#include "gp/electrostatics.h"
#include "gp/wirelength.h"
#include "io/synthetic.h"
#include "router/global_router.h"
#include "rsmt/rsmt.h"

namespace {

using namespace puffer;

void BM_Fft(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<std::complex<double>> a(n);
  for (auto& x : a) x = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  for (auto _ : state) {
    auto copy = a;
    fft(copy, false);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Fft)->RangeMultiplier(4)->Range(64, 4096)->Complexity();

void BM_Dct2_2D(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  std::vector<double> grid(n * n);
  for (double& v : grid) v = rng.uniform(0, 1);
  for (auto _ : state) {
    auto out = dct2_2d(grid, n, n);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_Dct2_2D)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_ElectrostaticSolve(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ElectrostaticSystem es(n, n, 1000.0, 1000.0);
  Rng rng(3);
  Map2D<double> rho(n, n);
  for (double& v : rho.raw()) v = rng.uniform(0, 10);
  for (auto _ : state) {
    es.solve(rho);
    benchmark::DoNotOptimize(es.energy());
  }
}
BENCHMARK(BM_ElectrostaticSolve)->Arg(32)->Arg(64)->Arg(128);

void BM_Rsmt(benchmark::State& state) {
  const int degree = static_cast<int>(state.range(0));
  Rng rng(4);
  std::vector<std::vector<Point>> nets(64);
  for (auto& pins : nets) {
    for (int i = 0; i < degree; ++i) {
      pins.push_back({rng.uniform(0, 1000), rng.uniform(0, 1000)});
    }
  }
  std::size_t k = 0;
  for (auto _ : state) {
    const RsmtTree t = build_rsmt(nets[k++ % nets.size()]);
    benchmark::DoNotOptimize(t.length());
  }
}
BENCHMARK(BM_Rsmt)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

SyntheticSpec micro_spec(int cells) {
  SyntheticSpec spec;
  spec.num_cells = cells;
  spec.num_nets = cells * 3 / 2;
  spec.num_macros = 8;
  return spec;
}

void BM_WaGradient(benchmark::State& state) {
  const Design d = generate_synthetic(micro_spec(static_cast<int>(state.range(0))));
  WaWirelength wl(d);
  const std::size_t n = wl.movable_cells().size();
  std::vector<double> x(n), y(n), gx, gy;
  for (std::size_t i = 0; i < n; ++i) {
    const Cell& c = d.cells[static_cast<std::size_t>(wl.movable_cells()[i])];
    x[i] = c.x;
    y[i] = c.y;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(wl.evaluate(x, y, 10.0, gx, gy));
  }
}
BENCHMARK(BM_WaGradient)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_CongestionEstimate(benchmark::State& state) {
  const Design d = generate_synthetic(micro_spec(static_cast<int>(state.range(0))));
  CongestionEstimator est(d, CongestionConfig{});
  for (auto _ : state) {
    const CongestionResult r = est.estimate();
    benchmark::DoNotOptimize(r.expanded_segments);
  }
}
BENCHMARK(BM_CongestionEstimate)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_GlobalRoute(benchmark::State& state) {
  const Design d = generate_synthetic(micro_spec(static_cast<int>(state.range(0))));
  GlobalRouter router(d, RouterConfig{});
  for (auto _ : state) {
    const RouteResult r = router.route();
    benchmark::DoNotOptimize(r.wirelength);
  }
}
BENCHMARK(BM_GlobalRoute)->Arg(1000)->Arg(4000);

}  // namespace
