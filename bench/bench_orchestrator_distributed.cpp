// Distributed trial orchestration vs the in-process scheduler (the
// PR's tentpole).
//
// Both sides run the identical deterministic exploration loop -- same
// TPE seed, same statistical batches, same candidate-order fold. The
// only difference is WHERE trials evaluate:
//
//   in-process   K concurrent sessions fork from the shared prefix
//                under worker leases inside this process.
//   distributed  the same batches are farmed to 2 worker PROCESSES over
//                the binary wire protocol (Unix-domain socket); each
//                worker holds its own copy of the design (structure
//                verified in the handshake) plus the shipped prefix
//                snapshot, and leases the full local thread budget.
//
// Because the executor seam only moves evaluation, the two runs must
// agree on the best strategy, its loss bits and its final-position
// checksum -- `bit_identical` records that identity. The distributed
// numbers also gate on scheduler utilization >= 0.9: the coordinator's
// serial suggest/fold must not starve the workers.
//
// The workers are forked before any threads exist in this process and
// retry their connect until the coordinator binds, so the in-process
// reference can run first.
//
// Output: bench_results/BENCH_orchestrator_distributed.json.
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/logger.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "io/synthetic.h"
#include "orchestrate/coordinator.h"
#include "orchestrate/orchestrator.h"
#include "orchestrate/worker.h"

namespace {

using namespace puffer;

constexpr int kWorkers = 2;

SyntheticSpec bench_spec(int scale) {
  SyntheticSpec spec;
  spec.name = "orch_dist_bench";
  spec.num_cells = 256000 / scale;
  spec.num_nets = 320000 / scale;
  spec.num_macros = 4;
  spec.seed = 42;
  spec.target_utilization = 0.78;
  spec.v_capacity_factor = 0.7;  // keep losses non-trivial
  return spec;
}

// Pinned padding triggers, exactly as in bench_orchestrator: every trial
// forks at the same overflow, so the shared prefix dominates and the
// wire protocol's job is to keep both workers busy on suffixes.
constexpr double kTau = 0.15;
constexpr double kXi = 4.0;
constexpr double kForkOverflow = 0.15;

std::vector<ParamSpec> bench_specs() {
  std::vector<ParamSpec> specs = puffer_param_specs();
  specs[10].lo = specs[10].hi = kXi;   // xi
  specs[11].lo = specs[11].hi = kTau;  // tau
  return specs;
}

// Worker child: own design copy, attach with a generous retry window
// (the coordinator binds only after the in-process reference finishes).
int worker_main(const SyntheticSpec& spec, const std::string& address,
                int index) {
  Logger::instance().set_level(LogLevel::kWarn);
  Design design = generate_synthetic(spec);
  ExperimentConfig base;
  base.puffer.num_threads = 0;
  WorkerConfig cfg;
  cfg.connect = address;
  cfg.name = "bench-worker-" + std::to_string(index);
  cfg.connect_timeout_s = 600.0;
  return run_worker(design, base, cfg);
}

}  // namespace

int main() {
  const int scale = bench::scale_divisor();
  const int kTrials = 8;
  const int kBatch = 4;
  const int kConcurrency = 2;
  const std::uint64_t kSeed = 1234;

  const SyntheticSpec spec = bench_spec(scale);
  const std::string address =
      "/tmp/puffer_bench_dist." + std::to_string(::getpid()) + ".sock";

  // Fork the worker processes before this process creates any threads.
  std::vector<pid_t> children;
  for (int w = 0; w < kWorkers; ++w) {
    const pid_t pid = ::fork();
    if (pid == 0) ::_exit(worker_main(spec, address, w));
    if (pid < 0) {
      std::perror("fork");
      return 1;
    }
    children.push_back(pid);
  }

  Design base_design = generate_synthetic(spec);
  std::printf("distributed orchestrator bench: %zu cells, %zu nets, "
              "%d trials, batch %d, %d workers, threads %d\n",
              base_design.num_movable(), base_design.nets.size(), kTrials,
              kBatch, kWorkers, par::num_threads());

  ExperimentConfig base;
  base.puffer.num_threads = 0;

  OrchestratorConfig orch_cfg;
  orch_cfg.trials = kTrials;
  orch_cfg.batch_size = kBatch;
  orch_cfg.early_stop = kTrials;
  orch_cfg.concurrency = kConcurrency;
  orch_cfg.fork_overflow = kForkOverflow;
  orch_cfg.seed = kSeed;

  // --- in-process reference ---------------------------------------------
  Timer inproc_timer;
  Design inproc_design = generate_synthetic(spec);
  TrialOrchestrator inproc(inproc_design, bench_specs(), base, orch_cfg);
  const OrchestrationResult ref = inproc.run();
  const double inproc_s = inproc_timer.elapsed_seconds();
  std::printf("in-process    : %.2f s (trials %.2f s, utilization %.0f%%), "
              "best loss %.6g, checksum %016llx\n",
              inproc_s, ref.stats.trials_s,
              100.0 * ref.stats.scheduler_utilization, ref.best_loss,
              static_cast<unsigned long long>(ref.best_checksum));

  // --- distributed -------------------------------------------------------
  CoordinatorConfig coord;
  coord.listen = address;
  coord.min_workers = kWorkers;
  coord.attach_timeout_s = 120.0;

  Timer dist_timer;
  Design dist_design = generate_synthetic(spec);
  const OrchestrationResult dist = run_distributed_orchestration(
      dist_design, bench_specs(), base, orch_cfg, coord);
  const double dist_s = dist_timer.elapsed_seconds();
  std::printf("distributed   : %.2f s (trials %.2f s, utilization %.0f%%), "
              "best loss %.6g, checksum %016llx\n",
              dist_s, dist.stats.trials_s,
              100.0 * dist.stats.scheduler_utilization, dist.best_loss,
              static_cast<unsigned long long>(dist.best_checksum));

  for (const pid_t pid : children) {
    int status = 0;
    ::waitpid(pid, &status, 0);
  }
  ::unlink(address.c_str());

  const bool identical = dist.best_loss == ref.best_loss &&
                         dist.best == ref.best &&
                         dist.best_checksum == ref.best_checksum;
  const double inproc_tps = kTrials / ref.stats.trials_s;
  const double dist_tps = kTrials / dist.stats.trials_s;
  const bool utilization_ok = dist.stats.scheduler_utilization >= 0.9;
  std::printf("trials/sec    : %.4f in-process -> %.4f distributed "
              "(%.2fx); bit-identical: %s; utilization >= 0.9: %s\n",
              inproc_tps, dist_tps, dist_tps / inproc_tps,
              identical ? "yes" : "NO", utilization_ok ? "yes" : "NO");

  bench::BenchReport report("orchestrator_distributed");
  report.config("scale", scale);
  report.config("cells", static_cast<int>(base_design.num_movable()));
  report.config("nets", static_cast<int>(base_design.nets.size()));
  report.config("trials", kTrials);
  report.config("batch_size", kBatch);
  report.config("concurrency", kConcurrency);
  report.config("workers", kWorkers);
  report.config("threads", par::num_threads());
  report.config("fork_overflow", kForkOverflow);
  report.baseline("inprocess_s", inproc_s);
  report.baseline("trials_s", ref.stats.trials_s);
  report.baseline("trials_per_s", inproc_tps);
  report.baseline("scheduler_utilization", ref.stats.scheduler_utilization);
  report.baseline("best_loss", ref.best_loss);
  report.result("distributed_s", dist_s);
  report.result("trials_s", dist.stats.trials_s);
  report.result("trials_per_s", dist_tps);
  report.result("scheduler_utilization", dist.stats.scheduler_utilization);
  report.result("coordinator_overhead_s", dist_s - dist.stats.trials_s -
                                              dist.stats.prefix_s);
  report.result("best_loss", dist.best_loss);
  report.speedup("distributed_trials", dist_tps / inproc_tps);
  report.checksum("inprocess_best", ref.best_checksum);
  report.checksum("distributed_best", dist.best_checksum);
  report.bit_identical(identical);
  const std::string path = report.write();
  std::printf("wrote %s\n", path.c_str());
  return identical && utilization_ok ? 0 : 1;
}
