// Deterministic parallel + incremental legalization / detailed placement
// (the legal/dp tentpole) vs an in-bench replica of the seed serial
// implementation.
//
// Simulates the repeat-round workload the legal/dp stages see in the
// flow: a master placement is perturbed inside one randomly placed
// window per round (what a padding re-tune does between rounds), then
// legalization + detailed placement re-run. Every mode (seed replica,
// ledger path at 1/2/8 threads) consumes the exact same precomputed
// per-round inputs; the ledger path's post-round placements are
// checksummed and must be bit-identical across thread counts, and its
// periodic verified rebuild must report zero drift.
//
// Output: bench_results/BENCH_legalization.json (schema puffer-bench-v1).
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/timer.h"
#include "dp/detailed_place.h"
#include "geometry/geometry.h"
#include "io/synthetic.h"
#include "legal/abacus.h"
#include "legal/legality.h"

namespace {

using namespace puffer;

// ==== in-bench replica of the seed (pre-PR) legalizer ====================
// Serial, from-scratch, world-coordinate doubles with absolute epsilons —
// kept verbatim so the speedup baseline survives future changes to the
// library implementation.
namespace seed {

struct SegCell {
  CellId id;
  double width;
  double target_x;
  double weight;
};

struct Cluster {
  double x = 0.0;
  double e = 0.0;
  double q = 0.0;
  double w = 0.0;
};

struct Segment {
  double lo = 0.0;
  double hi = 0.0;
  std::vector<SegCell> cells;
  std::vector<Cluster> clusters;
  double used = 0.0;
  double free_width() const { return (hi - lo) - used; }
};

struct RowState {
  double y = 0.0;
  double site = 1.0;
  std::vector<Segment> segments;
};

double trial_or_commit(Segment& seg, const SegCell& cell, bool commit,
                       bool& ok) {
  ok = true;
  if (cell.width > seg.free_width() + 1e-9) {
    ok = false;
    return 0.0;
  }
  double e = cell.weight;
  double q = cell.weight * cell.target_x;
  double w = cell.width;
  double offset = 0.0;
  int i = static_cast<int>(seg.clusters.size()) - 1;
  double x = 0.0;
  while (true) {
    x = clamp(q / e, seg.lo, seg.hi - w);
    if (i < 0) break;
    const Cluster& prev = seg.clusters[static_cast<std::size_t>(i)];
    if (prev.x + prev.w <= x + 1e-12) break;
    q = prev.q + (q - e * prev.w);
    e += prev.e;
    w += prev.w;
    offset += prev.w;
    --i;
  }
  const double cell_x = x + offset;
  if (!commit) return cell_x;
  seg.clusters.resize(static_cast<std::size_t>(i + 1));
  seg.clusters.push_back({x, e, q, w});
  seg.cells.push_back(cell);
  seg.used += cell.width;
  return cell_x;
}

LegalizeResult legalize(Design& design, const std::vector<int>& pad_sites,
                        const LegalizeConfig& config) {
  LegalizeResult result;
  if (design.rows.empty()) {
    result.success = false;
    return result;
  }
  std::vector<RowState> rows;
  rows.reserve(design.rows.size());
  for (const Row& row : design.rows) {
    RowState rs;
    rs.y = row.y;
    rs.site = row.site_width;
    std::vector<std::pair<double, double>> blocks;
    for (const Cell& c : design.cells) {
      if (!c.is_macro()) continue;
      const Rect r = c.rect();
      if (r.ylo < row.y + row.height - 1e-9 && r.yhi > row.y + 1e-9) {
        blocks.emplace_back(r.xlo, r.xhi);
      }
    }
    std::sort(blocks.begin(), blocks.end());
    double cursor = row.x_lo;
    const double row_end = row.x_hi();
    auto push_segment = [&](double lo, double hi) {
      const double slo =
          row.x_lo + std::ceil((lo - row.x_lo) / rs.site - 1e-9) * rs.site;
      const double shi =
          row.x_lo + std::floor((hi - row.x_lo) / rs.site + 1e-9) * rs.site;
      if (shi - slo >= rs.site - 1e-9) {
        Segment seg;
        seg.lo = slo;
        seg.hi = shi;
        rs.segments.push_back(seg);
      }
    };
    for (const auto& [blo, bhi] : blocks) {
      if (blo > cursor) push_segment(cursor, std::min(blo, row_end));
      cursor = std::max(cursor, bhi);
      if (cursor >= row_end) break;
    }
    if (cursor < row_end) push_segment(cursor, row_end);
    rows.push_back(std::move(rs));
  }

  const double row_h = design.rows.front().height;
  const double row_y0 = design.rows.front().y;
  std::vector<CellId> order;
  for (CellId c = 0; c < static_cast<CellId>(design.cells.size()); ++c) {
    if (design.cells[static_cast<std::size_t>(c)].movable()) order.push_back(c);
  }
  std::sort(order.begin(), order.end(), [&](CellId a, CellId b) {
    return design.cells[static_cast<std::size_t>(a)].x <
           design.cells[static_cast<std::size_t>(b)].x;
  });

  for (CellId cid : order) {
    const Cell& cell = design.cells[static_cast<std::size_t>(cid)];
    const int pad = static_cast<std::size_t>(cid) < pad_sites.size()
                        ? pad_sites[static_cast<std::size_t>(cid)]
                        : 0;
    const int home = static_cast<int>(std::round((cell.y - row_y0) / row_h));
    double best_cost = std::numeric_limits<double>::max();
    int best_row = -1, best_seg = -1;
    SegCell best_sc{};
    for (int k = 0; k < config.max_row_search * 2; ++k) {
      const int r = home + ((k % 2 == 0) ? k / 2 : -(k / 2 + 1));
      if (r < 0 || r >= static_cast<int>(rows.size())) continue;
      RowState& rs = rows[static_cast<std::size_t>(r)];
      const double dy = rs.y - cell.y;
      if (dy * dy >= best_cost) {
        if (k > config.max_row_search) break;
        continue;
      }
      const double width =
          std::ceil(cell.width / rs.site - 1e-9) * rs.site + pad * rs.site;
      SegCell sc;
      sc.id = cid;
      sc.width = width;
      sc.weight = std::max(cell.area(), 1.0);
      for (std::size_t s = 0; s < rs.segments.size(); ++s) {
        Segment& seg = rs.segments[s];
        const double raw_tx = clamp(cell.x - pad * rs.site * 0.5, seg.lo,
                                    std::max(seg.lo, seg.hi - width));
        const double tx =
            seg.lo + std::round((raw_tx - seg.lo) / rs.site) * rs.site;
        sc.target_x = tx;
        bool ok = false;
        const double x = trial_or_commit(seg, sc, /*commit=*/false, ok);
        if (!ok) continue;
        const double dx = (x + pad * rs.site * 0.5) - cell.x;
        const double cost = dx * dx + dy * dy;
        if (cost < best_cost) {
          best_cost = cost;
          best_row = r;
          best_seg = static_cast<int>(s);
          best_sc = sc;
        }
      }
    }
    if (best_row < 0) {
      ++result.failed_cells;
      result.success = false;
      continue;
    }
    bool ok = false;
    trial_or_commit(rows[static_cast<std::size_t>(best_row)]
                        .segments[static_cast<std::size_t>(best_seg)],
                    best_sc, /*commit=*/true, ok);
  }

  for (std::size_t r = 0; r < rows.size(); ++r) {
    RowState& rs = rows[r];
    for (Segment& seg : rs.segments) {
      std::size_t cell_idx = 0;
      double cursor = seg.lo;
      for (const Cluster& cl : seg.clusters) {
        double x = seg.lo + std::round((cl.x - seg.lo) / rs.site) * rs.site;
        x = clamp(x, cursor, std::max(cursor, seg.hi - cl.w));
        cursor = x + cl.w;
        double filled = 0.0;
        while (cell_idx < seg.cells.size() && filled + 1e-9 < cl.w) {
          const SegCell& sc = seg.cells[cell_idx];
          Cell& cell = design.cells[static_cast<std::size_t>(sc.id)];
          const int pad = static_cast<std::size_t>(sc.id) < pad_sites.size()
                              ? pad_sites[static_cast<std::size_t>(sc.id)]
                              : 0;
          const double left_pad = (pad / 2) * rs.site;
          const double old_x = cell.x, old_y = cell.y;
          cell.x = x + filled + left_pad;
          cell.y = rs.y;
          const double disp =
              std::abs(cell.x - old_x) + std::abs(cell.y - old_y);
          result.total_displacement += disp;
          result.max_displacement = std::max(result.max_displacement, disp);
          ++result.placed;
          filled += sc.width;
          ++cell_idx;
        }
      }
    }
  }
  return result;
}

// ---- seed detailed placement (serial, in-place moves) -------------------

double nets_hpwl(const Design& d, const std::vector<CellId>& cells) {
  std::set<NetId> nets;
  for (CellId c : cells) {
    for (PinId pid : d.cells[static_cast<std::size_t>(c)].pins) {
      nets.insert(d.pins[static_cast<std::size_t>(pid)].net);
    }
  }
  double sum = 0.0;
  for (NetId n : nets) sum += d.net_hpwl(n);
  return sum;
}

Point optimal_position(const Design& d, CellId cid) {
  std::vector<double> xs, ys;
  const Cell& cell = d.cells[static_cast<std::size_t>(cid)];
  for (PinId pid : cell.pins) {
    const Net& net =
        d.nets[static_cast<std::size_t>(d.pins[static_cast<std::size_t>(pid)].net)];
    for (PinId other : net.pins) {
      if (d.pins[static_cast<std::size_t>(other)].cell == cid) continue;
      const Point p = d.pin_position(other);
      xs.push_back(p.x);
      ys.push_back(p.y);
    }
  }
  if (xs.empty()) return cell.center();
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid),
                   xs.end());
  std::nth_element(ys.begin(), ys.begin() + static_cast<std::ptrdiff_t>(mid),
                   ys.end());
  return {xs[mid], ys[mid]};
}

struct RowOrder {
  double y = 0.0;
  std::vector<CellId> cells;
};

std::vector<RowOrder> build_rows(const Design& d) {
  std::map<long long, RowOrder> rows;
  for (CellId c = 0; c < static_cast<CellId>(d.cells.size()); ++c) {
    const Cell& cell = d.cells[static_cast<std::size_t>(c)];
    if (!cell.movable()) continue;
    const long long key = std::llround(cell.y * 16.0);
    RowOrder& row = rows[key];
    row.y = cell.y;
    row.cells.push_back(c);
  }
  std::vector<RowOrder> out;
  out.reserve(rows.size());
  for (auto& [key, row] : rows) {
    std::sort(row.cells.begin(), row.cells.end(), [&](CellId a, CellId b) {
      return d.cells[static_cast<std::size_t>(a)].x <
             d.cells[static_cast<std::size_t>(b)].x;
    });
    out.push_back(std::move(row));
  }
  return out;
}

int reorder_pass(Design& d, std::vector<RowOrder> rows) {
  std::vector<Rect> macros;
  for (const Cell& c : d.cells) {
    if (c.is_macro()) macros.push_back(c.rect());
  }
  int accepted = 0;
  for (RowOrder& row : rows) {
    for (std::size_t i = 0; i + 1 < row.cells.size(); ++i) {
      const CellId a = row.cells[i];
      const CellId b = row.cells[i + 1];
      Cell& ca = d.cells[static_cast<std::size_t>(a)];
      Cell& cb = d.cells[static_cast<std::size_t>(b)];
      const double ax = ca.x, bx = cb.x;
      const double span_end = cb.x + cb.width;
      const Rect envelope{ax, ca.y, span_end, ca.y + ca.height};
      bool blocked = false;
      for (const Rect& m : macros) {
        if (envelope.overlap_area(m) > 0.0) {
          blocked = true;
          break;
        }
      }
      if (blocked) continue;
      const double before = nets_hpwl(d, {a, b});
      ca.x = span_end - ca.width;
      cb.x = ax;
      if (cb.x + cb.width > ca.x + 1e-9) {
        ca.x = ax;
        cb.x = bx;
        continue;
      }
      if (nets_hpwl(d, {a, b}) + 1e-9 < before) {
        ++accepted;
        std::swap(row.cells[i], row.cells[i + 1]);
      } else {
        ca.x = ax;
        cb.x = bx;
      }
    }
  }
  return accepted;
}

int swap_pass(Design& d, const DetailedPlaceConfig& config) {
  std::map<std::pair<double, double>, std::vector<CellId>> by_size;
  for (CellId c = 0; c < static_cast<CellId>(d.cells.size()); ++c) {
    const Cell& cell = d.cells[static_cast<std::size_t>(c)];
    if (cell.movable()) by_size[{cell.width, cell.height}].push_back(c);
  }
  const double wx = config.swap_window_rows * d.tech.row_height;
  int accepted = 0;
  for (auto& [size, bucket] : by_size) {
    if (bucket.size() < 2) continue;
    for (CellId a : bucket) {
      const Point target = optimal_position(d, a);
      const Cell& ca = d.cells[static_cast<std::size_t>(a)];
      if (manhattan(ca.center(), target) < d.tech.row_height) continue;
      CellId best = kInvalidId;
      double best_d = wx;
      for (CellId b : bucket) {
        if (b == a) continue;
        const double dist =
            manhattan(d.cells[static_cast<std::size_t>(b)].center(), target);
        if (dist < best_d) {
          best_d = dist;
          best = b;
        }
      }
      if (best == kInvalidId) continue;
      Cell& cb = d.cells[static_cast<std::size_t>(best)];
      Cell& cc = d.cells[static_cast<std::size_t>(a)];
      const double before = nets_hpwl(d, {a, best});
      std::swap(cc.x, cb.x);
      std::swap(cc.y, cb.y);
      if (nets_hpwl(d, {a, best}) + 1e-9 < before) {
        ++accepted;
      } else {
        std::swap(cc.x, cb.x);
        std::swap(cc.y, cb.y);
      }
    }
  }
  return accepted;
}

DetailedPlaceResult detailed_place(Design& design,
                                   const DetailedPlaceConfig& config) {
  DetailedPlaceResult result;
  result.hpwl_before = design.total_hpwl();
  for (int pass = 0; pass < config.max_passes; ++pass) {
    int accepted = 0;
    if (config.adjacent_reorder) {
      accepted += reorder_pass(design, build_rows(design));
    }
    if (config.cross_row_swaps) {
      accepted += swap_pass(design, config);
    }
    result.accepted_moves += accepted;
    ++result.passes;
    if (accepted == 0) break;
  }
  result.hpwl_after = design.total_hpwl();
  return result;
}

}  // namespace seed

// ==== workload ===========================================================

std::uint64_t position_checksum(const Design& d) {
  std::uint64_t h = 1469598103934665603ull;
  auto fold = [&h](double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    for (int i = 0; i < 8; ++i) {
      h ^= (bits >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  for (const Cell& c : d.cells) {
    if (!c.movable()) continue;
    fold(c.x);
    fold(c.y);
  }
  return h;
}

struct RoundInputs {
  // Per-round pre-legal positions of every cell; all modes replay the
  // exact same inputs.
  std::vector<std::vector<double>> xs, ys;
};

void restore(Design& d, const RoundInputs& in, int round) {
  for (std::size_t i = 0; i < d.cells.size(); ++i) {
    if (!d.cells[i].movable()) continue;
    d.cells[i].x = in.xs[static_cast<std::size_t>(round)][i];
    d.cells[i].y = in.ys[static_cast<std::size_t>(round)][i];
  }
}

struct ModeTotals {
  double legal_s = 0.0;
  double dp_s = 0.0;
  double repeat_s = 0.0;  // legalize+dp over rounds >= 1
  std::uint64_t checksum = 0;
  int failed = 0;
  double hpwl = 0.0;
};

}  // namespace

int main() {
  const int scale = bench::scale_divisor();
  SyntheticSpec spec;
  spec.name = "legal_bench";
  spec.num_cells = 640000 / scale;
  spec.num_nets = 640000 / scale;
  spec.num_macros = 8;
  spec.seed = 42;
  const int kRounds = 10;
  const int kReps = 3;  // best-of-3 per mode
  const double kWindowFrac = 0.30;
  const LegalizeConfig legal_cfg = [] {
    LegalizeConfig c;
    c.full_rebuild_interval = 4;  // exercise the drift check in-bench
    return c;
  }();
  const DetailedPlaceConfig dp_cfg;

  Design design = generate_synthetic(spec);
  // Fixed per-cell padding (what discretize_padding feeds the legalizer).
  std::vector<int> pads(design.cells.size(), 0);
  for (std::size_t i = 0; i < pads.size(); ++i) {
    if (i % 5 == 0) pads[i] = 2;
    if (i % 11 == 0) pads[i] = 4;
  }

  // Master placement: one from-scratch legalization of the generated
  // design. Round 0 input is the master itself; each later round is the
  // master with the movable cells inside one random window jittered
  // (padding-retune-style localized change).
  RoundInputs inputs;
  {
    Design master = design;
    puffer::legalize(master, pads, legal_cfg);
    inputs.xs.assign(static_cast<std::size_t>(kRounds), {});
    inputs.ys.assign(static_cast<std::size_t>(kRounds), {});
    Rng rng(7);
    for (int round = 0; round < kRounds; ++round) {
      std::vector<double>& x = inputs.xs[static_cast<std::size_t>(round)];
      std::vector<double>& y = inputs.ys[static_cast<std::size_t>(round)];
      x.resize(master.cells.size());
      y.resize(master.cells.size());
      for (std::size_t i = 0; i < master.cells.size(); ++i) {
        x[i] = master.cells[i].x;
        y[i] = master.cells[i].y;
      }
      if (round == 0) continue;
      const double ww = (master.die.xhi - master.die.xlo) * kWindowFrac;
      const double wh = (master.die.yhi - master.die.ylo) * kWindowFrac;
      const double wx = rng.uniform(master.die.xlo, master.die.xhi - ww);
      const double wy = rng.uniform(master.die.ylo, master.die.yhi - wh);
      for (std::size_t i = 0; i < master.cells.size(); ++i) {
        const Cell& c = master.cells[i];
        if (!c.movable()) continue;
        if (x[i] < wx || x[i] > wx + ww || y[i] < wy || y[i] > wy + wh) {
          continue;
        }
        x[i] += static_cast<double>(rng.uniform_int(-20, 20));
        y[i] += static_cast<double>(rng.uniform_int(-8, 8));
        x[i] = clamp(x[i], master.die.xlo, master.die.xhi - c.width);
        y[i] = clamp(y[i], master.die.ylo, master.die.yhi - c.height);
      }
    }
  }

  // ---- seed replica (serial, from scratch every round) ------------------
  auto run_seed = [&]() {
    ModeTotals t;
    Design d = design;
    for (int round = 0; round < kRounds; ++round) {
      restore(d, inputs, round);
      Timer tl;
      const LegalizeResult lr = seed::legalize(d, pads, legal_cfg);
      const double dl = tl.elapsed_seconds();
      Timer td;
      seed::detailed_place(d, dp_cfg);
      const double dd = td.elapsed_seconds();
      t.legal_s += dl;
      t.dp_s += dd;
      if (round > 0) t.repeat_s += dl + dd;
      t.failed += lr.failed_cells;
    }
    t.checksum = position_checksum(d);
    t.hpwl = d.total_hpwl();
    return t;
  };

  // ---- ledger path at a given thread count ------------------------------
  std::uint64_t drift_total = 0;
  int incr_rounds = 0, replayed = 0, redecided = 0;
  auto run_new = [&](int threads) {
    par::set_num_threads(threads);
    ModeTotals t;
    Design d = design;
    IncrementalLegalizer legalizer(legal_cfg);
    incr_rounds = replayed = redecided = 0;
    for (int round = 0; round < kRounds; ++round) {
      restore(d, inputs, round);
      Timer tl;
      const LegalizeResult lr = legalizer.legalize(d, pads);
      const double dl = tl.elapsed_seconds();
      Timer td;
      puffer::detailed_place(d, dp_cfg);
      const double dd = td.elapsed_seconds();
      t.legal_s += dl;
      t.dp_s += dd;
      if (round > 0) t.repeat_s += dl + dd;
      t.failed += lr.failed_cells;
      if (lr.incremental) {
        ++incr_rounds;
        replayed += lr.replayed_cells;
        redecided += lr.redecided_cells;
      }
    }
    t.checksum = position_checksum(d);
    t.hpwl = d.total_hpwl();
    drift_total += legalizer.stats().drift_count;
    return t;
  };

  auto best_of = [&](auto&& fn, const char* label) {
    ModeTotals best;
    best.repeat_s = std::numeric_limits<double>::max();
    for (int rep = 0; rep < kReps; ++rep) {
      const ModeTotals t = fn();
      if (t.repeat_s < best.repeat_s) best = t;
      std::printf("  %s rep %d: legalize %.3fs dp %.3fs (repeat %.3fs)\n",
                  label, rep, t.legal_s, t.dp_s, t.repeat_s);
    }
    return best;
  };

  std::printf("legal_bench: %d cells, %d rounds, window %.0f%%\n",
              spec.num_cells, kRounds, 100.0 * kWindowFrac);
  const ModeTotals seed_t = best_of(run_seed, "seed");
  const ModeTotals new_1t = best_of([&] { return run_new(1); }, "ledger 1t");
  const ModeTotals new_2t = best_of([&] { return run_new(2); }, "ledger 2t");
  const ModeTotals new_8t = best_of([&] { return run_new(8); }, "ledger 8t");

  // Legality of the final-round output (the ledger path must stay legal).
  Design check = design;
  {
    par::set_num_threads(8);
    IncrementalLegalizer legalizer(legal_cfg);
    for (int round = 0; round < kRounds; ++round) {
      restore(check, inputs, round);
      legalizer.legalize(check, pads);
      puffer::detailed_place(check, dp_cfg);
    }
  }
  const LegalityReport legality = check_legality(check);

  const double speedup_8t =
      new_8t.repeat_s > 0.0 ? seed_t.repeat_s / new_8t.repeat_s : 0.0;
  const double speedup_1t =
      new_1t.repeat_s > 0.0 ? seed_t.repeat_s / new_1t.repeat_s : 0.0;
  const bool identical = new_1t.checksum == new_2t.checksum &&
                         new_2t.checksum == new_8t.checksum;
  const bool ok = identical && drift_total == 0 && legality.legal &&
                  new_8t.failed == 0;

  std::printf(
      "\nrepeat rounds (%d): seed %.3fs, ledger 1t %.3fs / 8t %.3fs -> "
      "speedup %.2fx (1t %.2fx); %d/%d cells replayed on incr rounds, "
      "drift %llu, thread bit-identical %s, final legality %s\n",
      kRounds - 1, seed_t.repeat_s, new_1t.repeat_s, new_8t.repeat_s,
      speedup_8t, speedup_1t, replayed, replayed + redecided,
      static_cast<unsigned long long>(drift_total), identical ? "yes" : "NO",
      legality.legal ? "legal" : "ILLEGAL");

  bench::BenchReport rep("legalization");
  rep.config("scale", scale);
  rep.config("num_cells", spec.num_cells);
  rep.config("num_nets", static_cast<int>(design.nets.size()));
  rep.config("rounds", kRounds);
  rep.config("reps", kReps);
  rep.config("window_frac", kWindowFrac);
  rep.config("full_rebuild_interval", legal_cfg.full_rebuild_interval);
  rep.config("hardware_cores",
             static_cast<int>(std::thread::hardware_concurrency()));
  rep.baseline("legalize_s", seed_t.legal_s);
  rep.baseline("dp_s", seed_t.dp_s);
  rep.baseline("repeat_s", seed_t.repeat_s);
  rep.baseline("failed_cells", seed_t.failed);
  rep.baseline("hpwl", seed_t.hpwl);
  rep.result("legalize_1t_s", new_1t.legal_s);
  rep.result("dp_1t_s", new_1t.dp_s);
  rep.result("repeat_1t_s", new_1t.repeat_s);
  rep.result("repeat_2t_s", new_2t.repeat_s);
  rep.result("repeat_8t_s", new_8t.repeat_s);
  rep.result("failed_cells", new_8t.failed);
  rep.result("hpwl", new_8t.hpwl);
  rep.result("incremental_rounds", incr_rounds);
  rep.result("replayed_cells", replayed);
  rep.result("redecided_cells", redecided);
  rep.result("drift_count", static_cast<int>(drift_total));
  rep.result("final_legal", std::string(legality.legal ? "yes" : "no"));
  rep.speedup("repeat_8t_vs_seed", speedup_8t);
  rep.speedup("repeat_1t_vs_seed", speedup_1t);
  rep.speedup("thread_8t_vs_1t",
              new_8t.repeat_s > 0.0 ? new_1t.repeat_s / new_8t.repeat_s : 0.0);
  rep.checksum("placement_1t", new_1t.checksum);
  rep.checksum("placement_2t", new_2t.checksum);
  rep.checksum("placement_8t", new_8t.checksum);
  rep.bit_identical(identical);
  const std::string path = rep.write();
  std::printf("wrote %s\n", path.c_str());
  return ok ? 0 : 1;
}
