// Batched parallel rip-up-and-reroute vs the serial seed router.
//
// The evaluation router is invoked once per TPE trial, so its rip-up-
// and-reroute phase is the dominant serial cost of strategy search.
// This bench routes one congested medium synthetic design three ways:
//
//   1. `seed`: a faithful in-bench copy of the pre-batching router --
//      one segment at a time, shared-scratch A* with a binary-heap open
//      list, full W x H overflow scan and per-segment path re-check at
//      the top of every round;
//   2. the batched router at 1 thread (bucket-queue maze, memoized
//      window costs, incremental overflow tracking);
//   3. the batched router at 8 threads.
//
// Reports RRR-phase wall times, the speedup of (3) over (1) -- the
// acceptance number; on a multi-core box it combines the algorithmic
// and the parallel win, on a 1-core box (recorded as hardware_cores)
// the algorithmic win must carry it -- maze throughput (segments/sec),
// rounds, HOF/VOF, and the thread-count bit-identity checksums.
//
// Output: bench_results/BENCH_router.json.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <queue>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "congestion/demand_ledger.h"
#include "grid/capacity.h"
#include "io/synthetic.h"
#include "router/global_router.h"
#include "router/path_use.h"
#include "rsmt/rsmt.h"

namespace {

using namespace puffer;

// --- the seed router, reproduced for an honest baseline ------------------
// Matches the pre-batching GlobalRouter::route() step for step: serial
// initial L routing with live demand accumulation, then serial
// PathFinder rounds with a double-cost A* (std::priority_queue open
// list) and full-grid overflow scans. Only the timing hooks are new.
struct SeedRouter {
  const Design& design;
  RouterConfig config;
  GcellGrid grid;
  CapacityMaps capacity;

  explicit SeedRouter(const Design& d, RouterConfig cfg)
      : design(d),
        config(cfg),
        grid(GcellGrid::from_row_pitch(d.die, d.tech.row_height,
                                       cfg.rows_per_gcell)),
        capacity(build_capacity_maps(d, grid)) {}

  struct Seg {
    GcellIndex a, b;
    std::vector<GcellIndex> path;
  };

  RouteResult route() {
    RouteResult result;
    result.maps = RoutingMaps(grid, capacity);
    Map2D<double>& dmd_h = result.maps.dmd_h;
    Map2D<double>& dmd_v = result.maps.dmd_v;

    if (config.pin_penalty > 0.0 || config.pin_crowding > 0.0) {
      Map2D<double> pin_cnt(grid.nx(), grid.ny());
      for (const Pin& pin : design.pins) {
        const Cell& c = design.cells[static_cast<std::size_t>(pin.cell)];
        const GcellIndex g = grid.index_of(c.x + pin.dx, c.y + pin.dy);
        pin_cnt.at(g.gx, g.gy) += 1.0;
      }
      const double site_w = std::max(design.tech.site_width, 1e-9);
      const double row_h = std::max(design.tech.row_height, 1e-9);
      const double pin_cap = std::max(
          1.0, (grid.gcell_w() / site_w) * (grid.gcell_h() / row_h) *
                   config.pins_per_site);
      for (int gy = 0; gy < grid.ny(); ++gy) {
        for (int gx = 0; gx < grid.nx(); ++gx) {
          const double cnt = pin_cnt.at(gx, gy);
          if (cnt <= 0.0) continue;
          const double excess = std::max(0.0, cnt - pin_cap);
          const double add = quantize_demand(
              config.pin_penalty * cnt + 0.5 * config.pin_crowding * excess);
          if (add <= 0.0) continue;
          dmd_h.at(gx, gy) += add;
          dmd_v.at(gx, gy) += add;
        }
      }
    }

    std::vector<Seg> segs;
    for (const Net& net : design.nets) {
      if (net.pins.size() < 2) continue;
      std::vector<Point> pts;
      for (PinId pid : net.pins) pts.push_back(design.pin_position(pid));
      const RsmtTree tree = build_rsmt(pts);
      for (const RsmtSegment& s : tree.segments) {
        Seg seg;
        seg.a = grid.index_of(tree.points[static_cast<std::size_t>(s.a)].pos.x,
                              tree.points[static_cast<std::size_t>(s.a)].pos.y);
        seg.b = grid.index_of(tree.points[static_cast<std::size_t>(s.b)].pos.x,
                              tree.points[static_cast<std::size_t>(s.b)].pos.y);
        if (seg.a.gx == seg.b.gx && seg.a.gy == seg.b.gy) continue;
        segs.push_back(std::move(seg));
      }
    }
    result.segments = static_cast<int>(segs.size());

    Map2D<double> hist_h(grid.nx(), grid.ny());
    Map2D<double> hist_v(grid.nx(), grid.ny());
    const auto cost_h = [&](int gx, int gy) {
      const double cap = std::max(result.maps.cap_h.at(gx, gy), 1.0);
      const double ratio = (dmd_h.at(gx, gy) + 1.0) / cap;
      double c = 1.0;
      if (ratio > 1.0) {
        c += config.overflow_slope * (ratio - 1.0) + hist_h.at(gx, gy);
      }
      return c;
    };
    const auto cost_v = [&](int gx, int gy) {
      const double cap = std::max(result.maps.cap_v.at(gx, gy), 1.0);
      const double ratio = (dmd_v.at(gx, gy) + 1.0) / cap;
      double c = 1.0;
      if (ratio > 1.0) {
        c += config.overflow_slope * (ratio - 1.0) + hist_v.at(gx, gy);
      }
      return c;
    };
    const auto l_path = [&](GcellIndex a, GcellIndex corner, GcellIndex b) {
      std::vector<GcellIndex> path;
      GcellIndex cur = a;
      path.push_back(cur);
      auto walk = [&](GcellIndex to) {
        while (cur.gx != to.gx) {
          cur.gx += (to.gx > cur.gx) ? 1 : -1;
          path.push_back(cur);
        }
        while (cur.gy != to.gy) {
          cur.gy += (to.gy > cur.gy) ? 1 : -1;
          path.push_back(cur);
        }
      };
      walk(corner);
      walk(b);
      return path;
    };
    const auto path_cost = [&](const std::vector<GcellIndex>& path) {
      double c = 0.0;
      for_each_path_use(path, [&](int gx, int gy, bool h, bool v) {
        if (h) c += cost_h(gx, gy);
        if (v) c += cost_v(gx, gy);
      });
      return c;
    };

    for (Seg& seg : segs) {
      const GcellIndex c1{seg.b.gx, seg.a.gy};
      const GcellIndex c2{seg.a.gx, seg.b.gy};
      auto p1 = l_path(seg.a, c1, seg.b);
      if (seg.a.gx == seg.b.gx || seg.a.gy == seg.b.gy) {
        seg.path = std::move(p1);
      } else {
        auto p2 = l_path(seg.a, c2, seg.b);
        seg.path =
            path_cost(p1) <= path_cost(p2) ? std::move(p1) : std::move(p2);
      }
      apply_path_demand(seg.path, dmd_h, dmd_v, +1.0);
    }

    Timer rrr_timer;
    const int W = grid.nx(), H = grid.ny();
    std::vector<double> gscore;
    std::vector<int> visit_mark;
    std::vector<std::int32_t> parent;
    int visit_token = 0;
    const auto maze = [&](const Seg& seg) -> std::vector<GcellIndex> {
      const int x0 =
          std::max(0, std::min(seg.a.gx, seg.b.gx) - config.bbox_margin);
      const int x1 =
          std::min(W - 1, std::max(seg.a.gx, seg.b.gx) + config.bbox_margin);
      const int y0 =
          std::max(0, std::min(seg.a.gy, seg.b.gy) - config.bbox_margin);
      const int y1 =
          std::min(H - 1, std::max(seg.a.gy, seg.b.gy) + config.bbox_margin);
      const int ww = x1 - x0 + 1, wh = y1 - y0 + 1;
      const std::size_t states = static_cast<std::size_t>(ww) * wh * 2;
      if (gscore.size() < states) {
        gscore.resize(states);
        visit_mark.resize(states, -1);
        parent.resize(states);
      }
      ++visit_token;
      const auto sid = [&](int gx, int gy, int dir) {
        return (static_cast<std::size_t>(gy - y0) * ww + (gx - x0)) * 2 +
               static_cast<std::size_t>(dir);
      };
      const auto heur = [&](int gx, int gy) {
        return static_cast<double>(std::abs(gx - seg.b.gx) +
                                   std::abs(gy - seg.b.gy));
      };
      using QE = std::pair<double, std::uint32_t>;
      std::priority_queue<QE, std::vector<QE>, std::greater<>> open;
      const auto push = [&](int gx, int gy, int dir, double g,
                            std::int32_t par) {
        const std::size_t s = sid(gx, gy, dir);
        if (visit_mark[s] == visit_token && gscore[s] <= g) return;
        visit_mark[s] = visit_token;
        gscore[s] = g;
        parent[s] = par;
        open.emplace(g + heur(gx, gy), static_cast<std::uint32_t>(s));
      };
      push(seg.a.gx, seg.a.gy, 0, cost_h(seg.a.gx, seg.a.gy), -1);
      push(seg.a.gx, seg.a.gy, 1, cost_v(seg.a.gx, seg.a.gy), -1);
      std::int32_t goal_state = -1;
      while (!open.empty()) {
        const auto [f, sraw] = open.top();
        open.pop();
        const std::size_t s = sraw;
        const int dir = static_cast<int>(s % 2);
        const int gx =
            x0 + static_cast<int>((s / 2) % static_cast<std::size_t>(ww));
        const int gy =
            y0 + static_cast<int>((s / 2) / static_cast<std::size_t>(ww));
        if (f > gscore[s] + heur(gx, gy) + 1e-9) continue;
        if (gx == seg.b.gx && gy == seg.b.gy) {
          goal_state = static_cast<std::int32_t>(s);
          break;
        }
        const double g = gscore[s];
        if (gx > x0) {
          push(gx - 1, gy, 0,
               g + cost_h(gx - 1, gy) + (dir == 1 ? config.turn_cost : 0.0),
               static_cast<std::int32_t>(s));
        }
        if (gx < x1) {
          push(gx + 1, gy, 0,
               g + cost_h(gx + 1, gy) + (dir == 1 ? config.turn_cost : 0.0),
               static_cast<std::int32_t>(s));
        }
        if (gy > y0) {
          push(gx, gy - 1, 1,
               g + cost_v(gx, gy - 1) + (dir == 0 ? config.turn_cost : 0.0),
               static_cast<std::int32_t>(s));
        }
        if (gy < y1) {
          push(gx, gy + 1, 1,
               g + cost_v(gx, gy + 1) + (dir == 0 ? config.turn_cost : 0.0),
               static_cast<std::int32_t>(s));
        }
      }
      std::vector<GcellIndex> path;
      if (goal_state < 0) return path;
      std::int32_t s = goal_state;
      while (s >= 0) {
        const int gx =
            x0 + static_cast<int>((static_cast<std::size_t>(s) / 2) %
                                  static_cast<std::size_t>(ww));
        const int gy =
            y0 + static_cast<int>((static_cast<std::size_t>(s) / 2) /
                                  static_cast<std::size_t>(ww));
        path.push_back({gx, gy});
        s = parent[static_cast<std::size_t>(s)];
      }
      std::reverse(path.begin(), path.end());
      std::vector<GcellIndex> dedup;
      for (const GcellIndex& g : path) {
        if (dedup.empty() || dedup.back().gx != g.gx ||
            dedup.back().gy != g.gy) {
          dedup.push_back(g);
        }
      }
      return dedup;
    };

    for (int round = 0; round < config.rr_rounds; ++round) {
      bool any_overflow = false;
      for (int gy = 0; gy < H; ++gy) {
        for (int gx = 0; gx < W; ++gx) {
          if (dmd_h.at(gx, gy) > result.maps.cap_h.at(gx, gy)) {
            hist_h.at(gx, gy) += config.history_step;
            any_overflow = true;
          }
          if (dmd_v.at(gx, gy) > result.maps.cap_v.at(gx, gy)) {
            hist_v.at(gx, gy) += config.history_step;
            any_overflow = true;
          }
        }
      }
      if (!any_overflow) break;
      int rerouted = 0;
      for (Seg& seg : segs) {
        bool touches = false;
        for (std::size_t i = 0; i < seg.path.size() && !touches; ++i) {
          const GcellIndex& g = seg.path[i];
          const bool h_used =
              (i > 0 && seg.path[i - 1].gy == g.gy) ||
              (i + 1 < seg.path.size() && seg.path[i + 1].gy == g.gy);
          const bool v_used =
              (i > 0 && seg.path[i - 1].gx == g.gx) ||
              (i + 1 < seg.path.size() && seg.path[i + 1].gx == g.gx);
          if (h_used &&
              dmd_h.at(g.gx, g.gy) > result.maps.cap_h.at(g.gx, g.gy)) {
            touches = true;
          }
          if (v_used &&
              dmd_v.at(g.gx, g.gy) > result.maps.cap_v.at(g.gx, g.gy)) {
            touches = true;
          }
        }
        if (!touches) continue;
        apply_path_demand(seg.path, dmd_h, dmd_v, -1.0);
        std::vector<GcellIndex> np = maze(seg);
        if (!np.empty()) seg.path = std::move(np);
        apply_path_demand(seg.path, dmd_h, dmd_v, +1.0);
        ++rerouted;
      }
      result.rerouted += rerouted;
      result.reroute_attempts += rerouted;
      ++result.rounds_used;
      if (rerouted == 0) break;
    }
    result.rrr_time_s = rrr_timer.elapsed_seconds();

    result.overflow = compute_overflow(result.maps);
    double wl = 0.0;
    for (const Seg& seg : segs) {
      for (std::size_t i = 1; i < seg.path.size(); ++i) {
        wl += (seg.path[i].gy == seg.path[i - 1].gy) ? grid.gcell_w()
                                                     : grid.gcell_h();
      }
    }
    result.wirelength = wl;
    return result;
  }
};

}  // namespace

int main() {
  const int scale = bench::scale_divisor();
  SyntheticSpec spec;
  spec.name = "router_bench";
  spec.num_cells = 640000 / scale;
  spec.num_nets = 768000 / scale;
  spec.num_macros = 8;
  spec.seed = 31;
  // The generator's default supply is heavily oversubscribed; 1.5x
  // leaves a few percent residual overflow -- hot spots that negotiate
  // over several rounds, which is the regime the RRR phase exists for.
  spec.h_capacity_factor = 1.5;
  spec.v_capacity_factor = 1.5;
  const Design d = generate_synthetic(spec);

  RouterConfig cfg;
  cfg.rr_rounds = 8;

  std::printf("routing %zu cells / %zu nets (scale 1/%d)\n", d.cells.size(),
              d.nets.size(), scale);

  // Both routers are deterministic, so repeated runs differ only by
  // scheduler noise; best-of-kReps isolates the real wall time.
  constexpr int kReps = 3;

  SeedRouter seed(d, cfg);
  RouteResult r_seed;
  double seed_total_s = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    Timer t;
    RouteResult r = seed.route();
    const double total = t.elapsed_seconds();
    if (rep == 0 || r.rrr_time_s < r_seed.rrr_time_s) {
      r_seed = std::move(r);
      seed_total_s = total;
    }
  }
  std::printf(
      "seed   : total %.3fs rrr %.3fs, %d segs, %d rerouted / %d rounds, "
      "HOF %.2f%% VOF %.2f%%\n",
      seed_total_s, r_seed.rrr_time_s, r_seed.segments, r_seed.rerouted,
      r_seed.rounds_used, r_seed.overflow.hof_pct, r_seed.overflow.vof_pct);

  GlobalRouter router(d, cfg);
  const auto route_best_of = [&](int threads, double& total_s) {
    par::set_num_threads(threads);
    RouteResult best;
    for (int rep = 0; rep < kReps; ++rep) {
      Timer t;
      RouteResult r = router.route();
      const double total = t.elapsed_seconds();
      if (rep == 0 || r.rrr_time_s < best.rrr_time_s) {
        best = std::move(r);
        total_s = total;
      }
    }
    par::set_num_threads(0);
    return best;
  };

  double total_1t = 0.0, total_8t = 0.0;
  const RouteResult r1 = route_best_of(1, total_1t);
  std::printf(
      "1 thr  : total %.3fs rrr %.3fs, %d segs, %d rerouted (%d attempts) / "
      "%d rounds, HOF %.2f%% VOF %.2f%%\n",
      total_1t, r1.rrr_time_s, r1.segments, r1.rerouted, r1.reroute_attempts,
      r1.rounds_used, r1.overflow.hof_pct, r1.overflow.vof_pct);
  const RouteResult r8 = route_best_of(8, total_8t);
  std::printf("8 thr  : total %.3fs rrr %.3fs\n", total_8t, r8.rrr_time_s);

  const bool identical = demand_checksum(r1.maps) == demand_checksum(r8.maps) &&
                         r1.wirelength == r8.wirelength &&
                         r1.rerouted == r8.rerouted;
  const double speedup_vs_seed =
      r8.rrr_time_s > 0.0 ? r_seed.rrr_time_s / r8.rrr_time_s : 0.0;
  const double thread_speedup =
      r8.rrr_time_s > 0.0 ? r1.rrr_time_s / r8.rrr_time_s : 0.0;
  std::printf(
      "\nrrr speedup vs seed at 8 threads: %.2fx (algorithmic %.2fx, "
      "thread scaling %.2fx on %u hardware cores), bit-identical across "
      "thread counts: %s\n",
      speedup_vs_seed,
      r1.rrr_time_s > 0.0 ? r_seed.rrr_time_s / r1.rrr_time_s : 0.0,
      thread_speedup, std::thread::hardware_concurrency(),
      identical ? "yes" : "NO");

  bench::BenchReport rec("router");
  rec.config("scale", scale);
  rec.config("num_cells", static_cast<int>(d.cells.size()));
  rec.config("num_nets", static_cast<int>(d.nets.size()));
  rec.config("segments", r1.segments);
  rec.config("hardware_cores",
             static_cast<int>(std::thread::hardware_concurrency()));
  rec.config("rr_rounds", cfg.rr_rounds);
  rec.baseline("total_s", seed_total_s);
  rec.baseline("rrr_s", r_seed.rrr_time_s);
  rec.baseline("rerouted", r_seed.rerouted);
  rec.baseline("rounds", r_seed.rounds_used);
  rec.baseline("hof_pct", r_seed.overflow.hof_pct);
  rec.baseline("vof_pct", r_seed.overflow.vof_pct);
  rec.baseline("wirelength", r_seed.wirelength);
  rec.result("total_1t_s", total_1t);
  rec.result("rrr_1t_s", r1.rrr_time_s);
  rec.result("total_8t_s", total_8t);
  rec.result("rrr_8t_s", r8.rrr_time_s);
  rec.result("rerouted", r1.rerouted);
  rec.result("reroute_attempts", r1.reroute_attempts);
  rec.result("rounds", r1.rounds_used);
  rec.result("maze_segments_per_s",
             r1.rrr_time_s > 0.0 ? r1.reroute_attempts / r1.rrr_time_s : 0.0);
  rec.result("hof_pct", r1.overflow.hof_pct);
  rec.result("vof_pct", r1.overflow.vof_pct);
  rec.result("wirelength", r1.wirelength);
  rec.speedup("rrr_vs_seed_8t", speedup_vs_seed);
  rec.speedup("rrr_vs_seed_1t",
              r1.rrr_time_s > 0.0 ? r_seed.rrr_time_s / r1.rrr_time_s : 0.0);
  rec.speedup("rrr_thread_8t_vs_1t", thread_speedup);
  rec.checksum("demand_1t", demand_checksum(r1.maps));
  rec.checksum("demand_8t", demand_checksum(r8.maps));
  rec.bit_identical(identical);
  const std::string path = rec.write();
  std::printf("wrote %s\n", path.c_str());
  return identical ? 0 : 1;
}
