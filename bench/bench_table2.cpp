// Table II reproduction: HOF / VOF / WL / RT for Commercial_Proxy,
// RePlAce_RC and PUFFER over the ten-design suite, with the paper's
// averages and 1%-pass counts.
//
// Matching the paper's reporting:
//   * HOF/VOF are averaged as raw values ("the average value instead of
//     the average ratio");
//   * WL and RT averages are geometric-mean ratios normalized to PUFFER;
//   * pass counts use the 1% criterion per direction.
//
// Usage: bench_table2 [benchmark-name ...]   (default: all ten)
// Environment: PUFFER_SCALE (see bench_util.h).
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "bench/bench_util.h"
#include "common/table.h"
#include "core/experiment.h"

int main(int argc, char** argv) {
  using namespace puffer;
  const int scale = bench::scale_divisor();
  std::printf("=== Table II: routability comparison (scale 1/%d) ===\n\n", scale);

  std::vector<SyntheticSpec> specs;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) specs.push_back(table1_spec(argv[i], scale));
  } else {
    specs = table1_suite(scale);
  }

  const PlacerKind order[] = {PlacerKind::kCommercialProxy,
                              PlacerKind::kReplaceRc, PlacerKind::kPuffer};
  ExperimentConfig config;

  TextTable table({"Benchmark", "Placer", "HOF(%)", "VOF(%)", "WL", "RT(s)",
                   "RouteRT(s)", "Segs", "Rerouted", "RRRounds", "PassH",
                   "PassV"});
  struct Acc {
    double hof = 0, vof = 0;
    double log_wl = 0, log_rt = 0;
    int pass_h = 0, pass_v = 0;
  };
  Acc acc[3];
  std::vector<std::vector<ExperimentResult>> all(specs.size());

  for (std::size_t b = 0; b < specs.size(); ++b) {
    for (int p = 0; p < 3; ++p) {
      std::fprintf(stderr, "[table2] %s / %s ...\n", specs[b].name.c_str(),
                   placer_name(order[p]));
      ExperimentResult r = run_benchmark(specs[b], order[p], config);
      table.add_row({r.benchmark, placer_name(order[p]),
                     TextTable::fmt(r.hof_pct(), 2),
                     TextTable::fmt(r.vof_pct(), 2),
                     TextTable::fmt(r.routed_wl(), 0),
                     TextTable::fmt(r.runtime_s(), 1),
                     TextTable::fmt(r.flow.router.route_time_s, 2),
                     TextTable::fmt_int(r.flow.router.segments),
                     TextTable::fmt_int(r.flow.router.rerouted),
                     TextTable::fmt_int(r.flow.router.rounds_used),
                     r.pass_h() ? "yes" : "NO", r.pass_v() ? "yes" : "NO"});
      acc[p].hof += r.hof_pct();
      acc[p].vof += r.vof_pct();
      acc[p].log_wl += std::log(std::max(r.routed_wl(), 1.0));
      acc[p].log_rt += std::log(std::max(r.runtime_s(), 1e-3));
      acc[p].pass_h += r.pass_h() ? 1 : 0;
      acc[p].pass_v += r.pass_v() ? 1 : 0;
      all[b].push_back(std::move(r));
    }
  }
  std::printf("%s\n", table.to_string().c_str());

  const double n = static_cast<double>(specs.size());
  TextTable avg({"Placer", "avg HOF(%)", "avg VOF(%)", "WL ratio", "RT ratio",
                 "Pass H", "Pass V"});
  const double wl_ref = acc[2].log_wl / n;  // PUFFER = 1.000
  const double rt_ref = acc[2].log_rt / n;
  for (int p = 0; p < 3; ++p) {
    avg.add_row({placer_name(order[p]), TextTable::fmt(acc[p].hof / n, 3),
                 TextTable::fmt(acc[p].vof / n, 3),
                 TextTable::fmt(std::exp(acc[p].log_wl / n - wl_ref), 3),
                 TextTable::fmt(std::exp(acc[p].log_rt / n - rt_ref), 3),
                 TextTable::fmt_int(acc[p].pass_h),
                 TextTable::fmt_int(acc[p].pass_v)});
  }
  std::printf("Averages (WL/RT normalized to PUFFER, as in the paper):\n%s\n",
              avg.to_string().c_str());

  std::ofstream csv(bench::results_dir() + "/table2.csv");
  csv << table.to_csv();
  std::printf("Per-run rows written to %s/table2.csv\n",
              bench::results_dir().c_str());

  std::printf(
      "\nPaper reference (Table II averages): Commercial_Inn "
      "0.341/0.942, WL 0.954, RT 2.699; RePlAce 1.230/3.368, WL 1.035, RT "
      "1.424; PUFFER 0.289/0.862, WL 1.000, RT 1.000; pass 10/8, 7/6, 10/8.\n");
  return 0;
}
