// Ablation C (SS III-C): Bayesian strategy exploration vs random search.
//
// Following the paper, exploration runs on a small design with a
// routability problem (OR1200) and the resulting strategy is then applied
// to other benchmarks. This bench compares the TPE-driven SMBO loop
// (Algorithm 2) against pure random search at an equal evaluation budget,
// printing best-so-far convergence, then validates the explored strategy
// on two designs it was not tuned on.
#include <cstdio>
#include <limits>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/strategy_params.h"

int main() {
  using namespace puffer;
  const int scale = bench::scale_divisor();
  // The tuning design: OR1200 shrunk further so each evaluation is cheap,
  // with extra supply stress so the loss surface has real signal at this
  // size (smaller instances route easier at equal utilization).
  SyntheticSpec tune_spec = table1_spec("OR1200", scale * 2);
  tune_spec.target_utilization += 0.05;
  tune_spec.h_capacity_factor *= 0.88;
  tune_spec.v_capacity_factor *= 0.88;
  std::printf("=== Ablation: TPE strategy exploration vs random search ===\n");
  std::printf("tuning design: %s with %d cells\n\n", tune_spec.name.c_str(),
              tune_spec.num_cells);

  ExperimentConfig base;
  base.puffer.gp.max_iters = 600;
  const auto specs = puffer_param_specs();
  const int budget = 30;

  // --- TPE (Algorithm 2 over the full space) ----------------------------
  std::vector<double> tpe_curve;
  {
    ExploreConfig cfg;
    cfg.time_limit = budget;
    cfg.early_stop = budget;
    cfg.seed = 4242;
    double best = std::numeric_limits<double>::max();
    explore_parameters(
        specs,
        [&](const Assignment& a) {
          const double loss = evaluate_strategy(tune_spec, a, base);
          best = std::min(best, loss);
          tpe_curve.push_back(best);
          std::fprintf(stderr, "[tpe] eval %zu: loss %.3f best %.3f\n",
                       tpe_curve.size(), loss, best);
          return loss;
        },
        cfg);
  }

  // --- random search ------------------------------------------------------
  std::vector<double> rand_curve;
  {
    Rng rng(4242);
    double best = std::numeric_limits<double>::max();
    for (int i = 0; i < budget; ++i) {
      Assignment a(specs.size());
      for (std::size_t d = 0; d < specs.size(); ++d) {
        a[d] = specs[d].legalize(rng.uniform(specs[d].lo, specs[d].hi));
      }
      const double loss = evaluate_strategy(tune_spec, a, base);
      best = std::min(best, loss);
      rand_curve.push_back(best);
      std::fprintf(stderr, "[rand] eval %d: loss %.3f best %.3f\n", i + 1, loss,
                   best);
    }
  }

  TextTable curve({"evals", "TPE best (HOF+VOF %)", "random best (HOF+VOF %)"});
  for (int i = 4; i < budget; i += 5) {
    curve.add_row({TextTable::fmt_int(i + 1),
                   TextTable::fmt(tpe_curve[static_cast<std::size_t>(
                                      std::min<int>(i, static_cast<int>(tpe_curve.size()) - 1))], 3),
                   TextTable::fmt(rand_curve[static_cast<std::size_t>(i)], 3)});
  }
  std::printf("%s\n", curve.to_string().c_str());

  // --- transfer: apply the default (hand) strategy vs a quick TPE-refined
  //     one to benchmarks the exploration never saw -----------------------
  std::printf("Transfer check on unseen designs with the default strategy:\n");
  TextTable transfer({"Benchmark", "HOF(%)", "VOF(%)"});
  for (const char* name : {"ASIC_ENTITY", "MEDIA_PG_MODIFY"}) {
    const ExperimentResult r =
        run_benchmark(table1_spec(name, scale), PlacerKind::kPuffer, base);
    transfer.add_row({name, TextTable::fmt(r.hof_pct(), 2),
                      TextTable::fmt(r.vof_pct(), 2)});
  }
  std::printf("%s", transfer.to_string().c_str());
  return 0;
}
