// Trial orchestration vs serial staged exploration (the PR's tentpole).
//
// Both sides run the identical SMBO loop (same TPE seed, same batch
// fold) over the same pinned-trigger strategy subspace; the only
// difference is HOW trials execute:
//
//   baseline  every candidate re-runs the full staged pipeline from
//             scratch (initial place + GP prefix + padded continuation),
//             one after another -- T x (prefix + suffix).
//   orchestr. the prefix runs ONCE, is checkpointed, and K concurrent
//             sessions fork from it under worker leases --
//             prefix + T x suffix.
//
// Because the staged contract is bit-exact, the two sides must agree on
// the best strategy, its loss bits and its final-position checksum --
// that identity is the point, and `bit_identical` records it. A third
// variant adds median-rule pruning (results legitimately differ; its
// numbers are reported separately).
//
// Output: bench_results/BENCH_orchestrator.json.
#include <cstdio>
#include <map>
#include <mutex>
#include <vector>

#include "bench/bench_util.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "explore/strategy_explorer.h"
#include "io/synthetic.h"
#include "orchestrate/orchestrator.h"

namespace {

using namespace puffer;

SyntheticSpec bench_spec(int scale) {
  SyntheticSpec spec;
  spec.name = "orch_bench";
  spec.num_cells = 256000 / scale;
  spec.num_nets = 320000 / scale;
  spec.num_macros = 4;
  spec.seed = 42;
  spec.target_utilization = 0.78;
  spec.v_capacity_factor = 0.7;  // keep losses non-trivial
  return spec;
}

// The explored subspace: the padding triggers (tau, xi) are pinned so
// every trial forks at the same overflow -- the orchestrator requires
// fork_overflow >= max tau anyway, and pinning keeps the shared prefix
// (GP from ~0.9 down to tau) the dominant cost the orchestrator
// amortizes, which is exactly the workload it exists for.
constexpr double kTau = 0.15;
constexpr double kXi = 4.0;
constexpr double kForkOverflow = 0.15;

std::vector<ParamSpec> bench_specs() {
  std::vector<ParamSpec> specs = puffer_param_specs();
  specs[10].lo = specs[10].hi = kXi;   // xi
  specs[11].lo = specs[11].hi = kTau;  // tau
  return specs;
}

}  // namespace

int main() {
  const int scale = bench::scale_divisor();
  const int kTrials = 8;
  const int kBatch = 4;
  const int kConcurrency = 2;
  const std::uint64_t kSeed = 1234;

  const SyntheticSpec spec = bench_spec(scale);
  Design base_design = generate_synthetic(spec);
  std::printf("orchestrator bench: %zu cells, %zu nets, %d trials, "
              "batch %d, K=%d, threads %d\n",
              base_design.num_movable(), base_design.nets.size(), kTrials,
              kBatch, kConcurrency, par::num_threads());

  ExperimentConfig base;
  base.puffer.num_threads = 0;

  // --- serial staged baseline -------------------------------------------
  // explore_parameters() with batch_size=kBatch is the exact fold the
  // orchestrator mirrors, so the candidate sequence is identical; each
  // evaluation re-runs the full staged pipeline privately.
  std::mutex sums_mutex;
  std::map<std::vector<double>, std::uint64_t> checksums;
  const auto staged_eval = [&](const Assignment& a) {
    Design d = base_design;
    ExperimentConfig cfg = base;
    cfg.puffer = apply_assignment(base.puffer, a);
    cfg.puffer.num_threads = 0;
    PufferFlow flow(d, cfg.puffer);
    FlowSnapshot snap;
    flow.run_prefix(kForkOverflow, RngStream(kSeed), &snap);
    flow.run_from(snap);
    const RouteResult route =
        evaluate_routability(d, cfg.eval_router, flow.estimator());
    {
      const std::lock_guard<std::mutex> lock(sums_mutex);
      checksums[a] = position_checksum(d);
    }
    return route.overflow.hof_pct + route.overflow.vof_pct;
  };

  ExploreConfig serial_cfg;
  serial_cfg.time_limit = kTrials;
  serial_cfg.early_stop = kTrials;
  serial_cfg.batch_size = kBatch;
  serial_cfg.seed = kSeed;

  Timer serial_timer;
  const ParamExplorationOutcome serial =
      explore_parameters(bench_specs(), staged_eval, serial_cfg);
  const double serial_s = serial_timer.elapsed_seconds();
  const std::uint64_t serial_checksum = checksums[serial.best];
  std::printf("serial staged : %.2f s, best loss %.6g, checksum %016llx\n",
              serial_s, serial.best_loss,
              static_cast<unsigned long long>(serial_checksum));

  // --- orchestrated ------------------------------------------------------
  OrchestratorConfig orch_cfg;
  orch_cfg.trials = kTrials;
  orch_cfg.batch_size = kBatch;
  orch_cfg.early_stop = kTrials;
  orch_cfg.concurrency = kConcurrency;
  orch_cfg.fork_overflow = kForkOverflow;
  orch_cfg.seed = kSeed;

  Timer orch_timer;
  Design orch_design = generate_synthetic(spec);
  TrialOrchestrator orchestrator(orch_design, bench_specs(), base, orch_cfg);
  const OrchestrationResult orch = orchestrator.run();
  const double orch_s = orch_timer.elapsed_seconds();
  std::printf("orchestrated  : %.2f s (prefix %.2f s, utilization %.0f%%), "
              "best loss %.6g, checksum %016llx\n",
              orch_s, orch.stats.prefix_s,
              100.0 * orch.stats.scheduler_utilization, orch.best_loss,
              static_cast<unsigned long long>(orch.best_checksum));

  const bool identical = orch.best_loss == serial.best_loss &&
                         orch.best == serial.best &&
                         orch.best_checksum == serial_checksum;
  std::printf("speedup       : %.2fx, bit-identical best strategy: %s\n",
              serial_s / orch_s, identical ? "yes" : "NO");

  // --- orchestrated + pruning -------------------------------------------
  OrchestratorConfig prune_cfg = orch_cfg;
  prune_cfg.prune.enabled = true;
  prune_cfg.prune.grace_rounds = 1;
  prune_cfg.prune.min_history = 3;

  Timer prune_timer;
  Design prune_design = generate_synthetic(spec);
  TrialOrchestrator pruner(prune_design, bench_specs(), base, prune_cfg);
  const OrchestrationResult pruned = pruner.run();
  const double prune_s = prune_timer.elapsed_seconds();
  std::printf("with pruning  : %.2f s, %d trials pruned, best loss %.6g\n",
              prune_s, pruned.stats.trials_pruned, pruned.best_loss);

  bench::BenchReport report("orchestrator");
  report.config("scale", scale);
  report.config("cells", static_cast<int>(base_design.num_movable()));
  report.config("nets", static_cast<int>(base_design.nets.size()));
  report.config("trials", kTrials);
  report.config("batch_size", kBatch);
  report.config("concurrency", kConcurrency);
  report.config("threads", par::num_threads());
  report.config("fork_overflow", kForkOverflow);
  report.baseline("serial_staged_s", serial_s);
  report.baseline("best_loss", serial.best_loss);
  report.result("orchestrated_s", orch_s);
  report.result("prefix_s", orch.stats.prefix_s);
  report.result("trials_s", orch.stats.trials_s);
  report.result("scheduler_utilization", orch.stats.scheduler_utilization);
  report.result("best_loss", orch.best_loss);
  report.result("pruned_s", prune_s);
  report.result("pruned_trials_pruned", pruned.stats.trials_pruned);
  report.result("pruned_best_loss", pruned.best_loss);
  report.speedup("orchestrated", serial_s / orch_s);
  report.speedup("pruned", serial_s / prune_s);
  report.checksum("serial_best", serial_checksum);
  report.checksum("orchestrated_best", orch.best_checksum);
  report.bit_identical(identical);
  const std::string path = report.write();
  std::printf("wrote %s\n", path.c_str());
  return identical ? 0 : 1;
}
