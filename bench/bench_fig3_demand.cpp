// Figure 3 reproduction: congestion estimation on a single net.
//
// (a)/(b): horizontal and vertical probabilistic routing demand for a
// multi-pin net (I-shape unit demand, L-shape averaged over the bounding
// box, darker = higher demand). (c): detour-imitating demand expansion on
// a congested I-shaped segment.
#include <cstdio>

#include "bench/bench_util.h"
#include "congestion/estimator.h"

namespace {

using namespace puffer;

Design demo_design() {
  Design d;
  d.die = {0, 0, 240, 240};
  d.tech = Technology::make_default(1.0, 8.0, 8);
  for (int r = 0; r < 30; ++r) d.rows.push_back({r * 8.0, 0, 240, 1.0, 8.0});
  return d;
}

CellId cell_at(Design& d, double x, double y) {
  Cell c;
  c.name = "c" + std::to_string(d.cells.size());
  c.width = 1;
  c.height = 8;
  c.x = x;
  c.y = y;
  return d.add_cell(std::move(c));
}

void print_map(const char* title, const Map2D<double>& m) {
  std::printf("%s\n", title);
  for (int gy = m.ny() - 1; gy >= 0; --gy) {
    std::printf("  ");
    for (int gx = 0; gx < m.nx(); ++gx) std::printf("%5.2f ", m.at(gx, gy));
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace puffer;
  std::printf("=== Figure 3: congestion estimation for one net ===\n\n");

  // (a)/(b): a 4-pin net with an I-shaped trunk and an L-shaped branch.
  {
    Design d = demo_design();
    const NetId n = d.add_net("demo");
    d.connect(cell_at(d, 20, 60), n, 0, 0);    // Gcell (0, 2)
    d.connect(cell_at(d, 120, 60), n, 0, 0);   // (5, 2)
    d.connect(cell_at(d, 200, 160), n, 0, 0);  // (8, 6)
    d.connect(cell_at(d, 60, 110), n, 0, 0);   // (2, 4)
    CongestionConfig cfg;
    cfg.pin_penalty = 0.0;
    cfg.enable_detour_expansion = false;
    const CongestionResult r = CongestionEstimator(d, cfg).estimate();
    print_map("(a) horizontal routing demand (track-equivalents per Gcell):",
              r.maps.dmd_h);
    print_map("(b) vertical routing demand:", r.maps.dmd_v);
    std::printf("RSMT topology: %zu tree points (%zu Steiner), %zu segments\n\n",
                r.trees[0].points.size(),
                r.trees[0].points.size() - 4, r.trees[0].segments.size());
  }

  // (c): expansion moves the demand of a congested I-shaped bundle.
  {
    Design d = demo_design();
    for (int i = 0; i < 150; ++i) {
      const NetId n = d.add_net("bundle" + std::to_string(i));
      d.connect(cell_at(d, 20, 110), n, 0, 0);
      d.connect(cell_at(d, 220, 110), n, 0, 0);
    }
    CongestionConfig off;
    off.pin_penalty = 0.0;
    off.enable_detour_expansion = false;
    CongestionConfig on = off;
    on.enable_detour_expansion = true;
    const CongestionResult before = CongestionEstimator(d, off).estimate();
    const CongestionResult after = CongestionEstimator(d, on).estimate();
    std::printf("(c) detour-imitating expansion of a congested I-shaped "
                "bundle (150 nets on one Gcell row, capacity ~%.0f):\n\n",
                before.maps.cap_h.at(5, 4));
    print_map("    demand before expansion (column 5 shown per row):",
              before.maps.dmd_h);
    print_map("    demand after expansion:", after.maps.dmd_h);
    std::printf("    expanded segments: %d\n", after.expanded_segments);
    std::printf("    overflow before: %.1f  after: %.1f (track-equivalents)\n",
                compute_overflow(before.maps).total_overflow,
                compute_overflow(after.maps).total_overflow);
  }
  return 0;
}
