// Ablation A (design choice of SS III-A3): how much does the
// detour-imitating expansion improve the congestion estimate?
//
// For several designs placed by a wirelength-driven run, compares the
// estimator's congestion map (with and without expansion, and without the
// pin penalty) against the evaluation router's map: Pearson correlation
// plus estimated-vs-routed overflow totals.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/table.h"
#include "core/flow.h"
#include "io/synthetic.h"

int main() {
  using namespace puffer;
  const int scale = bench::scale_divisor();
  std::printf("=== Ablation: estimation accuracy vs the routed map (scale 1/%d) ===\n\n",
              scale);

  TextTable table({"Benchmark", "Variant", "corr(est, routed)", "est OF(%)",
                   "routed OF(%)"});
  for (const char* name : {"OR1200", "MEDIA_SUBSYS", "CT_TOP"}) {
    Design d = generate_synthetic(table1_spec(name, scale));
    initial_place(d);
    GpConfig gp;
    EPlaceEngine engine(d, gp);
    engine.run_to_overflow(0.12);

    const RouteResult routed = evaluate_routability(d);
    const Map2D<double> routed_cg = routed.maps.cg_map();

    struct Variant {
      const char* label;
      bool expansion;
      double pin_penalty;
    };
    const Variant variants[] = {
        {"full (expansion + pin penalty)", true, 0.04},
        {"no detour expansion", false, 0.04},
        {"no pin penalty", true, 0.0},
        {"neither", false, 0.0},
    };
    for (const Variant& v : variants) {
      CongestionConfig cc;
      cc.enable_detour_expansion = v.expansion;
      cc.pin_penalty = v.pin_penalty;
      const CongestionResult est = CongestionEstimator(d, cc).estimate();
      const double corr = map_correlation(est.maps.cg_map(), routed_cg);
      table.add_row({name, v.label, TextTable::fmt(corr, 4),
                     TextTable::fmt(compute_overflow(est.maps).total_pct(), 2),
                     TextTable::fmt(routed.overflow.total_pct(), 2)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expected shape: the full estimator correlates best with the routed\n"
      "map; removing the expansion leaves overflow overly concentrated and\n"
      "lowers the correlation on congested designs.\n");
  return 0;
}
