// Ablation D (SS III-D claim): white-space-assisted legalization.
//
// The paper argues that *inheriting* the global-placement padding into
// legalization keeps the optimization consistent: without it, cells of
// the same cluster "cling together" again and routability degrades.
// This bench runs the identical PUFFER global placement and then
// legalizes (1) with the inherited discretized padding and (2) plain
// Abacus without it, comparing the routed overflow.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/table.h"
#include "core/flow.h"
#include "io/synthetic.h"

int main() {
  using namespace puffer;
  const int scale = bench::scale_divisor();
  std::printf("=== Ablation: padding inheritance in legalization (scale 1/%d) ===\n\n",
              scale);

  TextTable table({"Benchmark", "Legalization", "HOF(%)", "VOF(%)", "HPWL"});
  for (const char* name : {"OR1200", "MEDIA_SUBSYS", "A53_ADB_WRAP"}) {
    std::fprintf(stderr, "[legal_padding] %s ...\n", name);
    // Shared global placement with padding.
    Design gp_result = generate_synthetic(table1_spec(name, scale));
    PufferConfig cfg;
    initial_place(gp_result, cfg.init);
    EPlaceEngine engine(gp_result, cfg.gp);
    PaddingEngine padder(gp_result, engine.movable_cells(), cfg.padding);
    CongestionEstimator estimator(gp_result, cfg.congestion);
    while (true) {
      engine.run_to_overflow(cfg.padding.tau);
      if (!padder.should_trigger(engine.density_overflow())) break;
      const CongestionResult congestion = estimator.estimate();
      engine.set_padding(padder.update(congestion));
      for (int k = 0; k < cfg.padding.spacing_iters; ++k) {
        if (!engine.step()) break;
      }
      engine.sync_to_design();
    }
    engine.run_to_overflow(cfg.final_overflow);

    std::vector<double> pad_by_cell(gp_result.cells.size(), 0.0);
    const auto& movable = engine.movable_cells();
    for (std::size_t i = 0; i < movable.size(); ++i) {
      pad_by_cell[static_cast<std::size_t>(movable[i])] = padder.padding()[i];
    }

    for (const bool inherit : {true, false}) {
      Design d = gp_result;  // same GP snapshot for both variants
      if (inherit) {
        const auto levels = discretize_padding(d, pad_by_cell, cfg.discrete);
        legalize(d, levels, cfg.legal);
      } else {
        legalize(d, {}, cfg.legal);
      }
      const RouteResult r = evaluate_routability(d);
      table.add_row({name, inherit ? "with inherited padding" : "plain Abacus",
                     TextTable::fmt(r.overflow.hof_pct, 2),
                     TextTable::fmt(r.overflow.vof_pct, 2),
                     TextTable::fmt(d.total_hpwl(), 0)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expected shape: inheriting the padding keeps the earned white space\n"
      "in congested regions and lowers the routed overflow at a small HPWL\n"
      "cost (the consistency argument of SS III-D).\n");
  return 0;
}
