// Table I reproduction: statistics of the benchmark suite.
//
// Prints #Macros / #Cells / #Nets / #Pins for the ten synthetic designs
// mirroring the paper's industrial benchmarks at the configured scale,
// alongside the paper's original (unscaled) numbers for reference.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/table.h"
#include "io/synthetic.h"

int main() {
  using namespace puffer;
  const int scale = bench::scale_divisor();
  std::printf("=== Table I: benchmark statistics (scale 1/%d of the paper) ===\n\n",
              scale);

  TextTable table({"Benchmark", "#Macros", "#Cells", "#Nets", "#Pins",
                   "Util", "Die"});
  for (const SyntheticSpec& spec : table1_suite(scale)) {
    const Design d = generate_synthetic(spec);
    char die[64];
    std::snprintf(die, sizeof(die), "%.0fx%.0f", d.die.width(), d.die.height());
    table.add_row({d.name,
                   TextTable::fmt_int(static_cast<long long>(d.num_macros())),
                   TextTable::fmt_int(static_cast<long long>(d.num_movable())),
                   TextTable::fmt_int(static_cast<long long>(d.nets.size())),
                   TextTable::fmt_int(static_cast<long long>(d.num_movable_pins())),
                   TextTable::fmt(d.utilization(), 2), die});
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("Paper's original sizes (for the scale mapping):\n");
  TextTable paper({"Benchmark", "#Macros", "#Cells", "#Nets", "#Pins"});
  const char* rows[][5] = {
      {"OR1200", "22", "122K", "193K", "660K"},
      {"ASIC_ENTITY", "45", "149K", "155K", "630K"},
      {"BIT_COIN", "43", "760K", "760K", "3151K"},
      {"MEDIA_SUBSYS", "70", "1228K", "1296K", "5235K"},
      {"MEDIA_PG_MODIFY", "70", "1228K", "1296K", "5235K"},
      {"A53_ADB_WRAP", "7", "1232K", "1300K", "5242K"},
      {"CT_SCAN", "39", "1249K", "1317K", "5282K"},
      {"CT_TOP", "38", "1270K", "1272K", "4091K"},
      {"E31_ECOREPLEX", "56", "1533K", "1537K", "6303K"},
      {"OPENC910", "332", "1590K", "1741K", "7276K"},
  };
  for (const auto& r : rows) paper.add_row({r[0], r[1], r[2], r[3], r[4]});
  std::printf("%s", paper.to_string().c_str());
  return 0;
}
