// Shared helpers for the benchmark harnesses: benchmark scale selection
// and a small results directory convention.
//
// The paper's industrial designs (Table I) are reproduced as synthetic
// designs scaled down by PUFFER_SCALE (default 64: ~2k-25k movable cells,
// a full Table II run in minutes). Set PUFFER_SCALE=40 for the largest
// reproduction used in EXPERIMENTS.md, or larger values for quick runs.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "common/str_util.h"

namespace puffer::bench {

inline int scale_divisor() {
  if (const char* env = std::getenv("PUFFER_SCALE")) {
    const int v = std::atoi(env);
    if (v >= 1) return v;
  }
  return 64;
}

// Where benches drop CSVs and map images.
inline std::string results_dir() {
  const std::string dir = "bench_results";
  std::filesystem::create_directories(dir);
  return dir;
}

// Machine-readable benchmark record: an ordered flat JSON object written
// to bench_results/BENCH_<name>.json so runs can be diffed and tracked by
// scripts. Numbers are emitted with enough digits to round-trip doubles.
class BenchRecord {
 public:
  explicit BenchRecord(std::string name) : name_(std::move(name)) {}

  // Shortest representation that round-trips the exact bits: "0.15"
  // rather than "0.14999999999999999".
  void add(const std::string& key, double value) {
    fields_.emplace_back(key, format_double_roundtrip(value));
  }
  void add(const std::string& key, int value) {
    fields_.emplace_back(key, std::to_string(value));
  }
  void add(const std::string& key, const std::string& value) {
    std::string quoted = "\"";
    for (char c : value) {
      if (c == '"' || c == '\\') quoted += '\\';
      quoted += c;
    }
    quoted += '"';
    fields_.emplace_back(key, quoted);
  }

  // Writes bench_results/BENCH_<name>.json and returns the path.
  std::string write() const {
    const std::string path = results_dir() + "/BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) return {};
    std::fprintf(f, "{\n");
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      std::fprintf(f, "  \"%s\": %s%s\n", fields_[i].first.c_str(),
                   fields_[i].second.c_str(),
                   i + 1 < fields_.size() ? "," : "");
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
    return path;
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> fields_;
};

// Shared per-bench JSON schema so BENCH_*.json files are machine-
// comparable across PRs. Every bench emits the same five sections as
// prefixed flat keys through one of these:
//
//   schema / name            identity ("puffer-bench-v1")
//   config_*                 workload shape + knobs (scale, cells, threads)
//   baseline_*               the in-bench seed/serial reference numbers
//   result_*                 the optimized implementation's numbers
//   speedup_*                baseline/result ratios (the headline claims)
//   checksum_* + bit_identical   determinism evidence
//
// Keys stay insertion-ordered, so sections group visually in the file.
class BenchReport {
 public:
  explicit BenchReport(const std::string& name) : rec_(name) {
    rec_.add("schema", std::string("puffer-bench-v1"));
    rec_.add("name", name);
  }

  template <typename T>
  void config(const std::string& key, T value) {
    rec_.add("config_" + key, value);
  }
  template <typename T>
  void baseline(const std::string& key, T value) {
    rec_.add("baseline_" + key, value);
  }
  template <typename T>
  void result(const std::string& key, T value) {
    rec_.add("result_" + key, value);
  }
  void speedup(const std::string& key, double value) {
    rec_.add("speedup_" + key, value);
  }
  // Checksums are emitted as strings: uint64 values do not round-trip
  // through JSON doubles.
  void checksum(const std::string& key, std::uint64_t value) {
    rec_.add("checksum_" + key, std::to_string(value));
  }
  void bit_identical(bool yes) {
    rec_.add("bit_identical", std::string(yes ? "yes" : "no"));
  }

  std::string write() const { return rec_.write(); }

 private:
  BenchRecord rec_;
};

}  // namespace puffer::bench
