// Shared helpers for the benchmark harnesses: benchmark scale selection
// and a small results directory convention.
//
// The paper's industrial designs (Table I) are reproduced as synthetic
// designs scaled down by PUFFER_SCALE (default 64: ~2k-25k movable cells,
// a full Table II run in minutes). Set PUFFER_SCALE=40 for the largest
// reproduction used in EXPERIMENTS.md, or larger values for quick runs.
#pragma once

#include <cstdlib>
#include <filesystem>
#include <string>

namespace puffer::bench {

inline int scale_divisor() {
  if (const char* env = std::getenv("PUFFER_SCALE")) {
    const int v = std::atoi(env);
    if (v >= 1) return v;
  }
  return 64;
}

// Where benches drop CSVs and map images.
inline std::string results_dir() {
  const std::string dir = "bench_results";
  std::filesystem::create_directories(dir);
  return dir;
}

}  // namespace puffer::bench
