// Micro-benchmark of the global-placement kernels, each measured against
// its in-bench scalar baseline: the WA wirelength gradient (legacy
// per-chunk-buffer scatter vs SoA two-pass gather), the density
// rasterization (full-scan row bands vs bucketed bands), the spectral
// Poisson solve (free-function DCTs vs the preplanned DctPlan2D
// pipeline), and one full Nesterov step. Emits
// bench_results/BENCH_gp_kernels.json (puffer-bench-v1 schema) with
// gradient/density checksums proving the kernel pairs are bit-identical
// and stay so with the SIMD helpers disabled.
//
// Environment: PUFFER_SCALE, PUFFER_THREADS, PUFFER_SIMD.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/parallel.h"
#include "common/simd.h"
#include "core/flow.h"
#include "fft/dct.h"
#include "fft/dct_plan.h"
#include "gp/engine.h"
#include "gp/wirelength.h"
#include "io/checkpoint.h"
#include "io/synthetic.h"

namespace {

using namespace puffer;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

template <typename Fn>
double time_best(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    fn();
    best = std::min(best, seconds_since(t0));
  }
  return best;
}

std::uint64_t vec_checksum(const std::vector<double>& a,
                           const std::vector<double>& b) {
  BinaryWriter w;
  w.put_f64_vec(a);
  w.put_f64_vec(b);
  return fnv1a_bytes(w.buffer().data(), w.buffer().size());
}

}  // namespace

int main() {
  const int scale = bench::scale_divisor();
  SyntheticSpec spec = table1_spec("MEDIA_SUBSYS", scale);
  Design design = generate_synthetic(spec);

  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  par::set_num_threads(0);
  const int par_threads = par::num_threads();
  const int reps = 7;

  bench::BenchReport rec("gp_kernels");
  rec.config("design", spec.name);
  rec.config("scale", scale);
  rec.config("num_cells", static_cast<int>(design.cells.size()));
  rec.config("num_nets", static_cast<int>(design.nets.size()));
  rec.config("hardware_cores", hw);
  rec.config("parallel_threads", par_threads);
  rec.config("simd_isa", std::string(simd::active_isa()));
  std::printf("design %s: %zu cells, %zu nets (PUFFER_SCALE=%d, x%d)\n",
              spec.name.c_str(), design.cells.size(), design.nets.size(),
              scale, par_threads);

  bool all_identical = true;

  // --- WA wirelength gradient ----------------------------------------
  {
    WaWirelength wl(design);
    rec.config("num_slots", static_cast<int>(wl.soa().num_slots()));
    std::vector<double> xc, yc;
    for (CellId c : wl.movable_cells()) {
      const Cell& cell = design.cells[static_cast<std::size_t>(c)];
      xc.push_back(cell.x + cell.width * 0.5);
      yc.push_back(cell.y + cell.height * 0.5);
    }
    std::vector<double> gx_l, gy_l, gx_s, gy_s;
    par::set_num_threads(1);
    wl.use_legacy_kernels(true);
    const double t_legacy =
        time_best(reps, [&] { wl.evaluate(xc, yc, 4.0, gx_l, gy_l); });
    wl.use_legacy_kernels(false);
    const double t_soa =
        time_best(reps, [&] { wl.evaluate(xc, yc, 4.0, gx_s, gy_s); });
    par::set_num_threads(par_threads);
    const double t_par =
        time_best(reps, [&] { wl.evaluate(xc, yc, 4.0, gx_s, gy_s); });
    rec.baseline("wa_gradient_s", t_legacy);
    rec.result("wa_gradient_1t_s", t_soa);
    rec.result("wa_gradient_s", t_par);
    rec.speedup("wa_gradient_1t", t_legacy / t_soa);
    rec.speedup("wa_gradient", t_legacy / t_par);
    const std::uint64_t sum_legacy = vec_checksum(gx_l, gy_l);
    const std::uint64_t sum_soa = vec_checksum(gx_s, gy_s);
    rec.checksum("wa_gradient_legacy", sum_legacy);
    rec.checksum("wa_gradient_soa", sum_soa);
    all_identical = all_identical && sum_legacy == sum_soa;
    std::printf("wa gradient: %.4fs legacy, %.4fs soa (%.2fx), x%d %.4fs "
                "(%.2fx), bits %s\n",
                t_legacy, t_soa, t_legacy / t_soa, par_threads, t_par,
                t_legacy / t_par, sum_legacy == sum_soa ? "match" : "DIFFER");
  }

  // --- density rasterization -----------------------------------------
  {
    GpConfig legacy_cfg;
    legacy_cfg.legacy_kernels = true;
    Design d1 = generate_synthetic(spec);
    EPlaceEngine legacy_eng(d1, legacy_cfg);
    Design d2 = generate_synthetic(spec);
    EPlaceEngine soa_eng(d2, GpConfig{});
    rec.config("bins", legacy_eng.bin_dim());
    rec.config("num_elements", static_cast<int>(legacy_eng.num_elements()));
    const std::vector<double> x = legacy_eng.solver_x();
    const std::vector<double> y = legacy_eng.solver_y();
    par::set_num_threads(1);
    const double t_legacy =
        time_best(reps, [&] { legacy_eng.rasterize_probe(x, y); });
    const double t_soa =
        time_best(reps, [&] { soa_eng.rasterize_probe(x, y); });
    par::set_num_threads(par_threads);
    const double t_par =
        time_best(reps, [&] { soa_eng.rasterize_probe(x, y); });
    const std::uint64_t sum_legacy =
        fnv1a_bytes(legacy_eng.rasterize_probe(x, y).raw().data(),
                    legacy_eng.rasterize_probe(x, y).raw().size() * 8);
    const std::uint64_t sum_soa =
        fnv1a_bytes(soa_eng.rasterize_probe(x, y).raw().data(),
                    soa_eng.rasterize_probe(x, y).raw().size() * 8);
    rec.baseline("rasterize_s", t_legacy);
    rec.result("rasterize_1t_s", t_soa);
    rec.result("rasterize_s", t_par);
    rec.speedup("rasterize_1t", t_legacy / t_soa);
    rec.speedup("rasterize", t_legacy / t_par);
    rec.checksum("rasterize_legacy", sum_legacy);
    rec.checksum("rasterize_soa", sum_soa);
    all_identical = all_identical && sum_legacy == sum_soa;
    std::printf("rasterize: %.4fs legacy, %.4fs soa (%.2fx), x%d %.4fs "
                "(%.2fx), bits %s\n",
                t_legacy, t_soa, t_legacy / t_soa, par_threads, t_par,
                t_legacy / t_par, sum_legacy == sum_soa ? "match" : "DIFFER");
  }

  // --- spectral Poisson pipeline (free DCTs vs DctPlan2D) ------------
  {
    const std::size_t n = 128;
    std::vector<double> rho(n * n);
    for (std::size_t i = 0; i < rho.size(); ++i) {
      rho[i] = std::sin(0.01 * static_cast<double>(i)) + 1.5;
    }
    DctPlan2D plan(n, n);
    std::vector<double> out;
    par::set_num_threads(1);
    const double t_free = time_best(reps, [&] {
      out = dct2_2d(rho, n, n);
      out = dct3_raw_2d(out, n, n);
      out = idxst_dct3_2d(out, n, n);
      out = dct3_idxst_2d(out, n, n);
    });
    std::vector<double> a, b;
    const double t_plan = time_best(reps, [&] {
      plan.dct2_2d(rho, a);
      plan.dct3_raw_2d(a, b);
      plan.idxst_dct3_2d(b, a);
      plan.dct3_idxst_2d(a, b);
    });
    par::set_num_threads(par_threads);
    const double t_plan_par = time_best(reps, [&] {
      plan.dct2_2d(rho, a);
      plan.dct3_raw_2d(a, b);
      plan.idxst_dct3_2d(b, a);
      plan.dct3_idxst_2d(a, b);
    });
    rec.baseline("dct_pipeline_s", t_free);
    rec.result("dct_pipeline_1t_s", t_plan);
    rec.result("dct_pipeline_s", t_plan_par);
    rec.speedup("dct_pipeline_1t", t_free / t_plan);
    rec.speedup("dct_pipeline", t_free / t_plan_par);
    const std::uint64_t sum_free = fnv1a_bytes(out.data(), out.size() * 8);
    const std::uint64_t sum_plan = fnv1a_bytes(b.data(), b.size() * 8);
    rec.checksum("dct_free", sum_free);
    rec.checksum("dct_plan", sum_plan);
    all_identical = all_identical && sum_free == sum_plan;
    std::printf("dct pipeline (128x128): %.4fs free, %.4fs plan (%.2fx), "
                "x%d %.4fs (%.2fx), bits %s\n",
                t_free, t_plan, t_free / t_plan, par_threads, t_plan_par,
                t_free / t_plan_par, sum_free == sum_plan ? "match" : "DIFFER");
  }

  // --- one Nesterov step, SIMD on vs off -----------------------------
  {
    Design d1 = generate_synthetic(spec);
    EPlaceEngine eng(d1, GpConfig{});
    par::set_num_threads(1);
    eng.step();  // pay one-time init outside the timed region
    const double t_step = time_best(reps, [&] { eng.step(); });
    rec.result("nesterov_step_s", t_step);

    // Bit-identity of a short run with the vector kernels on vs off.
    auto short_run = [&](bool simd_on) {
      simd::set_enabled(simd_on);
      Design d = generate_synthetic(spec);
      EPlaceEngine e(d, GpConfig{});
      for (int i = 0; i < 10; ++i) e.step();
      simd::set_enabled(true);
      return vec_checksum(e.solver_x(), e.solver_y());
    };
    const std::uint64_t sum_on = short_run(true);
    const std::uint64_t sum_off = short_run(false);
    rec.checksum("step10_simd_on", sum_on);
    rec.checksum("step10_simd_off", sum_off);
    all_identical = all_identical && sum_on == sum_off;
    std::printf("nesterov step: %.4fs; 10-step simd on/off bits %s\n",
                t_step, sum_on == sum_off ? "match" : "DIFFER");
  }

  rec.bit_identical(all_identical);
  par::set_num_threads(0);
  const std::string path = rec.write();
  std::printf("wrote %s\n", path.c_str());
  return all_identical ? 0 : 1;
}
