// Padding feature-pipeline timings against the in-bench scalar oracle:
// the legacy from-scratch extractor (FeatureConfig::use_legacy_extractor)
// runs at one thread over a recorded round sequence, then the fast
// pipeline replays the exact same sequence -- persistent quantized maps,
// O(1) RMQ/SAT queries, cross-round per-net caches, parallel fan-out --
// at one thread and at PUFFER_THREADS. Results go to
// bench_results/BENCH_padding_features.json (puffer-bench-v1 schema) with
// feature checksums across PUFFER_THREADS 1/2/8 and full-flow placement
// checksums across threads x extractor mode (fast-incremental, legacy
// oracle, fast non-incremental) proving every path is bit-identical. On a
// 1-core box the multi-thread legs still execute the full pool machinery;
// speedups there are algorithmic (same accounting as bench_router).
//
// Environment: PUFFER_SCALE (design size), PUFFER_THREADS (parallel leg's
// worker count; default hardware concurrency).
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "congestion/estimator.h"
#include "core/flow.h"
#include "io/checkpoint.h"
#include "io/synthetic.h"
#include "padding/features.h"

namespace {

using namespace puffer;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Best-of-reps wall time of fn(), in seconds.
template <typename Fn>
double time_best(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    fn();
    best = std::min(best, seconds_since(t0));
  }
  return best;
}

// FNV-1a over the raw bits of every cell position.
std::uint64_t placement_checksum(const Design& d) {
  BinaryWriter w;
  for (const Cell& c : d.cells) {
    w.put_f64(c.x);
    w.put_f64(c.y);
  }
  return fnv1a_bytes(w.buffer().data(), w.buffer().size());
}

// FNV-1a over the raw bits of every extracted feature.
std::uint64_t features_checksum(const std::vector<FeatureVector>& fs) {
  BinaryWriter w;
  for (const FeatureVector& f : fs) {
    for (int k = 0; k < FeatureVector::kCount; ++k) w.put_f64(f[k]);
  }
  return fnv1a_bytes(w.buffer().data(), w.buffer().size());
}

// Moves ~frac of the movable cells by a bounded offset and clamps them
// into the die. The padding rounds fire once the density overflow is
// already below the trigger threshold, so between-round GP nudges touch
// a small slice of the cells -- that near-converged regime is what the
// incremental pipeline is built for.
void perturb_cells(Design& d, Rng& rng, double frac) {
  for (Cell& c : d.cells) {
    if (!c.movable() || !rng.chance(frac)) continue;
    c.x += static_cast<double>(rng.uniform_int(-8, 8));
    c.y += static_cast<double>(rng.uniform_int(-8, 8));
    c.x = clamp(c.x, d.die.xlo, d.die.xhi - c.width);
    c.y = clamp(c.y, d.die.ylo, d.die.yhi - c.height);
  }
}

// One recorded padding round: the congestion estimate plus the exact cell
// positions it was produced from, so a replay can restore the Design
// state the extractor must see.
struct Round {
  CongestionResult cr;
  std::vector<double> xs, ys;
};

void snapshot_positions(const Design& d, Round& r) {
  r.xs.reserve(d.cells.size());
  r.ys.reserve(d.cells.size());
  for (const Cell& c : d.cells) {
    r.xs.push_back(c.x);
    r.ys.push_back(c.y);
  }
}

void restore_positions(Design& d, const Round& r) {
  for (std::size_t i = 0; i < d.cells.size(); ++i) {
    d.cells[i].x = r.xs[i];
    d.cells[i].y = r.ys[i];
  }
}

// One full flow at the given thread count / extractor mode; fills the
// final placement checksum.
double run_flow(const SyntheticSpec& spec, int threads, bool legacy,
                bool incremental, std::uint64_t* sum) {
  PufferConfig cfg;
  cfg.num_threads = threads;
  cfg.padding.feature.use_legacy_extractor = legacy;
  cfg.padding.feature.incremental = incremental;
  Design d = generate_synthetic(spec);
  const auto t0 = Clock::now();
  PufferFlow flow(d, cfg);
  flow.run();
  const double t = seconds_since(t0);
  if (sum) *sum = placement_checksum(d);
  return t;
}

}  // namespace

int main() {
  const int scale = bench::scale_divisor();
  // Largest design of the Table I suite at this scale.
  SyntheticSpec spec = table1_spec("MEDIA_SUBSYS", scale);
  Design design = generate_synthetic(spec);
  std::printf("design %s: %zu cells, %zu nets (PUFFER_SCALE=%d)\n",
              spec.name.c_str(), design.cells.size(), design.nets.size(),
              scale);

  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  par::set_num_threads(0);  // PUFFER_THREADS env or hardware
  const int par_threads = par::num_threads();
  const int reps = 3;
  const int kRounds = 8;

  bench::BenchReport rec("padding_features");
  rec.config("design", spec.name);
  rec.config("scale", scale);
  rec.config("num_cells", static_cast<int>(design.cells.size()));
  rec.config("num_nets", static_cast<int>(design.nets.size()));
  rec.config("rounds", kRounds);
  rec.config("hardware_cores", hw);
  rec.config("parallel_threads", par_threads);

  std::vector<CellId> movable;
  for (CellId c = 0; c < static_cast<CellId>(design.cells.size()); ++c) {
    if (design.cells[static_cast<std::size_t>(c)].movable()) {
      movable.push_back(c);
    }
  }

  // Record the round sequence once: estimate_incremental() per round on a
  // perturbed placement, exactly as the padding loop produces them (the
  // dirty-Gcell/dirty-net delta chain stays continuous across the replay).
  // One placement row per Gcell: the finest routing-resource resolution,
  // where span queries are longest and the incremental maintenance has
  // the most derived state to protect -- the regime the pipeline targets.
  CongestionConfig est_cfg;
  est_cfg.rows_per_gcell = 1.0;
  std::vector<Round> rounds(kRounds);
  {
    CongestionEstimator est(design, est_cfg);
    Rng rng(1234);
    for (int r = 0; r < kRounds; ++r) {
      if (r > 0) perturb_cells(design, rng, 0.02);
      rounds[static_cast<std::size_t>(r)].cr = est.estimate_incremental();
      snapshot_positions(design, rounds[static_cast<std::size_t>(r)]);
    }
  }

  // --- feature extraction over the recorded sequence ------------------
  // Baseline: the scalar from-scratch oracle at one thread. Result: the
  // fast pipeline, fresh extractor per rep so every rep pays the first
  // full build and then earns the cross-round reuse, like a real flow.
  std::uint64_t sum_legacy = 0, sum_t1 = 0, sum_t2 = 0, sum_t8 = 0;
  PaddingStageMetrics fast_metrics;
  par::set_num_threads(1);
  FeatureConfig legacy_cfg;
  legacy_cfg.use_legacy_extractor = true;
  // The timed loops run extraction only; checksum serialization (19k
  // cells x 5 doubles per round) is measured by neither side and happens
  // in the untimed determinism passes below.
  const double t_legacy = time_best(reps, [&] {
    FeatureExtractor fx(design, legacy_cfg);
    for (const Round& r : rounds) {
      restore_positions(design, r);
      fx.extract(r.cr, movable);
    }
  });
  const double t_fast1 = time_best(reps, [&] {
    FeatureExtractor fx(design, FeatureConfig{});
    for (const Round& r : rounds) {
      restore_positions(design, r);
      fx.extract(r.cr, movable);
    }
  });
  FeatureConfig full_cfg;
  full_cfg.incremental = false;
  const double t_full1 = time_best(reps, [&] {
    FeatureExtractor fx(design, full_cfg);
    for (const Round& r : rounds) {
      restore_positions(design, r);
      fx.extract(r.cr, movable);
    }
  });
  par::set_num_threads(par_threads);
  const double t_par = time_best(reps, [&] {
    FeatureExtractor fx(design, FeatureConfig{});
    for (const Round& r : rounds) {
      restore_positions(design, r);
      fx.extract(r.cr, movable);
    }
  });
  // Feature bits across paths and thread counts (persistent extractors,
  // replayed sequence -- the checksum of the last round must agree
  // everywhere). Untimed; also the source of the fast-path reuse metrics.
  {
    par::set_num_threads(1);
    FeatureExtractor fxl(design, legacy_cfg);
    for (const Round& r : rounds) {
      restore_positions(design, r);
      sum_legacy = features_checksum(fxl.extract(r.cr, movable));
    }
    FeatureExtractor fx1(design, FeatureConfig{});
    for (const Round& r : rounds) {
      restore_positions(design, r);
      sum_t1 = features_checksum(fx1.extract(r.cr, movable));
    }
    fast_metrics = fx1.stage_metrics();
    par::set_num_threads(2);
    FeatureExtractor fx2(design, FeatureConfig{});
    for (const Round& r : rounds) {
      restore_positions(design, r);
      sum_t2 = features_checksum(fx2.extract(r.cr, movable));
    }
    par::set_num_threads(8);
    FeatureExtractor fx8(design, FeatureConfig{});
    for (const Round& r : rounds) {
      restore_positions(design, r);
      sum_t8 = features_checksum(fx8.extract(r.cr, movable));
    }
  }

  rec.baseline("features_extract_s", t_legacy);
  rec.result("features_extract_1t_s", t_fast1);
  rec.result("features_extract_full_1t_s", t_full1);
  rec.result("features_extract_s", t_par);
  rec.speedup("features_1t", t_legacy / t_fast1);
  rec.speedup("features_full_1t", t_legacy / t_full1);
  rec.speedup("features", t_legacy / t_par);
  rec.result("features_dirty_gcell_frac", fast_metrics.dirty_gcell_frac());
  rec.result("features_incidence_hit_rate",
             fast_metrics.incidence_hit_rate());
  rec.result("features_nets_reused", static_cast<int>(fast_metrics.nets_reused));
  rec.result("features_drift", static_cast<int>(fast_metrics.drift_count));
  std::printf(
      "feature extraction (%d rounds): %.4fs legacy x1, %.4fs fast x1 "
      "(%.2fx), %.4fs full x1 (%.2fx), %.4fs x%d (%.2fx)\n",
      kRounds, t_legacy, t_fast1, t_legacy / t_fast1, t_full1,
      t_legacy / t_full1, t_par, par_threads, t_legacy / t_par);
  std::printf(
      "fast-path reuse: %.1f%% gcells dirty, incidence hit %.0f%%, "
      "%lld nets reused / %lld recomputed, drift %llu\n",
      100.0 * fast_metrics.dirty_gcell_frac(),
      100.0 * fast_metrics.incidence_hit_rate(),
      static_cast<long long>(fast_metrics.nets_reused),
      static_cast<long long>(fast_metrics.nets_recomputed),
      static_cast<unsigned long long>(fast_metrics.drift_count));

  // --- full-flow determinism matrix -----------------------------------
  // Final placements across PUFFER_THREADS x extractor mode: the fast
  // incremental pipeline at 1/2/8 threads against the legacy oracle and
  // the non-incremental fast path.
  std::uint64_t flow_fast_t1 = 0, flow_fast_t2 = 0, flow_fast_t8 = 0;
  std::uint64_t flow_legacy_t1 = 0, flow_legacy_t8 = 0;
  std::uint64_t flow_noincr_t1 = 0, flow_noincr_t8 = 0;
  const double t_flow_fast = run_flow(spec, 1, false, true, &flow_fast_t1);
  run_flow(spec, 2, false, true, &flow_fast_t2);
  run_flow(spec, 8, false, true, &flow_fast_t8);
  const double t_flow_legacy = run_flow(spec, 1, true, true, &flow_legacy_t1);
  run_flow(spec, 8, true, true, &flow_legacy_t8);
  run_flow(spec, 1, false, false, &flow_noincr_t1);
  run_flow(spec, 8, false, false, &flow_noincr_t8);
  rec.baseline("flow_s", t_flow_legacy);
  rec.result("flow_s", t_flow_fast);
  rec.speedup("flow", t_flow_legacy / t_flow_fast);

  rec.checksum("features_legacy", sum_legacy);
  rec.checksum("features_t1", sum_t1);
  rec.checksum("features_t2", sum_t2);
  rec.checksum("features_t8", sum_t8);
  rec.checksum("flow_fast_t1", flow_fast_t1);
  rec.checksum("flow_fast_t2", flow_fast_t2);
  rec.checksum("flow_fast_t8", flow_fast_t8);
  rec.checksum("flow_legacy_t1", flow_legacy_t1);
  rec.checksum("flow_legacy_t8", flow_legacy_t8);
  rec.checksum("flow_noincr_t1", flow_noincr_t1);
  rec.checksum("flow_noincr_t8", flow_noincr_t8);
  const bool features_ok =
      sum_legacy == sum_t1 && sum_t1 == sum_t2 && sum_t2 == sum_t8;
  const bool flow_ok = flow_fast_t1 == flow_fast_t2 &&
                       flow_fast_t2 == flow_fast_t8 &&
                       flow_fast_t8 == flow_legacy_t1 &&
                       flow_legacy_t1 == flow_legacy_t8 &&
                       flow_legacy_t8 == flow_noincr_t1 &&
                       flow_noincr_t1 == flow_noincr_t8;
  rec.bit_identical(features_ok && flow_ok);
  std::printf(
      "feature checksum %016llx: legacy %s, threads 1/2/8 %s\n",
      static_cast<unsigned long long>(sum_t1),
      sum_legacy == sum_t1 ? "match" : "DIFFER",
      features_ok ? "match" : "DIFFER");
  std::printf(
      "flow checksum %016llx: threads 1/2/8 %s, legacy %s, "
      "non-incremental %s\n",
      static_cast<unsigned long long>(flow_fast_t1),
      flow_fast_t1 == flow_fast_t2 && flow_fast_t2 == flow_fast_t8
          ? "match"
          : "DIFFER",
      flow_fast_t1 == flow_legacy_t1 && flow_legacy_t1 == flow_legacy_t8
          ? "match"
          : "DIFFER",
      flow_fast_t1 == flow_noincr_t1 && flow_noincr_t1 == flow_noincr_t8
          ? "match"
          : "DIFFER");

  par::set_num_threads(0);
  const std::string path = rec.write();
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
