// Incremental vs full congestion estimation (the demand-ledger tentpole).
//
// Simulates the padding-round workload the estimator sees in the flow:
// each round the cells inside one randomly placed congested window (a
// small fraction of the die) spread out a little while the rest of the
// die is untouched -- that's what congestion-driven cell padding does to
// a placement between estimation rounds. Each design copy is estimated
// once with the from-scratch estimator and once with the ledger-based
// incremental one. Reports per-round times, the speedup, the dirty-net
// fraction and the demand-map checksums (which must agree -- the
// incremental path is bit-identical by construction).
//
// Output: bench_results/BENCH_incremental_estimation.json.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "congestion/estimator.h"
#include "geometry/geometry.h"
#include "io/synthetic.h"

namespace {

using namespace puffer;

// Moves the movable cells inside one random window spanning `window_frac`
// of the die per axis (padding-style localized perturbation).
void perturb_cells(Design& d, Rng& rng, double window_frac) {
  const double ww = (d.die.xhi - d.die.xlo) * window_frac;
  const double wh = (d.die.yhi - d.die.ylo) * window_frac;
  const double wx = rng.uniform(d.die.xlo, d.die.xhi - ww);
  const double wy = rng.uniform(d.die.ylo, d.die.yhi - wh);
  for (Cell& c : d.cells) {
    if (!c.movable()) continue;
    if (c.x < wx || c.x > wx + ww || c.y < wy || c.y > wy + wh) continue;
    c.x += static_cast<double>(rng.uniform_int(-40, 40));
    c.y += static_cast<double>(rng.uniform_int(-40, 40));
    c.x = clamp(c.x, d.die.xlo, d.die.xhi - c.width);
    c.y = clamp(c.y, d.die.ylo, d.die.yhi - c.height);
  }
}

}  // namespace

int main() {
  const int scale = bench::scale_divisor();
  SyntheticSpec spec;
  spec.name = "incr_bench";
  spec.num_cells = 640000 / scale;
  spec.num_nets = 640000 / scale;
  spec.num_macros = 8;
  spec.seed = 42;
  const double kWindowFrac = 0.25;  // window edge as a fraction of the die
  const int kRounds = 12;

  Design d_full = generate_synthetic(spec);
  Design d_incr = generate_synthetic(spec);

  CongestionConfig cfg;
  cfg.pin_crowding = 1.0;
  CongestionConfig full_cfg = cfg;
  full_cfg.enable_rsmt_cache = false;  // true from-scratch baseline
  CongestionEstimator full_est(d_full, full_cfg);
  CongestionEstimator incr_est(d_incr, cfg);

  // Identical move sequences on both copies.
  Rng rng_full(7), rng_incr(7);
  double full_s = 0.0, incr_s = 0.0;
  double full_repeat_s = 0.0, incr_repeat_s = 0.0;  // rounds after warm-up
  std::uint64_t checksum_full = 0, checksum_incr = 0;
  bool identical = true;
  for (int round = 0; round < kRounds; ++round) {
    if (round > 0) {
      perturb_cells(d_full, rng_full, kWindowFrac);
      perturb_cells(d_incr, rng_incr, kWindowFrac);
    }
    Timer tf;
    const CongestionResult rf = full_est.estimate();
    const double dtf = tf.elapsed_seconds();
    Timer ti;
    const CongestionResult ri = incr_est.estimate_incremental();
    const double dti = ti.elapsed_seconds();
    full_s += dtf;
    incr_s += dti;
    if (round > 0) {
      full_repeat_s += dtf;
      incr_repeat_s += dti;
    }
    checksum_full = demand_checksum(rf.maps);
    checksum_incr = demand_checksum(ri.maps);
    identical = identical && checksum_full == checksum_incr &&
                rf.expanded_segments == ri.expanded_segments;
    std::printf("round %2d: full %.4fs incr %.4fs (%s, checksums %s)\n", round,
                dtf, dti,
                incr_est.incremental_stats().last_was_full ? "full" : "incr",
                checksum_full == checksum_incr ? "match" : "MISMATCH");
  }

  const IncrementalStats& stats = incr_est.incremental_stats();
  const double speedup = incr_repeat_s > 0.0 ? full_repeat_s / incr_repeat_s : 0.0;
  std::printf(
      "\n%d rounds, one %.0f%%-of-die window perturbed per round: full "
      "%.3fs, incremental %.3fs; repeat-round speedup %.2fx, %.1f%% nets "
      "dirty, drift %llu, bit-identical %s\n",
      kRounds, 100.0 * kWindowFrac, full_s, incr_s, speedup,
      100.0 * stats.dirty_net_frac(),
      static_cast<unsigned long long>(stats.drift_count),
      identical ? "yes" : "NO");

  bench::BenchReport rec("incremental_estimation");
  rec.config("scale", scale);
  rec.config("num_cells", spec.num_cells);
  rec.config("num_nets", static_cast<int>(d_incr.nets.size()));
  rec.config("rounds", kRounds);
  rec.config("window_frac", kWindowFrac);
  rec.baseline("full_total_s", full_s);
  rec.baseline("full_repeat_s", full_repeat_s);
  rec.result("incremental_total_s", incr_s);
  rec.result("incremental_repeat_s", incr_repeat_s);
  rec.result("dirty_net_frac", stats.dirty_net_frac());
  rec.result("full_rebuilds", stats.full_rebuilds);
  rec.result("drift_count", static_cast<int>(stats.drift_count));
  rec.speedup("repeat", speedup);
  rec.checksum("full", checksum_full);
  rec.checksum("incremental", checksum_incr);
  rec.bit_identical(identical);
  const std::string path = rec.write();
  std::printf("wrote %s\n", path.c_str());
  return identical ? 0 : 1;
}
