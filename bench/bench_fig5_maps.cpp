// Figure 5 reproduction: horizontal and vertical congestion maps of the
// MEDIA_SUBSYS design for the three placers, as reported by the neutral
// evaluation router. Maps are written as PPM heatmaps (blue = slack,
// yellow->red = overflow) plus ASCII previews on stdout.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "core/experiment.h"
#include "grid/routing_maps.h"

int main(int argc, char** argv) {
  using namespace puffer;
  const int scale = bench::scale_divisor();
  const std::string bench_name = argc > 1 ? argv[1] : "MEDIA_SUBSYS";
  std::printf("=== Figure 5: congestion maps for %s (scale 1/%d) ===\n\n",
              bench_name.c_str(), scale);

  const SyntheticSpec spec = table1_spec(bench_name, scale);
  const PlacerKind order[] = {PlacerKind::kCommercialProxy,
                              PlacerKind::kReplaceRc, PlacerKind::kPuffer};
  const char* fig_tag[] = {"a_d", "b_e", "c_f"};
  ExperimentConfig config;

  for (int p = 0; p < 3; ++p) {
    std::fprintf(stderr, "[fig5] placing with %s ...\n", placer_name(order[p]));
    const ExperimentResult r = run_benchmark(spec, order[p], config);

    // Per-direction congestion ratio maps (demand/capacity - 1).
    Map2D<double> h(r.route.maps.grid.nx(), r.route.maps.grid.ny());
    Map2D<double> v(r.route.maps.grid.nx(), r.route.maps.grid.ny());
    for (int gy = 0; gy < h.ny(); ++gy) {
      for (int gx = 0; gx < h.nx(); ++gx) {
        h.at(gx, gy) = r.route.maps.cg_h(gx, gy);
        v.at(gx, gy) = r.route.maps.cg_v(gx, gy);
      }
    }
    const std::string base = bench::results_dir() + "/fig5_" + fig_tag[p] + "_" +
                             placer_name(order[p]);
    write_map_ppm(h, base + "_H.ppm");
    write_map_ppm(v, base + "_V.ppm");

    std::printf("--- %s: HOF %.2f%%  VOF %.2f%%  (maps: %s_H.ppm / _V.ppm)\n",
                placer_name(order[p]), r.hof_pct(), r.vof_pct(), base.c_str());
    std::printf("horizontal congestion ('.'=slack, 1-9/#=overflow):\n%s\n",
                map_to_ascii(h).c_str());
    std::printf("vertical congestion:\n%s\n", map_to_ascii(v).c_str());
  }
  return 0;
}
