// Ablation B (design choice of SS III-B1): contribution of the feature
// families to the final routability. Runs PUFFER with padding driven by
// (1) local features only, (2) local + CNN-inspired surrounding features,
// (3) all features including the GNN-inspired pin congestion, plus the
// no-padding baseline, on the congested benchmarks.
#include <cstdio>
#include <cstring>

#include "bench/bench_util.h"
#include "common/table.h"
#include "core/experiment.h"

int main() {
  using namespace puffer;
  const int scale = bench::scale_divisor();
  std::printf("=== Ablation: padding feature families (scale 1/%d) ===\n\n",
              scale);

  struct Variant {
    const char* label;
    bool use_local, use_cnn, use_gnn;
    int xi;
  };
  const Variant variants[] = {
      {"no padding", false, false, false, 0},
      {"local only", true, false, false, 8},
      {"local + CNN", true, true, false, 8},
      {"local + CNN + GNN (PUFFER)", true, true, true, 8},
  };

  TextTable table({"Benchmark", "Features", "HOF(%)", "VOF(%)", "WL", "RT(s)"});
  for (const char* name : {"OR1200", "MEDIA_SUBSYS", "A53_ADB_WRAP"}) {
    for (const Variant& v : variants) {
      ExperimentConfig cfg;
      PaddingParams base;  // default weights
      PaddingParams& p = cfg.puffer.padding;
      p.xi = v.xi;
      p.alpha[0] = v.use_local ? base.alpha[0] : 0.0;
      p.alpha[1] = v.use_local ? base.alpha[1] : 0.0;
      p.alpha[2] = v.use_cnn ? base.alpha[2] : 0.0;
      p.alpha[3] = v.use_cnn ? base.alpha[3] : 0.0;
      p.alpha[4] = v.use_gnn ? base.alpha[4] : 0.0;
      std::fprintf(stderr, "[features] %s / %s ...\n", name, v.label);
      const ExperimentResult r =
          run_benchmark(table1_spec(name, scale), PlacerKind::kPuffer, cfg);
      table.add_row({name, v.label, TextTable::fmt(r.hof_pct(), 2),
                     TextTable::fmt(r.vof_pct(), 2),
                     TextTable::fmt(r.routed_wl(), 0),
                     TextTable::fmt(r.runtime_s(), 1)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
