// Hot-path timings for the SoA global-placement core against an in-bench
// baseline replica: the retired scalar kernels (GpConfig::legacy_kernels
// + WaWirelength::use_legacy_kernels) run at one thread, best-of-3, in
// this same binary -- so baseline and result share the compiler, flags,
// and machine. Results go to bench_results/BENCH_parallel_hotpaths.json
// (puffer-bench-v1 schema) with placement checksums proving the SoA/SIMD
// rewrite is bit-identical to the scalar path across PUFFER_THREADS
// 1/2/8 and PUFFER_SIMD on/off. On a 1-core box the multi-thread legs
// still execute the full pool machinery; speedups there are algorithmic
// (same accounting as bench_router).
//
// Environment: PUFFER_SCALE (design size), PUFFER_THREADS (parallel leg's
// worker count; default hardware concurrency), PUFFER_SIMD (0 disables
// the vector kernels).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/parallel.h"
#include "common/simd.h"
#include "congestion/estimator.h"
#include "core/flow.h"
#include "gp/engine.h"
#include "gp/wirelength.h"
#include "io/checkpoint.h"
#include "io/synthetic.h"

namespace {

using namespace puffer;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Best-of-reps wall time of fn(), in seconds.
template <typename Fn>
double time_best(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    fn();
    best = std::min(best, seconds_since(t0));
  }
  return best;
}

// FNV-1a over the raw bits of every cell position.
std::uint64_t placement_checksum(const Design& d) {
  BinaryWriter w;
  for (const Cell& c : d.cells) {
    w.put_f64(c.x);
    w.put_f64(c.y);
  }
  return fnv1a_bytes(w.buffer().data(), w.buffer().size());
}

// One full flow at the given thread count / kernel path; returns the
// wall time and fills the metrics + final placement checksum.
double run_flow(const SyntheticSpec& spec, int threads, bool legacy,
                bool rsmt_cache, FlowMetrics* metrics, std::uint64_t* sum) {
  PufferConfig cfg;
  cfg.num_threads = threads;
  cfg.gp.legacy_kernels = legacy;
  cfg.congestion.enable_rsmt_cache = rsmt_cache;
  Design d = generate_synthetic(spec);
  const auto t0 = Clock::now();
  PufferFlow flow(d, cfg);
  FlowMetrics m = flow.run();
  const double t = seconds_since(t0);
  if (metrics) *metrics = m;
  if (sum) *sum = placement_checksum(d);
  return t;
}

}  // namespace

int main() {
  const int scale = bench::scale_divisor();
  // Largest design of the Table I suite at this scale.
  SyntheticSpec spec = table1_spec("MEDIA_SUBSYS", scale);
  Design design = generate_synthetic(spec);
  std::printf("design %s: %zu cells, %zu nets (PUFFER_SCALE=%d)\n",
              spec.name.c_str(), design.cells.size(), design.nets.size(),
              scale);

  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  par::set_num_threads(0);  // PUFFER_THREADS env or hardware
  const int par_threads = par::num_threads();
  const int reps = 5;
  const int flow_reps = 3;  // best-of-3, bench_router accounting

  bench::BenchReport rec("parallel_hotpaths");
  rec.config("design", spec.name);
  rec.config("scale", scale);
  rec.config("num_cells", static_cast<int>(design.cells.size()));
  rec.config("num_nets", static_cast<int>(design.nets.size()));
  rec.config("hardware_cores", hw);
  rec.config("parallel_threads", par_threads);
  rec.config("simd_isa", std::string(simd::active_isa()));

  // --- WaWirelength::evaluate (legacy scalar vs SoA two-pass) --------
  {
    WaWirelength wl(design);
    std::vector<double> xc, yc;
    for (CellId c : wl.movable_cells()) {
      const Cell& cell = design.cells[static_cast<std::size_t>(c)];
      xc.push_back(cell.x + cell.width * 0.5);
      yc.push_back(cell.y + cell.height * 0.5);
    }
    std::vector<double> gx, gy;
    par::set_num_threads(1);
    wl.use_legacy_kernels(true);
    const double t_legacy =
        time_best(reps, [&] { wl.evaluate(xc, yc, 4.0, gx, gy); });
    wl.use_legacy_kernels(false);
    const double t_soa1 =
        time_best(reps, [&] { wl.evaluate(xc, yc, 4.0, gx, gy); });
    par::set_num_threads(par_threads);
    const double t_par =
        time_best(reps, [&] { wl.evaluate(xc, yc, 4.0, gx, gy); });
    rec.baseline("wirelength_eval_s", t_legacy);
    rec.result("wirelength_eval_1t_s", t_soa1);
    rec.result("wirelength_eval_s", t_par);
    rec.speedup("wirelength_eval_1t", t_legacy / t_soa1);
    rec.speedup("wirelength_eval", t_legacy / t_par);
    std::printf(
        "wirelength evaluate: %.4fs legacy, %.4fs soa x1 (%.2fx), "
        "%.4fs x%d (%.2fx)\n",
        t_legacy, t_soa1, t_legacy / t_soa1, t_par, par_threads,
        t_legacy / t_par);
  }

  // --- density rasterization (full-scan bands vs bucketed bands) -----
  {
    GpConfig legacy_cfg;
    legacy_cfg.legacy_kernels = true;
    Design d1 = generate_synthetic(spec);
    EPlaceEngine legacy_eng(d1, legacy_cfg);
    Design d2 = generate_synthetic(spec);
    EPlaceEngine soa_eng(d2, GpConfig{});
    const std::vector<double> x = legacy_eng.solver_x();
    const std::vector<double> y = legacy_eng.solver_y();
    par::set_num_threads(1);
    const double t_legacy =
        time_best(reps, [&] { legacy_eng.rasterize_probe(x, y); });
    const double t_soa1 =
        time_best(reps, [&] { soa_eng.rasterize_probe(x, y); });
    par::set_num_threads(par_threads);
    const double t_par =
        time_best(reps, [&] { soa_eng.rasterize_probe(x, y); });
    rec.baseline("rasterize_s", t_legacy);
    rec.result("rasterize_1t_s", t_soa1);
    rec.result("rasterize_s", t_par);
    rec.speedup("rasterize_1t", t_legacy / t_soa1);
    rec.speedup("rasterize", t_legacy / t_par);
    std::printf(
        "density rasterize: %.4fs legacy, %.4fs soa x1 (%.2fx), "
        "%.4fs x%d (%.2fx)\n",
        t_legacy, t_soa1, t_legacy / t_soa1, t_par, par_threads,
        t_legacy / t_par);
  }

  // --- CongestionEstimator::estimate --------------------------------
  {
    CongestionConfig cfg;
    cfg.enable_rsmt_cache = false;  // honest rebuild cost
    CongestionEstimator cold(design, cfg);
    par::set_num_threads(1);
    const double t_serial = time_best(reps, [&] { cold.estimate(); });
    par::set_num_threads(par_threads);
    const double t_par = time_best(reps, [&] { cold.estimate(); });
    rec.baseline("congestion_estimate_s", t_serial);
    rec.result("congestion_estimate_s", t_par);
    rec.speedup("congestion_estimate", t_serial / t_par);

    CongestionEstimator cached(design, CongestionConfig{});
    cached.estimate();  // warm the cache
    const double t_hit = time_best(reps, [&] { cached.estimate(); });
    rec.result("congestion_estimate_cache_hit_s", t_hit);
    rec.speedup("rsmt_cache_hit", t_serial / t_hit);
    std::printf(
        "congestion estimate: %.4fs serial, %.4fs x%d (%.2fx), "
        "%.4fs cache-hit (%.2fx)\n",
        t_serial, t_par, par_threads, t_serial / t_par, t_hit,
        t_serial / t_hit);
  }

  // --- Full padding flow ---------------------------------------------
  // Baseline replica: scalar kernels at one thread, RSMT cache off (the
  // pre-SoA configuration), measured in-bench best-of-3.
  {
    FlowMetrics m_base;
    std::uint64_t sum_legacy = 0;
    double t_base = 1e300;
    for (int r = 0; r < flow_reps; ++r) {
      t_base = std::min(
          t_base, run_flow(spec, 1, /*legacy=*/true, /*rsmt_cache=*/false,
                           &m_base, &sum_legacy));
    }

    FlowMetrics m_1t;
    std::uint64_t sum_t1 = 0;
    double t_1t = 1e300;
    for (int r = 0; r < flow_reps; ++r) {
      t_1t = std::min(t_1t, run_flow(spec, 1, false, true, &m_1t, &sum_t1));
    }

    FlowMetrics m_par;
    std::uint64_t sum_par = 0;
    double t_par = 1e300;
    for (int r = 0; r < flow_reps; ++r) {
      t_par = std::min(t_par,
                       run_flow(spec, par_threads, false, true, &m_par, &sum_par));
    }

    rec.baseline("flow_s", t_base);
    rec.result("flow_1t_s", t_1t);
    rec.result("flow_s", t_par);
    rec.speedup("flow_1t", t_base / t_1t);
    rec.speedup("flow", t_base / t_par);
    rec.baseline("flow_hpwl", m_base.hpwl_legal);
    rec.result("flow_hpwl", m_par.hpwl_legal);
    rec.result("flow_padding_rounds", m_par.padding_rounds);
    {
      Design d = generate_synthetic(spec);
      PufferConfig cfg;
      cfg.num_threads = par_threads;
      PufferFlow flow(d, cfg);
      flow.run();
      const RouteResult r = evaluate_routability(d);
      rec.result("flow_overflow_pct", r.overflow.total_pct());
    }
    std::printf(
        "padding flow: %.2fs legacy x1, %.2fs soa x1 (%.2fx), "
        "%.2fs x%d (%.2fx), hpwl %.4g == %.4g\n",
        t_base, t_1t, t_base / t_1t, t_par, par_threads, t_base / t_par,
        m_base.hpwl_legal, m_par.hpwl_legal);

    // Determinism evidence: final placements across thread counts and
    // with the vector kernels disabled, against the scalar baseline.
    std::uint64_t sum_t2 = 0, sum_t8 = 0, sum_t8_nosimd = 0;
    run_flow(spec, 2, false, true, nullptr, &sum_t2);
    run_flow(spec, 8, false, true, nullptr, &sum_t8);
    simd::set_enabled(false);
    run_flow(spec, 8, false, true, nullptr, &sum_t8_nosimd);
    simd::set_enabled(true);
    rec.checksum("flow_legacy", sum_legacy);
    rec.checksum("flow_t1", sum_t1);
    rec.checksum("flow_t2", sum_t2);
    rec.checksum("flow_t8", sum_t8);
    rec.checksum("flow_t8_simd_off", sum_t8_nosimd);
    const bool identical = sum_legacy == sum_t1 && sum_t1 == sum_t2 &&
                           sum_t2 == sum_t8 && sum_t8 == sum_t8_nosimd;
    rec.bit_identical(identical);
    std::printf("placement checksum %016llx: threads 1/2/8 %s, simd off %s, "
                "legacy %s\n",
                static_cast<unsigned long long>(sum_t1),
                sum_t1 == sum_t2 && sum_t2 == sum_t8 ? "match" : "DIFFER",
                sum_t8 == sum_t8_nosimd ? "match" : "DIFFER",
                sum_legacy == sum_t1 ? "match" : "DIFFER");
  }

  par::set_num_threads(0);
  const std::string path = rec.write();
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
