// Serial-vs-parallel timings for the hot kernels the deterministic
// runtime covers: WaWirelength::evaluate, CongestionEstimator::estimate
// (cold rebuild and RSMT-cache hit), and a full padding flow. Results go
// to bench_results/BENCH_parallel_hotpaths.json, including the thread and
// core counts so speedups are interpreted against the machine that
// produced them (a 1-core box cannot show parallel speedup; correctness
// is still exercised because results are bit-identical by construction).
//
// Environment: PUFFER_SCALE (design size), PUFFER_THREADS (parallel leg's
// worker count; default hardware concurrency).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/parallel.h"
#include "congestion/estimator.h"
#include "core/flow.h"
#include "gp/wirelength.h"
#include "io/synthetic.h"

namespace {

using namespace puffer;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Best-of-reps wall time of fn(), in seconds.
template <typename Fn>
double time_best(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    fn();
    best = std::min(best, seconds_since(t0));
  }
  return best;
}

}  // namespace

int main() {
  const int scale = bench::scale_divisor();
  // Largest design of the Table I suite at this scale.
  SyntheticSpec spec = table1_spec("MEDIA_SUBSYS", scale);
  Design design = generate_synthetic(spec);
  std::printf("design %s: %zu cells, %zu nets (PUFFER_SCALE=%d)\n",
              spec.name.c_str(), design.cells.size(), design.nets.size(),
              scale);

  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  par::set_num_threads(0);  // PUFFER_THREADS env or hardware
  const int par_threads = par::num_threads();
  const int reps = 5;

  bench::BenchReport rec("parallel_hotpaths");
  rec.config("design", spec.name);
  rec.config("scale", scale);
  rec.config("num_cells", static_cast<int>(design.cells.size()));
  rec.config("num_nets", static_cast<int>(design.nets.size()));
  rec.config("hardware_cores", hw);
  rec.config("parallel_threads", par_threads);

  // --- WaWirelength::evaluate ---------------------------------------
  {
    WaWirelength wl(design);
    std::vector<double> xc, yc;
    for (CellId c : wl.movable_cells()) {
      const Cell& cell = design.cells[static_cast<std::size_t>(c)];
      xc.push_back(cell.x + cell.width * 0.5);
      yc.push_back(cell.y + cell.height * 0.5);
    }
    std::vector<double> gx, gy;
    par::set_num_threads(1);
    const double t_serial =
        time_best(reps, [&] { wl.evaluate(xc, yc, 4.0, gx, gy); });
    par::set_num_threads(par_threads);
    const double t_par =
        time_best(reps, [&] { wl.evaluate(xc, yc, 4.0, gx, gy); });
    rec.baseline("wirelength_eval_s", t_serial);
    rec.result("wirelength_eval_s", t_par);
    rec.speedup("wirelength_eval", t_serial / t_par);
    std::printf("wirelength evaluate: %.4fs serial, %.4fs x%d (%.2fx)\n",
                t_serial, t_par, par_threads, t_serial / t_par);
  }

  // --- CongestionEstimator::estimate --------------------------------
  {
    CongestionConfig cfg;
    cfg.enable_rsmt_cache = false;  // honest rebuild cost
    CongestionEstimator cold(design, cfg);
    par::set_num_threads(1);
    const double t_serial = time_best(reps, [&] { cold.estimate(); });
    par::set_num_threads(par_threads);
    const double t_par = time_best(reps, [&] { cold.estimate(); });
    rec.baseline("congestion_estimate_s", t_serial);
    rec.result("congestion_estimate_s", t_par);
    rec.speedup("congestion_estimate", t_serial / t_par);

    CongestionEstimator cached(design, CongestionConfig{});
    cached.estimate();  // warm the cache
    const double t_hit = time_best(reps, [&] { cached.estimate(); });
    rec.result("congestion_estimate_cache_hit_s", t_hit);
    rec.speedup("rsmt_cache_hit", t_serial / t_hit);
    std::printf(
        "congestion estimate: %.4fs serial, %.4fs x%d (%.2fx), "
        "%.4fs cache-hit (%.2fx)\n",
        t_serial, t_par, par_threads, t_serial / t_par, t_hit,
        t_serial / t_hit);
  }

  // --- Full padding flow --------------------------------------------
  {
    PufferConfig cfg;
    cfg.num_threads = 1;
    cfg.congestion.enable_rsmt_cache = false;
    Design d1 = generate_synthetic(spec);
    const auto t0 = Clock::now();
    PufferFlow f1(d1, cfg);
    const FlowMetrics m1 = f1.run();
    const double t_serial = seconds_since(t0);

    cfg.num_threads = par_threads;
    cfg.congestion.enable_rsmt_cache = true;
    Design d2 = generate_synthetic(spec);
    const auto t1 = Clock::now();
    PufferFlow f2(d2, cfg);
    const FlowMetrics m2 = f2.run();
    const double t_par = seconds_since(t1);

    const RouteResult r2 = evaluate_routability(d2);
    rec.baseline("flow_s", t_serial);
    rec.result("flow_s", t_par);
    rec.speedup("flow", t_serial / t_par);
    rec.baseline("flow_hpwl", m1.hpwl_legal);
    rec.result("flow_hpwl", m2.hpwl_legal);
    rec.result("flow_padding_rounds", m2.padding_rounds);
    rec.result("flow_overflow_pct", r2.overflow.total_pct());
    rec.bit_identical(std::memcmp(&m1.hpwl_legal, &m2.hpwl_legal,
                                  sizeof(double)) == 0);
    std::printf("padding flow: %.2fs serial, %.2fs x%d+cache (%.2fx), "
                "hpwl %.4g == %.4g\n",
                t_serial, t_par, par_threads, t_serial / t_par,
                m1.hpwl_legal, m2.hpwl_legal);
  }

  par::set_num_threads(0);
  const std::string path = rec.write();
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
