// Numerical edge cases: the WA model at extreme smoothing, coincident
// pins, huge coordinates; the spectral solver under asymmetric grids and
// extreme densities; Nesterov stability guarantees.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "gp/electrostatics.h"
#include "gp/engine.h"
#include "gp/initial_place.h"
#include "gp/wirelength.h"
#include "io/synthetic.h"

namespace puffer {
namespace {

Design pair_design(double x0, double x1) {
  Design d;
  d.die = {0, 0, 1e7, 1e7};
  d.tech = Technology::make_default(1.0, 8.0);
  d.rows.push_back({0, 0, 10000000, 1.0, 8.0});
  for (double x : {x0, x1}) {
    Cell c;
    c.name = "c" + std::to_string(d.cells.size());
    c.width = 2;
    c.height = 8;
    c.x = x;
    c.y = 0;
    d.add_cell(std::move(c));
  }
  const NetId n = d.add_net("n");
  d.connect(0, n, 1, 4);
  d.connect(1, n, 1, 4);
  return d;
}

TEST(WaNumerics, HugeCoordinatesStayFinite) {
  // Without the max-shift trick exp(x/gamma) overflows at these values.
  const Design d = pair_design(1e6, 9.9e6);
  WaWirelength wl(d);
  std::vector<double> x{1e6 + 1, 9.9e6 + 1}, y{4, 4}, gx, gy;
  const double w = wl.evaluate(x, y, 1.0, gx, gy);
  EXPECT_TRUE(std::isfinite(w));
  EXPECT_NEAR(w, 8.9e6, 1e4);
  EXPECT_TRUE(std::isfinite(gx[0]));
  EXPECT_TRUE(std::isfinite(gx[1]));
}

TEST(WaNumerics, CoincidentPinsGiveZeroLengthAndBalancedGradient) {
  const Design d = pair_design(100, 100);
  WaWirelength wl(d);
  std::vector<double> x{101, 101}, y{4, 4}, gx, gy;
  const double w = wl.evaluate(x, y, 5.0, gx, gy);
  EXPECT_NEAR(w, 0.0, 1e-9);
  // Symmetric configuration: gradients cancel.
  EXPECT_NEAR(gx[0] + gx[1], 0.0, 1e-9);
}

TEST(WaNumerics, TinyGammaIsStable) {
  const Design d = pair_design(10, 500);
  WaWirelength wl(d);
  std::vector<double> x{11, 501}, y{4, 4}, gx, gy;
  const double w = wl.evaluate(x, y, 1e-6, gx, gy);
  EXPECT_TRUE(std::isfinite(w));
  EXPECT_NEAR(w, 490.0, 0.01);
}

TEST(WaNumerics, GradientSumIsZeroWithoutFixedPins) {
  // Translation invariance: for nets with only movable pins, the total
  // gradient over all cells must vanish in each dimension.
  SyntheticSpec spec;
  spec.num_cells = 150;
  spec.num_nets = 220;
  spec.num_macros = 0;
  spec.num_terminals = 0;
  const Design d = generate_synthetic(spec);
  WaWirelength wl(d);
  const std::size_t n = wl.movable_cells().size();
  Rng rng(5);
  std::vector<double> x(n), y(n), gx, gy;
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.uniform(0, 300);
    y[i] = rng.uniform(0, 300);
  }
  wl.evaluate(x, y, 8.0, gx, gy);
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += gx[i];
    sy += gy[i];
  }
  EXPECT_NEAR(sx, 0.0, 1e-6);
  EXPECT_NEAR(sy, 0.0, 1e-6);
}

TEST(ElectrostaticsNumerics, AsymmetricGridAndExtents) {
  ElectrostaticSystem es(32, 8, 400.0, 100.0);
  Map2D<double> rho(32, 8, 0.0);
  rho.at(16, 4) = 100.0;
  es.solve(rho);
  EXPECT_TRUE(std::isfinite(es.energy()));
  EXPECT_GT(es.field_x().at(20, 4), 0.0);
  EXPECT_GT(es.field_y().at(16, 6), 0.0);
}

TEST(ElectrostaticsNumerics, ScalesLinearlyWithCharge) {
  ElectrostaticSystem es(16, 16, 100.0, 100.0);
  Map2D<double> rho(16, 16, 0.0);
  rho.at(5, 9) = 2.0;
  es.solve(rho);
  const double f1 = es.field_x().at(8, 9);
  for (double& v : rho.raw()) v *= 3.0;
  es.solve(rho);
  EXPECT_NEAR(es.field_x().at(8, 9), 3.0 * f1, 1e-9);
}

TEST(EngineNumerics, PositionsAlwaysInsideDie) {
  SyntheticSpec spec;
  spec.num_cells = 300;
  spec.num_nets = 450;
  spec.num_macros = 2;
  spec.target_utilization = 0.9;  // tight: clamping must hold
  Design d = generate_synthetic(spec);
  initial_place(d);
  GpConfig cfg;
  cfg.max_iters = 150;
  EPlaceEngine engine(d, cfg);
  for (int i = 0; i < 150; ++i) {
    if (!engine.step()) break;
    EXPECT_TRUE(std::isfinite(engine.last_hpwl()));
    EXPECT_TRUE(std::isfinite(engine.density_overflow()));
  }
  engine.sync_to_design();
  for (const Cell& c : d.cells) {
    if (!c.movable()) continue;
    EXPECT_GE(c.x, d.die.xlo - 1e-6);
    EXPECT_LE(c.x + c.width, d.die.xhi + 1e-6);
  }
}

TEST(EngineNumerics, LambdaMonotoneUntilFreeze) {
  SyntheticSpec spec;
  spec.num_cells = 400;
  spec.num_nets = 600;
  Design d = generate_synthetic(spec);
  initial_place(d);
  GpConfig cfg;
  cfg.max_iters = 500;
  EPlaceEngine engine(d, cfg);
  engine.step();
  double prev = engine.lambda();
  bool frozen_seen = false;
  for (int i = 0; i < 400; ++i) {
    if (!engine.step()) break;
    if (engine.density_overflow() < cfg.lambda_freeze_overflow) {
      frozen_seen = true;
    }
    if (frozen_seen) {
      EXPECT_DOUBLE_EQ(engine.lambda(), prev);
    } else {
      EXPECT_GE(engine.lambda(), prev - 1e-12);
    }
    prev = engine.lambda();
  }
}

}  // namespace
}  // namespace puffer
