// Serve-subsystem tests: wire codecs (round trips + malformed-input
// rejection), the binary design codec, congestion-tile telemetry, the
// crash-safe request log and its replay, the session manager's state
// machine (queued -> running -> done/cancelled/failed), admission
// control (bounded queue, draining, bad requests -- explicit rejection,
// never a hang), restart recovery from the spool, and the daemon
// end-to-end over a Unix socket: concurrent clients whose results are
// bit-identical to an in-process PufferFlow::run(), snapshot/telemetry
// consistency across detach/re-attach, and malformed-traffic handling.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "core/config_io.h"
#include "core/flow.h"
#include "grid/capacity.h"
#include "io/design_codec.h"
#include "io/net.h"
#include "io/synthetic.h"
#include "serve/client.h"
#include "serve/request_log.h"
#include "serve/server.h"
#include "serve/serve_protocol.h"
#include "serve/session_manager.h"
#include "serve/telemetry.h"

namespace puffer {
namespace {

SyntheticSpec small_spec(std::uint64_t seed = 91) {
  SyntheticSpec spec;
  spec.name = "serve";
  spec.seed = seed;
  spec.num_cells = 300;
  spec.num_nets = 450;
  spec.num_macros = 2;
  spec.target_utilization = 0.78;
  spec.v_capacity_factor = 0.55;
  return spec;
}

PufferConfig small_flow_config() {
  PufferConfig cfg;
  cfg.gp.max_iters = 250;
  cfg.padding.xi = 3;
  cfg.num_threads = 0;
  return cfg;
}

std::string small_config_text() { return config_to_text(small_flow_config()); }

std::filesystem::path temp_dir(const char* leaf) {
  const auto dir = std::filesystem::temp_directory_path() / leaf;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

SubmitMsg small_job(const char* name = "job") {
  SubmitMsg msg;
  msg.job_name = name;
  msg.design_blob = encode_design(generate_synthetic(small_spec()));
  msg.config_text = small_config_text();
  return msg;
}

// The reference run: the exact flow the daemon executes, in-process.
// Computed once; every bit-identity assertion compares against this.
struct DirectReference {
  std::uint64_t checksum = 0;
  double hpwl_legal = 0.0;
  std::vector<TelemetryRound> rounds;
};

const DirectReference& direct_reference() {
  static const DirectReference ref = [] {
    DirectReference r;
    Design design = decode_design(encode_design(generate_synthetic(
        small_spec())));
    PufferConfig cfg =
        config_from_text(small_config_text(), PufferConfig{});
    PufferFlow flow(design, cfg);
    TelemetryRound prev;
    bool have_prev = false;
    flow.set_progress_hook([&](const FlowProgress& p) {
      r.rounds.push_back(make_round(p, have_prev ? &prev : nullptr));
      prev = r.rounds.back();
      have_prev = true;
      return true;
    });
    const FlowMetrics metrics = flow.run();
    r.checksum = position_checksum(design);
    r.hpwl_legal = metrics.hpwl_legal;
    return r;
  }();
  return ref;
}

// --- wire protocol codecs ------------------------------------------------

TEST(ServeProtocol, SubmitRoundTrip) {
  SubmitMsg m;
  m.format = static_cast<std::uint8_t>(JobFormat::kBookshelfBundle);
  m.job_name = "alpha";
  m.files = {{"d.aux", "RowBasedPlacement : d.nodes"}, {"d.nodes", "..."}};
  m.aux_name = "d.aux";
  m.config_text = "padding.tau = 0.25\n";
  const SubmitMsg d = decode_submit(encode_submit(m));
  EXPECT_EQ(d.format, m.format);
  EXPECT_EQ(d.job_name, "alpha");
  EXPECT_EQ(d.files, m.files);
  EXPECT_EQ(d.aux_name, "d.aux");
  EXPECT_EQ(d.config_text, m.config_text);
}

TEST(ServeProtocol, SnapshotRoundTripBitExact) {
  SnapshotMsg m;
  m.session_id = 42;
  m.state = static_cast<std::uint8_t>(SessionState::kDone);
  TelemetryRound t;
  t.round = 3;
  t.est_overflow_pct = 12.75;
  t.hpwl = -0.1;  // bit pattern must survive exactly
  t.overflow_delta = 1e-300;
  t.hpwl_delta = 5.5;
  t.tile_nx = 2;
  t.tile_ny = 1;
  t.tile = std::string("\x80\xc0", 2);
  m.history.push_back(t);
  m.has_summary = 1;
  m.summary.state = m.state;
  m.summary.checksum = 0xdeadbeefcafef00dULL;
  m.summary.hpwl_legal = 123.456;
  m.summary.runtime_s = 1.5;
  m.summary.padding_rounds = 4;
  const SnapshotMsg d = decode_snapshot_msg(encode_snapshot_msg(m));
  ASSERT_EQ(d.history.size(), 1u);
  EXPECT_EQ(d.history[0].round, 3);
  EXPECT_EQ(d.history[0].hpwl, -0.1);
  EXPECT_EQ(d.history[0].overflow_delta, 1e-300);
  EXPECT_EQ(d.history[0].tile, t.tile);
  ASSERT_EQ(d.has_summary, 1);
  EXPECT_EQ(d.summary.checksum, m.summary.checksum);
  EXPECT_EQ(d.summary.hpwl_legal, 123.456);
}

TEST(ServeProtocol, RejectsTrailingBytes) {
  SessionRefMsg ref;
  ref.session_id = 7;
  std::string body = encode_session_ref(ref);
  body.push_back('x');
  EXPECT_THROW(decode_session_ref(body), CheckpointError);
}

TEST(ServeProtocol, RejectsBadEnums) {
  SubmitAckMsg ack;
  ack.state = 200;  // not a SessionState
  EXPECT_THROW(decode_submit_ack(encode_submit_ack(ack)), CheckpointError);
  RejectedMsg rej;
  rej.reason = 0;
  EXPECT_THROW(decode_rejected(encode_rejected(rej)), CheckpointError);
}

TEST(ServeProtocol, RejectsTileSizeMismatch) {
  TelemetryMsg m;
  m.round.tile_nx = 4;
  m.round.tile_ny = 4;
  m.round.tile = "abc";  // 3 bytes != 16
  EXPECT_THROW(decode_telemetry(encode_telemetry(m)), CheckpointError);
}

TEST(ServeProtocol, RejectsTruncatedResult) {
  ResultMsg m;
  m.session_id = 1;
  m.x = {1.0, 2.0};
  m.y = {3.0, 4.0};
  std::string body = encode_result(m);
  body.resize(body.size() - 5);
  EXPECT_THROW(decode_result(body), CheckpointError);
}

// --- binary design codec -------------------------------------------------

TEST(DesignCodec, RoundTripIsStructurallyAndBitwiseExact) {
  const Design a = generate_synthetic(small_spec());
  const std::string blob = encode_design(a);
  const Design b = decode_design(blob);
  EXPECT_EQ(design_structure_key(a), design_structure_key(b));
  EXPECT_EQ(position_checksum(a), position_checksum(b));
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.rows.size(), b.rows.size());
  EXPECT_EQ(a.tech.layers.size(), b.tech.layers.size());
  // Re-encode is byte-identical (stable wire form).
  EXPECT_EQ(encode_design(b), blob);
}

TEST(DesignCodec, RejectsCorruption) {
  const Design a = generate_synthetic(small_spec());
  std::string blob = encode_design(a);
  EXPECT_THROW(decode_design("short"), CheckpointError);
  std::string flipped = blob;
  flipped[blob.size() / 2] ^= 0x20;
  EXPECT_THROW(decode_design(flipped), CheckpointError);
  std::string truncated = blob.substr(0, blob.size() - 3);
  EXPECT_THROW(decode_design(truncated), CheckpointError);
}

// --- telemetry tiles -----------------------------------------------------

TEST(Telemetry, QuantizeCongestion) {
  EXPECT_EQ(quantize_congestion(0.0), 128);   // at capacity
  EXPECT_EQ(quantize_congestion(1.0), 192);   // 100% overflow
  EXPECT_EQ(quantize_congestion(-1.0), 64);   // 100% slack
  EXPECT_EQ(quantize_congestion(10.0), 255);  // clamped
  EXPECT_EQ(quantize_congestion(-10.0), 0);
}

TEST(Telemetry, TileMaxPoolingKeepsHotspotVisible) {
  const GcellGrid grid(Rect(0, 0, 64, 64), 64, 64);
  CapacityMaps caps;
  caps.cap_h = Map2D<double>(64, 64, 10.0);
  caps.cap_v = Map2D<double>(64, 64, 10.0);
  RoutingMaps maps(grid, caps);
  maps.dmd_h.fill(1.0);
  maps.dmd_v.fill(1.0);
  maps.dmd_h.at(37, 11) = 30.0;  // one overflowed Gcell

  int nx = 0, ny = 0;
  std::string tile;
  congestion_tile(maps, 32, &nx, &ny, &tile);
  ASSERT_EQ(nx, 32);
  ASSERT_EQ(ny, 32);
  ASSERT_EQ(tile.size(), 32u * 32u);
  // The hotspot's 2x2 pool must quantize above "at capacity"; all other
  // tiles sit below it (slack everywhere else).
  const std::uint8_t hot = static_cast<std::uint8_t>(
      tile[static_cast<std::size_t>(11 / 2) * 32 + 37 / 2]);
  EXPECT_GT(hot, 128);
  int above = 0;
  for (char c : tile) above += static_cast<std::uint8_t>(c) > 128 ? 1 : 0;
  EXPECT_EQ(above, 1);
}

// --- request log ---------------------------------------------------------

TEST(RequestLog, RoundTripAndReplay) {
  const auto dir = temp_dir("serve_log_test");
  const std::string path = (dir / "requests.jsonl").string();
  {
    RequestLog log(path);
    RequestLogRecord sub;
    sub.type = RequestLogRecord::Type::kSubmit;
    sub.session_id = 1;
    sub.job_file = "job_1.bin";
    sub.job_name = "alpha";
    log.append(sub);
    RequestLogRecord start;
    start.type = RequestLogRecord::Type::kStart;
    start.session_id = 1;
    log.append(start);
    RequestLogRecord fin;
    fin.type = RequestLogRecord::Type::kFinish;
    fin.session_id = 1;
    fin.state = static_cast<std::uint8_t>(SessionState::kDone);
    fin.checksum = 0x0123456789abcdefULL;
    fin.hpwl_legal = -0.1;  // exact-bit replay
    fin.runtime_s = 2.5;
    fin.rounds = 3;
    fin.result_file = "result_1.bin";
    log.append(fin);
    RequestLogRecord sub2 = sub;
    sub2.session_id = 2;
    sub2.job_file = "job_2.bin";
    log.append(sub2);
  }
  const auto records = RequestLog::load(path);
  ASSERT_EQ(records.size(), 5u);  // header + 4
  EXPECT_EQ(records[0].type, RequestLogRecord::Type::kHeader);

  const auto sessions = replay_request_log(records);
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_EQ(sessions[0].session_id, 1u);
  EXPECT_TRUE(sessions[0].finished);
  EXPECT_EQ(sessions[0].summary.checksum, 0x0123456789abcdefULL);
  EXPECT_EQ(sessions[0].summary.hpwl_legal, -0.1);
  EXPECT_EQ(sessions[0].summary.padding_rounds, 3);
  EXPECT_EQ(sessions[0].result_file, "result_1.bin");
  EXPECT_FALSE(sessions[1].finished);
  EXPECT_FALSE(sessions[1].started);
}

TEST(RequestLog, TornTailIsDropped) {
  const auto dir = temp_dir("serve_log_torn");
  const std::string path = (dir / "requests.jsonl").string();
  {
    RequestLog log(path);
    RequestLogRecord sub;
    sub.type = RequestLogRecord::Type::kSubmit;
    sub.session_id = 1;
    sub.job_file = "job_1.bin";
    log.append(sub);
  }
  {
    std::ofstream out(path, std::ios::app);
    out << "{\"type\":\"finish\",\"sid\":1,\"sta";  // torn mid-record
  }
  const auto sessions = replay_request_log(RequestLog::load(path));
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_FALSE(sessions[0].finished);
}

// --- session manager -----------------------------------------------------

// Drives the manager the way the poll loop does, without a server.
class ManagerHarness {
 public:
  explicit ManagerHarness(ServeConfig config)
      : mgr_(std::move(config), nullptr) {}

  ServeSessionManager& mgr() { return mgr_; }

  // Pumps + applies events until the session settles (or 60s pass).
  const ServeSession* settle(std::uint64_t sid) {
    for (int spins = 0; spins < 60000; ++spins) {
      mgr_.pump();
      for (const SessionEvent& ev : mgr_.drain_events()) {
        mgr_.apply(ev);
      }
      const ServeSession* s = mgr_.find(sid);
      if (s && session_terminal(s->state)) return s;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return nullptr;
  }

 private:
  ServeSessionManager mgr_;
};

ServeConfig manager_config(const char* leaf) {
  ServeConfig cfg;
  cfg.spool_dir = temp_dir(leaf).string();
  return cfg;
}

TEST(ServeSessionManager, RunsSessionToDoneBitIdenticalToDirectFlow) {
  ManagerHarness h(manager_config("serve_mgr_done"));
  const auto res = h.mgr().submit(encode_submit(small_job()));
  ASSERT_TRUE(res.accepted);
  EXPECT_EQ(res.state, SessionState::kQueued);

  const ServeSession* s = h.settle(res.session_id);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->state, SessionState::kDone);
  EXPECT_EQ(s->summary.checksum, direct_reference().checksum);
  EXPECT_EQ(s->summary.hpwl_legal, direct_reference().hpwl_legal);

  // Streamed history matches the direct run's hook payloads bit-exactly.
  const auto& want = direct_reference().rounds;
  ASSERT_EQ(s->history.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(s->history[i].round, want[i].round);
    EXPECT_EQ(s->history[i].est_overflow_pct, want[i].est_overflow_pct);
    EXPECT_EQ(s->history[i].hpwl, want[i].hpwl);
    EXPECT_EQ(s->history[i].overflow_delta, want[i].overflow_delta);
    EXPECT_EQ(s->history[i].hpwl_delta, want[i].hpwl_delta);
    EXPECT_EQ(s->history[i].tile, want[i].tile);
  }

  // The spooled result decodes to the same placement.
  std::string body;
  ASSERT_TRUE(h.mgr().result_body(res.session_id, &body));
  const ResultMsg result = decode_result(body);
  EXPECT_EQ(result.checksum, direct_reference().checksum);
  EXPECT_EQ(result.x.size(), result.y.size());
}

TEST(ServeSessionManager, StateMachineAndAdmissionControl) {
  ServeConfig cfg = manager_config("serve_mgr_admission");
  cfg.max_running = 1;
  cfg.max_queued = 2;
  ManagerHarness h(cfg);

  // Malformed submits are rejected at the door (and don't take a slot).
  const auto bad = h.mgr().submit("not a submit body");
  EXPECT_FALSE(bad.accepted);
  EXPECT_EQ(bad.reason, RejectReason::kBadRequest);
  SubmitMsg garbage_design = small_job("g");
  garbage_design.design_blob = "garbage";
  const auto bad2 = h.mgr().submit(encode_submit(garbage_design));
  EXPECT_FALSE(bad2.accepted);
  EXPECT_EQ(bad2.reason, RejectReason::kBadRequest);

  // Fill the queue without starting anything.
  const auto a = h.mgr().submit(encode_submit(small_job("a")));
  const auto b = h.mgr().submit(encode_submit(small_job("b")));
  ASSERT_TRUE(a.accepted);
  ASSERT_TRUE(b.accepted);
  EXPECT_EQ(b.queue_depth, 1);

  // Bounded queue: the third submit is rejected, not blocked or dropped
  // (the capacity check precedes decoding, so even a malformed body gets
  // the queue-full reply here -- backpressure is always explicit).
  const auto c = h.mgr().submit(encode_submit(small_job("c")));
  EXPECT_FALSE(c.accepted);
  EXPECT_EQ(c.reason, RejectReason::kQueueFull);

  // Cancel-while-queued settles immediately: queued -> cancelled.
  ASSERT_TRUE(h.mgr().cancel(b.session_id));
  const ServeSession* sb = h.mgr().find(b.session_id);
  ASSERT_NE(sb, nullptr);
  EXPECT_EQ(sb->state, SessionState::kCancelled);
  EXPECT_FALSE(h.mgr().cancel(9999));  // unknown id

  // Draining rejects new work but finishes what was admitted.
  h.mgr().set_draining();
  const auto d = h.mgr().submit(encode_submit(small_job("d")));
  EXPECT_FALSE(d.accepted);
  EXPECT_EQ(d.reason, RejectReason::kDraining);

  const ServeSession* sa = h.settle(a.session_id);
  ASSERT_NE(sa, nullptr);
  EXPECT_EQ(sa->state, SessionState::kDone);
  EXPECT_EQ(sa->summary.checksum, direct_reference().checksum);
  EXPECT_TRUE(h.mgr().idle());

  const StatusMsg status = h.mgr().status(a.session_id);
  EXPECT_EQ(status.done, 1);
  EXPECT_EQ(status.cancelled, 1);
  EXPECT_EQ(status.draining, 1);
  EXPECT_EQ(status.has_session, 1);
  EXPECT_EQ(status.session_state,
            static_cast<std::uint8_t>(SessionState::kDone));
}

TEST(ServeSessionManager, BadConfigFailsTheSession) {
  ManagerHarness h(manager_config("serve_mgr_failed"));
  SubmitMsg job = small_job("bad-config");
  job.config_text = "no_such_knob = 1\n";
  const auto res = h.mgr().submit(encode_submit(job));
  ASSERT_TRUE(res.accepted);  // the netlist is fine; strategy fails later
  const ServeSession* s = h.settle(res.session_id);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->state, SessionState::kFailed);
  EXPECT_NE(s->summary.message.find("no_such_knob"), std::string::npos);
  std::string body;
  EXPECT_FALSE(h.mgr().result_body(res.session_id, &body));
}

TEST(ServeSessionManager, RestartRecoversFinishedAndRerunsUnfinished) {
  ServeConfig cfg = manager_config("serve_mgr_recover");
  std::uint64_t done_sid = 0, pending_sid = 0;
  {
    ManagerHarness h(cfg);
    const auto a = h.mgr().submit(encode_submit(small_job("done-before")));
    ASSERT_TRUE(a.accepted);
    done_sid = a.session_id;
    ASSERT_NE(h.settle(done_sid), nullptr);
    // Second job admitted but never pumped: still queued at "crash".
    const auto b = h.mgr().submit(encode_submit(small_job("pending")));
    ASSERT_TRUE(b.accepted);
    pending_sid = b.session_id;
  }  // manager destroyed: the daemon "crashed"/restarted

  ManagerHarness h2(cfg);
  // The finished session is restored with its exact summary + result.
  const ServeSession* done = h2.mgr().find(done_sid);
  ASSERT_NE(done, nullptr);
  EXPECT_EQ(done->state, SessionState::kDone);
  EXPECT_EQ(done->summary.checksum, direct_reference().checksum);
  EXPECT_EQ(done->summary.hpwl_legal, direct_reference().hpwl_legal);
  std::string body;
  ASSERT_TRUE(h2.mgr().result_body(done_sid, &body));
  EXPECT_EQ(decode_result(body).checksum, direct_reference().checksum);

  // The unfinished session was re-admitted; the deterministic re-run
  // reproduces the same placement bit-for-bit.
  const ServeSession* pending = h2.mgr().find(pending_sid);
  ASSERT_NE(pending, nullptr);
  EXPECT_EQ(pending->state, SessionState::kQueued);
  const ServeSession* rerun = h2.settle(pending_sid);
  ASSERT_NE(rerun, nullptr);
  EXPECT_EQ(rerun->state, SessionState::kDone);
  EXPECT_EQ(rerun->summary.checksum, direct_reference().checksum);

  // New ids keep counting up from the recovered ones.
  const auto fresh = h2.mgr().submit(encode_submit(small_job("fresh")));
  ASSERT_TRUE(fresh.accepted);
  EXPECT_GT(fresh.session_id, pending_sid);
  h2.mgr().cancel(fresh.session_id);
}

// --- daemon end-to-end ---------------------------------------------------

class ServerFixture {
 public:
  explicit ServerFixture(ServeConfig config, const char* sock_leaf) {
    address_ =
        (std::filesystem::temp_directory_path() / sock_leaf).string();
    ::unlink(address_.c_str());
    server_ = std::make_unique<PufferServer>(address_, std::move(config));
    thread_ = std::thread([this] { server_->run(); });
  }

  ~ServerFixture() {
    server_->request_drain();
    thread_.join();
    server_.reset();
  }

  const std::string& address() const { return address_; }

 private:
  std::string address_;
  std::unique_ptr<PufferServer> server_;
  std::thread thread_;
};

TEST(PufferServer, ConcurrentClientsAreBitIdenticalToDirectRun) {
  ServeConfig cfg;
  cfg.spool_dir = temp_dir("serve_e2e_conc").string();
  cfg.max_running = 2;
  ServerFixture server(cfg, "serve_e2e_conc.sock");

  // Two clients submit the same job concurrently; both sessions run
  // under split worker leases and must reproduce the direct result.
  auto run_client = [&](int idx, std::uint64_t* checksum,
                        std::vector<TelemetryRound>* rounds) {
    ServeClient client(server.address(), 10.0,
                       "client-" + std::to_string(idx));
    const ServeEvent ack = client.submit(small_job("conc"));
    ASSERT_EQ(ack.type, ServeMsgType::kSubmitAck);
    const std::uint64_t sid = ack.ack.session_id;
    const SnapshotMsg snap = client.subscribe(sid);
    for (const TelemetryRound& t : snap.history) rounds->push_back(t);
    if (!snap.has_summary) {
      const DoneMsg done = client.wait_done(sid, rounds);
      ASSERT_EQ(done.summary.state,
                static_cast<std::uint8_t>(SessionState::kDone));
    }
    const ServeEvent result = client.fetch(sid);
    ASSERT_EQ(result.type, ServeMsgType::kResult);
    *checksum = result.result.checksum;
  };

  std::uint64_t sum1 = 0, sum2 = 0;
  std::vector<TelemetryRound> rounds1, rounds2;
  std::thread t1(run_client, 1, &sum1, &rounds1);
  std::thread t2(run_client, 2, &sum2, &rounds2);
  t1.join();
  t2.join();

  EXPECT_EQ(sum1, direct_reference().checksum);
  EXPECT_EQ(sum2, direct_reference().checksum);

  // Snapshot-on-subscribe + streamed deltas together reconstruct the
  // full round history, bit-identical to the direct run's.
  const auto& want = direct_reference().rounds;
  for (const auto* rounds : {&rounds1, &rounds2}) {
    ASSERT_EQ(rounds->size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ((*rounds)[i].round, want[i].round);
      EXPECT_EQ((*rounds)[i].est_overflow_pct, want[i].est_overflow_pct);
      EXPECT_EQ((*rounds)[i].hpwl, want[i].hpwl);
      EXPECT_EQ((*rounds)[i].tile, want[i].tile);
    }
  }
}

TEST(PufferServer, PerConnectionCapAndDetachReattach) {
  ServeConfig cfg;
  cfg.spool_dir = temp_dir("serve_e2e_cap").string();
  cfg.max_running = 1;
  cfg.per_conn_inflight = 1;
  ServerFixture server(cfg, "serve_e2e_cap.sock");

  ServeClient client(server.address());
  const ServeEvent ack = client.submit(small_job("first"));
  ASSERT_EQ(ack.type, ServeMsgType::kSubmitAck);
  const std::uint64_t sid = ack.ack.session_id;

  // Same connection, second in-flight job: explicit per-conn rejection.
  const ServeEvent rej = client.submit(small_job("second"));
  ASSERT_EQ(rej.type, ServeMsgType::kRejected);
  EXPECT_EQ(rej.rejected.reason,
            static_cast<std::uint8_t>(RejectReason::kPerConnCap));

  // Subscribe, then detach: the ack is a barrier, after which no more
  // frames for the session arrive on this connection.
  (void)client.subscribe(sid);
  (void)client.detach(sid);

  // Re-attach from a *new* connection (the session outlives its
  // submitter) and ride it to completion.
  ServeClient watcher(server.address(), 10.0, "watcher");
  std::vector<TelemetryRound> rounds;
  const SnapshotMsg snap = watcher.subscribe(sid);
  for (const TelemetryRound& t : snap.history) rounds.push_back(t);
  SessionSummary summary;
  if (snap.has_summary) {
    summary = snap.summary;
  } else {
    summary = watcher.wait_done(sid, &rounds).summary;
  }
  EXPECT_EQ(summary.state, static_cast<std::uint8_t>(SessionState::kDone));
  EXPECT_EQ(summary.checksum, direct_reference().checksum);

  // Snapshot + deltas reconstruct the full history exactly once each.
  const auto& want = direct_reference().rounds;
  ASSERT_EQ(rounds.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(rounds[i].round, want[i].round);
    EXPECT_EQ(rounds[i].hpwl, want[i].hpwl);
  }

  // A subscribe after completion yields a terminal snapshot whose
  // history matches what was streamed live.
  const SnapshotMsg after = watcher.subscribe(sid);
  EXPECT_EQ(after.state, static_cast<std::uint8_t>(SessionState::kDone));
  ASSERT_EQ(after.has_summary, 1);
  EXPECT_EQ(after.summary.checksum, direct_reference().checksum);
  ASSERT_EQ(after.history.size(), rounds.size());
  for (std::size_t i = 0; i < rounds.size(); ++i) {
    EXPECT_EQ(after.history[i].hpwl, rounds[i].hpwl);
    EXPECT_EQ(after.history[i].tile, rounds[i].tile);
  }
}

TEST(PufferServer, MalformedTrafficIsRejectedWithoutTakingTheDaemonDown) {
  ServeConfig cfg;
  cfg.spool_dir = temp_dir("serve_e2e_malformed").string();
  ServerFixture server(cfg, "serve_e2e_malformed.sock");

  // 1) Corrupt framing: the daemon closes the connection.
  {
    const int fd = connect_socket_retry(server.address(), 10.0);
    const std::string garbage = "this is not a PUFM frame at all........";
    ASSERT_EQ(::write(fd, garbage.data(), garbage.size()),
              static_cast<ssize_t>(garbage.size()));
    WireFrame frame;
    EXPECT_FALSE(read_frame_fd(fd, &frame));  // clean EOF: peer closed
    ::close(fd);
  }

  // 2) Well-framed junk body: kError reply, connection stays usable...
  {
    const int fd = connect_socket_retry(server.address(), 10.0);
    ClientHelloMsg hello;
    send_serve_msg(fd, ServeMsgType::kClientHello,
                   encode_client_hello(hello));
    WireFrame frame;
    ASSERT_TRUE(read_frame_fd(fd, &frame));
    ASSERT_EQ(frame.type,
              static_cast<std::uint32_t>(ServeMsgType::kServerHello));
    send_serve_msg(fd, ServeMsgType::kSubscribe, "junk body");
    ASSERT_TRUE(read_frame_fd(fd, &frame));
    EXPECT_EQ(frame.type, static_cast<std::uint32_t>(ServeMsgType::kError));
    // ...including for unknown message types.
    send_serve_msg(fd, static_cast<ServeMsgType>(999), "");
    ASSERT_TRUE(read_frame_fd(fd, &frame));
    EXPECT_EQ(frame.type, static_cast<std::uint32_t>(ServeMsgType::kError));
    ::close(fd);
  }

  // 3) Requests before the hello are refused.
  {
    const int fd = connect_socket_retry(server.address(), 10.0);
    SessionRefMsg ref;
    ref.session_id = 1;
    send_serve_msg(fd, ServeMsgType::kQuery, encode_session_ref(ref));
    WireFrame frame;
    ASSERT_TRUE(read_frame_fd(fd, &frame));
    EXPECT_EQ(frame.type, static_cast<std::uint32_t>(ServeMsgType::kError));
    ::close(fd);
  }

  // The daemon still serves a well-behaved client.
  ServeClient client(server.address());
  const ServeEvent status = client.query(0);
  ASSERT_EQ(status.type, ServeMsgType::kStatus);
  EXPECT_EQ(status.status.queued, 0);
  const ServeEvent err = client.fetch(12345);  // unknown session
  EXPECT_EQ(err.type, ServeMsgType::kError);
}

}  // namespace
}  // namespace puffer
