// Distributed-orchestration wire tests: stream-backed checkpoint frames
// (round-trip over socketpair/pipe, truncation and corrupted-FNV
// rejection), message codecs, the prune-thresholds wire codec, the
// worker's snapshot-key mismatch rejection, and coordinator/worker
// end-to-end runs (bit-identity with the in-process scheduler, trial
// reassignment after a worker dies mid-trial).
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "io/checkpoint.h"
#include "io/synthetic.h"
#include "orchestrate/coordinator.h"
#include "orchestrate/orchestrator.h"
#include "orchestrate/protocol.h"
#include "orchestrate/pruner.h"
#include "orchestrate/worker.h"

namespace puffer {
namespace {

class ProtocolTest : public ::testing::Test {
 protected:
  ~ProtocolTest() override { par::set_num_threads(0); }
};

// Paired fds whose lifetime is scoped to the test body.
struct FdPair {
  int a = -1, b = -1;
  FdPair() {
    int sv[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    a = sv[0];
    b = sv[1];
  }
  ~FdPair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
  void close_a() {
    ::close(a);
    a = -1;
  }
};

SyntheticSpec tiny_spec() {
  SyntheticSpec spec;
  spec.name = "proto";
  spec.seed = 91;
  spec.num_cells = 300;
  spec.num_nets = 450;
  spec.num_macros = 2;
  spec.target_utilization = 0.78;
  spec.v_capacity_factor = 0.55;
  return spec;
}

ExperimentConfig tiny_experiment_config() {
  ExperimentConfig cfg;
  cfg.puffer.gp.max_iters = 250;
  cfg.puffer.padding.xi = 3;
  cfg.puffer.num_threads = 0;
  return cfg;
}

OrchestratorConfig tiny_orch_config() {
  OrchestratorConfig cfg;
  cfg.trials = 4;
  cfg.batch_size = 2;
  cfg.concurrency = 2;
  cfg.fork_overflow = 0.45;
  cfg.seed = 4242;
  cfg.tpe.n_startup = 3;
  return cfg;
}

std::string temp_socket(const char* leaf) {
  const auto path = std::filesystem::temp_directory_path() / leaf;
  std::filesystem::remove(path);
  return path.string();
}

// --- stream frames --------------------------------------------------------

TEST_F(ProtocolTest, FrameRoundTripOverSocketpair) {
  FdPair fds;
  const std::string small = "hello";
  std::string big(100000, '\0');
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<char>(i * 2654435761u >> 13);
  }
  // Writer thread: socket buffers are smaller than `big`, so the write
  // must interleave with the read side.
  std::thread writer([&] {
    write_frame_fd(fds.a, 1, small);
    write_frame_fd(fds.a, 2, big);
    write_frame_fd(fds.a, 3, std::string());  // empty body
    fds.close_a();                            // clean EOF
  });
  WireFrame f;
  ASSERT_TRUE(read_frame_fd(fds.b, &f));
  EXPECT_EQ(f.type, 1u);
  EXPECT_EQ(f.body, small);
  ASSERT_TRUE(read_frame_fd(fds.b, &f));
  EXPECT_EQ(f.type, 2u);
  EXPECT_EQ(f.body, big);
  ASSERT_TRUE(read_frame_fd(fds.b, &f));
  EXPECT_EQ(f.type, 3u);
  EXPECT_TRUE(f.body.empty());
  EXPECT_FALSE(read_frame_fd(fds.b, &f));  // EOF at a frame boundary
  writer.join();
}

TEST_F(ProtocolTest, FrameRoundTripOverPipe) {
  int pfd[2];
  ASSERT_EQ(::pipe(pfd), 0);
  write_frame_fd(pfd[1], 7, "pipe payload");
  ::close(pfd[1]);
  WireFrame f;
  ASSERT_TRUE(read_frame_fd(pfd[0], &f));
  EXPECT_EQ(f.type, 7u);
  EXPECT_EQ(f.body, "pipe payload");
  EXPECT_FALSE(read_frame_fd(pfd[0], &f));
  ::close(pfd[0]);
}

TEST_F(ProtocolTest, TruncatedFrameRejected) {
  // EOF inside the header (after the first byte) and EOF inside the body
  // are both corruption, not clean shutdown.
  const std::string bytes = encode_frame(4, "truncated body victim");
  for (const std::size_t keep : {1ul, 10ul, bytes.size() - 1}) {
    FdPair fds;
    ASSERT_EQ(::write(fds.a, bytes.data(), keep),
              static_cast<ssize_t>(keep));
    fds.close_a();
    WireFrame f;
    EXPECT_THROW(read_frame_fd(fds.b, &f), CheckpointError) << keep;
  }
}

TEST_F(ProtocolTest, CorruptedChecksumRejected) {
  std::string bytes = encode_frame(4, "checksummed payload");
  bytes[bytes.size() / 2] ^= 0x40;  // flip a body bit
  FdPair fds;
  ASSERT_EQ(::write(fds.a, bytes.data(), bytes.size()),
            static_cast<ssize_t>(bytes.size()));
  fds.close_a();
  WireFrame f;
  EXPECT_THROW(read_frame_fd(fds.b, &f), CheckpointError);
}

TEST_F(ProtocolTest, BadMagicRejected) {
  std::string bytes = encode_frame(4, "payload");
  bytes[0] ^= 0xff;
  FdPair fds;
  ASSERT_EQ(::write(fds.a, bytes.data(), bytes.size()),
            static_cast<ssize_t>(bytes.size()));
  fds.close_a();
  WireFrame f;
  EXPECT_THROW(read_frame_fd(fds.b, &f), CheckpointError);
}

// --- message codecs -------------------------------------------------------

TEST_F(ProtocolTest, HelloRoundTrip) {
  HelloMsg m;
  m.design_key = 0xdeadbeefcafef00dull;
  m.cached = {{1, 2}, {0xffffffffffffffffull, 3}};
  m.worker_name = "w-7";
  const HelloMsg d = decode_hello(encode_hello(m));
  EXPECT_EQ(d.protocol_version, kOrchProtocolVersion);
  EXPECT_EQ(d.design_key, m.design_key);
  EXPECT_EQ(d.cached, m.cached);
  EXPECT_EQ(d.worker_name, m.worker_name);
}

TEST_F(ProtocolTest, HelloAckRoundTrip) {
  HelloAckMsg m;
  m.design_key = 11;
  m.prefix_key = 22;
  m.space_key = 33;
  m.seed = 44;
  m.base_config_text = "gp.max_iters = 250\n";
  m.snapshot_follows = 0;
  const HelloAckMsg d = decode_hello_ack(encode_hello_ack(m));
  EXPECT_EQ(d.design_key, 11u);
  EXPECT_EQ(d.prefix_key, 22u);
  EXPECT_EQ(d.space_key, 33u);
  EXPECT_EQ(d.seed, 44u);
  EXPECT_EQ(d.base_config_text, m.base_config_text);
  EXPECT_EQ(d.snapshot_follows, 0);
}

TEST_F(ProtocolTest, TrialMessagesRoundTripBitExact) {
  TrialAssignMsg a;
  a.trial_id = 17;
  a.assignment = {0.1, -0.0, 3.5e-320, 1.0 / 3.0};  // subnormal included
  a.akey = 0x1234;
  a.pruner_blob = std::string("\x00\x01\xff", 3);
  const TrialAssignMsg da = decode_trial_assign(encode_trial_assign(a));
  EXPECT_EQ(da.trial_id, 17);
  EXPECT_EQ(da.akey, 0x1234u);
  ASSERT_EQ(da.assignment.size(), a.assignment.size());
  for (std::size_t i = 0; i < a.assignment.size(); ++i) {
    EXPECT_EQ(std::memcmp(&da.assignment[i], &a.assignment[i], 8), 0) << i;
  }
  EXPECT_EQ(da.pruner_blob, a.pruner_blob);

  TrialResultMsg r;
  r.trial_id = 17;
  r.akey = 0x1234;
  r.loss = 2.0111091837465;
  r.pruned = 1;
  r.prune_round = 3;
  r.checksum = 0x8d5b9e7465871f06ull;
  r.rounds = {0.9, 0.5, 0.30000000000000004};
  r.wall_s = 1.25;
  const TrialResultMsg dr = decode_trial_result(encode_trial_result(r));
  EXPECT_EQ(std::memcmp(&dr.loss, &r.loss, 8), 0);
  EXPECT_EQ(dr.pruned, 1);
  EXPECT_EQ(dr.prune_round, 3);
  EXPECT_EQ(dr.checksum, r.checksum);
  ASSERT_EQ(dr.rounds.size(), 3u);
  EXPECT_EQ(std::memcmp(&dr.rounds[2], &r.rounds[2], 8), 0);
  EXPECT_EQ(dr.wall_s, r.wall_s);
}

TEST_F(ProtocolTest, TrailingBytesRejected) {
  ErrorMsg e;
  e.message = "boom";
  EXPECT_EQ(decode_error(encode_error(e)).message, "boom");
  EXPECT_THROW(decode_error(encode_error(e) + "x"), CheckpointError);
  HelloMsg h;
  EXPECT_THROW(decode_hello(encode_hello(h) + "junk"), CheckpointError);
  EXPECT_THROW(decode_trial_assign(std::string("short")), CheckpointError);
}

TEST_F(ProtocolTest, PruneThresholdsRoundTrip) {
  PruneConfig cfg;
  cfg.enabled = true;
  cfg.grace_rounds = 1;
  cfg.min_history = 3;
  cfg.quantile = 0.5;
  PruneThresholds t(validate_prune_config(cfg));
  t.observe({0.9, 0.5, 0.3});
  t.observe({0.8, 0.6, 0.4});
  t.observe({0.7, 0.4, 0.2});
  const PruneThresholds d = decode_prune_thresholds(encode_prune_thresholds(t));
  EXPECT_EQ(d.trails_observed(), 3);
  EXPECT_EQ(d.config().min_history, 3);
  // Decisions agree with the original on both sides of the threshold.
  for (int round = 0; round < 4; ++round) {
    for (double v : {0.1, 0.35, 0.45, 0.55, 0.9, 2.0}) {
      EXPECT_EQ(d.should_prune(round, v), t.should_prune(round, v))
          << round << " " << v;
    }
  }
  EXPECT_EQ(d.penalty_loss(0.5), t.penalty_loss(0.5));
  EXPECT_THROW(decode_prune_thresholds(std::string("garbage")),
               CheckpointError);
}

// --- worker handshake -----------------------------------------------------

TEST_F(ProtocolTest, WorkerRejectsSnapshotKeyMismatch) {
  const Design design = generate_synthetic(tiny_spec());
  const std::uint64_t dkey = design_structure_key(design);
  const ExperimentConfig base = tiny_experiment_config();

  FdPair fds;
  SnapshotCache cache;
  bool served = true;
  std::thread worker([&] {
    served = serve_coordinator(fds.b, design, base, &cache, "t");
  });

  WireFrame f;
  ASSERT_TRUE(read_frame_fd(fds.a, &f));
  const HelloMsg hello = decode_hello(f.body);
  EXPECT_EQ(hello.design_key, dkey);

  HelloAckMsg ack;
  ack.design_key = dkey;
  ack.prefix_key = 777;
  ack.snapshot_follows = 1;
  send_msg(fds.a, MsgType::kHelloAck, encode_hello_ack(ack));
  // The snapshot's own keys disagree with the announced prefix: the
  // worker must refuse to fork trials from it.
  FlowSnapshot snap;
  snap.design_key = dkey;
  snap.prefix_key = 778;
  snap.x.assign(design.cells.size(), 0.0);
  snap.y.assign(design.cells.size(), 0.0);
  send_msg(fds.a, MsgType::kSnapshot, encode_snapshot(snap));

  ASSERT_TRUE(read_frame_fd(fds.a, &f));
  EXPECT_EQ(f.type, static_cast<std::uint32_t>(MsgType::kError));
  EXPECT_NE(decode_error(f.body).message.find("snapshot key mismatch"),
            std::string::npos);
  worker.join();
  EXPECT_FALSE(served);
  EXPECT_EQ(cache.keys().size(), 0u);  // nothing poisoned the cache
}

// --- end-to-end -----------------------------------------------------------

TEST_F(ProtocolTest, DistributedMatchesInProcessBitExactly) {
  // In-process reference.
  OrchestrationResult ref;
  {
    Design d = generate_synthetic(tiny_spec());
    TrialOrchestrator orch(d, puffer_param_specs(), tiny_experiment_config(),
                           tiny_orch_config());
    ref = orch.run();
  }

  // Same exploration, trials evaluated by two worker "processes"
  // (threads here; the binary is exercised by scripts/kill_worker_smoke).
  const std::string address = temp_socket("puffer_proto_e2e.sock");
  std::vector<std::thread> workers;
  for (int w = 0; w < 2; ++w) {
    workers.emplace_back([&address, w] {
      Design d = generate_synthetic(tiny_spec());
      WorkerConfig cfg;
      cfg.connect = address;
      cfg.name = "t-worker-" + std::to_string(w);
      cfg.connect_timeout_s = 60.0;
      EXPECT_EQ(run_worker(d, tiny_experiment_config(), cfg), 0);
    });
  }

  Design d = generate_synthetic(tiny_spec());
  CoordinatorConfig coord;
  coord.listen = address;
  coord.min_workers = 2;
  coord.attach_timeout_s = 60.0;
  const OrchestrationResult dist = run_distributed_orchestration(
      d, puffer_param_specs(), tiny_experiment_config(), tiny_orch_config(),
      coord);
  for (std::thread& t : workers) t.join();

  EXPECT_EQ(dist.best_trial, ref.best_trial);
  EXPECT_EQ(std::memcmp(&dist.best_loss, &ref.best_loss, 8), 0);
  EXPECT_EQ(dist.best, ref.best);
  EXPECT_EQ(dist.best_checksum, ref.best_checksum);
  ASSERT_EQ(dist.observations.size(), ref.observations.size());
  for (std::size_t i = 0; i < ref.observations.size(); ++i) {
    EXPECT_EQ(std::memcmp(&dist.observations[i].loss,
                          &ref.observations[i].loss, 8), 0)
        << i;
  }
}

TEST_F(ProtocolTest, WorkerDeathMidTrialReassigned) {
  // In-process reference.
  OrchestrationResult ref;
  {
    Design d = generate_synthetic(tiny_spec());
    TrialOrchestrator orch(d, puffer_param_specs(), tiny_experiment_config(),
                           tiny_orch_config());
    ref = orch.run();
  }

  const std::string address = temp_socket("puffer_proto_death.sock");

  // A faulty worker: handshakes, accepts ONE assignment, then vanishes
  // without reporting -- the mid-trial death the coordinator must absorb.
  std::thread faulty([&address] {
    Design d = generate_synthetic(tiny_spec());
    const int fd = connect_socket_retry(address, 60.0);
    HelloMsg hello;
    hello.design_key = design_structure_key(d);
    hello.worker_name = "faulty";
    send_msg(fd, MsgType::kHello, encode_hello(hello));
    WireFrame f;
    ASSERT_TRUE(read_frame_fd(fd, &f));  // HelloAck
    const HelloAckMsg ack = decode_hello_ack(f.body);
    if (ack.snapshot_follows) ASSERT_TRUE(read_frame_fd(fd, &f));
    ASSERT_TRUE(read_frame_fd(fd, &f));  // first TrialAssign
    EXPECT_EQ(f.type, static_cast<std::uint32_t>(MsgType::kTrialAssign));
    ::close(fd);  // die mid-trial
  });
  // A healthy worker that finishes the run.
  std::thread healthy([&address] {
    Design d = generate_synthetic(tiny_spec());
    WorkerConfig cfg;
    cfg.connect = address;
    cfg.name = "healthy";
    cfg.connect_timeout_s = 60.0;
    EXPECT_EQ(run_worker(d, tiny_experiment_config(), cfg), 0);
  });

  Design d = generate_synthetic(tiny_spec());
  TrialOrchestrator orchestrator(d, puffer_param_specs(),
                                 tiny_experiment_config(), tiny_orch_config());
  CoordinatorConfig coord;
  coord.listen = address;
  coord.min_workers = 2;
  coord.attach_timeout_s = 60.0;
  CoordinatorExecutor executor(coord);
  const OrchestrationResult dist = orchestrator.run(executor);
  EXPECT_GE(executor.trials_reassigned(), 1);
  executor.shutdown_workers();
  faulty.join();
  healthy.join();

  // Identical exploration despite the death.
  EXPECT_EQ(dist.best_trial, ref.best_trial);
  EXPECT_EQ(std::memcmp(&dist.best_loss, &ref.best_loss, 8), 0);
  EXPECT_EQ(dist.best_checksum, ref.best_checksum);
}

}  // namespace
}  // namespace puffer
