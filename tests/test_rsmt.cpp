// Tests for the RSMT builder (FLUTE substitute): optimality on small
// instances and structural/quality properties on random sweeps.
#include <gtest/gtest.h>

#include <functional>
#include <numeric>

#include "common/rng.h"
#include "rsmt/rsmt.h"

namespace puffer {
namespace {

// Union-find connectivity check: every pin-bearing point reachable.
bool tree_connects_all_pins(const RsmtTree& tree) {
  std::vector<int> parent(tree.points.size());
  std::iota(parent.begin(), parent.end(), 0);
  std::function<int(int)> find = [&](int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  };
  for (const RsmtSegment& s : tree.segments) {
    parent[static_cast<std::size_t>(find(s.a))] = find(s.b);
  }
  int root = -1;
  for (std::size_t p = 0; p < tree.points.size(); ++p) {
    if (tree.points[p].is_steiner()) continue;
    const int r = find(static_cast<int>(p));
    if (root < 0) root = r;
    if (r != root) return false;
  }
  return true;
}

// Prim MST length over the pin locations (upper bound for RSMT length).
double mst_length(const std::vector<Point>& pts) {
  const std::size_t n = pts.size();
  if (n < 2) return 0.0;
  std::vector<bool> used(n, false);
  std::vector<double> best(n, 1e300);
  used[0] = true;
  for (std::size_t i = 1; i < n; ++i) best[i] = manhattan(pts[0], pts[i]);
  double total = 0.0;
  for (std::size_t iter = 1; iter < n; ++iter) {
    std::size_t u = 0;
    double bu = 1e300;
    for (std::size_t i = 0; i < n; ++i) {
      if (!used[i] && best[i] < bu) {
        bu = best[i];
        u = i;
      }
    }
    used[u] = true;
    total += bu;
    for (std::size_t i = 0; i < n; ++i) {
      if (!used[i]) best[i] = std::min(best[i], manhattan(pts[u], pts[i]));
    }
  }
  return total;
}

TEST(Rsmt, EmptyAndSinglePin) {
  EXPECT_TRUE(build_rsmt({}).points.empty());
  const RsmtTree t = build_rsmt({{3, 4}});
  EXPECT_EQ(t.points.size(), 1u);
  EXPECT_TRUE(t.segments.empty());
  EXPECT_DOUBLE_EQ(t.length(), 0.0);
}

TEST(Rsmt, TwoPinsIsManhattan) {
  const RsmtTree t = build_rsmt({{0, 0}, {3, 4}});
  EXPECT_EQ(t.segments.size(), 1u);
  EXPECT_DOUBLE_EQ(t.length(), 7.0);
}

TEST(Rsmt, ThreePinsUsesMedianSteiner) {
  // Pins at the corners of an L; the median point (5, 5) saves length.
  const RsmtTree t = build_rsmt({{0, 5}, {5, 0}, {10, 10}});
  // Optimal: |median-p| sums: (5,5): 5 + 10 + 10 = 25? distances:
  // (0,5)->(5,5)=5, (5,0)->(5,5)=5, (10,10)->(5,5)=10 -> total 20.
  EXPECT_DOUBLE_EQ(t.length(), 20.0);
  // One Steiner point added.
  int steiner = 0;
  for (const RsmtPoint& p : t.points) steiner += p.is_steiner() ? 1 : 0;
  EXPECT_EQ(steiner, 1);
}

TEST(Rsmt, ThreeCollinearPinsNeedNoSteiner) {
  const RsmtTree t = build_rsmt({{0, 0}, {5, 0}, {9, 0}});
  EXPECT_DOUBLE_EQ(t.length(), 9.0);
  for (const RsmtPoint& p : t.points) EXPECT_FALSE(p.is_steiner());
}

TEST(Rsmt, DuplicatePinsCollapse) {
  const RsmtTree t = build_rsmt({{1, 1}, {1, 1}, {4, 5}, {1, 1}});
  EXPECT_EQ(t.points.size(), 2u);
  EXPECT_DOUBLE_EQ(t.length(), 7.0);
  // All duplicate pins map to the same tree point.
  EXPECT_EQ(t.pin_point[0], t.pin_point[1]);
  EXPECT_EQ(t.pin_point[1], t.pin_point[3]);
}

TEST(Rsmt, PinPointMappingIsComplete) {
  const std::vector<Point> pins{{0, 0}, {9, 2}, {4, 7}, {6, 6}};
  const RsmtTree t = build_rsmt(pins);
  ASSERT_EQ(t.pin_point.size(), pins.size());
  for (std::size_t i = 0; i < pins.size(); ++i) {
    const int pt = t.pin_point[i];
    ASSERT_GE(pt, 0);
    EXPECT_EQ(t.points[static_cast<std::size_t>(pt)].pos, pins[i]);
  }
}

TEST(Rsmt, CrossTopologyBeatsMst) {
  // A plus-sign configuration where a Steiner point at the center wins.
  const std::vector<Point> pins{{5, 0}, {5, 10}, {0, 5}, {10, 5}};
  const RsmtTree t = build_rsmt(pins);
  EXPECT_LE(t.length(), mst_length(pins) - 1.0);
  EXPECT_DOUBLE_EQ(t.length(), 20.0);  // optimal: star from (5,5)
}

TEST(Rsmt, IncidenceListsMatchSegments) {
  const RsmtTree t = build_rsmt({{0, 0}, {9, 2}, {4, 7}, {6, 6}, {2, 9}});
  const auto inc = t.build_incidence();
  std::size_t total = 0;
  for (const auto& lst : inc) total += lst.size();
  EXPECT_EQ(total, 2 * t.segments.size());
}

class RsmtRandom : public ::testing::TestWithParam<int> {};

TEST_P(RsmtRandom, StructuralAndQualityProperties) {
  const int degree = GetParam();
  Rng rng(1000 + static_cast<std::uint64_t>(degree));
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<Point> pins;
    for (int i = 0; i < degree; ++i) {
      pins.push_back({std::floor(rng.uniform(0, 50)), std::floor(rng.uniform(0, 50))});
    }
    const RsmtTree t = build_rsmt(pins);
    // Connectivity of all pins.
    EXPECT_TRUE(tree_connects_all_pins(t));
    // Length bounded below by half-perimeter and above by MST length.
    const double len = t.length();
    EXPECT_GE(len + 1e-9, pins_hpwl(pins) * 0.5);
    EXPECT_LE(len, mst_length(pins) + 1e-9);
    // Spanning-structure edge count: a tree over P points has P-1 edges
    // (zero-length duplicates allowed, never more).
    EXPECT_EQ(t.segments.size(), t.points.size() - 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Degrees, RsmtRandom,
                         ::testing::Values(2, 3, 4, 5, 6, 8, 12, 20, 32));

TEST(Rsmt, HpwlHelper) {
  EXPECT_DOUBLE_EQ(pins_hpwl({{0, 0}, {3, 4}}), 7.0);
  EXPECT_DOUBLE_EQ(pins_hpwl({{1, 1}}), 0.0);
  EXPECT_DOUBLE_EQ(pins_hpwl({}), 0.0);
}

}  // namespace
}  // namespace puffer
