// Tests for the Gcell grid, 2D maps, blockage-aware capacity (Eq. 8) and
// the routing-maps congestion/overflow metrics (Eqs. 7, 10, 11).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "grid/capacity.h"
#include "grid/gcell.h"
#include "grid/map2d.h"
#include "grid/routing_maps.h"

namespace puffer {
namespace {

TEST(Map2D, BasicAccess) {
  Map2D<double> m(4, 3, 1.5);
  EXPECT_EQ(m.nx(), 4);
  EXPECT_EQ(m.ny(), 3);
  EXPECT_EQ(m.size(), 12u);
  EXPECT_DOUBLE_EQ(m.sum(), 18.0);
  m.at(2, 1) = 7.0;
  EXPECT_DOUBLE_EQ(m.at(2, 1), 7.0);
  EXPECT_DOUBLE_EQ(m.max_value(), 7.0);
  m.fill(0.0);
  EXPECT_DOUBLE_EQ(m.sum(), 0.0);
}

TEST(GcellGrid, IndexingAndRects) {
  const GcellGrid g({0, 0, 100, 50}, 10, 5);
  EXPECT_DOUBLE_EQ(g.gcell_w(), 10.0);
  EXPECT_DOUBLE_EQ(g.gcell_h(), 10.0);
  EXPECT_EQ(g.index_of(0, 0).gx, 0);
  EXPECT_EQ(g.index_of(15, 25).gx, 1);
  EXPECT_EQ(g.index_of(15, 25).gy, 2);
  // Clamping outside the area.
  EXPECT_EQ(g.index_of(-5, 500).gx, 0);
  EXPECT_EQ(g.index_of(-5, 500).gy, 4);
  const Rect r = g.gcell_rect(1, 2);
  EXPECT_DOUBLE_EQ(r.xlo, 10.0);
  EXPECT_DOUBLE_EQ(r.ylo, 20.0);
  EXPECT_EQ(g.gcell_center(0, 0), (Point{5, 5}));
}

TEST(GcellGrid, RangeOfInclusive) {
  const GcellGrid g({0, 0, 100, 100}, 10, 10);
  GcellIndex lo, hi;
  g.range_of({15, 15, 35, 25}, lo, hi);
  EXPECT_EQ(lo.gx, 1);
  EXPECT_EQ(hi.gx, 3);
  EXPECT_EQ(lo.gy, 1);
  EXPECT_EQ(hi.gy, 2);
  // A rect ending exactly on a boundary does not spill over.
  g.range_of({0, 0, 10, 10}, lo, hi);
  EXPECT_EQ(hi.gx, 0);
  EXPECT_EQ(hi.gy, 0);
}

TEST(GcellGrid, FromRowPitch) {
  const GcellGrid g = GcellGrid::from_row_pitch({0, 0, 240, 240}, 8.0, 3.0);
  EXPECT_EQ(g.nx(), 10);
  EXPECT_EQ(g.ny(), 10);
}

TEST(GcellGrid, RejectsBadConstruction) {
  EXPECT_THROW(GcellGrid({0, 0, 10, 10}, 0, 5), std::invalid_argument);
  EXPECT_THROW(GcellGrid(Rect{}, 2, 2), std::invalid_argument);
}

Design capacity_design() {
  Design d;
  d.die = {0, 0, 240, 240};
  d.tech = Technology::make_default(1.0, 8.0, 8);
  for (int r = 0; r < 30; ++r) d.rows.push_back({r * 8.0, 0, 240, 1.0, 8.0});
  return d;
}

TEST(Capacity, BaseCapacityMatchesTrackDensity) {
  const Design d = capacity_design();
  const GcellGrid g(d.die, 10, 10);
  const CapacityMaps maps = build_capacity_maps(d, g);
  const double expect_h = 24.0 * d.tech.track_density(RouteDir::kHorizontal);
  const double expect_v = 24.0 * d.tech.track_density(RouteDir::kVertical);
  for (int y = 0; y < 10; ++y) {
    for (int x = 0; x < 10; ++x) {
      EXPECT_NEAR(maps.cap_h.at(x, y), expect_h, 1e-9);
      EXPECT_NEAR(maps.cap_v.at(x, y), expect_v, 1e-9);
    }
  }
}

TEST(Capacity, MacroReducesCoveredGcells) {
  Design d = capacity_design();
  Cell m;
  m.name = "m";
  m.kind = CellKind::kMacro;
  m.x = 24;
  m.y = 24;
  m.width = 48;  // covers Gcells (1,1)-(2,2) fully
  m.height = 48;
  d.add_cell(m);
  const GcellGrid g(d.die, 10, 10);
  const CapacityMaps maps = build_capacity_maps(d, g);
  const double base_h = 24.0 * d.tech.track_density(RouteDir::kHorizontal);
  const double over_h = 24.0 * d.tech.track_density_over_macros(RouteDir::kHorizontal);
  EXPECT_NEAR(maps.cap_h.at(1, 1), over_h, 1e-9);
  EXPECT_NEAR(maps.cap_h.at(2, 2), over_h, 1e-9);
  EXPECT_NEAR(maps.cap_h.at(5, 5), base_h, 1e-9);
  EXPECT_LT(over_h, base_h);
}

TEST(Capacity, PartialMacroCoverageScales) {
  Design d = capacity_design();
  Cell m;
  m.kind = CellKind::kMacro;
  m.x = 0;
  m.y = 0;
  m.width = 12;  // half of Gcell (0,0) in x
  m.height = 24;
  d.add_cell(m);
  const GcellGrid g(d.die, 10, 10);
  const CapacityMaps maps = build_capacity_maps(d, g);
  const double base_h = 24.0 * d.tech.track_density(RouteDir::kHorizontal);
  EXPECT_LT(maps.cap_h.at(0, 0), base_h);
  EXPECT_GT(maps.cap_h.at(0, 0),
            24.0 * d.tech.track_density_over_macros(RouteDir::kHorizontal));
}

TEST(Capacity, ExplicitBlockageOnOneLayer) {
  const Design d = capacity_design();
  const GcellGrid g(d.die, 10, 10);
  RoutingBlockage blk;
  blk.rect = {0, 0, 240, 24};  // bottom row of Gcells
  blk.layer = 0;               // M1, horizontal
  const CapacityMaps with = build_capacity_maps(d, g, {blk});
  const CapacityMaps without = build_capacity_maps(d, g);
  EXPECT_LT(with.cap_h.at(5, 0), without.cap_h.at(5, 0));
  EXPECT_NEAR(with.cap_v.at(5, 0), without.cap_v.at(5, 0), 1e-9);
  EXPECT_NEAR(with.cap_h.at(5, 5), without.cap_h.at(5, 5), 1e-9);
}

TEST(Capacity, NeverNegative) {
  Design d = capacity_design();
  // Bury the die in macros twice over.
  for (int k = 0; k < 2; ++k) {
    Cell m;
    m.kind = CellKind::kMacro;
    m.x = 0;
    m.y = 0;
    m.width = 240;
    m.height = 240;
    d.add_cell(m);
  }
  const GcellGrid g(d.die, 10, 10);
  const CapacityMaps maps = build_capacity_maps(d, g);
  for (double c : maps.cap_h.raw()) EXPECT_GE(c, 0.0);
  for (double c : maps.cap_v.raw()) EXPECT_GE(c, 0.0);
}

RoutingMaps tiny_maps() {
  const GcellGrid g({0, 0, 20, 20}, 2, 2);
  CapacityMaps caps;
  caps.cap_h = Map2D<double>(2, 2, 10.0);
  caps.cap_v = Map2D<double>(2, 2, 10.0);
  return RoutingMaps(g, std::move(caps));
}

TEST(RoutingMaps, SignedCongestionEq11) {
  RoutingMaps maps = tiny_maps();
  maps.dmd_h.at(0, 0) = 15.0;  // cg_h = 0.5
  maps.dmd_v.at(0, 0) = 5.0;   // cg_v = -0.5
  EXPECT_DOUBLE_EQ(maps.cg_h(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(maps.cg_v(0, 0), -0.5);
}

TEST(RoutingMaps, CombinedCongestionEq10) {
  RoutingMaps maps = tiny_maps();
  // Opposite signs -> max.
  maps.dmd_h.at(0, 0) = 15.0;
  maps.dmd_v.at(0, 0) = 5.0;
  EXPECT_DOUBLE_EQ(maps.cg(0, 0), 0.5);
  // Same sign (both over) -> sum.
  maps.dmd_h.at(1, 0) = 12.0;
  maps.dmd_v.at(1, 0) = 14.0;
  EXPECT_DOUBLE_EQ(maps.cg(1, 0), 0.2 + 0.4);
  // Both under -> sum (negative).
  maps.dmd_h.at(0, 1) = 8.0;
  maps.dmd_v.at(0, 1) = 6.0;
  EXPECT_DOUBLE_EQ(maps.cg(0, 1), -0.2 + -0.4);
}

TEST(RoutingMaps, SmallCapacityUsesFloorOfOne) {
  const GcellGrid g({0, 0, 20, 20}, 2, 2);
  CapacityMaps caps;
  caps.cap_h = Map2D<double>(2, 2, 0.25);
  caps.cap_v = Map2D<double>(2, 2, 0.25);
  RoutingMaps maps(g, std::move(caps));
  maps.dmd_h.at(0, 0) = 1.25;
  // Divisor is max(cap, 1) = 1.
  EXPECT_DOUBLE_EQ(maps.cg_h(0, 0), 1.0);
}

TEST(Overflow, StatsComputedPerDirection) {
  RoutingMaps maps = tiny_maps();
  maps.dmd_h.at(0, 0) = 14.0;  // +4 over
  maps.dmd_v.at(1, 1) = 12.0;  // +2 over
  const OverflowStats stats = compute_overflow(maps);
  EXPECT_NEAR(stats.hof_pct, 100.0 * 4.0 / 40.0, 1e-9);
  EXPECT_NEAR(stats.vof_pct, 100.0 * 2.0 / 40.0, 1e-9);
  EXPECT_DOUBLE_EQ(stats.total_overflow, 6.0);
  EXPECT_EQ(stats.overflowed_gcells, 2);
  EXPECT_NEAR(stats.total_pct(), stats.hof_pct + stats.vof_pct, 1e-12);
}

TEST(Overflow, ZeroWhenUnderCapacity) {
  RoutingMaps maps = tiny_maps();
  maps.dmd_h.fill(9.9);
  const OverflowStats stats = compute_overflow(maps);
  EXPECT_DOUBLE_EQ(stats.hof_pct, 0.0);
  EXPECT_EQ(stats.overflowed_gcells, 0);
}

TEST(MapCorrelation, PerfectAndAnti) {
  Map2D<double> a(2, 2);
  a.at(0, 0) = 1;
  a.at(1, 0) = 2;
  a.at(0, 1) = 3;
  a.at(1, 1) = 4;
  Map2D<double> b = a;
  EXPECT_NEAR(map_correlation(a, b), 1.0, 1e-12);
  for (double& v : b.raw()) v = -v;
  EXPECT_NEAR(map_correlation(a, b), -1.0, 1e-12);
}

TEST(MapCorrelation, ConstantMapGivesZero) {
  Map2D<double> a(2, 2, 1.0);
  Map2D<double> b(2, 2);
  b.at(0, 0) = 5;
  EXPECT_DOUBLE_EQ(map_correlation(a, b), 0.0);
}

TEST(MapCorrelation, SizeMismatchThrows) {
  Map2D<double> a(2, 2), b(3, 3);
  EXPECT_THROW(map_correlation(a, b), std::invalid_argument);
}

TEST(MapExport, AsciiShapeAndMarks) {
  Map2D<double> m(3, 2, -1.0);
  m.at(2, 0) = 1.5;  // heavy overflow, bottom-right
  const std::string art = map_to_ascii(m);
  // Two lines of three chars; top row printed first.
  EXPECT_EQ(art, "   \n  #\n");
}

TEST(MapExport, PpmFileWritten) {
  Map2D<double> m(4, 4, 0.0);
  m.at(1, 1) = 2.0;
  const std::string path =
      (std::filesystem::temp_directory_path() / "puffer_map_test.ppm").string();
  write_map_ppm(m, path);
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::string magic;
  in >> magic;
  EXPECT_EQ(magic, "P6");
  int w, h, maxv;
  in >> w >> h >> maxv;
  EXPECT_EQ(w, 4);
  EXPECT_EQ(h, 4);
  EXPECT_EQ(maxv, 255);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace puffer
