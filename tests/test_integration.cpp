// Integration tests: the full PUFFER flow, both baselines, the experiment
// harness and the strategy-parameter bridge, all on small synthetic
// designs so the whole suite stays fast.
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/strategy_params.h"

namespace puffer {
namespace {

SyntheticSpec tiny_spec(std::uint64_t seed = 71) {
  SyntheticSpec spec;
  spec.name = "itest";
  spec.seed = seed;
  spec.num_cells = 800;
  spec.num_nets = 1200;
  spec.num_macros = 6;
  spec.target_utilization = 0.78;
  spec.cluster_net_ratio = 0.78;
  return spec;
}

ExperimentConfig fast_config() {
  ExperimentConfig cfg;
  cfg.puffer.gp.max_iters = 500;
  cfg.puffer.padding.xi = 4;
  cfg.replace_rc.gp.max_iters = 500;
  cfg.replace_rc.max_rounds = 3;
  cfg.commercial.gp.max_iters = 500;
  cfg.commercial.padding.xi = 4;
  cfg.eval_router.rr_rounds = 3;
  return cfg;
}

TEST(Integration, PufferFlowProducesLegalRoutablePlacement) {
  Design d = generate_synthetic(tiny_spec());
  PufferConfig cfg = fast_config().puffer;
  PufferFlow flow(d, cfg);
  const FlowMetrics m = flow.run();

  EXPECT_TRUE(m.legality.legal) << m.legality.summary();
  EXPECT_GT(m.padding_rounds, 0);
  EXPECT_GT(m.hpwl_gp, 0.0);
  EXPECT_GT(m.hpwl_legal, 0.0);
  // Legalization from a converged GP does not explode wirelength.
  EXPECT_LT(m.hpwl_legal, m.hpwl_gp * 1.3);
  EXPECT_GT(m.stages.get("global_place"), 0.0);
  EXPECT_GT(m.stages.get("legalize"), 0.0);

  const RouteResult route = evaluate_routability(d, fast_config().eval_router);
  EXPECT_GT(route.segments, 0);
  EXPECT_GT(route.wirelength, 0.0);
  // Routable at sane overflow levels for this easy instance.
  EXPECT_LT(route.overflow.total_pct(), 25.0);
}

TEST(Integration, PaddingImprovesRoutabilityOverNoPadding) {
  // Same design, PUFFER with and without the routability optimizer.
  Design with = generate_synthetic(tiny_spec(5));
  Design without = generate_synthetic(tiny_spec(5));

  PufferConfig on = fast_config().puffer;
  on.padding.xi = 6;
  PufferConfig off = on;
  off.padding.xi = 0;  // optimizer never fires

  PufferFlow f_on(with, on);
  PufferFlow f_off(without, off);
  const FlowMetrics m_on = f_on.run();
  const FlowMetrics m_off = f_off.run();
  EXPECT_GT(m_on.padding_rounds, 0);
  EXPECT_EQ(m_off.padding_rounds, 0);

  const RouterConfig eval = fast_config().eval_router;
  const OverflowStats of_on = evaluate_routability(with, eval).overflow;
  const OverflowStats of_off = evaluate_routability(without, eval).overflow;
  // Padding should not make things worse beyond noise; typically better.
  EXPECT_LE(of_on.total_pct(), of_off.total_pct() * 1.35 + 0.4);
}

TEST(Integration, ReplaceRcBaselineRuns) {
  Design d = generate_synthetic(tiny_spec());
  const FlowMetrics m = run_replace_rc(d, fast_config().replace_rc);
  EXPECT_TRUE(m.legality.legal) << m.legality.summary();
  EXPECT_GT(m.hpwl_legal, 0.0);
}

TEST(Integration, CommercialProxyRuns) {
  Design d = generate_synthetic(tiny_spec());
  const FlowMetrics m = run_commercial_proxy(d, fast_config().commercial);
  EXPECT_TRUE(m.legality.legal) << m.legality.summary();
  EXPECT_GT(m.padding_rounds, 0);
}

TEST(Integration, ExperimentHarnessReportsAllMetrics) {
  const ExperimentResult r =
      run_benchmark(tiny_spec(), PlacerKind::kPuffer, fast_config());
  EXPECT_EQ(r.benchmark, "itest");
  EXPECT_EQ(r.placer, PlacerKind::kPuffer);
  EXPECT_GE(r.hof_pct(), 0.0);
  EXPECT_GE(r.vof_pct(), 0.0);
  EXPECT_GT(r.routed_wl(), 0.0);
  EXPECT_GT(r.runtime_s(), 0.0);
}

TEST(Integration, PlacerNames) {
  EXPECT_STREQ(placer_name(PlacerKind::kPuffer), "PUFFER");
  EXPECT_STREQ(placer_name(PlacerKind::kReplaceRc), "RePlAce_RC");
  EXPECT_STREQ(placer_name(PlacerKind::kCommercialProxy), "Commercial_Proxy");
}

TEST(StrategyParams, SpecsAndGroupsAreConsistent) {
  const auto specs = puffer_param_specs();
  const auto groups = puffer_param_groups();
  EXPECT_EQ(specs.size(), 17u);
  std::vector<bool> seen(specs.size(), false);
  for (const auto& g : groups) {
    for (int idx : g) {
      ASSERT_GE(idx, 0);
      ASSERT_LT(idx, static_cast<int>(specs.size()));
      EXPECT_FALSE(seen[static_cast<std::size_t>(idx)]) << "duplicate " << idx;
      seen[static_cast<std::size_t>(idx)] = true;
    }
  }
  for (bool s : seen) EXPECT_TRUE(s);
  for (const auto& spec : specs) {
    EXPECT_LT(spec.lo, spec.hi) << spec.name;
  }
}

TEST(StrategyParams, AssignmentMapsOntoConfig) {
  const auto specs = puffer_param_specs();
  Assignment a = mid_assignment(specs);
  a[0] = 2.5;   // alpha_local_cg
  a[6] = 9.0;   // mu
  a[10] = 11.0; // xi
  a[14] = 1.0;  // detour expansion on
  const PufferConfig cfg = apply_assignment(PufferConfig{}, a);
  EXPECT_DOUBLE_EQ(cfg.padding.alpha[0], 2.5);
  EXPECT_DOUBLE_EQ(cfg.padding.mu, 9.0);
  EXPECT_EQ(cfg.padding.xi, 11);
  EXPECT_TRUE(cfg.congestion.enable_detour_expansion);
  a[14] = 0.0;
  EXPECT_FALSE(apply_assignment(PufferConfig{}, a).congestion.enable_detour_expansion);
  // pu_high is kept above pu_low.
  a[8] = 0.05;
  a[9] = 0.01;
  EXPECT_GT(apply_assignment(PufferConfig{}, a).padding.pu_high,
            apply_assignment(PufferConfig{}, a).padding.pu_low);
}

TEST(StrategyParams, EvaluateStrategyReturnsFiniteLoss) {
  SyntheticSpec spec = tiny_spec();
  spec.num_cells = 400;
  spec.num_nets = 600;
  ExperimentConfig base = fast_config();
  base.puffer.gp.max_iters = 250;
  const Assignment mid = mid_assignment(puffer_param_specs());
  const double loss = evaluate_strategy(spec, mid, base);
  EXPECT_GE(loss, 0.0);
  EXPECT_LT(loss, 500.0);
}

TEST(Integration, DeterministicEndToEnd) {
  const ExperimentResult a =
      run_benchmark(tiny_spec(9), PlacerKind::kPuffer, fast_config());
  const ExperimentResult b =
      run_benchmark(tiny_spec(9), PlacerKind::kPuffer, fast_config());
  EXPECT_DOUBLE_EQ(a.hof_pct(), b.hof_pct());
  EXPECT_DOUBLE_EQ(a.vof_pct(), b.vof_pct());
  EXPECT_DOUBLE_EQ(a.routed_wl(), b.routed_wl());
}

}  // namespace
}  // namespace puffer
