// SoA global-placement core tests: mirror<->Design sync at every commit
// point (engine commit, legalization/DP commits, snapshot restores),
// bit-identity of the SoA WA gradient and bucketed rasterization against
// the retired scalar kernels across PUFFER_THREADS 1/2/8 and PUFFER_SIMD
// on/off, flow-level placement checksums across the same matrix, and
// exact equality of the preplanned DctPlan2D transforms with the dct.h
// free functions.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "common/simd.h"
#include "core/flow.h"
#include "fft/dct.h"
#include "fft/dct_plan.h"
#include "gp/engine.h"
#include "gp/soa.h"
#include "gp/wirelength.h"
#include "io/checkpoint.h"
#include "io/synthetic.h"

namespace puffer {
namespace {

// Restores the global worker count and the SIMD switch after each test.
class GpSoaTest : public ::testing::Test {
 protected:
  ~GpSoaTest() override {
    par::set_num_threads(0);
    simd::set_enabled(true);
  }
};

SyntheticSpec small_spec(std::uint64_t seed = 17) {
  SyntheticSpec spec;
  spec.name = "soa";
  spec.seed = seed;
  spec.num_cells = 300;
  spec.num_nets = 450;
  spec.num_macros = 2;
  spec.target_utilization = 0.78;
  spec.v_capacity_factor = 0.55;
  return spec;
}

PufferConfig small_flow_config() {
  PufferConfig cfg;
  cfg.gp.max_iters = 250;
  cfg.padding.xi = 3;
  cfg.num_threads = 0;  // tests pin the global count themselves
  return cfg;
}

std::uint64_t placement_checksum(const Design& d) {
  BinaryWriter w;
  for (const Cell& c : d.cells) {
    w.put_f64(c.x);
    w.put_f64(c.y);
  }
  return fnv1a_bytes(w.buffer().data(), w.buffer().size());
}

TEST_F(GpSoaTest, BuildMirrorsDesignExactly) {
  Design d = generate_synthetic(small_spec());
  GpSoA soa;
  soa.build(d);

  ASSERT_GT(soa.num_movable(), 0u);
  ASSERT_GT(soa.num_nets(), 0u);
  EXPECT_TRUE(soa.matches(d));

  // Every movable ordinal round-trips through ordinal_of_cell, and the
  // mirrored center is the exact expression x + width*0.5.
  for (std::size_t i = 0; i < soa.num_movable(); ++i) {
    const CellId id = soa.cell_ids[i];
    const Cell& c = d.cells[static_cast<std::size_t>(id)];
    EXPECT_TRUE(c.movable());
    EXPECT_EQ(soa.ordinal_of_cell[static_cast<std::size_t>(id)],
              static_cast<std::int32_t>(i));
    EXPECT_EQ(soa.cx[i], c.x + c.width * 0.5);
    EXPECT_EQ(soa.cy[i], c.y + c.height * 0.5);
    EXPECT_EQ(soa.cw[i], c.width);
  }
  // CSR sanity: slot counts agree between the net-major and the
  // transposed cell-major views (fixed-pin slots appear only net-major).
  EXPECT_EQ(soa.net_start.back(),
            static_cast<std::int64_t>(soa.num_slots()));
  std::int64_t movable_slots = 0;
  for (std::size_t s = 0; s < soa.num_slots(); ++s) {
    if (soa.pin_ord[s] >= 0) ++movable_slots;
  }
  EXPECT_EQ(soa.cell_start.back(), movable_slots);
}

TEST_F(GpSoaTest, PullPushSyncAfterExternalCommits) {
  Design d = generate_synthetic(small_spec());
  GpSoA soa;
  soa.build(d);
  EXPECT_TRUE(soa.matches(d));

  // A full flow commits GP results, discretized padding, legalization,
  // and detailed placement into the Design behind the mirror's back.
  PufferConfig cfg = small_flow_config();
  cfg.run_dp = true;
  PufferFlow flow(d, cfg);
  flow.run();
  EXPECT_FALSE(soa.matches(d));  // mirror is stale at this commit point

  soa.pull_positions(d);
  EXPECT_TRUE(soa.matches(d));

  // push_positions writes centers back as lower-left corners, bitwise.
  const std::uint64_t before = placement_checksum(d);
  soa.cx[0] += 3.5;
  soa.cy[0] -= 1.25;
  soa.push_positions(d);
  EXPECT_TRUE(soa.matches(d));
  EXPECT_NE(placement_checksum(d), before);
  const Cell& moved = d.cells[static_cast<std::size_t>(soa.cell_ids[0])];
  EXPECT_EQ(moved.x, soa.cx[0] - moved.width * 0.5);
  EXPECT_EQ(moved.y, soa.cy[0] - moved.height * 0.5);
}

TEST_F(GpSoaTest, EngineCommitAndSnapshotRestoreKeepMirrorInSync) {
  // Engine commit: sync_to_design() must leave the engine's own mirror
  // matching the Design.
  Design d = generate_synthetic(small_spec());
  GpConfig gp;
  gp.max_iters = 40;
  EPlaceEngine eng(d, gp);
  for (int i = 0; i < 10; ++i) eng.step();
  eng.sync_to_design();
  EXPECT_TRUE(eng.soa().matches(d));

  // Snapshot restore: run_from() on a fresh Design is an external commit
  // like any other -- a mirror built before it goes stale and re-syncs.
  Design d2 = generate_synthetic(small_spec());
  PufferFlow flow(d2, small_flow_config());
  FlowSnapshot snap;
  flow.run_prefix(0.45, RngStream(7), &snap);
  GpSoA mirror;
  mirror.build(d2);
  EXPECT_TRUE(mirror.matches(d2));
  flow.run_from(snap);
  EXPECT_FALSE(mirror.matches(d2));
  mirror.pull_positions(d2);
  EXPECT_TRUE(mirror.matches(d2));
  EXPECT_EQ(mirror.position_checksum(), [&] {
    GpSoA fresh;
    fresh.build(d2);
    return fresh.position_checksum();
  }());
}

TEST_F(GpSoaTest, GradientBitIdenticalToLegacyAcrossThreadsAndSimd) {
  Design d = generate_synthetic(small_spec());
  WaWirelength wl(d);
  std::vector<double> xc, yc;
  for (CellId c : wl.movable_cells()) {
    const Cell& cell = d.cells[static_cast<std::size_t>(c)];
    xc.push_back(cell.x + cell.width * 0.5);
    yc.push_back(cell.y + cell.height * 0.5);
  }

  // Reference bits: the retired scalar kernel, serial.
  par::set_num_threads(1);
  wl.use_legacy_kernels(true);
  std::vector<double> rgx, rgy;
  const double ref_total = wl.evaluate(xc, yc, 4.0, rgx, rgy);
  const double ref_hpwl = wl.hpwl(xc, yc);

  for (const int threads : {1, 2, 8}) {
    par::set_num_threads(threads);
    for (const bool legacy : {true, false}) {
      wl.use_legacy_kernels(legacy);
      for (const bool simd_on : {true, false}) {
        simd::set_enabled(simd_on);
        std::vector<double> gx, gy;
        EXPECT_EQ(wl.evaluate(xc, yc, 4.0, gx, gy), ref_total)
            << "threads=" << threads << " legacy=" << legacy
            << " simd=" << simd_on;
        EXPECT_EQ(gx, rgx) << "threads=" << threads << " legacy=" << legacy
                           << " simd=" << simd_on;
        EXPECT_EQ(gy, rgy) << "threads=" << threads << " legacy=" << legacy
                           << " simd=" << simd_on;
        EXPECT_EQ(wl.hpwl(xc, yc), ref_hpwl) << "threads=" << threads;
      }
    }
  }
}

TEST_F(GpSoaTest, RasterizeBitIdenticalToLegacyAcrossThreads) {
  GpConfig legacy_cfg;
  legacy_cfg.legacy_kernels = true;
  Design d1 = generate_synthetic(small_spec());
  EPlaceEngine legacy_eng(d1, legacy_cfg);
  Design d2 = generate_synthetic(small_spec());
  EPlaceEngine soa_eng(d2, GpConfig{});
  const std::vector<double> x = legacy_eng.solver_x();
  const std::vector<double> y = legacy_eng.solver_y();
  ASSERT_EQ(x, soa_eng.solver_x());  // same spec -> same elements

  par::set_num_threads(1);
  const std::vector<double> ref = legacy_eng.rasterize_probe(x, y).raw();
  for (const int threads : {1, 2, 8}) {
    par::set_num_threads(threads);
    EXPECT_EQ(legacy_eng.rasterize_probe(x, y).raw(), ref)
        << "legacy threads=" << threads;
    EXPECT_EQ(soa_eng.rasterize_probe(x, y).raw(), ref)
        << "soa threads=" << threads;
  }
}

TEST_F(GpSoaTest, FlowChecksumInvariantAcrossThreadsSimdAndKernelPath) {
  std::uint64_t ref = 0;
  bool have_ref = false;
  for (const int threads : {1, 2, 8}) {
    par::set_num_threads(threads);
    for (const bool simd_on : {true, false}) {
      simd::set_enabled(simd_on);
      Design d = generate_synthetic(small_spec());
      PufferFlow flow(d, small_flow_config());
      flow.run();
      const std::uint64_t sum = placement_checksum(d);
      if (!have_ref) {
        ref = sum;
        have_ref = true;
      }
      EXPECT_EQ(sum, ref) << "threads=" << threads << " simd=" << simd_on;
    }
  }
  // The retired scalar path reproduces the same final placement.
  simd::set_enabled(true);
  par::set_num_threads(1);
  Design d = generate_synthetic(small_spec());
  PufferConfig cfg = small_flow_config();
  cfg.gp.legacy_kernels = true;
  PufferFlow flow(d, cfg);
  flow.run();
  EXPECT_EQ(placement_checksum(d), ref);
}

TEST_F(GpSoaTest, DctPlanMatchesFreeFunctionsBitwise) {
  const std::size_t nx = 32, ny = 16;  // non-square on purpose
  std::vector<double> data(nx * ny);
  Rng rng(123);
  for (double& v : data) v = rng.uniform(-2.0, 2.0);

  DctPlan2D plan(nx, ny);
  std::vector<double> out;
  for (const int threads : {1, 2, 8}) {
    par::set_num_threads(threads);
    plan.dct2_2d(data, out);
    EXPECT_EQ(out, dct2_2d(data, nx, ny)) << "threads=" << threads;
    plan.dct3_raw_2d(data, out);
    EXPECT_EQ(out, dct3_raw_2d(data, nx, ny)) << "threads=" << threads;
    plan.idxst_dct3_2d(data, out);
    EXPECT_EQ(out, idxst_dct3_2d(data, nx, ny)) << "threads=" << threads;
    plan.dct3_idxst_2d(data, out);
    EXPECT_EQ(out, dct3_idxst_2d(data, nx, ny)) << "threads=" << threads;
  }

  // Aliased in/out is allowed.
  std::vector<double> inplace = data;
  plan.dct2_2d(inplace, inplace);
  EXPECT_EQ(inplace, dct2_2d(data, nx, ny));

  EXPECT_THROW(DctPlan2D(24, 16), std::invalid_argument);
}

TEST_F(GpSoaTest, SimdHelpersMatchScalarBitwise) {
  // The vector helpers must agree with their scalar fallbacks bit-for-bit
  // on every lane, including the tail and signed zeros.
  Rng rng(99);
  const std::size_t n = 257;  // odd: exercises the scalar tail
  std::vector<double> a(n), b(n), lo(n), hi(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = rng.uniform(-10.0, 10.0);
    b[i] = rng.uniform(-10.0, 10.0);
    lo[i] = -5.0;
    hi[i] = 5.0;
  }
  a[0] = -0.0;
  b[0] = 0.0;

  std::vector<double> v1(n), v2(n);
  auto expect_lanes_equal = [&](const char* op) {
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(v1[i], v2[i]) << op << " lane " << i;
      ASSERT_EQ(std::signbit(v1[i]), std::signbit(v2[i]))
          << op << " lane " << i;
    }
  };

  simd::set_enabled(true);
  simd::sub_scaled(a.data(), b.data(), 0.37, v1.data(), n);
  simd::set_enabled(false);
  simd::sub_scaled(a.data(), b.data(), 0.37, v2.data(), n);
  expect_lanes_equal("sub_scaled");

  simd::set_enabled(true);
  simd::extrapolate(a.data(), b.data(), 1.62, v1.data(), n);
  simd::set_enabled(false);
  simd::extrapolate(a.data(), b.data(), 1.62, v2.data(), n);
  expect_lanes_equal("extrapolate");

  simd::set_enabled(true);
  simd::add(a.data(), b.data(), v1.data(), n);
  simd::set_enabled(false);
  simd::add(a.data(), b.data(), v2.data(), n);
  expect_lanes_equal("add");

  simd::set_enabled(true);
  v1 = a;
  simd::clamp_to(v1.data(), lo.data(), hi.data(), n);
  simd::set_enabled(false);
  v2 = a;
  simd::clamp_to(v2.data(), lo.data(), hi.data(), n);
  expect_lanes_equal("clamp_to");

  simd::set_enabled(true);
}

}  // namespace
}  // namespace puffer
