// Tests for the strategy-exploration machinery: parameter spaces, the TPE
// sampler, Algorithm 2 (parameter exploration with early stop and range
// update) and Algorithm 3 (grouped strategy exploration).
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "common/parallel.h"
#include "common/rng.h"
#include "explore/strategy_explorer.h"

namespace puffer {
namespace {

TEST(ParamSpec, MidAndLegalize) {
  const ParamSpec c{"c", ParamKind::kContinuous, 2.0, 6.0};
  EXPECT_DOUBLE_EQ(c.mid(), 4.0);
  EXPECT_DOUBLE_EQ(c.legalize(7.0), 6.0);
  EXPECT_DOUBLE_EQ(c.legalize(1.0), 2.0);

  const ParamSpec i{"i", ParamKind::kInteger, 1.0, 9.0};
  EXPECT_DOUBLE_EQ(i.mid(), 5.0);
  EXPECT_DOUBLE_EQ(i.legalize(3.7), 4.0);
  EXPECT_DOUBLE_EQ(i.legalize(99.0), 9.0);

  const ParamSpec cat{"cat", ParamKind::kCategorical, 0.0, 4.0};  // 4 cats
  EXPECT_DOUBLE_EQ(cat.mid(), 1.0);  // floor((4-1)/2)
  EXPECT_DOUBLE_EQ(cat.legalize(2.4), 2.0);
  EXPECT_DOUBLE_EQ(cat.legalize(9.0), 3.0);
  EXPECT_DOUBLE_EQ(cat.legalize(-1.0), 0.0);
}

TEST(ParamSpace, MidAssignment) {
  const std::vector<ParamSpec> specs{{"a", ParamKind::kContinuous, 0, 2},
                                     {"b", ParamKind::kInteger, 0, 10}};
  const Assignment mid = mid_assignment(specs);
  EXPECT_DOUBLE_EQ(mid[0], 1.0);
  EXPECT_DOUBLE_EQ(mid[1], 5.0);
}

TEST(ParamSpace, RangeUpdateShrinksAroundElite) {
  std::vector<ParamSpec> specs{{"x", ParamKind::kContinuous, 0.0, 10.0}};
  std::vector<Observation> obs;
  // Elite observations near x = 3, bad ones spread out.
  for (int i = 0; i < 8; ++i) {
    Observation o;
    o.x = {3.0 + 0.1 * i};
    o.loss = 0.1 * i;
    obs.push_back(o);
  }
  for (int i = 0; i < 24; ++i) {
    Observation o;
    o.x = {9.0};
    o.loss = 10.0 + i;
    obs.push_back(o);
  }
  const auto updated = update_param_ranges(specs, obs);
  EXPECT_GT(updated[0].lo, 1.0);
  EXPECT_LT(updated[0].hi, 6.0);
  EXPECT_LE(updated[0].lo, 3.0);
  EXPECT_GE(updated[0].hi, 3.5);
}

TEST(ParamSpace, RangeUpdateNoopForFewObservations) {
  std::vector<ParamSpec> specs{{"x", ParamKind::kContinuous, 0.0, 10.0}};
  std::vector<Observation> obs(2, Observation{{5.0}, 1.0});
  const auto updated = update_param_ranges(specs, obs);
  EXPECT_DOUBLE_EQ(updated[0].lo, 0.0);
  EXPECT_DOUBLE_EQ(updated[0].hi, 10.0);
}

TEST(ParamSpace, CategoricalRangeNeverShrinks) {
  std::vector<ParamSpec> specs{{"c", ParamKind::kCategorical, 0.0, 3.0}};
  std::vector<Observation> obs;
  for (int i = 0; i < 20; ++i) obs.push_back({{1.0}, static_cast<double>(i)});
  const auto updated = update_param_ranges(specs, obs);
  EXPECT_DOUBLE_EQ(updated[0].lo, 0.0);
  EXPECT_DOUBLE_EQ(updated[0].hi, 3.0);
}

TEST(Tpe, SuggestionsRespectBounds) {
  std::vector<ParamSpec> specs{{"x", ParamKind::kContinuous, -2.0, 3.0},
                               {"n", ParamKind::kInteger, 1.0, 4.0},
                               {"c", ParamKind::kCategorical, 0.0, 3.0}};
  TpeSampler sampler(specs, TpeConfig{}, 5);
  std::vector<Observation> obs;
  for (int i = 0; i < 60; ++i) {
    Observation o;
    o.x = sampler.suggest(obs);
    ASSERT_EQ(o.x.size(), 3u);
    EXPECT_GE(o.x[0], -2.0);
    EXPECT_LE(o.x[0], 3.0);
    EXPECT_DOUBLE_EQ(o.x[1], std::round(o.x[1]));
    EXPECT_GE(o.x[2], 0.0);
    EXPECT_LE(o.x[2], 2.0);
    o.loss = o.x[0] * o.x[0];
    obs.push_back(o);
  }
}

// On a smooth 1D bowl, TPE should concentrate samples near the optimum
// compared to pure random search at equal budget.
TEST(Tpe, BeatsRandomSearchOnQuadraticBowl) {
  const std::vector<ParamSpec> specs{{"x", ParamKind::kContinuous, 0.0, 10.0}};
  const auto loss = [](double x) { return (x - 7.3) * (x - 7.3); };

  TpeSampler sampler(specs, TpeConfig{}, 11);
  std::vector<Observation> obs;
  double tpe_best = 1e300;
  for (int i = 0; i < 60; ++i) {
    Observation o;
    o.x = sampler.suggest(obs);
    o.loss = loss(o.x[0]);
    tpe_best = std::min(tpe_best, o.loss);
    obs.push_back(o);
  }

  Rng rng(11);
  double rand_best = 1e300;
  for (int i = 0; i < 60; ++i) {
    rand_best = std::min(rand_best, loss(rng.uniform(0.0, 10.0)));
  }
  EXPECT_LE(tpe_best, rand_best * 1.2 + 1e-6);
  EXPECT_LT(tpe_best, 0.05);
}

TEST(Tpe, CategoricalConvergesToBestCategory) {
  const std::vector<ParamSpec> specs{{"c", ParamKind::kCategorical, 0.0, 4.0}};
  TpeSampler sampler(specs, TpeConfig{}, 3);
  std::vector<Observation> obs;
  for (int i = 0; i < 80; ++i) {
    Observation o;
    o.x = sampler.suggest(obs);
    o.loss = (o.x[0] == 2.0) ? 0.0 : 1.0;
    obs.push_back(o);
  }
  // Later suggestions should strongly favour category 2.
  int hits = 0;
  for (int i = 0; i < 20; ++i) {
    if (sampler.suggest(obs)[0] == 2.0) ++hits;
  }
  EXPECT_GE(hits, 12);
}

TEST(Algorithm2, StopsEarlyWithoutImprovement) {
  const std::vector<ParamSpec> specs{{"x", ParamKind::kContinuous, 0.0, 1.0}};
  ExploreConfig cfg;
  cfg.time_limit = 100;
  cfg.early_stop = 7;
  int evals = 0;
  const auto outcome = explore_parameters(
      specs,
      [&](const Assignment&) {
        ++evals;
        return 1.0;  // constant loss: first eval is "best", rest never improve
      },
      cfg);
  EXPECT_TRUE(outcome.early_stopped);
  // Algorithm 2 increments npc on every evaluation (improving or not), so
  // with a constant loss npc reaches EC after exactly EC evaluations.
  EXPECT_EQ(evals, 7);
  EXPECT_EQ(outcome.observations.size(), 7u);
}

TEST(Algorithm2, HitsTimeLimit) {
  const std::vector<ParamSpec> specs{{"x", ParamKind::kContinuous, 0.0, 1.0}};
  ExploreConfig cfg;
  cfg.time_limit = 5;
  cfg.early_stop = 100;
  Rng noise(9);
  const auto outcome = explore_parameters(
      specs, [&](const Assignment&) { return noise.uniform(0, 1); }, cfg);
  EXPECT_EQ(outcome.observations.size(), 5u);
}

TEST(Algorithm2, FindsGoodRegion) {
  const std::vector<ParamSpec> specs{{"x", ParamKind::kContinuous, 0.0, 10.0}};
  ExploreConfig cfg;
  cfg.time_limit = 50;
  cfg.early_stop = 50;
  cfg.seed = 21;
  const auto outcome = explore_parameters(
      specs, [](const Assignment& a) { return std::abs(a[0] - 4.0); }, cfg);
  EXPECT_LT(outcome.best_loss, 0.5);
  // Updated range concentrates near the optimum.
  EXPECT_GT(outcome.ranges[0].lo, 0.5);
  EXPECT_LT(outcome.ranges[0].hi, 8.5);
}

TEST(Algorithm3, GroupedExplorationImprovesSeparableLoss) {
  // Separable 3D loss; groups match the separation.
  const std::vector<ParamSpec> specs{
      {"a", ParamKind::kContinuous, 0.0, 10.0},
      {"b", ParamKind::kContinuous, 0.0, 10.0},
      {"c", ParamKind::kContinuous, 0.0, 10.0},
  };
  ExploreConfig cfg;
  cfg.time_limit = 30;
  cfg.early_stop = 12;
  cfg.outer_rounds = 2;
  cfg.seed = 33;
  int evals = 0;
  StrategyExplorer explorer(
      specs, {{0}, {1, 2}},
      [&](const Assignment& a) {
        ++evals;
        return std::abs(a[0] - 2.0) + std::abs(a[1] - 8.0) + std::abs(a[2] - 5.0);
      },
      cfg);
  const Assignment final = explorer.run();
  ASSERT_EQ(final.size(), 3u);
  EXPECT_GT(evals, 30);
  EXPECT_FALSE(explorer.history().empty());
  // The best observation is decent and the final (median-of-range)
  // configuration is in the right region for each coordinate.
  EXPECT_LT(explorer.best().loss, 4.0);
  EXPECT_NEAR(final[0], 2.0, 3.0);
  EXPECT_NEAR(final[1], 8.0, 3.5);
}

// Batched evaluation folds observations in candidate order, so the
// outcome (best, best_loss, every observation) is identical for any
// worker count.
TEST(Algorithm2, BatchedOutcomeIndependentOfThreadCount) {
  struct ThreadGuard {
    ~ThreadGuard() { par::set_num_threads(0); }
  } guard;
  const std::vector<ParamSpec> specs{{"x", ParamKind::kContinuous, 0.0, 10.0},
                                     {"y", ParamKind::kContinuous, 0.0, 10.0}};
  ExploreConfig cfg;
  cfg.time_limit = 24;
  cfg.early_stop = 24;
  cfg.batch_size = 4;
  cfg.seed = 77;
  const auto eval = [](const Assignment& a) {
    return (a[0] - 6.0) * (a[0] - 6.0) + std::abs(a[1] - 2.5);
  };

  par::set_num_threads(1);
  const auto serial = explore_parameters(specs, eval, cfg);
  par::set_num_threads(8);
  const auto parallel8 = explore_parameters(specs, eval, cfg);

  EXPECT_DOUBLE_EQ(serial.best_loss, parallel8.best_loss);
  EXPECT_EQ(serial.best, parallel8.best);
  ASSERT_EQ(serial.observations.size(), parallel8.observations.size());
  for (std::size_t i = 0; i < serial.observations.size(); ++i) {
    EXPECT_EQ(serial.observations[i].x, parallel8.observations[i].x);
    EXPECT_DOUBLE_EQ(serial.observations[i].loss,
                     parallel8.observations[i].loss);
  }
}

TEST(Algorithm2, BatchedRespectsTimeLimit) {
  const std::vector<ParamSpec> specs{{"x", ParamKind::kContinuous, 0.0, 1.0}};
  ExploreConfig cfg;
  cfg.time_limit = 10;
  cfg.early_stop = 100;
  cfg.batch_size = 4;  // 10 is not a multiple of 4: final batch is clamped
  int evals = 0;
  Rng noise(3);
  const auto outcome = explore_parameters(
      specs,
      [&](const Assignment&) {
        ++evals;
        return noise.uniform(0, 1);
      },
      cfg);
  EXPECT_EQ(evals, 10);
  EXPECT_EQ(outcome.observations.size(), 10u);
}

TEST(Algorithm2, BatchedStopsEarlyMidBatch) {
  const std::vector<ParamSpec> specs{{"x", ParamKind::kContinuous, 0.0, 1.0}};
  ExploreConfig cfg;
  cfg.time_limit = 100;
  cfg.early_stop = 7;
  cfg.batch_size = 4;
  const auto outcome = explore_parameters(
      specs, [](const Assignment&) { return 1.0; }, cfg);
  EXPECT_TRUE(outcome.early_stopped);
  // The fold stops recording once npc hits EC, exactly as the serial
  // loop would: 4 observations from the first batch, 3 from the second.
  EXPECT_EQ(outcome.observations.size(), 7u);
}

TEST(Algorithm3, SingletonGroupsAddedForUncoveredParams) {
  const std::vector<ParamSpec> specs{
      {"a", ParamKind::kContinuous, 0.0, 1.0},
      {"b", ParamKind::kContinuous, 0.0, 1.0},
  };
  ExploreConfig cfg;
  cfg.time_limit = 4;
  cfg.early_stop = 4;
  cfg.outer_rounds = 1;
  // Only "a" grouped; "b" must still be explored (history includes
  // variation in b during its own group's runs).
  StrategyExplorer explorer(specs, {{0}},
                            [](const Assignment& a) { return a[0] + a[1]; }, cfg);
  explorer.run();
  EXPECT_GE(explorer.history().size(), 8u);
}

TEST(ValidateExploreConfig, AcceptsDefaultsAndReturnsThemUnchanged) {
  const ExploreConfig def;
  const ExploreConfig v = validate_explore_config(def);
  EXPECT_EQ(v.time_limit, def.time_limit);
  EXPECT_EQ(v.early_stop, def.early_stop);
  EXPECT_EQ(v.batch_size, def.batch_size);
  EXPECT_DOUBLE_EQ(v.tpe.gamma, def.tpe.gamma);
}

TEST(ValidateExploreConfig, RejectsNonPositiveTimeLimit) {
  ExploreConfig cfg;
  cfg.time_limit = 0;
  EXPECT_THROW(validate_explore_config(cfg), std::invalid_argument);
  cfg.time_limit = -3;
  EXPECT_THROW(validate_explore_config(cfg), std::invalid_argument);
}

TEST(ValidateExploreConfig, RejectsNonPositiveEarlyStop) {
  ExploreConfig cfg;
  cfg.early_stop = 0;
  EXPECT_THROW(validate_explore_config(cfg), std::invalid_argument);
}

TEST(ValidateExploreConfig, RejectsNonPositiveOuterRounds) {
  ExploreConfig cfg;
  cfg.outer_rounds = 0;
  EXPECT_THROW(validate_explore_config(cfg), std::invalid_argument);
}

TEST(ValidateExploreConfig, RejectsBatchSizeBelowOne) {
  ExploreConfig cfg;
  cfg.batch_size = 0;
  EXPECT_THROW(validate_explore_config(cfg), std::invalid_argument);
}

TEST(ValidateExploreConfig, RejectsGammaOutsideOpenUnitInterval) {
  ExploreConfig cfg;
  cfg.tpe.gamma = 0.0;
  EXPECT_THROW(validate_explore_config(cfg), std::invalid_argument);
  cfg.tpe.gamma = 1.0;
  EXPECT_THROW(validate_explore_config(cfg), std::invalid_argument);
  cfg.tpe.gamma = std::nan("");
  EXPECT_THROW(validate_explore_config(cfg), std::invalid_argument);
}

TEST(ValidateExploreConfig, RejectsBadCandidateCounts) {
  ExploreConfig cfg;
  cfg.tpe.n_candidates = 0;
  EXPECT_THROW(validate_explore_config(cfg), std::invalid_argument);
  cfg.tpe.n_candidates = 24;
  cfg.tpe.n_startup = -1;
  EXPECT_THROW(validate_explore_config(cfg), std::invalid_argument);
}

TEST(ValidateExploreConfig, ExplorerEntryPointsValidate) {
  const std::vector<ParamSpec> specs{{"a", ParamKind::kContinuous, 0.0, 1.0}};
  const EvalFn eval = [](const Assignment& a) { return a[0]; };
  ExploreConfig bad;
  bad.batch_size = -1;
  EXPECT_THROW(explore_parameters(specs, eval, bad), std::invalid_argument);
  EXPECT_THROW(StrategyExplorer(specs, {}, eval, bad), std::invalid_argument);
}

}  // namespace
}  // namespace puffer
