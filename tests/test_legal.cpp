// Tests for discretized padding (Eq. 17) and Abacus legalization with
// macro-aware row segments and white-space preservation.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "io/synthetic.h"
#include "legal/abacus.h"
#include "legal/discrete_padding.h"
#include "legal/legality.h"

namespace puffer {
namespace {

Design base_design(double die_w = 240, double die_h = 240) {
  Design d;
  d.die = {0, 0, die_w, die_h};
  d.tech = Technology::make_default(1.0, 8.0, 8);
  const int rows = static_cast<int>(die_h / 8.0);
  for (int r = 0; r < rows; ++r) {
    d.rows.push_back({r * 8.0, 0, static_cast<int>(die_w), 1.0, 8.0});
  }
  return d;
}

CellId add_cell_at(Design& d, double x, double y, double w = 2.0) {
  Cell c;
  c.name = "c" + std::to_string(d.cells.size());
  c.width = w;
  c.height = 8;
  c.x = x;
  c.y = y;
  return d.add_cell(std::move(c));
}

TEST(DiscretePadding, RoundsToLevels) {
  Design d = base_design();
  const CellId a = add_cell_at(d, 0, 0);
  const CellId b = add_cell_at(d, 10, 0);
  const CellId c = add_cell_at(d, 20, 0);
  std::vector<double> pad(d.cells.size(), 0.0);
  pad[static_cast<std::size_t>(a)] = 8.0;  // mp
  pad[static_cast<std::size_t>(b)] = 4.0;
  pad[static_cast<std::size_t>(c)] = 0.4;
  DiscretePaddingConfig cfg;
  cfg.theta = 8.0;
  cfg.max_pad_area_frac = 10.0;  // no budget pressure in this test
  const auto levels = discretize_padding(d, pad, cfg);
  EXPECT_EQ(levels[static_cast<std::size_t>(a)], 8);  // round(8*8/8)
  EXPECT_EQ(levels[static_cast<std::size_t>(b)], 4);  // round(8*4/8)
  EXPECT_EQ(levels[static_cast<std::size_t>(c)], 0);  // round(0.4)
}

TEST(DiscretePadding, ZeroPaddingYieldsZeroLevels) {
  Design d = base_design();
  add_cell_at(d, 0, 0);
  const auto levels = discretize_padding(d, std::vector<double>(1, 0.0));
  EXPECT_EQ(levels[0], 0);
}

TEST(DiscretePadding, BudgetRelegatesSmallestFirst) {
  Design d = base_design(80, 16);
  std::vector<double> pad;
  for (int i = 0; i < 10; ++i) {
    add_cell_at(d, i * 4.0, 0);
    pad.push_back(2.0 + 0.1 * i);  // increasing padding
  }
  DiscretePaddingConfig cfg;
  cfg.theta = 4.0;
  cfg.max_pad_area_frac = 0.25;  // movable area = 10*2*8 = 160 -> 40 DBU^2
  // site area 8 -> budget of 5 site-pads; initial levels are ~4 each.
  const auto levels = discretize_padding(d, pad, cfg);
  double area = 0.0;
  for (int lv : levels) area += lv * 8.0;
  EXPECT_LE(area, 0.25 * 160.0 + 1e-9);
  // The largest-padding cell retains at least as much as the smallest.
  EXPECT_GE(levels[9], levels[0]);
}

TEST(Legalize, SimpleRowPlacementIsLegal) {
  Design d = base_design();
  Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    add_cell_at(d, rng.uniform(0, 230), rng.uniform(0, 230),
                std::floor(rng.uniform(1, 5)));
  }
  const LegalizeResult res = legalize(d);
  EXPECT_TRUE(res.success);
  EXPECT_EQ(res.failed_cells, 0);
  EXPECT_EQ(res.placed, 200);
  const LegalityReport rep = check_legality(d);
  EXPECT_TRUE(rep.legal) << rep.summary();
}

TEST(Legalize, AvoidsMacros) {
  Design d = base_design();
  Cell m;
  m.name = "m";
  m.kind = CellKind::kMacro;
  m.x = 80;
  m.y = 80;
  m.width = 80;
  m.height = 80;
  d.add_cell(m);
  Rng rng(23);
  // Drop many cells right on top of the macro.
  for (int i = 0; i < 150; ++i) {
    add_cell_at(d, rng.uniform(70, 150), rng.uniform(70, 150), 2);
  }
  const LegalizeResult res = legalize(d);
  EXPECT_TRUE(res.success);
  const LegalityReport rep = check_legality(d);
  EXPECT_TRUE(rep.legal) << rep.summary();
  // No movable cell overlaps the macro.
  const Rect macro_rect{80, 80, 160, 160};
  for (const Cell& c : d.cells) {
    if (c.movable()) EXPECT_DOUBLE_EQ(c.rect().overlap_area(macro_rect), 0.0);
  }
}

TEST(Legalize, MinimalDisplacementForAlreadyLegalCells) {
  Design d = base_design();
  for (int i = 0; i < 10; ++i) add_cell_at(d, 10.0 * i, 16.0, 4.0);
  const LegalizeResult res = legalize(d);
  EXPECT_TRUE(res.success);
  EXPECT_NEAR(res.total_displacement, 0.0, 1e-6);
}

TEST(Legalize, SnapsToSitesAndRows) {
  Design d = base_design();
  add_cell_at(d, 10.37, 13.2, 3);
  legalize(d);
  const Cell& c = d.cells[0];
  EXPECT_NEAR(c.x, std::round(c.x), 1e-9);        // site width 1.0
  EXPECT_NEAR(c.y / 8.0, std::round(c.y / 8.0), 1e-9);  // row height 8
}

TEST(Legalize, PaddingReservesWhitespace) {
  Design d = base_design(80, 8);  // single row, 80 sites
  // Three 4-wide cells side by side, middle one padded by 6 sites.
  const CellId a = add_cell_at(d, 10, 0, 4);
  const CellId b = add_cell_at(d, 14, 0, 4);
  const CellId c = add_cell_at(d, 18, 0, 4);
  std::vector<int> pad(d.cells.size(), 0);
  pad[static_cast<std::size_t>(b)] = 6;
  const LegalizeResult res = legalize(d, pad);
  EXPECT_TRUE(res.success);
  EXPECT_TRUE(check_legality(d).legal);
  // The padded slot keeps >= 6 sites of air around b in total.
  const Cell& ca = d.cells[static_cast<std::size_t>(a)];
  const Cell& cb = d.cells[static_cast<std::size_t>(b)];
  const Cell& cc = d.cells[static_cast<std::size_t>(c)];
  const double air_left = cb.x - (ca.x + ca.width);
  const double air_right = cc.x - (cb.x + cb.width);
  EXPECT_GE(air_left + air_right, 6.0 - 1e-9);
}

TEST(Legalize, OverfullRowSpillsToNeighbours) {
  Design d = base_design(40, 24);  // 3 rows of 40 sites
  // 30 cells of width 4 = 120 sites > 40 -> must fill 3 rows.
  for (int i = 0; i < 30; ++i) add_cell_at(d, 2.0 * i, 8.0, 4.0);
  const LegalizeResult res = legalize(d);
  EXPECT_TRUE(res.success);
  EXPECT_TRUE(check_legality(d).legal);
  std::vector<int> per_row(3, 0);
  for (const Cell& c : d.cells) {
    per_row[static_cast<std::size_t>(c.y / 8.0)]++;
  }
  EXPECT_EQ(per_row[0] + per_row[1] + per_row[2], 30);
  EXPECT_EQ(per_row[0], 10);
  EXPECT_EQ(per_row[1], 10);
  EXPECT_EQ(per_row[2], 10);
}

TEST(Legalize, FailsGracefullyWhenImpossible) {
  Design d = base_design(16, 8);  // one row, 16 sites
  for (int i = 0; i < 5; ++i) add_cell_at(d, 0, 0, 8);  // 40 sites demanded
  const LegalizeResult res = legalize(d);
  EXPECT_FALSE(res.success);
  EXPECT_GT(res.failed_cells, 0);
}

TEST(Legalize, EmptyRowsReportFailure) {
  Design d;
  d.die = {0, 0, 10, 10};
  add_cell_at(d, 0, 0);
  EXPECT_FALSE(legalize(d).success);
}

TEST(Legalize, SyntheticDesignEndToEnd) {
  SyntheticSpec spec;
  spec.num_cells = 600;
  spec.num_nets = 900;
  spec.num_macros = 4;
  spec.target_utilization = 0.7;
  Design d = generate_synthetic(spec);
  const double hpwl_before = d.total_hpwl();
  const LegalizeResult res = legalize(d);
  EXPECT_TRUE(res.success);
  EXPECT_TRUE(check_legality(d).legal) << check_legality(d).summary();
  // Legalization does not explode the wirelength of a spread placement.
  EXPECT_LT(d.total_hpwl(), hpwl_before * 2.5);
}

TEST(Legality, DetectsOverlap) {
  Design d = base_design();
  add_cell_at(d, 10, 0, 4);
  add_cell_at(d, 12, 0, 4);
  const LegalityReport rep = check_legality(d);
  EXPECT_FALSE(rep.legal);
  EXPECT_GT(rep.overlaps, 0);
}

TEST(Legality, DetectsOffGridAndOutOfDie) {
  Design d = base_design();
  add_cell_at(d, 10, 3.3, 4);    // off-row
  add_cell_at(d, 239, 0, 4);     // sticks out of the die
  const LegalityReport rep = check_legality(d);
  EXPECT_FALSE(rep.legal);
  EXPECT_GE(rep.off_grid, 1);
  EXPECT_GE(rep.out_of_die, 1);
}

}  // namespace
}  // namespace puffer
