// Tests for the deterministic parallel + incremental legalizer and the
// batched detailed placer: the large-coordinate regression the integer
// site-unit arithmetic fixes, config validation, zero-area cells, the
// randomized legality property suite, and bitwise identity of the
// incremental ledger path against from-scratch runs across thread counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "dp/detailed_place.h"
#include "legal/abacus.h"
#include "legal/legality.h"

namespace puffer {
namespace {

struct ThreadGuard {
  ~ThreadGuard() { par::set_num_threads(0); }
};

Design offset_design(double x0, double site, int num_sites, int num_rows,
                     double row_h = 8.0) {
  Design d;
  d.die = {x0, 0.0, x0 + site * num_sites, row_h * num_rows};
  d.tech = Technology::make_default(site, row_h);
  for (int r = 0; r < num_rows; ++r) {
    d.rows.push_back({r * row_h, x0, num_sites, site, row_h});
  }
  return d;
}

CellId add_cell(Design& d, double x, double y, double w, double h = 8.0) {
  Cell c;
  c.name = "c" + std::to_string(d.cells.size());
  c.width = w;
  c.height = h;
  c.x = x;
  c.y = y;
  return d.add_cell(std::move(c));
}

// The seed implementation compared world coordinates at a 1e7-DBU core
// offset against absolute 1e-9 epsilons — below double ULP at that
// magnitude, so the segment builder dropped a site and an exactly-full
// row failed to legalize. The integer site-unit arithmetic must place
// every cell.
TEST(LegalLargeOffset, ExactlyFullRowAtTenMillionDbu) {
  const double x0 = 1e7;
  const double site = 0.1;
  const int num_sites = 96;
  Design d = offset_design(x0, site, num_sites, 1);
  // 48 cells of width 0.2 fill the 96-site row exactly.
  for (int i = 0; i < 48; ++i) {
    add_cell(d, x0 + 0.2 * i, 0.0, 0.2);
  }
  const LegalizeResult r = legalize(d);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.failed_cells, 0);
  EXPECT_EQ(r.placed, 48);
  const LegalityReport rep = check_legality(d);
  EXPECT_TRUE(rep.legal) << rep.summary();
}

TEST(LegalConfig, ValidationThrowsAndClamps) {
  LegalizeConfig bad;
  bad.max_row_search = 0;
  EXPECT_THROW(validate_legalize_config(bad), std::invalid_argument);
  EXPECT_THROW(IncrementalLegalizer{bad}, std::invalid_argument);
  LegalizeConfig nan_frac;
  nan_frac.max_dirty_frac = std::nan("");
  EXPECT_THROW(validate_legalize_config(nan_frac), std::invalid_argument);

  LegalizeConfig fixable;
  fixable.full_rebuild_interval = -3;
  fixable.max_dirty_frac = 7.0;
  const LegalizeConfig fixed = validate_legalize_config(fixable);
  EXPECT_EQ(fixed.full_rebuild_interval, 1);
  EXPECT_DOUBLE_EQ(fixed.max_dirty_frac, 1.0);

  Design d = offset_design(0.0, 1.0, 64, 2);
  add_cell(d, 3.0, 0.0, 2.0);
  EXPECT_THROW(legalize(d, {}, bad), std::invalid_argument);
}

// Zero-area cells (filler with zero width or height) previously divided
// by zero in the cluster recurrence and could be skipped by the slot
// write-back; they now occupy at least one site and get a real position.
TEST(LegalZeroWeight, ZeroAreaCellsArePlaced) {
  Design d = offset_design(0.0, 1.0, 64, 2);
  const CellId z = add_cell(d, 10.0, 0.0, 0.0);   // zero width
  const CellId f = add_cell(d, 12.0, 0.0, 2.0, 0.0);  // zero height
  add_cell(d, 10.5, 0.0, 2.0);
  const LegalizeResult r = legalize(d);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.placed, 3);
  for (CellId c : {z, f}) {
    const Cell& cell = d.cells[static_cast<std::size_t>(c)];
    EXPECT_TRUE(std::isfinite(cell.x));
    EXPECT_TRUE(std::isfinite(cell.y));
  }
  // The zero-width cell owns a full site: no other cell may share it.
  const double zx = d.cells[static_cast<std::size_t>(z)].x;
  for (CellId c = 0; c < static_cast<CellId>(d.cells.size()); ++c) {
    if (c == z) continue;
    const Cell& o = d.cells[static_cast<std::size_t>(c)];
    if (o.y != d.cells[static_cast<std::size_t>(z)].y) continue;
    EXPECT_TRUE(o.x + o.width <= zx + 1e-9 || o.x >= zx + 1.0 - 1e-9);
  }
}

Design random_design(std::uint64_t seed, double x0 = 0.0) {
  Rng rng(seed);
  const int num_rows = 12;
  const int num_sites = 160;
  Design d = offset_design(x0, 1.0, num_sites, num_rows);
  // A couple of fixed macros.
  for (int m = 0; m < 2; ++m) {
    Cell c;
    c.name = "m" + std::to_string(m);
    c.kind = CellKind::kMacro;
    c.width = 24.0;
    c.height = 24.0;
    c.x = x0 + 16.0 + 80.0 * m;
    c.y = 16.0 + 24.0 * m;
    d.add_cell(std::move(c));
  }
  const int n = 120 + static_cast<int>(rng.uniform_int(0, 60));
  const CellId first = static_cast<CellId>(d.cells.size());
  for (int i = 0; i < n; ++i) {
    add_cell(d, x0 + rng.uniform(0.0, num_sites - 8.0),
             rng.uniform(0.0, num_rows * 8.0 - 8.0),
             static_cast<double>(rng.uniform_int(1, 6)), 8.0);
  }
  // Random 2-4 pin nets so detailed placement has real work to do.
  for (int i = 0; i < n; ++i) {
    const NetId net = d.add_net("n" + std::to_string(i));
    const int degree = 2 + static_cast<int>(rng.uniform_int(0, 2));
    for (int p = 0; p < degree; ++p) {
      const CellId c =
          first + static_cast<CellId>(rng.uniform_int(0, n - 1));
      d.connect(c, net, rng.uniform(0.0, 1.0), rng.uniform(0.0, 4.0));
    }
  }
  return d;
}

std::vector<int> random_pads(const Design& d, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<int> pads(d.cells.size(), 0);
  for (std::size_t i = 0; i < pads.size(); ++i) {
    if (rng.uniform(0.0, 1.0) < 0.3) {
      pads[i] = static_cast<int>(rng.uniform_int(1, 4));
    }
  }
  return pads;
}

// Padded slots must not overlap: cell i's slot is
// [x - (pad/2)*site, x - (pad/2)*site + (ceil(w/site) max 1 + pad)*site).
void expect_padded_slots_respected(const Design& d,
                                   const std::vector<int>& pads) {
  struct Slot {
    double lo, hi;
  };
  std::vector<std::vector<Slot>> by_row(d.rows.size());
  const double row_h = d.rows.front().height;
  const double site = d.rows.front().site_width;
  for (CellId c = 0; c < static_cast<CellId>(d.cells.size()); ++c) {
    const Cell& cell = d.cells[static_cast<std::size_t>(c)];
    if (!cell.movable()) continue;
    const int r = static_cast<int>(std::llround(cell.y / row_h));
    ASSERT_GE(r, 0);
    ASSERT_LT(r, static_cast<int>(d.rows.size()));
    const int pad = pads[static_cast<std::size_t>(c)];
    const double phys =
        std::max<double>(1.0, std::ceil(cell.width / site - 1e-6));
    const double lo = cell.x - (pad / 2) * site;
    by_row[static_cast<std::size_t>(r)].push_back(
        {lo, lo + (phys + pad) * site});
  }
  for (auto& row : by_row) {
    std::sort(row.begin(), row.end(),
              [](const Slot& a, const Slot& b) { return a.lo < b.lo; });
    for (std::size_t i = 0; i + 1 < row.size(); ++i) {
      EXPECT_LE(row[i].hi, row[i + 1].lo + 1e-6);
    }
  }
}

TEST(LegalProperties, RandomizedLegalityWithPadding) {
  for (std::uint64_t seed : {11ull, 29ull, 47ull}) {
    for (double x0 : {0.0, 1e7}) {
      Design d = random_design(seed, x0);
      const std::vector<int> pads = random_pads(d, seed * 31);
      const LegalizeResult r = legalize(d, pads);
      EXPECT_TRUE(r.success) << "seed " << seed << " x0 " << x0;
      const LegalityReport rep = check_legality(d);
      EXPECT_TRUE(rep.legal) << rep.summary() << " seed " << seed;
      expect_padded_slots_respected(d, pads);

      // Detailed placement must keep the placement legal and not hurt.
      const double before = d.total_hpwl();
      const DetailedPlaceResult dp = detailed_place(d);
      EXPECT_LE(d.total_hpwl(), before + 1e-9);
      EXPECT_GE(dp.passes, 1);
      const LegalityReport rep2 = check_legality(d);
      EXPECT_TRUE(rep2.legal) << rep2.summary() << " seed " << seed;
    }
  }
}

std::uint64_t position_bits_checksum(const Design& d) {
  std::uint64_t h = 1469598103934665603ull;
  for (const Cell& c : d.cells) {
    std::uint64_t bx, by;
    std::memcpy(&bx, &c.x, sizeof(bx));
    std::memcpy(&by, &c.y, sizeof(by));
    for (std::uint64_t bits : {bx, by}) {
      for (int i = 0; i < 8; ++i) {
        h ^= (bits >> (8 * i)) & 0xffu;
        h *= 1099511628211ull;
      }
    }
  }
  return h;
}

// Localized perturbation of the movable cells inside one window.
void perturb(Design& d, Rng& rng) {
  const double ww = (d.die.xhi - d.die.xlo) * 0.35;
  const double wh = (d.die.yhi - d.die.ylo) * 0.35;
  const double wx = rng.uniform(d.die.xlo, d.die.xhi - ww);
  const double wy = rng.uniform(d.die.ylo, d.die.yhi - wh);
  for (Cell& c : d.cells) {
    if (!c.movable()) continue;
    if (c.x < wx || c.x > wx + ww || c.y < wy || c.y > wy + wh) continue;
    c.x = clamp(c.x + rng.uniform(-6.0, 6.0), d.die.xlo, d.die.xhi - c.width);
    c.y = clamp(c.y + rng.uniform(-9.0, 9.0), d.die.ylo, d.die.yhi - c.height);
  }
}

// The ledger path must be bitwise identical to a from-scratch run on the
// same inputs, for every thread count, with zero drift detected by the
// periodic verified rebuild.
TEST(LegalIncremental, BitIdenticalToFullAcrossThreads) {
  ThreadGuard guard;
  const int kRounds = 7;
  const int threads[] = {1, 2, 8};
  std::vector<std::uint64_t> checksums;

  for (int t = 0; t < 3; ++t) {
    par::set_num_threads(threads[t]);
    Design d_incr = random_design(123);
    Design d_full = random_design(123);
    const std::vector<int> pads = random_pads(d_incr, 5);
    LegalizeConfig cfg;
    cfg.full_rebuild_interval = 3;  // exercise the verified rebuild
    IncrementalLegalizer ledger(cfg);
    Rng rng_incr(99), rng_full(99);
    std::uint64_t fold = 1469598103934665603ull;
    int incremental_rounds = 0;
    for (int round = 0; round < kRounds; ++round) {
      if (round > 0) {
        perturb(d_incr, rng_incr);
        perturb(d_full, rng_full);
      }
      const LegalizeResult ri = ledger.legalize(d_incr, pads);
      const LegalizeResult rf = legalize(d_full, pads, cfg);
      ASSERT_EQ(ri.failed_cells, rf.failed_cells);
      if (ri.incremental) ++incremental_rounds;
      for (std::size_t i = 0; i < d_incr.cells.size(); ++i) {
        ASSERT_EQ(std::memcmp(&d_incr.cells[i].x, &d_full.cells[i].x,
                              sizeof(double)),
                  0)
            << "round " << round << " cell " << i;
        ASSERT_EQ(std::memcmp(&d_incr.cells[i].y, &d_full.cells[i].y,
                              sizeof(double)),
                  0)
            << "round " << round << " cell " << i;
      }
      fold ^= position_bits_checksum(d_incr) + 0x9e3779b97f4a7c15ull +
              (fold << 6) + (fold >> 2);
    }
    EXPECT_GT(incremental_rounds, 0) << "ledger path never exercised";
    EXPECT_GT(ledger.stats().verified_rebuilds, 0);
    EXPECT_EQ(ledger.stats().drift_count, 0u);
    EXPECT_GT(ledger.stats().replayed_cells, 0);
    checksums.push_back(fold);
  }
  EXPECT_EQ(checksums[0], checksums[1]);
  EXPECT_EQ(checksums[1], checksums[2]);
}

// Structural changes (cell count, macro moves) must invalidate the
// ledger key and force a safe full rebuild.
TEST(LegalIncremental, StructureChangeForcesFullRun) {
  Design d = random_design(7);
  IncrementalLegalizer ledger;
  const LegalizeResult r1 = ledger.legalize(d);
  EXPECT_FALSE(r1.incremental);
  // legalize() writes positions back, so the next call's inputs differ
  // from the recorded snapshot almost everywhere -> full run again.
  ledger.legalize(d);
  // Legalizing an already-legal placement is a fixpoint, so from here on
  // the ledger replays.
  const LegalizeResult r2 = ledger.legalize(d);
  EXPECT_TRUE(r2.incremental);
  add_cell(d, 40.0, 40.0, 3.0);
  const LegalizeResult r3 = ledger.legalize(d);
  EXPECT_FALSE(r3.incremental);  // key changed -> from scratch
  EXPECT_TRUE(r3.success);
  // invalidate() drops the ledger explicitly.
  ledger.invalidate();
  const LegalizeResult r4 = ledger.legalize(d);
  EXPECT_FALSE(r4.incremental);
}

// Batched detailed placement is bit-identical for any thread count.
TEST(DetailedPlaceBatched, BitIdenticalAcrossThreads) {
  ThreadGuard guard;
  std::vector<std::uint64_t> checksums;
  for (int threads : {1, 2, 8}) {
    par::set_num_threads(threads);
    Design d = random_design(321);
    legalize(d);
    detailed_place(d);
    checksums.push_back(position_bits_checksum(d));
    EXPECT_TRUE(check_legality(d).legal);
  }
  EXPECT_EQ(checksums[0], checksums[1]);
  EXPECT_EQ(checksums[1], checksums[2]);
}

}  // namespace
}  // namespace puffer
