// Tests for the FFT / DCT / DST transforms and the spectral Poisson
// solver. The transform tests compare the fast implementations against
// naive O(N^2) reference evaluations across a parameterized size sweep.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>

#include "common/rng.h"
#include "fft/dct.h"
#include "fft/fft.h"
#include "gp/electrostatics.h"

namespace puffer {
namespace {

std::vector<double> random_vector(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

// --- FFT -------------------------------------------------------------

TEST(Fft, PowerOfTwoHelpers) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(48));
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(33), 64u);
  EXPECT_EQ(next_pow2(64), 64u);
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<std::complex<double>> v(12);
  EXPECT_THROW(fft(v, false), std::invalid_argument);
}

class FftSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizes, MatchesNaiveDft) {
  const std::size_t n = GetParam();
  Rng rng(n);
  std::vector<std::complex<double>> a(n);
  for (auto& x : a) x = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  auto fast = a;
  fft(fast, false);
  for (std::size_t k = 0; k < n; ++k) {
    std::complex<double> ref{0, 0};
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = -2.0 * std::numbers::pi * static_cast<double>(k * j) /
                         static_cast<double>(n);
      ref += a[j] * std::complex<double>(std::cos(ang), std::sin(ang));
    }
    EXPECT_NEAR(fast[k].real(), ref.real(), 1e-9 * static_cast<double>(n));
    EXPECT_NEAR(fast[k].imag(), ref.imag(), 1e-9 * static_cast<double>(n));
  }
}

TEST_P(FftSizes, InverseRoundTrip) {
  const std::size_t n = GetParam();
  Rng rng(n + 1);
  std::vector<std::complex<double>> a(n);
  for (auto& x : a) x = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  auto b = a;
  fft(b, false);
  fft(b, true);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(b[i].real(), a[i].real(), 1e-10);
    EXPECT_NEAR(b[i].imag(), a[i].imag(), 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftSizes,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64, 128));

// --- DCT family --------------------------------------------------------

class DctSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DctSizes, Dct2MatchesNaive) {
  const std::size_t n = GetParam();
  const auto x = random_vector(n, 7 + n);
  const auto fast = dct2(x);
  for (std::size_t k = 0; k < n; ++k) {
    double ref = 0.0;
    for (std::size_t m = 0; m < n; ++m) {
      ref += x[m] * std::cos(std::numbers::pi * static_cast<double>(k) *
                             (2.0 * static_cast<double>(m) + 1.0) /
                             (2.0 * static_cast<double>(n)));
    }
    EXPECT_NEAR(fast[k], ref, 1e-9 * static_cast<double>(n));
  }
}

TEST_P(DctSizes, Dct3RawMatchesNaive) {
  const std::size_t n = GetParam();
  const auto x = random_vector(n, 11 + n);
  const auto fast = dct3_raw(x);
  for (std::size_t m = 0; m < n; ++m) {
    double ref = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      ref += x[k] * std::cos(std::numbers::pi * static_cast<double>(k) *
                             (2.0 * static_cast<double>(m) + 1.0) /
                             (2.0 * static_cast<double>(n)));
    }
    EXPECT_NEAR(fast[m], ref, 1e-9 * static_cast<double>(n));
  }
}

TEST_P(DctSizes, IdxstMatchesNaive) {
  const std::size_t n = GetParam();
  if (n < 2) return;
  const auto x = random_vector(n, 13 + n);
  const auto fast = idxst_raw(x);
  for (std::size_t m = 0; m < n; ++m) {
    double ref = 0.0;
    for (std::size_t k = 1; k < n; ++k) {
      ref += x[k] * std::sin(std::numbers::pi * static_cast<double>(k) *
                             (2.0 * static_cast<double>(m) + 1.0) /
                             (2.0 * static_cast<double>(n)));
    }
    EXPECT_NEAR(fast[m], ref, 1e-9 * static_cast<double>(n));
  }
}

TEST_P(DctSizes, InversionIdentity) {
  // x == (2/N) * dct3_raw(X') with X'[0] halved, X = dct2(x).
  const std::size_t n = GetParam();
  const auto x = random_vector(n, 17 + n);
  auto X = dct2(x);
  X[0] *= 0.5;
  const auto back = dct3_raw(X);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(back[i] * 2.0 / static_cast<double>(n), x[i], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, DctSizes,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64));

TEST(Dct2d, SeparableAgainstNaive) {
  const std::size_t nx = 8, ny = 4;
  const auto data = random_vector(nx * ny, 23);
  const auto fast = dct2_2d(data, nx, ny);
  for (std::size_t v = 0; v < ny; ++v) {
    for (std::size_t u = 0; u < nx; ++u) {
      double ref = 0.0;
      for (std::size_t n = 0; n < ny; ++n) {
        for (std::size_t m = 0; m < nx; ++m) {
          ref += data[n * nx + m] *
                 std::cos(std::numbers::pi * static_cast<double>(u) *
                          (2.0 * static_cast<double>(m) + 1.0) /
                          (2.0 * static_cast<double>(nx))) *
                 std::cos(std::numbers::pi * static_cast<double>(v) *
                          (2.0 * static_cast<double>(n) + 1.0) /
                          (2.0 * static_cast<double>(ny)));
        }
      }
      EXPECT_NEAR(fast[v * nx + u], ref, 1e-8);
    }
  }
}

TEST(Dct2d, SizeMismatchThrows) {
  EXPECT_THROW(dct2_2d(std::vector<double>(7), 4, 2), std::invalid_argument);
}

// --- electrostatic solver ------------------------------------------------

TEST(Electrostatics, UniformDensityHasNoField) {
  const int n = 16;
  ElectrostaticSystem es(n, n, 100.0, 100.0);
  Map2D<double> rho(n, n, 3.0);
  es.solve(rho);
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      EXPECT_NEAR(es.field_x().at(x, y), 0.0, 1e-9);
      EXPECT_NEAR(es.field_y().at(x, y), 0.0, 1e-9);
    }
  }
}

TEST(Electrostatics, FieldPointsAwayFromBlob) {
  const int n = 32;
  ElectrostaticSystem es(n, n, 100.0, 100.0);
  Map2D<double> rho(n, n, 0.0);
  rho.at(16, 16) = 10.0;  // point blob near the center
  es.solve(rho);
  // Right of the blob the x-field should push right (positive), left of
  // it negative; likewise in y.
  EXPECT_GT(es.field_x().at(20, 16), 0.0);
  EXPECT_LT(es.field_x().at(12, 16), 0.0);
  EXPECT_GT(es.field_y().at(16, 20), 0.0);
  EXPECT_LT(es.field_y().at(16, 12), 0.0);
}

TEST(Electrostatics, PotentialPeaksAtBlob) {
  const int n = 32;
  ElectrostaticSystem es(n, n, 64.0, 64.0);
  Map2D<double> rho(n, n, 0.0);
  rho.at(8, 24) = 5.0;
  es.solve(rho);
  double max_psi = -1e300;
  int max_x = -1, max_y = -1;
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      if (es.potential().at(x, y) > max_psi) {
        max_psi = es.potential().at(x, y);
        max_x = x;
        max_y = y;
      }
    }
  }
  EXPECT_EQ(max_x, 8);
  EXPECT_EQ(max_y, 24);
}

TEST(Electrostatics, EnergyDecreasesWhenSpread) {
  const int n = 32;
  ElectrostaticSystem es(n, n, 100.0, 100.0);
  Map2D<double> blob(n, n, 0.0);
  blob.at(16, 16) = 16.0;
  es.solve(blob);
  const double concentrated = es.energy();
  Map2D<double> spread(n, n, 0.0);
  for (int y = 14; y < 18; ++y) {
    for (int x = 14; x < 18; ++x) spread.at(x, y) = 1.0;
  }
  es.solve(spread);
  EXPECT_LT(es.energy(), concentrated);
}

TEST(Electrostatics, RejectsBadConstruction) {
  EXPECT_THROW(ElectrostaticSystem(12, 16, 10, 10), std::invalid_argument);
  EXPECT_THROW(ElectrostaticSystem(16, 16, -1, 10), std::invalid_argument);
}

TEST(Electrostatics, RejectsWrongDensitySize) {
  ElectrostaticSystem es(16, 16, 10, 10);
  Map2D<double> rho(8, 8);
  EXPECT_THROW(es.solve(rho), std::invalid_argument);
}

}  // namespace
}  // namespace puffer
