// Tests for the evaluation global router: demand accounting, pattern
// routing, negotiated rip-up-and-reroute, and metric reporting.
#include <gtest/gtest.h>

#include "io/synthetic.h"
#include "router/global_router.h"

namespace puffer {
namespace {

Design base_design() {
  Design d;
  d.die = {0, 0, 240, 240};
  d.tech = Technology::make_default(1.0, 8.0, 8);
  for (int r = 0; r < 30; ++r) d.rows.push_back({r * 8.0, 0, 240, 1.0, 8.0});
  return d;
}

CellId add_cell_at(Design& d, double x, double y) {
  Cell c;
  c.name = "c" + std::to_string(d.cells.size());
  c.width = 1;
  c.height = 8;
  c.x = x;
  c.y = y;
  return d.add_cell(std::move(c));
}

void add_two_pin_net(Design& d, Point a, Point b) {
  const CellId ca = add_cell_at(d, a.x, a.y);
  const CellId cb = add_cell_at(d, b.x, b.y);
  const NetId n = d.add_net("n" + std::to_string(d.nets.size()));
  d.connect(ca, n, 0, 0);
  d.connect(cb, n, 0, 0);
}

RouterConfig quiet_config() {
  RouterConfig cfg;
  cfg.pin_penalty = 0.0;
  return cfg;
}

TEST(Router, StraightNetUsesStraightDemand) {
  Design d = base_design();
  add_two_pin_net(d, {12, 112}, {108, 112});
  GlobalRouter router(d, quiet_config());
  const RouteResult r = router.route();
  EXPECT_EQ(r.segments, 1);
  for (int gx = 0; gx <= 4; ++gx) {
    EXPECT_DOUBLE_EQ(r.maps.dmd_h.at(gx, 4), 1.0);
  }
  EXPECT_DOUBLE_EQ(r.maps.dmd_v.sum(), 0.0);
  // 4 horizontal steps of 24 DBU.
  EXPECT_NEAR(r.wirelength, 4 * 24.0, 1e-9);
  EXPECT_DOUBLE_EQ(r.overflow.hof_pct, 0.0);
}

TEST(Router, DiagonalNetRoutesAsL) {
  Design d = base_design();
  add_two_pin_net(d, {12, 12}, {108, 108});
  GlobalRouter router(d, quiet_config());
  const RouteResult r = router.route();
  // L route: 4 horizontal + 4 vertical steps.
  EXPECT_NEAR(r.wirelength, 8 * 24.0, 1e-9);
  // The turning Gcell consumes both directions.
  double h = 0, v = 0;
  for (double x : r.maps.dmd_h.raw()) h += x;
  for (double x : r.maps.dmd_v.raw()) v += x;
  EXPECT_NEAR(h, 5.0, 1e-9);
  EXPECT_NEAR(v, 5.0, 1e-9);
}

TEST(Router, SameGcellNetNeedsNoRouting) {
  Design d = base_design();
  add_two_pin_net(d, {10, 10}, {14, 12});
  GlobalRouter router(d, quiet_config());
  const RouteResult r = router.route();
  EXPECT_EQ(r.segments, 0);
  EXPECT_DOUBLE_EQ(r.wirelength, 0.0);
}

TEST(Router, PinPenaltyAddsStaticDemand) {
  Design d = base_design();
  add_two_pin_net(d, {10, 10}, {14, 12});
  RouterConfig cfg;
  cfg.pin_penalty = 0.25;
  GlobalRouter router(d, cfg);
  const RouteResult r = router.route();
  EXPECT_DOUBLE_EQ(r.maps.dmd_h.at(0, 0), 0.5);
}

TEST(Router, RipUpRerouteReducesOverflow) {
  Design d = base_design();
  // Overload one row massively; there is vertical slack for detours.
  for (int i = 0; i < 150; ++i) {
    add_two_pin_net(d, {12, 112}, {228, 112});
  }
  RouterConfig no_rr = quiet_config();
  no_rr.rr_rounds = 0;
  RouterConfig rr = quiet_config();
  rr.rr_rounds = 6;
  const RouteResult before = GlobalRouter(d, no_rr).route();
  const RouteResult after = GlobalRouter(d, rr).route();
  EXPECT_GT(before.overflow.hof_pct, 0.0);
  EXPECT_GT(after.rerouted, 0);
  EXPECT_LT(after.overflow.hof_pct, before.overflow.hof_pct);
  // Detours trade wirelength for overflow.
  EXPECT_GE(after.wirelength, before.wirelength);
}

TEST(Router, MazeAvoidsZeroCapacityChannel) {
  Design d = base_design();
  // A macro wall across the middle leaves low capacity; the router should
  // still find a path and prefer going around where resources remain.
  Cell m;
  m.name = "wall";
  m.kind = CellKind::kMacro;
  m.x = 48;
  m.y = 0;
  m.width = 24;
  m.height = 216;  // leaves the top row of Gcells open
  d.add_cell(m);
  for (int i = 0; i < 60; ++i) {
    add_two_pin_net(d, {12, 12}, {228, 12});
  }
  RouterConfig cfg = quiet_config();
  cfg.rr_rounds = 6;
  cfg.bbox_margin = 12;
  const RouteResult r = GlobalRouter(d, cfg).route();
  // Demand crosses the wall column (2) mostly via rows with capacity;
  // total overflow should be moderate rather than the whole bundle deep.
  const RouteResult naive = [&] {
    RouterConfig c0 = quiet_config();
    c0.rr_rounds = 0;
    return GlobalRouter(d, c0).route();
  }();
  EXPECT_LE(r.overflow.total_overflow, naive.overflow.total_overflow);
}

TEST(Router, MultiPinNetsDecomposeViaRsmt) {
  Design d = base_design();
  const CellId a = add_cell_at(d, 12, 12);
  const CellId b = add_cell_at(d, 228, 12);
  const CellId c = add_cell_at(d, 120, 228);
  const NetId n = d.add_net("tri");
  d.connect(a, n, 0, 0);
  d.connect(b, n, 0, 0);
  d.connect(c, n, 0, 0);
  GlobalRouter router(d, quiet_config());
  const RouteResult r = router.route();
  EXPECT_GE(r.segments, 2);
  EXPECT_GT(r.wirelength, 0.0);
}

TEST(Router, DeterministicAcrossRuns) {
  SyntheticSpec spec;
  spec.num_cells = 300;
  spec.num_nets = 450;
  const Design d = generate_synthetic(spec);
  const RouteResult a = GlobalRouter(d, RouterConfig{}).route();
  const RouteResult b = GlobalRouter(d, RouterConfig{}).route();
  EXPECT_DOUBLE_EQ(a.wirelength, b.wirelength);
  EXPECT_DOUBLE_EQ(a.overflow.hof_pct, b.overflow.hof_pct);
  EXPECT_EQ(a.rerouted, b.rerouted);
}

TEST(Router, WirelengthLowerBoundedByHpwl) {
  SyntheticSpec spec;
  spec.num_cells = 200;
  spec.num_nets = 300;
  const Design d = generate_synthetic(spec);
  const RouteResult r = GlobalRouter(d, RouterConfig{}).route();
  // Each segment is at least as long as its Gcell-grid Manhattan span, so
  // the routed WL in Gcell units is bounded below by roughly the HPWL on
  // the Gcell grid; sanity-check that the routed WL is positive and not
  // absurdly below HPWL.
  EXPECT_GT(r.wirelength, 0.2 * d.total_hpwl());
}

}  // namespace
}  // namespace puffer
