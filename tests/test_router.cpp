// Tests for the evaluation global router: demand accounting, pattern
// routing, batched negotiated rip-up-and-reroute (bit-identical across
// thread counts), the bucket-queue maze kernel, config validation, and
// metric reporting.
#include <gtest/gtest.h>

#include <stdexcept>

#include "common/parallel.h"
#include "common/rng.h"
#include "congestion/demand_ledger.h"
#include "io/synthetic.h"
#include "router/global_router.h"
#include "router/maze.h"
#include "router/path_use.h"

namespace puffer {
namespace {

Design base_design() {
  Design d;
  d.die = {0, 0, 240, 240};
  d.tech = Technology::make_default(1.0, 8.0, 8);
  for (int r = 0; r < 30; ++r) d.rows.push_back({r * 8.0, 0, 240, 1.0, 8.0});
  return d;
}

CellId add_cell_at(Design& d, double x, double y) {
  Cell c;
  c.name = "c" + std::to_string(d.cells.size());
  c.width = 1;
  c.height = 8;
  c.x = x;
  c.y = y;
  return d.add_cell(std::move(c));
}

void add_two_pin_net(Design& d, Point a, Point b) {
  const CellId ca = add_cell_at(d, a.x, a.y);
  const CellId cb = add_cell_at(d, b.x, b.y);
  const NetId n = d.add_net("n" + std::to_string(d.nets.size()));
  d.connect(ca, n, 0, 0);
  d.connect(cb, n, 0, 0);
}

RouterConfig quiet_config() {
  RouterConfig cfg;
  cfg.pin_penalty = 0.0;
  return cfg;
}

TEST(Router, StraightNetUsesStraightDemand) {
  Design d = base_design();
  add_two_pin_net(d, {12, 112}, {108, 112});
  GlobalRouter router(d, quiet_config());
  const RouteResult r = router.route();
  EXPECT_EQ(r.segments, 1);
  for (int gx = 0; gx <= 4; ++gx) {
    EXPECT_DOUBLE_EQ(r.maps.dmd_h.at(gx, 4), 1.0);
  }
  EXPECT_DOUBLE_EQ(r.maps.dmd_v.sum(), 0.0);
  // 4 horizontal steps of 24 DBU.
  EXPECT_NEAR(r.wirelength, 4 * 24.0, 1e-9);
  EXPECT_DOUBLE_EQ(r.overflow.hof_pct, 0.0);
}

TEST(Router, DiagonalNetRoutesAsL) {
  Design d = base_design();
  add_two_pin_net(d, {12, 12}, {108, 108});
  GlobalRouter router(d, quiet_config());
  const RouteResult r = router.route();
  // L route: 4 horizontal + 4 vertical steps.
  EXPECT_NEAR(r.wirelength, 8 * 24.0, 1e-9);
  // The turning Gcell consumes both directions.
  double h = 0, v = 0;
  for (double x : r.maps.dmd_h.raw()) h += x;
  for (double x : r.maps.dmd_v.raw()) v += x;
  EXPECT_NEAR(h, 5.0, 1e-9);
  EXPECT_NEAR(v, 5.0, 1e-9);
}

TEST(Router, SameGcellNetNeedsNoRouting) {
  Design d = base_design();
  add_two_pin_net(d, {10, 10}, {14, 12});
  GlobalRouter router(d, quiet_config());
  const RouteResult r = router.route();
  EXPECT_EQ(r.segments, 0);
  EXPECT_DOUBLE_EQ(r.wirelength, 0.0);
}

TEST(Router, PinPenaltyAddsStaticDemand) {
  Design d = base_design();
  add_two_pin_net(d, {10, 10}, {14, 12});
  RouterConfig cfg;
  cfg.pin_penalty = 0.25;
  GlobalRouter router(d, cfg);
  const RouteResult r = router.route();
  EXPECT_DOUBLE_EQ(r.maps.dmd_h.at(0, 0), 0.5);
}

TEST(Router, RipUpRerouteReducesOverflow) {
  Design d = base_design();
  // Overload one row massively; there is vertical slack for detours.
  for (int i = 0; i < 150; ++i) {
    add_two_pin_net(d, {12, 112}, {228, 112});
  }
  RouterConfig no_rr = quiet_config();
  no_rr.rr_rounds = 0;
  RouterConfig rr = quiet_config();
  rr.rr_rounds = 6;
  const RouteResult before = GlobalRouter(d, no_rr).route();
  const RouteResult after = GlobalRouter(d, rr).route();
  EXPECT_GT(before.overflow.hof_pct, 0.0);
  EXPECT_GT(after.rerouted, 0);
  EXPECT_LT(after.overflow.hof_pct, before.overflow.hof_pct);
  // Detours trade wirelength for overflow.
  EXPECT_GE(after.wirelength, before.wirelength);
}

TEST(Router, MazeAvoidsZeroCapacityChannel) {
  Design d = base_design();
  // A macro wall across the middle leaves low capacity; the router should
  // still find a path and prefer going around where resources remain.
  Cell m;
  m.name = "wall";
  m.kind = CellKind::kMacro;
  m.x = 48;
  m.y = 0;
  m.width = 24;
  m.height = 216;  // leaves the top row of Gcells open
  d.add_cell(m);
  for (int i = 0; i < 60; ++i) {
    add_two_pin_net(d, {12, 12}, {228, 12});
  }
  RouterConfig cfg = quiet_config();
  cfg.rr_rounds = 6;
  cfg.bbox_margin = 12;
  const RouteResult r = GlobalRouter(d, cfg).route();
  // Demand crosses the wall column (2) mostly via rows with capacity;
  // total overflow should be moderate rather than the whole bundle deep.
  const RouteResult naive = [&] {
    RouterConfig c0 = quiet_config();
    c0.rr_rounds = 0;
    return GlobalRouter(d, c0).route();
  }();
  EXPECT_LE(r.overflow.total_overflow, naive.overflow.total_overflow);
}

TEST(Router, MultiPinNetsDecomposeViaRsmt) {
  Design d = base_design();
  const CellId a = add_cell_at(d, 12, 12);
  const CellId b = add_cell_at(d, 228, 12);
  const CellId c = add_cell_at(d, 120, 228);
  const NetId n = d.add_net("tri");
  d.connect(a, n, 0, 0);
  d.connect(b, n, 0, 0);
  d.connect(c, n, 0, 0);
  GlobalRouter router(d, quiet_config());
  const RouteResult r = router.route();
  EXPECT_GE(r.segments, 2);
  EXPECT_GT(r.wirelength, 0.0);
}

TEST(Router, DeterministicAcrossRuns) {
  SyntheticSpec spec;
  spec.num_cells = 300;
  spec.num_nets = 450;
  const Design d = generate_synthetic(spec);
  const RouteResult a = GlobalRouter(d, RouterConfig{}).route();
  const RouteResult b = GlobalRouter(d, RouterConfig{}).route();
  EXPECT_DOUBLE_EQ(a.wirelength, b.wirelength);
  EXPECT_DOUBLE_EQ(a.overflow.hof_pct, b.overflow.hof_pct);
  EXPECT_EQ(a.rerouted, b.rerouted);
}

// Restores the default worker count after each test so suites sharing
// the binary are unaffected.
class RouterParallelTest : public ::testing::Test {
 protected:
  ~RouterParallelTest() override { par::set_num_threads(0); }
};

// The batched rip-up-and-reroute contract: maze candidates are computed
// against the frozen round-start field with per-thread arenas and all
// demand mutations happen on the serial commit path, so RouteResult is
// bit-identical for any PUFFER_THREADS. This is also the regression
// test for the seed's shared gscore/visit_mark/parent maze scratch,
// which raced once the maze phase went parallel.
TEST_F(RouterParallelTest, BitIdenticalAcrossThreadCounts) {
  SyntheticSpec spec;
  spec.name = "router_threads";
  spec.num_cells = 360;
  spec.num_nets = 540;
  spec.num_macros = 2;
  spec.seed = 23;
  spec.h_capacity_factor = 0.55;  // starve the supply so RRR engages
  spec.v_capacity_factor = 0.55;
  const Design d = generate_synthetic(spec);
  RouterConfig cfg;
  cfg.rr_rounds = 4;

  par::set_num_threads(1);
  const RouteResult ref = GlobalRouter(d, cfg).route();
  EXPECT_GT(ref.rounds_used, 0) << "workload must exercise the RRR phase";
  EXPECT_GT(ref.rerouted, 0);
  for (const int threads : {2, 8}) {
    par::set_num_threads(threads);
    const RouteResult r = GlobalRouter(d, cfg).route();
    EXPECT_EQ(demand_checksum(r.maps), demand_checksum(ref.maps))
        << "threads=" << threads;
    EXPECT_EQ(r.wirelength, ref.wirelength) << "threads=" << threads;
    EXPECT_EQ(r.overflow.hof_pct, ref.overflow.hof_pct);
    EXPECT_EQ(r.overflow.vof_pct, ref.overflow.vof_pct);
    EXPECT_EQ(r.rerouted, ref.rerouted);
    EXPECT_EQ(r.rounds_used, ref.rounds_used);
    EXPECT_EQ(r.segments, ref.segments);
  }
}

// Demand accounting round trip: every contribution is +/-1.0 on a
// quantized base (multiples of kDemandQuantum), which is exact IEEE
// integer arithmetic -- so apply followed by rip restores the maps
// bit-identically, in any interleaving. This is the invariant the
// batched commit's rip/re-apply arithmetic rests on.
TEST(Router, ApplyPathDemandRoundTripIsExact) {
  const int nx = 24, ny = 20;
  RoutingMaps maps;
  maps.dmd_h = Map2D<double>(nx, ny);
  maps.dmd_v = Map2D<double>(nx, ny);
  Rng rng(99);
  for (double& v : maps.dmd_h.raw()) v = quantize_demand(rng.uniform(0.0, 6.0));
  for (double& v : maps.dmd_v.raw()) v = quantize_demand(rng.uniform(0.0, 6.0));
  const std::uint64_t before = demand_checksum(maps);

  // Random 4-connected walks (revisits allowed -- apply_path_demand
  // counts every visit).
  std::vector<std::vector<GcellIndex>> paths;
  for (int p = 0; p < 60; ++p) {
    std::vector<GcellIndex> path;
    GcellIndex g{static_cast<int>(rng.uniform_int(0, nx - 1)),
                 static_cast<int>(rng.uniform_int(0, ny - 1))};
    path.push_back(g);
    const int steps = static_cast<int>(rng.uniform_int(1, 30));
    for (int s = 0; s < steps; ++s) {
      GcellIndex n = path.back();
      switch (rng.uniform_int(0, 3)) {
        case 0: n.gx = std::min(nx - 1, n.gx + 1); break;
        case 1: n.gx = std::max(0, n.gx - 1); break;
        case 2: n.gy = std::min(ny - 1, n.gy + 1); break;
        default: n.gy = std::max(0, n.gy - 1); break;
      }
      if (n.gx != path.back().gx || n.gy != path.back().gy) path.push_back(n);
    }
    paths.push_back(std::move(path));
  }
  for (const auto& p : paths) {
    apply_path_demand(p, maps.dmd_h, maps.dmd_v, +1.0);
  }
  EXPECT_NE(demand_checksum(maps), before);
  // Rip in a different order than the apply.
  for (auto it = paths.rbegin(); it != paths.rend(); ++it) {
    apply_path_demand(*it, maps.dmd_h, maps.dmd_v, -1.0);
  }
  EXPECT_EQ(demand_checksum(maps), before);
}

TEST(Maze, PathIsFourConnectedWithinWindow) {
  MazeWindow w{3, 5, 14, 11};
  MazeArena arena;
  const auto uniform = [](int, int, std::int32_t& qch, std::int32_t& qcv) {
    qch = kQCostScale;
    qcv = kQCostScale;
  };
  const GcellIndex a{4, 6}, b{15, 14};
  const auto path = maze_route(w, a, b, 13, arena, uniform);
  ASSERT_GE(path.size(), 2u);
  EXPECT_EQ(path.front().gx, a.gx);
  EXPECT_EQ(path.front().gy, a.gy);
  EXPECT_EQ(path.back().gx, b.gx);
  EXPECT_EQ(path.back().gy, b.gy);
  for (const GcellIndex& g : path) {
    EXPECT_TRUE(w.contains(g.gx, g.gy))
        << "(" << g.gx << "," << g.gy << ") outside window";
  }
  for (std::size_t i = 1; i < path.size(); ++i) {
    const int dx = std::abs(path[i].gx - path[i - 1].gx);
    const int dy = std::abs(path[i].gy - path[i - 1].gy);
    EXPECT_EQ(dx + dy, 1) << "step " << i << " is not a unit move";
  }
  // Uniform costs: the shortest path has exactly the Manhattan length.
  EXPECT_EQ(static_cast<int>(path.size()) - 1,
            std::abs(b.gx - a.gx) + std::abs(b.gy - a.gy));
}

TEST(Maze, AvoidsExpensiveWallAndReusesArena) {
  MazeWindow w{0, 0, 15, 9};
  MazeArena arena;
  // A vertical wall at gx=7 except the top row.
  const auto walled = [](int gx, int gy, std::int32_t& qch, std::int32_t& qcv) {
    const bool wall = gx == 7 && gy < 8;
    qch = wall ? kQCostMax : kQCostScale;
    qcv = wall ? kQCostMax : kQCostScale;
  };
  const GcellIndex a{1, 1}, b{13, 1};
  for (int rep = 0; rep < 3; ++rep) {  // arena reuse across searches
    const auto path = maze_route(w, a, b, 13, arena, walled);
    ASSERT_GE(path.size(), 2u);
    for (const GcellIndex& g : path) {
      EXPECT_FALSE(g.gx == 7 && g.gy < 8) << "path crosses the wall";
    }
    EXPECT_EQ(path.back().gx, b.gx);
    EXPECT_EQ(path.back().gy, b.gy);
  }
}

TEST(Maze, UnreachableGoalReturnsEmpty) {
  MazeWindow w{0, 0, 5, 5};
  MazeArena arena;
  const auto uniform = [](int, int, std::int32_t& qch, std::int32_t& qcv) {
    qch = kQCostScale;
    qcv = kQCostScale;
  };
  // Goal outside the window.
  EXPECT_TRUE(maze_route(w, {0, 0}, {9, 9}, 0, arena, uniform).empty());
  // Degenerate start == goal.
  const auto self = maze_route(w, {2, 2}, {2, 2}, 0, arena, uniform);
  ASSERT_EQ(self.size(), 1u);
  EXPECT_EQ(self.front().gx, 2);
}

TEST(Router, ConfigValidationClampsAndRejects) {
  RouterConfig cfg;
  cfg.rr_rounds = -3;
  cfg.bbox_margin = -2;
  cfg.turn_cost = -0.5;
  const RouterConfig v = validate_router_config(cfg);
  EXPECT_EQ(v.rr_rounds, 0);
  EXPECT_EQ(v.bbox_margin, 0);
  EXPECT_EQ(v.turn_cost, 0.0);

  RouterConfig bad;
  bad.rows_per_gcell = 0.0;
  EXPECT_THROW(validate_router_config(bad), std::invalid_argument);
  bad.rows_per_gcell = -2.0;
  EXPECT_THROW(validate_router_config(bad), std::invalid_argument);

  // The constructor validates too: clamped knobs route fine...
  Design d = base_design();
  add_two_pin_net(d, {12, 112}, {108, 112});
  RouterConfig neg = quiet_config();
  neg.rr_rounds = -5;
  neg.bbox_margin = -1;
  const RouteResult r = GlobalRouter(d, neg).route();
  EXPECT_EQ(r.segments, 1);
  EXPECT_EQ(r.rounds_used, 0);
  // ...and irreparable ones throw.
  RouterConfig bad2 = quiet_config();
  bad2.rows_per_gcell = -1.0;
  EXPECT_THROW(GlobalRouter(d, bad2), std::invalid_argument);
}

TEST(Router, ReportsStageMetrics) {
  Design d = base_design();
  for (int i = 0; i < 150; ++i) {
    add_two_pin_net(d, {12, 112}, {228, 112});
  }
  RouterConfig cfg = quiet_config();
  cfg.rr_rounds = 6;
  const RouteResult r = GlobalRouter(d, cfg).route();
  EXPECT_GT(r.rounds_used, 0);
  EXPECT_LE(r.rounds_used, cfg.rr_rounds);
  EXPECT_GT(r.route_time_s, 0.0);
  EXPECT_GT(r.rrr_time_s, 0.0);
  EXPECT_LE(r.rrr_time_s, r.route_time_s);
}

TEST(Router, WirelengthLowerBoundedByHpwl) {
  SyntheticSpec spec;
  spec.num_cells = 200;
  spec.num_nets = 300;
  const Design d = generate_synthetic(spec);
  const RouteResult r = GlobalRouter(d, RouterConfig{}).route();
  // Each segment is at least as long as its Gcell-grid Manhattan span, so
  // the routed WL in Gcell units is bounded below by roughly the HPWL on
  // the Gcell grid; sanity-check that the routed WL is positive and not
  // absurdly below HPWL.
  EXPECT_GT(r.wirelength, 0.2 * d.total_hpwl());
}

}  // namespace
}  // namespace puffer
