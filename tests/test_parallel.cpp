// Determinism suite for the parallel runtime (common/parallel.h) and its
// users: results must be bit-identical across PUFFER_THREADS=1,2,8 and
// across repeated runs, because the chunk decomposition -- not the worker
// count -- fixes every floating-point fold order. Also covers the RSMT
// topology cache (rsmt/rsmt_cache.h) correctness: moved pins invalidate.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "congestion/estimator.h"
#include "core/flow.h"
#include "fft/dct.h"
#include "gp/engine.h"
#include "gp/wirelength.h"
#include "io/synthetic.h"
#include "rsmt/rsmt_cache.h"

namespace puffer {
namespace {

// Restores the default worker count after each test so suites sharing the
// binary are unaffected.
class ParallelTest : public ::testing::Test {
 protected:
  ~ParallelTest() override { par::set_num_threads(0); }
};

Design small_design(std::uint64_t seed = 17) {
  SyntheticSpec spec;
  spec.name = "par";
  spec.seed = seed;
  spec.num_cells = 400;
  spec.num_nets = 600;
  spec.num_macros = 2;
  return generate_synthetic(spec);
}

TEST_F(ParallelTest, ChunkRangesPartitionTheRange) {
  for (const std::int64_t n : {1, 7, 100, 4097}) {
    for (const std::int64_t grain : {1, 8, 1000}) {
      const int c = par::chunk_count(n, grain);
      std::int64_t expect_begin = 0;
      for (int i = 0; i < c; ++i) {
        const auto [b, e] = par::chunk_range(n, c, i);
        EXPECT_EQ(b, expect_begin);
        EXPECT_GE(e, b);
        expect_begin = e;
      }
      EXPECT_EQ(expect_begin, n);
    }
  }
}

TEST_F(ParallelTest, ChunkCountIgnoresWorkerCount) {
  par::set_num_threads(1);
  const int c1 = par::chunk_count(1000, 16);
  par::set_num_threads(8);
  EXPECT_EQ(par::chunk_count(1000, 16), c1);
}

TEST_F(ParallelTest, ParallelForVisitsEveryIndexOnce) {
  par::set_num_threads(4);
  std::vector<int> hits(1000, 0);
  par::parallel_for(0, 1000, 16, [&](std::int64_t b, std::int64_t e, int) {
    for (std::int64_t i = b; i < e; ++i) hits[static_cast<std::size_t>(i)]++;
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST_F(ParallelTest, ParallelReduceBitIdenticalAcrossThreads) {
  const auto run = [] {
    return par::parallel_reduce(0, 100000, 1024, 0.0,
                                [](std::int64_t b, std::int64_t e) {
                                  double s = 0.0;
                                  for (std::int64_t i = b; i < e; ++i) {
                                    s += std::sin(static_cast<double>(i)) /
                                         (1.0 + static_cast<double>(i));
                                  }
                                  return s;
                                });
  };
  par::set_num_threads(1);
  const double r1 = run();
  par::set_num_threads(2);
  const double r2 = run();
  par::set_num_threads(8);
  const double r8 = run();
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(r1, r8);
  EXPECT_EQ(r8, run());  // repeated run
}

TEST_F(ParallelTest, NestedParallelForRunsInline) {
  par::set_num_threads(4);
  std::vector<int> hits(256, 0);
  par::parallel_for(0, 16, 1, [&](std::int64_t ob, std::int64_t oe, int) {
    for (std::int64_t o = ob; o < oe; ++o) {
      par::parallel_for(0, 16, 1, [&](std::int64_t b, std::int64_t e, int) {
        for (std::int64_t i = b; i < e; ++i) {
          hits[static_cast<std::size_t>(o * 16 + i)]++;
        }
      });
    }
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST_F(ParallelTest, WirelengthGradientBitIdenticalAcrossThreads) {
  const Design d = small_design();
  WaWirelength wl(d);
  std::vector<double> xc, yc;
  for (CellId c : wl.movable_cells()) {
    const Cell& cell = d.cells[static_cast<std::size_t>(c)];
    xc.push_back(cell.x + cell.width * 0.5);
    yc.push_back(cell.y + cell.height * 0.5);
  }
  const auto run = [&](std::vector<double>& gx, std::vector<double>& gy) {
    return wl.evaluate(xc, yc, 4.0, gx, gy);
  };
  std::vector<double> gx1, gy1, gx2, gy2, gx8, gy8;
  par::set_num_threads(1);
  const double w1 = run(gx1, gy1);
  const double h1 = wl.hpwl(xc, yc);
  par::set_num_threads(2);
  const double w2 = run(gx2, gy2);
  par::set_num_threads(8);
  const double w8 = run(gx8, gy8);
  const double h8 = wl.hpwl(xc, yc);
  EXPECT_EQ(w1, w2);
  EXPECT_EQ(w1, w8);
  EXPECT_EQ(h1, h8);
  ASSERT_EQ(gx1.size(), gx8.size());
  for (std::size_t i = 0; i < gx1.size(); ++i) {
    EXPECT_EQ(gx1[i], gx2[i]) << "grad_x mismatch at " << i;
    EXPECT_EQ(gx1[i], gx8[i]) << "grad_x mismatch at " << i;
    EXPECT_EQ(gy1[i], gy8[i]) << "grad_y mismatch at " << i;
  }
}

TEST_F(ParallelTest, EstimatorDemandBitIdenticalAcrossThreads) {
  const Design d = small_design(23);
  const auto run = [&d](int threads) {
    par::set_num_threads(threads);
    CongestionEstimator est(d, CongestionConfig{});
    return est.estimate();
  };
  const CongestionResult r1 = run(1);
  const CongestionResult r2 = run(2);
  const CongestionResult r8 = run(8);
  EXPECT_EQ(r1.expanded_segments, r8.expanded_segments);
  ASSERT_EQ(r1.maps.dmd_h.raw().size(), r8.maps.dmd_h.raw().size());
  for (std::size_t i = 0; i < r1.maps.dmd_h.raw().size(); ++i) {
    EXPECT_EQ(r1.maps.dmd_h.raw()[i], r2.maps.dmd_h.raw()[i]);
    EXPECT_EQ(r1.maps.dmd_h.raw()[i], r8.maps.dmd_h.raw()[i]);
    EXPECT_EQ(r1.maps.dmd_v.raw()[i], r8.maps.dmd_v.raw()[i]);
  }
  // RSMT wirelength of every tree is identical as well.
  ASSERT_EQ(r1.trees.size(), r8.trees.size());
  for (std::size_t n = 0; n < r1.trees.size(); ++n) {
    EXPECT_EQ(r1.trees[n].length(), r8.trees[n].length());
  }
}

// Regression: the engine's gradient uses thread_local scratch vectors,
// and thread_local names are not lambda-captured -- pool workers used to
// resolve them to their own empty instances and crash. Only designs with
// > 4096 elements split the gradient reduce into multiple chunks, so this
// needs a larger design than the other tests.
TEST_F(ParallelTest, LargeGradientBitIdenticalAcrossThreads) {
  SyntheticSpec spec;
  spec.name = "par_large";
  spec.seed = 41;
  spec.num_cells = 4600;
  spec.num_nets = 5200;
  spec.num_macros = 4;
  const auto run = [&spec](int threads) {
    par::set_num_threads(threads);
    Design d = generate_synthetic(spec);
    initial_place(d);
    GpConfig cfg;
    cfg.max_iters = 6;
    EPlaceEngine engine(d, cfg);
    for (int i = 0; i < 5; ++i) engine.step();
    return std::make_pair(engine.last_hpwl(), engine.density_overflow());
  };
  const auto r1 = run(1);
  const auto r8 = run(8);
  EXPECT_EQ(r1.first, r8.first);
  EXPECT_EQ(r1.second, r8.second);
}

TEST_F(ParallelTest, Fft2dBitIdenticalAcrossThreads) {
  const std::size_t nx = 64, ny = 64;
  std::vector<double> data(nx * ny);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = std::sin(0.37 * static_cast<double>(i)) +
              0.1 * static_cast<double>(i % 7);
  }
  par::set_num_threads(1);
  const std::vector<double> a = dct2_2d(data, nx, ny);
  const std::vector<double> ai = idxst_dct3_2d(data, nx, ny);
  par::set_num_threads(8);
  const std::vector<double> b = dct2_2d(data, nx, ny);
  const std::vector<double> bi = idxst_dct3_2d(data, nx, ny);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]);
    EXPECT_EQ(ai[i], bi[i]);
  }
}

TEST_F(ParallelTest, FullFlowBitIdenticalAcrossThreads) {
  const auto run = [](int threads, std::vector<double>& xs) {
    Design d = small_design(31);
    PufferConfig cfg;
    cfg.gp.max_iters = 120;
    cfg.padding.xi = 2;
    cfg.num_threads = threads;
    PufferFlow flow(d, cfg);
    const FlowMetrics m = flow.run();
    for (const Cell& c : d.cells) {
      xs.push_back(c.x);
      xs.push_back(c.y);
    }
    return m;
  };
  std::vector<double> pos1, pos8;
  const FlowMetrics m1 = run(1, pos1);
  const FlowMetrics m8 = run(8, pos8);
  EXPECT_EQ(m1.hpwl_gp, m8.hpwl_gp);
  EXPECT_EQ(m1.hpwl_legal, m8.hpwl_legal);
  EXPECT_EQ(m1.padding_rounds, m8.padding_rounds);
  EXPECT_EQ(m1.padding_area, m8.padding_area);
  ASSERT_EQ(pos1.size(), pos8.size());
  for (std::size_t i = 0; i < pos1.size(); ++i) {
    EXPECT_EQ(pos1[i], pos8[i]) << "position mismatch at " << i;
  }
}

TEST_F(ParallelTest, RsmtCacheHitsOnUnchangedPins) {
  const Design d = small_design(37);
  CongestionEstimator est(d, CongestionConfig{});
  const CongestionResult r1 = est.estimate();
  const std::uint64_t misses_after_first = est.tree_cache().misses();
  EXPECT_GT(misses_after_first, 0u);  // cold cache
  EXPECT_EQ(est.tree_cache().hits(), 0u);
  const CongestionResult r2 = est.estimate();
  // Nothing moved: every net is served from the cache...
  EXPECT_EQ(est.tree_cache().misses(), misses_after_first);
  EXPECT_EQ(est.tree_cache().hits(), misses_after_first);
  // ...and the result is identical to the rebuilt one.
  for (std::size_t i = 0; i < r1.maps.dmd_h.raw().size(); ++i) {
    EXPECT_EQ(r1.maps.dmd_h.raw()[i], r2.maps.dmd_h.raw()[i]);
    EXPECT_EQ(r1.maps.dmd_v.raw()[i], r2.maps.dmd_v.raw()[i]);
  }
}

TEST_F(ParallelTest, RsmtCacheMovedPinInvalidatesEntry) {
  Design d = small_design(41);
  CongestionEstimator est(d, CongestionConfig{});
  est.estimate();
  const std::uint64_t misses1 = est.tree_cache().misses();
  // Move one movable cell far enough to change its Gcell.
  for (Cell& c : d.cells) {
    if (!c.movable()) continue;
    c.x += 40.0;
    c.y += 40.0;
    break;
  }
  est.estimate();
  // Only the moved cell's nets rebuild; everything else hits.
  const std::uint64_t misses2 = est.tree_cache().misses();
  EXPECT_GT(misses2, misses1);
  EXPECT_LT(misses2 - misses1, misses1);
  EXPECT_GT(est.tree_cache().hits(), 0u);
}

TEST_F(ParallelTest, RsmtCacheKeyQuantization) {
  RsmtCache cache(1, 1e-3);
  const std::vector<Point> pins{{1.0, 2.0}, {5.0, 7.0}};
  std::vector<Point> nudged = pins;
  nudged[0].x += 1e-5;  // below the quantum: same key
  EXPECT_EQ(cache.key_of(pins), cache.key_of(nudged));
  std::vector<Point> moved = pins;
  moved[0].x += 0.5;  // well beyond the quantum: new key
  EXPECT_NE(cache.key_of(pins), cache.key_of(moved));

  // A moved pin forces a rebuild through get_or_build as well.
  cache.get_or_build(0, pins);
  cache.get_or_build(0, pins);
  EXPECT_EQ(cache.hits(), 1u);
  cache.get_or_build(0, moved);
  EXPECT_EQ(cache.misses(), 2u);
  // The rebuilt tree reflects the new positions, not the cached ones.
  const RsmtTree& t = cache.get_or_build(0, moved);
  EXPECT_EQ(t.points[static_cast<std::size_t>(t.pin_point[0])].pos.x,
            moved[0].x);
}

TEST_F(ParallelTest, DisabledCacheAlwaysRebuilds) {
  CongestionConfig cfg;
  cfg.enable_rsmt_cache = false;
  const Design d = small_design(43);
  CongestionEstimator est(d, cfg);
  est.estimate();
  est.estimate();
  EXPECT_EQ(est.tree_cache().hits(), 0u);
}

TEST_F(ParallelTest, WorkerLeaseRespectsBudget) {
  par::set_num_threads(4);
  EXPECT_EQ(par::lease_budget_available(), 4);
  {
    par::WorkerLease a(3);
    EXPECT_EQ(a.workers(), 3);
    EXPECT_EQ(par::lease_budget_available(), 1);
    {
      // The budget is exhausted down to the owning thread: a second lease
      // on this thread's remaining budget gets only itself.
      par::WorkerLease b(3);
      EXPECT_EQ(b.workers(), 1);
      EXPECT_EQ(par::lease_budget_available(), 0);
    }
    EXPECT_EQ(par::lease_budget_available(), 1);
  }
  EXPECT_EQ(par::lease_budget_available(), 4);

  // A lease can never be granted less than the owning thread itself,
  // even from an empty budget.
  par::set_num_threads(1);
  par::WorkerLease c(8);
  EXPECT_EQ(c.workers(), 1);
}

TEST_F(ParallelTest, WorkerLeaseDoesNotChangeResults) {
  // Identical fold result with and without a lease, for several grants:
  // the lease only moves where chunks execute.
  const std::int64_t n = 10007;
  const auto fold = [&] {
    return par::parallel_reduce(
        0, n, 64, 0.0,
        [](std::int64_t b, std::int64_t e) {
          double s = 0.0;
          for (std::int64_t i = b; i < e; ++i) {
            s += std::sin(static_cast<double>(i)) * 1e-3;
          }
          return s;
        });
  };
  par::set_num_threads(4);
  const double base = fold();
  for (const int want : {1, 2, 4}) {
    par::WorkerLease lease(want);
    const double leased = fold();
    EXPECT_EQ(leased, base);
  }
}

TEST_F(ParallelTest, ConcurrentLeasedSessionsMatchSerial) {
  // K threads, each holding a lease and running the same deterministic
  // kernel, produce exactly the serial result.
  par::set_num_threads(4);
  const std::int64_t n = 4096;
  const auto kernel = [&](std::uint64_t salt) {
    std::vector<std::uint64_t> out(static_cast<std::size_t>(n), 0);
    par::parallel_for(0, n, 32, [&](std::int64_t b, std::int64_t e, int) {
      for (std::int64_t i = b; i < e; ++i) {
        std::uint64_t h = static_cast<std::uint64_t>(i) * 0x9e3779b97f4a7c15ULL;
        h ^= salt + (h >> 29);
        out[static_cast<std::size_t>(i)] = h * 0xbf58476d1ce4e5b9ULL;
      }
    });
    std::uint64_t sum = 0;
    for (const std::uint64_t v : out) sum += v;
    return sum;
  };
  std::vector<std::uint64_t> serial(4);
  for (std::uint64_t s = 0; s < 4; ++s) serial[s] = kernel(s);

  std::vector<std::uint64_t> concurrent(4);
  std::vector<std::thread> threads;
  for (std::uint64_t s = 0; s < 4; ++s) {
    threads.emplace_back([&, s] {
      par::WorkerLease lease(2);
      concurrent[s] = kernel(s);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(concurrent, serial);
}

TEST_F(ParallelTest, KeepWarmScopeDoesNotChangeResults) {
  // Back-to-back kernels inside a keep-warm region (the GP loop shape)
  // fold to exactly the cold-pool result. Force the spin path with an
  // explicit budget so the test exercises it even when the pool
  // oversubscribes the hardware (where the auto policy disables it), and
  // run enough kernel rounds that workers hit both the spin-hit and the
  // spin-timeout-then-park paths. Runs under TSAN in the sanitizer lane.
  par::set_num_threads(4);
  const std::int64_t n = 10007;
  const auto fold = [&] {
    double total = 0.0;
    for (int round = 0; round < 50; ++round) {
      total += par::parallel_reduce(
          0, n, 64, 0.0, [round](std::int64_t b, std::int64_t e) {
            double s = 0.0;
            for (std::int64_t i = b; i < e; ++i) {
              s += std::sin(static_cast<double>(i + round)) * 1e-3;
            }
            return s;
          });
    }
    return total;
  };
  const double cold = fold();

  par::set_warm_spin_iters(2000);
  {
    par::KeepWarmScope warm;
    EXPECT_EQ(fold(), cold);
    {
      par::KeepWarmScope nested;  // scopes nest (a counter)
      EXPECT_EQ(fold(), cold);
    }
    EXPECT_EQ(fold(), cold);
  }
  // Spinning disabled entirely: still the same bits.
  par::set_warm_spin_iters(0);
  {
    par::KeepWarmScope warm;
    EXPECT_EQ(fold(), cold);
  }
  par::set_warm_spin_iters(-1);  // restore the auto policy
  EXPECT_EQ(fold(), cold);
}

}  // namespace
}  // namespace puffer
