// Unit and property tests for the planar geometry primitives.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "geometry/geometry.h"

namespace puffer {
namespace {

TEST(Point, Arithmetic) {
  const Point a{1, 2}, b{3, 5};
  EXPECT_EQ((a + b), (Point{4, 7}));
  EXPECT_EQ((b - a), (Point{2, 3}));
  EXPECT_EQ((a * 2.0), (Point{2, 4}));
}

TEST(Point, ManhattanDistance) {
  EXPECT_DOUBLE_EQ(manhattan({0, 0}, {3, 4}), 7.0);
  EXPECT_DOUBLE_EQ(manhattan({3, 4}, {0, 0}), 7.0);
  EXPECT_DOUBLE_EQ(manhattan({1, 1}, {1, 1}), 0.0);
}

TEST(Interval, BasicProperties) {
  const Interval i{2, 5};
  EXPECT_FALSE(i.empty());
  EXPECT_DOUBLE_EQ(i.length(), 3.0);
  EXPECT_TRUE(i.contains(2.0));
  EXPECT_TRUE(i.contains(5.0));
  EXPECT_FALSE(i.contains(5.1));
  EXPECT_TRUE(Interval{}.empty());
  EXPECT_DOUBLE_EQ(Interval{}.length(), 0.0);
}

TEST(Interval, Intersection) {
  const Interval a{0, 4}, b{2, 6}, c{5, 7};
  EXPECT_DOUBLE_EQ(a.intersect(b).length(), 2.0);
  EXPECT_TRUE(a.intersect(c).empty());
}

TEST(Rect, AreaWidthHeight) {
  const Rect r{0, 0, 4, 3};
  EXPECT_DOUBLE_EQ(r.width(), 4.0);
  EXPECT_DOUBLE_EQ(r.height(), 3.0);
  EXPECT_DOUBLE_EQ(r.area(), 12.0);
  EXPECT_EQ(r.center(), (Point{2, 1.5}));
  EXPECT_TRUE(Rect{}.empty());
  EXPECT_DOUBLE_EQ(Rect{}.area(), 0.0);
}

TEST(Rect, BoundingOfTwoPoints) {
  const Rect r = Rect::bounding({5, 1}, {2, 4});
  EXPECT_DOUBLE_EQ(r.xlo, 2.0);
  EXPECT_DOUBLE_EQ(r.ylo, 1.0);
  EXPECT_DOUBLE_EQ(r.xhi, 5.0);
  EXPECT_DOUBLE_EQ(r.yhi, 4.0);
}

TEST(Rect, OverlapArea) {
  const Rect a{0, 0, 4, 4};
  EXPECT_DOUBLE_EQ(a.overlap_area({2, 2, 6, 6}), 4.0);
  EXPECT_DOUBLE_EQ(a.overlap_area({4, 4, 6, 6}), 0.0);  // touching edges
  EXPECT_DOUBLE_EQ(a.overlap_area({-1, -1, 5, 5}), 16.0);  // containment
  EXPECT_DOUBLE_EQ(a.overlap_area({10, 10, 12, 12}), 0.0);
}

TEST(Rect, ExpandAndClamp) {
  const Rect r{2, 2, 4, 4};
  const Rect e = r.expanded(1.0);
  EXPECT_DOUBLE_EQ(e.xlo, 1.0);
  EXPECT_DOUBLE_EQ(e.yhi, 5.0);
  const Rect c = e.clamped({0, 0, 4.5, 10});
  EXPECT_DOUBLE_EQ(c.xhi, 4.5);
  EXPECT_DOUBLE_EQ(c.xlo, 1.0);
}

TEST(Rect, IncludeGrowsToCover) {
  Rect r;
  r.include({3, 4});
  EXPECT_DOUBLE_EQ(r.area(), 0.0);
  EXPECT_FALSE(r.empty());
  r.include({1, 7});
  EXPECT_DOUBLE_EQ(r.xlo, 1.0);
  EXPECT_DOUBLE_EQ(r.yhi, 7.0);
  EXPECT_TRUE(r.contains({2, 5}));
}

TEST(Rect, ContainsBoundaryInclusive) {
  const Rect r{0, 0, 2, 2};
  EXPECT_TRUE(r.contains({0, 0}));
  EXPECT_TRUE(r.contains({2, 2}));
  EXPECT_FALSE(r.contains({2.001, 1}));
}

TEST(Clamp, Basics) {
  EXPECT_DOUBLE_EQ(clamp(5.0, 0.0, 3.0), 3.0);
  EXPECT_DOUBLE_EQ(clamp(-1.0, 0.0, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(clamp(2.0, 0.0, 3.0), 2.0);
}

// Property: overlap is symmetric and bounded by both areas.
TEST(RectProperty, OverlapSymmetricAndBounded) {
  Rng rng(99);
  for (int i = 0; i < 500; ++i) {
    const Rect a = Rect::bounding({rng.uniform(0, 10), rng.uniform(0, 10)},
                                  {rng.uniform(0, 10), rng.uniform(0, 10)});
    const Rect b = Rect::bounding({rng.uniform(0, 10), rng.uniform(0, 10)},
                                  {rng.uniform(0, 10), rng.uniform(0, 10)});
    const double ab = a.overlap_area(b);
    EXPECT_DOUBLE_EQ(ab, b.overlap_area(a));
    EXPECT_LE(ab, a.area() + 1e-12);
    EXPECT_LE(ab, b.area() + 1e-12);
    EXPECT_GE(ab, 0.0);
  }
}

// Property: manhattan satisfies the triangle inequality.
TEST(PointProperty, TriangleInequality) {
  Rng rng(123);
  for (int i = 0; i < 500; ++i) {
    const Point a{rng.uniform(-5, 5), rng.uniform(-5, 5)};
    const Point b{rng.uniform(-5, 5), rng.uniform(-5, 5)};
    const Point c{rng.uniform(-5, 5), rng.uniform(-5, 5)};
    EXPECT_LE(manhattan(a, c), manhattan(a, b) + manhattan(b, c) + 1e-12);
  }
}

}  // namespace
}  // namespace puffer
