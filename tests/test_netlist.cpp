// Tests for the design database and technology model.
#include <gtest/gtest.h>

#include "netlist/design.h"

namespace puffer {
namespace {

// A small design: two movable cells, one macro, one terminal, one net
// connecting everything.
Design make_small() {
  Design d;
  d.name = "small";
  d.die = {0, 0, 100, 80};
  d.tech = Technology::make_default(1.0, 8.0);
  for (int r = 0; r < 10; ++r) {
    d.rows.push_back({r * 8.0, 0.0, 100, 1.0, 8.0});
  }

  Cell a;
  a.name = "a";
  a.width = 4;
  a.height = 8;
  a.x = 10;
  a.y = 8;
  const CellId ca = d.add_cell(a);

  Cell b;
  b.name = "b";
  b.width = 2;
  b.height = 8;
  b.x = 50;
  b.y = 24;
  const CellId cb = d.add_cell(b);

  Cell m;
  m.name = "m";
  m.kind = CellKind::kMacro;
  m.width = 20;
  m.height = 24;
  m.x = 70;
  m.y = 40;
  const CellId cm = d.add_cell(m);

  Cell t;
  t.name = "t";
  t.kind = CellKind::kTerminal;
  t.x = 0;
  t.y = 0;
  const CellId ct = d.add_cell(t);

  const NetId n = d.add_net("n0");
  d.connect(ca, n, 2, 4);
  d.connect(cb, n, 1, 4);
  d.connect(cm, n, 0, 12);
  d.connect(ct, n, 0, 0);
  return d;
}

TEST(Design, CountsAndKinds) {
  const Design d = make_small();
  EXPECT_EQ(d.cells.size(), 4u);
  EXPECT_EQ(d.num_movable(), 2u);
  EXPECT_EQ(d.num_macros(), 1u);
  EXPECT_EQ(d.num_movable_pins(), 2u);
  EXPECT_EQ(d.pins.size(), 4u);
}

TEST(Design, PinPositions) {
  const Design d = make_small();
  // Cell a at (10, 8) with offset (2, 4).
  EXPECT_EQ(d.pin_position(0), (Point{12, 12}));
  // Terminal at origin.
  EXPECT_EQ(d.pin_position(3), (Point{0, 0}));
}

TEST(Design, NetHpwl) {
  const Design d = make_small();
  // Pins: (12,12), (51,28), (70,52), (0,0) -> bbox 70 x 52.
  EXPECT_DOUBLE_EQ(d.net_hpwl(0), 70.0 + 52.0);
  EXPECT_DOUBLE_EQ(d.total_hpwl(), 122.0);
}

TEST(Design, HpwlRespectsNetWeight) {
  Design d = make_small();
  d.nets[0].weight = 2.5;
  EXPECT_DOUBLE_EQ(d.total_hpwl(), 2.5 * 122.0);
}

TEST(Design, DegenerateNetsHaveZeroHpwl) {
  Design d = make_small();
  const NetId n1 = d.add_net("single");
  d.connect(0, n1, 0, 0);
  EXPECT_DOUBLE_EQ(d.net_hpwl(n1), 0.0);
  const NetId n2 = d.add_net("empty");
  EXPECT_DOUBLE_EQ(d.net_hpwl(n2), 0.0);
}

TEST(Design, MovableAreaAndUtilization) {
  const Design d = make_small();
  EXPECT_DOUBLE_EQ(d.movable_area(), 4 * 8 + 2 * 8.0);
  const double free = 100.0 * 80.0 - 20.0 * 24.0;
  EXPECT_NEAR(d.utilization(), 48.0 / free, 1e-12);
}

TEST(Design, ValidatePassesOnConsistentDesign) {
  EXPECT_EQ(make_small().validate(), "");
}

TEST(Design, ValidateCatchesBrokenBackPointer) {
  Design d = make_small();
  d.pins[0].cell = 1;  // now cell 0's pin list points to a pin owned by 1
  EXPECT_NE(d.validate(), "");
}

TEST(Design, ValidateCatchesBadNetId) {
  Design d = make_small();
  d.pins[1].net = 99;
  EXPECT_NE(d.validate(), "");
}

TEST(Design, ClampToDie) {
  Design d = make_small();
  d.cells[0].x = -5;
  d.cells[0].y = 1000;
  d.clamp_to_die(0);
  EXPECT_DOUBLE_EQ(d.cells[0].x, 0.0);
  EXPECT_DOUBLE_EQ(d.cells[0].y, 80.0 - 8.0);
}

TEST(Cell, RectAndCenter) {
  Cell c;
  c.width = 4;
  c.height = 8;
  c.x = 10;
  c.y = 20;
  EXPECT_DOUBLE_EQ(c.rect().area(), 32.0);
  EXPECT_EQ(c.center(), (Point{12, 24}));
}

TEST(Technology, DefaultStackAlternatesDirections) {
  const Technology t = Technology::make_default(1.0, 8.0, 6);
  ASSERT_EQ(t.layers.size(), 6u);
  EXPECT_EQ(t.layers[0].dir, RouteDir::kHorizontal);
  EXPECT_EQ(t.layers[1].dir, RouteDir::kVertical);
  EXPECT_EQ(t.layers[5].dir, RouteDir::kVertical);
}

TEST(Technology, TrackDensityPositiveAndBalanced) {
  const Technology t = Technology::make_default(1.0, 8.0, 8);
  const double h = t.track_density(RouteDir::kHorizontal);
  const double v = t.track_density(RouteDir::kVertical);
  EXPECT_GT(h, 0.0);
  EXPECT_NEAR(h, v, 0.3 * h);  // alternating stack is roughly balanced
}

TEST(Technology, MacroBlockedDensityIsLess) {
  const Technology t = Technology::make_default(1.0, 8.0, 8);
  EXPECT_LT(t.track_density_over_macros(RouteDir::kHorizontal),
            t.track_density(RouteDir::kHorizontal));
  EXPECT_GT(t.track_density_over_macros(RouteDir::kHorizontal), 0.0);
}

TEST(Technology, PitchIsWidthPlusSpacing) {
  MetalLayer l;
  l.wire_width = 0.4;
  l.wire_spacing = 0.6;
  EXPECT_DOUBLE_EQ(l.pitch(), 1.0);
}

TEST(Row, Extent) {
  const Row r{5.0, 2.0, 10, 1.5, 8.0};
  EXPECT_DOUBLE_EQ(r.x_hi(), 2.0 + 15.0);
}

}  // namespace
}  // namespace puffer
