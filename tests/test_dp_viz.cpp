// Tests for the detailed-placement extension and the SVG exporter.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "dp/detailed_place.h"
#include "io/synthetic.h"
#include "legal/abacus.h"
#include "legal/legality.h"
#include "viz/svg.h"

namespace puffer {
namespace {

Design base_design(double die_w = 160, double die_h = 32) {
  Design d;
  d.die = {0, 0, die_w, die_h};
  d.tech = Technology::make_default(1.0, 8.0, 8);
  const int rows = static_cast<int>(die_h / 8.0);
  for (int r = 0; r < rows; ++r) {
    d.rows.push_back({r * 8.0, 0, static_cast<int>(die_w), 1.0, 8.0});
  }
  return d;
}

CellId add_cell_at(Design& d, double x, double y, double w = 2.0) {
  Cell c;
  c.name = "c" + std::to_string(d.cells.size());
  c.width = w;
  c.height = 8;
  c.x = x;
  c.y = y;
  return d.add_cell(std::move(c));
}

TEST(DetailedPlace, AdjacentReorderFixesCrossedPair) {
  Design d = base_design();
  // a at x=10 connects to a terminal at x=100; b at x=20 connects to a
  // terminal at x=0: swapping their order obviously helps.
  const CellId a = add_cell_at(d, 10, 0, 4);
  const CellId b = add_cell_at(d, 20, 0, 4);
  Cell t0;
  t0.name = "t0";
  t0.kind = CellKind::kTerminal;
  t0.x = 100;
  t0.y = 0;
  const CellId right = d.add_cell(t0);
  Cell t1 = t0;
  t1.name = "t1";
  t1.x = 0;
  const CellId left = d.add_cell(t1);
  const NetId n0 = d.add_net("n0");
  d.connect(a, n0, 2, 4);
  d.connect(right, n0, 0, 0);
  const NetId n1 = d.add_net("n1");
  d.connect(b, n1, 2, 4);
  d.connect(left, n1, 0, 0);

  DetailedPlaceConfig cfg;
  cfg.cross_row_swaps = false;
  const double before = d.total_hpwl();
  const DetailedPlaceResult r = detailed_place(d, cfg);
  EXPECT_GT(r.accepted_moves, 0);
  EXPECT_LT(d.total_hpwl(), before);
  // Order actually flipped; the pair envelope is preserved.
  EXPECT_LT(d.cells[static_cast<std::size_t>(b)].x,
            d.cells[static_cast<std::size_t>(a)].x);
  EXPECT_DOUBLE_EQ(d.cells[static_cast<std::size_t>(b)].x, 10.0);
  EXPECT_DOUBLE_EQ(d.cells[static_cast<std::size_t>(a)].x, 20.0);
}

TEST(DetailedPlace, CrossRowSwapMovesCellTowardNet) {
  Design d = base_design(160, 32);
  // Same-size cells in different rows, each wanting the other's spot.
  const CellId a = add_cell_at(d, 8, 0, 2);
  const CellId b = add_cell_at(d, 120, 24, 2);
  Cell t0;
  t0.kind = CellKind::kTerminal;
  t0.name = "t0";
  t0.x = 128;
  t0.y = 24;
  const CellId ta = d.add_cell(t0);
  Cell t1 = t0;
  t1.name = "t1";
  t1.x = 4;
  t1.y = 0;
  const CellId tb = d.add_cell(t1);
  const NetId n0 = d.add_net("n0");
  d.connect(a, n0, 1, 4);
  d.connect(ta, n0, 0, 0);
  const NetId n1 = d.add_net("n1");
  d.connect(b, n1, 1, 4);
  d.connect(tb, n1, 0, 0);

  DetailedPlaceConfig cfg;
  cfg.adjacent_reorder = false;
  cfg.swap_window_rows = 100.0;
  const double before = d.total_hpwl();
  const DetailedPlaceResult r = detailed_place(d, cfg);
  EXPECT_GT(r.accepted_moves, 0);
  EXPECT_LT(d.total_hpwl(), before * 0.5);
}

TEST(DetailedPlace, PreservesLegalityOnSyntheticDesign) {
  SyntheticSpec spec;
  spec.num_cells = 500;
  spec.num_nets = 750;
  spec.num_macros = 3;
  Design d = generate_synthetic(spec);
  ASSERT_TRUE(legalize(d).success);
  ASSERT_TRUE(check_legality(d).legal);
  const double before = d.total_hpwl();
  const DetailedPlaceResult r = detailed_place(d);
  EXPECT_LE(d.total_hpwl(), before + 1e-6);
  EXPECT_TRUE(check_legality(d).legal) << check_legality(d).summary();
  EXPECT_GE(r.improvement_pct(), 0.0);
}

TEST(DetailedPlace, NoMovesOnOptimalPlacement) {
  Design d = base_design();
  const CellId a = add_cell_at(d, 0, 0, 2);
  const CellId b = add_cell_at(d, 10, 0, 2);
  const NetId n = d.add_net("n");
  d.connect(a, n, 1, 4);
  d.connect(b, n, 1, 4);
  // Only one net between them: any reorder keeps or worsens HPWL.
  const DetailedPlaceResult r = detailed_place(d);
  EXPECT_LE(r.passes, 2);
  EXPECT_DOUBLE_EQ(r.hpwl_after, r.hpwl_before);
}

TEST(Svg, WritesValidFile) {
  SyntheticSpec spec;
  spec.num_cells = 150;
  spec.num_nets = 220;
  spec.num_macros = 2;
  const Design d = generate_synthetic(spec);
  const std::string path =
      (std::filesystem::temp_directory_path() / "puffer_test.svg").string();
  write_placement_svg(d, path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("<svg"), std::string::npos);
  EXPECT_NE(content.find("</svg>"), std::string::npos);
  // One rect per movable cell at least.
  std::size_t rects = 0;
  for (std::size_t pos = 0; (pos = content.find("<rect", pos)) != std::string::npos;
       ++rects, ++pos) {
  }
  EXPECT_GE(rects, d.num_movable());
  std::filesystem::remove(path);
}

TEST(Svg, CongestionOverlayAddsHeatTiles) {
  SyntheticSpec spec;
  spec.num_cells = 100;
  spec.num_nets = 150;
  const Design d = generate_synthetic(spec);
  const GcellGrid grid(d.die, 4, 4);
  Map2D<double> cg(4, 4, -0.5);
  cg.at(1, 1) = 0.8;
  const std::string base =
      (std::filesystem::temp_directory_path() / "puffer_base.svg").string();
  const std::string heat =
      (std::filesystem::temp_directory_path() / "puffer_heat.svg").string();
  write_placement_svg(d, base);
  write_placement_svg(d, grid, cg, heat);
  const auto size = [](const std::string& p) {
    return std::filesystem::file_size(p);
  };
  EXPECT_GT(size(heat), size(base));
  std::filesystem::remove(base);
  std::filesystem::remove(heat);
}

}  // namespace
}  // namespace puffer
