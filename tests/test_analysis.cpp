// Tests for the quality-analysis module and the strategy-config
// serialization.
#include <gtest/gtest.h>

#include <filesystem>

#include "analysis/quality.h"
#include "core/config_io.h"
#include "io/synthetic.h"
#include "router/global_router.h"

namespace puffer {
namespace {

TEST(Percentiles, BasicOrderStatistics) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(static_cast<double>(i));
  const Percentiles p = compute_percentiles(v);
  EXPECT_NEAR(p.p50, 50.0, 1.0);
  EXPECT_NEAR(p.p90, 90.0, 1.0);
  EXPECT_NEAR(p.p99, 99.0, 1.0);
  EXPECT_DOUBLE_EQ(p.max, 100.0);
}

TEST(Percentiles, EmptyAndSingle) {
  EXPECT_DOUBLE_EQ(compute_percentiles({}).max, 0.0);
  const Percentiles p = compute_percentiles({7.0});
  EXPECT_DOUBLE_EQ(p.p50, 7.0);
  EXPECT_DOUBLE_EQ(p.max, 7.0);
}

TEST(Quality, ReportsWirelengthAndDensity) {
  SyntheticSpec spec;
  spec.num_cells = 500;
  spec.num_nets = 750;
  spec.num_macros = 3;
  spec.target_utilization = 0.7;
  const Design d = generate_synthetic(spec);
  const QualityReport r = analyze_quality(d);
  EXPECT_GT(r.hpwl, 0.0);
  EXPECT_EQ(r.nets, d.nets.size());
  EXPECT_GT(r.net_hpwl.max, r.net_hpwl.p50);
  EXPECT_NEAR(r.design_utilization, 0.7, 0.1);
  EXPECT_GT(r.bin_utilization.max, 0.0);
  EXPECT_FALSE(r.has_congestion);
  EXPECT_NE(r.to_string().find("HPWL"), std::string::npos);
}

TEST(Quality, CongestionSectionFromRoutedMaps) {
  SyntheticSpec spec;
  spec.num_cells = 400;
  spec.num_nets = 600;
  const Design d = generate_synthetic(spec);
  const RouteResult routed = GlobalRouter(d).route();
  const QualityReport r = analyze_quality(d, &routed.maps);
  EXPECT_TRUE(r.has_congestion);
  EXPECT_GT(r.cg_h.max, 0.0);
  EXPECT_GE(r.overflowed_gcell_frac, 0.0);
  EXPECT_LE(r.overflowed_gcell_frac, 1.0);
  EXPECT_NE(r.to_string().find("dmd/cap"), std::string::npos);
}

TEST(ConfigIo, RoundTripPreservesAllFields) {
  PufferConfig a;
  a.padding.mu = 7.25;
  a.padding.xi = 11;
  a.padding.alpha[4] = 0.625;
  a.congestion.enable_detour_expansion = false;
  a.congestion.expand_radius = 6;
  a.gp.target_density = 0.87;
  a.discrete.theta = 12.5;
  a.final_overflow = 0.125;
  const PufferConfig b = config_from_text(config_to_text(a));
  EXPECT_DOUBLE_EQ(b.padding.mu, 7.25);
  EXPECT_EQ(b.padding.xi, 11);
  EXPECT_DOUBLE_EQ(b.padding.alpha[4], 0.625);
  EXPECT_FALSE(b.congestion.enable_detour_expansion);
  EXPECT_EQ(b.congestion.expand_radius, 6);
  EXPECT_DOUBLE_EQ(b.gp.target_density, 0.87);
  EXPECT_DOUBLE_EQ(b.discrete.theta, 12.5);
  EXPECT_DOUBLE_EQ(b.final_overflow, 0.125);
}

TEST(ConfigIo, PartialOverrideKeepsBase) {
  PufferConfig base;
  base.padding.mu = 9.0;
  const PufferConfig c =
      config_from_text("padding.tau = 0.22\n# comment\n\n", base);
  EXPECT_DOUBLE_EQ(c.padding.tau, 0.22);
  EXPECT_DOUBLE_EQ(c.padding.mu, 9.0);  // untouched
}

TEST(ConfigIo, RejectsUnknownKeyAndBadValue) {
  EXPECT_THROW(config_from_text("padding.typo = 1\n"), ConfigError);
  EXPECT_THROW(config_from_text("padding.mu = banana\n"), ConfigError);
  EXPECT_THROW(config_from_text("just some words\n"), ConfigError);
}

TEST(ConfigIo, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "puffer_cfg_test.cfg").string();
  PufferConfig a;
  a.padding.pu_high = 0.123;
  save_config(a, path);
  const PufferConfig b = load_config(path);
  EXPECT_DOUBLE_EQ(b.padding.pu_high, 0.123);
  std::filesystem::remove(path);
  EXPECT_THROW(load_config("/nonexistent/x.cfg"), ConfigError);
}

}  // namespace
}  // namespace puffer
