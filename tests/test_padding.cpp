// Tests for multi-feature extraction (Eqs. 9-13) and the padding engine
// (Eq. 14 formula, Eq. 15 recycling, Eq. 16 utilization ramp, Algorithm 1
// scaling, and the three trigger conditions).
#include <gtest/gtest.h>

#include <cmath>

#include "congestion/estimator.h"
#include "padding/features.h"
#include "padding/padding.h"

namespace puffer {
namespace {

Design base_design() {
  Design d;
  d.die = {0, 0, 240, 240};
  d.tech = Technology::make_default(1.0, 8.0, 8);
  for (int r = 0; r < 30; ++r) d.rows.push_back({r * 8.0, 0, 240, 1.0, 8.0});
  return d;
}

CellId add_cell_at(Design& d, double x, double y, double w = 2.0) {
  Cell c;
  c.name = "c" + std::to_string(d.cells.size());
  c.width = w;
  c.height = 8;
  c.x = x;
  c.y = y;
  return d.add_cell(std::move(c));
}

// Two cells connected by a long horizontal net crossing a hot column,
// plus a bundle of vertical nets that overload one column of Gcells.
struct HotDesign {
  Design d;
  CellId in_hot;   // cell inside the congested column
  CellId in_cold;  // far from congestion
};

HotDesign make_hot_design() {
  HotDesign h;
  h.d = base_design();
  // Vertical bundle at x ~ 108-132 (Gcell column 5, rows 0..9).
  for (int i = 0; i < 220; ++i) {
    const CellId a = add_cell_at(h.d, 120, 12);
    const CellId b = add_cell_at(h.d, 120, 204);
    const NetId n = h.d.add_net("v" + std::to_string(i));
    h.d.connect(a, n, 0, 0);
    h.d.connect(b, n, 0, 0);
  }
  h.in_hot = add_cell_at(h.d, 121, 112);
  h.in_cold = add_cell_at(h.d, 12, 12);
  // Give both probes one short net so they have valid pin features.
  const CellId hot_mate = add_cell_at(h.d, 130, 112);
  const NetId n1 = h.d.add_net("hot_probe");
  h.d.connect(h.in_hot, n1, 0, 0);
  h.d.connect(hot_mate, n1, 0, 0);
  const CellId cold_mate = add_cell_at(h.d, 20, 12);
  const NetId n2 = h.d.add_net("cold_probe");
  h.d.connect(h.in_cold, n2, 0, 0);
  h.d.connect(cold_mate, n2, 0, 0);
  return h;
}

TEST(Features, HotCellScoresHigherThanColdCell) {
  HotDesign h = make_hot_design();
  CongestionConfig cc;
  cc.enable_detour_expansion = false;
  CongestionEstimator est(h.d, cc);
  const CongestionResult cr = est.estimate();
  FeatureExtractor fx(h.d);
  const auto f = fx.extract(cr, {h.in_hot, h.in_cold});
  ASSERT_EQ(f.size(), 2u);
  EXPECT_GT(f[0].local_cg, f[1].local_cg);
  EXPECT_GT(f[0].sur_cg, f[1].sur_cg);
  EXPECT_GT(f[0].pin_cg, f[1].pin_cg);
  // The hot column genuinely overflows.
  EXPECT_GT(f[0].local_cg, 0.0);
  EXPECT_LT(f[1].local_cg, 0.0);  // signed feature keeps the slack info
}

TEST(Features, SurroundingIsSmootherThanLocal) {
  HotDesign h = make_hot_design();
  CongestionConfig cc;
  cc.enable_detour_expansion = false;
  const CongestionResult cr = CongestionEstimator(h.d, cc).estimate();
  FeatureExtractor fx(h.d);
  const auto f = fx.extract(cr, {h.in_hot});
  // The kernel mean over a larger region dilutes the peak.
  EXPECT_LT(f[0].sur_cg, f[0].local_cg);
}

TEST(Features, IndexOperatorCoversAllFeatures) {
  FeatureVector f;
  f.local_cg = 1;
  f.local_pin = 2;
  f.sur_cg = 3;
  f.sur_pin = 4;
  f.pin_cg = 5;
  for (int i = 0; i < FeatureVector::kCount; ++i) {
    EXPECT_DOUBLE_EQ(f[i], i + 1.0);
  }
  EXPECT_THROW(f[FeatureVector::kCount], std::out_of_range);
}

TEST(PaddingEngine, Formula14LogClampsNegative) {
  // With all-zero alphas and beta <= 1 the linear term never exceeds 1,
  // so log(max(.,1)) = 0 and no cell is padded.
  HotDesign h = make_hot_design();
  CongestionEstimator est(h.d, CongestionConfig{});
  const CongestionResult cr = est.estimate();
  std::vector<CellId> movable;
  for (CellId c = 0; c < static_cast<CellId>(h.d.cells.size()); ++c) {
    if (h.d.cells[static_cast<std::size_t>(c)].movable()) movable.push_back(c);
  }
  PaddingParams params;
  for (double& a : params.alpha) a = 0.0;
  params.beta = 0.9;
  PaddingEngine engine(h.d, movable, params);
  const auto& pad = engine.update(cr);
  for (double p : pad) EXPECT_DOUBLE_EQ(p, 0.0);
  EXPECT_DOUBLE_EQ(engine.last_utilization(), 0.0);
}

TEST(PaddingEngine, HotCellsGetPaddedColdCellsDoNot) {
  HotDesign h = make_hot_design();
  CongestionConfig cc;
  cc.enable_detour_expansion = false;
  const CongestionResult cr = CongestionEstimator(h.d, cc).estimate();
  std::vector<CellId> movable{h.in_hot, h.in_cold};
  PaddingParams params;
  PaddingEngine engine(h.d, movable, params);
  const auto& pad = engine.update(cr);
  EXPECT_GT(pad[0], 0.0);
  EXPECT_DOUBLE_EQ(pad[1], 0.0);
}

TEST(PaddingEngine, UtilizationRampEq16) {
  Design d = base_design();
  PaddingParams params;
  params.pu_low = 0.02;
  params.pu_high = 0.10;
  params.xi = 5;
  PaddingEngine engine(d, {}, params);
  EXPECT_DOUBLE_EQ(engine.target_utilization(1), 0.02);
  EXPECT_DOUBLE_EQ(engine.target_utilization(5), 0.10);
  EXPECT_NEAR(engine.target_utilization(3), 0.06, 1e-12);
  // Clamped beyond xi.
  EXPECT_DOUBLE_EQ(engine.target_utilization(9), 0.10);
}

TEST(PaddingEngine, ScalingCapsTotalPaddingArea) {
  HotDesign h = make_hot_design();
  CongestionConfig cc;
  cc.enable_detour_expansion = false;
  const CongestionResult cr = CongestionEstimator(h.d, cc).estimate();
  std::vector<CellId> movable;
  for (CellId c = 0; c < static_cast<CellId>(h.d.cells.size()); ++c) {
    if (h.d.cells[static_cast<std::size_t>(c)].movable()) movable.push_back(c);
  }
  PaddingParams params;
  params.mu = 500.0;  // absurd magnitude; the cap must bite
  params.pu_low = 0.01;
  params.pu_high = 0.01;
  PaddingEngine engine(h.d, movable, params);
  const auto& pad = engine.update(cr);
  double area = 0.0;
  for (std::size_t i = 0; i < movable.size(); ++i) {
    area += pad[i] * h.d.cells[static_cast<std::size_t>(movable[i])].height;
  }
  double macro_area = 0.0;
  const double avail = h.d.die.area() - macro_area;
  EXPECT_LE(area, 0.01 * avail * 1.0001);
  EXPECT_NEAR(engine.last_utilization(), 0.01, 1e-6);
}

TEST(PaddingEngine, RecyclingEq15WithdrawsPadding) {
  // Round 1: congested -> padded. Round 2: feed an all-clear congestion
  // result -> recycling must reduce the stored padding.
  HotDesign h = make_hot_design();
  CongestionConfig cc;
  cc.enable_detour_expansion = false;
  const CongestionResult hot = CongestionEstimator(h.d, cc).estimate();
  std::vector<CellId> movable{h.in_hot};
  PaddingParams params;
  params.zeta = 4.0;
  PaddingEngine engine(h.d, movable, params);
  const double p1 = engine.update(hot)[0];
  ASSERT_GT(p1, 0.0);

  // All-clear: same grid, zero demand.
  CongestionResult clear = hot;
  clear.maps.dmd_h.fill(0.0);
  clear.maps.dmd_v.fill(0.0);
  const double p2 = engine.update(clear)[0];
  // r_2 = (2 - 1) / (2 + 4) = 1/6 -> one sixth withdrawn.
  EXPECT_NEAR(p2, p1 * (1.0 - 1.0 / 6.0), p1 * 0.02);
  const double p3 = engine.update(clear)[0];
  EXPECT_LT(p3, p2);
}

TEST(PaddingEngine, TriggerRequiresAllThreeConditions) {
  Design d = base_design();
  PaddingParams params;
  params.tau = 0.3;
  params.xi = 2;
  PaddingEngine engine(d, {}, params);
  // Condition 1: density overflow below tau.
  EXPECT_TRUE(engine.should_trigger(0.2));
  EXPECT_FALSE(engine.should_trigger(0.3));
  EXPECT_FALSE(engine.should_trigger(0.9));
}

TEST(PaddingEngine, TriggerStopsAfterXiRounds) {
  HotDesign h = make_hot_design();
  const CongestionResult cr = CongestionEstimator(h.d, CongestionConfig{}).estimate();
  PaddingParams params;
  params.xi = 2;
  PaddingEngine engine(h.d, {h.in_hot}, params);
  EXPECT_TRUE(engine.should_trigger(0.1));
  engine.update(cr);
  EXPECT_TRUE(engine.should_trigger(0.1));
  engine.update(cr);
  EXPECT_FALSE(engine.should_trigger(0.1));  // xi exhausted
  EXPECT_EQ(engine.attempts(), 2);
  // rounds() only counts updates that applied positive padding.
  EXPECT_LE(engine.rounds(), engine.attempts());
}

TEST(PaddingEngine, TriggerStopsOnExplosiveUtilization) {
  HotDesign h = make_hot_design();
  CongestionConfig cc;
  cc.enable_detour_expansion = false;
  const CongestionResult cr = CongestionEstimator(h.d, cc).estimate();
  std::vector<CellId> movable;
  for (CellId c = 0; c < static_cast<CellId>(h.d.cells.size()); ++c) {
    if (h.d.cells[static_cast<std::size_t>(c)].movable()) movable.push_back(c);
  }
  PaddingParams params;
  params.mu = 500.0;
  params.pu_low = params.pu_high = 0.2;  // allow a 20% grab...
  params.eta = 0.1;                      // ...but stop when >10% is used
  PaddingEngine engine(h.d, movable, params);
  engine.update(cr);
  EXPECT_GT(engine.last_utilization(), 0.1);
  EXPECT_FALSE(engine.should_trigger(0.05));
}

}  // namespace
}  // namespace puffer
