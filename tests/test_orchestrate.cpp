// Trial-orchestration subsystem tests: binary checkpoint codec and
// save/restore/continue bit-identity (across PUFFER_THREADS), the
// crash-safe trial journal (torn-line tolerance, exact-bit replay), the
// early-stop pruner, and the orchestrator's determinism across execution
// concurrency plus journal-based resume equivalence.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "core/flow.h"
#include "io/checkpoint.h"
#include "io/synthetic.h"
#include "orchestrate/orchestrator.h"

namespace puffer {
namespace {

// Restores the worker count after each test (orchestrator tests pin it).
class OrchestrateTest : public ::testing::Test {
 protected:
  ~OrchestrateTest() override { par::set_num_threads(0); }
};

SyntheticSpec small_spec(std::uint64_t seed = 91) {
  SyntheticSpec spec;
  spec.name = "orch";
  spec.seed = seed;
  spec.num_cells = 300;
  spec.num_nets = 450;
  spec.num_macros = 2;
  spec.target_utilization = 0.78;
  // Starve the vertical supply so trials produce distinct non-zero
  // losses (a uniformly-zero loss would make the determinism checks
  // vacuous).
  spec.v_capacity_factor = 0.55;
  return spec;
}

PufferConfig small_flow_config() {
  PufferConfig cfg;
  cfg.gp.max_iters = 250;
  cfg.padding.xi = 3;
  cfg.num_threads = 0;  // never resize the pool from inside a test
  return cfg;
}

std::filesystem::path temp_dir(const char* leaf) {
  const auto dir = std::filesystem::temp_directory_path() / leaf;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

TEST(Checkpoint, BinaryCodecRoundTrip) {
  BinaryWriter w;
  w.put_u8(7);
  w.put_u32(0xdeadbeef);
  w.put_u64(0x0123456789abcdefULL);
  w.put_i32(-42);
  w.put_i64(-1234567890123LL);
  w.put_f64(-0.1);
  w.put_string("hello");
  w.put_f64_vec({1.5, -2.5, 3.25});

  BinaryReader r(w.buffer());
  EXPECT_EQ(r.get_u8(), 7);
  EXPECT_EQ(r.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(r.get_u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.get_i32(), -42);
  EXPECT_EQ(r.get_i64(), -1234567890123LL);
  EXPECT_EQ(r.get_f64(), -0.1);
  EXPECT_EQ(r.get_string(), "hello");
  EXPECT_EQ(r.get_f64_vec(), (std::vector<double>{1.5, -2.5, 3.25}));
  EXPECT_TRUE(r.at_end());
  EXPECT_THROW(r.get_u8(), CheckpointError);
}

TEST(Checkpoint, SnapshotCodecRejectsCorruption) {
  FlowSnapshot snap;
  snap.design_key = 11;
  snap.prefix_key = 22;
  snap.fork_overflow = 0.45;
  snap.x = {1.0, 2.0, 3.0};
  snap.y = {4.0, 5.0, 6.0};
  snap.padding = {0.0, 0.5, 0.0};
  snap.rng_key = 33;
  snap.rng_counter = 44;
  snap.congestion_fingerprint = 55;
  snap.ledger_blob = "opaque-bytes";

  const std::string bytes = encode_snapshot(snap);
  const FlowSnapshot back = decode_snapshot(bytes);
  EXPECT_EQ(back.design_key, snap.design_key);
  EXPECT_EQ(back.prefix_key, snap.prefix_key);
  EXPECT_EQ(back.fork_overflow, snap.fork_overflow);
  EXPECT_EQ(back.x, snap.x);
  EXPECT_EQ(back.y, snap.y);
  EXPECT_EQ(back.padding, snap.padding);
  EXPECT_EQ(back.rng_key, snap.rng_key);
  EXPECT_EQ(back.rng_counter, snap.rng_counter);
  EXPECT_EQ(back.congestion_fingerprint, snap.congestion_fingerprint);
  EXPECT_EQ(back.ledger_blob, snap.ledger_blob);

  // A single flipped byte must fail the checksum trailer.
  std::string corrupt = bytes;
  corrupt[corrupt.size() / 2] ^= 0x40;
  EXPECT_THROW(decode_snapshot(corrupt), CheckpointError);
  // Truncation must fail too.
  const std::string truncated = bytes.substr(0, bytes.size() - 5);
  EXPECT_THROW(decode_snapshot(truncated), CheckpointError);

  EXPECT_THROW(load_snapshot("/nonexistent/dir/prefix.ckpt"), CheckpointError);
}

TEST_F(OrchestrateTest, CheckpointRoundTripBitIdentical) {
  // Satellite contract: fork -> save -> restore -> continue is bitwise
  // identical to the uninterrupted staged run, for PUFFER_THREADS 1/2/8,
  // and identical across those thread counts.
  const auto dir = temp_dir("puffer_orch_ckpt");
  const std::string path = (dir / "prefix.ckpt").string();
  std::uint64_t baseline = 0;
  for (const int threads : {1, 2, 8}) {
    par::set_num_threads(threads);

    Design cont = generate_synthetic(small_spec());
    PufferFlow flow(cont, small_flow_config());
    FlowSnapshot snap;
    flow.run_prefix(0.45, RngStream(7), &snap);
    flow.run_from(snap);  // uninterrupted continue, same process state
    const std::uint64_t cont_sum = position_checksum(cont);

    save_snapshot(path, snap);
    const FlowSnapshot loaded = load_snapshot(path);
    EXPECT_EQ(loaded.x, snap.x);
    EXPECT_EQ(loaded.y, snap.y);
    EXPECT_EQ(loaded.rng_key, snap.rng_key);
    EXPECT_EQ(loaded.ledger_blob, snap.ledger_blob);

    // Fresh design (generator positions, no initial_place), fresh flow:
    // the restore path must reproduce the continuation exactly.
    Design restored = generate_synthetic(small_spec());
    PufferFlow flow2(restored, small_flow_config());
    flow2.run_from(loaded);
    EXPECT_EQ(position_checksum(restored), cont_sum)
        << "threads=" << threads;

    if (baseline == 0) baseline = cont_sum;
    EXPECT_EQ(cont_sum, baseline) << "threads=" << threads;
  }
  std::filesystem::remove_all(dir);
}

TEST(TrialJournal, EncodeDecodeRoundTripAllTypes) {
  JournalRecord h;
  h.type = JournalRecord::Type::kHeader;
  h.design_key = 0x1111222233334444ULL;
  h.prefix_key = 2;
  h.space_key = 3;
  h.seed = 4;
  h.trials = 12;
  h.batch_size = 3;

  JournalRecord c;
  c.type = JournalRecord::Type::kCheckpoint;
  c.path = "/tmp/prefix.ckpt";
  c.prefix_key = 2;

  JournalRecord s;
  s.type = JournalRecord::Type::kTrialStart;
  s.trial = 5;
  s.akey = 0xabcdef;

  JournalRecord t;
  t.type = JournalRecord::Type::kTrialComplete;
  t.trial = 5;
  t.akey = 0xabcdef;
  t.loss = 0.1 + 0.2;  // not exactly representable in decimal text
  t.pruned = true;
  t.prune_round = 2;
  t.checksum = 0x9999;
  t.rounds = {0.30000000000000004, 1.0 / 3.0};

  JournalRecord e;
  e.type = JournalRecord::Type::kExploreComplete;
  e.best_trial = 5;
  e.best_loss = 1.0 / 7.0;
  e.best_checksum = 0x7777;

  for (const JournalRecord& rec : {h, c, s, t, e}) {
    JournalRecord back;
    ASSERT_TRUE(TrialJournal::decode(TrialJournal::encode(rec), &back));
    EXPECT_EQ(back.type, rec.type);
  }
  JournalRecord back;
  ASSERT_TRUE(TrialJournal::decode(TrialJournal::encode(t), &back));
  EXPECT_EQ(back.trial, t.trial);
  EXPECT_EQ(back.akey, t.akey);
  EXPECT_EQ(back.loss, t.loss);  // exact bits via the hex encoding
  EXPECT_EQ(back.pruned, t.pruned);
  EXPECT_EQ(back.prune_round, t.prune_round);
  EXPECT_EQ(back.checksum, t.checksum);
  EXPECT_EQ(back.rounds, t.rounds);
  ASSERT_TRUE(TrialJournal::decode(TrialJournal::encode(h), &back));
  EXPECT_EQ(back.design_key, h.design_key);
  EXPECT_EQ(back.trials, h.trials);

  EXPECT_FALSE(TrialJournal::decode("", &back));
  EXPECT_FALSE(TrialJournal::decode("{\"type\":\"unknown\"}", &back));
  EXPECT_FALSE(TrialJournal::decode("{\"type\":\"trial_start\",\"trial\":1",
                                    &back));
}

TEST(TrialJournal, TolerantLoadDropsTornTail) {
  const auto dir = temp_dir("puffer_orch_journal");
  const std::string path = (dir / "trials.jsonl").string();
  {
    TrialJournal journal(path);
    JournalRecord s;
    s.type = JournalRecord::Type::kTrialStart;
    for (int i = 0; i < 3; ++i) {
      s.trial = i;
      s.akey = static_cast<std::uint64_t>(i) * 17;
      journal.append(s);
    }
  }
  EXPECT_EQ(TrialJournal::load(path).size(), 3u);

  // Simulate a crash mid-append: a torn final line must be dropped, the
  // records before it kept.
  {
    std::ofstream f(path, std::ios::app);
    f << "{\"type\":\"trial_complete\",\"trial\":3,\"ak";
  }
  EXPECT_EQ(TrialJournal::load(path).size(), 3u);

  // Appending after a reopen continues the journal (the torn line stays,
  // so later records after it are unreachable -- the loader stops at the
  // first malformed line, which is exactly the crash-consistency rule).
  EXPECT_EQ(TrialJournal::load("/nonexistent/journal.jsonl").size(), 0u);
  std::filesystem::remove_all(dir);
}

TEST(Pruner, ValidatesConfig) {
  PruneConfig bad;
  bad.quantile = 0.0;
  EXPECT_THROW(validate_prune_config(bad), std::invalid_argument);
  bad.quantile = 1.0;
  EXPECT_THROW(validate_prune_config(bad), std::invalid_argument);
  bad = PruneConfig{};
  bad.grace_rounds = -1;
  EXPECT_THROW(validate_prune_config(bad), std::invalid_argument);
  bad = PruneConfig{};
  bad.min_history = 1;
  EXPECT_THROW(validate_prune_config(bad), std::invalid_argument);
  bad = PruneConfig{};
  bad.penalty = -1.0;
  EXPECT_THROW(validate_prune_config(bad), std::invalid_argument);
}

TEST(Pruner, MedianRuleIsDeterministicAndGraceful) {
  PruneConfig cfg;
  cfg.enabled = true;
  cfg.grace_rounds = 1;
  cfg.min_history = 4;
  cfg.quantile = 0.5;
  PruneThresholds pruner(cfg);

  // No history yet: never prunes.
  EXPECT_FALSE(pruner.should_prune(1, 1e9));

  pruner.observe({10.0, 8.0});
  pruner.observe({12.0, 9.0});
  pruner.observe({11.0, 7.0});
  EXPECT_EQ(pruner.trails_observed(), 3);
  // Below min_history at every rung: still never prunes.
  EXPECT_FALSE(pruner.should_prune(1, 1e9));

  pruner.observe({13.0, 6.0});
  // Rung 1 history {8, 9, 7, 6}: median index floor(0.5 * 3) = 1 of the
  // sorted {6, 7, 8, 9} -> threshold 7.
  EXPECT_TRUE(pruner.should_prune(1, 7.5));
  EXPECT_FALSE(pruner.should_prune(1, 7.0));  // equality never prunes
  EXPECT_FALSE(pruner.should_prune(0, 1e9));  // grace round
  EXPECT_FALSE(pruner.should_prune(5, 1e9));  // rung without history

  EXPECT_EQ(pruner.penalty_loss(7.5), cfg.penalty + 7.5);

  // Disabled pruner never prunes regardless of history.
  PruneConfig off = cfg;
  off.enabled = false;
  PruneThresholds disabled(off);
  disabled.observe({1.0});
  disabled.observe({1.0});
  disabled.observe({1.0});
  disabled.observe({1.0});
  EXPECT_FALSE(disabled.should_prune(0, 1e9));
}

TEST(Orchestrator, ValidatesConfig) {
  OrchestratorConfig bad;
  bad.trials = 0;
  EXPECT_THROW(validate_orchestrator_config(bad), std::invalid_argument);
  bad = OrchestratorConfig{};
  bad.concurrency = 0;
  EXPECT_THROW(validate_orchestrator_config(bad), std::invalid_argument);
  bad = OrchestratorConfig{};
  bad.batch_size = 0;
  EXPECT_THROW(validate_orchestrator_config(bad), std::invalid_argument);
  bad = OrchestratorConfig{};
  bad.early_stop = 0;
  EXPECT_THROW(validate_orchestrator_config(bad), std::invalid_argument);
  bad = OrchestratorConfig{};
  bad.fork_overflow = 0.0;
  EXPECT_THROW(validate_orchestrator_config(bad), std::invalid_argument);
  bad = OrchestratorConfig{};
  bad.resume = true;  // resume without a journal cannot work
  EXPECT_THROW(validate_orchestrator_config(bad), std::invalid_argument);
  bad = OrchestratorConfig{};
  bad.prune.quantile = 2.0;
  EXPECT_THROW(validate_orchestrator_config(bad), std::invalid_argument);
  bad = OrchestratorConfig{};
  bad.tpe.gamma = 0.0;
  EXPECT_THROW(validate_orchestrator_config(bad), std::invalid_argument);
}

OrchestratorConfig small_orch_config() {
  OrchestratorConfig cfg;
  cfg.trials = 5;
  cfg.batch_size = 2;
  cfg.concurrency = 1;
  cfg.fork_overflow = 0.45;
  cfg.seed = 4242;
  cfg.tpe.n_startup = 3;
  cfg.prune.enabled = true;
  cfg.prune.grace_rounds = 1;
  cfg.prune.min_history = 3;
  return cfg;
}

ExperimentConfig small_experiment_config() {
  ExperimentConfig cfg;
  cfg.puffer = small_flow_config();
  return cfg;
}

TEST_F(OrchestrateTest, DeterministicAcrossConcurrencyAndThreads) {
  // The tentpole contract: identical best strategy, loss bits,
  // observation sequence and final-position checksum for any execution
  // concurrency K and any PUFFER_THREADS.
  OrchestrationResult base;
  {
    par::set_num_threads(1);
    Design d = generate_synthetic(small_spec());
    TrialOrchestrator orch(d, puffer_param_specs(), small_experiment_config(),
                           small_orch_config());
    base = orch.run();
  }
  EXPECT_EQ(base.trials_evaluated, 5);
  EXPECT_EQ(base.stats.trials_run + base.stats.trials_pruned, 5);
  EXPECT_GE(base.best_loss, 0.0);  // tiny designs can route overflow-free
  EXPECT_GE(base.best_trial, 0);
  EXPECT_EQ(base.observations.size(), 5u);

  {
    par::set_num_threads(2);
    OrchestratorConfig cfg = small_orch_config();
    cfg.concurrency = 3;
    Design d = generate_synthetic(small_spec());
    TrialOrchestrator orch(d, puffer_param_specs(), small_experiment_config(),
                           cfg);
    const OrchestrationResult got = orch.run();
    EXPECT_EQ(got.best_loss, base.best_loss);
    EXPECT_EQ(got.best, base.best);
    EXPECT_EQ(got.best_trial, base.best_trial);
    EXPECT_EQ(got.best_checksum, base.best_checksum);
    ASSERT_EQ(got.observations.size(), base.observations.size());
    for (std::size_t i = 0; i < got.observations.size(); ++i) {
      EXPECT_EQ(got.observations[i].loss, base.observations[i].loss) << i;
      EXPECT_EQ(got.observations[i].x, base.observations[i].x) << i;
    }
    EXPECT_EQ(got.stats.trials_pruned, base.stats.trials_pruned);
    EXPECT_GE(got.stats.scheduler_utilization, 0.0);
    EXPECT_LE(got.stats.scheduler_utilization, 1.0);
  }
}

TEST_F(OrchestrateTest, ResumeReplaysJournalWithoutReevaluation) {
  par::set_num_threads(2);
  const auto dir = temp_dir("puffer_orch_resume");
  OrchestratorConfig cfg = small_orch_config();
  cfg.concurrency = 2;
  cfg.checkpoint_dir = (dir / "ckpt").string();
  cfg.journal_path = (dir / "trials.jsonl").string();

  OrchestrationResult first;
  {
    Design d = generate_synthetic(small_spec());
    TrialOrchestrator orch(d, puffer_param_specs(), small_experiment_config(),
                           cfg);
    first = orch.run();
  }
  EXPECT_GT(first.stats.checkpoint_save_s, 0.0);
  EXPECT_EQ(first.stats.trials_resumed, 0);

  // Full resume: every trial replays from the journal, the checkpoint
  // restores instead of re-running the prefix, and the outcome is
  // bit-identical.
  {
    OrchestratorConfig rcfg = cfg;
    rcfg.resume = true;
    Design d = generate_synthetic(small_spec());
    TrialOrchestrator orch(d, puffer_param_specs(), small_experiment_config(),
                           rcfg);
    const OrchestrationResult again = orch.run();
    EXPECT_EQ(again.stats.trials_resumed, first.trials_evaluated);
    EXPECT_EQ(again.stats.trials_run + again.stats.trials_pruned,
              first.trials_evaluated);
    EXPECT_GT(again.stats.checkpoint_restore_s, 0.0);
    EXPECT_EQ(again.best_loss, first.best_loss);
    EXPECT_EQ(again.best, first.best);
    EXPECT_EQ(again.best_checksum, first.best_checksum);
  }

  // Partial resume (the kill-and-resume scenario): truncate the journal
  // to the first two completed trials; the resumed run re-executes only
  // the rest and converges to the identical result.
  {
    const std::vector<JournalRecord> records =
        TrialJournal::load(cfg.journal_path);
    std::string kept;
    int completes = 0;
    for (const JournalRecord& rec : records) {
      if (rec.type == JournalRecord::Type::kTrialComplete && completes >= 2) {
        continue;
      }
      if (rec.type == JournalRecord::Type::kExploreComplete) continue;
      if (rec.type == JournalRecord::Type::kTrialComplete) ++completes;
      kept += TrialJournal::encode(rec) + "\n";
    }
    {
      std::ofstream f(cfg.journal_path, std::ios::trunc);
      f << kept;
    }
    OrchestratorConfig rcfg = cfg;
    rcfg.resume = true;
    Design d = generate_synthetic(small_spec());
    TrialOrchestrator orch(d, puffer_param_specs(), small_experiment_config(),
                           rcfg);
    const OrchestrationResult resumed = orch.run();
    EXPECT_EQ(resumed.stats.trials_resumed, 2);
    EXPECT_EQ(resumed.best_loss, first.best_loss);
    EXPECT_EQ(resumed.best, first.best);
    EXPECT_EQ(resumed.best_checksum, first.best_checksum);
    // The orchestrator metrics ride on the best trial's FlowMetrics for
    // the experiment CSV.
    EXPECT_EQ(resumed.best_flow.orchestrator.trials_resumed, 2);
  }

  // A different seed re-keys the space: resuming against the existing
  // journal must refuse instead of mixing histories.
  {
    OrchestratorConfig rcfg = cfg;
    rcfg.resume = true;
    rcfg.seed = 999;
    Design d = generate_synthetic(small_spec());
    TrialOrchestrator orch(d, puffer_param_specs(), small_experiment_config(),
                           rcfg);
    EXPECT_THROW(orch.run(), CheckpointError);
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace puffer
