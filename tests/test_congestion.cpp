// Tests for the routing-detour-imitation-based congestion estimator
// (paper SS III-A): probabilistic I/L demand, pin penalty, and the
// detour-imitating expansion.
#include <gtest/gtest.h>

#include "congestion/estimator.h"
#include "io/synthetic.h"

namespace puffer {
namespace {

// Design with a 240x240 die, 10x10 Gcells at rows_per_gcell = 3 (24 DBU),
// no macros, and whatever cells/nets each test adds.
Design empty_design() {
  Design d;
  d.die = {0, 0, 240, 240};
  d.tech = Technology::make_default(1.0, 8.0, 8);
  for (int r = 0; r < 30; ++r) d.rows.push_back({r * 8.0, 0, 240, 1.0, 8.0});
  return d;
}

// Adds a 1x8 movable cell whose single pin sits at the cell origin.
CellId add_point_cell(Design& d, double x, double y) {
  Cell c;
  c.name = "c" + std::to_string(d.cells.size());
  c.width = 1;
  c.height = 8;
  c.x = x;
  c.y = y;
  return d.add_cell(std::move(c));
}

CongestionConfig no_penalty_config() {
  CongestionConfig cfg;
  cfg.pin_penalty = 0.0;
  cfg.enable_detour_expansion = false;
  return cfg;
}

TEST(Estimator, HorizontalIShapeUnitDemand) {
  Design d = empty_design();
  const CellId a = add_point_cell(d, 12, 112);   // Gcell (0, 4)
  const CellId b = add_point_cell(d, 108, 112);  // Gcell (4, 4)
  const NetId n = d.add_net("n");
  d.connect(a, n, 0, 0);
  d.connect(b, n, 0, 0);

  CongestionEstimator est(d, no_penalty_config());
  const CongestionResult r = est.estimate();
  ASSERT_EQ(r.maps.grid.nx(), 10);
  for (int gx = 0; gx <= 4; ++gx) {
    EXPECT_DOUBLE_EQ(r.maps.dmd_h.at(gx, 4), 1.0) << "gx=" << gx;
  }
  EXPECT_DOUBLE_EQ(r.maps.dmd_h.at(5, 4), 0.0);
  EXPECT_DOUBLE_EQ(r.maps.dmd_v.sum(), 0.0);
}

TEST(Estimator, VerticalIShapeUnitDemand) {
  Design d = empty_design();
  const CellId a = add_point_cell(d, 60, 12);
  const CellId b = add_point_cell(d, 60, 108);
  const NetId n = d.add_net("n");
  d.connect(a, n, 0, 0);
  d.connect(b, n, 0, 0);

  CongestionEstimator est(d, no_penalty_config());
  const CongestionResult r = est.estimate();
  for (int gy = 1; gy <= 4; ++gy) {
    EXPECT_DOUBLE_EQ(r.maps.dmd_v.at(2, gy), 1.0);
  }
  EXPECT_DOUBLE_EQ(r.maps.dmd_h.sum(), 0.0);
}

TEST(Estimator, LShapeSpreadsAverageDemand) {
  Design d = empty_design();
  const CellId a = add_point_cell(d, 12, 12);   // (0,0)
  const CellId b = add_point_cell(d, 84, 60);   // (3,2)
  const NetId n = d.add_net("n");
  d.connect(a, n, 0, 0);
  d.connect(b, n, 0, 0);

  CongestionEstimator est(d, no_penalty_config());
  const CongestionResult r = est.estimate();
  // Bounding box is 4x3 Gcells: each Gcell gets 1/3 horizontal (3 rows)
  // and 1/4 vertical (4 columns).
  for (int gy = 0; gy <= 2; ++gy) {
    for (int gx = 0; gx <= 3; ++gx) {
      EXPECT_NEAR(r.maps.dmd_h.at(gx, gy), 1.0 / 3.0, 1e-12);
      EXPECT_NEAR(r.maps.dmd_v.at(gx, gy), 1.0 / 4.0, 1e-12);
    }
  }
  // Total demand is conserved: one horizontal crossing of 4 cells and one
  // vertical crossing of 3 cells.
  EXPECT_NEAR(r.maps.dmd_h.sum(), 4.0, 1e-9);
  EXPECT_NEAR(r.maps.dmd_v.sum(), 3.0, 1e-9);
}

TEST(Estimator, SameGcellNetHasNoWireDemand) {
  Design d = empty_design();
  const CellId a = add_point_cell(d, 10, 10);
  const CellId b = add_point_cell(d, 15, 12);
  const NetId n = d.add_net("n");
  d.connect(a, n, 0, 0);
  d.connect(b, n, 0, 0);
  CongestionEstimator est(d, no_penalty_config());
  const CongestionResult r = est.estimate();
  EXPECT_DOUBLE_EQ(r.maps.dmd_h.sum() + r.maps.dmd_v.sum(), 0.0);
}

TEST(Estimator, PinPenaltyAccumulates) {
  Design d = empty_design();
  const CellId a = add_point_cell(d, 10, 10);
  const CellId b = add_point_cell(d, 15, 12);
  const NetId n = d.add_net("n");
  d.connect(a, n, 0, 0);
  d.connect(b, n, 0, 0);
  CongestionConfig cfg = no_penalty_config();
  cfg.pin_penalty = 0.5;
  CongestionEstimator est(d, cfg);
  const CongestionResult r = est.estimate();
  EXPECT_DOUBLE_EQ(r.maps.dmd_h.at(0, 0), 1.0);  // two pins x 0.5
  EXPECT_DOUBLE_EQ(r.maps.dmd_v.at(0, 0), 1.0);
}

TEST(Estimator, TreesAlignWithNets) {
  Design d = empty_design();
  const CellId a = add_point_cell(d, 10, 10);
  const CellId b = add_point_cell(d, 100, 10);
  const CellId c = add_point_cell(d, 10, 100);
  const NetId n0 = d.add_net("n0");
  d.connect(a, n0, 0, 0);
  d.connect(b, n0, 0, 0);
  const NetId n1 = d.add_net("n1");
  d.connect(a, n1, 0, 0);
  d.connect(b, n1, 0, 0);
  d.connect(c, n1, 0, 0);
  CongestionEstimator est(d, no_penalty_config());
  const CongestionResult r = est.estimate();
  ASSERT_EQ(r.trees.size(), 2u);
  EXPECT_EQ(r.trees[0].segments.size(), 1u);
  EXPECT_GE(r.trees[1].segments.size(), 2u);
}

// Build a congested corridor: many parallel I-shaped nets on one Gcell
// row, so expansion must move demand to neighbouring rows.
TEST(Estimator, DetourExpansionMovesOverflow) {
  Design d = empty_design();
  const int kNets = 200;  // far beyond one Gcell row's capacity
  for (int i = 0; i < kNets; ++i) {
    const CellId a = add_point_cell(d, 12, 112);
    const CellId b = add_point_cell(d, 204, 112);
    const NetId n = d.add_net("net" + std::to_string(i));
    d.connect(a, n, 0, 0);
    d.connect(b, n, 0, 0);
  }

  CongestionConfig off = no_penalty_config();
  CongestionConfig on = off;
  on.enable_detour_expansion = true;
  const CongestionResult r_off = CongestionEstimator(d, off).estimate();
  const CongestionResult r_on = CongestionEstimator(d, on).estimate();

  EXPECT_EQ(r_off.expanded_segments, 0);
  EXPECT_GT(r_on.expanded_segments, 0);
  // Expansion reduces the demand on the congested row and adds demand to
  // parallel rows.
  EXPECT_LT(r_on.maps.dmd_h.at(5, 4), r_off.maps.dmd_h.at(5, 4));
  const double neighbours_on =
      r_on.maps.dmd_h.at(5, 3) + r_on.maps.dmd_h.at(5, 5);
  const double neighbours_off =
      r_off.maps.dmd_h.at(5, 3) + r_off.maps.dmd_h.at(5, 5);
  EXPECT_GT(neighbours_on, neighbours_off);
  // Pin-ended segments model cell spreading: no perpendicular connector
  // demand is added.
  EXPECT_DOUBLE_EQ(r_on.maps.dmd_v.sum(), 0.0);
  // Overflow strictly improves.
  EXPECT_LT(compute_overflow(r_on.maps).total_overflow,
            compute_overflow(r_off.maps).total_overflow);
}

TEST(Estimator, SteinerEndpointsAddPerpendicularConnectors) {
  Design d = empty_design();
  // A 3-pin net whose RSMT has a Steiner point on a congested horizontal
  // trunk. The net comes FIRST so the expansion processes its segments
  // while the row (overloaded by the filler nets below) is congested.
  const CellId p1 = add_point_cell(d, 12, 112);
  const CellId p2 = add_point_cell(d, 204, 112);
  const CellId p3 = add_point_cell(d, 108, 200);
  const NetId n = d.add_net("steiner_net");
  d.connect(p1, n, 0, 0);
  d.connect(p2, n, 0, 0);
  d.connect(p3, n, 0, 0);
  for (int i = 0; i < 200; ++i) {
    const CellId a = add_point_cell(d, 12, 112);
    const CellId b = add_point_cell(d, 204, 112);
    const NetId load = d.add_net("load" + std::to_string(i));
    d.connect(a, load, 0, 0);
    d.connect(b, load, 0, 0);
  }

  CongestionConfig cfg = no_penalty_config();
  cfg.enable_detour_expansion = true;
  const CongestionResult r = CongestionEstimator(d, cfg).estimate();
  // Without expansion the only vertical demand is the 5-Gcell pin leg
  // (rows 4..8 at column 4). Moving the trunk segments must add
  // perpendicular connector demand at the Steiner column.
  EXPECT_GT(r.expanded_segments, 0);
  EXPECT_GT(r.maps.dmd_v.sum(), 5.0 + 0.9);
}

TEST(Estimator, GridGranularityFollowsConfig) {
  Design d = empty_design();
  CongestionConfig cfg;
  cfg.rows_per_gcell = 6.0;  // 48 DBU Gcells -> 5x5
  CongestionEstimator est(d, cfg);
  EXPECT_EQ(est.grid().nx(), 5);
  EXPECT_EQ(est.grid().ny(), 5);
}

TEST(Estimator, WorksOnSyntheticDesign) {
  SyntheticSpec spec;
  spec.num_cells = 300;
  spec.num_nets = 450;
  spec.num_macros = 2;
  const Design d = generate_synthetic(spec);
  CongestionEstimator est(d, CongestionConfig{});
  const CongestionResult r = est.estimate();
  EXPECT_EQ(r.trees.size(), d.nets.size());
  EXPECT_GT(r.maps.dmd_h.sum(), 0.0);
  EXPECT_GT(r.maps.dmd_v.sum(), 0.0);
}

}  // namespace
}  // namespace puffer
