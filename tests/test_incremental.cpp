// Tests for the incremental congestion estimator (per-net demand ledger):
// randomized move sequences must keep estimate_incremental() bit-identical
// to a from-scratch estimate() every round, for any thread count, with the
// detour expansion on or off, and the periodic verified rebuild must never
// observe ledger drift.
#include <gtest/gtest.h>

#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "congestion/estimator.h"
#include "core/flow.h"
#include "io/synthetic.h"

namespace puffer {
namespace {

Design small_synthetic(std::uint64_t seed = 7) {
  SyntheticSpec spec;
  spec.num_cells = 260;
  spec.num_nets = 400;
  spec.num_macros = 2;
  spec.seed = seed;
  return generate_synthetic(spec);
}

// Moves ~frac of the movable cells by a whole-DBU offset (far above the
// 1e-3 cache quantum, so a moved net is always detected as dirty) and
// clamps them into the die.
void perturb_cells(Design& d, Rng& rng, double frac) {
  for (Cell& c : d.cells) {
    if (!c.movable() || !rng.chance(frac)) continue;
    c.x += static_cast<double>(rng.uniform_int(-30, 30));
    c.y += static_cast<double>(rng.uniform_int(-30, 30));
    c.x = clamp(c.x, d.die.xlo, d.die.xhi - c.width);
    c.y = clamp(c.y, d.die.ylo, d.die.yhi - c.height);
  }
}

// Restores the global worker-pool setting after a test that changes it.
struct ThreadGuard {
  ~ThreadGuard() { par::set_num_threads(0); }
};

CongestionConfig incr_config() {
  CongestionConfig cfg;
  cfg.pin_crowding = 1.0;  // exercise the nonlinear pin layer too
  return cfg;
}

void expect_identical(const CongestionResult& inc, const CongestionResult& ref,
                      int round) {
  ASSERT_EQ(inc.maps.dmd_h.raw(), ref.maps.dmd_h.raw()) << "round " << round;
  ASSERT_EQ(inc.maps.dmd_v.raw(), ref.maps.dmd_v.raw()) << "round " << round;
  EXPECT_EQ(inc.expanded_segments, ref.expanded_segments) << "round " << round;
  EXPECT_EQ(demand_checksum(inc.maps), demand_checksum(ref.maps))
      << "round " << round;
}

void run_randomized_equivalence(CongestionConfig cfg, std::uint64_t seed) {
  Design d = small_synthetic(seed);
  CongestionEstimator inc(d, cfg);
  CongestionConfig ref_cfg = cfg;
  ref_cfg.enable_rsmt_cache = false;  // independent from-scratch reference
  CongestionEstimator ref(d, ref_cfg);

  Rng rng(seed * 31 + 1);
  for (int round = 0; round < 10; ++round) {
    if (round > 0) perturb_cells(d, rng, 0.15);
    const CongestionResult a = inc.estimate_incremental();
    const CongestionResult b = ref.estimate();
    expect_identical(a, b, round);
  }
  const IncrementalStats& stats = inc.incremental_stats();
  EXPECT_EQ(stats.calls, 10);
  EXPECT_EQ(stats.drift_count, 0u);
  EXPECT_EQ(stats.full_rebuilds, 1);  // only the initial ledger build
  // With 15% of cells moved per round, most nets must be served from the
  // ledger (this is the whole point of the incremental path).
  EXPECT_GT(stats.nets_total, 0);
  EXPECT_LT(stats.dirty_net_frac(), 0.9);
}

TEST(Incremental, RandomizedMovesBitIdenticalWithExpansion) {
  run_randomized_equivalence(incr_config(), 7);
}

TEST(Incremental, RandomizedMovesBitIdenticalWithoutExpansion) {
  CongestionConfig cfg = incr_config();
  cfg.enable_detour_expansion = false;
  run_randomized_equivalence(cfg, 11);
}

TEST(Incremental, RandomizedMovesBitIdenticalNoPinLayer) {
  CongestionConfig cfg = incr_config();
  cfg.pin_penalty = 0.0;
  cfg.pin_crowding = 0.0;
  run_randomized_equivalence(cfg, 13);
}

// The incremental result must be bit-identical across worker counts: the
// per-round checksums of a 1-thread run and an 8-thread run agree.
TEST(Incremental, ThreadCountInvariance) {
  ThreadGuard guard;
  std::vector<std::uint64_t> checksums[2];
  const int threads[2] = {1, 8};
  for (int t = 0; t < 2; ++t) {
    par::set_num_threads(threads[t]);
    Design d = small_synthetic(17);
    CongestionEstimator est(d, incr_config());
    Rng rng(99);
    for (int round = 0; round < 6; ++round) {
      if (round > 0) perturb_cells(d, rng, 0.2);
      checksums[t].push_back(demand_checksum(est.estimate_incremental().maps));
    }
  }
  EXPECT_EQ(checksums[0], checksums[1]);
}

// Every full_rebuild_interval-th call re-runs the ledger path next to a
// from-scratch rebuild and compares them; drift_count must stay 0.
TEST(Incremental, PeriodicVerifiedRebuildNeverDrifts) {
  Design d = small_synthetic(23);
  CongestionConfig cfg = incr_config();
  cfg.full_rebuild_interval = 4;
  cfg.verify_rebuild = true;
  CongestionEstimator est(d, cfg);
  Rng rng(5);
  for (int round = 0; round < 13; ++round) {
    if (round > 0) perturb_cells(d, rng, 0.25);
    est.estimate_incremental();
  }
  const IncrementalStats& stats = est.incremental_stats();
  EXPECT_EQ(stats.drift_count, 0u);
  EXPECT_GE(stats.full_rebuilds, 3);  // call 0 plus every 4th afterwards
  EXPECT_LT(stats.full_rebuilds, stats.calls);
}

// With the cache (or the feature) disabled the incremental entry point
// must fall back to a plain full estimate and still match the reference.
TEST(Incremental, FallsBackToFullWithoutCache) {
  Design d = small_synthetic(29);
  CongestionConfig cfg = incr_config();
  cfg.enable_rsmt_cache = false;
  CongestionEstimator est(d, cfg);
  const CongestionResult a = est.estimate_incremental();
  const CongestionResult b = est.estimate();
  expect_identical(a, b, 0);
  EXPECT_TRUE(est.incremental_stats().last_was_full);
}

// Invalidation (e.g. after a grid-parameter change upstream) must force a
// rebuild instead of replaying stale trees.
TEST(Incremental, InvalidateForcesRebuild) {
  Design d = small_synthetic(31);
  CongestionEstimator est(d, incr_config());
  est.estimate_incremental();
  est.invalidate_tree_cache();
  est.estimate_incremental();
  EXPECT_TRUE(est.incremental_stats().last_was_full);
  EXPECT_EQ(est.incremental_stats().full_rebuilds, 2);
}

// The warm evaluation router (sharing the estimator's topology cache)
// must produce exactly the same routing result as a cold router.
TEST(Incremental, WarmRouterMatchesColdRouter) {
  Design d = small_synthetic(37);
  CongestionEstimator est(d, incr_config());
  est.estimate_incremental();  // populate the topology cache

  const RouterConfig rcfg;
  const RouteResult cold = evaluate_routability(d, rcfg);
  const RouteResult warm = evaluate_routability(d, rcfg, &est);
  EXPECT_EQ(demand_checksum(cold.maps), demand_checksum(warm.maps));
  EXPECT_DOUBLE_EQ(cold.wirelength, warm.wirelength);
  EXPECT_EQ(cold.segments, warm.segments);
  EXPECT_DOUBLE_EQ(cold.overflow.hof_pct, warm.overflow.hof_pct);
  EXPECT_DOUBLE_EQ(cold.overflow.vof_pct, warm.overflow.vof_pct);
}

// End-to-end parity: the full flow must produce the same placement with
// the incremental estimator as with per-round full estimation.
TEST(Incremental, FlowParityIncrementalVsFull) {
  SyntheticSpec spec;
  spec.num_cells = 150;
  spec.num_nets = 220;
  spec.seed = 3;

  double hpwl[2] = {0.0, 0.0};
  for (int t = 0; t < 2; ++t) {
    Design d = generate_synthetic(spec);
    PufferConfig cfg;
    cfg.congestion.enable_incremental = (t == 0);
    PufferFlow flow(d, cfg);
    const FlowMetrics m = flow.run();
    hpwl[t] = m.hpwl_legal;
    if (t == 0) {
      EXPECT_EQ(m.estimation.drift_count, 0u);
    }
  }
  EXPECT_DOUBLE_EQ(hpwl[0], hpwl[1]);
}

}  // namespace
}  // namespace puffer
