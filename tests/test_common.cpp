// Unit tests for the common utilities: logging, timers, tables, strings,
// deterministic RNG.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "common/logger.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "common/table.h"
#include "common/timer.h"

namespace puffer {
namespace {

TEST(StrUtil, SplitWhitespace) {
  EXPECT_EQ(split_ws("a b  c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split_ws("  leading"), (std::vector<std::string>{"leading"}));
  EXPECT_EQ(split_ws("trailing  "), (std::vector<std::string>{"trailing"}));
  EXPECT_TRUE(split_ws("").empty());
  EXPECT_TRUE(split_ws(" \t\n ").empty());
  EXPECT_EQ(split_ws("\tt a\tb\n"), (std::vector<std::string>{"t", "a", "b"}));
}

TEST(StrUtil, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("  "), "");
  EXPECT_EQ(trim("a b"), "a b");
}

TEST(StrUtil, StartsWith) {
  EXPECT_TRUE(starts_with("NetDegree : 3", "NetDegree"));
  EXPECT_FALSE(starts_with("Net", "NetDegree"));
  EXPECT_TRUE(starts_with("x", ""));
}

TEST(StrUtil, CaseInsensitiveEquals) {
  EXPECT_TRUE(iequals("Coordinate", "coordinate"));
  EXPECT_TRUE(iequals("TERMINAL", "terminal"));
  EXPECT_FALSE(iequals("terminal", "terminal_NI"));
}

TEST(StrUtil, FormatDoubleRoundTripIsShortest) {
  // Human-friendly where 15 digits suffice...
  EXPECT_EQ(format_double_roundtrip(0.1), "0.1");
  EXPECT_EQ(format_double_roundtrip(0.15), "0.15");
  EXPECT_EQ(format_double_roundtrip(1.0), "1");
  EXPECT_EQ(format_double_roundtrip(-2.5), "-2.5");
  EXPECT_EQ(format_double_roundtrip(0.0), "0");
  // ...17 where they do not (0.1 + 0.2 != 0.3 in binary).
  EXPECT_EQ(format_double_roundtrip(0.1 + 0.2), "0.30000000000000004");
}

TEST(StrUtil, FormatDoubleRoundTripIsBitExact) {
  const double values[] = {0.1,
                           1.0 / 3.0,
                           -0.0,
                           1e308,
                           5e-324,  // smallest subnormal
                           2.0111091837465,
                           123456789.123456789};
  for (const double v : values) {
    const std::string s = format_double_roundtrip(v);
    const double parsed = std::strtod(s.c_str(), nullptr);
    EXPECT_EQ(std::memcmp(&parsed, &v, sizeof v), 0) << s;
  }
  // -0.0 keeps its sign (plain == would accept "+0").
  EXPECT_EQ(format_double_roundtrip(-0.0), "-0");
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += (a.uniform_int(0, 1 << 30) == b.uniform_int(0, 1 << 30)) ? 1 : 0;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformIntBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, HeavyTailRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.heavy_tail_int(2, 7, 0.5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 7);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(t.elapsed_seconds(), 0.015);
  t.reset();
  EXPECT_LT(t.elapsed_seconds(), 0.015);
}

TEST(StageTimes, AccumulatesPerStage) {
  StageTimes st;
  st.add("a", 1.0);
  st.add("a", 0.5);
  st.add("b", 2.0);
  EXPECT_DOUBLE_EQ(st.get("a"), 1.5);
  EXPECT_DOUBLE_EQ(st.get("b"), 2.0);
  EXPECT_DOUBLE_EQ(st.get("missing"), 0.0);
  EXPECT_DOUBLE_EQ(st.total(), 3.5);
  st.clear();
  EXPECT_DOUBLE_EQ(st.total(), 0.0);
}

TEST(ScopedStageTimer, AddsOnDestruction) {
  StageTimes st;
  {
    ScopedStageTimer t(st, "scope");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(st.get("scope"), 0.0);
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"long_name", "2.5"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("long_name"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
  // Header separator line present.
  EXPECT_NE(s.find("|---"), std::string::npos);
}

TEST(TextTable, RejectsArityMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only_one"}), std::invalid_argument);
}

TEST(TextTable, CsvOutput) {
  TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(TextTable, NumberFormatting) {
  EXPECT_EQ(TextTable::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::fmt(2.0, 0), "2");
  EXPECT_EQ(TextTable::fmt_int(1234567), "1234567");
}

TEST(Logger, RespectsLevelAndSink) {
  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  Logger& log = Logger::instance();
  log.set_sink(tmp);
  log.set_level(LogLevel::kWarn);
  PUFFER_LOG_INFO("test", "should not appear %d", 1);
  PUFFER_LOG_WARN("test", "should appear %d", 2);
  log.set_sink(nullptr);
  log.set_level(LogLevel::kInfo);

  std::rewind(tmp);
  char buf[4096] = {0};
  const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, tmp);
  const std::string content(buf, n);
  std::fclose(tmp);
  EXPECT_EQ(content.find("should not appear"), std::string::npos);
  EXPECT_NE(content.find("should appear 2"), std::string::npos);
}

TEST(RngStream, DeterministicAndSerializable) {
  RngStream a(42);
  RngStream b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());

  // Serializing mid-stream and resuming continues the exact sequence.
  RngStream c(7);
  for (int i = 0; i < 13; ++i) c.next_u64();
  RngStream resumed = RngStream::from_state(c.key(), c.counter());
  EXPECT_EQ(resumed, c);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(resumed.next_u64(), c.next_u64());

  // Different seeds diverge immediately.
  EXPECT_NE(RngStream(1).next_u64(), RngStream(2).next_u64());
}

TEST(RngStream, UniformBoundsAndCoverage) {
  RngStream s(99);
  double lo = 1.0, hi = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const double u = s.uniform(0.0, 1.0);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
  }
  EXPECT_LT(lo, 0.05);
  EXPECT_GT(hi, 0.95);

  std::vector<int> counts(6, 0);
  for (int i = 0; i < 6000; ++i) {
    const std::int64_t v = s.uniform_int(0, 5);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 5);
    ++counts[static_cast<std::size_t>(v)];
  }
  for (const int c : counts) EXPECT_GT(c, 600);
}

TEST(RngStream, SplitIsOrderIndependent) {
  // A child's stream depends only on (parent key, child id): splitting
  // before or after the parent draws, and in any sibling order, yields
  // bit-identical children -- the property crash-resume relies on.
  RngStream fresh(1234);
  const RngStream child_before = fresh.split(5);

  RngStream drawn(1234);
  for (int i = 0; i < 17; ++i) drawn.next_u64();
  const RngStream child_after = drawn.split(5);
  EXPECT_EQ(child_before, child_after);

  RngStream other(1234);
  other.split(9);  // sibling derived first
  EXPECT_EQ(other.split(5), child_before);
}

TEST(RngStream, SplitChildrenDoNotCollide) {
  std::set<std::uint64_t> keys;
  for (const std::uint64_t seed : {1ull, 2ull, 0xdeadbeefull}) {
    const RngStream root(seed);
    keys.insert(root.key());
    for (std::uint64_t i = 0; i < 4096; ++i) {
      const RngStream child = root.split(i);
      EXPECT_NE(child.key(), root.key());
      keys.insert(child.key());
      // Grandchildren stay distinct too.
      if (i < 64) keys.insert(child.split(i).key());
    }
  }
  EXPECT_EQ(keys.size(), 3u * (4096u + 64u) + 3u);
}

}  // namespace
}  // namespace puffer
