// Cross-module property tests over randomized inputs (parameterized
// sweeps): conservation laws, invariances and determinism guarantees that
// must hold for any input, not just the hand-built cases of the unit
// suites.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "congestion/estimator.h"
#include "explore/tpe.h"
#include "fft/dct.h"
#include "io/synthetic.h"
#include "legal/abacus.h"
#include "legal/legality.h"
#include "rsmt/rsmt.h"

namespace puffer {
namespace {

// --- transforms are linear ------------------------------------------------

class TransformLinearity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TransformLinearity, Dct2IsLinear) {
  const std::size_t n = GetParam();
  Rng rng(n * 31);
  std::vector<double> a(n), b(n), sum(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = rng.uniform(-2, 2);
    b[i] = rng.uniform(-2, 2);
    sum[i] = 3.0 * a[i] - 0.5 * b[i];
  }
  const auto ta = dct2(a), tb = dct2(b), tsum = dct2(sum);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(tsum[k], 3.0 * ta[k] - 0.5 * tb[k], 1e-9);
  }
}

TEST_P(TransformLinearity, IdxstOfZeroIsZero) {
  const auto out = idxst_raw(std::vector<double>(GetParam(), 0.0));
  for (double v : out) EXPECT_DOUBLE_EQ(v, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TransformLinearity,
                         ::testing::Values(2, 8, 32, 128));

// --- RSMT invariances -------------------------------------------------------

class RsmtInvariance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RsmtInvariance, TranslationInvariantLength) {
  Rng rng(GetParam());
  std::vector<Point> pins, shifted;
  const double dx = rng.uniform(-100, 100), dy = rng.uniform(-100, 100);
  for (int i = 0; i < 9; ++i) {
    const Point p{std::floor(rng.uniform(0, 40)), std::floor(rng.uniform(0, 40))};
    pins.push_back(p);
    shifted.push_back({p.x + dx, p.y + dy});
  }
  EXPECT_NEAR(build_rsmt(pins).length(), build_rsmt(shifted).length(), 1e-9);
}

TEST_P(RsmtInvariance, NearPermutationInvariantLength) {
  // The greedy MST + 1-Steiner refinement breaks ties by input order, so
  // permuting the pins may change the topology slightly; the length must
  // stay within a few percent.
  Rng rng(GetParam() + 1000);
  std::vector<Point> pins;
  for (int i = 0; i < 8; ++i) {
    pins.push_back({std::floor(rng.uniform(0, 40)), std::floor(rng.uniform(0, 40))});
  }
  std::vector<Point> reversed(pins.rbegin(), pins.rend());
  const double l1 = build_rsmt(pins).length();
  const double l2 = build_rsmt(reversed).length();
  EXPECT_NEAR(l1, l2, 0.06 * std::max(l1, l2));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RsmtInvariance,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// --- demand conservation ------------------------------------------------

class DemandConservation : public ::testing::TestWithParam<std::uint64_t> {};

// Without pin penalty or expansion, the accumulated demand must exactly
// equal the sum over two-point segments of their Gcell crossing counts.
TEST_P(DemandConservation, TotalsMatchTopology) {
  SyntheticSpec spec;
  spec.seed = GetParam();
  spec.num_cells = 250;
  spec.num_nets = 380;
  spec.num_macros = 2;
  const Design d = generate_synthetic(spec);
  CongestionConfig cfg;
  cfg.pin_penalty = 0.0;
  cfg.enable_detour_expansion = false;
  CongestionEstimator est(d, cfg);
  const CongestionResult r = est.estimate();

  double expect_h = 0.0, expect_v = 0.0;
  const GcellGrid& grid = r.maps.grid;
  for (const RsmtTree& tree : r.trees) {
    for (const RsmtSegment& s : tree.segments) {
      const Point a = tree.points[static_cast<std::size_t>(s.a)].pos;
      const Point b = tree.points[static_cast<std::size_t>(s.b)].pos;
      const GcellIndex ga = grid.index_of(a.x, a.y);
      const GcellIndex gb = grid.index_of(b.x, b.y);
      const int dx = std::abs(ga.gx - gb.gx), dy = std::abs(ga.gy - gb.gy);
      if (dx == 0 && dy == 0) continue;
      if (dy == 0) expect_h += dx + 1;
      else if (dx == 0) expect_v += dy + 1;
      else {
        // L-shape: average demand integrates to one full crossing of the
        // box per direction.
        expect_h += dx + 1;
        expect_v += dy + 1;
      }
    }
  }
  EXPECT_NEAR(r.maps.dmd_h.sum(), expect_h, 1e-6);
  EXPECT_NEAR(r.maps.dmd_v.sum(), expect_v, 1e-6);
}

// Detour expansion conserves the total horizontal demand of pin-ended
// segments (it only relocates rows) and never decreases the vertical
// total (Steiner connectors only add).
TEST_P(DemandConservation, ExpansionRelocatesButConservesH) {
  SyntheticSpec spec;
  spec.seed = GetParam() + 50;
  spec.num_cells = 300;
  spec.num_nets = 450;
  spec.num_macros = 2;
  spec.target_utilization = 0.9;
  const Design d = generate_synthetic(spec);
  CongestionConfig base;
  base.pin_penalty = 0.0;
  base.enable_detour_expansion = false;
  CongestionConfig exp = base;
  exp.enable_detour_expansion = true;
  const CongestionResult r0 = CongestionEstimator(d, base).estimate();
  const CongestionResult r1 = CongestionEstimator(d, exp).estimate();
  // H total only grows by horizontal Steiner connectors; both totals are
  // at least the unexpanded ones.
  EXPECT_GE(r1.maps.dmd_h.sum() + 1e-9, r0.maps.dmd_h.sum());
  EXPECT_GE(r1.maps.dmd_v.sum() + 1e-9, r0.maps.dmd_v.sum());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DemandConservation,
                         ::testing::Values(11, 12, 13, 14, 15));

// --- legalization across random designs -------------------------------------

class LegalizeSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LegalizeSweep, AlwaysLegalAndAreaPreserving) {
  SyntheticSpec spec;
  spec.seed = GetParam();
  spec.num_cells = 400;
  spec.num_nets = 600;
  spec.num_macros = 3;
  spec.target_utilization = 0.6 + 0.05 * (GetParam() % 5);
  Design d = generate_synthetic(spec);
  const double area_before = d.movable_area();
  const LegalizeResult res = legalize(d);
  EXPECT_TRUE(res.success);
  EXPECT_TRUE(check_legality(d).legal) << check_legality(d).summary();
  EXPECT_DOUBLE_EQ(d.movable_area(), area_before);  // sizes untouched
}

INSTANTIATE_TEST_SUITE_P(Seeds, LegalizeSweep,
                         ::testing::Values(21, 22, 23, 24, 25, 26));

// --- TPE determinism -----------------------------------------------------

TEST(TpeDeterminism, SameSeedSameSuggestions) {
  const std::vector<ParamSpec> specs{{"x", ParamKind::kContinuous, 0, 1},
                                     {"y", ParamKind::kInteger, 0, 9}};
  TpeSampler a(specs, TpeConfig{}, 77);
  TpeSampler b(specs, TpeConfig{}, 77);
  std::vector<Observation> obs;
  for (int i = 0; i < 30; ++i) {
    const Assignment sa = a.suggest(obs);
    const Assignment sb = b.suggest(obs);
    ASSERT_EQ(sa.size(), sb.size());
    for (std::size_t k = 0; k < sa.size(); ++k) {
      EXPECT_DOUBLE_EQ(sa[k], sb[k]);
    }
    obs.push_back({sa, static_cast<double>(i % 7)});
  }
}

// --- generator statistics ----------------------------------------------

class GeneratorSweep : public ::testing::TestWithParam<int> {};

TEST_P(GeneratorSweep, NetDegreeTracksTarget) {
  SyntheticSpec spec;
  spec.num_cells = 2000;
  spec.num_nets = 3000;
  spec.avg_net_degree = 2.8 + 0.4 * GetParam();
  const Design d = generate_synthetic(spec);
  double pins = 0.0;
  for (const Net& n : d.nets) pins += static_cast<double>(n.pins.size());
  const double avg = pins / static_cast<double>(d.nets.size());
  EXPECT_NEAR(avg, spec.avg_net_degree, 0.6);
}

INSTANTIATE_TEST_SUITE_P(Degrees, GeneratorSweep, ::testing::Values(0, 1, 2, 3));

}  // namespace
}  // namespace puffer
