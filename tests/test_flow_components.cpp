// Additional flow-level and engine-option tests: placement persistence
// through Bookshelf, engine configuration variants, estimator determinism
// and stage accounting.
#include <gtest/gtest.h>

#include <filesystem>

#include "congestion/estimator.h"
#include "core/flow.h"
#include "io/bookshelf.h"
#include "io/synthetic.h"

namespace puffer {
namespace {

SyntheticSpec small_spec(std::uint64_t seed = 31) {
  SyntheticSpec spec;
  spec.name = "fc";
  spec.seed = seed;
  spec.num_cells = 600;
  spec.num_nets = 900;
  spec.num_macros = 4;
  spec.target_utilization = 0.75;
  return spec;
}

TEST(FlowComponents, PlacementSurvivesBookshelfRoundTrip) {
  Design placed = generate_synthetic(small_spec());
  PufferConfig cfg;
  cfg.gp.max_iters = 300;
  cfg.padding.xi = 2;
  PufferFlow flow(placed, cfg);
  flow.run();

  const auto dir = std::filesystem::temp_directory_path() / "puffer_fc";
  std::filesystem::create_directories(dir);
  const std::string prefix = (dir / "fc").string();
  write_bookshelf(placed, prefix);
  const Design loaded = read_bookshelf(prefix + ".aux");
  EXPECT_NEAR(loaded.total_hpwl(), placed.total_hpwl(),
              placed.total_hpwl() * 1e-9);
  std::filesystem::remove_all(dir);
}

TEST(FlowComponents, StageTimesCoverAllPhases) {
  Design d = generate_synthetic(small_spec());
  PufferConfig cfg;
  cfg.gp.max_iters = 250;
  cfg.padding.xi = 2;
  PufferFlow flow(d, cfg);
  const FlowMetrics m = flow.run();
  EXPECT_GT(m.stages.get("initial_place"), 0.0);
  EXPECT_GT(m.stages.get("global_place"), 0.0);
  EXPECT_GT(m.stages.get("legalize"), 0.0);
  if (m.padding_rounds > 0) {
    EXPECT_GT(m.stages.get("routability_opt"), 0.0);
    EXPECT_GT(m.padding_area, 0.0);
  }
  EXPECT_GE(m.runtime_s, m.stages.get("global_place"));
}

TEST(FlowComponents, EngineWithoutFillersStillSpreads) {
  Design d = generate_synthetic(small_spec());
  initial_place(d);
  GpConfig cfg;
  cfg.use_fillers = false;
  cfg.max_iters = 400;
  EPlaceEngine engine(d, cfg);
  engine.run_to_overflow(0.25);
  EXPECT_LT(engine.density_overflow(), 0.6);
}

TEST(FlowComponents, ExplicitBinDimHonored) {
  Design d = generate_synthetic(small_spec());
  GpConfig cfg;
  cfg.bin_dim = 16;
  EPlaceEngine engine(d, cfg);
  EXPECT_EQ(engine.bin_dim(), 16);
  EXPECT_NEAR(engine.bin_w() * 16, d.die.width(), 1e-9);
}

TEST(FlowComponents, RunToOverflowStopsAtTarget) {
  Design d = generate_synthetic(small_spec());
  initial_place(d);
  GpConfig cfg;
  EPlaceEngine engine(d, cfg);
  const double reached = engine.run_to_overflow(0.4);
  // Either the target was reached or the engine hit its caps.
  if (!engine.converged() && engine.iteration() < cfg.max_iters) {
    EXPECT_LE(reached, 0.4);
  }
  // One more call makes further progress or returns immediately.
  const double again = engine.run_to_overflow(0.4);
  EXPECT_LE(again, std::max(reached, 0.4) + 1e-9);
}

TEST(FlowComponents, EstimatorDeterministic) {
  const Design d = generate_synthetic(small_spec());
  CongestionEstimator a(d, CongestionConfig{});
  CongestionEstimator b(d, CongestionConfig{});
  const CongestionResult ra = a.estimate();
  const CongestionResult rb = b.estimate();
  ASSERT_EQ(ra.maps.dmd_h.size(), rb.maps.dmd_h.size());
  for (std::size_t i = 0; i < ra.maps.dmd_h.size(); ++i) {
    EXPECT_DOUBLE_EQ(ra.maps.dmd_h.raw()[i], rb.maps.dmd_h.raw()[i]);
  }
  EXPECT_EQ(ra.expanded_segments, rb.expanded_segments);
}

TEST(FlowComponents, PaddingAreaReflectsDiscretization) {
  Design d = generate_synthetic(small_spec(77));
  PufferConfig cfg;
  cfg.gp.max_iters = 350;
  cfg.padding.xi = 4;
  cfg.discrete.max_pad_area_frac = 0.05;
  PufferFlow flow(d, cfg);
  const FlowMetrics m = flow.run();
  EXPECT_LE(m.padding_area, 0.05 * d.movable_area() + 1e-6);
}

TEST(FlowComponents, EvaluateRoutabilityUsesCurrentPositions) {
  Design d = generate_synthetic(small_spec());
  const RouteResult before = evaluate_routability(d);
  // Collapse every movable cell to the center: congestion must explode.
  const Point c = d.die.center();
  for (Cell& cell : d.cells) {
    if (cell.movable()) {
      cell.x = c.x;
      cell.y = c.y;
    }
  }
  const RouteResult after = evaluate_routability(d);
  EXPECT_GT(after.overflow.total_pct(), before.overflow.total_pct());
}

}  // namespace
}  // namespace puffer
