// Tests for the global-placement engine: WA wirelength model and analytic
// gradient (checked against finite differences), initial placement, and
// the Nesterov engine's spreading behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "gp/engine.h"
#include "gp/initial_place.h"
#include "gp/wirelength.h"
#include "io/synthetic.h"

namespace puffer {
namespace {

Design two_cell_design() {
  Design d;
  d.die = {0, 0, 100, 100};
  d.tech = Technology::make_default(1.0, 8.0);
  for (int r = 0; r < 12; ++r) d.rows.push_back({r * 8.0, 0, 100, 1.0, 8.0});
  Cell a;
  a.name = "a";
  a.width = 2;
  a.height = 8;
  a.x = 10;
  a.y = 10;
  Cell b = a;
  b.name = "b";
  b.x = 60;
  b.y = 40;
  const CellId ca = d.add_cell(a);
  const CellId cb = d.add_cell(b);
  const NetId n = d.add_net("n");
  d.connect(ca, n, 1, 4);
  d.connect(cb, n, 1, 4);
  return d;
}

TEST(WaWirelength, ApproachesHpwlForSmallGamma) {
  const Design d = two_cell_design();
  WaWirelength wl(d);
  std::vector<double> x{11, 61}, y{14, 44};  // cell centers
  std::vector<double> gx, gy;
  const double hpwl = wl.hpwl(x, y);
  EXPECT_DOUBLE_EQ(hpwl, 50.0 + 30.0);
  const double wa_tight = wl.evaluate(x, y, 0.01, gx, gy);
  EXPECT_NEAR(wa_tight, hpwl, 0.1);
  // WA underestimates HPWL (log-sum-exp smoothing from below).
  const double wa_loose = wl.evaluate(x, y, 50.0, gx, gy);
  EXPECT_LT(wa_loose, hpwl);
}

TEST(WaWirelength, GradientMatchesFiniteDifference) {
  SyntheticSpec spec;
  spec.num_cells = 60;
  spec.num_nets = 90;
  spec.num_macros = 1;
  spec.num_terminals = 8;
  const Design d = generate_synthetic(spec);
  WaWirelength wl(d);
  const std::size_t n = wl.movable_cells().size();
  Rng rng(3);
  std::vector<double> x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.uniform(10, 90);
    y[i] = rng.uniform(10, 90);
  }
  const double gamma = 5.0;
  std::vector<double> gx, gy;
  wl.evaluate(x, y, gamma, gx, gy);

  const double h = 1e-5;
  std::vector<double> tmp_gx, tmp_gy;
  for (std::size_t i = 0; i < std::min<std::size_t>(n, 12); ++i) {
    auto xp = x;
    xp[i] += h;
    auto xm = x;
    xm[i] -= h;
    const double fp = wl.evaluate(xp, y, gamma, tmp_gx, tmp_gy);
    const double fm = wl.evaluate(xm, y, gamma, tmp_gx, tmp_gy);
    const double fd = (fp - fm) / (2 * h);
    EXPECT_NEAR(gx[i], fd, 1e-4 * std::max(1.0, std::abs(fd)))
        << "cell " << i << " x-gradient";

    auto yp = y;
    yp[i] += h;
    auto ym = y;
    ym[i] -= h;
    const double fyp = wl.evaluate(x, yp, gamma, tmp_gx, tmp_gy);
    const double fym = wl.evaluate(x, ym, gamma, tmp_gx, tmp_gy);
    const double fdy = (fyp - fym) / (2 * h);
    EXPECT_NEAR(gy[i], fdy, 1e-4 * std::max(1.0, std::abs(fdy)))
        << "cell " << i << " y-gradient";
  }
}

TEST(WaWirelength, GradientPullsPinsTogether) {
  const Design d = two_cell_design();
  WaWirelength wl(d);
  std::vector<double> x{11, 61}, y{14, 44};
  std::vector<double> gx, gy;
  wl.evaluate(x, y, 2.0, gx, gy);
  // Left cell is pulled right (negative gradient means moving +x lowers
  // W... the gradient of W w.r.t. left cell x must be negative).
  EXPECT_LT(gx[0], 0.0);
  EXPECT_GT(gx[1], 0.0);
  EXPECT_LT(gy[0], 0.0);
  EXPECT_GT(gy[1], 0.0);
}

TEST(WaWirelength, RespectsNetWeight) {
  Design d = two_cell_design();
  d.nets[0].weight = 3.0;
  WaWirelength wl(d);
  std::vector<double> x{11, 61}, y{14, 44}, gx, gy;
  const double w3 = wl.evaluate(x, y, 2.0, gx, gy);
  const double g3 = gx[0];
  d.nets[0].weight = 1.0;
  WaWirelength wl1(d);
  const double w1 = wl1.evaluate(x, y, 2.0, gx, gy);
  EXPECT_NEAR(w3, 3.0 * w1, 1e-9);
  EXPECT_NEAR(g3, 3.0 * gx[0], 1e-9);
}

TEST(WaWirelength, PinCountsForPreconditioner) {
  const Design d = two_cell_design();
  WaWirelength wl(d);
  ASSERT_EQ(wl.pin_counts().size(), 2u);
  EXPECT_DOUBLE_EQ(wl.pin_counts()[0], 1.0);
}

TEST(InitialPlace, PullsTowardFixedAnchors) {
  Design d = two_cell_design();
  // Add a terminal at the far corner on the same net.
  Cell t;
  t.name = "t";
  t.kind = CellKind::kTerminal;
  t.x = 100;
  t.y = 100;
  const CellId ct = d.add_cell(t);
  d.connect(ct, 0, 0, 0);

  InitialPlaceConfig cfg;
  cfg.sweeps = 30;
  initial_place(d, cfg);
  // Cells end up pulled toward the anchor, away from the center.
  EXPECT_GT(d.cells[0].x, 50.0);
  EXPECT_GT(d.cells[0].y, 50.0);
}

TEST(InitialPlace, KeepExistingRefines) {
  Design d = two_cell_design();
  const double x0 = d.cells[0].x;
  InitialPlaceConfig cfg;
  cfg.keep_existing = true;
  cfg.sweeps = 0;
  initial_place(d, cfg);
  EXPECT_DOUBLE_EQ(d.cells[0].x, x0);
}

SyntheticSpec engine_spec() {
  SyntheticSpec spec;
  spec.num_cells = 500;
  spec.num_nets = 750;
  spec.num_macros = 3;
  spec.target_utilization = 0.75;
  return spec;
}

TEST(Engine, SpreadsClusteredPlacement) {
  Design d = generate_synthetic(engine_spec());
  initial_place(d);
  GpConfig cfg;
  cfg.max_iters = 400;
  EPlaceEngine engine(d, cfg);
  const double of0 = [&] {
    EPlaceEngine probe(d, cfg);
    probe.step();
    return probe.density_overflow();
  }();
  engine.run_to_overflow(0.15);
  EXPECT_LT(engine.density_overflow(), 0.16);
  EXPECT_LT(engine.density_overflow(), of0 * 0.5);
}

TEST(Engine, SyncWritesLegalBoundsPositions) {
  Design d = generate_synthetic(engine_spec());
  initial_place(d);
  GpConfig cfg;
  cfg.max_iters = 60;
  EPlaceEngine engine(d, cfg);
  for (int i = 0; i < 50; ++i) engine.step();
  engine.sync_to_design();
  for (const Cell& c : d.cells) {
    if (!c.movable()) continue;
    EXPECT_GE(c.x, d.die.xlo - 1e-6);
    EXPECT_LE(c.x + c.width, d.die.xhi + 1e-6);
    EXPECT_GE(c.y, d.die.ylo - 1e-6);
    EXPECT_LE(c.y + c.height, d.die.yhi + 1e-6);
  }
}

TEST(Engine, StepReportsIterationCap) {
  Design d = generate_synthetic(engine_spec());
  GpConfig cfg;
  cfg.max_iters = 5;
  EPlaceEngine engine(d, cfg);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(engine.step());
  EXPECT_FALSE(engine.step());
  EXPECT_EQ(engine.iteration(), 5);
}

TEST(Engine, PaddingIncreasesLocalSpreading) {
  // Two identical engines; one pads the cells of one cluster heavily.
  Design d1 = generate_synthetic(engine_spec());
  Design d2 = d1;
  GpConfig cfg;
  cfg.max_iters = 250;
  EPlaceEngine e1(d1, cfg);
  EPlaceEngine e2(d2, cfg);
  e1.run_to_overflow(0.2);
  e2.run_to_overflow(0.2);
  // Pad every movable in e2 by 50% of its width: total area grows, so
  // the padded run must end with cells occupying more bins (higher final
  // HPWL) -- padding consumes whitespace.
  std::vector<double> pad(e2.movable_cells().size());
  for (std::size_t i = 0; i < pad.size(); ++i) {
    pad[i] = d2.cells[static_cast<std::size_t>(e2.movable_cells()[i])].width * 0.5;
  }
  e2.set_padding(pad);
  e1.run_to_overflow(0.12);
  e2.run_to_overflow(0.12);
  EXPECT_GT(e2.last_hpwl(), e1.last_hpwl() * 1.01);
}

TEST(Engine, BinDimIsPowerOfTwo) {
  Design d = generate_synthetic(engine_spec());
  GpConfig cfg;
  cfg.bin_dim = 48;  // rounded up to 64
  EPlaceEngine engine(d, cfg);
  EXPECT_EQ(engine.bin_dim(), 64);
}

TEST(Engine, ConvergedLatchClearsOnPadding) {
  Design d = generate_synthetic(engine_spec());
  GpConfig cfg;
  cfg.max_iters = 2000;
  EPlaceEngine engine(d, cfg);
  engine.run_to_overflow(0.0);  // unreachable: runs until plateau latch
  EXPECT_TRUE(engine.converged());
  EXPECT_FALSE(engine.step());
  std::vector<double> pad(engine.movable_cells().size(), 1.0);
  engine.set_padding(pad);
  EXPECT_FALSE(engine.converged());
  EXPECT_TRUE(engine.step());
}

}  // namespace
}  // namespace puffer
