// Tests for Bookshelf I/O (round-trip, error handling) and the synthetic
// benchmark generator (invariants, determinism, Table I suite).
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "io/bookshelf.h"
#include "io/synthetic.h"

namespace puffer {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() {
    dir_ = fs::temp_directory_path() /
           ("puffer_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter_++));
    fs::create_directories(dir_);
  }
  ~TempDir() { fs::remove_all(dir_); }
  std::string path(const std::string& name) const { return (dir_ / name).string(); }

 private:
  fs::path dir_;
  static int counter_;
};
int TempDir::counter_ = 0;

SyntheticSpec small_spec() {
  SyntheticSpec spec;
  spec.name = "tiny";
  spec.num_cells = 400;
  spec.num_nets = 600;
  spec.num_macros = 4;
  spec.num_terminals = 16;
  spec.seed = 5;
  return spec;
}

TEST(Synthetic, GeneratesValidDesign) {
  const Design d = generate_synthetic(small_spec());
  EXPECT_EQ(d.validate(), "");
  EXPECT_EQ(d.num_movable(), 400u);
  EXPECT_EQ(d.nets.size(), 600u);
  EXPECT_LE(d.num_macros(), 4u);
  EXPECT_FALSE(d.rows.empty());
  EXPECT_GT(d.die.area(), 0.0);
}

TEST(Synthetic, UtilizationNearTarget) {
  SyntheticSpec spec = small_spec();
  spec.target_utilization = 0.7;
  const Design d = generate_synthetic(spec);
  EXPECT_NEAR(d.utilization(), 0.7, 0.08);
}

TEST(Synthetic, DeterministicForSameSeed) {
  const Design a = generate_synthetic(small_spec());
  const Design b = generate_synthetic(small_spec());
  ASSERT_EQ(a.cells.size(), b.cells.size());
  ASSERT_EQ(a.pins.size(), b.pins.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.cells[i].x, b.cells[i].x);
    EXPECT_DOUBLE_EQ(a.cells[i].width, b.cells[i].width);
  }
}

TEST(Synthetic, DifferentSeedsDiffer) {
  SyntheticSpec s2 = small_spec();
  s2.seed = 6;
  const Design a = generate_synthetic(small_spec());
  const Design b = generate_synthetic(s2);
  int same = 0;
  for (std::size_t i = 0; i < std::min(a.cells.size(), b.cells.size()); ++i) {
    same += (a.cells[i].x == b.cells[i].x) ? 1 : 0;
  }
  EXPECT_LT(same, static_cast<int>(a.cells.size() / 4));
}

TEST(Synthetic, MacrosDoNotOverlap) {
  const Design d = generate_synthetic(small_spec());
  std::vector<Rect> macros;
  for (const Cell& c : d.cells) {
    if (c.is_macro()) macros.push_back(c.rect());
  }
  for (std::size_t i = 0; i < macros.size(); ++i) {
    for (std::size_t j = i + 1; j < macros.size(); ++j) {
      EXPECT_DOUBLE_EQ(macros[i].overlap_area(macros[j]), 0.0);
    }
  }
}

TEST(Synthetic, AllNetsHaveAtLeastTwoPins) {
  const Design d = generate_synthetic(small_spec());
  for (const Net& n : d.nets) EXPECT_GE(n.pins.size(), 2u);
}

TEST(Synthetic, RowsCoverDie) {
  const Design d = generate_synthetic(small_spec());
  double covered = 0.0;
  for (const Row& r : d.rows) covered += (r.x_hi() - r.x_lo) * r.height;
  EXPECT_NEAR(covered, d.die.area(), 1e-6);
}

TEST(Table1Suite, HasTenPaperBenchmarks) {
  const auto suite = table1_suite(40);
  ASSERT_EQ(suite.size(), 10u);
  EXPECT_EQ(suite.front().name, "OR1200");
  EXPECT_EQ(suite.back().name, "OPENC910");
  // Relative sizes follow Table I: OPENC910 is the largest.
  EXPECT_GT(suite.back().num_cells, suite.front().num_cells);
  // Macro counts are NOT scaled.
  EXPECT_EQ(suite.back().num_macros, 332);
  EXPECT_EQ(suite[5].name, "A53_ADB_WRAP");
  EXPECT_EQ(suite[5].num_macros, 7);
}

TEST(Table1Suite, ScalingDividesCells) {
  const auto s40 = table1_spec("BIT_COIN", 40);
  const auto s80 = table1_spec("BIT_COIN", 80);
  EXPECT_NEAR(static_cast<double>(s40.num_cells) / s80.num_cells, 2.0, 0.01);
}

TEST(Table1Suite, UnknownNameThrows) {
  EXPECT_THROW(table1_spec("NOT_A_BENCH", 40), std::out_of_range);
  EXPECT_THROW(table1_suite(0), std::out_of_range);
}

TEST(Bookshelf, RoundTripPreservesStructure) {
  TempDir tmp;
  const Design a = generate_synthetic(small_spec());
  write_bookshelf(a, tmp.path("tiny"));
  const Design b = read_bookshelf(tmp.path("tiny.aux"));

  ASSERT_EQ(b.cells.size(), a.cells.size());
  ASSERT_EQ(b.nets.size(), a.nets.size());
  ASSERT_EQ(b.pins.size(), a.pins.size());
  ASSERT_EQ(b.rows.size(), a.rows.size());
  EXPECT_EQ(b.validate(), "");
  EXPECT_NEAR(b.die.width(), a.die.width(), 1e-9);

  // Cell geometry and positions survive.
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_EQ(b.cells[i].name, a.cells[i].name);
    EXPECT_NEAR(b.cells[i].width, a.cells[i].width, 1e-9);
    EXPECT_NEAR(b.cells[i].x, a.cells[i].x, 1e-6);
    EXPECT_EQ(b.cells[i].movable(), a.cells[i].movable());
  }
  // HPWL identical (pin offsets survive the center-based conversion).
  EXPECT_NEAR(b.total_hpwl(), a.total_hpwl(), a.total_hpwl() * 1e-9);
}

TEST(Bookshelf, PlRoundTrip) {
  TempDir tmp;
  Design a = generate_synthetic(small_spec());
  write_pl(a, tmp.path("x.pl"));
  // Perturb and restore.
  Design b = a;
  for (Cell& c : b.cells) {
    if (c.movable()) c.x += 13.0;
  }
  read_pl_into(b, tmp.path("x.pl"));
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_NEAR(b.cells[i].x, a.cells[i].x, 1e-9);
  }
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

TEST(Bookshelf, WriteReadWriteIsByteStable) {
  // Round-trip double formatting: the files a re-read design writes are
  // byte-identical to the originals, and the parsed coordinates are
  // bit-equal to the placed ones.
  TempDir tmp;
  Design a = generate_synthetic(small_spec());
  // Fractional positions that 6- or 15-digit formatting would mangle.
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    if (a.cells[i].movable()) {
      a.cells[i].x += 0.1 + static_cast<double>(i) / 3.0;
      a.cells[i].y += 0.30000000000000004;
    }
  }
  write_bookshelf(a, tmp.path("gen1"));
  const Design b = read_bookshelf(tmp.path("gen1.aux"));
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_EQ(b.cells[i].x, a.cells[i].x) << i;  // exact, not NEAR
    EXPECT_EQ(b.cells[i].y, a.cells[i].y) << i;
  }
  write_bookshelf(b, tmp.path("gen2"));
  for (const char* ext : {".nodes", ".nets", ".pl", ".scl"}) {
    EXPECT_EQ(slurp(tmp.path(std::string("gen1") + ext)),
              slurp(tmp.path(std::string("gen2") + ext)))
        << ext;
  }
}

TEST(Bookshelf, MissingAuxThrows) {
  EXPECT_THROW(read_bookshelf("/nonexistent/file.aux"), BookshelfError);
}

TEST(Bookshelf, MalformedAuxThrows) {
  TempDir tmp;
  std::ofstream(tmp.path("bad.aux")) << "RowBasedPlacement : only.nodes\n";
  EXPECT_THROW(read_bookshelf(tmp.path("bad.aux")), BookshelfError);
}

TEST(Bookshelf, UnknownCellInNetsThrows) {
  TempDir tmp;
  std::ofstream(tmp.path("t.aux"))
      << "RowBasedPlacement : t.nodes t.nets t.pl t.scl\n";
  std::ofstream(tmp.path("t.nodes")) << "UCLA nodes 1.0\n a 2 8\n";
  std::ofstream(tmp.path("t.nets"))
      << "UCLA nets 1.0\nNetDegree : 2 n\n a B : 0 0\n ghost B : 0 0\n";
  std::ofstream(tmp.path("t.pl")) << "UCLA pl 1.0\n a 0 0 : N\n";
  std::ofstream(tmp.path("t.scl"))
      << "UCLA scl 1.0\nCoreRow Horizontal\n Coordinate : 0\n Height : 8\n"
      << " Sitewidth : 1\n SubrowOrigin : 0 NumSites : 10\nEnd\n";
  EXPECT_THROW(read_bookshelf(tmp.path("t.aux")), BookshelfError);
}

TEST(Bookshelf, ParsesMinimalHandWrittenDesign) {
  TempDir tmp;
  std::ofstream(tmp.path("m.aux"))
      << "RowBasedPlacement : m.nodes m.nets m.pl m.scl\n";
  std::ofstream(tmp.path("m.nodes"))
      << "UCLA nodes 1.0\n# comment\nNumNodes : 3\nNumTerminals : 1\n"
      << " a 2 8\n b 3 8\n pad 0 0 terminal_NI\n";
  std::ofstream(tmp.path("m.nets"))
      << "UCLA nets 1.0\nNumNets : 1\nNumPins : 3\n"
      << "NetDegree : 3 n0\n a I : 0.5 1\n b O : -1 0\n pad B\n";
  std::ofstream(tmp.path("m.pl"))
      << "UCLA pl 1.0\n a 4 8 : N\n b 10 16 : N\n pad 0 0 : N /FIXED\n";
  std::ofstream(tmp.path("m.scl"))
      << "UCLA scl 1.0\nNumRows : 2\n"
      << "CoreRow Horizontal\n  Coordinate : 0\n  Height : 8\n"
      << "  Sitewidth : 1\n  SubrowOrigin : 0  NumSites : 20\nEnd\n"
      << "CoreRow Horizontal\n  Coordinate : 8\n  Height : 8\n"
      << "  Sitewidth : 1\n  SubrowOrigin : 0  NumSites : 20\nEnd\n";

  const Design d = read_bookshelf(tmp.path("m.aux"));
  EXPECT_EQ(d.cells.size(), 3u);
  EXPECT_EQ(d.num_movable(), 2u);
  EXPECT_EQ(d.nets.size(), 1u);
  EXPECT_EQ(d.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(d.die.width(), 20.0);
  EXPECT_DOUBLE_EQ(d.die.height(), 16.0);
  // Pin offset: cell a center (1, 4) + (0.5, 1) -> cell pos (4, 8) gives
  // absolute (5.5, 13).
  EXPECT_EQ(d.pin_position(0), (Point{5.5, 13.0}));
}

}  // namespace
}  // namespace puffer
