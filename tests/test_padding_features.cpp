// Tests for the incremental, parallel padding feature pipeline
// (padding/features.h, padding/feature_query.h): the sparse-table RMQ and
// summed-area table must match brute force (including per-line rebuilds),
// the fast path must be bit-identical to the scalar legacy oracle for any
// PUFFER_THREADS, incremental maintenance must be bit-identical to
// from-scratch extraction with zero verified-rebuild drift, a broken
// dirty-Gcell delta chain must fall back to the exact self-diff, and the
// full flow must place identically across every extractor mode and
// through a snapshot save/restore.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "congestion/estimator.h"
#include "core/flow.h"
#include "io/checkpoint.h"
#include "io/synthetic.h"
#include "padding/feature_query.h"
#include "padding/features.h"

namespace puffer {
namespace {

Design small_synthetic(std::uint64_t seed = 7) {
  SyntheticSpec spec;
  spec.num_cells = 260;
  spec.num_nets = 400;
  spec.num_macros = 2;
  spec.seed = seed;
  return generate_synthetic(spec);
}

// Moves ~frac of the movable cells by a whole-DBU offset and clamps them
// into the die (the test_incremental.cpp idiom).
void perturb_cells(Design& d, Rng& rng, double frac) {
  for (Cell& c : d.cells) {
    if (!c.movable() || !rng.chance(frac)) continue;
    c.x += static_cast<double>(rng.uniform_int(-30, 30));
    c.y += static_cast<double>(rng.uniform_int(-30, 30));
    c.x = clamp(c.x, d.die.xlo, d.die.xhi - c.width);
    c.y = clamp(c.y, d.die.ylo, d.die.yhi - c.height);
  }
}

std::vector<CellId> movable_cells(const Design& d) {
  std::vector<CellId> out;
  for (CellId c = 0; c < static_cast<CellId>(d.cells.size()); ++c) {
    if (d.cells[static_cast<std::size_t>(c)].movable()) out.push_back(c);
  }
  return out;
}

// Restores the global worker-pool setting after a test that changes it.
struct ThreadGuard {
  ~ThreadGuard() { par::set_num_threads(0); }
};

void expect_features_identical(const std::vector<FeatureVector>& got,
                               const std::vector<FeatureVector>& ref,
                               const char* what, int round) {
  ASSERT_EQ(got.size(), ref.size()) << what << " round " << round;
  for (std::size_t i = 0; i < got.size(); ++i) {
    for (int k = 0; k < FeatureVector::kCount; ++k) {
      ASSERT_EQ(got[i][k], ref[i][k])
          << what << " round " << round << " cell " << i << " feature " << k;
    }
  }
}

std::uint64_t placement_checksum(const Design& d) {
  BinaryWriter w;
  for (const Cell& c : d.cells) {
    w.put_f64(c.x);
    w.put_f64(c.y);
  }
  return fnv1a_bytes(w.buffer().data(), w.buffer().size());
}

SyntheticSpec flow_spec(std::uint64_t seed = 17) {
  SyntheticSpec spec;
  spec.name = "pf";
  spec.seed = seed;
  spec.num_cells = 300;
  spec.num_nets = 450;
  spec.num_macros = 2;
  spec.target_utilization = 0.78;
  spec.v_capacity_factor = 0.55;  // congested enough to trigger padding
  return spec;
}

PufferConfig flow_config() {
  PufferConfig cfg;
  cfg.gp.max_iters = 250;
  cfg.padding.xi = 3;
  cfg.num_threads = 0;  // tests pin the global count themselves
  return cfg;
}

TEST(FeatureQuery, RowColRmqMatchesBruteForce) {
  const int nx = 13, ny = 9;
  Rng rng(3);
  std::vector<std::int64_t> vals(static_cast<std::size_t>(nx) * ny);
  for (std::int64_t& v : vals) v = rng.uniform_int(-1000000, 1000000);

  RowColRmq rmq;
  rmq.build(vals, nx, ny);

  const auto check_all = [&](const char* phase) {
    for (int gy = 0; gy < ny; ++gy) {
      for (int x0 = 0; x0 < nx; ++x0) {
        std::int64_t m = std::numeric_limits<std::int64_t>::min();
        for (int x1 = x0; x1 < nx; ++x1) {
          m = std::max(m, vals[static_cast<std::size_t>(gy) * nx + x1]);
          ASSERT_EQ(rmq.row_max(gy, x0, x1), m)
              << phase << " row " << gy << " [" << x0 << "," << x1 << "]";
        }
      }
    }
    for (int gx = 0; gx < nx; ++gx) {
      for (int y0 = 0; y0 < ny; ++y0) {
        std::int64_t m = std::numeric_limits<std::int64_t>::min();
        for (int y1 = y0; y1 < ny; ++y1) {
          m = std::max(m, vals[static_cast<std::size_t>(y1) * nx + gx]);
          ASSERT_EQ(rmq.col_max(gx, y0, y1), m)
              << phase << " col " << gx << " [" << y0 << "," << y1 << "]";
        }
      }
    }
  };
  check_all("build");

  // Dirty-cell update discipline (what the extractor does): mutate a few
  // cells, then re-tabulate exactly their rows and columns.
  const int touched[][2] = {{4, 2}, {7, 2}, {0, 8}, {12, 0}};
  for (const auto& t : touched) {
    vals[static_cast<std::size_t>(t[1]) * nx + t[0]] =
        rng.uniform_int(-1000000, 1000000);
  }
  for (const int gy : {2, 8, 0}) rmq.rebuild_row(vals, gy);
  for (const int gx : {4, 7, 0, 12}) rmq.rebuild_col(vals, gx);
  check_all("rebuild");
}

TEST(FeatureQuery, SummedAreaTableMatchesBruteForce) {
  const int nx = 11, ny = 7;
  Rng rng(5);
  std::vector<std::int64_t> vals(static_cast<std::size_t>(nx) * ny);
  for (std::int64_t& v : vals) v = rng.uniform_int(-500000, 500000);

  SummedAreaTable sat;
  sat.build(vals, nx, ny);
  for (int x0 = 0; x0 < nx; ++x0) {
    for (int x1 = x0; x1 < nx; ++x1) {
      for (int y0 = 0; y0 < ny; ++y0) {
        for (int y1 = y0; y1 < ny; ++y1) {
          std::int64_t sum = 0;
          for (int y = y0; y <= y1; ++y) {
            for (int x = x0; x <= x1; ++x) {
              sum += vals[static_cast<std::size_t>(y) * nx + x];
            }
          }
          ASSERT_EQ(sat.window_sum(x0, x1, y0, y1), sum)
              << "[" << x0 << "," << x1 << "]x[" << y0 << "," << y1 << "]";
        }
      }
    }
  }
}

TEST(FeatureQuery, QuantizationRoundTripsMapValues) {
  // Ledger-scale congestion values and pin densities survive the 2^-32
  // quantum exactly enough for bitwise-stable features: the quantizer is
  // deterministic and monotone, and dequantize(quantize(v)) is within
  // half a quantum.
  for (const double v : {0.0, 1.0, -3.25, 0.1234567, 8191.99, -8192.0}) {
    const std::int64_t q = quantize_feature(v);
    EXPECT_NEAR(dequantize_feature(q), v, 0.5 * kFeatureQuantum);
    EXPECT_EQ(q, quantize_feature(dequantize_feature(q)));  // fixed point
  }
  EXPECT_LT(quantize_feature(1.0), quantize_feature(1.0 + kFeatureQuantum));
}

// Moves exactly `count` movable cells by one DBU -- a perturbation small
// enough that most of the congestion map (and most net bounding boxes)
// stays untouched, so the cross-round caches can prove themselves.
void nudge_cells(Design& d, Rng& rng, int count) {
  int moved = 0;
  for (Cell& c : d.cells) {
    if (!c.movable() || moved >= count) continue;
    if (!rng.chance(0.1)) continue;
    c.x = clamp(c.x + 1.0, d.die.xlo, d.die.xhi - c.width);
    ++moved;
  }
}

TEST(PaddingFeatures, LegacyVsFastBitIdenticalAcrossThreads) {
  ThreadGuard guard;
  Design d = small_synthetic(11);
  const std::vector<CellId> movable = movable_cells(d);
  CongestionEstimator est(d, CongestionConfig{});

  FeatureConfig legacy_cfg;
  legacy_cfg.use_legacy_extractor = true;
  FeatureExtractor legacy(d, legacy_cfg);

  // One persistent fast extractor per thread count: each sees the same
  // congestion-result sequence, so the per-net caches and incremental
  // maps evolve identically and every round must match the oracle.
  const int kThreads[3] = {1, 2, 8};
  FeatureConfig fast_cfg;
  FeatureExtractor fast1(d, fast_cfg), fast2(d, fast_cfg), fast8(d, fast_cfg);
  FeatureExtractor* fast[3] = {&fast1, &fast2, &fast8};

  Rng rng(99);
  for (int round = 0; round < 6; ++round) {
    if (round > 0) perturb_cells(d, rng, 0.2);
    const CongestionResult cr = est.estimate_incremental();
    const auto ref = legacy.extract(cr, movable);
    for (int ti = 0; ti < 3; ++ti) {
      par::set_num_threads(kThreads[ti]);
      const auto got = fast[ti]->extract(cr, movable);
      expect_features_identical(got, ref, "fast-vs-legacy", round);
    }
  }
  for (FeatureExtractor* fx : fast) {
    const PaddingStageMetrics& m = fx->stage_metrics();
    EXPECT_EQ(m.drift_count, 0u);
    EXPECT_EQ(m.extracts, 6);
    EXPECT_EQ(m.full_rebuilds, 1);  // only the first call builds maps
    // Most trees are unchanged between rounds, so the topology cache must
    // actually be doing work.
    EXPECT_GT(m.incidence_hits, 0u);
    EXPECT_GT(m.gcells_total, 0);
  }
}

TEST(PaddingFeatures, SmallMovesReuseCachedPathsAndStayIdentical) {
  // A near-converged placement (a few one-DBU nudges per round) is the
  // regime the incremental pipeline targets: most Gcells stay clean and
  // most per-pin path minima are served from the cross-round cache --
  // while remaining bit-identical to the from-scratch oracle.
  Design d = small_synthetic(31);
  const std::vector<CellId> movable = movable_cells(d);
  CongestionEstimator est(d, CongestionConfig{});

  FeatureConfig legacy_cfg;
  legacy_cfg.use_legacy_extractor = true;
  FeatureExtractor legacy(d, legacy_cfg);
  FeatureExtractor fast(d, FeatureConfig{});

  Rng rng(77);
  for (int round = 0; round < 8; ++round) {
    if (round > 0) nudge_cells(d, rng, 3);
    const CongestionResult cr = est.estimate_incremental();
    const auto ref = legacy.extract(cr, movable);
    expect_features_identical(fast.extract(cr, movable), ref, "nudge", round);
  }
  const PaddingStageMetrics& m = fast.stage_metrics();
  EXPECT_EQ(m.drift_count, 0u);
  EXPECT_EQ(m.full_rebuilds, 1);
  EXPECT_GT(m.incidence_hits, 0u);
  EXPECT_GT(m.nets_reused, 0);
  EXPECT_GT(m.gcells_total, 0);
  EXPECT_LT(m.dirty_gcell_frac(), 0.9);
}

TEST(PaddingFeatures, IncrementalVsFullBitIdenticalWithVerifiedRebuilds) {
  Design d = small_synthetic(23);
  const std::vector<CellId> movable = movable_cells(d);
  CongestionEstimator est(d, CongestionConfig{});

  FeatureConfig inc_cfg;
  inc_cfg.full_rebuild_interval = 3;  // rebuild-and-verify often
  inc_cfg.verify_rebuild = true;
  FeatureConfig full_cfg;
  full_cfg.incremental = false;  // from-scratch maps every round
  FeatureConfig legacy_cfg;
  legacy_cfg.use_legacy_extractor = true;
  FeatureExtractor inc(d, inc_cfg), full(d, full_cfg), legacy(d, legacy_cfg);

  Rng rng(5);
  for (int round = 0; round < 9; ++round) {
    if (round > 0) perturb_cells(d, rng, 0.15);
    const CongestionResult cr = est.estimate_incremental();
    const auto a = inc.extract(cr, movable);
    const auto b = full.extract(cr, movable);
    const auto c = legacy.extract(cr, movable);
    expect_features_identical(a, b, "inc-vs-full", round);
    expect_features_identical(a, c, "inc-vs-legacy", round);
  }
  const PaddingStageMetrics& m = inc.stage_metrics();
  EXPECT_EQ(m.drift_count, 0u);  // every verified rebuild matched bitwise
  EXPECT_EQ(m.extracts, 9);
  EXPECT_EQ(m.full_rebuilds, 3);  // rounds 0, 3, 6
  EXPECT_EQ(full.stage_metrics().full_rebuilds, 9);
}

TEST(PaddingFeatures, BrokenDeltaChainFallsBackToExactSelfDiff) {
  Design d = small_synthetic(41);
  const std::vector<CellId> movable = movable_cells(d);
  CongestionEstimator est(d, CongestionConfig{});

  FeatureConfig legacy_cfg;
  legacy_cfg.use_legacy_extractor = true;
  FeatureExtractor legacy(d, legacy_cfg);
  // `every` consumes every congestion revision (continuous delta chain);
  // `skipping` only sees every other revision, so its delta continuity
  // check fails and it must self-diff -- still bit-identical.
  FeatureExtractor every(d, FeatureConfig{});
  FeatureExtractor skipping(d, FeatureConfig{});

  Rng rng(13);
  for (int round = 0; round < 8; ++round) {
    if (round > 0) perturb_cells(d, rng, 0.15);
    // Round 4 uses a from-scratch estimate(): its delta is not valid for
    // incremental consumption and every extractor must fall back.
    const CongestionResult cr =
        (round == 4) ? est.estimate() : est.estimate_incremental();
    const auto ref = legacy.extract(cr, movable);
    expect_features_identical(every.extract(cr, movable), ref, "every", round);
    if (round % 2 == 0) {
      expect_features_identical(skipping.extract(cr, movable), ref,
                                "skipping", round);
    }
  }
  EXPECT_EQ(every.stage_metrics().drift_count, 0u);
  EXPECT_EQ(skipping.stage_metrics().drift_count, 0u);
}

TEST(PaddingFeatures, FlowPlacementIdenticalAcrossExtractorModes) {
  // Whole-flow identity: the placement produced with the fast incremental
  // pipeline (the default) must equal the legacy-oracle and the
  // non-incremental fast configurations bit for bit.
  std::uint64_t base = 0;
  for (int mode = 0; mode < 3; ++mode) {
    Design d = generate_synthetic(flow_spec());
    PufferConfig cfg = flow_config();
    if (mode == 1) cfg.padding.feature.use_legacy_extractor = true;
    if (mode == 2) cfg.padding.feature.incremental = false;
    PufferFlow flow(d, cfg);
    const FlowMetrics metrics = flow.run();
    if (mode == 0) {
      EXPECT_GT(metrics.padding_stage.extracts, 0);
      EXPECT_EQ(metrics.padding_stage.drift_count, 0u);
    }
    const std::uint64_t sum = placement_checksum(d);
    if (mode == 0) {
      base = sum;
    } else {
      EXPECT_EQ(sum, base) << "mode " << mode;
    }
  }
}

TEST(PaddingFeatures, SnapshotRunFromReproducesContinuation) {
  // The staged-flow contract with the stateful extractor in the loop: a
  // fresh flow restoring the snapshot must reproduce the uninterrupted
  // continuation exactly (the extractor state is flow-local and rebuilt
  // deterministically after restore).
  Design cont = generate_synthetic(flow_spec(29));
  PufferFlow flow(cont, flow_config());
  FlowSnapshot snap;
  flow.run_prefix(0.45, RngStream(7), &snap);
  flow.run_from(snap);
  const std::uint64_t cont_sum = placement_checksum(cont);

  Design restored = generate_synthetic(flow_spec(29));
  PufferFlow flow2(restored, flow_config());
  flow2.run_from(snap);
  EXPECT_EQ(placement_checksum(restored), cont_sum);
}

}  // namespace
}  // namespace puffer
