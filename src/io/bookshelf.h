// Bookshelf-format reader and writer.
//
// Supports the classic academic placement exchange format used by the
// ISPD contests: .aux (file list), .nodes (cell sizes), .nets
// (connectivity with pin offsets), .pl (locations), .scl (rows) and the
// ISPD-2011 .route extension (routing grid, per-direction capacities and
// wire width/spacing, which we map onto our Technology layer stack).
//
// Pin offsets in Bookshelf are measured from the cell *center*; the design
// database stores offsets from the lower-left corner, and the converter
// translates between the two.
#pragma once

#include <stdexcept>
#include <string>

#include "netlist/design.h"

namespace puffer {

struct BookshelfError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

// Reads a design given the .aux file path. Throws BookshelfError on
// malformed input or missing files.
Design read_bookshelf(const std::string& aux_path);

// Writes the design as <prefix>.aux/.nodes/.nets/.pl/.scl (and .route with
// the technology routing information). `prefix` includes the directory.
void write_bookshelf(const Design& design, const std::string& prefix);

// Writes only the .pl file (placement snapshot), the common way to save
// intermediate placements.
void write_pl(const Design& design, const std::string& path);

// Loads cell positions from a .pl into an existing design (matched by
// cell name). Throws if a name is unknown.
void read_pl_into(Design& design, const std::string& path);

}  // namespace puffer
