// Binary codec for a whole Design -- the wire form of a placement job.
//
// The serve daemon (src/serve/) accepts netlists either as a Bookshelf
// text bundle or in this binary form; clients that already hold a Design
// in memory (synthetic benchmarks, a parsed Bookshelf design) encode it
// once and ship the blob. Same conventions as the checkpoint codec
// (io/checkpoint.h): versioned, little-endian, doubles as IEEE-754 bit
// patterns (a decode -> encode round trip is byte-identical), FNV-1a
// trailer over the payload. decode_design throws CheckpointError on
// malformed input.
#pragma once

#include <string>

#include "netlist/design.h"

namespace puffer {

std::string encode_design(const Design& design);
Design decode_design(const std::string& bytes);

}  // namespace puffer
