#include "io/design_codec.h"

#include "io/checkpoint.h"

namespace puffer {

namespace {

constexpr std::uint32_t kDesignMagic = 0x50554644;  // "PUFD"
constexpr std::uint32_t kDesignVersion = 1;

// A garbled count prefix must not trigger a huge allocation: every list
// is bounded by the bytes that could plausibly encode it.
void check_count(std::uint64_t n, std::size_t remaining, std::size_t min_size,
                 const char* what) {
  if (min_size > 0 && n > remaining / min_size) {
    throw CheckpointError(std::string("design: ") + what +
                          " count exceeds buffer");
  }
}

}  // namespace

std::string encode_design(const Design& d) {
  BinaryWriter w;
  w.put_u32(kDesignMagic);
  w.put_u32(kDesignVersion);
  w.put_string(d.name);

  // Technology.
  w.put_f64(d.tech.site_width);
  w.put_f64(d.tech.row_height);
  w.put_i32(d.tech.macro_blocked_layers);
  w.put_u64(d.tech.layers.size());
  for (const MetalLayer& l : d.tech.layers) {
    w.put_string(l.name);
    w.put_u8(l.dir == RouteDir::kHorizontal ? 0 : 1);
    w.put_f64(l.wire_width);
    w.put_f64(l.wire_spacing);
  }

  // Die.
  w.put_f64(d.die.xlo);
  w.put_f64(d.die.ylo);
  w.put_f64(d.die.xhi);
  w.put_f64(d.die.yhi);

  // Cells (pin lists are reconstructed from the pin table).
  w.put_u64(d.cells.size());
  for (const Cell& c : d.cells) {
    w.put_string(c.name);
    w.put_u8(static_cast<std::uint8_t>(c.kind));
    w.put_f64(c.width);
    w.put_f64(c.height);
    w.put_f64(c.x);
    w.put_f64(c.y);
  }

  // Nets (names + weights; their pin lists are also reconstructed).
  w.put_u64(d.nets.size());
  for (const Net& n : d.nets) {
    w.put_string(n.name);
    w.put_f64(n.weight);
  }

  // Pins, in table order, so reconstructed cell/net pin lists preserve
  // the original ordinal order (the SoA mirror and structure key depend
  // on it).
  w.put_u64(d.pins.size());
  for (const Pin& p : d.pins) {
    w.put_i32(p.cell);
    w.put_i32(p.net);
    w.put_f64(p.dx);
    w.put_f64(p.dy);
  }

  // Rows.
  w.put_u64(d.rows.size());
  for (const Row& r : d.rows) {
    w.put_f64(r.y);
    w.put_f64(r.x_lo);
    w.put_i32(r.num_sites);
    w.put_f64(r.site_width);
    w.put_f64(r.height);
  }

  const std::uint64_t sum = fnv1a_bytes(w.buffer().data(), w.buffer().size());
  w.put_u64(sum);
  return w.take();
}

Design decode_design(const std::string& bytes) {
  if (bytes.size() < 8 + 8) {
    throw CheckpointError("design: blob too small");
  }
  const std::string payload = bytes.substr(0, bytes.size() - 8);
  {
    BinaryReader t(bytes);
    // Verify the trailer before trusting any count in the payload.
    const std::string trailer = bytes.substr(bytes.size() - 8);
    BinaryReader tr(trailer);
    const std::uint64_t want = tr.get_u64();
    if (want != fnv1a_bytes(payload.data(), payload.size())) {
      throw CheckpointError("design: payload checksum mismatch");
    }
    (void)t;
  }
  BinaryReader r(payload);
  if (r.get_u32() != kDesignMagic) {
    throw CheckpointError("design: bad magic");
  }
  const std::uint32_t version = r.get_u32();
  if (version != kDesignVersion) {
    throw CheckpointError("design: unsupported version " +
                          std::to_string(version));
  }

  Design d;
  d.name = r.get_string();

  d.tech.site_width = r.get_f64();
  d.tech.row_height = r.get_f64();
  d.tech.macro_blocked_layers = r.get_i32();
  const std::uint64_t nlayers = r.get_u64();
  check_count(nlayers, r.remaining(), 8 + 1 + 16, "layer");
  d.tech.layers.resize(static_cast<std::size_t>(nlayers));
  for (MetalLayer& l : d.tech.layers) {
    l.name = r.get_string();
    l.dir = r.get_u8() == 0 ? RouteDir::kHorizontal : RouteDir::kVertical;
    l.wire_width = r.get_f64();
    l.wire_spacing = r.get_f64();
  }

  d.die.xlo = r.get_f64();
  d.die.ylo = r.get_f64();
  d.die.xhi = r.get_f64();
  d.die.yhi = r.get_f64();

  const std::uint64_t ncells = r.get_u64();
  check_count(ncells, r.remaining(), 8 + 1 + 32, "cell");
  d.cells.resize(static_cast<std::size_t>(ncells));
  for (Cell& c : d.cells) {
    c.name = r.get_string();
    const std::uint8_t kind = r.get_u8();
    if (kind > static_cast<std::uint8_t>(CellKind::kTerminal)) {
      throw CheckpointError("design: invalid cell kind");
    }
    c.kind = static_cast<CellKind>(kind);
    c.width = r.get_f64();
    c.height = r.get_f64();
    c.x = r.get_f64();
    c.y = r.get_f64();
  }

  const std::uint64_t nnets = r.get_u64();
  check_count(nnets, r.remaining(), 8 + 8, "net");
  d.nets.resize(static_cast<std::size_t>(nnets));
  for (Net& n : d.nets) {
    n.name = r.get_string();
    n.weight = r.get_f64();
  }

  const std::uint64_t npins = r.get_u64();
  check_count(npins, r.remaining(), 4 + 4 + 16, "pin");
  d.pins.resize(static_cast<std::size_t>(npins));
  for (std::size_t i = 0; i < d.pins.size(); ++i) {
    Pin& p = d.pins[i];
    p.cell = r.get_i32();
    p.net = r.get_i32();
    p.dx = r.get_f64();
    p.dy = r.get_f64();
    if (p.cell < 0 || static_cast<std::uint64_t>(p.cell) >= ncells ||
        p.net < 0 || static_cast<std::uint64_t>(p.net) >= nnets) {
      throw CheckpointError("design: pin references out-of-range cell/net");
    }
    const PinId pid = static_cast<PinId>(i);
    d.cells[static_cast<std::size_t>(p.cell)].pins.push_back(pid);
    d.nets[static_cast<std::size_t>(p.net)].pins.push_back(pid);
  }

  const std::uint64_t nrows = r.get_u64();
  check_count(nrows, r.remaining(), 16 + 4 + 16, "row");
  d.rows.resize(static_cast<std::size_t>(nrows));
  for (Row& row : d.rows) {
    row.y = r.get_f64();
    row.x_lo = r.get_f64();
    row.num_sites = r.get_i32();
    row.site_width = r.get_f64();
    row.height = r.get_f64();
  }

  if (!r.at_end()) {
    throw CheckpointError("design: trailing bytes after payload");
  }
  const std::string problem = d.validate();
  if (!problem.empty()) {
    throw CheckpointError("design: decoded design is inconsistent: " +
                          problem);
  }
  return d;
}

}  // namespace puffer
