#include "io/synthetic.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

#include "common/rng.h"

namespace puffer {
namespace {

// Standard-cell width in sites: heavy-tailed, mean ~2.8 sites.
int draw_cell_sites(Rng& rng) {
  const double u = rng.uniform(0.0, 1.0);
  if (u < 0.30) return 1;
  if (u < 0.55) return 2;
  if (u < 0.70) return 3;
  if (u < 0.82) return 4;
  if (u < 0.90) return 5;
  if (u < 0.95) return 6;
  if (u < 0.98) return 8;
  return 10;
}

// Net degree: >=2, mostly 2-5, occasional fan-out up to 24.
int draw_net_degree(Rng& rng, double avg) {
  // Mixture: geometric bulk plus a small high-fanout tail, calibrated so
  // the expected value tracks `avg`.
  if (rng.chance(0.04)) {
    return static_cast<int>(rng.uniform_int(8, 24));
  }
  const double bulk_avg = std::max(2.1, avg - 0.55);
  const double decay = 1.0 - 1.0 / (bulk_avg - 1.0);
  return static_cast<int>(rng.heavy_tail_int(2, 7, decay));
}

}  // namespace

Design generate_synthetic(const SyntheticSpec& spec) {
  Rng rng(spec.seed);
  Design design;
  design.name = spec.name;

  const double row_h = 8.0;
  const double site_w = 1.0;
  design.tech = Technology::make_default(site_w, row_h, spec.tech_layers);
  // Directional supply stress: widen the pitch (fewer tracks) by the
  // inverse of the capacity factor.
  for (MetalLayer& layer : design.tech.layers) {
    const double f = layer.dir == RouteDir::kHorizontal
                         ? spec.h_capacity_factor
                         : spec.v_capacity_factor;
    if (f > 0.0 && f != 1.0) {
      layer.wire_width /= f;
      layer.wire_spacing /= f;
    }
  }

  // --- cell sizes -------------------------------------------------------
  std::vector<int> cell_sites(static_cast<std::size_t>(spec.num_cells));
  double movable_area = 0.0;
  for (int& s : cell_sites) {
    s = draw_cell_sites(rng);
    movable_area += s * site_w * row_h;
  }

  // --- die size ---------------------------------------------------------
  // die_area * (1 - num_macros * frac^2) = movable_area / utilization
  double frac = spec.macro_edge_frac;
  double macro_area_frac = spec.num_macros * frac * frac;
  if (macro_area_frac > 0.35) {
    frac = std::sqrt(0.35 / spec.num_macros);
    macro_area_frac = 0.35;
  }
  const double util = clamp(spec.target_utilization, 0.2, 0.95);
  double edge = std::sqrt(movable_area / (util * (1.0 - macro_area_frac)));
  const int num_rows = std::max(4, static_cast<int>(std::ceil(edge / row_h)));
  const int num_sites = std::max(16, static_cast<int>(std::ceil(edge / site_w)));
  const double die_w = num_sites * site_w;
  const double die_h = num_rows * row_h;
  design.die = {0.0, 0.0, die_w, die_h};

  for (int r = 0; r < num_rows; ++r) {
    Row row;
    row.y = r * row_h;
    row.x_lo = 0.0;
    row.num_sites = num_sites;
    row.site_width = site_w;
    row.height = row_h;
    design.rows.push_back(row);
  }

  // --- macros -----------------------------------------------------------
  std::vector<Rect> macro_rects;
  const double msize_base = frac * std::min(die_w, die_h);
  for (int m = 0; m < spec.num_macros; ++m) {
    // Vary the aspect ratio a little; snap to row/site grid.
    const double mw =
        std::max(4.0 * site_w, msize_base * rng.uniform(0.75, 1.35));
    const double mh = std::max(2.0 * row_h, msize_base * rng.uniform(0.75, 1.35));
    const double w = std::round(mw / site_w) * site_w;
    const double h = std::round(mh / row_h) * row_h;
    Rect placed;
    bool ok = false;
    for (int attempt = 0; attempt < 400 && !ok; ++attempt) {
      // Bias macros toward the die boundary ring, as floorplanners do,
      // which leaves narrow routing channels between neighbouring macros.
      double px, py;
      if (rng.chance(0.7)) {
        const int side = static_cast<int>(rng.uniform_int(0, 3));
        const double along = rng.uniform(0.02, 0.98);
        const double depth = rng.uniform(0.02, 0.22);
        switch (side) {
          case 0: px = along; py = depth; break;
          case 1: px = along; py = 1.0 - depth; break;
          case 2: px = depth; py = along; break;
          default: px = 1.0 - depth; py = along; break;
        }
      } else {
        px = rng.uniform(0.15, 0.85);
        py = rng.uniform(0.15, 0.85);
      }
      double x = clamp(px * die_w - w * 0.5, 0.0, die_w - w);
      double y = clamp(py * die_h - h * 0.5, 0.0, die_h - h);
      x = std::round(x / site_w) * site_w;
      y = std::round(y / row_h) * row_h;
      const Rect cand{x, y, x + w, y + h};
      // Keep a one-row-wide channel between macros.
      const Rect grown = cand.expanded(row_h);
      ok = true;
      for (const Rect& other : macro_rects) {
        if (grown.overlap_area(other) > 0.0) {
          ok = false;
          break;
        }
      }
      if (ok) placed = cand;
    }
    if (!ok) continue;  // die too crowded for this macro; skip it
    macro_rects.push_back(placed);
    Cell macro;
    macro.name = "macro" + std::to_string(macro_rects.size() - 1);
    macro.kind = CellKind::kMacro;
    macro.width = placed.width();
    macro.height = placed.height();
    macro.x = placed.xlo;
    macro.y = placed.ylo;
    design.add_cell(std::move(macro));
  }

  const auto inside_macro = [&](const Point& p) {
    for (const Rect& r : macro_rects) {
      if (r.contains(p)) return true;
    }
    return false;
  };

  // --- clusters ---------------------------------------------------------
  const int num_clusters =
      std::max(1, (spec.num_cells + spec.cluster_size - 1) / spec.cluster_size);
  std::vector<Point> cluster_home(static_cast<std::size_t>(num_clusters));
  for (Point& home : cluster_home) {
    for (int attempt = 0; attempt < 200; ++attempt) {
      home = {rng.uniform(0.03 * die_w, 0.97 * die_w),
              rng.uniform(0.03 * die_h, 0.97 * die_h)};
      if (!inside_macro(home)) break;
    }
  }

  // --- movable cells ----------------------------------------------------
  const double scatter = 0.06 * std::min(die_w, die_h);
  std::vector<std::vector<CellId>> cluster_cells(
      static_cast<std::size_t>(num_clusters));
  for (int i = 0; i < spec.num_cells; ++i) {
    const int cl = i % num_clusters;
    Cell cell;
    cell.name = "c" + std::to_string(i);
    cell.kind = CellKind::kMovable;
    cell.width = cell_sites[static_cast<std::size_t>(i)] * site_w;
    cell.height = row_h;
    const Point& home = cluster_home[static_cast<std::size_t>(cl)];
    cell.x = clamp(home.x + rng.normal(0.0, scatter), 0.0, die_w - cell.width);
    cell.y = clamp(home.y + rng.normal(0.0, scatter), 0.0, die_h - cell.height);
    const CellId id = design.add_cell(std::move(cell));
    cluster_cells[static_cast<std::size_t>(cl)].push_back(id);
  }

  // --- terminals --------------------------------------------------------
  std::vector<CellId> terminals;
  for (int t = 0; t < spec.num_terminals; ++t) {
    Cell term;
    term.name = "p" + std::to_string(t);
    term.kind = CellKind::kTerminal;
    term.width = 0.0;
    term.height = 0.0;
    const double along = (t + 0.5) / spec.num_terminals;
    switch (t % 4) {
      case 0: term.x = along * die_w; term.y = 0.0; break;
      case 1: term.x = along * die_w; term.y = die_h; break;
      case 2: term.x = 0.0; term.y = along * die_h; break;
      default: term.x = die_w; term.y = along * die_h; break;
    }
    terminals.push_back(design.add_cell(std::move(term)));
  }

  // Rent-style locality for global nets: most cross-cluster nets connect
  // spatially nearby clusters, a small share reaches anywhere. Without
  // this, total routing demand grows ~N^1.5 while supply grows ~N and
  // large instances become unroutable regardless of placer.
  const int kNeighbours = std::min(12, num_clusters - 1);
  std::vector<std::vector<int>> near_clusters(
      static_cast<std::size_t>(num_clusters));
  if (kNeighbours > 0) {
    std::vector<std::pair<double, int>> dist;
    for (int c0 = 0; c0 < num_clusters; ++c0) {
      dist.clear();
      for (int c1 = 0; c1 < num_clusters; ++c1) {
        if (c1 == c0) continue;
        dist.emplace_back(manhattan(cluster_home[static_cast<std::size_t>(c0)],
                                    cluster_home[static_cast<std::size_t>(c1)]),
                          c1);
      }
      std::partial_sort(dist.begin(),
                        dist.begin() + std::min<std::size_t>(
                                           dist.size(),
                                           static_cast<std::size_t>(kNeighbours)),
                        dist.end());
      auto& out = near_clusters[static_cast<std::size_t>(c0)];
      for (int k = 0; k < kNeighbours && k < static_cast<int>(dist.size()); ++k) {
        out.push_back(dist[static_cast<std::size_t>(k)].second);
      }
    }
  }
  const auto pick_partner = [&](int c0) {
    const auto& near = near_clusters[static_cast<std::size_t>(c0)];
    if (!near.empty() && rng.chance(0.93)) {
      return near[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(near.size()) - 1))];
    }
    return static_cast<int>(rng.uniform_int(0, num_clusters - 1));
  };

  // --- nets ---------------------------------------------------------------
  const auto pin_offset = [&](const Cell& c, Rng& r) -> Point {
    if (c.kind == CellKind::kTerminal) return {0.0, 0.0};
    return {r.uniform(0.1, 0.9) * c.width, r.uniform(0.2, 0.8) * c.height};
  };
  const auto add_pin = [&](CellId cid, NetId nid) {
    const Cell& c = design.cells[static_cast<std::size_t>(cid)];
    const Point off = pin_offset(c, rng);
    design.connect(cid, nid, off.x, off.y);
  };

  const std::size_t macro_count = macro_rects.size();
  for (int n = 0; n < spec.num_nets; ++n) {
    const int degree = draw_net_degree(rng, spec.avg_net_degree);
    const NetId net = design.add_net("n" + std::to_string(n));
    std::set<CellId> members;
    if (rng.chance(spec.cluster_net_ratio)) {
      // Local net: all pins within one cluster.
      const auto& pool = cluster_cells[static_cast<std::size_t>(
          rng.uniform_int(0, num_clusters - 1))];
      while (static_cast<int>(members.size()) < degree &&
             members.size() < pool.size()) {
        members.insert(pool[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))]);
      }
    } else {
      // Global net: span 2-4 clusters (the first random, the rest mostly
      // spatial neighbours); occasionally touch a macro pin or a terminal.
      const int span = static_cast<int>(rng.uniform_int(2, 4));
      const int c0 = static_cast<int>(rng.uniform_int(0, num_clusters - 1));
      for (int s = 0; s < span; ++s) {
        const int cl = (s == 0) ? c0 : pick_partner(c0);
        const auto& pool = cluster_cells[static_cast<std::size_t>(cl)];
        const int take = std::max(1, degree / span);
        for (int k = 0; k < take && members.size() < pool.size(); ++k) {
          members.insert(pool[static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))]);
        }
      }
      if (macro_count > 0 && rng.chance(0.08)) {
        members.insert(static_cast<CellId>(
            rng.uniform_int(0, static_cast<std::int64_t>(macro_count) - 1)));
      }
      if (!terminals.empty() && rng.chance(0.05)) {
        members.insert(terminals[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(terminals.size()) - 1))]);
      }
    }
    if (members.size() < 2) {
      // Degenerate draw; connect two random movable cells instead.
      while (members.size() < 2) {
        const auto& pool = cluster_cells[static_cast<std::size_t>(
            rng.uniform_int(0, num_clusters - 1))];
        members.insert(pool[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))]);
      }
    }
    for (CellId cid : members) add_pin(cid, net);
  }

  return design;
}

std::vector<SyntheticSpec> table1_suite(int scale_divisor) {
  if (scale_divisor < 1) throw std::out_of_range("scale_divisor must be >= 1");
  const double s = static_cast<double>(scale_divisor);
  // Rows: {name, macros, cells(K), nets(K), pins(K), seed, util, cluster}
  // Cells/nets/pins are the paper's Table I values; utilization and
  // clustering are set so the *relative* congestion severity matches the
  // paper's Table II outcomes (MEDIA_SUBSYS / A53 congested, CT_* clean).
  struct Entry {
    const char* name;
    int macros;
    double cells_k, nets_k, pins_k;
    std::uint64_t seed;
    double util;
    double cluster_ratio;
    double h_cap, v_cap;  // directional supply stress
  };
  // Utilization, clustering and the directional capacity factors set the
  // congestion severity tiers of the paper's Table II: MEDIA_SUBSYS and
  // A53_ADB_WRAP are V-starved stress designs, OR1200 is a small design
  // with a routability problem (used for strategy exploration), OPENC910
  // is mildly H-starved, and BIT_COIN / CT_* / E31 are clean.
  const Entry entries[] = {
      {"OR1200", 22, 122, 193, 660, 101, 0.78, 0.78, 0.97, 0.97},
      {"ASIC_ENTITY", 45, 149, 155, 630, 102, 0.70, 0.70, 1.00, 1.00},
      {"BIT_COIN", 43, 760, 760, 3151, 103, 0.62, 0.66, 1.00, 1.00},
      {"MEDIA_SUBSYS", 70, 1228, 1296, 5235, 104, 0.84, 0.80, 0.92, 0.66},
      {"MEDIA_PG_MODIFY", 70, 1228, 1296, 5235, 105, 0.72, 0.72, 0.96, 0.88},
      {"A53_ADB_WRAP", 7, 1232, 1300, 5242, 106, 0.85, 0.82, 0.88, 0.60},
      {"CT_SCAN", 39, 1249, 1317, 5282, 107, 0.64, 0.66, 1.00, 1.00},
      {"CT_TOP", 38, 1270, 1272, 4091, 108, 0.63, 0.66, 1.00, 1.00},
      {"E31_ECOREPLEX", 56, 1533, 1537, 6303, 109, 0.66, 0.68, 1.00, 1.00},
      {"OPENC910", 332, 1590, 1741, 7276, 110, 0.70, 0.72, 0.93, 1.15},
  };
  std::vector<SyntheticSpec> specs;
  for (const Entry& e : entries) {
    SyntheticSpec spec;
    spec.name = e.name;
    spec.seed = e.seed;
    spec.num_cells = std::max(256, static_cast<int>(e.cells_k * 1000.0 / s));
    spec.num_nets = std::max(256, static_cast<int>(e.nets_k * 1000.0 / s));
    spec.num_macros = e.macros;
    spec.num_terminals = 64;
    spec.target_utilization = e.util;
    spec.cluster_net_ratio = e.cluster_ratio;
    spec.avg_net_degree = e.pins_k / e.nets_k;
    spec.h_capacity_factor = e.h_cap;
    spec.v_capacity_factor = e.v_cap;
    // Many small macros (OPENC910) must not swallow the die.
    spec.macro_edge_frac = std::min(0.08, std::sqrt(0.22 / e.macros));
    specs.push_back(spec);
  }
  return specs;
}

SyntheticSpec table1_spec(const std::string& name, int scale_divisor) {
  for (const SyntheticSpec& spec : table1_suite(scale_divisor)) {
    if (spec.name == name) return spec;
  }
  throw std::out_of_range("unknown benchmark: " + name);
}

}  // namespace puffer
