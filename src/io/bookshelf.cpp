#include "io/bookshelf.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "common/str_util.h"

namespace puffer {
namespace {

namespace fs = std::filesystem;

// Reads all non-comment, non-empty lines of a Bookshelf file. Comments
// start with '#'; the first "UCLA ..." header line is skipped.
std::vector<std::string> read_payload_lines(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw BookshelfError("cannot open " + path);
  std::vector<std::string> lines;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::string_view t = trim(line);
    if (t.empty()) continue;
    if (first && starts_with(t, "UCLA")) {
      first = false;
      continue;
    }
    first = false;
    lines.emplace_back(t);
  }
  return lines;
}

double to_double(const std::string& s, const char* what) {
  try {
    return std::stod(s);
  } catch (const std::exception&) {
    throw BookshelfError(std::string("bad number for ") + what + ": " + s);
  }
}

int to_int(const std::string& s, const char* what) {
  try {
    return std::stoi(s);
  } catch (const std::exception&) {
    throw BookshelfError(std::string("bad integer for ") + what + ": " + s);
  }
}

struct AuxFiles {
  std::string nodes, nets, wts, pl, scl, route;
};

AuxFiles parse_aux(const std::string& aux_path) {
  std::ifstream in(aux_path);
  if (!in) throw BookshelfError("cannot open " + aux_path);
  const fs::path dir = fs::path(aux_path).parent_path();
  AuxFiles files;
  std::string line;
  while (std::getline(in, line)) {
    // Format: "RowBasedPlacement : a.nodes a.nets a.wts a.pl a.scl [...]"
    const auto colon = line.find(':');
    if (colon == std::string::npos) continue;
    for (const std::string& tok : split_ws(line.substr(colon + 1))) {
      const std::string full = (dir / tok).string();
      if (tok.ends_with(".nodes")) files.nodes = full;
      else if (tok.ends_with(".nets")) files.nets = full;
      else if (tok.ends_with(".wts")) files.wts = full;
      else if (tok.ends_with(".pl")) files.pl = full;
      else if (tok.ends_with(".scl")) files.scl = full;
      else if (tok.ends_with(".route")) files.route = full;
    }
  }
  if (files.nodes.empty() || files.nets.empty() || files.pl.empty() ||
      files.scl.empty()) {
    throw BookshelfError("aux file missing required entries: " + aux_path);
  }
  return files;
}

void parse_nodes(const std::string& path, Design& design,
                 std::map<std::string, CellId>& by_name) {
  for (const std::string& line : read_payload_lines(path)) {
    if (starts_with(line, "NumNodes") || starts_with(line, "NumTerminals")) {
      continue;
    }
    auto toks = split_ws(line);
    if (toks.size() < 3) throw BookshelfError("bad .nodes line: " + line);
    Cell cell;
    cell.name = toks[0];
    cell.width = to_double(toks[1], "node width");
    cell.height = to_double(toks[2], "node height");
    cell.kind = CellKind::kMovable;
    if (toks.size() >= 4) {
      if (iequals(toks[3], "terminal")) {
        // Large fixed objects are macros; point-ish ones are terminals.
        cell.kind = (cell.area() > 0.0) ? CellKind::kMacro : CellKind::kTerminal;
      } else if (iequals(toks[3], "terminal_NI")) {
        cell.kind = CellKind::kTerminal;
      }
    }
    // Read the name before add_cell moves the cell away (the RHS of an
    // assignment is sequenced first, so by_name[cell.name] would index on
    // a moved-from string).
    const std::string name = cell.name;
    by_name[name] = design.add_cell(std::move(cell));
  }
}

void parse_nets(const std::string& path, Design& design,
                const std::map<std::string, CellId>& by_name) {
  const auto lines = read_payload_lines(path);
  std::size_t i = 0;
  int anon_net = 0;
  while (i < lines.size()) {
    const std::string& line = lines[i];
    if (starts_with(line, "NumNets") || starts_with(line, "NumPins")) {
      ++i;
      continue;
    }
    if (!starts_with(line, "NetDegree")) {
      throw BookshelfError("expected NetDegree, got: " + line);
    }
    auto toks = split_ws(line);
    // "NetDegree : k [name]"
    if (toks.size() < 3) throw BookshelfError("bad NetDegree line: " + line);
    const int degree = to_int(toks[2], "net degree");
    std::string net_name =
        toks.size() >= 4 ? toks[3] : ("net" + std::to_string(anon_net++));
    const NetId net = design.add_net(std::move(net_name));
    ++i;
    for (int k = 0; k < degree; ++k, ++i) {
      if (i >= lines.size()) throw BookshelfError("truncated net in " + path);
      auto ptoks = split_ws(lines[i]);
      // "cellname I/O/B : dx dy" (offsets from cell center) or "cellname I/O/B"
      if (ptoks.empty()) throw BookshelfError("bad net pin line");
      const auto it = by_name.find(ptoks[0]);
      if (it == by_name.end()) {
        throw BookshelfError("net pin references unknown cell " + ptoks[0]);
      }
      double cdx = 0.0, cdy = 0.0;
      if (ptoks.size() >= 5) {
        cdx = to_double(ptoks[3], "pin dx");
        cdy = to_double(ptoks[4], "pin dy");
      }
      const Cell& cell = design.cells[static_cast<std::size_t>(it->second)];
      design.connect(it->second, net, cell.width * 0.5 + cdx,
                     cell.height * 0.5 + cdy);
    }
  }
}

void parse_wts(const std::string& path, Design& design) {
  std::map<std::string, NetId> net_by_name;
  for (NetId n = 0; n < static_cast<NetId>(design.nets.size()); ++n) {
    net_by_name[design.nets[static_cast<std::size_t>(n)].name] = n;
  }
  for (const std::string& line : read_payload_lines(path)) {
    auto toks = split_ws(line);
    if (toks.size() != 2) continue;
    const auto it = net_by_name.find(toks[0]);
    if (it != net_by_name.end()) {
      design.nets[static_cast<std::size_t>(it->second)].weight =
          to_double(toks[1], "net weight");
    }
  }
}

void parse_pl(const std::string& path, Design& design,
              const std::map<std::string, CellId>& by_name) {
  for (const std::string& line : read_payload_lines(path)) {
    auto toks = split_ws(line);
    if (toks.size() < 3) continue;
    const auto it = by_name.find(toks[0]);
    if (it == by_name.end()) {
      throw BookshelfError(".pl references unknown cell " + toks[0]);
    }
    Cell& cell = design.cells[static_cast<std::size_t>(it->second)];
    cell.x = to_double(toks[1], "pl x");
    cell.y = to_double(toks[2], "pl y");
    for (const std::string& t : toks) {
      if (t == "/FIXED" && cell.kind == CellKind::kMovable) {
        cell.kind = cell.area() > 0.0 ? CellKind::kMacro : CellKind::kTerminal;
      }
    }
  }
}

void parse_scl(const std::string& path, Design& design) {
  const auto lines = read_payload_lines(path);
  std::size_t i = 0;
  while (i < lines.size()) {
    if (!starts_with(lines[i], "CoreRow")) {
      ++i;
      continue;
    }
    Row row;
    ++i;
    for (; i < lines.size() && !starts_with(lines[i], "End"); ++i) {
      auto toks = split_ws(lines[i]);
      // Lines like "Coordinate : 459", "SubrowOrigin : 459 NumSites : 10692"
      for (std::size_t t = 0; t + 2 <= toks.size(); ++t) {
        if (iequals(toks[t], "Coordinate") && t + 2 < toks.size()) {
          row.y = to_double(toks[t + 2], "row coordinate");
        } else if (iequals(toks[t], "Height") && t + 2 < toks.size()) {
          row.height = to_double(toks[t + 2], "row height");
        } else if (iequals(toks[t], "Sitewidth") && t + 2 < toks.size()) {
          row.site_width = to_double(toks[t + 2], "site width");
        } else if (iequals(toks[t], "SubrowOrigin") && t + 2 < toks.size()) {
          row.x_lo = to_double(toks[t + 2], "subrow origin");
        } else if (iequals(toks[t], "NumSites") && t + 2 < toks.size()) {
          row.num_sites = to_int(toks[t + 2], "num sites");
        }
      }
    }
    if (i < lines.size()) ++i;  // consume "End"
    design.rows.push_back(row);
  }
  if (design.rows.empty()) throw BookshelfError("no CoreRow in " + path);
}

void parse_route(const std::string& path, Design& design) {
  // We extract the capacity-defining entries and synthesize a layer stack.
  std::vector<double> vcap, hcap, min_width, min_spacing;
  for (const std::string& line : read_payload_lines(path)) {
    auto toks = split_ws(line);
    if (toks.size() < 3 || toks[1] != ":") continue;
    auto values = [&](std::vector<double>& out) {
      out.clear();
      for (std::size_t t = 2; t < toks.size(); ++t) {
        out.push_back(to_double(toks[t], "route value"));
      }
    };
    if (iequals(toks[0], "VerticalCapacity")) values(vcap);
    else if (iequals(toks[0], "HorizontalCapacity")) values(hcap);
    else if (iequals(toks[0], "MinWireWidth")) values(min_width);
    else if (iequals(toks[0], "MinWireSpacing")) values(min_spacing);
  }
  if (vcap.empty() || hcap.empty()) return;
  design.tech.layers.clear();
  for (std::size_t l = 0; l < vcap.size(); ++l) {
    const bool horizontal = hcap[l] > 0.0;
    const bool vertical = vcap[l] > 0.0;
    if (!horizontal && !vertical) continue;
    MetalLayer layer;
    layer.name = "M" + std::to_string(l + 1);
    layer.dir = horizontal ? RouteDir::kHorizontal : RouteDir::kVertical;
    layer.wire_width = l < min_width.size() ? min_width[l] : 1.0;
    layer.wire_spacing = l < min_spacing.size() ? min_spacing[l] : 1.0;
    design.tech.layers.push_back(layer);
  }
}

}  // namespace

Design read_bookshelf(const std::string& aux_path) {
  const AuxFiles files = parse_aux(aux_path);
  Design design;
  design.name = fs::path(aux_path).stem().string();
  std::map<std::string, CellId> by_name;
  parse_nodes(files.nodes, design, by_name);
  parse_nets(files.nets, design, by_name);
  if (!files.wts.empty() && fs::exists(files.wts)) parse_wts(files.wts, design);
  parse_pl(files.pl, design, by_name);
  parse_scl(files.scl, design);
  if (!files.route.empty() && fs::exists(files.route)) {
    parse_route(files.route, design);
  }

  // Derive technology + die from the rows.
  const Row& r0 = design.rows.front();
  design.tech.site_width = r0.site_width;
  design.tech.row_height = r0.height;
  if (design.tech.layers.empty()) {
    design.tech = Technology::make_default(r0.site_width, r0.height);
  }
  Rect die;
  for (const Row& row : design.rows) {
    die.include({row.x_lo, row.y});
    die.include({row.x_hi(), row.y + row.height});
  }
  design.die = die;
  return design;
}

void write_pl(const Design& design, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw BookshelfError("cannot write " + path);
  out << "UCLA pl 1.0\n\n";
  for (const Cell& c : design.cells) {
    // Round-trip formatting: write -> read -> write is byte-stable and
    // the parsed coordinates are bit-equal to the placed ones.
    out << c.name << ' ' << format_double_roundtrip(c.x) << ' '
        << format_double_roundtrip(c.y) << " : N";
    if (!c.movable()) out << " /FIXED";
    out << '\n';
  }
}

void read_pl_into(Design& design, const std::string& path) {
  std::map<std::string, CellId> by_name;
  for (CellId c = 0; c < static_cast<CellId>(design.cells.size()); ++c) {
    by_name[design.cells[static_cast<std::size_t>(c)].name] = c;
  }
  for (const std::string& line : read_payload_lines(path)) {
    auto toks = split_ws(line);
    if (toks.size() < 3) continue;
    const auto it = by_name.find(toks[0]);
    if (it == by_name.end()) throw BookshelfError("unknown cell " + toks[0]);
    Cell& cell = design.cells[static_cast<std::size_t>(it->second)];
    cell.x = to_double(toks[1], "pl x");
    cell.y = to_double(toks[2], "pl y");
  }
}

void write_bookshelf(const Design& design, const std::string& prefix) {
  const fs::path base(prefix);
  const std::string stem = base.filename().string();
  std::size_t num_terminals = 0;
  for (const Cell& c : design.cells) {
    if (!c.movable()) ++num_terminals;
  }

  {
    std::ofstream out(prefix + ".aux");
    if (!out) throw BookshelfError("cannot write " + prefix + ".aux");
    out << "RowBasedPlacement : " << stem << ".nodes " << stem << ".nets "
        << stem << ".pl " << stem << ".scl " << stem << ".route\n";
  }
  {
    std::ofstream out(prefix + ".nodes");
    out << "UCLA nodes 1.0\n\n";
    out << "NumNodes : " << design.cells.size() << '\n';
    out << "NumTerminals : " << num_terminals << '\n';
    for (const Cell& c : design.cells) {
      out << '\t' << c.name << '\t' << format_double_roundtrip(c.width)
          << '\t' << format_double_roundtrip(c.height);
      if (c.kind == CellKind::kMacro) out << "\tterminal";
      if (c.kind == CellKind::kTerminal) out << "\tterminal_NI";
      out << '\n';
    }
  }
  {
    std::ofstream out(prefix + ".nets");
    out << "UCLA nets 1.0\n\n";
    out << "NumNets : " << design.nets.size() << '\n';
    out << "NumPins : " << design.pins.size() << '\n';
    for (const Net& net : design.nets) {
      out << "NetDegree : " << net.pins.size() << ' ' << net.name << '\n';
      for (PinId pid : net.pins) {
        const Pin& p = design.pins[static_cast<std::size_t>(pid)];
        const Cell& c = design.cells[static_cast<std::size_t>(p.cell)];
        out << '\t' << c.name << "\tB : "
            << format_double_roundtrip(p.dx - c.width * 0.5) << ' '
            << format_double_roundtrip(p.dy - c.height * 0.5) << '\n';
      }
    }
  }
  write_pl(design, prefix + ".pl");
  {
    std::ofstream out(prefix + ".scl");
    out << "UCLA scl 1.0\n\n";
    out << "NumRows : " << design.rows.size() << '\n';
    for (const Row& row : design.rows) {
      out << "CoreRow Horizontal\n";
      out << "  Coordinate : " << format_double_roundtrip(row.y) << '\n';
      out << "  Height : " << format_double_roundtrip(row.height) << '\n';
      out << "  Sitewidth : " << format_double_roundtrip(row.site_width)
          << '\n';
      out << "  Sitespacing : " << format_double_roundtrip(row.site_width)
          << '\n';
      out << "  Siteorient : N\n";
      out << "  Sitesymmetry : Y\n";
      out << "  SubrowOrigin : " << format_double_roundtrip(row.x_lo)
          << "  NumSites : " << row.num_sites << '\n';
      out << "End\n";
    }
  }
  {
    std::ofstream out(prefix + ".route");
    out << "route 1.0\n\n";
    std::ostringstream v, h, w, s;
    for (const MetalLayer& layer : design.tech.layers) {
      v << ' ' << (layer.dir == RouteDir::kVertical ? layer.pitch() : 0.0);
      h << ' ' << (layer.dir == RouteDir::kHorizontal ? layer.pitch() : 0.0);
      w << ' ' << layer.wire_width;
      s << ' ' << layer.wire_spacing;
    }
    out << "VerticalCapacity :" << v.str() << '\n';
    out << "HorizontalCapacity :" << h.str() << '\n';
    out << "MinWireWidth :" << w.str() << '\n';
    out << "MinWireSpacing :" << s.str() << '\n';
  }
}

}  // namespace puffer
