// Shared UDS/TCP socket helpers for every networked subsystem
// (orchestrate/ coordinator + worker, serve/ daemon + clients).
//
// Addresses: a string containing '/' is a Unix-domain socket path;
// otherwise it is "host:port" (":port" / "port" mean localhost). All
// helpers throw CheckpointError on failure so socket errors flow through
// the same exception channel as the wire codec they carry.
//
// Listeners set SO_REUSEADDR (TCP) and unlink stale socket files (UDS)
// so a quick restart -- the daemon smoke tests kill and relaunch within
// one TIME_WAIT window -- never flakes on EADDRINUSE.
#pragma once

#include <string>

namespace puffer {

bool is_unix_address(const std::string& address);

// Bound + listening fd for `address`. SO_REUSEADDR on TCP listeners;
// stale UDS files are unlinked before bind.
int listen_socket(const std::string& address);

// Blocking accept (EINTR-safe).
int accept_socket(int listen_fd);

// Blocking connect.
int connect_socket(const std::string& address);

// Retries connect_socket until it succeeds or `timeout_s` elapses
// (covers the client-starts-before-server race and server restarts);
// throws CheckpointError on timeout.
int connect_socket_retry(const std::string& address, double timeout_s);

// Puts `fd` into non-blocking mode (poll()-driven servers); throws
// CheckpointError on failure.
void set_nonblocking(int fd);

// Ignores SIGPIPE process-wide so a dead peer surfaces as a write error
// (CheckpointError) instead of killing the process. Idempotent.
void ignore_sigpipe();

}  // namespace puffer
