#include "io/net.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <ctime>

#include "io/checkpoint.h"

namespace puffer {

bool is_unix_address(const std::string& address) {
  return address.find('/') != std::string::npos;
}

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw CheckpointError(what + ": " + std::strerror(errno));
}

sockaddr_un unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() + 1 > sizeof(addr.sun_path)) {
    throw CheckpointError("socket: unix path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

// Splits "host:port" (":port"/"port" -> localhost).
void split_host_port(const std::string& address, std::string* host,
                     std::string* port) {
  const std::size_t colon = address.rfind(':');
  if (colon == std::string::npos) {
    *host = "127.0.0.1";
    *port = address;
  } else {
    *host = colon == 0 ? "127.0.0.1" : address.substr(0, colon);
    *port = address.substr(colon + 1);
  }
  if (port->empty()) {
    throw CheckpointError("socket: no port in address " + address);
  }
}

int tcp_socket_for(const std::string& address, bool listen_side,
                   sockaddr_storage* out, socklen_t* out_len) {
  std::string host, port;
  split_host_port(address, &host, &port);
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  if (listen_side) hints.ai_flags = AI_PASSIVE;
  addrinfo* res = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), port.c_str(), &hints, &res);
  if (rc != 0 || !res) {
    throw CheckpointError("socket: cannot resolve " + address + ": " +
                          ::gai_strerror(rc));
  }
  const int fd = ::socket(res->ai_family, res->ai_socktype, res->ai_protocol);
  if (fd < 0) {
    ::freeaddrinfo(res);
    throw_errno("socket: socket() for " + address);
  }
  std::memcpy(out, res->ai_addr, res->ai_addrlen);
  *out_len = res->ai_addrlen;
  ::freeaddrinfo(res);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (listen_side) {
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  }
  return fd;
}

}  // namespace

int listen_socket(const std::string& address) {
  int fd = -1;
  if (is_unix_address(address)) {
    ::unlink(address.c_str());  // a stale socket file blocks bind
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw_errno("socket: socket() for " + address);
    const sockaddr_un addr = unix_addr(address);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd);
      throw_errno("socket: bind " + address);
    }
  } else {
    sockaddr_storage addr{};
    socklen_t len = 0;
    fd = tcp_socket_for(address, true, &addr, &len);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), len) != 0) {
      ::close(fd);
      throw_errno("socket: bind " + address);
    }
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    throw_errno("socket: listen " + address);
  }
  return fd;
}

int accept_socket(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return fd;
    if (errno == EINTR) continue;
    throw_errno("socket: accept");
  }
}

int connect_socket(const std::string& address) {
  int fd = -1;
  if (is_unix_address(address)) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw_errno("socket: socket() for " + address);
    const sockaddr_un addr = unix_addr(address);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd);
      throw_errno("socket: connect " + address);
    }
  } else {
    sockaddr_storage addr{};
    socklen_t len = 0;
    fd = tcp_socket_for(address, false, &addr, &len);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), len) != 0) {
      ::close(fd);
      throw_errno("socket: connect " + address);
    }
  }
  return fd;
}

int connect_socket_retry(const std::string& address, double timeout_s) {
  const double delay_s = 0.1;
  double waited = 0.0;
  for (;;) {
    try {
      return connect_socket(address);
    } catch (const CheckpointError&) {
      if (waited >= timeout_s) throw;
    }
    timespec ts{};
    ts.tv_sec = 0;
    ts.tv_nsec = static_cast<long>(delay_s * 1e9);
    ::nanosleep(&ts, nullptr);
    waited += delay_s;
  }
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("socket: set O_NONBLOCK");
  }
}

void ignore_sigpipe() { ::signal(SIGPIPE, SIG_IGN); }

}  // namespace puffer
