// Binary checkpoint codec for trial orchestration (src/orchestrate/).
//
// A FlowSnapshot captures the flow state at the fork point of a staged
// run -- the end of the trial-invariant global-placement prefix -- so K
// exploration trials can restore it and diverge instead of each
// re-running the shared prefix. The captured state is exactly what the
// staged flow contract (core/flow.h: run_prefix / run_from) needs to
// continue bit-identically:
//
//   * every cell's lower-left position (doubles, bit-exact),
//   * the per-movable-cell padding widths at the fork,
//   * the RNG stream state (two words, see common/rng.h),
//   * the serialized congestion demand ledger (optional warm start,
//     only restored when the congestion-config fingerprint matches).
//
// The file format is versioned, little-endian, with a trailing FNV-1a
// checksum over the payload; save_snapshot writes atomically
// (tmp + fsync + rename) so a crash never leaves a torn checkpoint.
// Decoding errors throw CheckpointError.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "netlist/design.h"

namespace puffer {

class CheckpointError : public std::runtime_error {
 public:
  explicit CheckpointError(const std::string& what)
      : std::runtime_error(what) {}
};

// --- low-level byte codec ------------------------------------------------
// Little-endian writer/reader over an in-memory buffer. Doubles are stored
// as their IEEE-754 bit pattern so round-trips are bitwise-exact.
class BinaryWriter {
 public:
  void put_u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_i32(std::int32_t v) { put_u32(static_cast<std::uint32_t>(v)); }
  void put_i64(std::int64_t v) { put_u64(static_cast<std::uint64_t>(v)); }
  void put_f64(double v);
  void put_bytes(const void* data, std::size_t n);
  void put_string(const std::string& s);
  void put_f64_vec(const std::vector<double>& v);

  const std::string& buffer() const { return buf_; }
  std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

class BinaryReader {
 public:
  explicit BinaryReader(const std::string& buf) : buf_(buf) {}

  std::uint8_t get_u8();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  std::int32_t get_i32() { return static_cast<std::int32_t>(get_u32()); }
  std::int64_t get_i64() { return static_cast<std::int64_t>(get_u64()); }
  double get_f64();
  std::string get_string();
  std::vector<double> get_f64_vec();

  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return buf_.size() - pos_; }
  bool at_end() const { return pos_ == buf_.size(); }

 private:
  void need(std::size_t n) const;
  const std::string& buf_;
  std::size_t pos_ = 0;
};

// FNV-1a over a byte range (shared by the checkpoint trailer and the
// journal's record hashes).
std::uint64_t fnv1a_bytes(const void* data, std::size_t n,
                          std::uint64_t h = 1469598103934665603ull);

// --- crash-safe file helpers ---------------------------------------------
// Writes `data` to `path` atomically: tmp file in the same directory,
// fsync, rename over the target, fsync the directory. Throws
// CheckpointError on any I/O failure.
void atomic_write_file(const std::string& path, const std::string& data);

// Reads a whole file; throws CheckpointError when unreadable.
std::string read_file(const std::string& path);

// --- stream-backed frame I/O ---------------------------------------------
// Length-prefixed binary frames over an arbitrary byte stream (socket,
// pipe, ...): the same codec + FNV-1a integrity story as the checkpoint
// files, but framed so many messages share one connection. Layout:
//
//   u32 magic "PUFM" | u32 wire version | u32 frame type |
//   u64 body size | body bytes | u64 fnv1a(body)
//
// All integers little-endian (BinaryWriter/Reader). Readers reject bad
// magic, unknown versions, oversized bodies and checksum mismatches with
// CheckpointError; a stream that ends mid-frame is "truncated", a stream
// that ends exactly at a frame boundary is a clean EOF.
struct WireFrame {
  std::uint32_t type = 0;
  std::string body;
};

// Frame bodies larger than this are rejected as corruption (a garbled
// length prefix must not trigger a multi-GiB allocation).
constexpr std::uint64_t kMaxFrameBody = 1ull << 30;

// Serializes one frame to bytes (exposed so tests can corrupt it).
std::string encode_frame(std::uint32_t type, const std::string& body);

// Blocking write of one frame to `fd`; retries short writes and EINTR.
// Throws CheckpointError on any I/O failure (including EPIPE -- callers
// treat that as peer death, so SIGPIPE should be ignored process-wide).
void write_frame_fd(int fd, std::uint32_t type, const std::string& body);

// Blocking read of one frame. Returns false on a clean EOF at a frame
// boundary; throws CheckpointError on truncation mid-frame, bad magic,
// version mismatch, oversized body, or checksum failure.
bool read_frame_fd(int fd, WireFrame* out);

// Incremental frame decoder for non-blocking streams (the poll()-driven
// serve daemon): append() whatever bytes arrived, next() pops complete
// frames. Same validation as read_frame_fd -- bad magic, unsupported
// version, oversized body and checksum mismatches throw CheckpointError
// (after which the stream is unusable and should be closed). Bytes of a
// not-yet-complete frame simply stay buffered.
class FrameBuffer {
 public:
  void append(const char* data, std::size_t n);
  // True (and *out filled) when a complete frame was buffered.
  bool next(WireFrame* out);
  std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::string buf_;
  std::size_t pos_ = 0;  // consumed prefix, compacted lazily
};

// --- flow snapshot -------------------------------------------------------
struct FlowSnapshot {
  // Structure key of the design the snapshot was taken from; restoring
  // onto a structurally different design is refused.
  std::uint64_t design_key = 0;
  // Hash of the prefix-relevant configuration (init + gp + fork point);
  // a trial whose prefix config differs must not reuse the checkpoint.
  std::uint64_t prefix_key = 0;
  // Density overflow the prefix ran to (the fork point).
  double fork_overflow = 0.0;
  // Lower-left positions for *all* cells, index-aligned with
  // Design::cells (fixed cells included: restoring them is free and makes
  // the snapshot self-validating).
  std::vector<double> x, y;
  // Per-movable-cell padding widths at the fork (empty = no padding yet;
  // the fork point is normally before the first padding round).
  std::vector<double> padding;
  // RNG stream state at the fork (common/rng.h RngStream).
  std::uint64_t rng_key = 0;
  std::uint64_t rng_counter = 0;
  // Fingerprint of the congestion config the ledger blob was built under;
  // restore skips the blob when the trial's config fingerprint differs
  // (correct either way -- the ledger is a pure warm start).
  std::uint64_t congestion_fingerprint = 0;
  // Serialized demand-ledger state (congestion/estimator.h
  // save_incremental_state); empty = cold start.
  std::string ledger_blob;
};

// Stable structural hash of a design: counts, die, rows, cell
// geometry/kind, pin offsets and net connectivity -- everything except
// the mutable cell positions.
std::uint64_t design_structure_key(const Design& design);

// FNV-1a over all cells' (x, y) bit patterns -- the bit-identity
// fingerprint shared by trial orchestration and the serve daemon.
std::uint64_t position_checksum(const Design& design);

// Versioned encode/decode (throws CheckpointError on malformed input,
// version mismatch, or checksum failure).
std::string encode_snapshot(const FlowSnapshot& snap);
FlowSnapshot decode_snapshot(const std::string& bytes);

// Atomic save / validated load.
void save_snapshot(const std::string& path, const FlowSnapshot& snap);
FlowSnapshot load_snapshot(const std::string& path);

}  // namespace puffer
