#include "io/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace puffer {
namespace {

constexpr std::uint32_t kSnapshotMagic = 0x50554653;  // "PUFS"
constexpr std::uint32_t kSnapshotVersion = 1;

std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) {
  return fnv1a_bytes(&v, sizeof(v), h);
}

std::uint64_t fnv1a_f64(std::uint64_t h, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return fnv1a_u64(h, bits);
}

}  // namespace

// --- BinaryWriter --------------------------------------------------------

void BinaryWriter::put_u32(std::uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  buf_.append(b, 4);
}

void BinaryWriter::put_u64(std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  buf_.append(b, 8);
}

void BinaryWriter::put_f64(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(bits);
}

void BinaryWriter::put_bytes(const void* data, std::size_t n) {
  buf_.append(static_cast<const char*>(data), n);
}

void BinaryWriter::put_string(const std::string& s) {
  put_u64(s.size());
  buf_.append(s);
}

void BinaryWriter::put_f64_vec(const std::vector<double>& v) {
  put_u64(v.size());
  for (double d : v) put_f64(d);
}

// --- BinaryReader --------------------------------------------------------

void BinaryReader::need(std::size_t n) const {
  if (buf_.size() - pos_ < n) {
    throw CheckpointError("checkpoint: truncated buffer (need " +
                          std::to_string(n) + " bytes at offset " +
                          std::to_string(pos_) + ", have " +
                          std::to_string(buf_.size() - pos_) + ")");
  }
}

std::uint8_t BinaryReader::get_u8() {
  need(1);
  return static_cast<std::uint8_t>(buf_[pos_++]);
}

std::uint32_t BinaryReader::get_u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(buf_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t BinaryReader::get_u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

double BinaryReader::get_f64() {
  const std::uint64_t bits = get_u64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string BinaryReader::get_string() {
  const std::uint64_t n = get_u64();
  if (n > buf_.size() - pos_) {
    throw CheckpointError("checkpoint: string length " + std::to_string(n) +
                          " exceeds buffer");
  }
  std::string s = buf_.substr(pos_, static_cast<std::size_t>(n));
  pos_ += static_cast<std::size_t>(n);
  return s;
}

std::vector<double> BinaryReader::get_f64_vec() {
  const std::uint64_t n = get_u64();
  if (n > (buf_.size() - pos_) / 8) {
    throw CheckpointError("checkpoint: vector length " + std::to_string(n) +
                          " exceeds buffer");
  }
  std::vector<double> v;
  v.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(get_f64());
  return v;
}

// --- hashing -------------------------------------------------------------

std::uint64_t fnv1a_bytes(const void* data, std::size_t n, std::uint64_t h) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

// --- crash-safe file helpers ---------------------------------------------

namespace {

void fsync_fd_or_throw(int fd, const std::string& what) {
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    throw CheckpointError("checkpoint: fsync " + what + " failed: " +
                          std::strerror(err));
  }
}

void fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." :
                          slash == 0 ? "/" : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  // Directory fsync is best-effort: some filesystems refuse O_DIRECTORY
  // fsync; the data file itself is already durable.
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

void atomic_write_file(const std::string& path, const std::string& data) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw CheckpointError("checkpoint: cannot open " + tmp + ": " +
                          std::strerror(errno));
  }
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t w = ::write(fd, data.data() + off, data.size() - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      throw CheckpointError("checkpoint: write " + tmp + " failed: " +
                            std::strerror(err));
    }
    off += static_cast<std::size_t>(w);
  }
  fsync_fd_or_throw(fd, tmp);
  ::close(fd);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw CheckpointError("checkpoint: rename " + tmp + " -> " + path +
                          " failed: " + std::strerror(errno));
  }
  fsync_parent_dir(path);
}

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    throw CheckpointError("checkpoint: cannot read " + path + ": " +
                          std::strerror(errno));
  }
  std::string data;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) data.append(buf, n);
  const bool err = std::ferror(f) != 0;
  std::fclose(f);
  if (err) throw CheckpointError("checkpoint: read " + path + " failed");
  return data;
}

// --- stream-backed frame I/O ---------------------------------------------

namespace {

constexpr std::uint32_t kFrameMagic = 0x5055464d;  // "PUFM"
constexpr std::uint32_t kWireVersion = 1;

// Reads exactly n bytes. Returns the number read: n on success, 0 on EOF
// before the first byte, anything else means the stream died mid-read.
std::size_t read_exact(int fd, char* dst, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, dst + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw CheckpointError(std::string("frame: read failed: ") +
                            std::strerror(errno));
    }
    if (r == 0) break;
    got += static_cast<std::size_t>(r);
  }
  return got;
}

void write_all(int fd, const char* src, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd, src + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw CheckpointError(std::string("frame: write failed: ") +
                            std::strerror(errno));
    }
    off += static_cast<std::size_t>(w);
  }
}

}  // namespace

std::string encode_frame(std::uint32_t type, const std::string& body) {
  BinaryWriter w;
  w.put_u32(kFrameMagic);
  w.put_u32(kWireVersion);
  w.put_u32(type);
  w.put_u64(body.size());
  w.put_bytes(body.data(), body.size());
  w.put_u64(fnv1a_bytes(body.data(), body.size()));
  return w.take();
}

void write_frame_fd(int fd, std::uint32_t type, const std::string& body) {
  const std::string bytes = encode_frame(type, body);
  write_all(fd, bytes.data(), bytes.size());
}

bool read_frame_fd(int fd, WireFrame* out) {
  // Header: magic, version, type, body size.
  char header[20];
  const std::size_t got = read_exact(fd, header, sizeof(header));
  if (got == 0) return false;  // clean EOF between frames
  if (got < sizeof(header)) {
    throw CheckpointError("frame: truncated header (" + std::to_string(got) +
                          " of " + std::to_string(sizeof(header)) + " bytes)");
  }
  // BinaryReader wants an owning std::string; decode the fixed-size
  // header in place instead.
  const auto u32_at = [&](int off) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(header[off + i]))
           << (8 * i);
    }
    return v;
  };
  const auto u64_at = [&](int off) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(header[off + i]))
           << (8 * i);
    }
    return v;
  };
  if (u32_at(0) != kFrameMagic) {
    throw CheckpointError("frame: bad magic (stream out of sync)");
  }
  const std::uint32_t version = u32_at(4);
  if (version != kWireVersion) {
    throw CheckpointError("frame: unsupported wire version " +
                          std::to_string(version));
  }
  const std::uint32_t type = u32_at(8);
  const std::uint64_t body_size = u64_at(12);
  if (body_size > kMaxFrameBody) {
    throw CheckpointError("frame: body size " + std::to_string(body_size) +
                          " exceeds limit (corrupt length prefix?)");
  }

  std::string body(static_cast<std::size_t>(body_size), '\0');
  if (body_size > 0 &&
      read_exact(fd, body.data(), body.size()) != body.size()) {
    throw CheckpointError("frame: truncated body");
  }
  char trailer[8];
  if (read_exact(fd, trailer, sizeof(trailer)) != sizeof(trailer)) {
    throw CheckpointError("frame: truncated checksum trailer");
  }
  std::uint64_t want = 0;
  for (int i = 0; i < 8; ++i) {
    want |= static_cast<std::uint64_t>(static_cast<unsigned char>(trailer[i]))
            << (8 * i);
  }
  const std::uint64_t got_sum = fnv1a_bytes(body.data(), body.size());
  if (want != got_sum) {
    throw CheckpointError("frame: body checksum mismatch");
  }
  out->type = type;
  out->body = std::move(body);
  return true;
}

void FrameBuffer::append(const char* data, std::size_t n) {
  // Compact the consumed prefix before it grows past the useful window.
  if (pos_ > 0 && (pos_ >= buf_.size() || pos_ > (1u << 16))) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(data, n);
}

bool FrameBuffer::next(WireFrame* out) {
  constexpr std::size_t kHeader = 20;  // magic, version, type, body size
  if (buffered() < kHeader) return false;
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(buf_.data()) + pos_;
  const auto u32_at = [&](int off) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(p[off + i]) << (8 * i);
    }
    return v;
  };
  const auto u64_at = [&](int off) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(p[off + i]) << (8 * i);
    }
    return v;
  };
  if (u32_at(0) != kFrameMagic) {
    throw CheckpointError("frame: bad magic (stream out of sync)");
  }
  const std::uint32_t version = u32_at(4);
  if (version != kWireVersion) {
    throw CheckpointError("frame: unsupported wire version " +
                          std::to_string(version));
  }
  const std::uint64_t body_size = u64_at(12);
  if (body_size > kMaxFrameBody) {
    throw CheckpointError("frame: body size " + std::to_string(body_size) +
                          " exceeds limit (corrupt length prefix?)");
  }
  const std::size_t total =
      kHeader + static_cast<std::size_t>(body_size) + 8;
  if (buffered() < total) return false;
  std::string body(buf_, pos_ + kHeader, static_cast<std::size_t>(body_size));
  std::uint64_t want = 0;
  {
    const unsigned char* t = p + kHeader + body_size;
    for (int i = 0; i < 8; ++i) {
      want |= static_cast<std::uint64_t>(t[i]) << (8 * i);
    }
  }
  if (want != fnv1a_bytes(body.data(), body.size())) {
    throw CheckpointError("frame: body checksum mismatch");
  }
  out->type = u32_at(8);
  out->body = std::move(body);
  pos_ += total;
  return true;
}

// --- design structure key ------------------------------------------------

std::uint64_t design_structure_key(const Design& design) {
  std::uint64_t h = 1469598103934665603ull;
  h = fnv1a_f64(h, design.die.xlo);
  h = fnv1a_f64(h, design.die.ylo);
  h = fnv1a_f64(h, design.die.xhi);
  h = fnv1a_f64(h, design.die.yhi);
  h = fnv1a_u64(h, design.rows.size());
  for (const Row& r : design.rows) {
    h = fnv1a_f64(h, r.y);
    h = fnv1a_f64(h, r.x_lo);
    h = fnv1a_u64(h, static_cast<std::uint64_t>(r.num_sites));
    h = fnv1a_f64(h, r.site_width);
    h = fnv1a_f64(h, r.height);
  }
  h = fnv1a_u64(h, design.cells.size());
  for (const Cell& c : design.cells) {
    h = fnv1a_u64(h, static_cast<std::uint64_t>(c.kind));
    h = fnv1a_f64(h, c.width);
    h = fnv1a_f64(h, c.height);
    h = fnv1a_u64(h, c.pins.size());
  }
  h = fnv1a_u64(h, design.pins.size());
  for (const Pin& p : design.pins) {
    h = fnv1a_u64(h, static_cast<std::uint64_t>(p.cell));
    h = fnv1a_u64(h, static_cast<std::uint64_t>(p.net));
    h = fnv1a_f64(h, p.dx);
    h = fnv1a_f64(h, p.dy);
  }
  h = fnv1a_u64(h, design.nets.size());
  for (const Net& n : design.nets) {
    h = fnv1a_u64(h, n.pins.size());
    h = fnv1a_f64(h, n.weight);
  }
  return h;
}

std::uint64_t position_checksum(const Design& design) {
  std::uint64_t h = fnv1a_bytes(nullptr, 0);
  for (const Cell& c : design.cells) {
    h = fnv1a_f64(h, c.x);
    h = fnv1a_f64(h, c.y);
  }
  return h;
}

// --- snapshot encode/decode ----------------------------------------------

std::string encode_snapshot(const FlowSnapshot& snap) {
  BinaryWriter payload;
  payload.put_u64(snap.design_key);
  payload.put_u64(snap.prefix_key);
  payload.put_f64(snap.fork_overflow);
  payload.put_f64_vec(snap.x);
  payload.put_f64_vec(snap.y);
  payload.put_f64_vec(snap.padding);
  payload.put_u64(snap.rng_key);
  payload.put_u64(snap.rng_counter);
  payload.put_u64(snap.congestion_fingerprint);
  payload.put_string(snap.ledger_blob);

  BinaryWriter out;
  out.put_u32(kSnapshotMagic);
  out.put_u32(kSnapshotVersion);
  const std::string& body = payload.buffer();
  out.put_u64(body.size());
  out.put_bytes(body.data(), body.size());
  out.put_u64(fnv1a_bytes(body.data(), body.size()));
  return out.take();
}

FlowSnapshot decode_snapshot(const std::string& bytes) {
  BinaryReader r(bytes);
  if (r.get_u32() != kSnapshotMagic) {
    throw CheckpointError("checkpoint: bad magic (not a PUFFER snapshot)");
  }
  const std::uint32_t version = r.get_u32();
  if (version != kSnapshotVersion) {
    throw CheckpointError("checkpoint: unsupported snapshot version " +
                          std::to_string(version));
  }
  const std::uint64_t body_size = r.get_u64();
  if (body_size > r.remaining()) {
    throw CheckpointError("checkpoint: truncated snapshot body");
  }
  const std::string body = bytes.substr(r.pos(),
                                        static_cast<std::size_t>(body_size));
  const std::string trailer = bytes.substr(
      r.pos() + static_cast<std::size_t>(body_size));
  BinaryReader tr(trailer);
  const std::uint64_t want = tr.get_u64();
  const std::uint64_t got = fnv1a_bytes(body.data(), body.size());
  if (want != got) {
    throw CheckpointError("checkpoint: payload checksum mismatch");
  }

  BinaryReader p(body);
  FlowSnapshot snap;
  snap.design_key = p.get_u64();
  snap.prefix_key = p.get_u64();
  snap.fork_overflow = p.get_f64();
  snap.x = p.get_f64_vec();
  snap.y = p.get_f64_vec();
  snap.padding = p.get_f64_vec();
  snap.rng_key = p.get_u64();
  snap.rng_counter = p.get_u64();
  snap.congestion_fingerprint = p.get_u64();
  snap.ledger_blob = p.get_string();
  if (snap.x.size() != snap.y.size()) {
    throw CheckpointError("checkpoint: x/y position arrays disagree");
  }
  return snap;
}

void save_snapshot(const std::string& path, const FlowSnapshot& snap) {
  atomic_write_file(path, encode_snapshot(snap));
}

FlowSnapshot load_snapshot(const std::string& path) {
  return decode_snapshot(read_file(path));
}

}  // namespace puffer
