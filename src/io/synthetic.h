// Synthetic industrial-design generator.
//
// The PUFFER paper evaluates on ten proprietary industrial designs
// (Table I). Those netlists cannot be redistributed, so this generator
// produces deterministic synthetic designs whose *relative* statistics
// match Table I (macro count, cells:nets ratio, pins per cell) at a
// configurable scale, and whose connectivity is clustered (Rent-style)
// so that realistic congestion hot spots emerge: dense logic clusters,
// routing channels between macros, and a share of long cross-cluster
// nets.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/design.h"

namespace puffer {

struct SyntheticSpec {
  std::string name = "synthetic";
  std::uint64_t seed = 1;

  int num_cells = 10000;     // movable standard cells
  int num_nets = 10000;      // approximate; actual count is deterministic
  int num_macros = 16;
  int num_terminals = 64;    // boundary I/O pads

  double target_utilization = 0.72;  // movable area / free area
  double avg_net_degree = 3.4;       // pins per net (heavy-tailed)
  double cluster_net_ratio = 0.72;   // fraction of nets local to a cluster
  int cluster_size = 48;             // cells per logical cluster

  // Macro footprint, as a fraction of the die edge per macro side.
  double macro_edge_frac = 0.07;

  int tech_layers = 8;

  // Directional routing-supply stress: the horizontal / vertical track
  // densities are multiplied by these factors (< 1 models designs whose
  // stack is starved in one direction -- the paper's congested designs
  // show exactly this signature, e.g. MEDIA_SUBSYS' VOF >> HOF).
  double h_capacity_factor = 1.0;
  double v_capacity_factor = 1.0;
};

// Builds a design per the spec. The result validates (Design::validate is
// empty), has rows covering the die outside macros, and leaves movable
// cells at deterministic cluster-seeded initial positions.
Design generate_synthetic(const SyntheticSpec& spec);

// The ten-design suite of Table I at `scale_divisor` (e.g. 40 gives ~3k to
// ~40k movable cells). Names match the paper.
std::vector<SyntheticSpec> table1_suite(int scale_divisor);

// Looks up one suite entry by benchmark name; throws std::out_of_range.
SyntheticSpec table1_spec(const std::string& name, int scale_divisor);

}  // namespace puffer
