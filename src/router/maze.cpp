#include "router/maze.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace puffer {

namespace {

inline std::int32_t count_trailing_zeros(std::uint64_t bits) {
  return static_cast<std::int32_t>(std::countr_zero(bits));
}

}  // namespace

std::int32_t quantize_cost(double cost) {
  const double q = std::round(cost * static_cast<double>(kQCostScale));
  if (q <= static_cast<double>(kQCostScale)) return kQCostScale;
  if (q >= static_cast<double>(kQCostMax)) return kQCostMax;
  return static_cast<std::int32_t>(q);
}

namespace {

// Ring size: one pop at front f can push entries up to
// f + entry(neighbor) + turn-cell extra entry + qturn + kQCostScale
// (the heuristic can grow by one step), so with qturn clamped below
// 2*kQCostMax - kQCostScale every in-flight f stays within the ring.
constexpr std::int32_t kRingSize = 4 * kQCostMax + 1;
constexpr std::int32_t kMaxQTurn = 2 * kQCostMax - kQCostScale - 1;

}  // namespace

std::vector<GcellIndex> maze_route(const MazeWindow& w, GcellIndex a,
                                   GcellIndex b, std::int32_t qturn,
                                   MazeArena& arena,
                                   const CellCostFn& cell_cost,
                                   std::int64_t qbound) {
  std::vector<GcellIndex> out;
  if (w.ww <= 0 || w.wh <= 0 || !w.contains(a.gx, a.gy) ||
      !w.contains(b.gx, b.gy)) {
    return out;
  }
  if (a.gx == b.gx && a.gy == b.gy) {
    out.push_back(a);
    return out;
  }
  qturn = std::clamp<std::int32_t>(qturn, 0, kMaxQTurn);

  const std::size_t cells =
      static_cast<std::size_t>(w.ww) * static_cast<std::size_t>(w.wh);
  const std::size_t states = cells * 2;
  if (arena.gscore.size() < states) {
    arena.gscore.resize(states);
    arena.parent.resize(states);
    arena.visit.resize(states, 0);
    arena.closed.resize(states, 0);
  }
  if (arena.qcost_h.size() < cells) {
    arena.qcost_h.resize(cells);
    arena.qcost_v.resize(cells);
    arena.cost_epoch.resize(cells, 0);
  }
  if (arena.buckets.size() < static_cast<std::size_t>(kRingSize)) {
    arena.buckets.resize(static_cast<std::size_t>(kRingSize));
    arena.occupied.assign((static_cast<std::size_t>(kRingSize) + 63) / 64, 0);
  }
  const std::uint32_t token = ++arena.epoch;
  if (token == 0) {
    // Epoch wrapped: all stamps are stale-but-plausible; hard reset.
    std::fill(arena.visit.begin(), arena.visit.end(), 0u);
    std::fill(arena.closed.begin(), arena.closed.end(), 0u);
    std::fill(arena.cost_epoch.begin(), arena.cost_epoch.end(), 0u);
    ++arena.epoch;
  }

  const auto cell_id = [&](int gx, int gy) {
    return static_cast<std::size_t>(gy - w.y0) *
               static_cast<std::size_t>(w.ww) +
           static_cast<std::size_t>(gx - w.x0);
  };
  // dir 0 = arrived horizontally, 1 = vertically.
  const auto sid = [&](int gx, int gy, int dir) {
    return cell_id(gx, gy) * 2 + static_cast<std::size_t>(dir);
  };
  const auto heur = [&](int gx, int gy) {
    return static_cast<std::int64_t>(kQCostScale) *
           (std::abs(gx - b.gx) + std::abs(gy - b.gy));
  };
  const auto costs_of = [&](int gx, int gy) -> std::pair<std::int32_t, std::int32_t> {
    const std::size_t c = cell_id(gx, gy);
    if (arena.cost_epoch[c] != token) {
      cell_cost(gx, gy, arena.qcost_h[c], arena.qcost_v[c]);
      arena.cost_epoch[c] = token;
    }
    return {arena.qcost_h[c], arena.qcost_v[c]};
  };

  std::int64_t cur_f = -1;
  std::size_t pending = 0;
  const auto push = [&](int gx, int gy, int dir, std::int64_t g,
                        std::int32_t par) {
    const std::size_t s = sid(gx, gy, dir);
    if (arena.visit[s] == token &&
        (arena.closed[s] == token || arena.gscore[s] <= g)) {
      return;
    }
    arena.visit[s] = token;
    arena.gscore[s] = g;
    arena.parent[s] = par;
    const std::int64_t f = g + heur(gx, gy);
    const std::int32_t slot = static_cast<std::int32_t>(f % kRingSize);
    auto& bucket = arena.buckets[static_cast<std::size_t>(slot)];
    if (bucket.empty()) {
      arena.touched.push_back(slot);
      arena.occupied[static_cast<std::size_t>(slot) >> 6] |=
          std::uint64_t{1} << (slot & 63);
    }
    bucket.push_back(static_cast<std::uint32_t>(s));
    ++pending;
    if (cur_f < 0 || f < cur_f) cur_f = f;
  };
  // Circular distance from `slot` to the nearest occupied slot (itself
  // included); word-scans the occupancy bitmap instead of stepping the
  // front one bucket at a time. Callers guarantee a set bit exists
  // (pending > 0) and every pending f lies within one ring of cur_f.
  const auto gap_to_occupied = [&](std::int32_t slot) -> std::int32_t {
    std::size_t word = static_cast<std::size_t>(slot) >> 6;
    std::uint64_t bits = arena.occupied[word] >> (slot & 63);
    if (bits != 0) return count_trailing_zeros(bits);
    std::int32_t d = 64 - (slot & 63);
    const std::size_t nwords = arena.occupied.size();
    for (;;) {
      word = word + 1 < nwords ? word + 1 : 0;
      // The wrap re-enters at slot 0: bits past kRingSize in the last
      // word are never set, so the scan cannot alias. `d` overshoots by
      // the pad when wrapping through the partial word; correct it.
      if (word == 0) d = kRingSize - slot;
      bits = arena.occupied[word];
      if (bits != 0) return d + count_trailing_zeros(bits);
      d += 64;
    }
  };

  {
    const auto [ch, cv] = costs_of(a.gx, a.gy);
    push(a.gx, a.gy, 0, ch, -1);
    push(a.gx, a.gy, 1, cv, -1);
  }

  std::int32_t goal_state = -1;
  while (pending > 0) {
    // cur_f lower-bounds every pending f (consistent heuristic, positive
    // edges), so reaching qbound proves no admissible path remains.
    if (qbound > 0 && cur_f >= qbound) break;
    const std::int32_t slot = static_cast<std::int32_t>(cur_f % kRingSize);
    auto& bucket = arena.buckets[static_cast<std::size_t>(slot)];
    if (bucket.empty()) {
      // Monotone front: jump straight to the next occupied slot.
      cur_f += gap_to_occupied(slot);
      continue;
    }
    const std::size_t s = bucket.back();
    bucket.pop_back();
    --pending;
    if (bucket.empty()) {
      arena.occupied[static_cast<std::size_t>(slot) >> 6] &=
          ~(std::uint64_t{1} << (slot & 63));
    }
    const int dir = static_cast<int>(s % 2);
    const std::size_t c = s / 2;
    const int gx = w.x0 + static_cast<int>(c % static_cast<std::size_t>(w.ww));
    const int gy = w.y0 + static_cast<int>(c / static_cast<std::size_t>(w.ww));
    if (arena.closed[s] == token) continue;  // superseded entry
    if (arena.gscore[s] + heur(gx, gy) != cur_f) continue;  // stale entry
    arena.closed[s] = token;
    if (gx == b.gx && gy == b.gy) {
      goal_state = static_cast<std::int32_t>(s);
      break;
    }
    const std::int64_t g = arena.gscore[s];
    // A direction change makes the current cell a turning cell, which
    // consumes BOTH directions' resources in the demand model -- charge
    // the perpendicular entry cost of the turn cell plus the via-ish
    // penalty, so the search objective matches path_qcost (the commit
    // comparator) exactly. That identity is what makes the qbound prune
    // tight.
    const auto [ch_c, cv_c] = costs_of(gx, gy);
    const std::int32_t turn_h = dir == 1 ? qturn + ch_c : 0;
    const std::int32_t turn_v = dir == 0 ? qturn + cv_c : 0;
    if (gx > w.x0) {
      push(gx - 1, gy, 0, g + costs_of(gx - 1, gy).first + turn_h,
           static_cast<std::int32_t>(s));
    }
    if (gx + 1 < w.x0 + w.ww) {
      push(gx + 1, gy, 0, g + costs_of(gx + 1, gy).first + turn_h,
           static_cast<std::int32_t>(s));
    }
    if (gy > w.y0) {
      push(gx, gy - 1, 1, g + costs_of(gx, gy - 1).second + turn_v,
           static_cast<std::int32_t>(s));
    }
    if (gy + 1 < w.y0 + w.wh) {
      push(gx, gy + 1, 1, g + costs_of(gx, gy + 1).second + turn_v,
           static_cast<std::int32_t>(s));
    }
  }
  // Drain leftover entries so the ring and its occupancy bitmap are
  // clean for the next call -- only the slots this search dirtied.
  for (std::int32_t slot : arena.touched) {
    arena.buckets[static_cast<std::size_t>(slot)].clear();
    arena.occupied[static_cast<std::size_t>(slot) >> 6] &=
        ~(std::uint64_t{1} << (slot & 63));
  }
  arena.touched.clear();
  if (goal_state < 0) return out;  // unreachable inside the window

  std::int32_t s = goal_state;
  while (s >= 0) {
    const std::size_t c = static_cast<std::size_t>(s) / 2;
    const int gx = w.x0 + static_cast<int>(c % static_cast<std::size_t>(w.ww));
    const int gy = w.y0 + static_cast<int>(c / static_cast<std::size_t>(w.ww));
    if (out.empty() || out.back().gx != gx || out.back().gy != gy) {
      out.push_back({gx, gy});
    }
    s = arena.parent[static_cast<std::size_t>(s)];
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace puffer
