#include "router/global_router.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "common/logger.h"
#include "common/parallel.h"
#include "rsmt/rsmt.h"

namespace puffer {
namespace {

constexpr const char* kTag = "router";

struct Seg {
  GcellIndex a, b;
  std::vector<GcellIndex> path;  // inclusive cell sequence a..b
};

// Demand application: each path cell consumes the direction(s) of its
// adjacent moves; a turning cell consumes both directions.
void apply_path(const std::vector<GcellIndex>& path, Map2D<double>& dmd_h,
                Map2D<double>& dmd_v, double sign) {
  const std::size_t n = path.size();
  if (n < 2) return;
  for (std::size_t i = 0; i < n; ++i) {
    bool h = false, v = false;
    if (i > 0) {
      if (path[i - 1].gy == path[i].gy) h = true;
      else v = true;
    }
    if (i + 1 < n) {
      if (path[i + 1].gy == path[i].gy) h = true;
      else v = true;
    }
    if (h) dmd_h.at(path[i].gx, path[i].gy) += sign;
    if (v) dmd_v.at(path[i].gx, path[i].gy) += sign;
  }
}

}  // namespace

GlobalRouter::GlobalRouter(const Design& design, RouterConfig config,
                           RsmtCache* tree_cache)
    : design_(design),
      config_(config),
      grid_(GcellGrid::from_row_pitch(design.die, design.tech.row_height,
                                      config.rows_per_gcell)),
      capacity_(build_capacity_maps(design, grid_)),
      tree_cache_(tree_cache) {}

RouteResult GlobalRouter::route() const {
  RouteResult result;
  result.maps = RoutingMaps(grid_, capacity_);
  Map2D<double>& dmd_h = result.maps.dmd_h;
  Map2D<double>& dmd_v = result.maps.dmd_v;

  // Local-net pin demand (not ripped up; same model as the estimator):
  // a flat per-pin term plus the superlinear crowding excess for Gcells
  // holding more pins than their access capacity.
  if (config_.pin_penalty > 0.0 || config_.pin_crowding > 0.0) {
    Map2D<double> pin_cnt(grid_.nx(), grid_.ny());
    for (const Pin& pin : design_.pins) {
      const Cell& c = design_.cells[static_cast<std::size_t>(pin.cell)];
      const GcellIndex g = grid_.index_of(c.x + pin.dx, c.y + pin.dy);
      pin_cnt.at(g.gx, g.gy) += 1.0;
    }
    const double site_w = std::max(design_.tech.site_width, 1e-9);
    const double row_h = std::max(design_.tech.row_height, 1e-9);
    const double pin_cap =
        std::max(1.0, (grid_.gcell_w() / site_w) * (grid_.gcell_h() / row_h) *
                          config_.pins_per_site);
    for (int gy = 0; gy < grid_.ny(); ++gy) {
      for (int gx = 0; gx < grid_.nx(); ++gx) {
        const double cnt = pin_cnt.at(gx, gy);
        if (cnt <= 0.0) continue;
        const double excess = std::max(0.0, cnt - pin_cap);
        const double add = config_.pin_penalty * cnt +
                           0.5 * config_.pin_crowding * excess;
        if (add <= 0.0) continue;
        dmd_h.at(gx, gy) += add;
        dmd_v.at(gx, gy) += add;
      }
    }
  }

  // --- decompose nets into segments --------------------------------------
  // Parallel per net (each net owns its slot), flattened in net order so
  // the initial-routing sequence stays deterministic.
  std::vector<Seg> segs;
  {
    const std::int64_t n_nets = static_cast<std::int64_t>(design_.nets.size());
    std::vector<std::vector<Seg>> per_net(design_.nets.size());
    par::parallel_for(
        0, n_nets, 16,
        [&](std::int64_t nb, std::int64_t ne, int) {
          std::vector<Point> pts;
          for (std::int64_t n = nb; n < ne; ++n) {
            const Net& net = design_.nets[static_cast<std::size_t>(n)];
            if (net.pins.size() < 2) continue;
            pts.clear();
            for (PinId pid : net.pins) pts.push_back(design_.pin_position(pid));
            // Warm start: reuse the estimator's cached topology when the
            // quantized pins still match (per-net slots, race-free).
            const RsmtTree tree =
                tree_cache_ ? tree_cache_->get_or_build(
                                  static_cast<std::size_t>(n), pts)
                            : build_rsmt(pts);
            for (const RsmtSegment& s : tree.segments) {
              Seg seg;
              seg.a = grid_.index_of(
                  tree.points[static_cast<std::size_t>(s.a)].pos.x,
                  tree.points[static_cast<std::size_t>(s.a)].pos.y);
              seg.b = grid_.index_of(
                  tree.points[static_cast<std::size_t>(s.b)].pos.x,
                  tree.points[static_cast<std::size_t>(s.b)].pos.y);
              if (seg.a.gx == seg.b.gx && seg.a.gy == seg.b.gy) continue;
              per_net[static_cast<std::size_t>(n)].push_back(std::move(seg));
            }
          }
        },
        256);
    for (auto& pn : per_net) {
      for (Seg& s : pn) segs.push_back(std::move(s));
    }
  }
  result.segments = static_cast<int>(segs.size());

  Map2D<double> hist_h(grid_.nx(), grid_.ny());
  Map2D<double> hist_v(grid_.nx(), grid_.ny());

  // Directional entry cost of a Gcell during maze/pattern routing.
  const auto cost_h = [&](int gx, int gy) {
    const double cap = std::max(result.maps.cap_h.at(gx, gy), 1.0);
    const double ratio = (dmd_h.at(gx, gy) + 1.0) / cap;
    double c = 1.0;
    if (ratio > 1.0) {
      c += config_.overflow_slope * (ratio - 1.0) + hist_h.at(gx, gy);
    }
    return c;
  };
  const auto cost_v = [&](int gx, int gy) {
    const double cap = std::max(result.maps.cap_v.at(gx, gy), 1.0);
    const double ratio = (dmd_v.at(gx, gy) + 1.0) / cap;
    double c = 1.0;
    if (ratio > 1.0) {
      c += config_.overflow_slope * (ratio - 1.0) + hist_v.at(gx, gy);
    }
    return c;
  };

  // Builds an L path through the given corner.
  const auto l_path = [&](GcellIndex a, GcellIndex corner, GcellIndex b) {
    std::vector<GcellIndex> path;
    GcellIndex cur = a;
    path.push_back(cur);
    auto walk = [&](GcellIndex to) {
      while (cur.gx != to.gx) {
        cur.gx += (to.gx > cur.gx) ? 1 : -1;
        path.push_back(cur);
      }
      while (cur.gy != to.gy) {
        cur.gy += (to.gy > cur.gy) ? 1 : -1;
        path.push_back(cur);
      }
    };
    walk(corner);
    walk(b);
    return path;
  };

  const auto path_cost = [&](const std::vector<GcellIndex>& path) {
    double c = 0.0;
    for (std::size_t i = 0; i < path.size(); ++i) {
      bool h = false, v = false;
      if (i > 0) (path[i - 1].gy == path[i].gy ? h : v) = true;
      if (i + 1 < path.size()) (path[i + 1].gy == path[i].gy ? h : v) = true;
      if (h) c += cost_h(path[i].gx, path[i].gy);
      if (v) c += cost_v(path[i].gx, path[i].gy);
    }
    return c;
  };

  // --- initial pattern routing -------------------------------------------
  for (Seg& seg : segs) {
    const GcellIndex c1{seg.b.gx, seg.a.gy};
    const GcellIndex c2{seg.a.gx, seg.b.gy};
    auto p1 = l_path(seg.a, c1, seg.b);
    if (seg.a.gx == seg.b.gx || seg.a.gy == seg.b.gy) {
      seg.path = std::move(p1);
    } else {
      auto p2 = l_path(seg.a, c2, seg.b);
      seg.path = path_cost(p1) <= path_cost(p2) ? std::move(p1) : std::move(p2);
    }
    apply_path(seg.path, dmd_h, dmd_v, +1.0);
  }

  // --- negotiated rip-up and reroute --------------------------------------
  const int W = grid_.nx(), H = grid_.ny();
  std::vector<double> gscore;
  std::vector<int> visit_mark;
  std::vector<std::int32_t> parent;
  int visit_token = 0;

  // Direction-aware A* within a window; dir 0 = arrived horizontally,
  // 1 = vertically.
  const auto maze = [&](const Seg& seg) -> std::vector<GcellIndex> {
    const int x0 = std::max(0, std::min(seg.a.gx, seg.b.gx) - config_.bbox_margin);
    const int x1 = std::min(W - 1, std::max(seg.a.gx, seg.b.gx) + config_.bbox_margin);
    const int y0 = std::max(0, std::min(seg.a.gy, seg.b.gy) - config_.bbox_margin);
    const int y1 = std::min(H - 1, std::max(seg.a.gy, seg.b.gy) + config_.bbox_margin);
    const int ww = x1 - x0 + 1, wh = y1 - y0 + 1;
    const std::size_t states = static_cast<std::size_t>(ww) * wh * 2;
    if (gscore.size() < states) {
      gscore.resize(states);
      visit_mark.resize(states, -1);
      parent.resize(states);
    }
    ++visit_token;
    const auto sid = [&](int gx, int gy, int dir) {
      return (static_cast<std::size_t>(gy - y0) * ww + (gx - x0)) * 2 +
             static_cast<std::size_t>(dir);
    };
    const auto heur = [&](int gx, int gy) {
      return static_cast<double>(std::abs(gx - seg.b.gx) +
                                 std::abs(gy - seg.b.gy));
    };
    using QE = std::pair<double, std::uint32_t>;  // (f, state)
    std::priority_queue<QE, std::vector<QE>, std::greater<>> open;
    const auto push = [&](int gx, int gy, int dir, double g, std::int32_t par) {
      const std::size_t s = sid(gx, gy, dir);
      if (visit_mark[s] == visit_token && gscore[s] <= g) return;
      visit_mark[s] = visit_token;
      gscore[s] = g;
      parent[s] = par;
      open.emplace(g + heur(gx, gy), static_cast<std::uint32_t>(s));
    };
    push(seg.a.gx, seg.a.gy, 0, cost_h(seg.a.gx, seg.a.gy), -1);
    push(seg.a.gx, seg.a.gy, 1, cost_v(seg.a.gx, seg.a.gy), -1);

    std::int32_t goal_state = -1;
    while (!open.empty()) {
      const auto [f, sraw] = open.top();
      open.pop();
      const std::size_t s = sraw;
      const int dir = static_cast<int>(s % 2);
      const int gx = x0 + static_cast<int>((s / 2) % static_cast<std::size_t>(ww));
      const int gy = y0 + static_cast<int>((s / 2) / static_cast<std::size_t>(ww));
      if (f > gscore[s] + heur(gx, gy) + 1e-9) continue;  // stale entry
      if (gx == seg.b.gx && gy == seg.b.gy) {
        goal_state = static_cast<std::int32_t>(s);
        break;
      }
      const double g = gscore[s];
      // Horizontal moves.
      if (gx > x0) {
        const double c = cost_h(gx - 1, gy) + (dir == 1 ? config_.turn_cost : 0.0);
        push(gx - 1, gy, 0, g + c, static_cast<std::int32_t>(s));
      }
      if (gx < x1) {
        const double c = cost_h(gx + 1, gy) + (dir == 1 ? config_.turn_cost : 0.0);
        push(gx + 1, gy, 0, g + c, static_cast<std::int32_t>(s));
      }
      if (gy > y0) {
        const double c = cost_v(gx, gy - 1) + (dir == 0 ? config_.turn_cost : 0.0);
        push(gx, gy - 1, 1, g + c, static_cast<std::int32_t>(s));
      }
      if (gy < y1) {
        const double c = cost_v(gx, gy + 1) + (dir == 0 ? config_.turn_cost : 0.0);
        push(gx, gy + 1, 1, g + c, static_cast<std::int32_t>(s));
      }
    }
    std::vector<GcellIndex> path;
    if (goal_state < 0) return path;  // unreachable inside the window
    std::int32_t s = goal_state;
    while (s >= 0) {
      const int gx = x0 + static_cast<int>((static_cast<std::size_t>(s) / 2) %
                                           static_cast<std::size_t>(ww));
      const int gy = y0 + static_cast<int>((static_cast<std::size_t>(s) / 2) /
                                           static_cast<std::size_t>(ww));
      path.push_back({gx, gy});
      s = parent[static_cast<std::size_t>(s)];
    }
    std::reverse(path.begin(), path.end());
    // Collapse duplicate cells introduced by direction changes in place.
    std::vector<GcellIndex> dedup;
    for (const GcellIndex& g : path) {
      if (dedup.empty() || dedup.back().gx != g.gx || dedup.back().gy != g.gy) {
        dedup.push_back(g);
      }
    }
    return dedup;
  };

  for (int round = 0; round < config_.rr_rounds; ++round) {
    // Grow history on overflowed Gcells.
    bool any_overflow = false;
    for (int gy = 0; gy < H; ++gy) {
      for (int gx = 0; gx < W; ++gx) {
        if (dmd_h.at(gx, gy) > result.maps.cap_h.at(gx, gy)) {
          hist_h.at(gx, gy) += config_.history_step;
          any_overflow = true;
        }
        if (dmd_v.at(gx, gy) > result.maps.cap_v.at(gx, gy)) {
          hist_v.at(gx, gy) += config_.history_step;
          any_overflow = true;
        }
      }
    }
    if (!any_overflow) break;

    int rerouted = 0;
    for (Seg& seg : segs) {
      // Does this segment touch overflow in a direction it uses?
      bool touches = false;
      for (std::size_t i = 0; i < seg.path.size() && !touches; ++i) {
        const GcellIndex& g = seg.path[i];
        const bool h_used =
            (i > 0 && seg.path[i - 1].gy == g.gy) ||
            (i + 1 < seg.path.size() && seg.path[i + 1].gy == g.gy);
        const bool v_used =
            (i > 0 && seg.path[i - 1].gx == g.gx) ||
            (i + 1 < seg.path.size() && seg.path[i + 1].gx == g.gx);
        if (h_used && dmd_h.at(g.gx, g.gy) > result.maps.cap_h.at(g.gx, g.gy)) {
          touches = true;
        }
        if (v_used && dmd_v.at(g.gx, g.gy) > result.maps.cap_v.at(g.gx, g.gy)) {
          touches = true;
        }
      }
      if (!touches) continue;
      apply_path(seg.path, dmd_h, dmd_v, -1.0);
      std::vector<GcellIndex> np = maze(seg);
      if (!np.empty()) seg.path = std::move(np);
      apply_path(seg.path, dmd_h, dmd_v, +1.0);
      ++rerouted;
    }
    result.rerouted += rerouted;
    PUFFER_LOG_DEBUG(kTag, "rrr round %d rerouted %d segments", round, rerouted);
    if (rerouted == 0) break;
  }

  // --- metrics -------------------------------------------------------------
  result.overflow = compute_overflow(result.maps);
  double wl = 0.0;
  for (const Seg& seg : segs) {
    for (std::size_t i = 1; i < seg.path.size(); ++i) {
      wl += (seg.path[i].gy == seg.path[i - 1].gy) ? grid_.gcell_w()
                                                   : grid_.gcell_h();
    }
  }
  result.wirelength = wl;
  return result;
}

}  // namespace puffer
