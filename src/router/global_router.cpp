#include "router/global_router.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "common/logger.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "congestion/demand_ledger.h"
#include "router/maze.h"
#include "router/overflow_tracker.h"
#include "router/path_use.h"
#include "rsmt/rsmt.h"

namespace puffer {
namespace {

constexpr const char* kTag = "router";

struct Seg {
  GcellIndex a, b;
  std::vector<GcellIndex> path;  // inclusive cell sequence a..b
};

// Per-thread window-local overlay of a segment's own demand, so the maze
// prices the field with the segment's old path removed without mutating
// the shared (frozen) maps. Arrays stay all-zero between uses; `touched`
// records which entries to clear.
struct OwnUseOverlay {
  std::vector<std::int8_t> h, v;
  std::vector<std::size_t> touched;

  void load(const std::vector<GcellIndex>& path, const MazeWindow& w) {
    const std::size_t cells =
        static_cast<std::size_t>(w.ww) * static_cast<std::size_t>(w.wh);
    if (h.size() < cells) {
      h.resize(cells, 0);
      v.resize(cells, 0);
    }
    for_each_path_use(path, [&](int gx, int gy, bool uh, bool uv) {
      if (!w.contains(gx, gy)) return;
      const std::size_t i = static_cast<std::size_t>(gy - w.y0) *
                                static_cast<std::size_t>(w.ww) +
                            static_cast<std::size_t>(gx - w.x0);
      if (h[i] == 0 && v[i] == 0) touched.push_back(i);
      if (uh) h[i] += 1;
      if (uv) v[i] += 1;
    });
  }
  void clear() {
    for (const std::size_t i : touched) {
      h[i] = 0;
      v[i] = 0;
    }
    touched.clear();
  }
};

}  // namespace

RouterConfig validate_router_config(RouterConfig config) {
  if (!(config.rows_per_gcell > 0.0) ||
      !std::isfinite(config.rows_per_gcell)) {
    throw std::invalid_argument(
        "RouterConfig.rows_per_gcell must be positive and finite");
  }
  config.rr_rounds = std::max(0, config.rr_rounds);
  config.bbox_margin = std::max(0, config.bbox_margin);
  config.turn_cost = std::max(0.0, config.turn_cost);
  return config;
}

GlobalRouter::GlobalRouter(const Design& design, RouterConfig config,
                           RsmtCache* tree_cache)
    : design_(design),
      config_(validate_router_config(config)),
      grid_(GcellGrid::from_row_pitch(design.die, design.tech.row_height,
                                      config_.rows_per_gcell)),
      capacity_(build_capacity_maps(design, grid_)),
      tree_cache_(tree_cache) {}

RouteResult GlobalRouter::route() const {
  Timer route_timer;
  RouteResult result;
  result.maps = RoutingMaps(grid_, capacity_);
  Map2D<double>& dmd_h = result.maps.dmd_h;
  Map2D<double>& dmd_v = result.maps.dmd_v;

  // Local-net pin demand (not ripped up; same model as the estimator):
  // a flat per-pin term plus the superlinear crowding excess for Gcells
  // holding more pins than their access capacity.
  if (config_.pin_penalty > 0.0 || config_.pin_crowding > 0.0) {
    Map2D<double> pin_cnt(grid_.nx(), grid_.ny());
    for (const Pin& pin : design_.pins) {
      const Cell& c = design_.cells[static_cast<std::size_t>(pin.cell)];
      const GcellIndex g = grid_.index_of(c.x + pin.dx, c.y + pin.dy);
      pin_cnt.at(g.gx, g.gy) += 1.0;
    }
    const double site_w = std::max(design_.tech.site_width, 1e-9);
    const double row_h = std::max(design_.tech.row_height, 1e-9);
    const double pin_cap =
        std::max(1.0, (grid_.gcell_w() / site_w) * (grid_.gcell_h() / row_h) *
                          config_.pins_per_site);
    for (int gy = 0; gy < grid_.ny(); ++gy) {
      for (int gx = 0; gx < grid_.nx(); ++gx) {
        const double cnt = pin_cnt.at(gx, gy);
        if (cnt <= 0.0) continue;
        const double excess = std::max(0.0, cnt - pin_cap);
        // Quantized like the estimator's pin layer: every demand value is
        // then a multiple of kDemandQuantum, so the +/-1 rip/re-apply
        // arithmetic of the reroute rounds cancels bit-exactly.
        const double add = quantize_demand(config_.pin_penalty * cnt +
                                           0.5 * config_.pin_crowding * excess);
        if (add <= 0.0) continue;
        dmd_h.at(gx, gy) += add;
        dmd_v.at(gx, gy) += add;
      }
    }
  }

  // --- decompose nets into segments --------------------------------------
  // Parallel per net (each net owns its slot), flattened in net order so
  // the segment sequence -- and with it every commit order below -- stays
  // deterministic.
  std::vector<Seg> segs;
  {
    const std::int64_t n_nets = static_cast<std::int64_t>(design_.nets.size());
    std::vector<std::vector<Seg>> per_net(design_.nets.size());
    par::parallel_for(
        0, n_nets, 16,
        [&](std::int64_t nb, std::int64_t ne, int) {
          std::vector<Point> pts;
          for (std::int64_t n = nb; n < ne; ++n) {
            const Net& net = design_.nets[static_cast<std::size_t>(n)];
            if (net.pins.size() < 2) continue;
            pts.clear();
            for (PinId pid : net.pins) pts.push_back(design_.pin_position(pid));
            // Warm start: reuse the estimator's cached topology when the
            // quantized pins still match (per-net slots, race-free).
            const RsmtTree tree =
                tree_cache_ ? tree_cache_->get_or_build(
                                  static_cast<std::size_t>(n), pts)
                            : build_rsmt(pts);
            for (const RsmtSegment& s : tree.segments) {
              Seg seg;
              seg.a = grid_.index_of(
                  tree.points[static_cast<std::size_t>(s.a)].pos.x,
                  tree.points[static_cast<std::size_t>(s.a)].pos.y);
              seg.b = grid_.index_of(
                  tree.points[static_cast<std::size_t>(s.b)].pos.x,
                  tree.points[static_cast<std::size_t>(s.b)].pos.y);
              if (seg.a.gx == seg.b.gx && seg.a.gy == seg.b.gy) continue;
              per_net[static_cast<std::size_t>(n)].push_back(std::move(seg));
            }
          }
        },
        256);
    for (auto& pn : per_net) {
      for (Seg& s : pn) segs.push_back(std::move(s));
    }
  }
  const std::int64_t n_segs = static_cast<std::int64_t>(segs.size());
  result.segments = static_cast<int>(segs.size());

  Map2D<double> hist_h(grid_.nx(), grid_.ny());
  Map2D<double> hist_v(grid_.nx(), grid_.ny());

  // Directional entry cost of a Gcell; `dh`/`dv` let the maze price the
  // field with the segment's own demand subtracted.
  const auto cost_h_at = [&](int gx, int gy, double dh) {
    const double cap = std::max(result.maps.cap_h.at(gx, gy), 1.0);
    const double ratio = (dh + 1.0) / cap;
    double c = 1.0;
    if (ratio > 1.0) {
      c += config_.overflow_slope * (ratio - 1.0) + hist_h.at(gx, gy);
    }
    return c;
  };
  const auto cost_v_at = [&](int gx, int gy, double dv) {
    const double cap = std::max(result.maps.cap_v.at(gx, gy), 1.0);
    const double ratio = (dv + 1.0) / cap;
    double c = 1.0;
    if (ratio > 1.0) {
      c += config_.overflow_slope * (ratio - 1.0) + hist_v.at(gx, gy);
    }
    return c;
  };
  const auto cost_h = [&](int gx, int gy) {
    return cost_h_at(gx, gy, dmd_h.at(gx, gy));
  };
  const auto cost_v = [&](int gx, int gy) {
    return cost_v_at(gx, gy, dmd_v.at(gx, gy));
  };

  // Builds an L path through the given corner.
  const auto l_path = [&](GcellIndex a, GcellIndex corner, GcellIndex b) {
    std::vector<GcellIndex> path;
    GcellIndex cur = a;
    path.push_back(cur);
    auto walk = [&](GcellIndex to) {
      while (cur.gx != to.gx) {
        cur.gx += (to.gx > cur.gx) ? 1 : -1;
        path.push_back(cur);
      }
      while (cur.gy != to.gy) {
        cur.gy += (to.gy > cur.gy) ? 1 : -1;
        path.push_back(cur);
      }
    };
    walk(corner);
    walk(b);
    return path;
  };

  const auto path_cost = [&](const std::vector<GcellIndex>& path) {
    double c = 0.0;
    for_each_path_use(path, [&](int gx, int gy, bool h, bool v) {
      if (h) c += cost_h(gx, gy);
      if (v) c += cost_v(gx, gy);
    });
    return c;
  };

  // --- initial pattern routing -------------------------------------------
  // Both L candidates are priced concurrently against the frozen
  // pin-demand field (each segment owns its slot), then demand is
  // committed serially in segment order -- deterministic for any worker
  // count, same contract as the reroute rounds below.
  par::parallel_for(
      0, n_segs, 64,
      [&](std::int64_t sb, std::int64_t se, int) {
        for (std::int64_t i = sb; i < se; ++i) {
          Seg& seg = segs[static_cast<std::size_t>(i)];
          const GcellIndex c1{seg.b.gx, seg.a.gy};
          const GcellIndex c2{seg.a.gx, seg.b.gy};
          auto p1 = l_path(seg.a, c1, seg.b);
          if (seg.a.gx == seg.b.gx || seg.a.gy == seg.b.gy) {
            seg.path = std::move(p1);
          } else {
            auto p2 = l_path(seg.a, c2, seg.b);
            seg.path =
                path_cost(p1) <= path_cost(p2) ? std::move(p1) : std::move(p2);
          }
        }
      },
      256);
  for (const Seg& seg : segs) {
    apply_path_demand(seg.path, dmd_h, dmd_v, +1.0);
  }

  // Incremental overflow bookkeeping: one full scan here, then every
  // overflow bit, overflowed-cell list and per-segment touch count is
  // maintained from the +/-1 deltas of the commit path.
  OverflowTracker tracker;
  tracker.init(result.maps, segs.size());
  for (std::size_t i = 0; i < segs.size(); ++i) {
    tracker.register_path(i, segs[i].path, result.maps);
  }

  // --- batched negotiated rip-up and reroute ------------------------------
  Timer rrr_timer;
  const int W = grid_.nx(), H = grid_.ny();
  const std::int32_t qturn = static_cast<std::int32_t>(
      std::lround(config_.turn_cost * static_cast<double>(kQCostScale)));

  // Quantized live cost of a path including turn penalties; used by the
  // serial commit to compare a candidate against the ripped old path
  // under the same objective the maze optimizes.
  const auto path_qcost = [&](const std::vector<GcellIndex>& path) {
    std::int64_t q = 0;
    for_each_path_use(path, [&](int gx, int gy, bool h, bool v) {
      if (h) q += quantize_cost(cost_h(gx, gy));
      if (v) q += quantize_cost(cost_v(gx, gy));
      if (h && v) q += qturn;  // turning cell = one direction change
    });
    return q;
  };

  std::vector<std::int32_t> selected;
  std::vector<std::vector<GcellIndex>> candidates;
  // Failure backoff: a search that finds no admissible improvement
  // proves its segment locally optimal for the current history; retrying
  // next round is almost always wasted (the field barely moved). Such a
  // segment sits out exponentially more rounds -- history keeps growing
  // on its overflowed cells meanwhile, so the retry faces a genuinely
  // changed price -- and an adoption resets the backoff. Updated only in
  // the serial commit, so scheduling is thread-count independent.
  std::vector<std::uint8_t> fail_streak(static_cast<std::size_t>(n_segs), 0);
  std::vector<std::int16_t> eligible_round(static_cast<std::size_t>(n_segs),
                                           0);
  for (int round = 0; round < config_.rr_rounds; ++round) {
    if (!tracker.any_overflow()) break;
    // Grow history on overflowed Gcells (visits only the overflowed set).
    tracker.grow_history(hist_h, hist_v, config_.history_step);

    // Select every segment whose path currently touches overflow (a flat
    // integer scan over the incrementally maintained touch counts) and
    // whose backoff has elapsed.
    selected.clear();
    for (std::int64_t i = 0; i < n_segs; ++i) {
      const std::size_t s = static_cast<std::size_t>(i);
      if (tracker.touches_overflow(s) &&
          round >= static_cast<int>(eligible_round[s])) {
        selected.push_back(static_cast<std::int32_t>(i));
      }
    }
    if (selected.empty()) continue;  // backed-off segments may wake later
    ++result.rounds_used;
    result.reroute_attempts += static_cast<int>(selected.size());

    // Maze-route all selected segments concurrently against the frozen
    // round-start field (demand + history are not mutated until the
    // commit loop below). Each segment sees the field with its own path
    // subtracted and writes only its own candidate slot, so the result
    // is bit-identical for any thread count.
    candidates.assign(selected.size(), {});
    par::parallel_for(
        0, static_cast<std::int64_t>(selected.size()), 2,
        [&](std::int64_t kb, std::int64_t ke, int) {
          static thread_local MazeArena arena_tls;
          static thread_local OwnUseOverlay own_tls;
          MazeArena& arena = arena_tls;
          OwnUseOverlay& own = own_tls;
          for (std::int64_t k = kb; k < ke; ++k) {
            const Seg& seg =
                segs[static_cast<std::size_t>(selected[static_cast<std::size_t>(k)])];
            MazeWindow w;
            w.x0 = std::max(0, std::min(seg.a.gx, seg.b.gx) -
                                   config_.bbox_margin);
            w.y0 = std::max(0, std::min(seg.a.gy, seg.b.gy) -
                                   config_.bbox_margin);
            w.ww = std::min(W - 1, std::max(seg.a.gx, seg.b.gx) +
                                       config_.bbox_margin) -
                   w.x0 + 1;
            w.wh = std::min(H - 1, std::max(seg.a.gy, seg.b.gy) +
                                       config_.bbox_margin) -
                   w.y0 + 1;
            own.load(seg.path, w);
            const auto cell_cost = [&](int gx, int gy, std::int32_t& qch,
                                       std::int32_t& qcv) {
              const std::size_t i = static_cast<std::size_t>(gy - w.y0) *
                                        static_cast<std::size_t>(w.ww) +
                                    static_cast<std::size_t>(gx - w.x0);
              qch = quantize_cost(
                  cost_h_at(gx, gy, dmd_h.at(gx, gy) - own.h[i]));
              qcv = quantize_cost(
                  cost_v_at(gx, gy, dmd_v.at(gx, gy) - own.v[i]));
            };
            // The old path's cost on the frozen field with its own demand
            // ripped, in the commit comparator's convention. Bounds the
            // search: a candidate at or above it can never be admitted,
            // so the maze exits the moment its front proves that.
            std::int64_t qold = 0;
            for_each_path_use(seg.path,
                              [&](int gx, int gy, bool h, bool v) {
                                std::int32_t qch, qcv;
                                cell_cost(gx, gy, qch, qcv);
                                if (h) qold += qch;
                                if (v) qold += qcv;
                                if (h && v) qold += qturn;
                              });
            candidates[static_cast<std::size_t>(k)] =
                maze_route(w, seg.a, seg.b, qturn, arena, cell_cost, qold);
            own.clear();
          }
        },
        256);

    // Serial commit in segment order with exact rip/re-apply demand
    // arithmetic. A candidate is adopted only if it is strictly cheaper
    // than the old path under the live post-rip field, so a batch of
    // identical segments fills a detour row until it stops paying off
    // instead of herding onto it wholesale.
    int rerouted = 0;
    for (std::size_t k = 0; k < selected.size(); ++k) {
      const std::size_t i = static_cast<std::size_t>(selected[k]);
      Seg& seg = segs[i];
      std::vector<GcellIndex>& cand = candidates[k];
      bool adopted = false;
      if (cand.size() >= 2) {  // bound-aborted / unreachable: keep old path
        tracker.rip(i, seg.path, result.maps);
        if (path_qcost(cand) < path_qcost(seg.path)) {
          seg.path = std::move(cand);
          adopted = true;
          ++rerouted;
        }
        tracker.apply(i, seg.path, result.maps);
      }
      if (adopted) {
        fail_streak[i] = 0;
        eligible_round[i] = static_cast<std::int16_t>(round + 1);
      } else {
        fail_streak[i] = static_cast<std::uint8_t>(
            std::min<int>(fail_streak[i] + 1, 3));
        eligible_round[i] =
            static_cast<std::int16_t>(round + (1 << fail_streak[i]));
      }
    }
    result.rerouted += rerouted;
    // Convergence exit: when fewer than 1/64 of this round's searches
    // improve anything, further rounds only reshuffle the residual --
    // stop instead of grinding out the budget.
    if (static_cast<std::size_t>(rerouted) * 64 < selected.size()) break;
    PUFFER_LOG_DEBUG(kTag, "rrr round %d: %zu selected, %d rerouted, %lld "
                     "overflowed resources",
                     round, selected.size(), rerouted,
                     static_cast<long long>(tracker.overflowed_resources()));
  }
  result.rrr_time_s = rrr_timer.elapsed_seconds();

  // --- metrics -------------------------------------------------------------
  result.overflow = compute_overflow(result.maps);
  double wl = 0.0;
  for (const Seg& seg : segs) {
    for (std::size_t i = 1; i < seg.path.size(); ++i) {
      wl += (seg.path[i].gy == seg.path[i - 1].gy) ? grid_.gcell_w()
                                                   : grid_.gcell_h();
    }
  }
  result.wirelength = wl;
  result.route_time_s = route_timer.elapsed_seconds();
  return result;
}

}  // namespace puffer
