// Incremental overflow bookkeeping for negotiated rip-up-and-reroute.
//
// The seed router re-derived "which Gcells overflow" with a full W x H
// scan at the top of every round and re-checked every segment's path
// cell-by-cell to decide whether it touches overflow -- O(W x H +
// total path length) per round even when almost nothing changed. The
// tracker maintains that state incrementally from the +/-1 demand deltas
// of rip/apply, mirroring the PR 2 demand ledger's epoch-marked design:
//
//   * a per-resource overflow bit ((Gcell, direction), dmd > cap) kept
//     exact under every +/-1 demand update;
//   * a lazily compacted list of overflowed resources per direction, so
//     growing history visits only overflowed cells (list entries whose
//     bit has cleared are dropped on the next sweep);
//   * per-resource user lists (which segments currently route through
//     the cell in that direction) so an overflow flip updates the
//     touch-count of exactly the affected segments;
//   * a per-segment count of currently-overflowed resources on its path
//     ("touches overflow" == count > 0), so per-round segment selection
//     is a flat O(#segments) integer scan.
//
// All updates run on the serial commit path of the batched router, in
// segment order, so the tracker state -- like the demand maps -- is
// independent of the worker count.
#pragma once

#include <cstdint>
#include <vector>

#include "grid/gcell.h"
#include "grid/map2d.h"
#include "grid/routing_maps.h"

namespace puffer {

class OverflowTracker {
 public:
  // Captures grid shape + current demand/capacity (one full scan -- the
  // only one) and resets all per-segment state to "no path registered".
  void init(const RoutingMaps& maps, std::size_t num_segments);

  // Registers a routed path for `seg` without changing demand: fills the
  // user lists and the segment's overflow-touch count from the current
  // bits. Call once per segment after initial routing is applied.
  void register_path(std::size_t seg, const std::vector<GcellIndex>& path,
                     const RoutingMaps& maps);

  // Removes (rip) / adds (apply) one track-equivalent of demand along
  // the path in `maps`, maintaining overflow bits, lists and touch
  // counts. The demand arithmetic is exactly apply_path_demand's.
  void rip(std::size_t seg, const std::vector<GcellIndex>& path,
           RoutingMaps& maps);
  void apply(std::size_t seg, const std::vector<GcellIndex>& path,
             RoutingMaps& maps);

  // True when the segment's current path crosses at least one overflowed
  // resource in a direction it uses.
  bool touches_overflow(std::size_t seg) const { return otouch_[seg] > 0; }

  // Number of currently overflowed (Gcell, direction) resources.
  std::int64_t overflowed_resources() const { return of_count_; }
  bool any_overflow() const { return of_count_ > 0; }

  // Adds `step` to the history maps at every currently overflowed
  // resource, compacting the lazy lists as it goes. Replaces the seed's
  // per-round full-grid scan.
  void grow_history(Map2D<double>& hist_h, Map2D<double>& hist_v,
                    double step);

 private:
  // dir: 0 = horizontal, 1 = vertical.
  void delta(std::size_t seg, int gx, int gy, int dir, double sign,
             RoutingMaps& maps);

  int nx_ = 0, ny_ = 0;
  std::vector<std::uint8_t> of_bit_[2];    // dmd > cap, exact
  std::vector<std::uint8_t> in_list_[2];   // member of of_list_ (lazy)
  std::vector<std::int32_t> of_list_[2];   // flat cell indices, lazy
  std::vector<std::vector<std::int32_t>> users_[2];
  std::vector<std::int32_t> otouch_;       // overflowed resources per seg
  std::int64_t of_count_ = 0;
};

}  // namespace puffer
