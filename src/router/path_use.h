// Shared demand semantics of a routed path (the router's unit of
// resource accounting): a path is an inclusive 4-connected Gcell
// sequence, and each cell consumes the direction(s) of its adjacent
// moves -- a turning cell consumes both. Exposed as a header so the
// router, the incremental overflow tracker and the property tests all
// agree on one definition.
#pragma once

#include <vector>

#include "grid/gcell.h"
#include "grid/map2d.h"

namespace puffer {

// Calls fn(gx, gy, h_used, v_used) for every cell of `path` with the
// direction(s) the path uses at that cell. Paths shorter than two cells
// consume nothing.
template <typename Fn>
inline void for_each_path_use(const std::vector<GcellIndex>& path, Fn&& fn) {
  const std::size_t n = path.size();
  if (n < 2) return;
  for (std::size_t i = 0; i < n; ++i) {
    bool h = false, v = false;
    if (i > 0) {
      if (path[i - 1].gy == path[i].gy) h = true;
      else v = true;
    }
    if (i + 1 < n) {
      if (path[i + 1].gy == path[i].gy) h = true;
      else v = true;
    }
    fn(path[i].gx, path[i].gy, h, v);
  }
}

// Adds (sign=+1) or removes (sign=-1) one track-equivalent of demand
// along the path. All contributions are +/-1.0 -- exact IEEE-double
// integer arithmetic -- so apply followed by rip restores the maps
// bit-identically (see the demand-ledger exactness invariant).
inline void apply_path_demand(const std::vector<GcellIndex>& path,
                              Map2D<double>& dmd_h, Map2D<double>& dmd_v,
                              double sign) {
  for_each_path_use(path, [&](int gx, int gy, bool h, bool v) {
    if (h) dmd_h.at(gx, gy) += sign;
    if (v) dmd_v.at(gx, gy) += sign;
  });
}

}  // namespace puffer
