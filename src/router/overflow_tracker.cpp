#include "router/overflow_tracker.h"

#include <algorithm>
#include <cassert>

#include "router/path_use.h"

namespace puffer {

void OverflowTracker::init(const RoutingMaps& maps, std::size_t num_segments) {
  nx_ = maps.dmd_h.nx();
  ny_ = maps.dmd_h.ny();
  const std::size_t n = static_cast<std::size_t>(nx_) * ny_;
  of_count_ = 0;
  for (int dir = 0; dir < 2; ++dir) {
    of_bit_[dir].assign(n, 0);
    in_list_[dir].assign(n, 0);
    of_list_[dir].clear();
    users_[dir].assign(n, {});
  }
  for (int dir = 0; dir < 2; ++dir) {
    for (std::size_t i = 0; i < n; ++i) {
      const int gx = static_cast<int>(i % static_cast<std::size_t>(nx_));
      const int gy = static_cast<int>(i / static_cast<std::size_t>(nx_));
      if (dir == 0 ? maps.overflowed_h(gx, gy) : maps.overflowed_v(gx, gy)) {
        of_bit_[dir][i] = 1;
        in_list_[dir][i] = 1;
        of_list_[dir].push_back(static_cast<std::int32_t>(i));
        ++of_count_;
      }
    }
  }
  otouch_.assign(num_segments, 0);
}

void OverflowTracker::register_path(std::size_t seg,
                                    const std::vector<GcellIndex>& path,
                                    const RoutingMaps& maps) {
  (void)maps;
  for_each_path_use(path, [&](int gx, int gy, bool h, bool v) {
    const std::size_t i =
        static_cast<std::size_t>(gy) * static_cast<std::size_t>(nx_) +
        static_cast<std::size_t>(gx);
    if (h) {
      users_[0][i].push_back(static_cast<std::int32_t>(seg));
      if (of_bit_[0][i]) ++otouch_[seg];
    }
    if (v) {
      users_[1][i].push_back(static_cast<std::int32_t>(seg));
      if (of_bit_[1][i]) ++otouch_[seg];
    }
  });
}

void OverflowTracker::delta(std::size_t seg, int gx, int gy, int dir,
                            double sign, RoutingMaps& maps) {
  const std::size_t i =
      static_cast<std::size_t>(gy) * static_cast<std::size_t>(nx_) +
      static_cast<std::size_t>(gx);
  Map2D<double>& dmd = dir == 0 ? maps.dmd_h : maps.dmd_v;
  const Map2D<double>& cap = dir == 0 ? maps.cap_h : maps.cap_v;
  std::vector<std::int32_t>& users = users_[dir][i];
  if (sign < 0.0) {
    // The segment leaves this resource: drop its own touch first, then
    // remove it from the user list so the flip below only updates others.
    if (of_bit_[dir][i]) --otouch_[seg];
    const auto it =
        std::find(users.begin(), users.end(), static_cast<std::int32_t>(seg));
    assert(it != users.end());
    *it = users.back();
    users.pop_back();
    dmd.raw()[i] -= 1.0;
    if (of_bit_[dir][i] && !(dmd.raw()[i] > cap.raw()[i])) {
      of_bit_[dir][i] = 0;  // stays in of_list_, compacted lazily
      --of_count_;
      for (std::int32_t u : users) --otouch_[static_cast<std::size_t>(u)];
    }
  } else {
    dmd.raw()[i] += 1.0;
    if (!of_bit_[dir][i] && dmd.raw()[i] > cap.raw()[i]) {
      of_bit_[dir][i] = 1;
      ++of_count_;
      if (!in_list_[dir][i]) {
        in_list_[dir][i] = 1;
        of_list_[dir].push_back(static_cast<std::int32_t>(i));
      }
      for (std::int32_t u : users) ++otouch_[static_cast<std::size_t>(u)];
    }
    users.push_back(static_cast<std::int32_t>(seg));
    if (of_bit_[dir][i]) ++otouch_[seg];
  }
}

void OverflowTracker::rip(std::size_t seg, const std::vector<GcellIndex>& path,
                          RoutingMaps& maps) {
  for_each_path_use(path, [&](int gx, int gy, bool h, bool v) {
    if (h) delta(seg, gx, gy, 0, -1.0, maps);
    if (v) delta(seg, gx, gy, 1, -1.0, maps);
  });
}

void OverflowTracker::apply(std::size_t seg,
                            const std::vector<GcellIndex>& path,
                            RoutingMaps& maps) {
  for_each_path_use(path, [&](int gx, int gy, bool h, bool v) {
    if (h) delta(seg, gx, gy, 0, +1.0, maps);
    if (v) delta(seg, gx, gy, 1, +1.0, maps);
  });
}

void OverflowTracker::grow_history(Map2D<double>& hist_h,
                                   Map2D<double>& hist_v, double step) {
  Map2D<double>* hist[2] = {&hist_h, &hist_v};
  for (int dir = 0; dir < 2; ++dir) {
    std::vector<std::int32_t>& list = of_list_[dir];
    std::size_t k = 0;
    while (k < list.size()) {
      const std::size_t i = static_cast<std::size_t>(list[k]);
      if (of_bit_[dir][i]) {
        hist[dir]->raw()[i] += step;
        ++k;
      } else {
        in_list_[dir][i] = 0;  // compact: the overflow has cleared
        list[k] = list.back();
        list.pop_back();
      }
    }
  }
}

}  // namespace puffer
