// Evaluation global router (substitute for the commercial global router
// the paper uses as its evaluator).
//
// A negotiation-based 2D global router over the Gcell grid:
//
//   1. nets are decomposed into two-point segments with the RSMT builder;
//   2. every segment gets an initial route along the cheaper of its two
//      L-shapes (candidates are priced concurrently against the frozen
//      pin-demand field, then committed in segment order);
//   3. batched rip-up-and-reroute rounds: the demand + history field is
//      frozen at the top of the round, every segment whose path touches
//      an overflowed Gcell (tracked incrementally -- see
//      router/overflow_tracker.h) is maze-routed concurrently with the
//      integer bucket-queue kernel (router/maze.h) inside an expanded
//      bounding box, and the candidate paths are committed serially in
//      segment order: each segment rips its old path and adopts the
//      candidate only if it is cheaper under the *live* demand at commit
//      time, which damps the herding oscillation batched negotiation is
//      otherwise prone to. Per-Gcell history costs grow each round so
//      persistent overflow is negotiated away (PathFinder-style).
//
// Two scheduling policies keep the rounds from grinding on proven-
// useless work (the dominant cost of naive negotiation, where ~95% of
// searches find no admissible improvement):
//
//   - failure backoff: a segment whose search found no improvement sits
//     out exponentially more rounds (1, 2, 4, capped at 8) before it is
//     selected again; history keeps growing on its overflowed cells in
//     the meantime, so the retry faces a genuinely changed price.
//     Adoption resets the backoff.
//   - convergence exit: when fewer than 1/64 of a round's searches
//     improve anything, the remaining rounds are skipped.
//
// Each maze search is additionally bounded by its segment's old-path
// cost on the frozen field (see maze.h): a search aborts the moment its
// monotone front proves no admissible candidate exists.
//
// Determinism contract (shared with the PR 2 demand ledger): the maze
// phase reads only the frozen round-start field plus the segment's own
// path, per-thread arenas hold all scratch, and every demand mutation
// happens on the serial commit path in segment order -- so RouteResult
// (demand maps, HOF/VOF, wirelength, reroute counts) is bit-identical
// for any PUFFER_THREADS value.
//
// Demand accounting matches the Gcell-based resource model used by the
// congestion estimator: every Gcell a path crosses in a direction
// consumes one track-equivalent of that direction's capacity, and a
// turning Gcell consumes both.
//
// The router reports the Table II metrics: HOF/VOF (total overflow over
// total capacity, per direction, in %) and the routed wirelength.
#pragma once

#include <cstdint>

#include "grid/routing_maps.h"
#include "netlist/design.h"
#include "rsmt/rsmt_cache.h"

namespace puffer {

struct RouterConfig {
  double rows_per_gcell = 3.0;  // Gcell granularity; must be > 0
  double pin_penalty = 0.04;    // local-net demand per pin (both dirs)
  // Pin-crowding demand: pins beyond a Gcell's access capacity
  // (pins_per_site per placement site) each add pin_crowding/2
  // track-equivalents to both directions -- the escape wiring a real
  // detailed router would need. Keeps the evaluator honest on degenerate
  // clumped placements, which otherwise score *better* than spread ones
  // because all their nets collapse into a single Gcell.
  double pins_per_site = 2.0;
  double pin_crowding = 1.0;
  int rr_rounds = 5;            // rip-up-and-reroute rounds (>= 0)
  int bbox_margin = 8;          // maze search window margin, in Gcells (>= 0)
  double overflow_slope = 8.0;  // congestion price slope
  double history_step = 2.0;    // history increment per overflowed round
  double turn_cost = 0.2;       // via-ish cost for changing direction
};

// Returns `config` with out-of-range knobs clamped to sane values
// (negative rr_rounds / bbox_margin / turn_cost -> 0); throws
// std::invalid_argument for values no clamp can repair (non-positive or
// non-finite rows_per_gcell). GlobalRouter validates on construction.
RouterConfig validate_router_config(RouterConfig config);

struct RouteResult {
  RoutingMaps maps;        // final capacity + routed demand
  OverflowStats overflow;  // HOF / VOF
  double wirelength = 0.0; // total routed length (DBU)
  int segments = 0;
  int rerouted = 0;        // adopted reroutes across all rounds
  int reroute_attempts = 0;  // maze searches across all rounds
  int rounds_used = 0;     // rip-up-and-reroute rounds actually run
  double route_time_s = 0.0;  // total route() wall time
  double rrr_time_s = 0.0;    // rip-up-and-reroute phase wall time
};

class GlobalRouter {
 public:
  // `tree_cache` (optional, not owned, must outlive the router) shares
  // per-net RSMT topologies with the congestion estimator: trees are
  // geometric (grid-independent), so an evaluation run right after a
  // padding flow reuses the flow's cached topologies instead of
  // rebuilding every net. Keyed by quantized pins, a stale tree can only
  // be served within the cache quantum (same contract as the estimator).
  //
  // `config` is validated with validate_router_config (throws
  // std::invalid_argument on a non-positive rows_per_gcell).
  GlobalRouter(const Design& design, RouterConfig config = {},
               RsmtCache* tree_cache = nullptr);

  // Routes all nets from the design's current cell positions.
  RouteResult route() const;

  const GcellGrid& grid() const { return grid_; }

 private:
  const Design& design_;
  RouterConfig config_;
  GcellGrid grid_;
  CapacityMaps capacity_;
  RsmtCache* tree_cache_ = nullptr;  // optional warm-start, not owned
};

}  // namespace puffer
