// Evaluation global router (substitute for the commercial global router
// the paper uses as its evaluator).
//
// A negotiation-based 2D global router over the Gcell grid:
//
//   1. nets are decomposed into two-point segments with the RSMT builder;
//   2. every segment gets an initial route along the cheaper of its two
//      L-shapes;
//   3. rip-up-and-reroute rounds: segments crossing overflowed Gcells are
//      ripped and rerouted with an A* maze (direction-aware state, so
//      horizontal/vertical resources are priced separately) inside an
//      expanded bounding box; per-Gcell history costs grow each round so
//      persistent overflow is negotiated away (PathFinder-style).
//
// Demand accounting matches the Gcell-based resource model used by the
// congestion estimator: every Gcell a path crosses in a direction
// consumes one track-equivalent of that direction's capacity, and a
// turning Gcell consumes both.
//
// The router reports the Table II metrics: HOF/VOF (total overflow over
// total capacity, per direction, in %) and the routed wirelength.
#pragma once

#include <cstdint>

#include "grid/routing_maps.h"
#include "netlist/design.h"
#include "rsmt/rsmt_cache.h"

namespace puffer {

struct RouterConfig {
  double rows_per_gcell = 3.0;  // Gcell granularity
  double pin_penalty = 0.04;    // local-net demand per pin (both dirs)
  // Pin-crowding demand: pins beyond a Gcell's access capacity
  // (pins_per_site per placement site) each add pin_crowding/2
  // track-equivalents to both directions -- the escape wiring a real
  // detailed router would need. Keeps the evaluator honest on degenerate
  // clumped placements, which otherwise score *better* than spread ones
  // because all their nets collapse into a single Gcell.
  double pins_per_site = 2.0;
  double pin_crowding = 1.0;
  int rr_rounds = 5;            // rip-up-and-reroute rounds
  int bbox_margin = 8;          // maze search window margin, in Gcells
  double overflow_slope = 8.0;  // congestion price slope
  double history_step = 2.0;    // history increment per overflowed round
  double turn_cost = 0.2;       // via-ish cost for changing direction
};

struct RouteResult {
  RoutingMaps maps;        // final capacity + routed demand
  OverflowStats overflow;  // HOF / VOF
  double wirelength = 0.0; // total routed length (DBU)
  int segments = 0;
  int rerouted = 0;        // reroute operations across all rounds
};

class GlobalRouter {
 public:
  // `tree_cache` (optional, not owned, must outlive the router) shares
  // per-net RSMT topologies with the congestion estimator: trees are
  // geometric (grid-independent), so an evaluation run right after a
  // padding flow reuses the flow's cached topologies instead of
  // rebuilding every net. Keyed by quantized pins, a stale tree can only
  // be served within the cache quantum (same contract as the estimator).
  GlobalRouter(const Design& design, RouterConfig config = {},
               RsmtCache* tree_cache = nullptr);

  // Routes all nets from the design's current cell positions.
  RouteResult route() const;

  const GcellGrid& grid() const { return grid_; }

 private:
  const Design& design_;
  RouterConfig config_;
  GcellGrid grid_;
  CapacityMaps capacity_;
  RsmtCache* tree_cache_ = nullptr;  // optional warm-start, not owned
};

}  // namespace puffer
