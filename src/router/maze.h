// Integer-cost maze kernel for the rip-up-and-reroute rounds.
//
// Directional entry costs are quantized to an integer grid (kQCostScale
// units per track-equivalent, clamped to kQCostMax) so the open list can
// be a monotone bucket (Dial) queue instead of a binary heap: with a
// consistent integer heuristic the popped f-values never decrease and
// every queued entry lies within one maximum edge weight of the current
// front, so a fixed-size circular bucket ring replaces O(log n) heap
// operations with O(1) pushes.
//
// The search state is direction-aware (two states per Gcell: arrived
// horizontally / vertically) so horizontal and vertical resources are
// priced separately; a direction change charges the turn cell's
// perpendicular entry cost (a turning cell consumes both directions'
// tracks in the demand model) plus the via-ish qturn penalty, so the
// accumulated g equals the commit comparator's path cost exactly.
// Costs are memoized per window cell on first touch
// (epoch-stamped), so cost_h/cost_v are evaluated once per touched cell
// instead of once per push.
//
// All scratch lives in a MazeArena owned by the calling thread; the
// kernel reads only the arena and its arguments, so concurrent searches
// with per-thread arenas are race-free and the result depends only on
// the inputs -- the thread-count-determinism contract of the batched
// router rests on that.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "grid/gcell.h"

namespace puffer {

// Cost quantization: 1.0 (the base cost of entering a free Gcell) maps
// to kQCostScale units; per-entry costs clamp to kQCostMax. The
// Manhattan heuristic uses kQCostScale per step, so it stays admissible
// as long as every entry cost is >= kQCostScale (quantize_cost enforces
// the lower bound).
//
// The scale is deliberately coarse: the monotone front advances one
// bucket at a time, so a congested search walks
// kQCostScale * (path cost - Manhattan distance) empty buckets -- the
// queue's only non-O(1) cost -- and halving the scale halves that walk.
// 1/8 track-equivalent resolution is far finer than the negotiation
// signal (history grows in steps of history_step = 2.0).
constexpr std::int32_t kQCostScale = 8;
constexpr std::int32_t kQCostMax = 1 << 11;

std::int32_t quantize_cost(double cost);

// Inclusive search window [x0, x0+ww) x [y0, y0+wh) in grid coordinates.
struct MazeWindow {
  int x0 = 0, y0 = 0;
  int ww = 0, wh = 0;
  bool contains(int gx, int gy) const {
    return gx >= x0 && gx < x0 + ww && gy >= y0 && gy < y0 + wh;
  }
};

// Fills the quantized horizontal/vertical entry costs of one Gcell.
using CellCostFn = std::function<void(int gx, int gy, std::int32_t& qch,
                                      std::int32_t& qcv)>;

// Per-thread scratch for maze_route: search state, the bucket ring and
// the memoized window cost fields. Reused across calls; sized lazily.
// Plain aggregate -- maze_route owns the invariants.
struct MazeArena {
  std::vector<std::int64_t> gscore;
  std::vector<std::int32_t> parent;
  std::vector<std::uint32_t> visit;       // epoch stamp per state
  std::vector<std::uint32_t> closed;      // epoch stamp per state
  std::vector<std::int32_t> qcost_h, qcost_v;  // memoized window costs
  std::vector<std::uint32_t> cost_epoch;  // stamp per window cell
  std::vector<std::vector<std::uint32_t>> buckets;  // circular f-ring
  std::vector<std::uint64_t> occupied;  // one bit per ring slot
  std::vector<std::int32_t> touched;  // ring slots dirtied this search
  std::uint32_t epoch = 0;
};

// Routes a..b inside `w` (both must be inside). `cell_cost` is called at
// most once per touched cell per search. `qturn` is the quantized
// direction-change penalty (clamped internally to the bucket-ring
// bound). Returns the inclusive, deduplicated, 4-connected cell sequence
// from a to b, or an empty vector when b is unreachable.
//
// `qbound` (> 0) aborts the search -- returning empty -- as soon as the
// monotone front reaches it: with a consistent heuristic the front is a
// lower bound on every remaining completion, so no path cheaper than
// qbound exists past that point. The batched router passes the old
// path's frozen-field cost, which turns the searches whose candidate
// could never be admitted (the vast majority in a congested design) into
// early exits. 0 disables the bound.
std::vector<GcellIndex> maze_route(const MazeWindow& w, GcellIndex a,
                                   GcellIndex b, std::int32_t qturn,
                                   MazeArena& arena,
                                   const CellCostFn& cell_cost,
                                   std::int64_t qbound = 0);

}  // namespace puffer
