// Placement-quality analysis: wirelength distribution, bin-density
// statistics and (optionally) congestion percentiles from a routed
// result. Produces the numbers a physical-design engineer looks at
// before trusting a placement, independent of any optimizer.
#pragma once

#include <optional>
#include <string>

#include "grid/routing_maps.h"
#include "netlist/design.h"

namespace puffer {

struct Percentiles {
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

struct QualityReport {
  // Wirelength.
  double hpwl = 0.0;
  Percentiles net_hpwl;   // per-net distribution
  std::size_t nets = 0;

  // Density over a uniform bin grid (rows_per_bin x rows_per_bin rows).
  Percentiles bin_utilization;  // movable area / free bin area
  double design_utilization = 0.0;

  // Congestion (set when a routed result is supplied).
  bool has_congestion = false;
  Percentiles cg_h;  // demand/capacity per direction
  Percentiles cg_v;
  double overflowed_gcell_frac = 0.0;

  std::string to_string() const;
};

struct QualityConfig {
  double rows_per_bin = 3.0;
};

QualityReport analyze_quality(const Design& design,
                              const RoutingMaps* routed = nullptr,
                              const QualityConfig& config = {});

// Percentile helper over an arbitrary sample vector (sorted internally);
// exposed for reuse and testing.
Percentiles compute_percentiles(std::vector<double> values);

}  // namespace puffer
