#include "analysis/quality.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "grid/gcell.h"

namespace puffer {

Percentiles compute_percentiles(std::vector<double> values) {
  Percentiles p;
  if (values.empty()) return p;
  std::sort(values.begin(), values.end());
  const auto at = [&](double q) {
    const double idx = q * static_cast<double>(values.size() - 1);
    return values[static_cast<std::size_t>(std::llround(idx))];
  };
  p.p50 = at(0.50);
  p.p90 = at(0.90);
  p.p99 = at(0.99);
  p.max = values.back();
  return p;
}

QualityReport analyze_quality(const Design& design, const RoutingMaps* routed,
                              const QualityConfig& config) {
  QualityReport report;

  // --- wirelength ---------------------------------------------------------
  std::vector<double> lengths;
  lengths.reserve(design.nets.size());
  for (NetId n = 0; n < static_cast<NetId>(design.nets.size()); ++n) {
    if (design.nets[static_cast<std::size_t>(n)].pins.size() < 2) continue;
    lengths.push_back(design.net_hpwl(n));
  }
  report.nets = lengths.size();
  report.hpwl = design.total_hpwl();
  report.net_hpwl = compute_percentiles(std::move(lengths));

  // --- density -------------------------------------------------------------
  report.design_utilization = design.utilization();
  const GcellGrid bins = GcellGrid::from_row_pitch(
      design.die, design.tech.row_height, config.rows_per_bin);
  Map2D<double> movable(bins.nx(), bins.ny());
  Map2D<double> blocked(bins.nx(), bins.ny());
  for (const Cell& c : design.cells) {
    if (c.kind == CellKind::kTerminal) continue;
    const Rect r = c.rect().clamped(design.die);
    if (r.empty()) continue;
    GcellIndex lo, hi;
    bins.range_of(r, lo, hi);
    for (int gy = lo.gy; gy <= hi.gy; ++gy) {
      for (int gx = lo.gx; gx <= hi.gx; ++gx) {
        const double a = bins.gcell_rect(gx, gy).overlap_area(r);
        (c.movable() ? movable : blocked).at(gx, gy) += a;
      }
    }
  }
  std::vector<double> utils;
  utils.reserve(movable.size());
  const double bin_area = bins.gcell_w() * bins.gcell_h();
  for (int gy = 0; gy < bins.ny(); ++gy) {
    for (int gx = 0; gx < bins.nx(); ++gx) {
      const double free = bin_area - blocked.at(gx, gy);
      if (free <= bin_area * 0.05) continue;  // essentially macro-covered
      utils.push_back(movable.at(gx, gy) / free);
    }
  }
  report.bin_utilization = compute_percentiles(std::move(utils));

  // --- congestion ------------------------------------------------------------
  if (routed != nullptr) {
    report.has_congestion = true;
    std::vector<double> h, v;
    int over = 0;
    const int n = routed->grid.nx() * routed->grid.ny();
    h.reserve(static_cast<std::size_t>(n));
    v.reserve(static_cast<std::size_t>(n));
    for (int gy = 0; gy < routed->grid.ny(); ++gy) {
      for (int gx = 0; gx < routed->grid.nx(); ++gx) {
        const double rh = routed->dmd_h.at(gx, gy) /
                          std::max(routed->cap_h.at(gx, gy), 1.0);
        const double rv = routed->dmd_v.at(gx, gy) /
                          std::max(routed->cap_v.at(gx, gy), 1.0);
        h.push_back(rh);
        v.push_back(rv);
        if (rh > 1.0 || rv > 1.0) ++over;
      }
    }
    report.overflowed_gcell_frac = n > 0 ? static_cast<double>(over) / n : 0.0;
    report.cg_h = compute_percentiles(std::move(h));
    report.cg_v = compute_percentiles(std::move(v));
  }
  return report;
}

std::string QualityReport::to_string() const {
  std::ostringstream os;
  const auto line = [&](const char* name, const Percentiles& p) {
    os << "  " << name << ": p50 " << p.p50 << "  p90 " << p.p90 << "  p99 "
       << p.p99 << "  max " << p.max << '\n';
  };
  os << "quality report\n";
  os << "  HPWL " << hpwl << " over " << nets << " nets\n";
  line("net HPWL", net_hpwl);
  os << "  utilization " << design_utilization << '\n';
  line("bin util", bin_utilization);
  if (has_congestion) {
    line("H dmd/cap", cg_h);
    line("V dmd/cap", cg_v);
    os << "  overflowed Gcells " << 100.0 * overflowed_gcell_frac << "%\n";
  }
  return os.str();
}

}  // namespace puffer
