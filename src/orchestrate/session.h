// One exploration trial as a first-class session.
//
// A session owns a private copy of the design, forks the flow from the
// shared post-GP checkpoint (core/flow.h run_from), applies its
// candidate strategy, and evaluates routability — all on the worker
// lease its runner thread holds, so K concurrent sessions never
// oversubscribe the process thread budget. Sessions share NO mutable
// state; results are bit-identical for any scheduling order, concurrency
// and PUFFER_THREADS.
#pragma once

#include <cstdint>

#include "core/experiment.h"
#include "core/strategy_params.h"
#include "orchestrate/pruner.h"

namespace puffer {

struct TrialTask {
  int trial_id = -1;
  Assignment assignment;
  // The exploration benchmark (sessions copy it; never mutated).
  const Design* design = nullptr;
  // Base experiment config the assignment is applied onto.
  const ExperimentConfig* base = nullptr;
  // Shared fork checkpoint (never mutated by sessions).
  const FlowSnapshot* snapshot = nullptr;
  // Batch-frozen prune thresholds; null = no pruning.
  const PruneThresholds* pruner = nullptr;
  // Workers this session's lease requests (>= 1).
  int lease_want = 1;
};

struct TrialResult {
  int trial_id = -1;
  double loss = 0.0;
  bool pruned = false;
  int prune_round = -1;
  // FNV-1a over the final cell positions' bit patterns; 0 for pruned
  // sessions (they never reach legalization).
  std::uint64_t checksum = 0;
  // Per-padding-round estimated overflow (the pruner's rung metrics).
  std::vector<double> rounds;
  double wall_s = 0.0;
  // True when flow/route below were filled by an evaluation in this
  // process; false for results replayed from the journal or reported by
  // a remote worker (only the deterministic fields above cross the wire).
  bool metrics_valid = false;
  FlowMetrics flow;
  RouteResult route;
};

// Stable hash of an assignment (bit patterns of every value) — the
// journal's candidate identity check on resume.
std::uint64_t assignment_key(const Assignment& a);

// position_checksum (FNV-1a over all cells' (x, y) bit patterns) moved
// to io/checkpoint.h so the serve daemon shares the same fingerprint.

// Runs one trial: copy `base_design`, fork from the snapshot with the
// candidate strategy applied, evaluate routability (warm, sharing the
// session flow's RSMT cache). Thread-safe: call from any runner thread.
TrialResult run_trial_session(const Design& base_design,
                              const TrialTask& task);

}  // namespace puffer
