// Trial-evaluation worker: the remote end of the coordinator/worker
// protocol (orchestrate/protocol.h).
//
// A worker owns a local copy of the exploration design (loaded from the
// same benchmark spec as the coordinator's; structure verified by
// design_structure_key in the handshake), attaches to a coordinator,
// receives the shared flow-prefix FlowSnapshot once (cached by
// (design_key, prefix_key) so a reconnect after a coordinator restart
// skips the transfer), then pulls trial assignments: each is evaluated
// with the exact in-process session code (run_trial_session) and its
// deterministic result fields -- loss bits, prune state, position
// checksum, per-rung trail -- are reported back. A worker never holds
// exploration state: killing it mid-trial only costs the in-flight
// evaluation, which the coordinator reassigns.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.h"
#include "io/checkpoint.h"

namespace puffer {

// In-memory snapshot cache, keyed by (design_key, prefix_key). One
// worker process normally holds a single entry; reconnects to a
// restarted coordinator with the same prefix reuse it.
class SnapshotCache {
 public:
  void put(FlowSnapshot snap);
  // Null when the key is absent; the pointer stays valid until the next
  // put() with the same key.
  const FlowSnapshot* find(std::uint64_t design_key,
                           std::uint64_t prefix_key) const;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> keys() const;

 private:
  std::map<std::pair<std::uint64_t, std::uint64_t>, FlowSnapshot> cache_;
};

struct WorkerConfig {
  std::string connect;             // coordinator address (UDS path or host:port)
  std::string name = "worker";     // identity in logs and the handshake
  double connect_timeout_s = 60.0; // retry window for the initial connect
  // After a clean coordinator EOF (not kShutdown), retry the connect for
  // this long -- covers a coordinator restart (kill + resume). 0 = exit
  // on the first EOF.
  double reconnect_timeout_s = 0.0;
};

// Serves one coordinator connection on `fd` (already connected): sends
// Hello, runs the handshake + snapshot sync, then evaluates assignments
// until kShutdown or EOF. Returns true on a clean kShutdown, false when
// the coordinator went away (EOF / error). Closes nothing -- the caller
// owns `fd`. Throws CheckpointError on protocol violations it cannot
// report (e.g. a corrupted frame).
bool serve_coordinator(int fd, const Design& design,
                       const ExperimentConfig& base, SnapshotCache* cache,
                       const std::string& worker_name);

// Connect-with-retry + serve loop. Returns 0 after a clean shutdown,
// 1 on connect timeout or a protocol error.
int run_worker(const Design& design, const ExperimentConfig& base,
               const WorkerConfig& config);

}  // namespace puffer
