#include "orchestrate/pruner.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "io/checkpoint.h"

namespace puffer {

PruneConfig validate_prune_config(PruneConfig config) {
  if (!std::isfinite(config.quantile) || config.quantile <= 0.0 ||
      config.quantile >= 1.0) {
    throw std::invalid_argument("PruneConfig.quantile must lie in (0, 1)");
  }
  if (config.grace_rounds < 0) {
    throw std::invalid_argument("PruneConfig.grace_rounds must be >= 0");
  }
  if (config.min_history < 2) {
    throw std::invalid_argument("PruneConfig.min_history must be >= 2");
  }
  if (!std::isfinite(config.penalty) || config.penalty < 0.0) {
    throw std::invalid_argument(
        "PruneConfig.penalty must be finite and non-negative");
  }
  return config;
}

PruneThresholds::PruneThresholds(PruneConfig config)
    : config_(validate_prune_config(config)) {}

void PruneThresholds::observe(const std::vector<double>& trail) {
  if (trail.size() > rungs_.size()) rungs_.resize(trail.size());
  for (std::size_t r = 0; r < trail.size(); ++r) {
    rungs_[r].push_back(trail[r]);
  }
  ++trails_;
}

bool PruneThresholds::should_prune(int round, double value) const {
  if (!config_.enabled) return false;
  if (round < config_.grace_rounds) return false;
  if (round < 0 || static_cast<std::size_t>(round) >= rungs_.size()) {
    return false;
  }
  const std::vector<double>& rung = rungs_[static_cast<std::size_t>(round)];
  if (static_cast<int>(rung.size()) < config_.min_history) return false;
  // Deterministic quantile: sorted copy, lower-index rule
  // floor(q * (n - 1)). No interpolation, so the threshold is always an
  // observed value and equality never prunes.
  std::vector<double> sorted = rung;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t idx = static_cast<std::size_t>(
      config_.quantile * static_cast<double>(sorted.size() - 1));
  return value > sorted[idx];
}

std::string encode_prune_thresholds(const PruneThresholds& t) {
  BinaryWriter w;
  w.put_u8(t.config_.enabled ? 1 : 0);
  w.put_i32(t.config_.grace_rounds);
  w.put_i32(t.config_.min_history);
  w.put_f64(t.config_.quantile);
  w.put_f64(t.config_.penalty);
  w.put_i32(t.trails_);
  w.put_u64(t.rungs_.size());
  for (const std::vector<double>& rung : t.rungs_) w.put_f64_vec(rung);
  return w.take();
}

PruneThresholds decode_prune_thresholds(const std::string& blob) {
  BinaryReader r(blob);
  PruneConfig config;
  config.enabled = r.get_u8() != 0;
  config.grace_rounds = r.get_i32();
  config.min_history = r.get_i32();
  config.quantile = r.get_f64();
  config.penalty = r.get_f64();
  PruneThresholds t(config);
  t.trails_ = r.get_i32();
  const std::uint64_t nrungs = r.get_u64();
  if (nrungs > blob.size()) {
    throw CheckpointError("pruner: rung count exceeds buffer");
  }
  t.rungs_.reserve(static_cast<std::size_t>(nrungs));
  for (std::uint64_t i = 0; i < nrungs; ++i) {
    t.rungs_.push_back(r.get_f64_vec());
  }
  if (!r.at_end()) {
    throw CheckpointError("pruner: trailing bytes after thresholds");
  }
  return t;
}

}  // namespace puffer
