#include "orchestrate/pruner.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace puffer {

PruneConfig validate_prune_config(PruneConfig config) {
  if (!std::isfinite(config.quantile) || config.quantile <= 0.0 ||
      config.quantile >= 1.0) {
    throw std::invalid_argument("PruneConfig.quantile must lie in (0, 1)");
  }
  if (config.grace_rounds < 0) {
    throw std::invalid_argument("PruneConfig.grace_rounds must be >= 0");
  }
  if (config.min_history < 2) {
    throw std::invalid_argument("PruneConfig.min_history must be >= 2");
  }
  if (!std::isfinite(config.penalty) || config.penalty < 0.0) {
    throw std::invalid_argument(
        "PruneConfig.penalty must be finite and non-negative");
  }
  return config;
}

PruneThresholds::PruneThresholds(PruneConfig config)
    : config_(validate_prune_config(config)) {}

void PruneThresholds::observe(const std::vector<double>& trail) {
  if (trail.size() > rungs_.size()) rungs_.resize(trail.size());
  for (std::size_t r = 0; r < trail.size(); ++r) {
    rungs_[r].push_back(trail[r]);
  }
  ++trails_;
}

bool PruneThresholds::should_prune(int round, double value) const {
  if (!config_.enabled) return false;
  if (round < config_.grace_rounds) return false;
  if (round < 0 || static_cast<std::size_t>(round) >= rungs_.size()) {
    return false;
  }
  const std::vector<double>& rung = rungs_[static_cast<std::size_t>(round)];
  if (static_cast<int>(rung.size()) < config_.min_history) return false;
  // Deterministic quantile: sorted copy, lower-index rule
  // floor(q * (n - 1)). No interpolation, so the threshold is always an
  // observed value and equality never prunes.
  std::vector<double> sorted = rung;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t idx = static_cast<std::size_t>(
      config_.quantile * static_cast<double>(sorted.size() - 1));
  return value > sorted[idx];
}

}  // namespace puffer
