#include "orchestrate/coordinator.h"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <utility>

#include "common/logger.h"
#include "common/timer.h"
#include "core/config_io.h"
#include "orchestrate/protocol.h"
#include "orchestrate/pruner.h"
#include "orchestrate/session.h"

namespace puffer {

namespace {

constexpr const char* kTag = "coordinator";
constexpr int kPollMs = 200;

}  // namespace

CoordinatorConfig validate_coordinator_config(CoordinatorConfig config) {
  if (config.listen.empty()) {
    throw std::invalid_argument("CoordinatorConfig.listen must be set");
  }
  if (config.min_workers < 1) {
    throw std::invalid_argument(
        "CoordinatorConfig.min_workers must be positive");
  }
  if (!(config.attach_timeout_s > 0.0)) {
    throw std::invalid_argument(
        "CoordinatorConfig.attach_timeout_s must be positive");
  }
  return config;
}

struct CoordinatorExecutor::Worker {
  int fd = -1;
  std::string name;
  int task = -1;  // index into the current batch's tasks, -1 = idle
};

CoordinatorExecutor::CoordinatorExecutor(CoordinatorConfig config)
    : config_(validate_coordinator_config(std::move(config))) {
  ignore_sigpipe();
  listen_fd_ = listen_socket(config_.listen);
  PUFFER_LOG_INFO(kTag, "listening on %s", config_.listen.c_str());
}

CoordinatorExecutor::~CoordinatorExecutor() {
  shutdown_workers();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (is_unix_address(config_.listen)) ::unlink(config_.listen.c_str());
}

int CoordinatorExecutor::slots() const { return std::max(1, peak_workers_); }

int CoordinatorExecutor::workers_attached() const {
  return static_cast<int>(workers_.size());
}

void CoordinatorExecutor::shutdown_workers() {
  for (Worker& w : workers_) {
    try {
      send_msg(w.fd, MsgType::kShutdown, std::string());
    } catch (const CheckpointError&) {
      // Worker already gone.
    }
    ::close(w.fd);
  }
  workers_.clear();
}

void CoordinatorExecutor::accept_and_handshake() {
  const int fd = accept_socket(listen_fd_);
  try {
    WireFrame frame;
    if (!read_frame_fd(fd, &frame) ||
        frame.type != static_cast<std::uint32_t>(MsgType::kHello)) {
      throw CheckpointError("expected hello");
    }
    const HelloMsg hello = decode_hello(frame.body);
    if (hello.protocol_version != kOrchProtocolVersion) {
      ErrorMsg err;
      err.message = "protocol version mismatch";
      send_msg(fd, MsgType::kError, encode_error(err));
      ::close(fd);
      return;
    }
    if (hello.design_key != ctx_.design_key) {
      // A worker holding a different benchmark must never evaluate
      // trials: its results would fold garbage into the TPE state.
      ErrorMsg err;
      err.message = "design mismatch: worker loaded a different benchmark";
      send_msg(fd, MsgType::kError, encode_error(err));
      ::close(fd);
      PUFFER_LOG_WARN(kTag, "refused worker %s: design key mismatch",
                      hello.worker_name.c_str());
      return;
    }
    const bool cached =
        std::find(hello.cached.begin(), hello.cached.end(),
                  std::make_pair(ctx_.design_key, ctx_.prefix_key)) !=
        hello.cached.end();
    HelloAckMsg ack;
    ack.design_key = ctx_.design_key;
    ack.prefix_key = ctx_.prefix_key;
    ack.space_key = ctx_.space_key;
    ack.seed = ctx_.seed;
    ack.base_config_text = base_config_text_;
    ack.snapshot_follows = cached ? 0 : 1;
    send_msg(fd, MsgType::kHelloAck, encode_hello_ack(ack));
    if (!cached) {
      send_msg(fd, MsgType::kSnapshot, snapshot_bytes_);
    }
    Worker w;
    w.fd = fd;
    w.name = hello.worker_name;
    workers_.push_back(std::move(w));
    peak_workers_ =
        std::max(peak_workers_, static_cast<int>(workers_.size()));
    PUFFER_LOG_INFO(kTag, "worker %s attached (%zu connected, snapshot %s)",
                    hello.worker_name.c_str(), workers_.size(),
                    cached ? "cached" : "shipped");
  } catch (const CheckpointError& e) {
    PUFFER_LOG_WARN(kTag, "handshake failed: %s", e.what());
    ::close(fd);
  }
}

void CoordinatorExecutor::drop_worker(std::size_t w, const char* why) {
  PUFFER_LOG_WARN(kTag, "worker %s lost (%s)%s", workers_[w].name.c_str(),
                  why,
                  workers_[w].task >= 0 ? ", reassigning its trial" : "");
  ::close(workers_[w].fd);
  workers_.erase(workers_.begin() + static_cast<std::ptrdiff_t>(w));
}

void CoordinatorExecutor::prepare(const TrialRunContext& ctx) {
  ctx_ = ctx;
  snapshot_bytes_ = encode_snapshot(*ctx.snapshot);
  base_config_text_ = config_to_text(ctx.base->puffer);

  Timer timer;
  while (workers_attached() < config_.min_workers) {
    pollfd p{};
    p.fd = listen_fd_;
    p.events = POLLIN;
    const int rc = ::poll(&p, 1, kPollMs);
    if (rc > 0 && (p.revents & POLLIN)) accept_and_handshake();
    if (timer.elapsed_seconds() > config_.attach_timeout_s) {
      if (config_.local_fallback) {
        PUFFER_LOG_WARN(kTag,
                        "only %d/%d workers attached in %.0f s; remaining "
                        "trials may run in-process",
                        workers_attached(), config_.min_workers,
                        config_.attach_timeout_s);
        return;
      }
      throw CheckpointError("coordinator: only " +
                            std::to_string(workers_attached()) + "/" +
                            std::to_string(config_.min_workers) +
                            " workers attached before timeout");
    }
  }
}

void CoordinatorExecutor::run_batch(const std::vector<TrialTask>& tasks,
                                    const std::vector<int>& to_run,
                                    std::vector<TrialResult>* results) {
  std::deque<int> pending(to_run.begin(), to_run.end());
  std::size_t remaining = to_run.size();
  Timer starve_timer;  // time since the last worker disappeared

  const auto assign_to = [&](Worker& w, int i) {
    const TrialTask& task = tasks[static_cast<std::size_t>(i)];
    TrialAssignMsg msg;
    msg.trial_id = task.trial_id;
    msg.assignment = task.assignment;
    msg.akey = assignment_key(task.assignment);
    if (task.pruner) msg.pruner_blob = encode_prune_thresholds(*task.pruner);
    send_msg(w.fd, MsgType::kTrialAssign, encode_trial_assign(msg));
    w.task = i;
  };

  while (remaining > 0) {
    // Hand pending trials to idle workers. A send failure means the
    // worker died between polls: requeue and drop.
    for (std::size_t w = 0; w < workers_.size() && !pending.empty();) {
      if (workers_[w].task >= 0) {
        ++w;
        continue;
      }
      const int i = pending.front();
      try {
        assign_to(workers_[w], i);
        pending.pop_front();
        ++w;
      } catch (const CheckpointError&) {
        drop_worker(w, "send failed");
        starve_timer = Timer();
      }
    }

    if (workers_.empty()) {
      // Every worker is gone. Give replacements a chance to attach, then
      // fall back to evaluating in-process so the exploration finishes.
      if (starve_timer.elapsed_seconds() > config_.attach_timeout_s) {
        if (!config_.local_fallback) {
          throw CheckpointError(
              "coordinator: all workers lost and none re-attached");
        }
        PUFFER_LOG_WARN(kTag,
                        "no workers for %.0f s; evaluating %zu remaining "
                        "trial(s) in-process",
                        config_.attach_timeout_s, remaining);
        while (!pending.empty()) {
          const int i = pending.front();
          pending.pop_front();
          (*results)[static_cast<std::size_t>(i)] = run_trial_session(
              *tasks[static_cast<std::size_t>(i)].design,
              tasks[static_cast<std::size_t>(i)]);
          ++trials_local_fallback_;
          --remaining;
        }
        continue;
      }
    }

    // Wait for results, worker deaths, or new attaches.
    std::vector<pollfd> fds;
    fds.reserve(workers_.size() + 1);
    pollfd lp{};
    lp.fd = listen_fd_;
    lp.events = POLLIN;
    fds.push_back(lp);
    for (const Worker& w : workers_) {
      pollfd p{};
      p.fd = w.fd;
      p.events = POLLIN;
      fds.push_back(p);
    }
    const int rc = ::poll(fds.data(), fds.size(), kPollMs);
    if (rc <= 0) continue;

    if (fds[0].revents & POLLIN) accept_and_handshake();

    // Process at most one worker event per poll round; a drop mutates
    // workers_, so indices past it would be stale.
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      const short revents = fds[w + 1].revents;
      if (revents == 0) continue;
      if ((revents & (POLLERR | POLLNVAL)) != 0) {
        const int orphan = workers_[w].task;
        drop_worker(w, "socket error");
        if (orphan >= 0) {
          pending.push_back(orphan);
          ++trials_reassigned_;
        }
        starve_timer = Timer();
        break;
      }
      // POLLIN and POLLHUP both mean "read": a hangup with a complete
      // result still buffered must count the result.
      try {
        WireFrame frame;
        if (!read_frame_fd(workers_[w].fd, &frame)) {
          throw CheckpointError("eof");
        }
        if (frame.type == static_cast<std::uint32_t>(MsgType::kTrialResult)) {
          const TrialResultMsg msg = decode_trial_result(frame.body);
          const int i = workers_[w].task;
          if (i < 0 ||
              tasks[static_cast<std::size_t>(i)].trial_id != msg.trial_id ||
              assignment_key(tasks[static_cast<std::size_t>(i)].assignment) !=
                  msg.akey) {
            throw CheckpointError("result does not match the assignment");
          }
          TrialResult& r = (*results)[static_cast<std::size_t>(i)];
          r.trial_id = msg.trial_id;
          r.loss = msg.loss;
          r.pruned = msg.pruned != 0;
          r.prune_round = msg.prune_round;
          r.checksum = msg.checksum;
          r.rounds = msg.rounds;
          r.wall_s = msg.wall_s;
          r.metrics_valid = false;  // FlowMetrics never cross the wire
          workers_[w].task = -1;
          --remaining;
        } else if (frame.type == static_cast<std::uint32_t>(MsgType::kError)) {
          throw CheckpointError("worker error: " +
                                decode_error(frame.body).message);
        } else {
          throw CheckpointError("unexpected message type " +
                                std::to_string(frame.type));
        }
      } catch (const CheckpointError& e) {
        const int orphan = workers_[w].task;
        drop_worker(w, e.what());
        if (orphan >= 0) {
          pending.push_back(orphan);
          ++trials_reassigned_;
        }
        starve_timer = Timer();
      }
      break;
    }
  }
}

OrchestrationResult run_distributed_orchestration(
    Design& design, std::vector<ParamSpec> specs, ExperimentConfig base,
    OrchestratorConfig orch, CoordinatorConfig coord) {
  TrialOrchestrator orchestrator(design, std::move(specs), std::move(base),
                                 std::move(orch));
  CoordinatorExecutor executor(std::move(coord));
  OrchestrationResult result = orchestrator.run(executor);
  if (executor.trials_reassigned() > 0 ||
      executor.trials_local_fallback() > 0) {
    PUFFER_LOG_INFO(kTag, "%d trial(s) reassigned, %d ran in-process",
                    executor.trials_reassigned(),
                    executor.trials_local_fallback());
  }
  executor.shutdown_workers();
  return result;
}

}  // namespace puffer
