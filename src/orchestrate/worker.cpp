#include "orchestrate/worker.h"

#include <unistd.h>

#include <utility>

#include "common/logger.h"
#include "common/parallel.h"
#include "core/config_io.h"
#include "orchestrate/protocol.h"
#include "orchestrate/pruner.h"
#include "orchestrate/session.h"

namespace puffer {

namespace {

constexpr const char* kTag = "worker";

void send_error(int fd, const std::string& message) {
  try {
    ErrorMsg err;
    err.message = message;
    send_msg(fd, MsgType::kError, encode_error(err));
  } catch (const CheckpointError&) {
    // The peer is already gone; the caller handles the disconnect.
  }
}

}  // namespace

void SnapshotCache::put(FlowSnapshot snap) {
  const auto key = std::make_pair(snap.design_key, snap.prefix_key);
  cache_[key] = std::move(snap);
}

const FlowSnapshot* SnapshotCache::find(std::uint64_t design_key,
                                        std::uint64_t prefix_key) const {
  const auto it = cache_.find(std::make_pair(design_key, prefix_key));
  return it == cache_.end() ? nullptr : &it->second;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> SnapshotCache::keys()
    const {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  out.reserve(cache_.size());
  for (const auto& [key, snap] : cache_) out.push_back(key);
  return out;
}

bool serve_coordinator(int fd, const Design& design,
                       const ExperimentConfig& base, SnapshotCache* cache,
                       const std::string& worker_name) {
  const std::uint64_t dkey = design_structure_key(design);

  // --- attach: Hello -> HelloAck -> (Snapshot) ---------------------------
  HelloMsg hello;
  hello.design_key = dkey;
  hello.cached = cache->keys();
  hello.worker_name = worker_name;
  send_msg(fd, MsgType::kHello, encode_hello(hello));

  WireFrame frame;
  if (!read_frame_fd(fd, &frame)) return false;
  if (frame.type == static_cast<std::uint32_t>(MsgType::kError)) {
    PUFFER_LOG_WARN(kTag, "coordinator refused attach: %s",
                    decode_error(frame.body).message.c_str());
    return false;
  }
  if (frame.type != static_cast<std::uint32_t>(MsgType::kHelloAck)) {
    send_error(fd, "expected hello_ack");
    return false;
  }
  const HelloAckMsg ack = decode_hello_ack(frame.body);
  if (ack.protocol_version != kOrchProtocolVersion) {
    send_error(fd, "protocol version mismatch");
    return false;
  }
  if (ack.design_key != dkey) {
    send_error(fd, "design mismatch: worker holds a different benchmark");
    return false;
  }

  if (ack.snapshot_follows) {
    if (!read_frame_fd(fd, &frame)) return false;
    if (frame.type != static_cast<std::uint32_t>(MsgType::kSnapshot)) {
      send_error(fd, "expected snapshot");
      return false;
    }
    // decode_snapshot verifies the payload FNV; the key check on top
    // rejects a snapshot for a different design or prefix config -- a
    // worker must never fork trials from the wrong prefix.
    FlowSnapshot snap = decode_snapshot(frame.body);
    if (snap.design_key != ack.design_key ||
        snap.prefix_key != ack.prefix_key) {
      send_error(fd, "snapshot key mismatch (design/prefix)");
      PUFFER_LOG_WARN(kTag,
                      "rejected snapshot: keys %016llx/%016llx != announced "
                      "%016llx/%016llx",
                      static_cast<unsigned long long>(snap.design_key),
                      static_cast<unsigned long long>(snap.prefix_key),
                      static_cast<unsigned long long>(ack.design_key),
                      static_cast<unsigned long long>(ack.prefix_key));
      return false;
    }
    cache->put(std::move(snap));
  }
  const FlowSnapshot* snap = cache->find(ack.design_key, ack.prefix_key);
  if (!snap) {
    send_error(fd, "snapshot not cached and none shipped");
    return false;
  }

  // The coordinator's base strategy overrides our binary defaults, so
  // both sides apply candidate assignments onto identical bases.
  ExperimentConfig cfg = base;
  cfg.puffer = config_from_text(ack.base_config_text, base.puffer);
  cfg.puffer.num_threads = 0;

  PUFFER_LOG_INFO(kTag, "%s attached: design %016llx prefix %016llx",
                  worker_name.c_str(),
                  static_cast<unsigned long long>(ack.design_key),
                  static_cast<unsigned long long>(ack.prefix_key));

  // --- pull / evaluate / report loop -------------------------------------
  for (;;) {
    if (!read_frame_fd(fd, &frame)) return false;
    switch (static_cast<MsgType>(frame.type)) {
      case MsgType::kTrialAssign: {
        const TrialAssignMsg assign = decode_trial_assign(frame.body);
        if (assignment_key(assign.assignment) != assign.akey) {
          send_error(fd, "assignment key mismatch on trial " +
                             std::to_string(assign.trial_id));
          return false;
        }
        PruneThresholds pruner({});
        const bool have_pruner = !assign.pruner_blob.empty();
        if (have_pruner) {
          pruner = decode_prune_thresholds(assign.pruner_blob);
        }
        TrialTask task;
        task.trial_id = assign.trial_id;
        task.assignment = assign.assignment;
        task.design = &design;
        task.base = &cfg;
        task.snapshot = snap;
        task.pruner = have_pruner ? &pruner : nullptr;
        // One session per worker process: lease the whole local budget.
        task.lease_want = par::num_threads();
        const TrialResult r = run_trial_session(design, task);

        TrialResultMsg out;
        out.trial_id = r.trial_id;
        out.akey = assign.akey;
        out.loss = r.loss;
        out.pruned = r.pruned ? 1 : 0;
        out.prune_round = r.prune_round;
        out.checksum = r.checksum;
        out.rounds = r.rounds;
        out.wall_s = r.wall_s;
        send_msg(fd, MsgType::kTrialResult, encode_trial_result(out));
        break;
      }
      case MsgType::kShutdown:
        PUFFER_LOG_INFO(kTag, "%s: clean shutdown", worker_name.c_str());
        return true;
      case MsgType::kError:
        PUFFER_LOG_WARN(kTag, "coordinator error: %s",
                        decode_error(frame.body).message.c_str());
        return false;
      default:
        send_error(fd, "unexpected message type " +
                           std::to_string(frame.type));
        return false;
    }
  }
}

int run_worker(const Design& design, const ExperimentConfig& base,
               const WorkerConfig& config) {
  ignore_sigpipe();
  SnapshotCache cache;
  double retry_budget_s = config.connect_timeout_s;
  for (;;) {
    int fd = -1;
    try {
      fd = connect_socket_retry(config.connect, retry_budget_s);
    } catch (const CheckpointError& e) {
      PUFFER_LOG_WARN(kTag, "%s: %s", config.name.c_str(), e.what());
      return 1;
    }
    bool clean = false;
    try {
      clean = serve_coordinator(fd, design, base, &cache, config.name);
    } catch (const std::exception& e) {
      PUFFER_LOG_WARN(kTag, "%s: connection lost: %s", config.name.c_str(),
                      e.what());
    }
    ::close(fd);
    if (clean) return 0;
    if (config.reconnect_timeout_s <= 0.0) return 1;
    // Coordinator went away: keep trying to reattach (snapshot cache
    // warm, so a restarted coordinator skips the transfer).
    PUFFER_LOG_INFO(kTag, "%s: reconnecting to %s", config.name.c_str(),
                    config.connect.c_str());
    retry_budget_s = config.reconnect_timeout_s;
  }
}

}  // namespace puffer
