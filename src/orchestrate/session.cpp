#include "orchestrate/session.h"

#include <cstring>

#include "common/parallel.h"
#include "common/timer.h"
#include "io/checkpoint.h"

namespace puffer {

std::uint64_t assignment_key(const Assignment& a) {
  std::uint64_t h = fnv1a_bytes(nullptr, 0);
  const std::uint64_t n = a.size();
  h = fnv1a_bytes(&n, sizeof(n), h);
  for (double v : a) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    h = fnv1a_bytes(&bits, sizeof(bits), h);
  }
  return h;
}

TrialResult run_trial_session(const Design& base_design,
                              const TrialTask& task) {
  TrialResult result;
  result.trial_id = task.trial_id;
  Timer timer;

  // The session's whole compute runs under its runner thread's lease
  // (parallel_for dispatches to the lease's private pool), so K sessions
  // split the global budget instead of stacking K full pools.
  par::WorkerLease lease(task.lease_want);

  Design design = base_design;  // private copy: sessions share nothing
  ExperimentConfig cfg = *task.base;
  cfg.puffer = apply_assignment(task.base->puffer, task.assignment);
  // Sessions must never resize the shared worker pool mid-run.
  cfg.puffer.num_threads = 0;

  PufferFlow flow(design, cfg.puffer);
  int prune_round = -1;
  double prune_value = 0.0;
  const PruneThresholds* pruner = task.pruner;
  const RoundCallback cb = [&](int round, const OverflowStats& est) {
    if (pruner && pruner->should_prune(round, est.total_pct())) {
      prune_round = round;
      prune_value = est.total_pct();
      return false;
    }
    return true;
  };
  result.flow = flow.run_from(*task.snapshot, cb);
  result.rounds = result.flow.round_est_overflow;

  if (result.flow.aborted_early) {
    result.pruned = true;
    result.prune_round = prune_round;
    result.loss = pruner->penalty_loss(prune_value);
    result.checksum = 0;
  } else {
    result.route =
        evaluate_routability(design, cfg.eval_router, flow.estimator());
    result.flow.router.route_time_s = result.route.route_time_s;
    result.flow.router.rrr_time_s = result.route.rrr_time_s;
    result.flow.router.segments = result.route.segments;
    result.flow.router.rerouted = result.route.rerouted;
    result.flow.router.rounds_used = result.route.rounds_used;
    result.flow.stages.add("evaluate_route", result.route.route_time_s);
    result.loss = result.route.overflow.hof_pct + result.route.overflow.vof_pct;
    result.checksum = position_checksum(design);
  }
  result.wall_s = timer.elapsed_seconds();
  result.metrics_valid = true;
  return result;
}

}  // namespace puffer
