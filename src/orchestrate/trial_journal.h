// Append-only, crash-safe trial journal for exploration sessions.
//
// One JSONL record per line, fsync'd per append, so a SIGKILL at any
// point leaves at worst one torn final line -- which the tolerant loader
// drops. A resumed exploration replays the journal: completed trials
// substitute their recorded losses for re-evaluation (verified against
// the re-derived candidate's assignment hash), incomplete trials re-run
// from the shared checkpoint.
//
// Exact-replay encoding: every double that feeds back into the
// deterministic exploration state (losses, per-rung overflow trails) is
// stored as its IEEE-754 bit pattern in hex, not as decimal text, so a
// resume folds bit-identical values. Human-readable approximations ride
// along where useful.
//
// Record schema (see docs/architecture.md for the full field tables):
//   {"type":"header","version":1,"design_key":"..hex..", ...}
//   {"type":"checkpoint","path":"...","prefix_key":"..hex.."}
//   {"type":"trial_start","trial":N,"akey":"..hex.."}
//   {"type":"trial_complete","trial":N,"akey":"..hex..",
//    "loss_bits":"..hex..","pruned":0,"prune_round":-1,
//    "checksum":"..hex..","rounds":["..hex..",...]}
//   {"type":"explore_complete","best_trial":N,"best_loss_bits":"..hex..",
//    "best_checksum":"..hex.."}
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace puffer {

struct JournalRecord {
  enum class Type {
    kHeader,
    kCheckpoint,
    kTrialStart,
    kTrialComplete,
    kExploreComplete,
  };
  Type type = Type::kHeader;

  // header
  std::uint64_t design_key = 0;
  std::uint64_t prefix_key = 0;
  std::uint64_t space_key = 0;  // hash of the explored parameter space
  std::uint64_t seed = 0;
  int trials = 0;
  int batch_size = 0;

  // checkpoint
  std::string path;

  // trial_start / trial_complete
  int trial = -1;
  std::uint64_t akey = 0;  // assignment hash (bit patterns of all values)
  double loss = 0.0;
  bool pruned = false;
  int prune_round = -1;
  std::uint64_t checksum = 0;          // final-position checksum (0 if pruned)
  std::vector<double> rounds;          // per-rung estimated overflow trail

  // explore_complete
  int best_trial = -1;
  double best_loss = 0.0;
  std::uint64_t best_checksum = 0;
};

class TrialJournal {
 public:
  // Opens `path` for appending (created when missing); throws
  // CheckpointError when the file cannot be opened.
  explicit TrialJournal(const std::string& path);
  ~TrialJournal();
  TrialJournal(const TrialJournal&) = delete;
  TrialJournal& operator=(const TrialJournal&) = delete;

  // Serializes, appends one line, flushes and fsyncs. Throws
  // CheckpointError on I/O failure.
  void append(const JournalRecord& rec);

  const std::string& path() const { return path_; }

  // One-record codec (exposed for tests).
  static std::string encode(const JournalRecord& rec);
  // Returns false for a malformed/torn line (never throws).
  static bool decode(const std::string& line, JournalRecord* out);

  // Tolerant loader: parses records until the first malformed line (a
  // crash tears at most the final one) and ignores everything after it.
  // A missing file yields an empty vector.
  static std::vector<JournalRecord> load(const std::string& path);

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  int fd_ = -1;
};

}  // namespace puffer
