// Coordinator side of distributed trial orchestration.
//
// CoordinatorExecutor is a TrialExecutor (orchestrate/orchestrator.h)
// that farms each statistical batch out to worker processes connected
// over the binary wire protocol (orchestrate/protocol.h) instead of
// in-process runner threads. The deterministic exploration loop --
// candidate suggestion, journal, candidate-order fold -- stays inside
// TrialOrchestrator, so a distributed run is bit-identical to the
// in-process scheduler for any worker count: the executor only decides
// *where* a trial evaluates, and workers run the identical session code
// on a structure-verified copy of the design.
//
// Fault model: a worker that dies or disconnects mid-trial is detected
// by EOF/write failure; its in-flight trial returns to the pending queue
// and is reassigned to a surviving (or newly attached) worker. Workers
// may attach at any time, including mid-batch. If every worker is gone
// and none attaches within `attach_timeout_s`, the executor either runs
// the remaining trials in-process (`local_fallback`, default) or throws.
// Coordinator death is the journal's job, exactly as for the in-process
// scheduler: resume replays completed trials (scripts/kill_resume_smoke).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "orchestrate/orchestrator.h"

namespace puffer {

struct CoordinatorConfig {
  // Listen address: a Unix-domain socket path (contains '/') or
  // "host:port" / ":port" for TCP.
  std::string listen;
  // Block until this many workers have attached before the first batch.
  int min_workers = 1;
  // How long to wait for the first min_workers, and for a replacement
  // when every worker died mid-run.
  double attach_timeout_s = 120.0;
  // When no worker attaches in time: true = evaluate the remaining
  // trials in this process (exploration always completes), false =
  // throw CheckpointError.
  bool local_fallback = true;
};

// Throws std::invalid_argument on an empty listen address or
// non-positive min_workers / attach_timeout_s.
CoordinatorConfig validate_coordinator_config(CoordinatorConfig config);

class CoordinatorExecutor : public TrialExecutor {
 public:
  // Binds + listens immediately, so workers can attach while the
  // coordinator still computes the shared prefix.
  explicit CoordinatorExecutor(CoordinatorConfig config);
  ~CoordinatorExecutor() override;
  CoordinatorExecutor(const CoordinatorExecutor&) = delete;
  CoordinatorExecutor& operator=(const CoordinatorExecutor&) = delete;

  // Waits for min_workers attaches and completes their handshakes
  // (snapshot shipped unless cached).
  void prepare(const TrialRunContext& ctx) override;
  void run_batch(const std::vector<TrialTask>& tasks,
                 const std::vector<int>& to_run,
                 std::vector<TrialResult>* results) override;
  // Peak number of simultaneously attached workers (>= 1): the
  // utilization denominator.
  int slots() const override;

  // Sends kShutdown to every attached worker and closes the sockets;
  // called by the destructor, exposed for a graceful early stop.
  void shutdown_workers();

  int workers_attached() const;  // currently attached
  // Trials that died with a worker and were reassigned.
  int trials_reassigned() const { return trials_reassigned_; }
  // Trials evaluated by the in-process fallback path.
  int trials_local_fallback() const { return trials_local_fallback_; }

 private:
  struct Worker;

  void accept_and_handshake();      // one pending connection
  void drop_worker(std::size_t w, const char* why);

  CoordinatorConfig config_;
  int listen_fd_ = -1;
  TrialRunContext ctx_;
  std::string snapshot_bytes_;      // encode_snapshot(ctx.snapshot), cached
  std::string base_config_text_;
  std::vector<Worker> workers_;
  int peak_workers_ = 0;
  int trials_reassigned_ = 0;
  int trials_local_fallback_ = 0;
};

// Convenience wrapper: run a full distributed exploration. Identical
// output to TrialOrchestrator::run() with the same OrchestratorConfig.
OrchestrationResult run_distributed_orchestration(
    Design& design, std::vector<ParamSpec> specs, ExperimentConfig base,
    OrchestratorConfig orch, CoordinatorConfig coord);

}  // namespace puffer
