#include "orchestrate/protocol.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <ctime>

namespace puffer {

namespace {

void finish_decode(const BinaryReader& r, const char* what) {
  if (!r.at_end()) {
    throw CheckpointError(std::string("protocol: trailing bytes after ") +
                          what);
  }
}

}  // namespace

std::string encode_hello(const HelloMsg& m) {
  BinaryWriter w;
  w.put_u32(m.protocol_version);
  w.put_u64(m.design_key);
  w.put_u64(m.cached.size());
  for (const auto& [dkey, pkey] : m.cached) {
    w.put_u64(dkey);
    w.put_u64(pkey);
  }
  w.put_string(m.worker_name);
  return w.take();
}

HelloMsg decode_hello(const std::string& body) {
  BinaryReader r(body);
  HelloMsg m;
  m.protocol_version = r.get_u32();
  m.design_key = r.get_u64();
  const std::uint64_t n = r.get_u64();
  if (n > body.size() / 16) {
    throw CheckpointError("protocol: hello cache list exceeds buffer");
  }
  m.cached.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t dkey = r.get_u64();
    const std::uint64_t pkey = r.get_u64();
    m.cached.emplace_back(dkey, pkey);
  }
  m.worker_name = r.get_string();
  finish_decode(r, "hello");
  return m;
}

std::string encode_hello_ack(const HelloAckMsg& m) {
  BinaryWriter w;
  w.put_u32(m.protocol_version);
  w.put_u64(m.design_key);
  w.put_u64(m.prefix_key);
  w.put_u64(m.space_key);
  w.put_u64(m.seed);
  w.put_string(m.base_config_text);
  w.put_u8(m.snapshot_follows);
  return w.take();
}

HelloAckMsg decode_hello_ack(const std::string& body) {
  BinaryReader r(body);
  HelloAckMsg m;
  m.protocol_version = r.get_u32();
  m.design_key = r.get_u64();
  m.prefix_key = r.get_u64();
  m.space_key = r.get_u64();
  m.seed = r.get_u64();
  m.base_config_text = r.get_string();
  m.snapshot_follows = r.get_u8();
  finish_decode(r, "hello_ack");
  return m;
}

std::string encode_trial_assign(const TrialAssignMsg& m) {
  BinaryWriter w;
  w.put_i32(m.trial_id);
  w.put_u64(m.akey);
  w.put_f64_vec(m.assignment);
  w.put_string(m.pruner_blob);
  return w.take();
}

TrialAssignMsg decode_trial_assign(const std::string& body) {
  BinaryReader r(body);
  TrialAssignMsg m;
  m.trial_id = r.get_i32();
  m.akey = r.get_u64();
  m.assignment = r.get_f64_vec();
  m.pruner_blob = r.get_string();
  finish_decode(r, "trial_assign");
  return m;
}

std::string encode_trial_result(const TrialResultMsg& m) {
  BinaryWriter w;
  w.put_i32(m.trial_id);
  w.put_u64(m.akey);
  w.put_f64(m.loss);
  w.put_u8(m.pruned);
  w.put_i32(m.prune_round);
  w.put_u64(m.checksum);
  w.put_f64_vec(m.rounds);
  w.put_f64(m.wall_s);
  return w.take();
}

TrialResultMsg decode_trial_result(const std::string& body) {
  BinaryReader r(body);
  TrialResultMsg m;
  m.trial_id = r.get_i32();
  m.akey = r.get_u64();
  m.loss = r.get_f64();
  m.pruned = r.get_u8();
  m.prune_round = r.get_i32();
  m.checksum = r.get_u64();
  m.rounds = r.get_f64_vec();
  m.wall_s = r.get_f64();
  finish_decode(r, "trial_result");
  return m;
}

std::string encode_error(const ErrorMsg& m) {
  BinaryWriter w;
  w.put_string(m.message);
  return w.take();
}

ErrorMsg decode_error(const std::string& body) {
  BinaryReader r(body);
  ErrorMsg m;
  m.message = r.get_string();
  finish_decode(r, "error");
  return m;
}

void send_msg(int fd, MsgType type, const std::string& body) {
  write_frame_fd(fd, static_cast<std::uint32_t>(type), body);
}

// --- socket address helpers ----------------------------------------------

bool is_unix_address(const std::string& address) {
  return address.find('/') != std::string::npos;
}

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw CheckpointError(what + ": " + std::strerror(errno));
}

sockaddr_un unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() + 1 > sizeof(addr.sun_path)) {
    throw CheckpointError("socket: unix path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

// Splits "host:port" (":port"/"port" -> localhost).
void split_host_port(const std::string& address, std::string* host,
                     std::string* port) {
  const std::size_t colon = address.rfind(':');
  if (colon == std::string::npos) {
    *host = "127.0.0.1";
    *port = address;
  } else {
    *host = colon == 0 ? "127.0.0.1" : address.substr(0, colon);
    *port = address.substr(colon + 1);
  }
  if (port->empty()) {
    throw CheckpointError("socket: no port in address " + address);
  }
}

int tcp_socket_for(const std::string& address, bool listen_side,
                   sockaddr_storage* out, socklen_t* out_len) {
  std::string host, port;
  split_host_port(address, &host, &port);
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  if (listen_side) hints.ai_flags = AI_PASSIVE;
  addrinfo* res = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), port.c_str(), &hints, &res);
  if (rc != 0 || !res) {
    throw CheckpointError("socket: cannot resolve " + address + ": " +
                          ::gai_strerror(rc));
  }
  const int fd = ::socket(res->ai_family, res->ai_socktype, res->ai_protocol);
  if (fd < 0) {
    ::freeaddrinfo(res);
    throw_errno("socket: socket() for " + address);
  }
  std::memcpy(out, res->ai_addr, res->ai_addrlen);
  *out_len = res->ai_addrlen;
  ::freeaddrinfo(res);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (listen_side) {
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  }
  return fd;
}

}  // namespace

int listen_socket(const std::string& address) {
  int fd = -1;
  if (is_unix_address(address)) {
    ::unlink(address.c_str());  // a stale socket file blocks bind
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw_errno("socket: socket() for " + address);
    const sockaddr_un addr = unix_addr(address);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd);
      throw_errno("socket: bind " + address);
    }
  } else {
    sockaddr_storage addr{};
    socklen_t len = 0;
    fd = tcp_socket_for(address, true, &addr, &len);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), len) != 0) {
      ::close(fd);
      throw_errno("socket: bind " + address);
    }
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    throw_errno("socket: listen " + address);
  }
  return fd;
}

int accept_socket(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return fd;
    if (errno == EINTR) continue;
    throw_errno("socket: accept");
  }
}

int connect_socket(const std::string& address) {
  int fd = -1;
  if (is_unix_address(address)) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw_errno("socket: socket() for " + address);
    const sockaddr_un addr = unix_addr(address);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd);
      throw_errno("socket: connect " + address);
    }
  } else {
    sockaddr_storage addr{};
    socklen_t len = 0;
    fd = tcp_socket_for(address, false, &addr, &len);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), len) != 0) {
      ::close(fd);
      throw_errno("socket: connect " + address);
    }
  }
  return fd;
}

int connect_socket_retry(const std::string& address, double timeout_s) {
  const double delay_s = 0.1;
  double waited = 0.0;
  for (;;) {
    try {
      return connect_socket(address);
    } catch (const CheckpointError&) {
      if (waited >= timeout_s) throw;
    }
    timespec ts{};
    ts.tv_sec = 0;
    ts.tv_nsec = static_cast<long>(delay_s * 1e9);
    ::nanosleep(&ts, nullptr);
    waited += delay_s;
  }
}

void ignore_sigpipe() { ::signal(SIGPIPE, SIG_IGN); }

}  // namespace puffer
