#include "orchestrate/protocol.h"

namespace puffer {

namespace {

void finish_decode(const BinaryReader& r, const char* what) {
  if (!r.at_end()) {
    throw CheckpointError(std::string("protocol: trailing bytes after ") +
                          what);
  }
}

}  // namespace

std::string encode_hello(const HelloMsg& m) {
  BinaryWriter w;
  w.put_u32(m.protocol_version);
  w.put_u64(m.design_key);
  w.put_u64(m.cached.size());
  for (const auto& [dkey, pkey] : m.cached) {
    w.put_u64(dkey);
    w.put_u64(pkey);
  }
  w.put_string(m.worker_name);
  return w.take();
}

HelloMsg decode_hello(const std::string& body) {
  BinaryReader r(body);
  HelloMsg m;
  m.protocol_version = r.get_u32();
  m.design_key = r.get_u64();
  const std::uint64_t n = r.get_u64();
  if (n > body.size() / 16) {
    throw CheckpointError("protocol: hello cache list exceeds buffer");
  }
  m.cached.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t dkey = r.get_u64();
    const std::uint64_t pkey = r.get_u64();
    m.cached.emplace_back(dkey, pkey);
  }
  m.worker_name = r.get_string();
  finish_decode(r, "hello");
  return m;
}

std::string encode_hello_ack(const HelloAckMsg& m) {
  BinaryWriter w;
  w.put_u32(m.protocol_version);
  w.put_u64(m.design_key);
  w.put_u64(m.prefix_key);
  w.put_u64(m.space_key);
  w.put_u64(m.seed);
  w.put_string(m.base_config_text);
  w.put_u8(m.snapshot_follows);
  return w.take();
}

HelloAckMsg decode_hello_ack(const std::string& body) {
  BinaryReader r(body);
  HelloAckMsg m;
  m.protocol_version = r.get_u32();
  m.design_key = r.get_u64();
  m.prefix_key = r.get_u64();
  m.space_key = r.get_u64();
  m.seed = r.get_u64();
  m.base_config_text = r.get_string();
  m.snapshot_follows = r.get_u8();
  finish_decode(r, "hello_ack");
  return m;
}

std::string encode_trial_assign(const TrialAssignMsg& m) {
  BinaryWriter w;
  w.put_i32(m.trial_id);
  w.put_u64(m.akey);
  w.put_f64_vec(m.assignment);
  w.put_string(m.pruner_blob);
  return w.take();
}

TrialAssignMsg decode_trial_assign(const std::string& body) {
  BinaryReader r(body);
  TrialAssignMsg m;
  m.trial_id = r.get_i32();
  m.akey = r.get_u64();
  m.assignment = r.get_f64_vec();
  m.pruner_blob = r.get_string();
  finish_decode(r, "trial_assign");
  return m;
}

std::string encode_trial_result(const TrialResultMsg& m) {
  BinaryWriter w;
  w.put_i32(m.trial_id);
  w.put_u64(m.akey);
  w.put_f64(m.loss);
  w.put_u8(m.pruned);
  w.put_i32(m.prune_round);
  w.put_u64(m.checksum);
  w.put_f64_vec(m.rounds);
  w.put_f64(m.wall_s);
  return w.take();
}

TrialResultMsg decode_trial_result(const std::string& body) {
  BinaryReader r(body);
  TrialResultMsg m;
  m.trial_id = r.get_i32();
  m.akey = r.get_u64();
  m.loss = r.get_f64();
  m.pruned = r.get_u8();
  m.prune_round = r.get_i32();
  m.checksum = r.get_u64();
  m.rounds = r.get_f64_vec();
  m.wall_s = r.get_f64();
  finish_decode(r, "trial_result");
  return m;
}

std::string encode_error(const ErrorMsg& m) {
  BinaryWriter w;
  w.put_string(m.message);
  return w.take();
}

ErrorMsg decode_error(const std::string& body) {
  BinaryReader r(body);
  ErrorMsg m;
  m.message = r.get_string();
  finish_decode(r, "error");
  return m;
}

void send_msg(int fd, MsgType type, const std::string& body) {
  write_frame_fd(fd, static_cast<std::uint32_t>(type), body);
}

}  // namespace puffer
