#include "orchestrate/orchestrator.h"

#include <sys/stat.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/logger.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "io/checkpoint.h"

namespace puffer {

namespace {

constexpr const char* kTag = "orchestrate";

// mkdir -p for the checkpoint directory (relative or absolute).
void ensure_dir(const std::string& path) {
  if (path.empty()) return;
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) return;
  if (errno == ENOENT) {
    const std::size_t slash = path.find_last_of('/');
    if (slash != std::string::npos && slash > 0) {
      ensure_dir(path.substr(0, slash));
      if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) return;
    }
  }
  throw CheckpointError("cannot create directory " + path + ": " +
                        std::strerror(errno));
}

}  // namespace

OrchestratorConfig validate_orchestrator_config(OrchestratorConfig config) {
  if (config.trials < 1) {
    throw std::invalid_argument("OrchestratorConfig.trials must be positive");
  }
  if (config.concurrency < 1) {
    throw std::invalid_argument(
        "OrchestratorConfig.concurrency must be positive");
  }
  if (!(config.fork_overflow > 0.0) || !(config.fork_overflow <= 1.0)) {
    throw std::invalid_argument(
        "OrchestratorConfig.fork_overflow must lie in (0, 1]");
  }
  if (config.resume && config.journal_path.empty()) {
    throw std::invalid_argument(
        "OrchestratorConfig.resume requires a journal_path");
  }
  config.prune = validate_prune_config(config.prune);
  // The loop mirrors explore_parameters(), so reuse its validation for
  // the shared knobs (trials/early_stop/batch_size/TPE).
  ExploreConfig ec;
  ec.time_limit = config.trials;
  ec.early_stop = config.early_stop;
  ec.batch_size = config.batch_size;
  ec.tpe = config.tpe;
  ec.seed = config.seed;
  validate_explore_config(ec);
  return config;
}

TrialOrchestrator::TrialOrchestrator(Design& design,
                                     std::vector<ParamSpec> specs,
                                     ExperimentConfig base,
                                     OrchestratorConfig config)
    : design_(design),
      specs_(std::move(specs)),
      base_(std::move(base)),
      config_(validate_orchestrator_config(std::move(config))) {}

std::uint64_t TrialOrchestrator::space_key() const {
  BinaryWriter w;
  w.put_u64(static_cast<std::uint64_t>(specs_.size()));
  for (const ParamSpec& s : specs_) {
    w.put_string(s.name);
    w.put_i32(static_cast<std::int32_t>(s.kind));
    w.put_f64(s.lo);
    w.put_f64(s.hi);
  }
  w.put_u64(config_.seed);
  w.put_i32(config_.trials);
  w.put_i32(config_.batch_size);
  w.put_i32(config_.early_stop);
  w.put_f64(config_.fork_overflow);
  w.put_f64(config_.tpe.gamma);
  w.put_i32(config_.tpe.n_candidates);
  w.put_i32(config_.tpe.n_startup);
  w.put_u8(config_.prune.enabled ? 1 : 0);
  w.put_i32(config_.prune.grace_rounds);
  w.put_i32(config_.prune.min_history);
  w.put_f64(config_.prune.quantile);
  w.put_f64(config_.prune.penalty);
  return fnv1a_bytes(w.buffer().data(), w.buffer().size());
}

LocalTrialExecutor::LocalTrialExecutor(int concurrency)
    : concurrency_(concurrency) {}

void LocalTrialExecutor::run_batch(const std::vector<TrialTask>& tasks,
                                   const std::vector<int>& to_run,
                                   std::vector<TrialResult>* results) {
  if (to_run.empty()) return;
  const auto run_one = [&](int i) {
    (*results)[static_cast<std::size_t>(i)] =
        run_trial_session(*tasks[static_cast<std::size_t>(i)].design,
                          tasks[static_cast<std::size_t>(i)]);
  };
  if (to_run.size() == 1 || concurrency_ == 1) {
    for (const int i : to_run) run_one(i);
    return;
  }
  // K runner threads pull candidate indices from a shared counter; the
  // schedule is timing-dependent but only moves *where* a session runs,
  // never what it computes.
  std::atomic<std::size_t> next{0};
  std::mutex err_mutex;
  std::exception_ptr err;
  const int workers =
      std::min(concurrency_, static_cast<int>(to_run.size()));
  std::vector<std::thread> runners;
  runners.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    runners.emplace_back([&] {
      for (;;) {
        const std::size_t k = next.fetch_add(1);
        if (k >= to_run.size()) return;
        try {
          run_one(to_run[k]);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(err_mutex);
          if (!err) err = std::current_exception();
          return;
        }
      }
    });
  }
  for (std::thread& t : runners) t.join();
  if (err) std::rethrow_exception(err);
}

OrchestrationResult TrialOrchestrator::run() {
  LocalTrialExecutor executor(config_.concurrency);
  return run(executor);
}

OrchestrationResult TrialOrchestrator::run(TrialExecutor& executor) {
  OrchestrationResult result;
  result.best_loss = std::numeric_limits<double>::max();

  // One flow instance serves the whole orchestration: it computes the
  // prefix key, runs the shared prefix, and keeps the warm RSMT cache.
  // Sessions never touch it (each builds its own flow on a private
  // design copy).
  PufferFlow prefix_flow(design_, base_.puffer);
  const std::uint64_t dkey = design_structure_key(design_);
  const std::uint64_t pkey = prefix_flow.prefix_key(config_.fork_overflow);
  const std::uint64_t skey = space_key();

  // --- journal replay ----------------------------------------------------
  std::unordered_map<int, JournalRecord> completed;
  std::unique_ptr<TrialJournal> journal;
  if (!config_.journal_path.empty()) {
    bool have_header = false;
    if (config_.resume) {
      const std::vector<JournalRecord> records =
          TrialJournal::load(config_.journal_path);
      if (!records.empty()) {
        const JournalRecord& h = records.front();
        if (h.type != JournalRecord::Type::kHeader || h.design_key != dkey ||
            h.prefix_key != pkey || h.space_key != skey ||
            h.seed != config_.seed) {
          throw CheckpointError(
              "journal: header mismatch (different design, parameter space "
              "or seed) -- refusing to resume from " + config_.journal_path);
        }
        have_header = true;
        for (const JournalRecord& rec : records) {
          if (rec.type == JournalRecord::Type::kTrialComplete) {
            completed[rec.trial] = rec;
          }
        }
        PUFFER_LOG_INFO(kTag, "resuming: %zu completed trials in journal %s",
                        completed.size(), config_.journal_path.c_str());
      }
    } else {
      // Fresh run: a stale journal would poison a later resume.
      std::remove(config_.journal_path.c_str());
    }
    journal = std::make_unique<TrialJournal>(config_.journal_path);
    if (!have_header) {
      JournalRecord h;
      h.type = JournalRecord::Type::kHeader;
      h.design_key = dkey;
      h.prefix_key = pkey;
      h.space_key = skey;
      h.seed = config_.seed;
      h.trials = config_.trials;
      h.batch_size = config_.batch_size;
      journal->append(h);
    }
  }

  // --- shared prefix: restore the checkpoint or run and save it ----------
  FlowSnapshot snap;
  Timer prefix_timer;
  bool restored = false;
  const std::string ckpt_path =
      config_.checkpoint_dir.empty() ? std::string()
                                     : config_.checkpoint_dir + "/prefix.ckpt";
  if (config_.resume && !ckpt_path.empty()) {
    try {
      Timer t;
      FlowSnapshot loaded = load_snapshot(ckpt_path);
      if (loaded.design_key == dkey && loaded.prefix_key == pkey) {
        snap = std::move(loaded);
        restored = true;
        result.stats.checkpoint_restore_s += t.elapsed_seconds();
        PUFFER_LOG_INFO(kTag, "restored prefix checkpoint %s (%.3f s)",
                        ckpt_path.c_str(), result.stats.checkpoint_restore_s);
      }
    } catch (const CheckpointError&) {
      // Missing or corrupt checkpoint: rebuild it below.
    }
  }
  if (!restored) {
    prefix_flow.run_prefix(config_.fork_overflow, RngStream(config_.seed),
                           &snap);
    if (!ckpt_path.empty()) {
      ensure_dir(config_.checkpoint_dir);
      Timer t;
      save_snapshot(ckpt_path, snap);
      result.stats.checkpoint_save_s += t.elapsed_seconds();
      if (journal) {
        JournalRecord c;
        c.type = JournalRecord::Type::kCheckpoint;
        c.path = ckpt_path;
        c.prefix_key = pkey;
        journal->append(c);
      }
    }
  }
  result.stats.prefix_s = prefix_timer.elapsed_seconds();

  TrialRunContext ctx;
  ctx.design = &design_;
  ctx.base = &base_;
  ctx.snapshot = &snap;
  ctx.design_key = dkey;
  ctx.prefix_key = pkey;
  ctx.space_key = skey;
  ctx.seed = config_.seed;
  executor.prepare(ctx);

  // --- concurrent TPE loop ------------------------------------------------
  // Each local session leases an equal share of the worker budget; the
  // owning runner thread always counts as one worker, so K sessions on an
  // N-thread budget never exceed N workers in total. (Remote workers
  // size their own leases.)
  const int lease_want =
      std::max(1, par::num_threads() / config_.concurrency);

  TpeSampler sampler(specs_, config_.tpe, config_.seed);
  PruneThresholds accum(config_.prune);
  int tc = 0;   // folded evaluations
  int npc = 0;  // non-improving streak
  Timer trials_timer;
  double busy_s = 0.0;

  while (tc < config_.trials && npc < config_.early_stop) {
    // Suggest the statistical batch sequentially: the sampler's RNG
    // advances on this thread only, so the candidate sequence -- and
    // with it the resume replay -- is deterministic for any (K,
    // PUFFER_THREADS).
    const int want = std::min(config_.batch_size, config_.trials - tc);
    std::vector<Assignment> xs(static_cast<std::size_t>(want));
    for (int i = 0; i < want; ++i) {
      xs[static_cast<std::size_t>(i)] = sampler.suggest(result.observations);
    }
    // Every session of this batch prunes against the thresholds frozen
    // here, regardless of scheduling order.
    const PruneThresholds frozen = accum;
    const PruneThresholds* pruner =
        frozen.config().enabled ? &frozen : nullptr;

    std::vector<TrialTask> tasks(static_cast<std::size_t>(want));
    std::vector<TrialResult> results(static_cast<std::size_t>(want));
    std::vector<int> to_run;
    for (int i = 0; i < want; ++i) {
      const int tid = tc + i;
      const std::uint64_t akey = assignment_key(xs[static_cast<std::size_t>(i)]);
      TrialTask& task = tasks[static_cast<std::size_t>(i)];
      task.trial_id = tid;
      task.assignment = xs[static_cast<std::size_t>(i)];
      task.design = &design_;
      task.base = &base_;
      task.snapshot = &snap;
      task.pruner = pruner;
      task.lease_want = lease_want;
      const auto it = completed.find(tid);
      if (it != completed.end() && it->second.akey == akey) {
        TrialResult& r = results[static_cast<std::size_t>(i)];
        r.trial_id = tid;
        r.loss = it->second.loss;
        r.pruned = it->second.pruned;
        r.prune_round = it->second.prune_round;
        r.checksum = it->second.checksum;
        r.rounds = it->second.rounds;
        ++result.stats.trials_resumed;
      } else {
        to_run.push_back(i);
      }
    }

    if (journal) {
      for (const int i : to_run) {
        JournalRecord s;
        s.type = JournalRecord::Type::kTrialStart;
        s.trial = tc + i;
        s.akey = assignment_key(xs[static_cast<std::size_t>(i)]);
        journal->append(s);
      }
    }

    if (!to_run.empty()) executor.run_batch(tasks, to_run, &results);

    if (journal) {
      // Completion records in candidate order, so the journal content is
      // deterministic too (not just its replay).
      for (const int i : to_run) {
        const TrialResult& r = results[static_cast<std::size_t>(i)];
        JournalRecord c;
        c.type = JournalRecord::Type::kTrialComplete;
        c.trial = r.trial_id;
        c.akey = assignment_key(xs[static_cast<std::size_t>(i)]);
        c.loss = r.loss;
        c.pruned = r.pruned;
        c.prune_round = r.prune_round;
        c.checksum = r.checksum;
        c.rounds = r.rounds;
        journal->append(c);
      }
    }

    // Fold in candidate order, mirroring explore_parameters() exactly:
    // the loop state (best, npc, tc) updates as if the candidates had
    // been evaluated one by one.
    for (int i = 0; i < want && npc < config_.early_stop; ++i) {
      const TrialResult& r = results[static_cast<std::size_t>(i)];
      Observation o;
      o.x = xs[static_cast<std::size_t>(i)];
      o.loss = r.loss;
      result.observations.push_back(std::move(o));
      accum.observe(r.rounds);
      busy_s += r.wall_s;
      if (r.pruned) {
        ++result.stats.trials_pruned;
      } else {
        ++result.stats.trials_run;
      }
      if (r.loss < result.best_loss) {
        result.best_loss = r.loss;
        result.best = xs[static_cast<std::size_t>(i)];
        result.best_trial = r.trial_id;
        result.best_checksum = r.checksum;
        if (r.metrics_valid) {
          result.best_metrics_valid = true;
          result.best_flow = r.flow;
          result.best_route = r.route;
        } else {
          result.best_metrics_valid = false;
        }
        npc = 0;
      }
      ++tc;
      ++npc;
    }
    PUFFER_LOG_INFO(kTag,
                    "batch done: %d/%d trials folded, best loss %.5g "
                    "(trial %d), %d pruned, %d resumed",
                    tc, config_.trials, result.best_loss, result.best_trial,
                    result.stats.trials_pruned, result.stats.trials_resumed);
  }

  result.trials_evaluated = tc;
  result.early_stopped = npc >= config_.early_stop;
  result.stats.trials_s = trials_timer.elapsed_seconds();
  const double denom = result.stats.trials_s *
                       static_cast<double>(std::max(1, executor.slots()));
  result.stats.scheduler_utilization =
      denom > 0.0 ? std::min(1.0, busy_s / denom) : 0.0;

  if (journal) {
    JournalRecord e;
    e.type = JournalRecord::Type::kExploreComplete;
    e.best_trial = result.best_trial;
    e.best_loss = result.best_loss;
    e.best_checksum = result.best_checksum;
    journal->append(e);
  }
  // Mirror the stage metrics onto the best trial's FlowMetrics so the
  // experiment CSV carries them (valid or not, the struct is returned).
  result.best_flow.orchestrator = result.stats;
  log_flow_stage_metrics(design_.name, "orchestrated", result.best_flow);
  return result;
}

}  // namespace puffer
