// Successive-halving-style early-stop pruning for exploration trials.
//
// Every trial emits one estimated-overflow value per padding round (the
// rung metrics in FlowMetrics::round_est_overflow). The pruner keeps, per
// rung, the values of all trials folded so far and stops a running trial
// whose value at some rung is worse than the configured quantile of the
// history at that rung (quantile = 0.5 is the classic median rule).
//
// Determinism contract: the orchestrator freezes a copy of the pruner at
// each statistical-batch boundary, so every trial of a batch -- however
// it is scheduled -- sees exactly the thresholds derived from the trials
// folded *before* the batch. A pruned trial's loss is the deterministic
// penalty_loss() of its prune-rung value, so the TPE observation set is a
// pure function of the candidate sequence.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace puffer {

struct PruneConfig {
  bool enabled = false;
  // Rounds (0-based rung indices) never pruned, so every trial produces
  // at least this much of a trail.
  int grace_rounds = 2;
  // Minimum number of folded trails reaching a rung before its threshold
  // exists; below this every trial passes.
  int min_history = 4;
  // A trial is pruned when its rung value exceeds this quantile of the
  // rung history (0.5 = median rule).
  double quantile = 0.5;
  // Pruned-trial loss = penalty + the overflow at the prune rung: far
  // worse than any completed trial, but still ordered so TPE learns
  // which pruned strategies were least bad.
  double penalty = 1000.0;
};

// Throws std::invalid_argument on a quantile outside (0, 1), negative
// grace_rounds, min_history < 2, or a non-finite/negative penalty.
PruneConfig validate_prune_config(PruneConfig config);

class PruneThresholds {
 public:
  explicit PruneThresholds(PruneConfig config);

  // Folds one finished trial's per-rung trail (complete or partial --
  // pruned trials contribute the rungs they reached).
  void observe(const std::vector<double>& trail);

  // Frozen decision: should a trial whose estimated overflow at `round`
  // is `value` stop? Thread-safe on a const instance.
  bool should_prune(int round, double value) const;

  // Deterministic folded loss for a trial pruned at `value`.
  double penalty_loss(double value) const { return config_.penalty + value; }

  int trails_observed() const { return trails_; }
  const PruneConfig& config() const { return config_; }

 private:
  friend std::string encode_prune_thresholds(const PruneThresholds& t);
  friend PruneThresholds decode_prune_thresholds(const std::string& blob);

  PruneConfig config_;
  std::vector<std::vector<double>> rungs_;  // per round: folded values
  int trails_ = 0;
};

// Wire codec for a frozen thresholds instance (config + rung history +
// trail count, doubles bit-exact), so a remote worker prunes against
// exactly the batch-frozen state the coordinator froze. decode throws
// CheckpointError on malformed input.
std::string encode_prune_thresholds(const PruneThresholds& t);
PruneThresholds decode_prune_thresholds(const std::string& blob);

}  // namespace puffer
