#include "orchestrate/trial_journal.h"

#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <cstdlib>
#include <cstring>

#include "io/checkpoint.h"

namespace puffer {
namespace {

constexpr int kJournalVersion = 1;

std::string hex_u64(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}

std::uint64_t double_bits(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double bits_double(std::uint64_t bits) {
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

// --- minimal flat-object JSON field extraction ---------------------------
// The journal only ever parses lines it wrote itself: one flat object per
// line, keys unique, strings without escapes. A full JSON parser would be
// dead weight; these helpers fail (return false) on anything unexpected,
// which the tolerant loader treats as a torn record.

bool find_raw(const std::string& line, const std::string& key,
              std::string* out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  std::size_t p = at + needle.size();
  while (p < line.size() && line[p] == ' ') ++p;
  if (p >= line.size()) return false;
  if (line[p] == '"') {
    const std::size_t end = line.find('"', p + 1);
    if (end == std::string::npos) return false;
    *out = line.substr(p + 1, end - p - 1);
    return true;
  }
  std::size_t end = p;
  while (end < line.size() && line[end] != ',' && line[end] != '}' &&
         line[end] != ']') {
    ++end;
  }
  if (end == line.size()) return false;
  *out = line.substr(p, end - p);
  return true;
}

bool get_hex(const std::string& line, const std::string& key,
             std::uint64_t* out) {
  std::string raw;
  if (!find_raw(line, key, &raw) || raw.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const std::uint64_t v = std::strtoull(raw.c_str(), &end, 16);
  if (errno != 0 || end == raw.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

bool get_int(const std::string& line, const std::string& key, int* out) {
  std::string raw;
  if (!find_raw(line, key, &raw) || raw.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(raw.c_str(), &end, 10);
  if (errno != 0 || end == raw.c_str() || *end != '\0') return false;
  *out = static_cast<int>(v);
  return true;
}

bool get_string(const std::string& line, const std::string& key,
                std::string* out) {
  return find_raw(line, key, out);
}

// Parses "rounds":["<hex>","<hex>",...] (possibly empty).
bool get_rounds(const std::string& line, std::vector<double>* out) {
  const std::string needle = "\"rounds\":[";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  std::size_t p = at + needle.size();
  out->clear();
  while (p < line.size() && line[p] != ']') {
    if (line[p] == ',' || line[p] == ' ') {
      ++p;
      continue;
    }
    if (line[p] != '"') return false;
    const std::size_t end = line.find('"', p + 1);
    if (end == std::string::npos) return false;
    const std::string hex = line.substr(p + 1, end - p - 1);
    char* stop = nullptr;
    errno = 0;
    const std::uint64_t bits = std::strtoull(hex.c_str(), &stop, 16);
    if (errno != 0 || stop == hex.c_str() || *stop != '\0') return false;
    out->push_back(bits_double(bits));
    p = end + 1;
  }
  return p < line.size();  // must have hit the ']'
}

}  // namespace

TrialJournal::TrialJournal(const std::string& path) : path_(path) {
  file_ = std::fopen(path.c_str(), "ab");
  if (!file_) {
    throw CheckpointError("journal: cannot open " + path + ": " +
                          std::strerror(errno));
  }
  fd_ = ::fileno(file_);
}

TrialJournal::~TrialJournal() {
  if (file_) std::fclose(file_);
}

void TrialJournal::append(const JournalRecord& rec) {
  const std::string line = encode(rec) + "\n";
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size()) {
    throw CheckpointError("journal: short write to " + path_);
  }
  if (std::fflush(file_) != 0) {
    throw CheckpointError("journal: flush failed for " + path_);
  }
  if (fd_ >= 0 && ::fsync(fd_) != 0) {
    throw CheckpointError("journal: fsync failed for " + path_ + ": " +
                          std::strerror(errno));
  }
}

std::string TrialJournal::encode(const JournalRecord& rec) {
  char buf[256];
  std::string s;
  switch (rec.type) {
    case JournalRecord::Type::kHeader:
      std::snprintf(buf, sizeof(buf),
                    "{\"type\":\"header\",\"version\":%d,\"design_key\":"
                    "\"%s\",\"prefix_key\":\"%s\",\"space_key\":\"%s\","
                    "\"seed\":\"%s\",\"trials\":%d,\"batch_size\":%d}",
                    kJournalVersion, hex_u64(rec.design_key).c_str(),
                    hex_u64(rec.prefix_key).c_str(),
                    hex_u64(rec.space_key).c_str(), hex_u64(rec.seed).c_str(),
                    rec.trials, rec.batch_size);
      s = buf;
      break;
    case JournalRecord::Type::kCheckpoint:
      s = "{\"type\":\"checkpoint\",\"path\":\"" + rec.path +
          "\",\"prefix_key\":\"" + hex_u64(rec.prefix_key) + "\"}";
      break;
    case JournalRecord::Type::kTrialStart:
      std::snprintf(buf, sizeof(buf),
                    "{\"type\":\"trial_start\",\"trial\":%d,\"akey\":\"%s\"}",
                    rec.trial, hex_u64(rec.akey).c_str());
      s = buf;
      break;
    case JournalRecord::Type::kTrialComplete: {
      std::snprintf(
          buf, sizeof(buf),
          "{\"type\":\"trial_complete\",\"trial\":%d,\"akey\":\"%s\","
          "\"loss_bits\":\"%s\",\"loss\":%.6g,\"pruned\":%d,"
          "\"prune_round\":%d,\"checksum\":\"%s\",\"rounds\":[",
          rec.trial, hex_u64(rec.akey).c_str(),
          hex_u64(double_bits(rec.loss)).c_str(), rec.loss,
          rec.pruned ? 1 : 0, rec.prune_round, hex_u64(rec.checksum).c_str());
      s = buf;
      for (std::size_t i = 0; i < rec.rounds.size(); ++i) {
        if (i > 0) s += ",";
        s += "\"" + hex_u64(double_bits(rec.rounds[i])) + "\"";
      }
      s += "]}";
      break;
    }
    case JournalRecord::Type::kExploreComplete:
      std::snprintf(buf, sizeof(buf),
                    "{\"type\":\"explore_complete\",\"best_trial\":%d,"
                    "\"best_loss_bits\":\"%s\",\"best_loss\":%.6g,"
                    "\"best_checksum\":\"%s\"}",
                    rec.best_trial,
                    hex_u64(double_bits(rec.best_loss)).c_str(), rec.best_loss,
                    hex_u64(rec.best_checksum).c_str());
      s = buf;
      break;
  }
  return s;
}

bool TrialJournal::decode(const std::string& line, JournalRecord* out) {
  if (line.empty() || line.front() != '{' || line.back() != '}') return false;
  std::string type;
  if (!get_string(line, "type", &type)) return false;
  JournalRecord rec;
  if (type == "header") {
    rec.type = JournalRecord::Type::kHeader;
    int version = 0;
    if (!get_int(line, "version", &version) || version != kJournalVersion) {
      return false;
    }
    if (!get_hex(line, "design_key", &rec.design_key)) return false;
    if (!get_hex(line, "prefix_key", &rec.prefix_key)) return false;
    if (!get_hex(line, "space_key", &rec.space_key)) return false;
    if (!get_hex(line, "seed", &rec.seed)) return false;
    if (!get_int(line, "trials", &rec.trials)) return false;
    if (!get_int(line, "batch_size", &rec.batch_size)) return false;
  } else if (type == "checkpoint") {
    rec.type = JournalRecord::Type::kCheckpoint;
    if (!get_string(line, "path", &rec.path)) return false;
    if (!get_hex(line, "prefix_key", &rec.prefix_key)) return false;
  } else if (type == "trial_start") {
    rec.type = JournalRecord::Type::kTrialStart;
    if (!get_int(line, "trial", &rec.trial)) return false;
    if (!get_hex(line, "akey", &rec.akey)) return false;
  } else if (type == "trial_complete") {
    rec.type = JournalRecord::Type::kTrialComplete;
    if (!get_int(line, "trial", &rec.trial)) return false;
    if (!get_hex(line, "akey", &rec.akey)) return false;
    std::uint64_t bits = 0;
    if (!get_hex(line, "loss_bits", &bits)) return false;
    rec.loss = bits_double(bits);
    int pruned = 0;
    if (!get_int(line, "pruned", &pruned)) return false;
    rec.pruned = pruned != 0;
    if (!get_int(line, "prune_round", &rec.prune_round)) return false;
    if (!get_hex(line, "checksum", &rec.checksum)) return false;
    if (!get_rounds(line, &rec.rounds)) return false;
  } else if (type == "explore_complete") {
    rec.type = JournalRecord::Type::kExploreComplete;
    if (!get_int(line, "best_trial", &rec.best_trial)) return false;
    std::uint64_t bits = 0;
    if (!get_hex(line, "best_loss_bits", &bits)) return false;
    rec.best_loss = bits_double(bits);
    if (!get_hex(line, "best_checksum", &rec.best_checksum)) return false;
  } else {
    return false;
  }
  *out = rec;
  return true;
}

std::vector<JournalRecord> TrialJournal::load(const std::string& path) {
  std::vector<JournalRecord> records;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return records;
  std::string data;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) data.append(buf, n);
  std::fclose(f);

  std::size_t pos = 0;
  while (pos < data.size()) {
    std::size_t nl = data.find('\n', pos);
    const bool torn = nl == std::string::npos;
    const std::string line =
        torn ? data.substr(pos) : data.substr(pos, nl - pos);
    JournalRecord rec;
    if (!decode(line, &rec)) break;  // torn/corrupt: drop this and the rest
    records.push_back(std::move(rec));
    if (torn) break;
    pos = nl + 1;
  }
  return records;
}

}  // namespace puffer
