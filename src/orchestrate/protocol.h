// Coordinator/worker wire protocol for distributed trial orchestration.
//
// Messages ride the length-prefixed frames of io/checkpoint.h
// (write_frame_fd / read_frame_fd: magic, wire version, type, body,
// FNV-1a trailer) over a Unix-domain or TCP socket; message bodies are
// encoded with the same BinaryWriter/Reader codec as the checkpoint
// files, so every double crosses the wire as its IEEE-754 bit pattern
// and results fold bit-identically to an in-process run.
//
// Handshake and lifecycle (see docs/architecture.md for the full table):
//
//   worker                          coordinator
//   ------                          -----------
//   Hello(design_key, cached) --->
//                             <---  HelloAck(keys, base config,
//                                            snapshot_follows)
//                             <---  Snapshot(encode_snapshot bytes)   [opt]
//                             <---  TrialAssign(trial, akey, x, pruner)
//   TrialResult(...)          --->
//                ... more assignments ...
//                             <---  Shutdown
//
// Either side may send Error(message) and close. A worker that dies
// mid-trial is detected by EOF/write failure on its socket; the
// coordinator requeues the trial for the surviving workers.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "io/checkpoint.h"
#include "io/net.h"

namespace puffer {

// Protocol (message-schema) version, checked in Hello/HelloAck on top of
// the per-frame wire version.
constexpr std::uint32_t kOrchProtocolVersion = 1;

enum class MsgType : std::uint32_t {
  kHello = 1,
  kHelloAck = 2,
  kSnapshot = 3,
  kTrialAssign = 4,
  kTrialResult = 5,
  kShutdown = 6,
  kError = 7,
};

struct HelloMsg {
  std::uint32_t protocol_version = kOrchProtocolVersion;
  // Structure key of the design the worker loaded; the coordinator
  // refuses workers holding a different design.
  std::uint64_t design_key = 0;
  // (design_key, prefix_key) pairs of snapshots the worker already holds
  // in its cache -- a matching pair skips the Snapshot message.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> cached;
  std::string worker_name;
};

struct HelloAckMsg {
  std::uint32_t protocol_version = kOrchProtocolVersion;
  std::uint64_t design_key = 0;
  std::uint64_t prefix_key = 0;
  std::uint64_t space_key = 0;
  std::uint64_t seed = 0;
  // Strategy-relevant base PufferConfig as config_io text; the worker
  // applies it over its binary defaults so both sides evaluate trials
  // from the same base strategy.
  std::string base_config_text;
  // 0 = the worker's cache already holds (design_key, prefix_key); no
  // Snapshot message follows.
  std::uint8_t snapshot_follows = 1;
};

struct TrialAssignMsg {
  std::int32_t trial_id = -1;
  std::uint64_t akey = 0;  // assignment_key(assignment), verified by worker
  std::vector<double> assignment;
  // Batch-frozen prune thresholds (encode_prune_thresholds), empty when
  // pruning is off.
  std::string pruner_blob;
};

struct TrialResultMsg {
  std::int32_t trial_id = -1;
  std::uint64_t akey = 0;
  double loss = 0.0;
  std::uint8_t pruned = 0;
  std::int32_t prune_round = -1;
  std::uint64_t checksum = 0;
  std::vector<double> rounds;  // per-rung overflow trail (bit-exact)
  double wall_s = 0.0;         // session wall time (utilization accounting)
};

struct ErrorMsg {
  std::string message;
};

// Body codecs. decode_* throw CheckpointError on malformed input
// (truncation, trailing bytes).
std::string encode_hello(const HelloMsg& m);
HelloMsg decode_hello(const std::string& body);
std::string encode_hello_ack(const HelloAckMsg& m);
HelloAckMsg decode_hello_ack(const std::string& body);
std::string encode_trial_assign(const TrialAssignMsg& m);
TrialAssignMsg decode_trial_assign(const std::string& body);
std::string encode_trial_result(const TrialResultMsg& m);
TrialResultMsg decode_trial_result(const std::string& body);
std::string encode_error(const ErrorMsg& m);
ErrorMsg decode_error(const std::string& body);

// Typed frame send over the stream layer.
void send_msg(int fd, MsgType type, const std::string& body);

// The socket address helpers (is_unix_address, listen_socket,
// accept_socket, connect_socket, connect_socket_retry, ignore_sigpipe)
// moved to the shared io/net.h so serve/, coordinator and worker use one
// implementation; included above for source compatibility.

}  // namespace puffer
