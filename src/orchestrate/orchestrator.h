// Trial orchestrator: concurrent strategy-exploration sessions over a
// shared post-GP checkpoint.
//
// The orchestrator runs the trial-invariant flow prefix once (initial
// placement + global placement down to the fork overflow), checkpoints
// it, then drives the TPE/SMBO loop with K concurrent sessions, each
// forking from the shared snapshot under a worker lease so the process
// thread budget is never oversubscribed. The statistical batch size B
// (how many candidates TPE suggests before seeing their losses) is a
// *separate* knob from the execution concurrency K: candidates are
// suggested sequentially, evaluated by up to K sessions, and folded in
// candidate order -- so best/best_loss/early-stop are bit-identical for
// any (K, PUFFER_THREADS).
//
// Early-stop pruning (orchestrate/pruner.h) thresholds are frozen per
// batch; a crash-safe JSONL journal (orchestrate/trial_journal.h) lets a
// killed exploration resume without repeating completed trials: the
// sampler re-suggests the identical candidate sequence and journaled
// losses (verified by assignment hash) substitute for re-evaluation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/strategy_params.h"
#include "explore/tpe.h"
#include "orchestrate/pruner.h"
#include "orchestrate/session.h"
#include "orchestrate/trial_journal.h"

namespace puffer {

struct OrchestratorConfig {
  int trials = 16;       // total trial budget (folded evaluations)
  int concurrency = 2;   // K: sessions running at once
  int batch_size = 4;    // B: TPE statistical batch (fold granularity)
  int early_stop = 1 << 20;  // non-improving streak that stops the loop
  // Fork point of the shared prefix: GP runs until density overflow
  // drops below this. Must be >= the largest padding trigger tau in the
  // explored space, so no padding round can land inside the prefix.
  double fork_overflow = 0.45;
  std::string checkpoint_dir;  // "" = keep the snapshot in memory only
  std::string journal_path;    // "" = no journal (no resume)
  // Replay the journal and reuse the on-disk checkpoint when their keys
  // match the current design/space/seed; otherwise start fresh.
  bool resume = false;
  PruneConfig prune;
  TpeConfig tpe;
  std::uint64_t seed = 1234;
};

// Throws std::invalid_argument on non-positive trials / concurrency /
// batch_size / early_stop, a fork_overflow outside (0, 1], or invalid
// prune/TPE sub-configs (validated via validate_prune_config and
// validate_explore_config).
OrchestratorConfig validate_orchestrator_config(OrchestratorConfig config);

struct OrchestrationResult {
  Assignment best;
  double best_loss = 0.0;
  int best_trial = -1;
  // Final-position checksum of the best trial (0 when the best trial was
  // pruned -- possible only when every trial was pruned).
  std::uint64_t best_checksum = 0;
  int trials_evaluated = 0;  // folded into the TPE observation set
  bool early_stopped = false;
  std::vector<Observation> observations;
  OrchestratorStageMetrics stats;
  // Flow/route metrics of the best trial -- only when it executed in
  // this process (false when the best loss was replayed from the
  // journal). stats is additionally mirrored into
  // best_flow.orchestrator either way.
  bool best_metrics_valid = false;
  FlowMetrics best_flow;
  RouteResult best_route;
};

// Everything a batch executor needs once per exploration, published
// after the shared prefix is ready and before the first batch.
struct TrialRunContext {
  const Design* design = nullptr;
  const ExperimentConfig* base = nullptr;
  const FlowSnapshot* snapshot = nullptr;
  std::uint64_t design_key = 0;
  std::uint64_t prefix_key = 0;
  std::uint64_t space_key = 0;
  std::uint64_t seed = 0;
};

// Where a batch of trials executes. The orchestrator owns *what* is
// evaluated (candidate sequence, journal, fold order); an executor owns
// only *where* -- runner threads in this process (LocalTrialExecutor) or
// worker processes over sockets (CoordinatorExecutor). Every executor
// must fill results[i] for each i in to_run with values following the
// session contract (bit-identical to run_trial_session on the same
// task), so exploration output never depends on the executor.
class TrialExecutor {
 public:
  virtual ~TrialExecutor() = default;

  // Called once, after the shared prefix snapshot exists.
  virtual void prepare(const TrialRunContext& ctx) { (void)ctx; }

  // Evaluates tasks[i] for every i in to_run into (*results)[i]. May
  // throw; the orchestrator does not catch (a lost executor aborts the
  // exploration -- the journal already holds the completed trials).
  virtual void run_batch(const std::vector<TrialTask>& tasks,
                         const std::vector<int>& to_run,
                         std::vector<TrialResult>* results) = 0;

  // Concurrent evaluation slots (sessions or workers): the denominator
  // of scheduler_utilization.
  virtual int slots() const = 0;
};

// The in-process executor: up to `concurrency` runner threads pull
// candidate indices from a shared counter, each evaluating under a
// worker lease so the process thread budget is never oversubscribed.
class LocalTrialExecutor : public TrialExecutor {
 public:
  explicit LocalTrialExecutor(int concurrency);
  void run_batch(const std::vector<TrialTask>& tasks,
                 const std::vector<int>& to_run,
                 std::vector<TrialResult>* results) override;
  int slots() const override { return concurrency_; }

 private:
  int concurrency_;
};

class TrialOrchestrator {
 public:
  // `design` is the exploration benchmark. The orchestrator runs the
  // shared prefix on it (sessions then work on private copies); its
  // final positions are NOT the best placement -- re-run the flow with
  // the best assignment to materialize one.
  TrialOrchestrator(Design& design, std::vector<ParamSpec> specs,
                    ExperimentConfig base, OrchestratorConfig config);

  // Runs with the in-process LocalTrialExecutor (config.concurrency).
  OrchestrationResult run();
  // Runs with a caller-provided executor (e.g. the socket coordinator).
  // The candidate sequence, journal and fold are identical to run() --
  // results depend only on (trials, batch_size, seed, space), never on
  // the executor.
  OrchestrationResult run(TrialExecutor& executor);

  // Stable identity of the explored problem (specs + seed + batch/trial
  // budget + prune + TPE + fork point): a journal written under a
  // different space_key is never replayed.
  std::uint64_t space_key() const;

 private:
  Design& design_;
  std::vector<ParamSpec> specs_;
  ExperimentConfig base_;
  OrchestratorConfig config_;
};

}  // namespace puffer
