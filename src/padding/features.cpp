#include "padding/features.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "common/logger.h"
#include "common/parallel.h"
#include "common/timer.h"

namespace puffer {

namespace {
constexpr const char* kTag = "features";
}

double FeatureVector::operator[](int i) const {
  switch (i) {
    case 0: return local_cg;
    case 1: return local_pin;
    case 2: return sur_cg;
    case 3: return sur_pin;
    case 4: return pin_cg;
    default: throw std::out_of_range("FeatureVector index");
  }
}

FeatureExtractor::FeatureExtractor(const Design& design, FeatureConfig config)
    : design_(design), config_(config) {}

namespace {

// Sentinel for "no candidate path" (a pin with no incident segments).
constexpr std::int64_t kNoPath = std::numeric_limits<std::int64_t>::max();

// --- shared integer primitives and final formulas ----------------------
// Both extractor paths compute identical int64 primitives (span maxima,
// window sums, per-pin path minima) and feed them through these helpers,
// so legacy-vs-fast bit-identity follows from integer equality alone.

// Minimum over candidate L and Z paths between Gcells a and b of the
// maximum quantized Cg along the path (Eq. 13 inner terms). h(x0, x1, y)
// and v(x, y0, y1) are span-maximum functors accepting unordered
// endpoints.
template <typename HSpan, typename VSpan>
std::int64_t best_path_q(int agx, int agy, int bgx, int bgy, int z_candidates,
                         const HSpan& h, const VSpan& v) {
  if (agx == bgx && agy == bgy) return h(agx, agx, agy);
  if (agy == bgy) return h(agx, bgx, agy);
  if (agx == bgx) return v(agx, agy, bgy);

  // Two L-shaped paths.
  std::int64_t best = std::max(h(agx, bgx, agy), v(bgx, agy, bgy));
  best = std::min(best, std::max(v(agx, agy, bgy), h(agx, bgx, bgy)));

  // Z-shaped paths: HVH with an intermediate column, VHV with an
  // intermediate row; sample at most z_candidates interior positions.
  const int x0 = std::min(agx, bgx), x1 = std::max(agx, bgx);
  const int y0 = std::min(agy, bgy), y1 = std::max(agy, bgy);
  const int span_x = x1 - x0, span_y = y1 - y0;
  const int nx = std::min(z_candidates, std::max(0, span_x - 1));
  for (int k = 1; k <= nx; ++k) {
    const int mid = x0 + k * span_x / (nx + 1);
    if (mid <= x0 || mid >= x1) continue;
    const std::int64_t cg =
        std::max({h(agx, mid, agy), v(mid, agy, bgy), h(mid, bgx, bgy)});
    best = std::min(best, cg);
  }
  const int ny = std::min(z_candidates, std::max(0, span_y - 1));
  for (int k = 1; k <= ny; ++k) {
    const int mid = y0 + k * span_y / (ny + 1);
    if (mid <= y0 || mid >= y1) continue;
    const std::int64_t cg =
        std::max({v(agx, agy, mid), h(agx, bgx, mid), v(bgx, mid, bgy)});
    best = std::min(best, cg);
  }
  return best;
}

// Same value as best_path_q, evaluated with candidate pruning: a
// candidate path is abandoned as soon as one of its legs reaches the
// running best, because its max then cannot lower the minimum -- the
// returned int64 is bit-identical to the exhaustive evaluation. Used by
// the fast path, where each leg is an O(1) RMQ lookup and skipping the
// remaining legs is the dominant saving; the oracle keeps the
// exhaustive order.
template <typename Pt, typename HSpan, typename VSpan>
std::int64_t best_path_q_pruned(int agx, int agy, int bgx, int bgy,
                                int z_candidates, const Pt& p, const HSpan& h,
                                const VSpan& v) {
  if (agx == bgx && agy == bgy) return p(agx, agy);
  if (agy == bgy) return h(agx, bgx, agy);
  if (agx == bgx) return v(agx, agy, bgy);

  // Every candidate path passes through both endpoint Gcells, so the
  // minimum over paths can never drop below the larger endpoint value.
  // Once the running best reaches that floor, the remaining candidates
  // cannot improve it and the search stops -- same returned bits. The
  // point lookups read the quantized map directly (L2-resident) rather
  // than paying the sparse table's scattered loads.
  const std::int64_t floor_q = std::max(p(agx, agy), p(bgx, bgy));

  std::int64_t best = std::max(h(agx, bgx, agy), v(bgx, agy, bgy));
  if (best <= floor_q) return best;
  const std::int64_t l1 = v(agx, agy, bgy);
  if (l1 < best) best = std::min(best, std::max(l1, h(agx, bgx, bgy)));
  if (best <= floor_q) return best;

  const int x0 = std::min(agx, bgx), x1 = std::max(agx, bgx);
  const int y0 = std::min(agy, bgy), y1 = std::max(agy, bgy);
  const int span_x = x1 - x0, span_y = y1 - y0;
  const int nx = std::min(z_candidates, std::max(0, span_x - 1));
  for (int k = 1; k <= nx; ++k) {
    const int mid = x0 + k * span_x / (nx + 1);
    if (mid <= x0 || mid >= x1) continue;
    const std::int64_t a = h(agx, mid, agy);
    if (a >= best) continue;
    const std::int64_t b = v(mid, agy, bgy);
    if (b >= best) continue;
    best = std::min(best, std::max({a, b, h(mid, bgx, bgy)}));
    if (best <= floor_q) return best;
  }
  const int ny = std::min(z_candidates, std::max(0, span_y - 1));
  for (int k = 1; k <= ny; ++k) {
    const int mid = y0 + k * span_y / (ny + 1);
    if (mid <= y0 || mid >= y1) continue;
    const std::int64_t a = v(agx, agy, mid);
    if (a >= best) continue;
    const std::int64_t b = h(agx, bgx, mid);
    if (b >= best) continue;
    best = std::min(best, std::max({a, b, v(bgx, mid, bgy)}));
    if (best <= floor_q) return best;
  }
  return best;
}

// Per-pin Eq. 13 minima of one net: for each pin, the minimum over its
// incident tree segments of best_path_q over the segment's endpoint
// Gcells. segs(pt, fn) invokes fn(segment_index) for each incident
// segment of tree point pt.
template <typename HSpan, typename VSpan, typename SegsOfPoint>
void pin_best_of_net(const Net& net, const RsmtTree& tree, int z_candidates,
                     const HSpan& h, const VSpan& v, const SegsOfPoint& segs,
                     const std::int32_t* pt_gx, const std::int32_t* pt_gy,
                     std::vector<std::int64_t>& out) {
  out.assign(net.pins.size(), kNoPath);
  for (std::size_t k = 0; k < net.pins.size(); ++k) {
    const int pt = tree.pin_point[k];
    if (pt < 0) continue;
    std::int64_t best = kNoPath;
    segs(pt, [&](int si) {
      const RsmtSegment& seg = tree.segments[static_cast<std::size_t>(si)];
      best = std::min(
          best, best_path_q(pt_gx[seg.a], pt_gy[seg.a], pt_gx[seg.b],
                            pt_gy[seg.b], z_candidates, h, v));
    });
    out[k] = best;
  }
}

// Signed deviation of a quantized pin density from the design-wide mean
// (in quantum units); raw value when the mean is zero (empty design).
double pd_norm_value(std::int64_t q, double mean_q) {
  return mean_q > 0.0 ? static_cast<double>(q) / mean_q - 1.0
                      : dequantize_feature(q);
}

double window_mean_cg(std::int64_t sum, int count) {
  return dequantize_feature(sum) / static_cast<double>(count);
}

double window_mean_pd(std::int64_t sum, int count, double mean_q) {
  return mean_q > 0.0 ? static_cast<double>(sum) / static_cast<double>(count) /
                            mean_q -
                            1.0
                      : dequantize_feature(sum) / static_cast<double>(count);
}

// Free sites per Gcell: Gcell area minus overlapped macro area, in site
// units, floored at one site. Accumulation order (cell index, then
// row-major Gcells) is fixed so both extractor paths produce the same
// bits.
std::vector<double> build_sites(const Design& design, const GcellGrid& grid) {
  const int nx = grid.nx(), ny = grid.ny();
  const std::size_t n =
      static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny);
  std::vector<double> macro_area(n, 0.0);
  for (const Cell& c : design.cells) {
    if (!c.is_macro()) continue;
    const Rect r = c.rect().clamped(grid.area());
    if (r.empty()) continue;
    GcellIndex lo, hi;
    grid.range_of(r, lo, hi);
    for (int gy = lo.gy; gy <= hi.gy; ++gy) {
      for (int gx = lo.gx; gx <= hi.gx; ++gx) {
        macro_area[static_cast<std::size_t>(gy) * nx + gx] +=
            grid.gcell_rect(gx, gy).overlap_area(r);
      }
    }
  }
  const double site_area = design.tech.site_width * design.tech.row_height;
  const double gcell_area = grid.gcell_w() * grid.gcell_h();
  std::vector<double> sites(n);
  for (std::size_t flat = 0; flat < n; ++flat) {
    sites[flat] = std::max(1.0, (gcell_area - macro_area[flat]) / site_area);
  }
  return sites;
}

// One cell's feature vector from the quantized maps. lo/hi is the cell's
// inclusive overlapped-Gcell range (callers compute it -- the fast path
// caches it per cell across rounds, the oracle derives it inline).
// cg_win/pd_win are inclusive int64 window-sum functors (SAT on the fast
// path, brute-force scans on the oracle); the integer max loops are
// shared outright.
template <typename CgWin, typename PdWin>
FeatureVector assemble_cell(const GcellGrid& grid, GcellIndex lo,
                            GcellIndex hi, int kernel,
                            const std::vector<std::int64_t>& qcg,
                            const std::vector<std::int64_t>& pdq,
                            double mean_q, std::int64_t pin_q,
                            const CgWin& cg_win, const PdWin& pd_win) {
  const int nx = grid.nx();
  FeatureVector f;

  // Local: max over overlapped Gcells (Eq. 9); signed values preserved.
  // The pin-density max is additionally floored at the mean (the seed
  // semantics: a zero initial accumulator under the normalized map).
  std::int64_t lcg = std::numeric_limits<std::int64_t>::min();
  std::int64_t lpin = std::numeric_limits<std::int64_t>::min();
  for (int gy = lo.gy; gy <= hi.gy; ++gy) {
    const std::size_t row = static_cast<std::size_t>(gy) * nx;
    for (int gx = lo.gx; gx <= hi.gx; ++gx) {
      lcg = std::max(lcg, qcg[row + gx]);
      lpin = std::max(lpin, pdq[row + gx]);
    }
  }
  f.local_cg = dequantize_feature(lcg);
  f.local_pin = std::max(0.0, pd_norm_value(lpin, mean_q));

  // CNN-inspired: mean over the kernel-expanded bounding box.
  const int sx0 = std::max(0, lo.gx - kernel);
  const int sx1 = std::min(grid.nx() - 1, hi.gx + kernel);
  const int sy0 = std::max(0, lo.gy - kernel);
  const int sy1 = std::min(grid.ny() - 1, hi.gy + kernel);
  const int count = (sx1 - sx0 + 1) * (sy1 - sy0 + 1);
  f.sur_cg = window_mean_cg(cg_win(sx0, sx1, sy0, sy1), count);
  f.sur_pin = window_mean_pd(pd_win(sx0, sx1, sy0, sy1), count, mean_q);

  // GNN-inspired.
  f.pin_cg = dequantize_feature(pin_q);
  return f;
}

std::uint64_t fp_mix(std::uint64_t h, std::uint64_t v) {
  // splitmix64 finalizer over the running state: one word per step
  // instead of a byte loop. These fingerprints are only ever compared
  // against each other within one process, so the mixer can favour
  // speed over any standardized byte-stream hash.
  std::uint64_t z = (h ^ v) + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t fp_bits(double d) {
  std::uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

// Content hash of one RSMT tree (points, segments, pin mapping). The
// per-net cache keys on this -- never on the estimator's topology-cache
// keys, whose quantized collisions would alias distinct trees.
std::uint64_t tree_fingerprint(const RsmtTree& t) {
  std::uint64_t h = 1469598103934665603ull;
  h = fp_mix(h, t.points.size());
  h = fp_mix(h, t.segments.size());
  for (const RsmtPoint& p : t.points) {
    h = fp_mix(h, fp_bits(p.pos.x));
    h = fp_mix(h, fp_bits(p.pos.y));
    h = fp_mix(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(p.pin)));
  }
  for (const RsmtSegment& s : t.segments) {
    h = fp_mix(h, (static_cast<std::uint64_t>(static_cast<std::uint32_t>(s.a))
                   << 32) |
                      static_cast<std::uint32_t>(s.b));
  }
  for (int pp : t.pin_point) {
    h = fp_mix(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(pp)));
  }
  return h;
}

}  // namespace

std::vector<FeatureVector> FeatureExtractor::extract(
    const CongestionResult& congestion, const std::vector<CellId>& cells) {
  Timer timer;
  ++metrics_.extracts;
  std::vector<FeatureVector> out = config_.use_legacy_extractor
                                       ? extract_legacy(congestion, cells)
                                       : extract_fast(congestion, cells);
  metrics_.feature_time_s += timer.elapsed_seconds();
  return out;
}

// --- scalar from-scratch oracle ----------------------------------------
// The pre-pipeline extractor on quantized integers: serial, stateless,
// O(span) path scans, per-round incidence rebuilds, brute-force window
// sums. Shares every integer primitive and final formula with the fast
// path, so the two are bit-identical by construction.
std::vector<FeatureVector> FeatureExtractor::extract_legacy(
    const CongestionResult& congestion, const std::vector<CellId>& cells) const {
  const RoutingMaps& maps = congestion.maps;
  const GcellGrid& grid = maps.grid;
  const int nx = grid.nx(), ny = grid.ny();
  const std::size_t n_gcells =
      static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny);

  // Quantized combined congestion.
  std::vector<std::int64_t> qcg(n_gcells);
  {
    std::size_t flat = 0;
    for (int gy = 0; gy < ny; ++gy) {
      for (int gx = 0; gx < nx; ++gx) qcg[flat++] = quantize_feature(maps.cg(gx, gy));
    }
  }

  // Quantized pin density: pins per Gcell over available sites.
  std::vector<std::int32_t> count(n_gcells, 0);
  for (const Pin& pin : design_.pins) {
    const Cell& c = design_.cells[static_cast<std::size_t>(pin.cell)];
    const GcellIndex g = grid.index_of(c.x + pin.dx, c.y + pin.dy);
    ++count[static_cast<std::size_t>(g.gy) * nx + g.gx];
  }
  const std::vector<double> sites = build_sites(design_, grid);
  std::vector<std::int64_t> pdq(n_gcells);
  std::int64_t total = 0;
  for (std::size_t flat = 0; flat < n_gcells; ++flat) {
    pdq[flat] =
        quantize_feature(static_cast<double>(count[flat]) / sites[flat]);
    total += pdq[flat];
  }
  const double mean_q =
      static_cast<double>(total) / static_cast<double>(n_gcells);

  // Per-pin congestion (GNN feature), accumulated per cell (Eq. 12).
  const auto h = [&](int x0, int x1, int y) {
    std::int64_t m = std::numeric_limits<std::int64_t>::min();
    const std::size_t row = static_cast<std::size_t>(y) * nx;
    for (int gx = std::min(x0, x1); gx <= std::max(x0, x1); ++gx) {
      m = std::max(m, qcg[row + gx]);
    }
    return m;
  };
  const auto v = [&](int x, int y0, int y1) {
    std::int64_t m = std::numeric_limits<std::int64_t>::min();
    for (int gy = std::min(y0, y1); gy <= std::max(y0, y1); ++gy) {
      m = std::max(m, qcg[static_cast<std::size_t>(gy) * nx + x]);
    }
    return m;
  };
  std::vector<std::int64_t> cell_pin_q(design_.cells.size(), 0);
  std::vector<std::int32_t> pt_gx, pt_gy;
  std::vector<std::int64_t> pin_best;
  for (std::size_t n = 0; n < design_.nets.size(); ++n) {
    const Net& net = design_.nets[n];
    const RsmtTree& tree = congestion.trees[n];
    if (tree.segments.empty()) continue;
    const auto incidence = tree.build_incidence();
    pt_gx.resize(tree.points.size());
    pt_gy.resize(tree.points.size());
    for (std::size_t pi = 0; pi < tree.points.size(); ++pi) {
      const GcellIndex g =
          grid.index_of(tree.points[pi].pos.x, tree.points[pi].pos.y);
      pt_gx[pi] = g.gx;
      pt_gy[pi] = g.gy;
    }
    const auto segs = [&](int pt, auto&& fn) {
      for (int si : incidence[static_cast<std::size_t>(pt)]) fn(si);
    };
    pin_best_of_net(net, tree, config_.z_candidates, h, v, segs, pt_gx.data(),
                    pt_gy.data(), pin_best);
    for (std::size_t k = 0; k < net.pins.size(); ++k) {
      if (pin_best[k] == kNoPath) continue;
      const Pin& pin = design_.pins[static_cast<std::size_t>(net.pins[k])];
      cell_pin_q[static_cast<std::size_t>(pin.cell)] += pin_best[k];
    }
  }

  // Assemble per-cell features with brute-force window sums.
  const auto cg_win = [&](int x0, int x1, int y0, int y1) {
    std::int64_t s = 0;
    for (int gy = y0; gy <= y1; ++gy) {
      const std::size_t row = static_cast<std::size_t>(gy) * nx;
      for (int gx = x0; gx <= x1; ++gx) s += qcg[row + gx];
    }
    return s;
  };
  const auto pd_win = [&](int x0, int x1, int y0, int y1) {
    std::int64_t s = 0;
    for (int gy = y0; gy <= y1; ++gy) {
      const std::size_t row = static_cast<std::size_t>(gy) * nx;
      for (int gx = x0; gx <= x1; ++gx) s += pdq[row + gx];
    }
    return s;
  };
  std::vector<FeatureVector> out;
  out.reserve(cells.size());
  for (CellId cid : cells) {
    const Cell& cell = design_.cells[static_cast<std::size_t>(cid)];
    GcellIndex lo, hi;
    grid.range_of(cell.rect(), lo, hi);
    out.push_back(assemble_cell(grid, lo, hi, config_.kernel_gcells, qcg, pdq,
                                mean_q,
                                cell_pin_q[static_cast<std::size_t>(cid)],
                                cg_win, pd_win));
  }
  return out;
}

// --- fast-path state management ----------------------------------------

void FeatureExtractor::allocate_state(const GcellGrid& grid) {
  grid_ = grid;
  nx_ = grid.nx();
  ny_ = grid.ny();
  const std::size_t n =
      static_cast<std::size_t>(nx_) * static_cast<std::size_t>(ny_);
  qcg_.assign(n, 0);
  pdq_.assign(n, 0);
  pdq_total_ = 0;
  sites_.assign(n, 1.0);
  pin_count_.assign(n, 0);
  pin_gcell_.assign(design_.pins.size(), 0);
  cell_x_.assign(design_.cells.size(), 0.0);
  cell_y_.assign(design_.cells.size(), 0.0);
  epoch_ = 0;
  cell_epoch_.assign(n, 0);
  row_epoch_.assign(static_cast<std::size_t>(ny_), 0);
  col_epoch_.assign(static_cast<std::size_t>(nx_), 0);
  dirty_rows_.clear();
  dirty_cols_.clear();
  nets_.assign(design_.nets.size(), NetEntry{});
  net_round_epoch_.assign(design_.nets.size(), 0);
  pin_off_.assign(design_.nets.size() + 1, 0);
  for (std::size_t n = 0; n < design_.nets.size(); ++n) {
    pin_off_[n + 1] =
        pin_off_[n] + static_cast<std::int32_t>(design_.nets[n].pins.size());
  }
  pin_slot_cell_.resize(static_cast<std::size_t>(pin_off_.back()));
  for (std::size_t n = 0; n < design_.nets.size(); ++n) {
    std::int32_t s = pin_off_[n];
    for (PinId pid : design_.nets[n].pins) {
      pin_slot_cell_[static_cast<std::size_t>(s++)] = static_cast<std::int32_t>(
          design_.pins[static_cast<std::size_t>(pid)].cell);
    }
  }
  pin_best_flat_.assign(static_cast<std::size_t>(pin_off_.back()), kNoPath);
  cell_pin_q_.assign(design_.cells.size(), 0);
  pt_base_.assign(design_.nets.size() + 1, 0);
  inc_off_base_.assign(design_.nets.size() + 1, 0);
  inc_seg_base_.assign(design_.nets.size() + 1, 0);
  for (std::size_t n = 0; n < design_.nets.size(); ++n) {
    const std::int32_t p =
        static_cast<std::int32_t>(design_.nets[n].pins.size());
    const std::int32_t cap = p <= 1 ? p : 2 * p - 2;
    pt_base_[n + 1] = pt_base_[n] + cap;
    inc_off_base_[n + 1] = inc_off_base_[n] + cap + 1;
    inc_seg_base_[n + 1] =
        inc_seg_base_[n] + (cap > 0 ? 2 * (cap - 1) : 0);
  }
  pt_gx_.assign(static_cast<std::size_t>(pt_base_.back()), 0);
  pt_gy_.assign(static_cast<std::size_t>(pt_base_.back()), 0);
  inc_off_.assign(static_cast<std::size_t>(inc_off_base_.back()), 0);
  inc_seg_.assign(static_cast<std::size_t>(inc_seg_base_.back()), 0);
  cell_glo_.assign(design_.cells.size(), GcellIndex{});
  cell_ghi_.assign(design_.cells.size(), GcellIndex{});
  const double nan = std::numeric_limits<double>::quiet_NaN();
  asm_x_.assign(design_.cells.size(), nan);
  asm_y_.assign(design_.cells.size(), nan);
  last_uid_ = 0;
  last_revision_ = 0;
  extracts_since_rebuild_ = 0;
  have_ = true;
}

void FeatureExtractor::mark_gcell(int flat, int gx, int gy) {
  cell_epoch_[static_cast<std::size_t>(flat)] = epoch_;
  if (row_epoch_[static_cast<std::size_t>(gy)] != epoch_) {
    row_epoch_[static_cast<std::size_t>(gy)] = epoch_;
    dirty_rows_.push_back(gy);
  }
  if (col_epoch_[static_cast<std::size_t>(gx)] != epoch_) {
    col_epoch_[static_cast<std::size_t>(gx)] = epoch_;
    dirty_cols_.push_back(gx);
  }
}

void FeatureExtractor::mark_all_dirty() {
  std::fill(cell_epoch_.begin(), cell_epoch_.end(), epoch_);
  std::fill(row_epoch_.begin(), row_epoch_.end(), epoch_);
  std::fill(col_epoch_.begin(), col_epoch_.end(), epoch_);
  // A full RMQ build supersedes the per-row/column rebuild lists.
  dirty_rows_.clear();
  dirty_cols_.clear();
}

// True when no Gcell inside the entry's tree bbox changed after the epoch
// its pin_best was computed at. Row/column summaries reject clean boxes
// in O(extent); only mixed boxes fall back to the cell scan.
bool FeatureExtractor::box_clean(const NetEntry& e) const {
  bool clean = true;
  for (int gy = e.by0; gy <= e.by1; ++gy) {
    if (row_epoch_[static_cast<std::size_t>(gy)] > e.epoch) {
      clean = false;
      break;
    }
  }
  if (clean) return true;
  clean = true;
  for (int gx = e.bx0; gx <= e.bx1; ++gx) {
    if (col_epoch_[static_cast<std::size_t>(gx)] > e.epoch) {
      clean = false;
      break;
    }
  }
  if (clean) return true;
  for (int gy = e.by0; gy <= e.by1; ++gy) {
    const std::size_t row = static_cast<std::size_t>(gy) * nx_;
    for (int gx = e.bx0; gx <= e.bx1; ++gx) {
      if (cell_epoch_[row + gx] > e.epoch) return false;
    }
  }
  return true;
}

std::int64_t FeatureExtractor::sync_incremental(
    const CongestionResult& congestion) {
  const RoutingMaps& maps = congestion.maps;
  std::int64_t changed = 0;

  // Quantized congestion: delta-guided when the estimator's dirty list is
  // valid and continuous with the last consumed result, else a full
  // self-diff (exact either way -- the diff is what marks).
  const CongestionDelta& d = congestion.delta;
  const bool continuous = d.valid && last_uid_ != 0 &&
                          d.source_uid == last_uid_ &&
                          d.revision == last_revision_ + 1;
  if (continuous) {
    for (std::int32_t flat : d.dirty_gcells) {
      const int gx = flat % nx_, gy = flat / nx_;
      const std::int64_t q = quantize_feature(maps.cg(gx, gy));
      if (q != qcg_[static_cast<std::size_t>(flat)]) {
        qcg_[static_cast<std::size_t>(flat)] = q;
        mark_gcell(flat, gx, gy);
        ++changed;
      }
    }
  } else {
    std::size_t flat = 0;
    for (int gy = 0; gy < ny_; ++gy) {
      for (int gx = 0; gx < nx_; ++gx, ++flat) {
        const std::int64_t q = quantize_feature(maps.cg(gx, gy));
        if (q != qcg_[flat]) {
          qcg_[flat] = q;
          mark_gcell(static_cast<int>(flat), gx, gy);
          ++changed;
        }
      }
    }
  }

  // Pin layer: moved cells re-bin their pins (exact +/-1 count updates);
  // a macro move invalidates the site map and with it every density.
  moved_cells_.clear();
  changed_pd_.clear();
  bool macro_moved = false;
  for (std::size_t ci = 0; ci < design_.cells.size(); ++ci) {
    const Cell& c = design_.cells[ci];
    if (c.x == cell_x_[ci] && c.y == cell_y_[ci]) continue;
    cell_x_[ci] = c.x;
    cell_y_[ci] = c.y;
    if (c.is_macro()) macro_moved = true;
    moved_cells_.push_back(ci);
  }
  for (std::size_t ci : moved_cells_) {
    const Cell& c = design_.cells[ci];
    for (PinId pid : c.pins) {
      const Pin& pin = design_.pins[static_cast<std::size_t>(pid)];
      const GcellIndex g = grid_.index_of(c.x + pin.dx, c.y + pin.dy);
      const std::int32_t flat =
          static_cast<std::int32_t>(g.gy) * nx_ + static_cast<std::int32_t>(g.gx);
      const std::int32_t old = pin_gcell_[static_cast<std::size_t>(pid)];
      if (flat == old) continue;
      --pin_count_[static_cast<std::size_t>(old)];
      ++pin_count_[static_cast<std::size_t>(flat)];
      pin_gcell_[static_cast<std::size_t>(pid)] = flat;
      changed_pd_.push_back(old);
      changed_pd_.push_back(flat);
    }
  }
  if (macro_moved) {
    sites_ = build_sites(design_, grid_);
    std::int64_t total = 0;
    for (std::size_t flat = 0; flat < pdq_.size(); ++flat) {
      pdq_[flat] = quantize_feature(static_cast<double>(pin_count_[flat]) /
                                    sites_[flat]);
      total += pdq_[flat];
    }
    pdq_total_ = total;
  } else if (!changed_pd_.empty()) {
    std::sort(changed_pd_.begin(), changed_pd_.end());
    changed_pd_.erase(std::unique(changed_pd_.begin(), changed_pd_.end()),
                      changed_pd_.end());
    for (std::int32_t flat : changed_pd_) {
      const std::int64_t q = quantize_feature(
          static_cast<double>(pin_count_[static_cast<std::size_t>(flat)]) /
          sites_[static_cast<std::size_t>(flat)]);
      pdq_total_ += q - pdq_[static_cast<std::size_t>(flat)];
      pdq_[static_cast<std::size_t>(flat)] = q;
    }
  }
  return changed;
}

bool FeatureExtractor::sync_full(const CongestionResult& congestion,
                                 bool verify) {
  const RoutingMaps& maps = congestion.maps;
  const std::size_t n_gcells = qcg_.size();

  std::vector<std::int64_t> fresh_qcg(n_gcells);
  {
    std::size_t flat = 0;
    for (int gy = 0; gy < ny_; ++gy) {
      for (int gx = 0; gx < nx_; ++gx) {
        fresh_qcg[flat++] = quantize_feature(maps.cg(gx, gy));
      }
    }
  }
  std::vector<std::int32_t> fresh_gcell(design_.pins.size());
  std::vector<std::int32_t> fresh_count(n_gcells, 0);
  for (std::size_t p = 0; p < design_.pins.size(); ++p) {
    const Pin& pin = design_.pins[p];
    const Cell& c = design_.cells[static_cast<std::size_t>(pin.cell)];
    const GcellIndex g = grid_.index_of(c.x + pin.dx, c.y + pin.dy);
    const std::int32_t flat =
        static_cast<std::int32_t>(g.gy) * nx_ + static_cast<std::int32_t>(g.gx);
    fresh_gcell[p] = flat;
    ++fresh_count[static_cast<std::size_t>(flat)];
  }
  std::vector<double> fresh_sites = build_sites(design_, grid_);
  std::vector<std::int64_t> fresh_pdq(n_gcells);
  std::int64_t fresh_total = 0;
  for (std::size_t flat = 0; flat < n_gcells; ++flat) {
    fresh_pdq[flat] = quantize_feature(
        static_cast<double>(fresh_count[flat]) / fresh_sites[flat]);
    fresh_total += fresh_pdq[flat];
  }

  bool adopt = true;
  if (verify) {
    // The incrementally maintained state was advanced first (the
    // IncrementalLegalizer / estimator verify-rebuild ordering); a
    // mismatch here is drift and the fresh maps win.
    const bool same = fresh_qcg == qcg_ && fresh_pdq == pdq_ &&
                      fresh_count == pin_count_ && fresh_gcell == pin_gcell_ &&
                      fresh_sites == sites_ && fresh_total == pdq_total_;
    if (same) {
      adopt = false;
    } else {
      ++metrics_.drift_count;
      PUFFER_LOG_ERROR(kTag,
                       "feature maps drifted from full rebuild; adopting "
                       "the from-scratch maps");
    }
  }
  if (adopt) {
    qcg_.swap(fresh_qcg);
    pdq_.swap(fresh_pdq);
    pin_count_.swap(fresh_count);
    pin_gcell_.swap(fresh_gcell);
    sites_.swap(fresh_sites);
    pdq_total_ = fresh_total;
    for (std::size_t ci = 0; ci < design_.cells.size(); ++ci) {
      cell_x_[ci] = design_.cells[ci].x;
      cell_y_[ci] = design_.cells[ci].y;
    }
  }
  return adopt;
}

void FeatureExtractor::refresh_net_topology(std::size_t n,
                                            const RsmtTree& tree,
                                            NetEntry& e) {
  const std::size_t npts = tree.points.size();
  const std::size_t cap =
      static_cast<std::size_t>(pt_base_[n + 1] - pt_base_[n]);
  const std::size_t max_segs = npts > 0 ? npts - 1 : 0;
  if (npts > cap || tree.segments.size() > max_segs) {
    // A tree violating the 2p-2 Steiner bound (or with more than npts-1
    // segments) cannot fit its design-static arena slots.
    throw std::logic_error("FeatureExtractor: RSMT tree exceeds arena bound");
  }
  std::int32_t* pgx = pt_gx_.data() + static_cast<std::size_t>(pt_base_[n]);
  std::int32_t* pgy = pt_gy_.data() + static_cast<std::size_t>(pt_base_[n]);
  int bx0 = nx_ - 1, bx1 = 0, by0 = ny_ - 1, by1 = 0;
  for (std::size_t pi = 0; pi < npts; ++pi) {
    const GcellIndex g =
        grid_.index_of(tree.points[pi].pos.x, tree.points[pi].pos.y);
    pgx[pi] = g.gx;
    pgy[pi] = g.gy;
    bx0 = std::min(bx0, g.gx);
    bx1 = std::max(bx1, g.gx);
    by0 = std::min(by0, g.gy);
    by1 = std::max(by1, g.gy);
  }
  e.bx0 = bx0;
  e.bx1 = bx1;
  e.by0 = by0;
  e.by1 = by1;
  // CSR point -> incident segments (the cached build_incidence()). The
  // offsets double as fill cursors, then shift back into place -- no
  // per-call cursor allocation.
  std::int32_t* off =
      inc_off_.data() + static_cast<std::size_t>(inc_off_base_[n]);
  std::int32_t* seg =
      inc_seg_.data() + static_cast<std::size_t>(inc_seg_base_[n]);
  std::fill(off, off + npts + 1, 0);
  for (const RsmtSegment& s : tree.segments) {
    ++off[static_cast<std::size_t>(s.a) + 1];
    ++off[static_cast<std::size_t>(s.b) + 1];
  }
  for (std::size_t i = 1; i <= npts; ++i) off[i] += off[i - 1];
  for (std::size_t si = 0; si < tree.segments.size(); ++si) {
    const RsmtSegment& s = tree.segments[si];
    seg[static_cast<std::size_t>(off[static_cast<std::size_t>(s.a)]++)] =
        static_cast<std::int32_t>(si);
    seg[static_cast<std::size_t>(off[static_cast<std::size_t>(s.b)]++)] =
        static_cast<std::int32_t>(si);
  }
  // off[i] now holds end(i) == start(i+1); shift down to restore offsets.
  for (std::size_t i = npts; i >= 1; --i) off[i] = off[i - 1];
  off[0] = 0;
  e.has_tree = true;
  e.valid = false;
}

void FeatureExtractor::compute_pin_best(std::size_t n, const RsmtTree& tree,
                                        std::vector<std::int64_t>& seg_q) {
  const Net& net = design_.nets[n];
  const std::int64_t* qmap = qcg_.data();
  const int snx = nx_;
  const auto p = [qmap, snx](int gx, int gy) {
    return qmap[static_cast<std::size_t>(gy) * static_cast<std::size_t>(snx) +
                static_cast<std::size_t>(gx)];
  };
  const auto h = [this](int x0, int x1, int y) {
    return rmq_.row_max(y, std::min(x0, x1), std::max(x0, x1));
  };
  const auto v = [this](int x, int y0, int y1) {
    return rmq_.col_max(x, std::min(y0, y1), std::max(y0, y1));
  };
  std::int64_t* pb =
      pin_best_flat_.data() + static_cast<std::size_t>(pin_off_[n]);
  const std::int32_t* pgx =
      pt_gx_.data() + static_cast<std::size_t>(pt_base_[n]);
  const std::int32_t* pgy =
      pt_gy_.data() + static_cast<std::size_t>(pt_base_[n]);
  // Two-pin nets (the bulk of any netlist) have exactly one segment and
  // both tree points are its endpoints: every mapped pin takes the same
  // value, no incidence walk or memo scratch needed.
  if (tree.segments.size() == 1) {
    const RsmtSegment& seg = tree.segments[0];
    const std::int64_t q = best_path_q_pruned(
        pgx[static_cast<std::size_t>(seg.a)],
        pgy[static_cast<std::size_t>(seg.a)],
        pgx[static_cast<std::size_t>(seg.b)],
        pgy[static_cast<std::size_t>(seg.b)], config_.z_candidates, p, h, v);
    for (std::size_t k = 0; k < net.pins.size(); ++k) {
      pb[k] = tree.pin_point[k] < 0 ? kNoPath : q;
    }
    return;
  }
  // Memoized per-segment evaluation: best_path_q is symmetric in its
  // endpoints (the L candidates map onto each other under a<->b and the
  // Z interior positions come from the sorted span), so a segment shared
  // by several pins -- or by several net pins quantized onto the same
  // tree point -- is evaluated once. Quantized Cg is >= 0, so -1 is a
  // free "not yet evaluated" sentinel. The oracle evaluates per
  // (pin, segment) pair; the minima are identical by symmetry.
  seg_q.assign(tree.segments.size(), -1);
  const std::int32_t* ioff =
      inc_off_.data() + static_cast<std::size_t>(inc_off_base_[n]);
  const std::int32_t* iseg =
      inc_seg_.data() + static_cast<std::size_t>(inc_seg_base_[n]);
  for (std::size_t k = 0; k < net.pins.size(); ++k) {
    pb[k] = kNoPath;
    const int pt = tree.pin_point[k];
    if (pt < 0) continue;
    std::int64_t best = kNoPath;
    const std::int32_t b = ioff[static_cast<std::size_t>(pt)];
    const std::int32_t en = ioff[static_cast<std::size_t>(pt) + 1];
    for (std::int32_t i = b; i < en; ++i) {
      const std::size_t si =
          static_cast<std::size_t>(iseg[static_cast<std::size_t>(i)]);
      std::int64_t q = seg_q[si];
      if (q < 0) {
        const RsmtSegment& seg = tree.segments[si];
        q = best_path_q_pruned(pgx[static_cast<std::size_t>(seg.a)],
                               pgy[static_cast<std::size_t>(seg.a)],
                               pgx[static_cast<std::size_t>(seg.b)],
                               pgy[static_cast<std::size_t>(seg.b)],
                               config_.z_candidates, p, h, v);
        seg_q[si] = q;
      }
      best = std::min(best, q);
    }
    pb[k] = best;
  }
}

std::vector<FeatureVector> FeatureExtractor::extract_fast(
    const CongestionResult& congestion, const std::vector<CellId>& cells) {
  const RoutingMaps& maps = congestion.maps;
  const GcellGrid& grid = maps.grid;
  const int nx = grid.nx(), ny = grid.ny();
  const std::size_t n_gcells =
      static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny);

  const bool state_ok = have_ && nx_ == nx && ny_ == ny &&
                        cell_x_.size() == design_.cells.size() &&
                        pin_gcell_.size() == design_.pins.size() &&
                        nets_.size() == design_.nets.size();
  if (!state_ok) allocate_state(grid);
  const bool cadence = config_.full_rebuild_interval > 0 &&
                       extracts_since_rebuild_ >= config_.full_rebuild_interval;
  const bool full = !state_ok || !config_.incremental || cadence;

  ++epoch_;
  dirty_rows_.clear();
  dirty_cols_.clear();

  // Net-level delta: when the estimator's delta chain is continuous
  // (same source, revision exactly one ahead of the last one consumed),
  // any net not listed in dirty_nets has a tree bit-identical to the one
  // this extractor already summarized, so its fingerprint check can be
  // skipped outright. Computed before last_uid_/last_revision_ advance;
  // stamped serially so the parallel loop only reads the epochs.
  const CongestionDelta& net_delta = congestion.delta;
  const bool net_skip = state_ok && net_delta.valid && last_uid_ != 0 &&
                        net_delta.source_uid == last_uid_ &&
                        net_delta.revision == last_revision_ + 1;
  if (net_skip) {
    for (std::int32_t dn : net_delta.dirty_nets) {
      net_round_epoch_[static_cast<std::size_t>(dn)] = epoch_;
    }
  }

  bool adopted = false;
  if (!full) {
    const std::int64_t changed = sync_incremental(congestion);
    metrics_.dirty_gcells_total += changed;
    metrics_.gcells_total += static_cast<std::int64_t>(n_gcells);
    ++extracts_since_rebuild_;
  } else {
    const bool verify =
        state_ok && config_.incremental && config_.verify_rebuild;
    if (verify) sync_incremental(congestion);
    adopted = sync_full(congestion, verify);
    ++metrics_.full_rebuilds;
    extracts_since_rebuild_ = 0;
  }
  last_uid_ = congestion.delta.source_uid;
  last_revision_ = congestion.delta.revision;

  // Query structures: re-tabulate only the rows/columns this round
  // dirtied (all of them after an adopted rebuild); the summed-area
  // tables are O(grid) and rebuilt every round.
  if (adopted) {
    mark_all_dirty();
    rmq_.build(qcg_, nx, ny);
  } else {
    for (int gy : dirty_rows_) rmq_.rebuild_row(qcg_, gy);
    for (int gx : dirty_cols_) rmq_.rebuild_col(qcg_, gx);
  }
  sat_cg_.build(qcg_, nx, ny);
  sat_pd_.build(pdq_, nx, ny);

  // Per-net fan-out: each net owns its cache slot; chunk-local counters
  // are folded serially below so the metrics are thread-count
  // independent too.
  const std::size_t n_nets = design_.nets.size();
  struct ChunkCounters {
    std::uint64_t hits = 0, misses = 0;
    std::int64_t reused = 0, recomputed = 0;
  };
  const int n_chunks =
      par::chunk_count(static_cast<std::int64_t>(n_nets), 16, 256);
  std::vector<ChunkCounters> counters(static_cast<std::size_t>(n_chunks));
  par::parallel_for(
      0, static_cast<std::int64_t>(n_nets), 16,
      [&](std::int64_t b, std::int64_t en, int chunk) {
        ChunkCounters& cc = counters[static_cast<std::size_t>(chunk)];
        std::vector<std::int64_t> seg_q;  // chunk-owned memo scratch
        for (std::int64_t i = b; i < en; ++i) {
          const std::size_t n = static_cast<std::size_t>(i);
          const RsmtTree& tree = congestion.trees[n];
          NetEntry& entry = nets_[n];
          if (tree.segments.empty()) {
            std::fill(pin_best_flat_.begin() + pin_off_[n],
                      pin_best_flat_.begin() + pin_off_[n + 1], kNoPath);
            entry.valid = true;
            continue;
          }
          if (net_skip && entry.has_tree &&
              net_round_epoch_[static_cast<std::size_t>(n)] != epoch_) {
            // Not in the round's dirty-net list under a continuous delta
            // chain: the tree is bit-identical to the one already
            // summarized, no hash needed.
            ++cc.hits;
          } else {
            const std::uint64_t fp = tree_fingerprint(tree);
            if (entry.has_tree && entry.tree_fp == fp) {
              ++cc.hits;
            } else {
              refresh_net_topology(static_cast<std::size_t>(n), tree, entry);
              entry.tree_fp = fp;
              ++cc.misses;
            }
          }
          if (entry.valid && box_clean(entry)) {
            ++cc.reused;
            continue;
          }
          compute_pin_best(static_cast<std::size_t>(n), tree, seg_q);
          entry.epoch = epoch_;
          entry.valid = true;
          ++cc.recomputed;
        }
      },
      256);
  for (const ChunkCounters& cc : counters) {
    metrics_.incidence_hits += cc.hits;
    metrics_.incidence_misses += cc.misses;
    metrics_.nets_reused += cc.reused;
    metrics_.nets_recomputed += cc.recomputed;
  }

  // Serial in-order fold of the per-pin minima into per-cell sums: one
  // linear scan of the slot CSR (integer adds; any order would give the
  // same bits, the fixed order keeps the idiom auditable).
  std::fill(cell_pin_q_.begin(), cell_pin_q_.end(), 0);
  const std::size_t n_slots = pin_best_flat_.size();
  for (std::size_t s = 0; s < n_slots; ++s) {
    const std::int64_t q = pin_best_flat_[s];
    if (q == kNoPath) continue;
    cell_pin_q_[static_cast<std::size_t>(pin_slot_cell_[s])] += q;
  }

  // Per-cell assembly fan-out: disjoint chunk-owned output slots, all
  // inputs read-only.
  const double mean_q =
      static_cast<double>(pdq_total_) / static_cast<double>(n_gcells);
  const auto cg_win = [this](int x0, int x1, int y0, int y1) {
    return sat_cg_.window_sum(x0, x1, y0, y1);
  };
  const auto pd_win = [this](int x0, int x1, int y0, int y1) {
    return sat_pd_.window_sum(x0, x1, y0, y1);
  };
  std::vector<FeatureVector> out(cells.size());
  par::parallel_for(
      0, static_cast<std::int64_t>(cells.size()), 64,
      [&](std::int64_t b, std::int64_t en, int /*chunk*/) {
        for (std::int64_t i = b; i < en; ++i) {
          const CellId cid = cells[static_cast<std::size_t>(i)];
          const std::size_t ci = static_cast<std::size_t>(cid);
          const Cell& cell = design_.cells[ci];
          // Per-cell Gcell-range cache: range_of costs four FP divides,
          // and in the near-converged regime most cells have not moved
          // since the previous round. Keyed on the exact corner; chunks
          // own disjoint cells, so the per-cell write is race-free.
          if (cell.x != asm_x_[ci] || cell.y != asm_y_[ci]) {
            grid.range_of(cell.rect(), cell_glo_[ci], cell_ghi_[ci]);
            asm_x_[ci] = cell.x;
            asm_y_[ci] = cell.y;
          }
          out[static_cast<std::size_t>(i)] = assemble_cell(
              grid, cell_glo_[ci], cell_ghi_[ci], config_.kernel_gcells, qcg_,
              pdq_, mean_q, cell_pin_q_[ci], cg_win, pd_win);
        }
      },
      256);
  return out;
}

}  // namespace puffer
