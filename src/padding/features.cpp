#include "padding/features.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace puffer {

double FeatureVector::operator[](int i) const {
  switch (i) {
    case 0: return local_cg;
    case 1: return local_pin;
    case 2: return sur_cg;
    case 3: return sur_pin;
    case 4: return pin_cg;
    default: throw std::out_of_range("FeatureVector index");
  }
}

FeatureExtractor::FeatureExtractor(const Design& design, FeatureConfig config)
    : design_(design), config_(config) {}

namespace {

// Max Cg along a horizontal Gcell span (y fixed) or vertical span.
double max_cg_h_span(const RoutingMaps& maps, int x0, int x1, int y) {
  double m = -std::numeric_limits<double>::max();
  for (int gx = std::min(x0, x1); gx <= std::max(x0, x1); ++gx) {
    m = std::max(m, maps.cg(gx, y));
  }
  return m;
}

double max_cg_v_span(const RoutingMaps& maps, int x, int y0, int y1) {
  double m = -std::numeric_limits<double>::max();
  for (int gy = std::min(y0, y1); gy <= std::max(y0, y1); ++gy) {
    m = std::max(m, maps.cg(x, gy));
  }
  return m;
}

// Minimum over candidate L and Z paths between Gcells a and b of the
// maximum Cg along the path (Eq. 13 inner terms).
double best_path_cg(const RoutingMaps& maps, GcellIndex a, GcellIndex b,
                    int z_candidates) {
  if (a.gx == b.gx && a.gy == b.gy) return maps.cg(a.gx, a.gy);
  if (a.gy == b.gy) return max_cg_h_span(maps, a.gx, b.gx, a.gy);
  if (a.gx == b.gx) return max_cg_v_span(maps, a.gx, a.gy, b.gy);

  double best = std::numeric_limits<double>::max();
  // Two L-shaped paths.
  best = std::min(best, std::max(max_cg_h_span(maps, a.gx, b.gx, a.gy),
                                 max_cg_v_span(maps, b.gx, a.gy, b.gy)));
  best = std::min(best, std::max(max_cg_v_span(maps, a.gx, a.gy, b.gy),
                                 max_cg_h_span(maps, a.gx, b.gx, b.gy)));

  // Z-shaped paths: HVH with an intermediate column, VHV with an
  // intermediate row; sample at most z_candidates interior positions.
  const int x0 = std::min(a.gx, b.gx), x1 = std::max(a.gx, b.gx);
  const int y0 = std::min(a.gy, b.gy), y1 = std::max(a.gy, b.gy);
  const int span_x = x1 - x0, span_y = y1 - y0;
  const int nx = std::min(z_candidates, std::max(0, span_x - 1));
  for (int k = 1; k <= nx; ++k) {
    const int mid = x0 + k * span_x / (nx + 1);
    if (mid <= x0 || mid >= x1) continue;
    const double cg = std::max({max_cg_h_span(maps, a.gx, mid, a.gy),
                                max_cg_v_span(maps, mid, a.gy, b.gy),
                                max_cg_h_span(maps, mid, b.gx, b.gy)});
    best = std::min(best, cg);
  }
  const int ny = std::min(z_candidates, std::max(0, span_y - 1));
  for (int k = 1; k <= ny; ++k) {
    const int mid = y0 + k * span_y / (ny + 1);
    if (mid <= y0 || mid >= y1) continue;
    const double cg = std::max({max_cg_v_span(maps, a.gx, a.gy, mid),
                                max_cg_h_span(maps, a.gx, b.gx, mid),
                                max_cg_v_span(maps, b.gx, mid, b.gy)});
    best = std::min(best, cg);
  }
  return best;
}

}  // namespace

std::vector<FeatureVector> FeatureExtractor::extract(
    const CongestionResult& congestion, const std::vector<CellId>& cells) const {
  const RoutingMaps& maps = congestion.maps;
  const GcellGrid& grid = maps.grid;

  // Pin-density map: pins per Gcell over available sites per Gcell.
  Map2D<double> pin_density(grid.nx(), grid.ny());
  {
    Map2D<double> pin_count(grid.nx(), grid.ny());
    for (const Pin& pin : design_.pins) {
      const Cell& c = design_.cells[static_cast<std::size_t>(pin.cell)];
      const GcellIndex g = grid.index_of(c.x + pin.dx, c.y + pin.dy);
      pin_count.at(g.gx, g.gy) += 1.0;
    }
    // Available sites: free Gcell area in site units (macros excluded).
    Map2D<double> macro_area(grid.nx(), grid.ny());
    for (const Cell& c : design_.cells) {
      if (!c.is_macro()) continue;
      const Rect r = c.rect().clamped(grid.area());
      if (r.empty()) continue;
      GcellIndex lo, hi;
      grid.range_of(r, lo, hi);
      for (int gy = lo.gy; gy <= hi.gy; ++gy) {
        for (int gx = lo.gx; gx <= hi.gx; ++gx) {
          macro_area.at(gx, gy) += grid.gcell_rect(gx, gy).overlap_area(r);
        }
      }
    }
    const double site_area = design_.tech.site_width * design_.tech.row_height;
    const double gcell_area = grid.gcell_w() * grid.gcell_h();
    for (int gy = 0; gy < grid.ny(); ++gy) {
      for (int gx = 0; gx < grid.nx(); ++gx) {
        const double sites =
            std::max(1.0, (gcell_area - macro_area.at(gx, gy)) / site_area);
        pin_density.at(gx, gy) = pin_count.at(gx, gy) / sites;
      }
    }
    // Normalize to the signed deviation from the design-wide mean so the
    // feature discriminates (raw pins-per-site is dominated by the
    // design's average pin density, a constant offset for every cell).
    double mean = 0.0;
    for (double v : pin_density.raw()) mean += v;
    mean /= static_cast<double>(pin_density.size());
    if (mean > 0.0) {
      for (double& v : pin_density.raw()) v = v / mean - 1.0;
    }
  }

  const Map2D<double> cg = maps.cg_map();

  // Per-pin congestion (GNN feature), accumulated per cell (Eq. 12).
  std::vector<double> cell_pin_cg(design_.cells.size(), 0.0);
  for (std::size_t n = 0; n < design_.nets.size(); ++n) {
    const Net& net = design_.nets[n];
    const RsmtTree& tree = congestion.trees[n];
    if (tree.segments.empty()) continue;
    const auto incidence = tree.build_incidence();
    for (std::size_t k = 0; k < net.pins.size(); ++k) {
      const int pt = tree.pin_point[k];
      if (pt < 0) continue;
      // Eq. 13: minimum over all candidate paths of all two-point nets
      // touching this pin.
      double best = std::numeric_limits<double>::max();
      for (int seg_idx : incidence[static_cast<std::size_t>(pt)]) {
        const RsmtSegment& seg = tree.segments[static_cast<std::size_t>(seg_idx)];
        const Point pa = tree.points[static_cast<std::size_t>(seg.a)].pos;
        const Point pb = tree.points[static_cast<std::size_t>(seg.b)].pos;
        const GcellIndex ga = grid.index_of(pa.x, pa.y);
        const GcellIndex gb = grid.index_of(pb.x, pb.y);
        best = std::min(best, best_path_cg(maps, ga, gb, config_.z_candidates));
      }
      if (best == std::numeric_limits<double>::max()) continue;
      const Pin& pin = design_.pins[static_cast<std::size_t>(net.pins[k])];
      cell_pin_cg[static_cast<std::size_t>(pin.cell)] += best;
    }
  }

  // Assemble per-cell features.
  std::vector<FeatureVector> out;
  out.reserve(cells.size());
  for (CellId cid : cells) {
    const Cell& cell = design_.cells[static_cast<std::size_t>(cid)];
    FeatureVector f;
    GcellIndex lo, hi;
    grid.range_of(cell.rect(), lo, hi);

    // Local: max over overlapped Gcells (Eq. 9); signed values preserved.
    double lcg = -std::numeric_limits<double>::max();
    double lpin = 0.0;
    for (int gy = lo.gy; gy <= hi.gy; ++gy) {
      for (int gx = lo.gx; gx <= hi.gx; ++gx) {
        lcg = std::max(lcg, cg.at(gx, gy));
        lpin = std::max(lpin, pin_density.at(gx, gy));
      }
    }
    f.local_cg = lcg;
    f.local_pin = lpin;

    // CNN-inspired: mean over the kernel-expanded bounding box.
    const int m = config_.kernel_gcells;
    const int sx0 = std::max(0, lo.gx - m), sx1 = std::min(grid.nx() - 1, hi.gx + m);
    const int sy0 = std::max(0, lo.gy - m), sy1 = std::min(grid.ny() - 1, hi.gy + m);
    double scg = 0.0, spin = 0.0;
    int count = 0;
    for (int gy = sy0; gy <= sy1; ++gy) {
      for (int gx = sx0; gx <= sx1; ++gx) {
        scg += cg.at(gx, gy);
        spin += pin_density.at(gx, gy);
        ++count;
      }
    }
    f.sur_cg = scg / count;
    f.sur_pin = spin / count;

    // GNN-inspired.
    f.pin_cg = cell_pin_cg[static_cast<std::size_t>(cid)];
    out.push_back(f);
  }
  return out;
}

}  // namespace puffer
