#include "padding/padding.h"

#include <algorithm>
#include <cmath>

#include "common/logger.h"

namespace puffer {

namespace {
constexpr const char* kTag = "padding";
}

PaddingEngine::PaddingEngine(const Design& design, std::vector<CellId> movable,
                             PaddingParams params)
    : design_(design),
      movable_(std::move(movable)),
      params_(params),
      extractor_(design, params.feature),
      pad_(movable_.size(), 0.0),
      pt_(movable_.size(), 0) {
  double macro_area = 0.0;
  for (const Cell& c : design.cells) {
    if (c.is_macro()) macro_area += c.rect().clamped(design.die).area();
  }
  // "Available placement area A" of Algorithm 1: the die minus macros.
  avail_area_ = std::max(1.0, design.die.area() - macro_area);
}

double PaddingEngine::target_utilization(int i) const {
  if (params_.xi <= 1) return params_.pu_high;
  const double t = static_cast<double>(i - 1) / static_cast<double>(params_.xi - 1);
  return params_.pu_low + clamp(t, 0.0, 1.0) * (params_.pu_high - params_.pu_low);
}

bool PaddingEngine::should_trigger(double density_overflow) const {
  if (round_ >= params_.xi) return false;
  if (density_overflow >= params_.tau) return false;
  // First round always fires; later rounds require the previous round's
  // padding utilization to stay below eta (padding still converging).
  if (round_ > 0 && last_util_ >= params_.eta) return false;
  return true;
}

const std::vector<double>& PaddingEngine::update(
    const CongestionResult& congestion) {
  ++round_;
  const std::vector<FeatureVector> features =
      extractor_.extract(congestion, movable_);

  // Eq. 14 padding per cell, applied incrementally; Eq. 15 recycling for
  // cells that received no positive padding this round. The pad area of
  // the utilization control (Algorithm 1, lines 5-9) folds into the same
  // pass: pad_[i] is final once its iteration ends.
  int positive = 0;
  double pad_area = 0.0;
  for (std::size_t i = 0; i < movable_.size(); ++i) {
    double lin = params_.beta;
    for (int k = 0; k < FeatureVector::kCount; ++k) {
      lin += params_.alpha[k] * features[i][k];
    }
    const double pad_value = std::log(std::max(lin, 1.0)) * params_.mu;
    if (pad_value > 0.0) {
      pad_[i] += pad_value;
      pt_[i] += 1;
      ++positive;

    } else if (pad_[i] > 0.0) {
      const double r = clamp(
          static_cast<double>(round_ - pt_[i]) / (round_ + params_.zeta), 0.0,
          1.0);
      pad_[i] *= (1.0 - r);
    }
    pad_area +=
        pad_[i] * design_.cells[static_cast<std::size_t>(movable_[i])].height;
  }

  const double target = target_utilization(round_);
  const double budget = target * avail_area_;
  if (pad_area > budget && pad_area > 0.0) {
    const double sr = budget / pad_area;
    for (double& p : pad_) p *= sr;
    pad_area = budget;
  }
  // Padding utilization after this round: applied padding area relative
  // to the free placement area. While below eta the process is healthy
  // and optimization continues.
  last_util_ = pad_area / avail_area_;
  last_area_ = pad_area;
  peak_area_ = std::max(peak_area_, pad_area);
  if (positive > 0) ++applied_rounds_;

  PUFFER_LOG_DEBUG(kTag,
                   "round %d: %d cells padded, pad area %.3g (%.2f%% of "
                   "whitespace, target %.2f%%)",
                   round_, positive, pad_area, 100.0 * last_util_,
                   100.0 * target);
  return pad_;
}

}  // namespace puffer
