// CNN- and GNN-inspired feature extraction for cell padding
// (paper SS III-B1, Fig. 4).
//
// Three feature families per movable cell:
//
//  * Local features: the cell's own Gcell neighbourhood -- local
//    congestion LCg(c) (Eq. 9; signed, the negative part is kept to model
//    the deviation between estimate and router) and local pin density.
//  * CNN-inspired: mean congestion / pin density over the cell's bounding
//    box expanded by a kernel margin (a mean-filter convolution over a
//    larger spatial region).
//  * GNN-inspired: pin congestion PCg(c) (Eqs. 12-13) aggregated over the
//    routing topology -- for each pin, the minimum over all candidate L-
//    and Z-shaped paths of its two-point nets of the maximum Gcell
//    congestion along the path.
#pragma once

#include <vector>

#include "congestion/estimator.h"
#include "netlist/design.h"

namespace puffer {

struct FeatureVector {
  double local_cg = 0.0;
  double local_pin = 0.0;
  double sur_cg = 0.0;
  double sur_pin = 0.0;
  double pin_cg = 0.0;

  static constexpr int kCount = 5;
  double operator[](int i) const;
};

struct FeatureConfig {
  // CNN kernel margin, in Gcells, added around the cell's bounding box.
  int kernel_gcells = 2;
  // Cap on sampled intermediate positions for Z-shaped candidate paths
  // (the full enumeration is quadratic in span; sampling keeps the same
  // minimum-over-paths structure at bounded cost).
  int z_candidates = 8;
};

class FeatureExtractor {
 public:
  FeatureExtractor(const Design& design, FeatureConfig config = {});

  // Extracts features for every cell in `cells` (typically the movable
  // ordinals of the placement engine), using the congestion estimate.
  std::vector<FeatureVector> extract(const CongestionResult& congestion,
                                     const std::vector<CellId>& cells) const;

 private:
  const Design& design_;
  FeatureConfig config_;
};

}  // namespace puffer
