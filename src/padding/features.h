// CNN- and GNN-inspired feature extraction for cell padding
// (paper SS III-B1, Fig. 4).
//
// Three feature families per movable cell:
//
//  * Local features: the cell's own Gcell neighbourhood -- local
//    congestion LCg(c) (Eq. 9; signed, the negative part is kept to model
//    the deviation between estimate and router) and local pin density.
//  * CNN-inspired: mean congestion / pin density over the cell's bounding
//    box expanded by a kernel margin (a mean-filter convolution over a
//    larger spatial region).
//  * GNN-inspired: pin congestion PCg(c) (Eqs. 12-13) aggregated over the
//    routing topology -- for each pin, the minimum over all candidate L-
//    and Z-shaped paths of its two-point nets of the maximum Gcell
//    congestion along the path.
//
// Pipeline (fast path, the default): the combined-congestion and
// pin-density maps are quantized to int64 once per round, maintained
// incrementally from the congestion result's dirty-Gcell delta, and
// queried through per-row/per-column sparse-table RMQs (Eq. 13 span
// maxima in O(1)) and summed-area tables (window means in O(1)). The
// per-net path search and the per-cell assembly fan out over
// common/parallel with serial in-order folds; per-net incidence lists
// and per-pin path minima are cached across rounds keyed on the tree
// topology and the dirty stamps. A scalar from-scratch oracle
// (FeatureConfig::use_legacy_extractor) computes the same quantized
// integer primitives serially and shares the final double formulas, so
// both paths -- and any thread count, and incremental vs full -- are
// bit-identical. See docs/architecture.md ("Padding feature pipeline").
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "congestion/estimator.h"
#include "netlist/design.h"
#include "padding/feature_query.h"

namespace puffer {

struct FeatureVector {
  double local_cg = 0.0;
  double local_pin = 0.0;
  double sur_cg = 0.0;
  double sur_pin = 0.0;
  double pin_cg = 0.0;

  static constexpr int kCount = 5;
  double operator[](int i) const;
};

// Feature-map quantum: every map value entering a feature (combined
// congestion Cg, pins-per-site density) is rounded to a multiple of
// 2^-32 and handled as int64 -- the demand ledger's exact-arithmetic
// trick at a coarser quantum. Integer maxima and sums are associative
// and order-independent, so RMQ/SAT queries, parallel folds, the scalar
// oracle, and incremental maintenance all produce identical bits.
// Headroom: |Cg| is bounded by the ledger's 8192 track-equivalents
// (|q| < 2^45), and a window/prefix sum stays exact while
// mean |value| x covered Gcells < 2^31 -- orders of magnitude above any
// realistic grid.
constexpr double kFeatureScale = 4294967296.0;  // 2^32
constexpr double kFeatureQuantum = 1.0 / kFeatureScale;

inline std::int64_t quantize_feature(double v) {
  return std::llround(v * kFeatureScale);
}
inline double dequantize_feature(std::int64_t q) {
  return static_cast<double>(q) * kFeatureQuantum;
}

struct FeatureConfig {
  // CNN kernel margin, in Gcells, added around the cell's bounding box.
  int kernel_gcells = 2;
  // Cap on sampled intermediate positions for Z-shaped candidate paths
  // (the full enumeration is quadratic in span; sampling keeps the same
  // minimum-over-paths structure at bounded cost).
  int z_candidates = 8;
  // Oracle switch: the scalar from-scratch extractor (bit-identical to
  // the fast path by construction; kept one PR as baseline and oracle).
  bool use_legacy_extractor = false;
  // Fast path: maintain the quantized maps and per-net caches across
  // extract() calls, re-deriving only dirty Gcells / dirty nets.
  bool incremental = true;
  // Every Nth extract() rebuilds the maintained maps from scratch
  // (0 = rebuild only on the first call).
  int full_rebuild_interval = 16;
  // On rebuild rounds, additionally run the incremental update and check
  // it is bit-identical to the from-scratch maps; a mismatch increments
  // PaddingStageMetrics::drift_count and the fresh maps are adopted.
  bool verify_rebuild = true;
};

// Observability for the feature pipeline (mirrors IncrementalStats).
struct PaddingStageMetrics {
  double feature_time_s = 0.0;  // wall time inside extract()
  int extracts = 0;
  int full_rebuilds = 0;  // fast-path from-scratch map builds (incl. first)
  // Verified-rebuild mismatches between the incrementally maintained maps
  // and a from-scratch build (must stay 0).
  std::uint64_t drift_count = 0;
  // Dirty-Gcell accounting across incremental syncs.
  std::int64_t dirty_gcells_total = 0;
  std::int64_t gcells_total = 0;
  // Per-net incidence/topology cache (hit = tree unchanged since the
  // last round) and per-pin path-minima reuse (hit + clean query box).
  std::uint64_t incidence_hits = 0;
  std::uint64_t incidence_misses = 0;
  std::int64_t nets_reused = 0;
  std::int64_t nets_recomputed = 0;

  double dirty_gcell_frac() const {
    return gcells_total > 0 ? static_cast<double>(dirty_gcells_total) /
                                  static_cast<double>(gcells_total)
                            : 0.0;
  }
  double incidence_hit_rate() const {
    const std::uint64_t total = incidence_hits + incidence_misses;
    return total > 0 ? static_cast<double>(incidence_hits) /
                           static_cast<double>(total)
                     : 0.0;
  }
};

class FeatureExtractor {
 public:
  FeatureExtractor(const Design& design, FeatureConfig config = {});

  // Extracts features for every cell in `cells` (typically the movable
  // ordinals of the placement engine), using the congestion estimate.
  // Stateful on the fast path: quantized maps, query structures and
  // per-net caches persist across calls and are updated from the
  // result's dirty-Gcell delta (or a full self-diff when the delta does
  // not apply -- different estimator, skipped revisions, rebuild round).
  std::vector<FeatureVector> extract(const CongestionResult& congestion,
                                     const std::vector<CellId>& cells);

  const PaddingStageMetrics& stage_metrics() const { return metrics_; }
  const FeatureConfig& config() const { return config_; }

 private:
  // Cross-round cache of one net's topology-derived state.
  struct NetEntry {
    std::uint64_t tree_fp = 0;  // content hash of the tree last served
    bool has_tree = false;      // incidence/bbox/point Gcells are valid
    bool valid = false;         // pin_best is valid (at epoch `epoch`)
    std::uint32_t epoch = 0;    // qcg epoch pin_best was computed at
    int bx0 = 0, bx1 = 0, by0 = 0, by1 = 0;  // tree bbox in Gcells
    // Per-point Gcell indices and the CSR point->segment incidence lists
    // live in the extractor-wide topology arenas (pt_gx_/inc_off_/...),
    // as do the per-pin Eq. 13 minima (pin_best_flat_): every net's slots
    // are design-static, so the cache allocates nothing per net.
  };

  std::vector<FeatureVector> extract_fast(const CongestionResult& congestion,
                                          const std::vector<CellId>& cells);
  std::vector<FeatureVector> extract_legacy(
      const CongestionResult& congestion,
      const std::vector<CellId>& cells) const;

  void allocate_state(const GcellGrid& grid);
  void mark_gcell(int flat, int gx, int gy);
  void mark_all_dirty();
  bool box_clean(const NetEntry& e) const;
  // Incremental map sync; returns the number of changed Gcells.
  std::int64_t sync_incremental(const CongestionResult& congestion);
  // From-scratch map build; when `verify`, compares against the
  // (already incrementally advanced) maintained state first. Returns
  // true when the fresh maps were adopted (caller must mark all dirty).
  bool sync_full(const CongestionResult& congestion, bool verify);
  void refresh_net_topology(std::size_t n, const RsmtTree& tree, NetEntry& e);
  // seg_q is caller-provided scratch (one per worker chunk): per-segment
  // memo of best_path_q so shared segments are evaluated once per net.
  void compute_pin_best(std::size_t n, const RsmtTree& tree,
                        std::vector<std::int64_t>& seg_q);

  const Design& design_;
  FeatureConfig config_;
  PaddingStageMetrics metrics_;

  // --- fast-path persistent state (valid while have_) -------------------
  bool have_ = false;
  int nx_ = 0, ny_ = 0;
  GcellGrid grid_;
  std::vector<std::int64_t> qcg_;  // quantized combined congestion
  std::vector<std::int64_t> pdq_;  // quantized pins-per-site density
  std::int64_t pdq_total_ = 0;     // sum of pdq_ (exact)
  std::vector<double> sites_;      // free sites per Gcell (macros carved)
  std::vector<std::int32_t> pin_count_;  // pins per Gcell
  std::vector<std::int32_t> pin_gcell_;  // flat Gcell per design pin
  std::vector<double> cell_x_, cell_y_;  // position snapshot (moved scan)
  // Epoch-stamped qcg dirty tracking (ledger idiom; no clearing).
  std::uint32_t epoch_ = 0;
  std::vector<std::uint32_t> cell_epoch_;
  std::vector<std::uint32_t> row_epoch_, col_epoch_;
  std::vector<int> dirty_rows_, dirty_cols_;  // rows/cols to re-tabulate
  // Query structures.
  RowColRmq rmq_;
  SummedAreaTable sat_cg_, sat_pd_;
  // Per-net caches and the serial pin_cg fold target.
  std::vector<NetEntry> nets_;
  // Epoch stamp per net: == epoch_ iff the estimator's delta listed the
  // net dirty this round (stamped serially before the parallel fan-out;
  // unlisted nets under a continuous chain skip fingerprinting).
  std::vector<std::uint32_t> net_round_epoch_;
  // Design-static CSR over net pin slots: net n owns slots
  // [pin_off_[n], pin_off_[n+1]) of pin_best_flat_ (Eq. 13 minima,
  // kNoPath = no candidate path) and pin_slot_cell_ (the pin's cell).
  // One flat array instead of a per-net heap vector, and the serial
  // fold becomes a linear scan.
  std::vector<std::int32_t> pin_off_;
  std::vector<std::int32_t> pin_slot_cell_;
  std::vector<std::int64_t> pin_best_flat_;
  std::vector<std::int64_t> cell_pin_q_;
  // Design-static topology arenas: net n's tree points occupy
  // [pt_base_[n], pt_base_[n] + npts) of pt_gx_/pt_gy_, its incidence
  // offsets [inc_off_base_[n], +npts+1) of inc_off_, and its
  // incident-segment lists [inc_seg_base_[n], +2*(npts-1)) of inc_seg_.
  // Capacities come from the RSMT Steiner bound (<= 2p-2 points for p
  // pins), so the slots never move: the cold build and the per-round
  // topology refreshes allocate nothing, parallel chunks write disjoint
  // slices, and the net loop walks the arenas in net order.
  std::vector<std::int32_t> pt_base_, inc_off_base_, inc_seg_base_;
  std::vector<std::int32_t> pt_gx_, pt_gy_, inc_off_, inc_seg_;
  // Assembly range cache: the inclusive Gcell range of each cell's rect,
  // recomputed only when the cell's lower-left corner changed (cell
  // dimensions are immutable post-construction). asm_x_/asm_y_ start as
  // NaN so the first round after (re)allocation always computes.
  std::vector<GcellIndex> cell_glo_, cell_ghi_;
  std::vector<double> asm_x_, asm_y_;
  // Delta continuity with the producing estimator.
  std::uint64_t last_uid_ = 0;
  std::uint64_t last_revision_ = 0;
  int extracts_since_rebuild_ = 0;
  // Scratch for sync (kept to avoid per-round allocation).
  std::vector<std::size_t> moved_cells_;
  std::vector<std::int32_t> changed_pd_;
};

}  // namespace puffer
