#include "padding/feature_query.h"

namespace puffer {

namespace {

int levels_for(int n) {
  int lv = 1;
  while ((1 << lv) <= n) ++lv;
  return lv;  // 2^(lv-1) <= n < 2^lv
}

}  // namespace

void RowColRmq::build(const std::vector<std::int64_t>& vals, int nx, int ny) {
  nx_ = nx;
  ny_ = ny;
  cells_ = static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny);
  row_levels_ = levels_for(nx);
  col_levels_ = levels_for(ny);
  const int max_len = std::max(nx, ny);
  log2_.assign(static_cast<std::size_t>(max_len) + 1, 0);
  for (int len = 2; len <= max_len; ++len) {
    log2_[static_cast<std::size_t>(len)] =
        log2_[static_cast<std::size_t>(len / 2)] + 1;
  }
  row_table_.assign(static_cast<std::size_t>(row_levels_) * cells_, 0);
  col_table_.assign(static_cast<std::size_t>(col_levels_) * cells_, 0);
  for (int gy = 0; gy < ny_; ++gy) rebuild_row(vals, gy);
  for (int gx = 0; gx < nx_; ++gx) rebuild_col(vals, gx);
}

void RowColRmq::rebuild_row(const std::vector<std::int64_t>& vals, int gy) {
  const std::size_t row =
      static_cast<std::size_t>(gy) * static_cast<std::size_t>(nx_);
  std::int64_t* t0 = row_table_.data() + row;
  const std::int64_t* src = vals.data() + row;
  for (int x = 0; x < nx_; ++x) t0[x] = src[x];
  for (int k = 1; k < row_levels_; ++k) {
    const std::int64_t* prev = row_table_.data() + (k - 1) * cells_ + row;
    std::int64_t* cur = row_table_.data() + k * cells_ + row;
    const int half = 1 << (k - 1);
    for (int x = 0; x + (1 << k) <= nx_; ++x) {
      cur[x] = std::max(prev[x], prev[x + half]);
    }
  }
}

void RowColRmq::rebuild_col(const std::vector<std::int64_t>& vals, int gx) {
  const std::size_t col =
      static_cast<std::size_t>(gx) * static_cast<std::size_t>(ny_);
  std::int64_t* t0 = col_table_.data() + col;
  for (int y = 0; y < ny_; ++y) {
    t0[y] = vals[static_cast<std::size_t>(y) * static_cast<std::size_t>(nx_) +
                 static_cast<std::size_t>(gx)];
  }
  for (int k = 1; k < col_levels_; ++k) {
    const std::int64_t* prev = col_table_.data() + (k - 1) * cells_ + col;
    std::int64_t* cur = col_table_.data() + k * cells_ + col;
    const int half = 1 << (k - 1);
    for (int y = 0; y + (1 << k) <= ny_; ++y) {
      cur[y] = std::max(prev[y], prev[y + half]);
    }
  }
}

void SummedAreaTable::build(const std::vector<std::int64_t>& vals, int nx,
                            int ny) {
  nx_ = nx;
  ny_ = ny;
  const std::size_t stride = static_cast<std::size_t>(nx) + 1;
  prefix_.assign(stride * (static_cast<std::size_t>(ny) + 1), 0);
  for (int gy = 0; gy < ny; ++gy) {
    const std::int64_t* src =
        vals.data() + static_cast<std::size_t>(gy) * static_cast<std::size_t>(nx);
    const std::int64_t* up = prefix_.data() + static_cast<std::size_t>(gy) * stride;
    std::int64_t* out = prefix_.data() + (static_cast<std::size_t>(gy) + 1) * stride;
    std::int64_t run = 0;
    for (int gx = 0; gx < nx; ++gx) {
      run += src[gx];
      out[gx + 1] = up[gx + 1] + run;
    }
  }
}

}  // namespace puffer
