// O(1) range queries over quantized-int64 feature maps.
//
// Two structures back the padding feature pipeline (padding/features.h):
//
//  * RowColRmq -- per-row and per-column sparse-table range-maximum
//    queries over a row-major int64 grid. Build is O(nx*ny*log) once;
//    row_max/col_max answer any span in O(1), turning best_path_cg's
//    Eq. 13 span maxima from O(span) scans into constant time. Rows and
//    columns can be re-tabulated individually (rebuild_row/rebuild_col)
//    after a dirty round touches them.
//
//  * SummedAreaTable -- inclusive 2D prefix sums of an int64 grid, so any
//    window sum (the CNN-style sur_cg/sur_pin means, Eq. 11/12) is four
//    lookups. Because the inputs are quantized integers the prefix sums
//    are exact and a window sum is independent of evaluation order --
//    the bit-identity anchor of the parallel feature pipeline.
//
// Both operate on plain vectors (row-major, index gy * nx + gx) rather
// than Map2D so the extractor can share one quantized buffer between
// them.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace puffer {

class RowColRmq {
 public:
  // Tabulates both directions over `vals` (row-major nx * ny).
  void build(const std::vector<std::int64_t>& vals, int nx, int ny);
  // Re-tabulates one row / one column after its cells changed. Only valid
  // after build() with the same dimensions.
  void rebuild_row(const std::vector<std::int64_t>& vals, int gy);
  void rebuild_col(const std::vector<std::int64_t>& vals, int gx);

  // Max over [x0, x1] of row gy (inclusive, x0 <= x1).
  std::int64_t row_max(int gy, int x0, int x1) const {
    const int k = log2_[static_cast<std::size_t>(x1 - x0 + 1)];
    const std::size_t base =
        static_cast<std::size_t>(k) * cells_ +
        static_cast<std::size_t>(gy) * static_cast<std::size_t>(nx_);
    return std::max(row_table_[base + static_cast<std::size_t>(x0)],
                    row_table_[base + static_cast<std::size_t>(x1 - (1 << k) + 1)]);
  }
  // Max over [y0, y1] of column gx (inclusive, y0 <= y1).
  std::int64_t col_max(int gx, int y0, int y1) const {
    const int k = log2_[static_cast<std::size_t>(y1 - y0 + 1)];
    const std::size_t base =
        static_cast<std::size_t>(k) * cells_ +
        static_cast<std::size_t>(gx) * static_cast<std::size_t>(ny_);
    return std::max(col_table_[base + static_cast<std::size_t>(y0)],
                    col_table_[base + static_cast<std::size_t>(y1 - (1 << k) + 1)]);
  }

  int nx() const { return nx_; }
  int ny() const { return ny_; }

 private:
  int nx_ = 0, ny_ = 0;
  int row_levels_ = 0, col_levels_ = 0;
  std::size_t cells_ = 0;  // nx_ * ny_, the per-level stride
  // Level-major tables: row_table_[k][gy][x] = max over [x, x + 2^k) of
  // row gy; col_table_[k][gx][y] likewise, column-major for locality.
  std::vector<std::int64_t> row_table_, col_table_;
  std::vector<int> log2_;  // floor(log2(len)) for len in [0, max(nx,ny)]
};

class SummedAreaTable {
 public:
  // Builds inclusive prefix sums over `vals` (row-major nx * ny).
  void build(const std::vector<std::int64_t>& vals, int nx, int ny);

  // Sum over the inclusive window [x0, x1] x [y0, y1] (x0 <= x1, y0 <= y1).
  std::int64_t window_sum(int x0, int x1, int y0, int y1) const {
    const std::size_t stride = static_cast<std::size_t>(nx_) + 1;
    const std::size_t top = static_cast<std::size_t>(y0) * stride;
    const std::size_t bot = static_cast<std::size_t>(y1 + 1) * stride;
    return prefix_[bot + static_cast<std::size_t>(x1 + 1)] -
           prefix_[bot + static_cast<std::size_t>(x0)] -
           prefix_[top + static_cast<std::size_t>(x1 + 1)] +
           prefix_[top + static_cast<std::size_t>(x0)];
  }

 private:
  int nx_ = 0, ny_ = 0;
  // (nx+1) x (ny+1) with a zero top row / left column.
  std::vector<std::int64_t> prefix_;
};

}  // namespace puffer
