// Multi-feature-based cell padding with recycling and utilization control
// (paper SS III-B2/B3, Algorithm 1).
//
// Each routability-optimization round:
//   1. features are combined linearly and squashed through a log
//      (Eq. 14):   Pad(c) = log(max(sum_i alpha_i f_i(c) + beta, 1)) * mu
//   2. positive padding accumulates incrementally on the cell; cells
//      with non-positive padding *recycle* part of their history padding
//      at the rate of Eq. 15:  r_i(c) = (i - pt(c)) / (i + zeta)
//   3. the total padding area is capped by the round's target
//      utilization (Eq. 16), linearly ramped from pu_low to pu_high over
//      the xi optimization rounds; excess padding is scaled down.
//
// The optimizer trigger (end of SS III-B3) is also implemented here:
// fire when density overflow < tau AND the previous round's padding
// utilization < eta AND fewer than xi rounds have run.
#pragma once

#include <vector>

#include "congestion/estimator.h"
#include "netlist/design.h"
#include "padding/features.h"

namespace puffer {

struct PaddingParams {
  // Feature weights alpha_i, matching FeatureVector order:
  // local_cg, local_pin, sur_cg, sur_pin, pin_cg. The pin-density weights
  // carry more of the load than the congestion-ratio ones because the
  // detour-imitating expansion has already smoothed away most of the
  // Cg overflow by the time features are extracted; these defaults are
  // the starting point strategy exploration tunes from.
  double alpha[FeatureVector::kCount] = {1.5, 0.6, 1.2, 0.5, 0.25};
  double beta = 0.9;   // formula offset
  double mu = 6.0;     // padding magnitude (DBU of extra width per unit log)
  double zeta = 4.0;   // recycling effort (Eq. 15)

  double pu_low = 0.01;   // Eq. 16 ramp ends (fractions of the free area)
  double pu_high = 0.08;
  int xi = 8;             // max optimization rounds
  double tau = 0.30;      // density-overflow trigger
  // Utilization threshold: the optimizer keeps firing while the previous
  // round's applied padding stayed below eta of the free area (the
  // padding process is converging); an explosive round stops it.
  double eta = 0.25;
  // GP iterations run between consecutive padding rounds so the density
  // system absorbs the new areas before congestion is re-estimated.
  int spacing_iters = 25;

  FeatureConfig feature;
};

class PaddingEngine {
 public:
  // `movable` fixes the ordinal indexing of all padding vectors (use the
  // placement engine's movable_cells()).
  PaddingEngine(const Design& design, std::vector<CellId> movable,
                PaddingParams params);

  // Runs one padding round (Algorithm 1) from a congestion estimate.
  // Returns the cumulative padding width per movable ordinal.
  const std::vector<double>& update(const CongestionResult& congestion);

  // Trigger predicate for the routability optimizer.
  bool should_trigger(double density_overflow) const;

  const std::vector<double>& padding() const { return pad_; }
  // Applied padding area after the last round, as a fraction of the free
  // placement area A (drives the eta trigger condition).
  double last_utilization() const { return last_util_; }
  // Rounds in which at least one cell received positive padding. Rounds
  // where the features stayed below the Eq. 14 threshold count as
  // attempts (for the xi cap and Eq. 15) but not as padding rounds.
  int rounds() const { return applied_rounds_; }
  // Update() calls so far (the Eq. 15 / Eq. 16 round index).
  int attempts() const { return round_; }
  // Current total padding area (pad width x cell height, post-scaling)
  // and its maximum over all rounds so far.
  double applied_area() const { return last_area_; }
  double peak_applied_area() const { return peak_area_; }
  const PaddingParams& params() const { return params_; }
  // Feature-pipeline observability (extraction time, dirty fractions,
  // cache hit rates; see PaddingStageMetrics).
  const PaddingStageMetrics& stage_metrics() const {
    return extractor_.stage_metrics();
  }

  // Target utilization for round i (1-based), Eq. 16.
  double target_utilization(int i) const;

 private:
  const Design& design_;
  std::vector<CellId> movable_;
  PaddingParams params_;
  FeatureExtractor extractor_;

  std::vector<double> pad_;  // cumulative extra width per ordinal
  std::vector<int> pt_;      // times padded, per ordinal (Eq. 15)
  int round_ = 0;            // update() calls (Eq. 15/16 index)
  int applied_rounds_ = 0;   // rounds with positive padding applied
  double last_util_ = 0.0;
  double last_area_ = 0.0;
  double peak_area_ = 0.0;
  double avail_area_ = 1.0;
};

}  // namespace puffer
