// Fixed-width text table writer used by the benchmark harnesses to print
// paper-style tables (Table I, Table II) to stdout and CSV files.
#pragma once

#include <string>
#include <vector>

namespace puffer {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  // Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  // Renders with column alignment and a separator under the header.
  std::string to_string() const;

  // Comma-separated form (no escaping needed for our numeric content).
  std::string to_csv() const;

  std::size_t num_rows() const { return rows_.size(); }

  // Formatting helpers for numeric cells.
  static std::string fmt(double v, int precision);
  static std::string fmt_int(long long v);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace puffer
