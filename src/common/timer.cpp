#include "common/timer.h"

namespace puffer {

double StageTimes::get(const std::string& stage) const {
  auto it = times_.find(stage);
  return it == times_.end() ? 0.0 : it->second;
}

double StageTimes::total() const {
  double sum = 0.0;
  for (const auto& [name, secs] : times_) sum += secs;
  return sum;
}

}  // namespace puffer
