#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>

namespace puffer::par {
namespace {

// True while the current thread is executing a chunk; nested parallel
// regions run inline so a chunk can never deadlock waiting for workers
// that are busy running its parent.
thread_local bool t_in_parallel = false;

// Warm-spin budget: -1 = auto policy (see set_warm_spin_iters).
std::atomic<int> g_warm_spin_iters{-1};
constexpr int kDefaultWarmSpinIters = 4000;

inline void cpu_pause() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

// One dispatch: workers claim chunk indices with fetch_add on `next` and
// signal completion through `done`. The job is published via shared_ptr
// so a late-waking worker can never apply a stale counter to a new job.
struct Job {
  const ChunkFn* fn = nullptr;
  std::int64_t n = 0;
  std::int64_t grain = 1;
  std::int64_t begin = 0;
  int nchunks = 0;
  std::atomic<int> next{0};
  std::atomic<int> done{0};
};

class Pool {
 public:
  explicit Pool(int workers) : workers_(workers) {
    threads_.reserve(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i) {
      threads_.emplace_back([this] { worker_loop(); });
    }
  }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(m_);
      stop_ = true;
    }
    seq_.fetch_add(1, std::memory_order_release);  // break warm spins
    cv_work_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  void run(const std::shared_ptr<Job>& job) {
    {
      std::lock_guard<std::mutex> lock(m_);
      job_ = job;
    }
    seq_.fetch_add(1, std::memory_order_release);
    cv_work_.notify_all();
    exec(*job);
    std::unique_lock<std::mutex> lock(m_);
    cv_done_.wait(lock, [&] { return job->done.load() >= job->nchunks; });
    job_.reset();
  }

  // Keep-warm counter (see KeepWarmScope). Relaxed is fine: the spin is
  // an optimization; missing an increment only means one extra park.
  void warm_enter() { warm_.fetch_add(1, std::memory_order_relaxed); }
  void warm_exit() { warm_.fetch_sub(1, std::memory_order_relaxed); }

  int workers() const { return workers_; }

 private:
  // Effective spin budget for this pool under the current policy.
  int warm_spin_budget() const {
    const int pinned = g_warm_spin_iters.load(std::memory_order_relaxed);
    if (pinned >= 0) return pinned;
    const unsigned hw = std::thread::hardware_concurrency();
    // workers_ pool threads + the dispatching caller must all fit on the
    // hardware, else spinning steals cycles from whoever has real work.
    if (hw != 0 && static_cast<unsigned>(workers_) + 1 > hw) return 0;
    return kDefaultWarmSpinIters;
  }
  void exec(Job& j) {
    for (;;) {
      const int c = j.next.fetch_add(1, std::memory_order_relaxed);
      if (c >= j.nchunks) return;
      const auto [b, e] = chunk_range(j.n, j.nchunks, c);
      t_in_parallel = true;
      (*j.fn)(j.begin + b, j.begin + e, c);
      t_in_parallel = false;
      if (j.done.fetch_add(1, std::memory_order_acq_rel) + 1 == j.nchunks) {
        std::lock_guard<std::mutex> lock(m_);
        cv_done_.notify_all();
      }
    }
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      // Warm spin: watch the job sequence counter for a bounded number of
      // pause iterations before falling back to the parked cv wait. The
      // counter also bumps on shutdown, so the spin always terminates.
      if (warm_.load(std::memory_order_relaxed) > 0) {
        const int budget = warm_spin_budget();
        for (int i = 0; i < budget; ++i) {
          if (seq_.load(std::memory_order_acquire) != seen) break;
          cpu_pause();
        }
      }
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lock(m_);
        cv_work_.wait(lock, [&] {
          return stop_ || (job_ && job_->next.load() < job_->nchunks);
        });
        if (stop_) return;
        job = job_;
        seen = seq_.load(std::memory_order_relaxed);
      }
      if (job) exec(*job);
    }
  }

  std::mutex m_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::shared_ptr<Job> job_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
  const int workers_;
  std::atomic<int> warm_{0};
  std::atomic<std::uint64_t> seq_{0};
};

std::mutex g_cfg_mutex;
int g_threads = 0;  // 0 = not yet resolved
std::unique_ptr<Pool> g_pool;

// Worker budget still open to leases; -1 = not yet derived from g_threads.
int g_lease_available = -1;

// Private pool of the lease (if any) held by this thread. Checked by
// parallel_for before the shared pool so a leased session's kernels run on
// its own granted workers.
thread_local Pool* t_lease_pool = nullptr;
thread_local bool t_lease_held = false;

int resolve_default_threads() {
  if (const char* env = std::getenv("PUFFER_THREADS")) {
    const int v = std::atoi(env);
    if (v >= 1) return std::min(v, 256);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::clamp(hw, 1u, 64u));
}

void configure_locked(int n) {
  g_threads = n >= 1 ? std::min(n, 256) : resolve_default_threads();
  g_pool.reset();
  if (g_threads > 1) {
    g_pool = std::make_unique<Pool>(g_threads - 1);
  }
  g_lease_available = g_threads;
}

}  // namespace

int num_threads() {
  std::lock_guard<std::mutex> lock(g_cfg_mutex);
  if (g_threads == 0) configure_locked(0);
  return g_threads;
}

void set_num_threads(int n) {
  std::lock_guard<std::mutex> lock(g_cfg_mutex);
  configure_locked(n);
}

WorkerLease::WorkerLease(int want) {
  want = std::max(want, 1);
  {
    std::lock_guard<std::mutex> lock(g_cfg_mutex);
    if (g_threads == 0) configure_locked(0);
    // The owning thread always counts as one worker even when the budget
    // is exhausted (it cannot be un-spawned); extra workers only come out
    // of what is still unclaimed.
    granted_ = 1 + std::clamp(want - 1, 0, std::max(g_lease_available - 1, 0));
    g_lease_available = std::max(g_lease_available - granted_, 0);
  }
  if (granted_ > 1) {
    pool_ = static_cast<void*>(new Pool(granted_ - 1));
  }
  t_lease_pool = static_cast<Pool*>(pool_);
  t_lease_held = true;
}

WorkerLease::~WorkerLease() {
  t_lease_held = false;
  t_lease_pool = nullptr;
  delete static_cast<Pool*>(pool_);
  std::lock_guard<std::mutex> lock(g_cfg_mutex);
  g_lease_available = std::min(g_lease_available + granted_, g_threads);
}

int lease_budget_available() {
  std::lock_guard<std::mutex> lock(g_cfg_mutex);
  if (g_threads == 0) configure_locked(0);
  return g_lease_available;
}

KeepWarmScope::KeepWarmScope() {
  // Warm the pool this thread's parallel_for calls dispatch to: the
  // lease's private pool when a lease is held, else the shared pool.
  Pool* pool = nullptr;
  if (t_lease_held) {
    pool = t_lease_pool;
  } else {
    std::lock_guard<std::mutex> lock(g_cfg_mutex);
    if (g_threads == 0) configure_locked(0);
    pool = g_pool.get();
  }
  if (pool) pool->warm_enter();
  pool_ = static_cast<void*>(pool);
}

KeepWarmScope::~KeepWarmScope() {
  if (pool_) static_cast<Pool*>(pool_)->warm_exit();
}

void set_warm_spin_iters(int n) {
  g_warm_spin_iters.store(n < 0 ? -1 : n, std::memory_order_relaxed);
}

int chunk_count(std::int64_t n, std::int64_t grain, int max_chunks) {
  if (n <= 0) return 1;
  grain = std::max<std::int64_t>(grain, 1);
  const std::int64_t want = (n + grain - 1) / grain;
  return static_cast<int>(
      std::clamp<std::int64_t>(want, 1, std::max(max_chunks, 1)));
}

std::pair<std::int64_t, std::int64_t> chunk_range(std::int64_t n, int nchunks,
                                                  int c) {
  const std::int64_t base = n / nchunks;
  const std::int64_t rem = n % nchunks;
  const std::int64_t b = c * base + std::min<std::int64_t>(c, rem);
  const std::int64_t len = base + (c < rem ? 1 : 0);
  return {b, b + len};
}

void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const ChunkFn& fn, int max_chunks) {
  const std::int64_t n = end - begin;
  if (n <= 0) return;
  const int nchunks = chunk_count(n, grain, max_chunks);

  Pool* pool = nullptr;
  if (t_lease_held) {
    // Leased session: use the lease's private pool (possibly none -- a
    // one-worker grant runs inline). Never touch the shared pool, which
    // other sessions' leases may be using concurrently.
    pool = t_lease_pool;
  } else {
    std::lock_guard<std::mutex> lock(g_cfg_mutex);
    if (g_threads == 0) configure_locked(0);
    pool = g_pool.get();
  }

  if (nchunks == 1 || pool == nullptr || t_in_parallel) {
    // Serial path (and nested regions): chunks run inline in order --
    // identical decomposition, identical fold order.
    for (int c = 0; c < nchunks; ++c) {
      const auto [b, e] = chunk_range(n, nchunks, c);
      fn(begin + b, begin + e, c);
    }
    return;
  }

  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->n = n;
  job->grain = grain;
  job->begin = begin;
  job->nchunks = nchunks;
  pool->run(job);
}

}  // namespace puffer::par
