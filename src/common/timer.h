// Wall-clock timers and a named scope-timer registry used to report the
// per-stage runtime breakdown ("RT(s)" columns in Table II).
#pragma once

#include <chrono>
#include <map>
#include <string>

namespace puffer {

// Simple monotonic stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Accumulates time per named stage; used by the flow to print a breakdown.
class StageTimes {
 public:
  void add(const std::string& stage, double seconds) { times_[stage] += seconds; }
  double get(const std::string& stage) const;
  double total() const;
  const std::map<std::string, double>& all() const { return times_; }
  void clear() { times_.clear(); }

 private:
  std::map<std::string, double> times_;
};

// RAII helper: adds the scope's elapsed time to a StageTimes entry.
class ScopedStageTimer {
 public:
  ScopedStageTimer(StageTimes& times, std::string stage)
      : times_(times), stage_(std::move(stage)) {}
  ~ScopedStageTimer() { times_.add(stage_, timer_.elapsed_seconds()); }

  ScopedStageTimer(const ScopedStageTimer&) = delete;
  ScopedStageTimer& operator=(const ScopedStageTimer&) = delete;

 private:
  StageTimes& times_;
  std::string stage_;
  Timer timer_;
};

}  // namespace puffer
