#include "common/logger.h"

#include <mutex>

namespace puffer {
namespace {
std::mutex g_log_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    default:
      return "?    ";
  }
}
}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::log(LogLevel level, const char* tag, const char* fmt, ...) {
  if (static_cast<int>(level) < static_cast<int>(level_)) return;
  std::FILE* out = sink_ != nullptr ? sink_ : stderr;
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(out, "[%s] [%s] ", level_name(level), tag);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(out, fmt, args);
  va_end(args);
  std::fputc('\n', out);
  std::fflush(out);
}

}  // namespace puffer
