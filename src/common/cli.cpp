#include "common/cli.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace puffer {

const char* puffer_version() {
#ifdef PUFFER_VERSION
  return PUFFER_VERSION;
#else
  return "0.0.0-dev";
#endif
}

void handle_help_version(int argc, char** argv, const char* tool,
                         const std::string& usage) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      std::fputs(usage.c_str(), stdout);
      std::exit(0);
    }
    if (std::strcmp(argv[i], "--version") == 0) {
      std::printf("%s %s\n", tool, puffer_version());
      std::exit(0);
    }
  }
}

void usage_error(const std::string& usage, const std::string& problem) {
  if (!problem.empty()) {
    std::fprintf(stderr, "error: %s\n", problem.c_str());
  }
  std::fputs(usage.c_str(), stderr);
  std::exit(2);
}

}  // namespace puffer
