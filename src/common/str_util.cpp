#include "common/str_util.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace puffer {

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t j = i;
    while (j < s.size() && !std::isspace(static_cast<unsigned char>(s[j]))) ++j;
    if (j > i) out.emplace_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  std::size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string format_double_roundtrip(double value) {
  char buf[64];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    const double parsed = std::strtod(buf, nullptr);
    // Bit equality, not ==: distinguishes -0.0 from 0.0 and makes NaN
    // (formatted as "nan", parsed back as a NaN) terminate at 15.
    if (std::memcmp(&parsed, &value, sizeof value) == 0) break;
    if (std::isnan(parsed) && std::isnan(value)) break;
  }
  return buf;
}

}  // namespace puffer
