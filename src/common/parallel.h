// Deterministic, work-stealing-free parallel runtime.
//
// The placement kernels must produce bit-identical results run-to-run and
// across worker counts (the deterministic-RNG contract extends to
// threading). Two rules make that possible:
//
//  1. The iteration space [begin, end) is split into a *fixed* chunk
//     decomposition that depends only on the range size and the grain --
//     never on the worker count. Workers claim chunks dynamically, but a
//     chunk's contents are always the same.
//  2. A chunk may only write chunk-private scratch or chunk-owned output
//     (disjoint slices / row bands). Cross-chunk results are folded in
//     ascending chunk order on the calling thread, so floating-point
//     reductions have one canonical association.
//
// Worker count comes from set_num_threads(), the PUFFER_THREADS env var,
// or the hardware; 1 runs everything inline on the caller. Nested
// parallel_for calls from inside a chunk run inline as well.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace puffer::par {

// Current worker count (>= 1, counts the calling thread).
int num_threads();

// n >= 1 pins the worker count; n <= 0 re-resolves from PUFFER_THREADS /
// the hardware. Rebuilds the shared pool; do not call concurrently with a
// running parallel_for.
void set_num_threads(int n);

// Deterministic chunk count for a range of n items: ceil(n / grain),
// clamped to [1, max_chunks]. Independent of the worker count.
int chunk_count(std::int64_t n, std::int64_t grain, int max_chunks = 64);

// Half-open sub-range of chunk c when [0, n) is split into nchunks
// balanced chunks (sizes differ by at most one, earlier chunks larger).
std::pair<std::int64_t, std::int64_t> chunk_range(std::int64_t n, int nchunks,
                                                  int c);

using ChunkFn = std::function<void(std::int64_t, std::int64_t, int)>;

// Runs fn(chunk_begin, chunk_end, chunk_index) over the deterministic
// chunking of [begin, end). Chunks execute on arbitrary workers (the
// caller participates), so fn must follow the ownership rule above.
void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const ChunkFn& fn, int max_chunks = 64);

// Thread-budget lease for concurrent sessions (trial orchestration).
//
// A lease carves `want` workers -- including the calling thread itself --
// out of the process-wide budget (num_threads()). While the lease is
// alive, parallel_for calls issued *from the owning thread* dispatch onto
// a private pool of (granted - 1) helper threads instead of the shared
// pool, so K concurrent sessions holding leases never run more than
// num_threads() workers in total (K trials x N threads can't
// oversubscribe). The grant is clamped to the budget still available and
// is always >= 1 (the calling thread cannot be un-spawned).
//
// Leases never change results: the chunk decomposition is independent of
// the worker count, so a lease only moves where chunks execute. One lease
// per thread at a time; do not call set_num_threads() while any lease is
// alive (the budget is re-derived from the new worker count).
class WorkerLease {
 public:
  explicit WorkerLease(int want);
  ~WorkerLease();
  WorkerLease(const WorkerLease&) = delete;
  WorkerLease& operator=(const WorkerLease&) = delete;

  // Workers granted, counting the owning thread (1 = run inline).
  int workers() const { return granted_; }

 private:
  int granted_ = 1;
  void* pool_ = nullptr;  // opaque private pool (parallel.cpp)
};

// Budget (in workers) still available to new leases; num_threads() when
// none are held. Exposed for tests and scheduler metrics.
int lease_budget_available();

// Scoped keep-warm region (spin-then-park) for kernel-dense loops.
//
// Between two parallel_for calls the pool workers normally park on a
// condition variable; a tight kernel sequence (the Nesterov iteration
// runs half a dozen kernels back to back) then pays a futex wake per
// kernel. While a KeepWarmScope is alive, idle workers of the pool that
// dispatched the last job spin for a bounded number of pause iterations
// watching the job sequence counter before parking, so back-to-back
// kernels usually find them already running. Scopes nest (a counter);
// they never change results -- the chunk decomposition and fold orders
// are unaffected -- and the spin auto-disables when the pool is
// oversubscribed (more workers than hardware cores), where spinning
// would steal cycles from the thread doing the serial glue work.
// Do not call set_num_threads() while a scope is alive (same rule as
// WorkerLease: the scope pins the pool it warmed).
class KeepWarmScope {
 public:
  KeepWarmScope();
  ~KeepWarmScope();
  KeepWarmScope(const KeepWarmScope&) = delete;
  KeepWarmScope& operator=(const KeepWarmScope&) = delete;

 private:
  void* pool_ = nullptr;  // pool whose warm counter we hold (may be null)
};

// Spin budget (pause iterations) an idle warm worker burns before
// parking. n >= 0 pins the budget (0 disables spinning even inside a
// KeepWarmScope); n < 0 restores the default policy: a few thousand
// iterations, or 0 when the pool oversubscribes the hardware. Tests use
// this to force the spin path under TSAN regardless of core count.
void set_warm_spin_iters(int n);

// Maps each chunk to a partial value and folds the partials with += in
// ascending chunk order. MapFn: T(std::int64_t chunk_begin, chunk_end).
template <typename T, typename MapFn>
T parallel_reduce(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  T init, MapFn map_chunk, int max_chunks = 16) {
  const std::int64_t n = end - begin;
  if (n <= 0) return init;
  const int nchunks = chunk_count(n, grain, max_chunks);
  std::vector<T> partial(static_cast<std::size_t>(nchunks), init);
  parallel_for(
      begin, end, grain,
      [&](std::int64_t b, std::int64_t e, int c) {
        partial[static_cast<std::size_t>(c)] = map_chunk(b, e);
      },
      max_chunks);
  T total = init;
  for (const T& p : partial) total += p;
  return total;
}

}  // namespace puffer::par
