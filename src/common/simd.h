// Guarded SIMD helpers for the element-wise placement kernels.
//
// Only operations that are bit-identical to the scalar loop are offered:
// per-lane IEEE add/sub/mul/div/min/max on independent elements (no FMA
// contraction, no reassociated reductions). That keeps the determinism
// contract symmetric in PUFFER_SIMD: toggling the option -- or the
// PUFFER_SIMD=0/1 env override -- never changes a single bit of any
// kernel's output, so the SIMD path needs no separate golden data.
//
// Dispatch is runtime (simd::enabled()), compiled in only when the
// target supports SSE2 (always true on x86-64); everything falls back to
// the scalar loop otherwise. The CMake option PUFFER_SIMD picks the
// compile-time default; the PUFFER_SIMD env var overrides at startup and
// simd::set_enabled() overrides from tests.
#pragma once

#include <algorithm>
#include <cstddef>

#if defined(__SSE2__) || defined(_M_X64) || defined(__x86_64__)
#define PUFFER_SIMD_SSE2 1
#include <emmintrin.h>
#endif

namespace puffer::simd {

// Runtime switch: compile-time default (PUFFER_SIMD CMake option),
// overridden once by the PUFFER_SIMD env var, then by set_enabled().
bool enabled();
void set_enabled(bool on);

// "sse2" when the vector path is compiled in and enabled, else "scalar".
const char* active_isa();

// out[i] = a[i] - s * b[i]  (the Nesterov position update).
inline void sub_scaled(const double* a, const double* b, double s, double* out,
                       std::size_t n) {
#if PUFFER_SIMD_SSE2
  if (enabled()) {
    const __m128d vs = _mm_set1_pd(s);
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
      const __m128d va = _mm_loadu_pd(a + i);
      const __m128d vb = _mm_loadu_pd(b + i);
      _mm_storeu_pd(out + i, _mm_sub_pd(va, _mm_mul_pd(vs, vb)));
    }
    for (; i < n; ++i) out[i] = a[i] - s * b[i];
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] - s * b[i];
}

// out[i] = a[i] + s * (a[i] - b[i])  (the Nesterov extrapolation).
inline void extrapolate(const double* a, const double* b, double s,
                        double* out, std::size_t n) {
#if PUFFER_SIMD_SSE2
  if (enabled()) {
    const __m128d vs = _mm_set1_pd(s);
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
      const __m128d va = _mm_loadu_pd(a + i);
      const __m128d vb = _mm_loadu_pd(b + i);
      _mm_storeu_pd(out + i,
                    _mm_add_pd(va, _mm_mul_pd(vs, _mm_sub_pd(va, vb))));
    }
    for (; i < n; ++i) out[i] = a[i] + s * (a[i] - b[i]);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] + s * (a[i] - b[i]);
}

// out[i] = a[i] + b[i]  (density-map accumulation).
inline void add(const double* a, const double* b, double* out,
                std::size_t n) {
#if PUFFER_SIMD_SSE2
  if (enabled()) {
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
      _mm_storeu_pd(out + i,
                    _mm_add_pd(_mm_loadu_pd(a + i), _mm_loadu_pd(b + i)));
    }
    for (; i < n; ++i) out[i] = a[i] + b[i];
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
}

// x[i] = clamp(x[i], lo[i], hi[i]); lo/hi are per-element (per-cell half
// extents). The scalar path mirrors MAXPD/MINPD operand semantics
// ((a > b) ? a : b, second operand on ties) so on/off stays bit-equal
// even in the +-0 corner.
inline void clamp_to(double* x, const double* lo, const double* hi,
                     std::size_t n) {
#if PUFFER_SIMD_SSE2
  if (enabled()) {
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
      __m128d v = _mm_loadu_pd(x + i);
      v = _mm_max_pd(v, _mm_loadu_pd(lo + i));
      v = _mm_min_pd(v, _mm_loadu_pd(hi + i));
      _mm_storeu_pd(x + i, v);
    }
    for (; i < n; ++i) {
      double v = x[i];
      v = v > lo[i] ? v : lo[i];
      v = v < hi[i] ? v : hi[i];
      x[i] = v;
    }
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) {
    double v = x[i];
    v = v > lo[i] ? v : lo[i];
    v = v < hi[i] ? v : hi[i];
    x[i] = v;
  }
}

}  // namespace puffer::simd
