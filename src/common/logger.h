// Lightweight leveled logger for the PUFFER framework.
//
// The logger writes to stderr by default; the sink can be redirected for
// tests. Formatting uses printf-style varargs kept out of headers via a
// small set of overloads, so the library has no external dependencies.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>

namespace puffer {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kSilent = 4,
};

// Global logger. Thread-safe for concurrent logging calls; level changes
// should happen at setup time.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  // Redirect output (e.g. to a file opened by the caller). The logger does
  // not own the stream; pass nullptr to restore stderr.
  void set_sink(std::FILE* sink) { sink_ = sink; }

  void log(LogLevel level, const char* tag, const char* fmt, ...)
#if defined(__GNUC__)
      __attribute__((format(printf, 4, 5)))
#endif
      ;

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kInfo;
  std::FILE* sink_ = nullptr;
};

#define PUFFER_LOG_DEBUG(tag, ...) \
  ::puffer::Logger::instance().log(::puffer::LogLevel::kDebug, tag, __VA_ARGS__)
#define PUFFER_LOG_INFO(tag, ...) \
  ::puffer::Logger::instance().log(::puffer::LogLevel::kInfo, tag, __VA_ARGS__)
#define PUFFER_LOG_WARN(tag, ...) \
  ::puffer::Logger::instance().log(::puffer::LogLevel::kWarn, tag, __VA_ARGS__)
#define PUFFER_LOG_ERROR(tag, ...) \
  ::puffer::Logger::instance().log(::puffer::LogLevel::kError, tag, __VA_ARGS__)

}  // namespace puffer
