#include "common/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace puffer::simd {
namespace {

#ifndef PUFFER_SIMD_DEFAULT
#define PUFFER_SIMD_DEFAULT 1
#endif

bool initial_enabled() {
  if (const char* env = std::getenv("PUFFER_SIMD")) {
    if (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0) {
      return false;
    }
    if (std::strcmp(env, "1") == 0 || std::strcmp(env, "on") == 0) {
      return true;
    }
  }
  return PUFFER_SIMD_DEFAULT != 0;
}

std::atomic<bool> g_enabled{initial_enabled()};

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

const char* active_isa() {
#if PUFFER_SIMD_SSE2
  return enabled() ? "sse2" : "scalar";
#else
  return "scalar";
#endif
}

}  // namespace puffer::simd
