// Deterministic random number generation.
//
// Every stochastic component in the framework (synthetic benchmark
// generation, initial-placement jitter, TPE candidate sampling) draws from
// an explicitly seeded Rng so that experiments are exactly reproducible.
#pragma once

#include <cstdint>
#include <random>

namespace puffer {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  // Standard normal scaled by sigma around mu.
  double normal(double mu, double sigma) {
    return std::normal_distribution<double>(mu, sigma)(engine_);
  }

  // Bernoulli trial.
  bool chance(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  // Geometric-ish heavy-tail draw used for net degrees; returns >= lo.
  std::int64_t heavy_tail_int(std::int64_t lo, std::int64_t hi, double decay) {
    std::int64_t v = lo;
    while (v < hi && chance(decay)) ++v;
    return v;
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

// Counter-based splittable stream for trial orchestration.
//
// State is two words: a stream `key` (identity) and a draw `counter`
// (position). Outputs come from the SplitMix64 finalizer applied to the
// keyed counter, so the stream is random-access and the full state
// serializes as two uint64s (checkpoints store it verbatim).
//
// split(child_id) derives a child stream from the parent's *key only* --
// never from its counter -- so per-trial streams are a pure function of
// (root seed, trial id). Trials scheduled in any order, or re-derived
// after a crash-resume, get bit-identical streams.
class RngStream {
 public:
  explicit RngStream(std::uint64_t seed) : key_(mix64(seed ^ kSeedSalt)) {}

  std::uint64_t next_u64() { return mix64(key_ + kGolden * ++counter_); }

  // Uniform double in [lo, hi) with a 53-bit mantissa.
  double uniform(double lo, double hi) {
    const double u =
        static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
    return lo + (hi - lo) * u;
  }

  // Uniform integer in [lo, hi] inclusive (hi >= lo); unbiased enough for
  // orchestration use (rejection-free multiply-shift).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
    const unsigned __int128 wide =
        static_cast<unsigned __int128>(next_u64()) * span;
    return lo + static_cast<std::int64_t>(wide >> 64);
  }

  // Child stream keyed by (this stream's identity, child_id). Does not
  // advance or read the parent's counter: order-independent.
  RngStream split(std::uint64_t child_id) const {
    RngStream child(0);
    child.key_ = mix64(key_ ^ mix64(child_id + kSplitSalt));
    child.counter_ = 0;
    return child;
  }

  // --- serialization (checkpoint round-trip) ---------------------------
  std::uint64_t key() const { return key_; }
  std::uint64_t counter() const { return counter_; }
  static RngStream from_state(std::uint64_t key, std::uint64_t counter) {
    RngStream s(0);
    s.key_ = key;
    s.counter_ = counter;
    return s;
  }

  bool operator==(const RngStream& o) const {
    return key_ == o.key_ && counter_ == o.counter_;
  }

 private:
  static constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;
  static constexpr std::uint64_t kSeedSalt = 0x5851f42d4c957f2dULL;
  static constexpr std::uint64_t kSplitSalt = 0xd1b54a32d192ed03ULL;

  static std::uint64_t mix64(std::uint64_t z) {
    z += kGolden;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::uint64_t key_ = 0;
  std::uint64_t counter_ = 0;
};

}  // namespace puffer
