// Deterministic random number generation.
//
// Every stochastic component in the framework (synthetic benchmark
// generation, initial-placement jitter, TPE candidate sampling) draws from
// an explicitly seeded Rng so that experiments are exactly reproducible.
#pragma once

#include <cstdint>
#include <random>

namespace puffer {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  // Standard normal scaled by sigma around mu.
  double normal(double mu, double sigma) {
    return std::normal_distribution<double>(mu, sigma)(engine_);
  }

  // Bernoulli trial.
  bool chance(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  // Geometric-ish heavy-tail draw used for net degrees; returns >= lo.
  std::int64_t heavy_tail_int(std::int64_t lo, std::int64_t hi, double decay) {
    std::int64_t v = lo;
    while (v < hi && chance(decay)) ++v;
    return v;
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace puffer
