// Shared command-line conventions for the tools/ binaries.
//
// Every tool supports `--help` (usage to stdout, exit 0) and
// `--version` ("<tool> <version>" to stdout, exit 0); usage errors
// print to stderr and exit 2. Tools call handle_help_version() before
// their own argument loop and usage_error() from it.
#pragma once

#include <string>

namespace puffer {

// Build version string ("0.0.0-dev" when the build does not inject
// PUFFER_VERSION).
const char* puffer_version();

// Scans argv for --help/-h/--version; when found, prints (usage text
// for help, "<tool> <version>" for version) and exits 0. `usage` is the
// full help text, newline-terminated.
void handle_help_version(int argc, char** argv, const char* tool,
                         const std::string& usage);

// Prints the usage text to stderr and exits 2 (the usage-error code).
[[noreturn]] void usage_error(const std::string& usage,
                              const std::string& problem = "");

}  // namespace puffer
