// Small string utilities shared by the Bookshelf parser and report writers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace puffer {

// Splits on any run of whitespace; no empty tokens are produced.
std::vector<std::string> split_ws(std::string_view s);

// Removes leading/trailing whitespace.
std::string_view trim(std::string_view s);

// True if `s` begins with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

// Case-insensitive equality (ASCII).
bool iequals(std::string_view a, std::string_view b);

// Shortest decimal representation that parses back to the exact same
// double: tries %.15g, %.16g, %.17g and keeps the first whose strtod
// result is bit-equal. 15 digits suffice for most values (and avoid
// noise like 0.1 -> "0.10000000000000001"); 17 always round-trips.
std::string format_double_roundtrip(double value);

}  // namespace puffer
