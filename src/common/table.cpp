#include "common/table.h"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace puffer {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("TextTable row arity mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c];
      os << std::string(widths[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  emit_row(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string TextTable::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string TextTable::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::fmt_int(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

}  // namespace puffer
