// Abacus legalization (Spindler et al. [20]) over macro-aware row
// segments, extended with white-space-assisted padding (paper §III-D):
// each cell's effective width during legalization is its physical width
// plus its discrete padding, so congested-region cells keep the
// surrounding white space they earned during global placement.
//
// The implementation follows the deterministic snapshot/commit pattern
// established by the router and the demand ledger:
//
//  * All segment arithmetic (widths, segment bounds, cluster positions,
//    occupancy) is carried in integer *site units* relative to each
//    row's origin, so capacity and overlap guards are exact comparisons
//    instead of the absolute 1e-9/1e-12 epsilons of the original code
//    (which fall below double ULP once the core sits at a 1e7-DBU
//    offset). Doubles appear only at the world<->site conversion
//    boundary and in the cluster weight recurrence.
//  * A serial, deterministic *assignment* pass fixes each cell's
//    (row, segment) and its padded slot, processing cells in (x, id)
//    order with a displacement-bounded candidate-row window; then all
//    rows *finalize concurrently* (cluster snapping + position
//    write-back) — row contents are independent once assignment is
//    frozen, so the result is bit-identical for any PUFFER_THREADS.
//  * `IncrementalLegalizer` keeps a per-row ledger (input-position
//    snapshot, per-cell decisions with their examined row windows, and
//    per-row final segment state) so a repeat round only re-runs the
//    candidate search for cells that moved or whose examined rows
//    changed; everything else replays its recorded commit. Results are
//    bit-identical to a from-scratch run on the same input, enforced by
//    a periodic verified full rebuild (drift_count must stay 0), the
//    same contract as congestion/demand_ledger.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "netlist/design.h"

namespace puffer {

struct LegalizeConfig {
  // Rows examined per cell, around the cell's global-placement row; the
  // search stops early once the row's y-displacement alone exceeds the
  // best complete cost.
  int max_row_search = 64;
  // Incremental path: every Nth call runs the ledger path *and* a
  // from-scratch rebuild and compares the outputs bitwise (a mismatch
  // bumps drift_count and adopts the rebuild).
  int full_rebuild_interval = 16;
  // Incremental path: fall back to a full run when more than this
  // fraction of movable cells moved since the last call.
  double max_dirty_frac = 0.5;
};

// Returns `config` with out-of-range knobs clamped to sane values
// (full_rebuild_interval < 1 -> 1, max_dirty_frac clamped to [0, 1]);
// throws std::invalid_argument for values no clamp can repair
// (non-positive max_row_search). IncrementalLegalizer validates on
// construction; the free legalize() validates per call.
LegalizeConfig validate_legalize_config(LegalizeConfig config);

struct LegalizeResult {
  bool success = true;
  int failed_cells = 0;       // cells that fit in no segment (left unmoved)
  double total_displacement = 0.0;
  double max_displacement = 0.0;
  int placed = 0;
  // Stage observability (wired into FlowMetrics / the experiment log).
  double time_s = 0.0;
  bool incremental = false;   // ledger path (vs from-scratch)
  int replayed_cells = 0;     // decisions replayed without a search
  int redecided_cells = 0;    // cells that ran the full candidate search
  int rows_rebuilt = 0;       // rows whose segments were rebuilt this call
  int rows_total = 0;

  double avg_displacement() const {
    return placed > 0 ? total_displacement / placed : 0.0;
  }
  double dirty_row_frac() const {
    return rows_total > 0
               ? static_cast<double>(rows_rebuilt) /
                     static_cast<double>(rows_total)
               : 0.0;
  }
};

// Observability for the incremental path (mirrors IncrementalStats of
// the congestion ledger).
struct IncrementalLegalStats {
  int calls = 0;
  int full_runs = 0;           // from-scratch calls (first, forced, fallback)
  int verified_rebuilds = 0;   // calls that also ran the drift check
  std::int64_t replayed_cells = 0;
  std::int64_t redecided_cells = 0;
  double incremental_time_s = 0.0;
  double full_time_s = 0.0;
  // Verified-rebuild mismatches (must stay 0).
  std::uint64_t drift_count = 0;
};

// Stateful legalizer whose ledger survives across calls. Inputs are the
// design's *current* cell positions; a cell is dirty when its position,
// width or padding differs bitwise from the previous call's input. The
// caller owns the pre-legal placement: positions this class writes back
// are outputs, not next-round inputs (restore or re-place before the
// next call, as the padding loop and TPE trials do).
class IncrementalLegalizer {
 public:
  // Validates `config` (throws std::invalid_argument, see
  // validate_legalize_config).
  explicit IncrementalLegalizer(LegalizeConfig config = {});
  ~IncrementalLegalizer();
  IncrementalLegalizer(const IncrementalLegalizer&) = delete;
  IncrementalLegalizer& operator=(const IncrementalLegalizer&) = delete;

  // Legalizes all movable cells in place; bit-identical to the free
  // legalize() on the same input for any PUFFER_THREADS value.
  LegalizeResult legalize(Design& design,
                          const std::vector<int>& pad_sites = {});

  // Drops the ledger; the next call runs from scratch.
  void invalidate();

  const IncrementalLegalStats& stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// Legalizes all movable cells in place, from scratch. `pad_sites` is the
// per-CellId discrete padding in sites (empty = no padding). Cell
// positions are updated to legal, non-overlapping, row/site-aligned
// locations centered inside their padded slots.
LegalizeResult legalize(Design& design, const std::vector<int>& pad_sites = {},
                        const LegalizeConfig& config = {});

}  // namespace puffer
