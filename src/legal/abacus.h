// Abacus legalization (Spindler et al. [20]) over macro-aware row
// segments, extended with white-space-assisted padding (paper SS III-D):
// each cell's effective width during legalization is its physical width
// plus its discrete padding, so congested-region cells keep the
// surrounding white space they earned during global placement.
//
// Cells are processed in increasing x; per candidate row the classic
// Abacus cluster recurrence computes the minimal-displacement positions,
// and the best row within a displacement-bounded search wins.
#pragma once

#include <vector>

#include "netlist/design.h"

namespace puffer {

struct LegalizeConfig {
  // Rows examined per cell, around the cell's global-placement row; the
  // search stops early once the row's y-displacement alone exceeds the
  // best complete cost.
  int max_row_search = 64;
};

struct LegalizeResult {
  bool success = true;
  int failed_cells = 0;       // cells that fit in no segment (left overlapped)
  double total_displacement = 0.0;
  double max_displacement = 0.0;
  double avg_displacement() const {
    return placed > 0 ? total_displacement / placed : 0.0;
  }
  int placed = 0;
};

// Legalizes all movable cells in place. `pad_sites` is the per-CellId
// discrete padding in sites (empty = no padding). Cell positions are
// updated to legal, non-overlapping, row/site-aligned locations centered
// inside their padded slots.
LegalizeResult legalize(Design& design, const std::vector<int>& pad_sites = {},
                        const LegalizeConfig& config = {});

}  // namespace puffer
