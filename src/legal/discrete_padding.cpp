#include "legal/discrete_padding.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace puffer {

std::vector<int> discretize_padding(const Design& design,
                                    const std::vector<double>& pad,
                                    const DiscretePaddingConfig& config) {
  std::vector<int> levels(design.cells.size(), 0);
  double mp = 0.0;
  for (std::size_t c = 0; c < design.cells.size(); ++c) {
    if (c < pad.size() && design.cells[c].movable()) {
      mp = std::max(mp, pad[c]);
    }
  }
  if (mp <= 0.0) return levels;

  for (std::size_t c = 0; c < design.cells.size(); ++c) {
    if (c >= pad.size() || !design.cells[c].movable() || pad[c] <= 0.0) continue;
    levels[c] = static_cast<int>(std::floor(config.theta * pad[c] / mp + 0.5));
  }

  // Utilization control: total discrete padding area vs movable area.
  const double site_area = design.tech.site_width * design.tech.row_height;
  const double budget = config.max_pad_area_frac * design.movable_area();
  auto pad_area = [&]() {
    double a = 0.0;
    for (std::size_t c = 0; c < design.cells.size(); ++c) {
      a += levels[c] * site_area;
    }
    return a;
  };

  if (pad_area() <= budget) return levels;

  // Relegate: within each occupied level, the smallest-Pad cells drop a
  // level first. Sorting by (level, pad) ascending and demoting in order
  // visits exactly those cells; repeat passes until the budget holds.
  std::vector<std::size_t> padded;
  for (std::size_t c = 0; c < design.cells.size(); ++c) {
    if (levels[c] > 0) padded.push_back(c);
  }
  double area = pad_area();
  while (area > budget) {
    std::sort(padded.begin(), padded.end(), [&](std::size_t a, std::size_t b) {
      if (levels[a] != levels[b]) return levels[a] < levels[b];
      return pad[a] < pad[b];
    });
    bool any = false;
    for (std::size_t c : padded) {
      if (area <= budget) break;
      if (levels[c] == 0) continue;
      levels[c] -= 1;
      area -= site_area;
      any = true;
    }
    if (!any) break;
  }
  return levels;
}

}  // namespace puffer
