// White-space-assisted legalization support: discretization of the
// global-placement padding onto the site grid (paper SS III-D, Eq. 17).
//
//   DisPad(c) = round(theta * Pad(c) / mp)  sites,
//
// where mp is the maximum padding over all cells and theta the strategy
// parameter setting the number of discrete levels. (The published
// rendering of Eq. 17 places the +1/2 inside the scaling; we read it as
// the conventional round-to-nearest of the scaled level, which keeps
// DisPad(0) = 0.) The total discrete padding area is limited to
// `max_pad_area_frac` of the movable cell area; while over budget, the
// cells with the smallest padding within each occupied level are
// relegated one level down.
#pragma once

#include <vector>

#include "netlist/design.h"

namespace puffer {

struct DiscretePaddingConfig {
  double theta = 8.0;            // number of discrete levels
  double max_pad_area_frac = 0.05;  // cap vs. total movable cell area
};

// `pad` is indexed by CellId (0 for cells without padding). Returns the
// per-cell discrete padding in *sites*, same indexing.
std::vector<int> discretize_padding(const Design& design,
                                    const std::vector<double>& pad,
                                    const DiscretePaddingConfig& config = {});

}  // namespace puffer
