#include "legal/legality.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

namespace puffer {

LegalityReport check_legality(const Design& design) {
  LegalityReport report;
  const double eps = 1e-6;

  // Grid alignment and die containment.
  const double row_h = design.rows.empty() ? 1.0 : design.rows.front().height;
  const double row_y0 = design.rows.empty() ? 0.0 : design.rows.front().y;
  for (const Cell& c : design.cells) {
    if (!c.movable()) continue;
    if (c.x < design.die.xlo - eps || c.x + c.width > design.die.xhi + eps ||
        c.y < design.die.ylo - eps || c.y + c.height > design.die.yhi + eps) {
      ++report.out_of_die;
    }
    const double ry = (c.y - row_y0) / row_h;
    if (std::abs(ry - std::round(ry)) > 1e-6) ++report.off_grid;
  }

  // Overlaps via a sweep over cells sorted by x (movables vs movables and
  // movables vs macros).
  struct Box {
    Rect r;
    bool macro;
  };
  std::vector<Box> boxes;
  for (const Cell& c : design.cells) {
    if (c.movable()) boxes.push_back({c.rect(), false});
    else if (c.is_macro()) boxes.push_back({c.rect(), true});
  }
  std::sort(boxes.begin(), boxes.end(),
            [](const Box& a, const Box& b) { return a.r.xlo < b.r.xlo; });
  for (std::size_t i = 0; i < boxes.size(); ++i) {
    for (std::size_t j = i + 1; j < boxes.size(); ++j) {
      if (boxes[j].r.xlo >= boxes[i].r.xhi - eps) break;
      if (boxes[i].macro && boxes[j].macro) continue;
      const double ov = boxes[i].r.overlap_area(boxes[j].r);
      if (ov > eps) ++report.overlaps;
    }
  }

  report.legal =
      report.overlaps == 0 && report.off_grid == 0 && report.out_of_die == 0;
  return report;
}

std::string LegalityReport::summary() const {
  std::ostringstream os;
  os << (legal ? "legal" : "ILLEGAL") << " (overlaps=" << overlaps
     << ", off_grid=" << off_grid << ", out_of_die=" << out_of_die << ")";
  return os.str();
}

}  // namespace puffer
