#include "legal/abacus.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <utility>

#include "common/logger.h"
#include "common/parallel.h"
#include "common/timer.h"

namespace puffer {
namespace {

constexpr const char* kTag = "legal";

// World -> site-index conversion tolerance, in *sites*. Conversions first
// subtract the row origin, so the operand is O(num_sites) and an absolute
// tolerance is meaningful at any core offset (the seed code compared
// 1e7-DBU world coordinates against 1e-9/1e-12 absolute epsilons, which
// is below double ULP at that magnitude). All arithmetic after the
// conversion is exact int64.
constexpr double kSiteSnap = 1e-6;

// Guards the cluster-position division against degenerate weights
// (weights are floored at 1.0 below, this is belt-and-braces for NaN /
// denormal areas).
constexpr double kMinWeight = 1e-12;

struct SegCell {
  CellId id = kInvalidId;
  std::int64_t w = 0;   // padded width in sites (physical ceil, min 1, + pad)
  std::int64_t lp = 0;  // left padding in sites (pad / 2)
  std::int64_t t = 0;   // desired slot left edge, site units
  double e = 0.0;       // Abacus weight (cell area, floored at 1.0)

  bool same_as(const SegCell& o) const {
    return w == o.w && lp == o.lp && t == o.t &&
           std::memcmp(&e, &o.e, sizeof(double)) == 0;
  }
};

struct Cluster {
  std::int64_t x = 0;  // left edge (site units, clamped + rounded)
  std::int64_t w = 0;  // total width
  double e = 0.0;      // total weight
  double q = 0.0;      // sum of e_i * (target_i - offset_i)
};

struct Segment {
  std::int64_t lo = 0, hi = 0;  // static bounds, site units
  std::int64_t used = 0;
  std::vector<SegCell> cells;    // committed, in assignment order
  std::vector<Cluster> clusters;
};

struct RowState {
  std::vector<Segment> segments;
};

// Static per-row geometry: origin, site pitch and the macro-free
// segment intervals in site units.
struct RowGeom {
  double y = 0.0;
  double x0 = 0.0;
  double site = 1.0;
  std::vector<std::pair<std::int64_t, std::int64_t>> segs;
};

// One cell's recorded assignment plus the candidate-row window whose
// segment state the search actually read; the decision replays verbatim
// while every row in [rmin, rmax] is clean (see the walk below).
struct Decision {
  std::int32_t row = -1;
  std::int32_t seg = -1;
  std::int32_t rmin = 0, rmax = -1;  // empty window when rmax < rmin
  SegCell sc;

  bool same_as(const Decision& o) const {
    return row == o.row && seg == o.seg && sc.same_as(o.sc);
  }
};

// Simulates appending `cell` to the segment (the Abacus collapse
// recurrence); with `commit` the merge is applied. Returns false when
// the segment cannot hold the cell — an exact integer capacity check.
bool trial_or_commit(Segment& seg, const SegCell& cell, bool commit,
                     std::int64_t& out_x) {
  if (cell.w > (seg.hi - seg.lo) - seg.used) return false;
  double e = std::max(cell.e, kMinWeight);
  double q = e * static_cast<double>(cell.t);
  std::int64_t w = cell.w;
  std::int64_t offset = 0;  // cell's offset inside the accumulated cluster
  int i = static_cast<int>(seg.clusters.size()) - 1;
  std::int64_t x = 0;
  while (true) {
    const double xr = q / std::max(e, kMinWeight);
    x = std::llround(xr);
    if (x < seg.lo) x = seg.lo;
    if (x > seg.hi - w) x = seg.hi - w;
    if (i < 0) break;
    const Cluster& prev = seg.clusters[static_cast<std::size_t>(i)];
    if (prev.x + prev.w <= x) break;  // exact: site units, no epsilon
    // Merge prev in front of the accumulator.
    q = prev.q + (q - e * static_cast<double>(prev.w));
    e += prev.e;
    w += prev.w;
    offset += prev.w;
    --i;
  }
  out_x = x + offset;
  if (!commit) return true;

  seg.clusters.resize(static_cast<std::size_t>(i + 1));
  seg.clusters.push_back({x, w, e, q});
  seg.cells.push_back(cell);
  seg.used += cell.w;
  return true;
}

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

template <typename T>
std::uint64_t fnv1a_pod(std::uint64_t h, const T& v) {
  return fnv1a(h, &v, sizeof(T));
}

// Everything the ledger's validity depends on besides cell positions /
// widths / padding: row geometry, macro blockages, cell count and the
// movable partition.
std::uint64_t structure_key(const Design& design) {
  std::uint64_t h = 1469598103934665603ull;
  h = fnv1a_pod(h, design.rows.size());
  for (const Row& r : design.rows) {
    h = fnv1a_pod(h, r.y);
    h = fnv1a_pod(h, r.x_lo);
    h = fnv1a_pod(h, r.num_sites);
    h = fnv1a_pod(h, r.site_width);
    h = fnv1a_pod(h, r.height);
  }
  h = fnv1a_pod(h, design.cells.size());
  for (const Cell& c : design.cells) {
    h = fnv1a_pod(h, c.kind);
    if (c.is_macro()) {
      const Rect r = c.rect();
      h = fnv1a_pod(h, r.xlo);
      h = fnv1a_pod(h, r.ylo);
      h = fnv1a_pod(h, r.xhi);
      h = fnv1a_pod(h, r.yhi);
    }
  }
  return h;
}

// Builds macro-aware row segments: macros are indexed once into per-row
// blockage lists (O(macros x spanned rows), not the O(cells x rows) scan
// of the seed code), then rows convert to site intervals concurrently.
std::vector<RowGeom> build_geometry(const Design& design) {
  const std::size_t nrows = design.rows.size();
  const double row_h = design.rows.front().height;
  const double row_y0 = design.rows.front().y;
  std::vector<std::vector<std::pair<double, double>>> blocks(nrows);
  for (const Cell& c : design.cells) {
    if (!c.is_macro()) continue;
    const Rect r = c.rect();
    const int r0 = std::max(
        0, static_cast<int>(std::floor((r.ylo - row_y0) / row_h)) - 1);
    const int r1 = std::min(
        static_cast<int>(nrows) - 1,
        static_cast<int>(std::ceil((r.yhi - row_y0) / row_h)) + 1);
    for (int ri = r0; ri <= r1; ++ri) {
      const Row& row = design.rows[static_cast<std::size_t>(ri)];
      if (r.ylo < row.y + row.height - 1e-9 && r.yhi > row.y + 1e-9) {
        blocks[static_cast<std::size_t>(ri)].emplace_back(r.xlo, r.xhi);
      }
    }
  }

  std::vector<RowGeom> geom(nrows);
  par::parallel_for(0, static_cast<std::int64_t>(nrows), 8,
                    [&](std::int64_t b, std::int64_t e, int) {
    for (std::int64_t ri = b; ri < e; ++ri) {
      const Row& row = design.rows[static_cast<std::size_t>(ri)];
      RowGeom& g = geom[static_cast<std::size_t>(ri)];
      g.y = row.y;
      g.x0 = row.x_lo;
      g.site = row.site_width > 0.0 ? row.site_width : 1.0;
      // Row::num_sites is authoritative — never re-derived from world
      // coordinates (the seed's floor((x_hi-x_lo)/site + 1e-9) loses a
      // site once the offset exceeds ~1e7 DBU).
      const std::int64_t row_sites = row.num_sites;
      auto& blist = blocks[static_cast<std::size_t>(ri)];
      std::sort(blist.begin(), blist.end());
      std::int64_t cursor = 0;
      auto push_segment = [&](std::int64_t lo, std::int64_t hi) {
        if (hi - lo >= 1) g.segs.emplace_back(lo, hi);
      };
      for (const auto& [blo, bhi] : blist) {
        // Last fully-free site before the blockage / first after it.
        std::int64_t blo_s = static_cast<std::int64_t>(
            std::floor((blo - g.x0) / g.site + kSiteSnap));
        std::int64_t bhi_s = static_cast<std::int64_t>(
            std::ceil((bhi - g.x0) / g.site - kSiteSnap));
        blo_s = std::clamp<std::int64_t>(blo_s, 0, row_sites);
        bhi_s = std::clamp<std::int64_t>(bhi_s, 0, row_sites);
        if (blo_s > cursor) push_segment(cursor, blo_s);
        cursor = std::max(cursor, bhi_s);
        if (cursor >= row_sites) break;
      }
      if (cursor < row_sites) push_segment(cursor, row_sites);
    }
  });
  return geom;
}

// --- the run engine ------------------------------------------------------
//
// A run legalizes one input state (positions px/py + padding) over the
// static geometry. The serial walk fixes every cell's (row, segment,
// slot); rows finalize concurrently afterwards. In incremental mode rows
// start *frozen* on their stored state and are materialized lazily, and
// clean cells replay their recorded commit without a candidate search.
struct Engine {
  const Design& design;
  const LegalizeConfig& config;
  const std::vector<RowGeom>& geom;
  const std::vector<double>& px;  // input positions (this call)
  const std::vector<double>& py;
  const std::vector<int>& pads;   // normalized per-cell padding (sites)

  double row_h = 1.0, row_y0 = 0.0;
  int nrows = 0;

  std::vector<CellId> order;           // movable cells by (x, id)
  std::vector<std::int32_t> order_pos; // cell -> order index, -1 otherwise

  std::vector<RowState> rows;   // evolving state this run
  std::vector<std::uint8_t> live;

  // Incremental hooks (null/empty in full mode).
  const std::vector<RowState>* stored = nullptr;
  std::vector<std::uint32_t>* row_mark = nullptr;
  std::uint32_t epoch = 0;

  Engine(const Design& d, const LegalizeConfig& cfg,
         const std::vector<RowGeom>& g, const std::vector<double>& x,
         const std::vector<double>& y, const std::vector<int>& p)
      : design(d), config(cfg), geom(g), px(x), py(y), pads(p) {
    nrows = static_cast<int>(design.rows.size());
    row_h = design.rows.front().height;
    row_y0 = design.rows.front().y;
    build_order();
    rows.resize(static_cast<std::size_t>(nrows));
    live.assign(static_cast<std::size_t>(nrows), 0);
    for (int r = 0; r < nrows; ++r) {
      auto& segs = rows[static_cast<std::size_t>(r)].segments;
      segs.resize(geom[static_cast<std::size_t>(r)].segs.size());
      for (std::size_t s = 0; s < segs.size(); ++s) {
        segs[s].lo = geom[static_cast<std::size_t>(r)].segs[s].first;
        segs[s].hi = geom[static_cast<std::size_t>(r)].segs[s].second;
      }
    }
  }

  void build_order() {
    order.clear();
    order_pos.assign(design.cells.size(), -1);
    for (CellId c = 0; c < static_cast<CellId>(design.cells.size()); ++c) {
      if (design.cells[static_cast<std::size_t>(c)].movable()) {
        order.push_back(c);
      }
    }
    std::sort(order.begin(), order.end(), [&](CellId a, CellId b) {
      const double ax = px[static_cast<std::size_t>(a)];
      const double bx = px[static_cast<std::size_t>(b)];
      if (ax != bx) return ax < bx;
      return a < b;  // deterministic tie-break
    });
    for (std::size_t k = 0; k < order.size(); ++k) {
      order_pos[static_cast<std::size_t>(order[k])] =
          static_cast<std::int32_t>(k);
    }
  }

  void mark(int r) {
    if (row_mark) (*row_mark)[static_cast<std::size_t>(r)] = epoch;
  }
  bool marked(int r) const {
    return row_mark && (*row_mark)[static_cast<std::size_t>(r)] == epoch;
  }

  // Rebuilds a frozen row's evolving state as of walk position `upto`
  // (exclusive): replays the stored members' commits whose order index is
  // below `upto`. Valid precisely while the row is frozen — every stored
  // member below `upto` is clean and already made its identical decision.
  void materialize(int r, std::int32_t upto) {
    RowState& w = rows[static_cast<std::size_t>(r)];
    const RowState& s = (*stored)[static_cast<std::size_t>(r)];
    for (std::size_t si = 0; si < s.segments.size(); ++si) {
      for (const SegCell& sc : s.segments[si].cells) {
        const std::int32_t pos = order_pos[static_cast<std::size_t>(sc.id)];
        if (pos < 0 || pos >= upto) continue;
        std::int64_t x = 0;
        trial_or_commit(w.segments[si], sc, /*commit=*/true, x);
      }
    }
    live[static_cast<std::size_t>(r)] = 1;
  }

  void ensure_live(int r, std::int32_t upto) {
    if (!live[static_cast<std::size_t>(r)]) {
      if (stored) {
        materialize(r, upto);
      } else {
        live[static_cast<std::size_t>(r)] = 1;
      }
    }
  }

  // Full candidate search for one cell. Reads row/segment state only
  // after the static distance bounds pass, and records the window of
  // rows actually read in rmin/rmax (the replay-validity window).
  Decision search(CellId cid, std::int32_t k) {
    const std::size_t ci = static_cast<std::size_t>(cid);
    const Cell& cell = design.cells[ci];
    const double cx = px[ci], cy = py[ci];
    const int pad = pads[ci];

    Decision d;
    double best_cost = std::numeric_limits<double>::max();
    int rmin = std::numeric_limits<int>::max();
    int rmax = std::numeric_limits<int>::min();
    const int home =
        static_cast<int>(std::llround((cy - row_y0) / row_h));

    for (int ks = 0; ks < config.max_row_search * 2; ++ks) {
      const int r = home + ((ks % 2 == 0) ? ks / 2 : -(ks / 2 + 1));
      if (r < 0 || r >= nrows) continue;
      const RowGeom& g = geom[static_cast<std::size_t>(r)];
      const double dy = g.y - cy;
      if (dy * dy >= best_cost) {
        // Rows are visited in increasing |dy|; once the vertical
        // displacement alone exceeds the best cost on both sides, stop.
        if (ks > config.max_row_search) break;
        continue;
      }
      // Padded, site-quantized width for this row's pitch (physical part
      // floored at one site so zero-area cells still own a slot).
      const std::int64_t pw = std::max<std::int64_t>(
          1, static_cast<std::int64_t>(
                 std::ceil(cell.width / g.site - kSiteSnap)));
      SegCell sc;
      sc.id = cid;
      sc.w = pw + pad;
      sc.lp = pad / 2;
      sc.e = std::max(cell.area(), 1.0);  // zero-weight guard
      bool read_row = false;
      for (std::size_t s = 0; s < g.segs.size(); ++s) {
        const auto [lo, hi] = g.segs[s];
        // Static lower bound on dx: achievable slot positions lie inside
        // the segment, so the distance to the segment interval bounds the
        // final displacement from below. No state is read when it prunes.
        const double sx0 = g.x0 + static_cast<double>(lo) * g.site;
        const double sx1 = g.x0 + static_cast<double>(hi) * g.site;
        const double dxmin =
            cx < sx0 ? sx0 - cx : (cx > sx1 ? cx - sx1 : 0.0);
        if (dxmin * dxmin + dy * dy >= best_cost) continue;
        if (!read_row) {
          read_row = true;
          ensure_live(r, k);
        }
        Segment& seg = rows[static_cast<std::size_t>(r)].segments[s];
        const double raw =
            (cx - static_cast<double>(pad) * g.site * 0.5 - g.x0) / g.site;
        std::int64_t t = std::llround(raw);
        const std::int64_t tmax = std::max(lo, hi - sc.w);
        t = std::clamp(t, lo, tmax);
        sc.t = t;
        std::int64_t x = 0;
        if (!trial_or_commit(seg, sc, /*commit=*/false, x)) continue;
        const double dx = (g.x0 + static_cast<double>(x) * g.site +
                           static_cast<double>(pad) * g.site * 0.5) -
                          cx;
        const double cost = dx * dx + dy * dy;
        if (cost < best_cost) {
          best_cost = cost;
          d.row = r;
          d.seg = static_cast<std::int32_t>(s);
          d.sc = sc;
        }
      }
      if (read_row) {
        rmin = std::min(rmin, r);
        rmax = std::max(rmax, r);
      }
    }
    if (rmin <= rmax) {
      d.rmin = rmin;
      d.rmax = rmax;
    } else {
      d.rmin = 0;
      d.rmax = -1;
    }
    return d;
  }

  bool window_clean(const Decision& rec) const {
    for (int r = std::max(0, rec.rmin);
         r <= std::min(nrows - 1, rec.rmax); ++r) {
      if (marked(r)) return false;
    }
    return true;
  }

  // The serial assignment walk. `decisions` is read for replay (when a
  // ledger round) and always updated; `dirty` flags input-changed cells
  // (empty in full mode = everything re-decides). Returns false when a
  // replayed commit violates capacity — a ledger invariant break that
  // the caller must answer with a from-scratch run.
  bool walk(std::vector<Decision>& decisions, const std::vector<char>& dirty,
            bool ledger_round, int& failed, int& replayed, int& redecided) {
    for (std::size_t k = 0; k < order.size(); ++k) {
      const CellId cid = order[k];
      const std::size_t ci = static_cast<std::size_t>(cid);
      Decision& rec = decisions[ci];
      if (ledger_round && !dirty[ci] && window_clean(rec)) {
        ++replayed;
        if (rec.row >= 0) {
          if (live[static_cast<std::size_t>(rec.row)]) {
            std::int64_t x = 0;
            if (!trial_or_commit(
                    rows[static_cast<std::size_t>(rec.row)]
                        .segments[static_cast<std::size_t>(rec.seg)],
                    rec.sc, /*commit=*/true, x)) {
              return false;  // invariant break: caller falls back to full
            }
          }
          // Frozen row: the stored state already contains this commit.
        } else {
          ++failed;  // replayed failure (nothing it read changed)
        }
        continue;
      }
      ++redecided;
      Decision d = search(cid, static_cast<std::int32_t>(k));
      if (d.row >= 0) {
        std::int64_t x = 0;
        trial_or_commit(rows[static_cast<std::size_t>(d.row)]
                            .segments[static_cast<std::size_t>(d.seg)],
                        d.sc, /*commit=*/true, x);
      } else {
        ++failed;
      }
      if (ledger_round && !d.same_as(rec)) {
        if (rec.row >= 0 && !live[static_cast<std::size_t>(rec.row)]) {
          materialize(rec.row, static_cast<std::int32_t>(k));
        }
        if (rec.row >= 0) mark(rec.row);
        if (d.row >= 0) mark(d.row);
      }
      rec = d;
    }
    return true;
  }

  // Concurrent per-row finalization: recover slot positions from the
  // settled clusters and write the output arrays. Rows own disjoint cell
  // sets, so the parallel writes are race-free and the result is
  // bit-identical for any thread count.
  void finalize(std::vector<double>& ox, std::vector<double>& oy) const {
    par::parallel_for(0, nrows, 4, [&](std::int64_t b, std::int64_t e, int) {
      for (std::int64_t r = b; r < e; ++r) {
        if (!live[static_cast<std::size_t>(r)]) continue;
        const RowGeom& g = geom[static_cast<std::size_t>(r)];
        for (const Segment& seg : rows[static_cast<std::size_t>(r)].segments) {
          std::size_t cell_idx = 0;
          std::int64_t cursor = seg.lo;
          for (const Cluster& cl : seg.clusters) {
            std::int64_t x = cl.x;
            if (x < cursor) x = cursor;
            const std::int64_t xmax = std::max(cursor, seg.hi - cl.w);
            if (x > xmax) x = xmax;
            cursor = x + cl.w;
            std::int64_t filled = 0;
            while (cell_idx < seg.cells.size() && filled < cl.w) {
              const SegCell& sc = seg.cells[cell_idx];
              const std::size_t ci = static_cast<std::size_t>(sc.id);
              ox[ci] = g.x0 +
                       static_cast<double>(x + filled + sc.lp) * g.site;
              oy[ci] = g.y;
              filled += sc.w;
              ++cell_idx;
            }
          }
        }
      }
    });
  }
};

LegalizeConfig checked(const LegalizeConfig& config) {
  return validate_legalize_config(config);
}

std::vector<int> normalize_pads(const Design& design,
                                const std::vector<int>& pad_sites) {
  std::vector<int> pads(design.cells.size(), 0);
  const std::size_t n = std::min(pads.size(), pad_sites.size());
  for (std::size_t i = 0; i < n; ++i) pads[i] = std::max(0, pad_sites[i]);
  return pads;
}

struct Displacement {
  double sum = 0.0;
  double mx = 0.0;
  int placed = 0;
  Displacement& operator+=(const Displacement& o) {
    sum += o.sum;
    mx = std::max(mx, o.mx);
    placed += o.placed;
    return *this;
  }
};

// Writes outputs into the design and folds the displacement metrics in
// deterministic chunk order.
void write_back(Design& design, const std::vector<Decision>& decisions,
                const std::vector<double>& px, const std::vector<double>& py,
                std::vector<double>& ox, std::vector<double>& oy,
                LegalizeResult& result) {
  const std::int64_t n = static_cast<std::int64_t>(design.cells.size());
  const Displacement d = par::parallel_reduce(
      0, n, 4096, Displacement{}, [&](std::int64_t b, std::int64_t e) {
        Displacement part;
        for (std::int64_t i = b; i < e; ++i) {
          const std::size_t ci = static_cast<std::size_t>(i);
          Cell& cell = design.cells[ci];
          if (!cell.movable()) continue;
          if (decisions[ci].row < 0) {
            ox[ci] = px[ci];  // failed: left at the input position
            oy[ci] = py[ci];
            cell.x = px[ci];
            cell.y = py[ci];
            continue;
          }
          cell.x = ox[ci];
          cell.y = oy[ci];
          const double disp =
              std::abs(ox[ci] - px[ci]) + std::abs(oy[ci] - py[ci]);
          part.sum += disp;
          part.mx = std::max(part.mx, disp);
          ++part.placed;
        }
        return part;
      });
  result.total_displacement = d.sum;
  result.max_displacement = d.mx;
  result.placed = d.placed;
}

}  // namespace

LegalizeConfig validate_legalize_config(LegalizeConfig config) {
  if (config.max_row_search <= 0) {
    throw std::invalid_argument(
        "LegalizeConfig.max_row_search must be positive");
  }
  if (!(config.max_dirty_frac == config.max_dirty_frac)) {  // NaN check
    throw std::invalid_argument(
        "LegalizeConfig.max_dirty_frac must not be NaN");
  }
  if (config.full_rebuild_interval < 1) config.full_rebuild_interval = 1;
  config.max_dirty_frac = clamp(config.max_dirty_frac, 0.0, 1.0);
  return config;
}

// --- free from-scratch legalization --------------------------------------

LegalizeResult legalize(Design& design, const std::vector<int>& pad_sites,
                        const LegalizeConfig& config) {
  const LegalizeConfig cfg = checked(config);
  LegalizeResult result;
  Timer timer;
  if (design.rows.empty()) {
    result.success = false;
    return result;
  }
  const std::vector<RowGeom> geom = build_geometry(design);
  std::vector<double> px(design.cells.size()), py(design.cells.size());
  for (std::size_t i = 0; i < design.cells.size(); ++i) {
    px[i] = design.cells[i].x;
    py[i] = design.cells[i].y;
  }
  const std::vector<int> pads = normalize_pads(design, pad_sites);

  Engine eng(design, cfg, geom, px, py, pads);
  std::fill(eng.live.begin(), eng.live.end(), 1);
  std::vector<Decision> decisions(design.cells.size());
  const std::vector<char> no_dirty;
  int replayed = 0, redecided = 0;
  eng.walk(decisions, no_dirty, /*ledger_round=*/false, result.failed_cells,
           replayed, redecided);
  result.redecided_cells = redecided;
  result.rows_total = eng.nrows;
  result.rows_rebuilt = eng.nrows;

  std::vector<double> ox(design.cells.size(), 0.0);
  std::vector<double> oy(design.cells.size(), 0.0);
  eng.finalize(ox, oy);
  write_back(design, decisions, px, py, ox, oy, result);
  result.success = result.failed_cells == 0 && !design.rows.empty();
  result.time_s = timer.elapsed_seconds();
  if (result.failed_cells > 0) {
    PUFFER_LOG_WARN(kTag, "%d cells could not be legalized",
                    result.failed_cells);
  }
  return result;
}

// --- incremental legalizer -----------------------------------------------

struct IncrementalLegalizer::Impl {
  LegalizeConfig config;
  IncrementalLegalStats stats;

  bool valid = false;
  std::uint64_t key = 0;
  std::vector<RowGeom> geom;
  // Input snapshot from the last applied call (bit-compared).
  std::vector<double> in_x, in_y, in_w;
  std::vector<int> in_pad;
  // Last applied decisions + per-row final state + outputs.
  std::vector<Decision> decisions;
  std::vector<RowState> rows_store;
  std::vector<double> out_x, out_y;

  std::vector<std::uint32_t> row_mark;
  std::uint32_t epoch = 0;

  explicit Impl(LegalizeConfig cfg) : config(validate_legalize_config(cfg)) {}

  // From-scratch run that (re)records the ledger into the given buffers.
  LegalizeResult run_full(Design& design, const std::vector<double>& px,
                          const std::vector<double>& py,
                          const std::vector<int>& pads,
                          std::vector<Decision>& dec,
                          std::vector<RowState>& rows_out,
                          std::vector<double>& ox, std::vector<double>& oy) {
    LegalizeResult result;
    Engine eng(design, config, geom, px, py, pads);
    std::fill(eng.live.begin(), eng.live.end(), 1);
    dec.assign(design.cells.size(), Decision{});
    const std::vector<char> no_dirty;
    int replayed = 0, redecided = 0;
    eng.walk(dec, no_dirty, /*ledger_round=*/false, result.failed_cells,
             replayed, redecided);
    result.redecided_cells = redecided;
    result.rows_total = eng.nrows;
    result.rows_rebuilt = eng.nrows;
    ox.assign(design.cells.size(), 0.0);
    oy.assign(design.cells.size(), 0.0);
    eng.finalize(ox, oy);
    rows_out = std::move(eng.rows);
    return result;
  }

  void snapshot_inputs(const Design& design, const std::vector<double>& px,
                       const std::vector<double>& py,
                       const std::vector<int>& pads) {
    in_x = px;
    in_y = py;
    in_pad = pads;
    in_w.resize(design.cells.size());
    for (std::size_t i = 0; i < design.cells.size(); ++i) {
      in_w[i] = design.cells[i].width;
    }
  }
};

IncrementalLegalizer::IncrementalLegalizer(LegalizeConfig config)
    : impl_(std::make_unique<Impl>(config)) {}

IncrementalLegalizer::~IncrementalLegalizer() = default;

void IncrementalLegalizer::invalidate() { impl_->valid = false; }

const IncrementalLegalStats& IncrementalLegalizer::stats() const {
  return impl_->stats;
}

LegalizeResult IncrementalLegalizer::legalize(
    Design& design, const std::vector<int>& pad_sites) {
  Impl& im = *impl_;
  Timer timer;
  LegalizeResult result;
  ++im.stats.calls;
  if (design.rows.empty()) {
    result.success = false;
    im.valid = false;
    return result;
  }

  const std::uint64_t key = structure_key(design);
  std::vector<double> px(design.cells.size()), py(design.cells.size());
  for (std::size_t i = 0; i < design.cells.size(); ++i) {
    px[i] = design.cells[i].x;
    py[i] = design.cells[i].y;
  }
  const std::vector<int> pads = normalize_pads(design, pad_sites);

  bool full = !im.valid || key != im.key;
  if (full) {
    im.geom = build_geometry(design);
    im.key = key;
  }

  // Bitwise dirty detection against the previous call's *inputs*.
  std::vector<char> dirty;
  std::size_t num_dirty = 0, num_movable = 0;
  if (!full) {
    dirty.assign(design.cells.size(), 0);
    for (std::size_t i = 0; i < design.cells.size(); ++i) {
      const Cell& c = design.cells[i];
      if (!c.movable()) continue;
      ++num_movable;
      const bool moved =
          std::memcmp(&px[i], &im.in_x[i], sizeof(double)) != 0 ||
          std::memcmp(&py[i], &im.in_y[i], sizeof(double)) != 0 ||
          std::memcmp(&c.width, &im.in_w[i], sizeof(double)) != 0 ||
          pads[i] != im.in_pad[i];
      if (moved) {
        dirty[i] = 1;
        ++num_dirty;
      }
    }
    if (num_movable > 0 &&
        static_cast<double>(num_dirty) >
            im.config.max_dirty_frac * static_cast<double>(num_movable)) {
      full = true;
    }
  }

  const bool verify =
      !full && im.config.full_rebuild_interval > 0 &&
      (im.stats.calls % im.config.full_rebuild_interval) == 0;

  if (full) {
    result = im.run_full(design, px, py, pads, im.decisions, im.rows_store,
                         im.out_x, im.out_y);
    write_back(design, im.decisions, px, py, im.out_x, im.out_y, result);
    ++im.stats.full_runs;
    im.stats.redecided_cells += result.redecided_cells;
    result.success = result.failed_cells == 0;
    result.time_s = timer.elapsed_seconds();
    im.stats.full_time_s += result.time_s;
    im.snapshot_inputs(design, px, py, pads);
    im.valid = true;
    if (result.failed_cells > 0) {
      PUFFER_LOG_WARN(kTag, "%d cells could not be legalized",
                      result.failed_cells);
    }
    return result;
  }

  // --- ledger round ------------------------------------------------------
  result.incremental = true;
  Engine eng(design, im.config, im.geom, px, py, pads);
  eng.stored = &im.rows_store;
  im.row_mark.assign(static_cast<std::size_t>(eng.nrows), 0);
  ++im.epoch;
  eng.row_mark = &im.row_mark;
  eng.epoch = im.epoch;

  // Pre-mark the recorded rows of dirty cells: their old commit is gone
  // this round, so every reader of those rows must re-decide. The rows
  // start live and empty; their surviving members rebuild them in order.
  for (std::size_t i = 0; i < dirty.size(); ++i) {
    if (!dirty[i]) continue;
    const Decision& rec = im.decisions[i];
    if (rec.row >= 0) {
      eng.mark(rec.row);
      eng.live[static_cast<std::size_t>(rec.row)] = 1;
    }
  }

  std::vector<Decision> decisions = im.decisions;
  int replayed = 0, redecided = 0;
  const bool ok = eng.walk(decisions, dirty, /*ledger_round=*/true,
                           result.failed_cells, replayed, redecided);
  if (!ok) {
    // Ledger invariant break (should be impossible): recover with a
    // verified full rebuild and count the drift.
    ++im.stats.drift_count;
    im.valid = false;
    result = im.run_full(design, px, py, pads, im.decisions, im.rows_store,
                         im.out_x, im.out_y);
    write_back(design, im.decisions, px, py, im.out_x, im.out_y, result);
    ++im.stats.full_runs;
    result.success = result.failed_cells == 0;
    result.time_s = timer.elapsed_seconds();
    im.stats.full_time_s += result.time_s;
    im.snapshot_inputs(design, px, py, pads);
    im.valid = true;
    return result;
  }

  result.replayed_cells = replayed;
  result.redecided_cells = redecided;
  result.rows_total = eng.nrows;
  for (std::uint8_t l : eng.live) result.rows_rebuilt += l;

  // Frozen rows keep their stored outputs; live rows finalize (the
  // arrays persist per cell, so only live-row members are overwritten).
  eng.finalize(im.out_x, im.out_y);
  write_back(design, decisions, px, py, im.out_x, im.out_y, result);
  for (int r = 0; r < eng.nrows; ++r) {
    if (eng.live[static_cast<std::size_t>(r)]) {
      im.rows_store[static_cast<std::size_t>(r)] =
          std::move(eng.rows[static_cast<std::size_t>(r)]);
    }
  }
  im.decisions = std::move(decisions);
  im.snapshot_inputs(design, px, py, pads);

  result.success = result.failed_cells == 0;
  im.stats.replayed_cells += replayed;
  im.stats.redecided_cells += redecided;

  if (verify) {
    // Periodic verified rebuild: run from scratch on the same inputs and
    // compare the outputs bitwise (the demand-ledger contract).
    ++im.stats.verified_rebuilds;
    std::vector<Decision> dec2;
    std::vector<RowState> rows2;
    std::vector<double> ox2, oy2;
    LegalizeResult full_result =
        im.run_full(design, px, py, pads, dec2, rows2, ox2, oy2);
    bool drift = full_result.failed_cells != result.failed_cells;
    for (std::size_t i = 0; !drift && i < design.cells.size(); ++i) {
      if (!design.cells[i].movable() || dec2[i].row < 0) continue;
      drift = std::memcmp(&ox2[i], &im.out_x[i], sizeof(double)) != 0 ||
              std::memcmp(&oy2[i], &im.out_y[i], sizeof(double)) != 0;
    }
    if (drift) {
      ++im.stats.drift_count;
      PUFFER_LOG_WARN(kTag,
                      "incremental legalization drifted from the full "
                      "rebuild; adopting the rebuild");
      im.decisions = std::move(dec2);
      im.rows_store = std::move(rows2);
      im.out_x = std::move(ox2);
      im.out_y = std::move(oy2);
      result.failed_cells = full_result.failed_cells;
      write_back(design, im.decisions, px, py, im.out_x, im.out_y, result);
      result.success = result.failed_cells == 0;
    }
  }

  result.time_s = timer.elapsed_seconds();
  im.stats.incremental_time_s += result.time_s;
  if (result.failed_cells > 0) {
    PUFFER_LOG_WARN(kTag, "%d cells could not be legalized",
                    result.failed_cells);
  }
  return result;
}

}  // namespace puffer
