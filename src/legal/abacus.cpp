#include "legal/abacus.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logger.h"

namespace puffer {
namespace {

constexpr const char* kTag = "legal";

struct SegCell {
  CellId id;
  double width;     // padded width (site multiple)
  double target_x;  // desired slot left edge
  double weight;    // Abacus weight (cell area)
};

struct Cluster {
  double x = 0.0;  // left edge
  double e = 0.0;  // total weight
  double q = 0.0;  // sum of e_i * (target_i - offset_i)
  double w = 0.0;  // total width
  int first_cell = 0;  // index into segment cell list
};

struct Segment {
  double lo = 0.0;
  double hi = 0.0;
  std::vector<SegCell> cells;
  std::vector<Cluster> clusters;
  double used = 0.0;

  double free_width() const { return (hi - lo) - used; }
};

struct RowState {
  double y = 0.0;
  double site = 1.0;
  std::vector<Segment> segments;
};

// Simulates appending `cell` to the segment, returning the resulting slot
// left edge; `ok` is false when the segment cannot hold the cell.
double trial_or_commit(Segment& seg, const SegCell& cell, bool commit,
                       bool& ok) {
  ok = true;
  if (cell.width > seg.free_width() + 1e-9) {
    ok = false;
    return 0.0;
  }
  // Accumulator cluster holding the new cell; merge backward while it
  // overlaps its predecessor (the Abacus collapse recurrence).
  double e = cell.weight;
  double q = cell.weight * cell.target_x;
  double w = cell.width;
  double offset = 0.0;  // cell's offset inside the accumulated cluster
  int i = static_cast<int>(seg.clusters.size()) - 1;
  double x = 0.0;
  while (true) {
    x = clamp(q / e, seg.lo, seg.hi - w);
    if (i < 0) break;
    const Cluster& prev = seg.clusters[static_cast<std::size_t>(i)];
    if (prev.x + prev.w <= x + 1e-12) break;
    // Merge prev in front of the accumulator.
    q = prev.q + (q - e * prev.w);
    e += prev.e;
    w += prev.w;
    offset += prev.w;
    --i;
  }
  const double cell_x = x + offset;
  if (!commit) return cell_x;

  seg.clusters.resize(static_cast<std::size_t>(i + 1));
  Cluster merged;
  merged.x = x;
  merged.e = e;
  merged.q = q;
  merged.w = w;
  seg.clusters.push_back(merged);
  seg.cells.push_back(cell);
  seg.used += cell.width;
  return cell_x;
}

}  // namespace

LegalizeResult legalize(Design& design, const std::vector<int>& pad_sites,
                        const LegalizeConfig& config) {
  LegalizeResult result;
  if (design.rows.empty()) {
    result.success = false;
    return result;
  }

  // --- build macro-aware row segments -----------------------------------
  std::vector<RowState> rows;
  rows.reserve(design.rows.size());
  for (const Row& row : design.rows) {
    RowState rs;
    rs.y = row.y;
    rs.site = row.site_width;
    // Collect macro x-blockages intersecting this row.
    std::vector<std::pair<double, double>> blocks;
    for (const Cell& c : design.cells) {
      if (!c.is_macro()) continue;
      const Rect r = c.rect();
      if (r.ylo < row.y + row.height - 1e-9 && r.yhi > row.y + 1e-9) {
        blocks.emplace_back(r.xlo, r.xhi);
      }
    }
    std::sort(blocks.begin(), blocks.end());
    double cursor = row.x_lo;
    const double row_end = row.x_hi();
    auto push_segment = [&](double lo, double hi) {
      // Snap inward to the site grid.
      const double slo = row.x_lo +
          std::ceil((lo - row.x_lo) / rs.site - 1e-9) * rs.site;
      const double shi = row.x_lo +
          std::floor((hi - row.x_lo) / rs.site + 1e-9) * rs.site;
      if (shi - slo >= rs.site - 1e-9) {
        Segment seg;
        seg.lo = slo;
        seg.hi = shi;
        rs.segments.push_back(seg);
      }
    };
    for (const auto& [blo, bhi] : blocks) {
      if (blo > cursor) push_segment(cursor, std::min(blo, row_end));
      cursor = std::max(cursor, bhi);
      if (cursor >= row_end) break;
    }
    if (cursor < row_end) push_segment(cursor, row_end);
    rows.push_back(std::move(rs));
  }

  const double row_h = design.rows.front().height;
  const double row_y0 = design.rows.front().y;

  // --- order movable cells by x ------------------------------------------
  std::vector<CellId> order;
  for (CellId c = 0; c < static_cast<CellId>(design.cells.size()); ++c) {
    if (design.cells[static_cast<std::size_t>(c)].movable()) order.push_back(c);
  }
  std::sort(order.begin(), order.end(), [&](CellId a, CellId b) {
    return design.cells[static_cast<std::size_t>(a)].x <
           design.cells[static_cast<std::size_t>(b)].x;
  });

  // Remember where each cell ended up so positions can be written back
  // after all clusters settle.
  struct Placement {
    int row = -1;
    int seg = -1;
    int slot = -1;  // index within segment cell list
  };
  std::vector<Placement> placement(design.cells.size());

  for (CellId cid : order) {
    const Cell& cell = design.cells[static_cast<std::size_t>(cid)];
    const int pad =
        static_cast<std::size_t>(cid) < pad_sites.size()
            ? pad_sites[static_cast<std::size_t>(cid)]
            : 0;

    // Candidate rows sorted by vertical displacement from the GP result.
    const int home = static_cast<int>(
        std::round((cell.y - row_y0) / row_h));
    double best_cost = std::numeric_limits<double>::max();
    int best_row = -1, best_seg = -1;
    SegCell best_sc;

    for (int k = 0; k < config.max_row_search * 2; ++k) {
      const int r = home + ((k % 2 == 0) ? k / 2 : -(k / 2 + 1));
      if (r < 0 || r >= static_cast<int>(rows.size())) continue;
      RowState& rs = rows[static_cast<std::size_t>(r)];
      const double dy = rs.y - cell.y;
      if (dy * dy >= best_cost) {
        // Rows are visited in increasing |dy|; once even the vertical
        // displacement alone exceeds the best cost on both sides, stop.
        if (k > 2 * config.max_row_search / 2) break;
        continue;
      }
      // Padded, site-quantized width.
      const double width =
          std::ceil(cell.width / rs.site - 1e-9) * rs.site + pad * rs.site;
      SegCell sc;
      sc.id = cid;
      sc.width = width;
      sc.weight = std::max(cell.area(), 1.0);
      // Try segments nearest to the target x first.
      for (std::size_t s = 0; s < rs.segments.size(); ++s) {
        Segment& seg = rs.segments[s];
        const double raw_tx = clamp(cell.x - pad * rs.site * 0.5, seg.lo,
                                    std::max(seg.lo, seg.hi - width));
        // Site-quantized target so settled clusters sit on the site grid.
        const double tx =
            seg.lo + std::round((raw_tx - seg.lo) / rs.site) * rs.site;
        sc.target_x = tx;
        bool ok = false;
        const double x = trial_or_commit(seg, sc, /*commit=*/false, ok);
        if (!ok) continue;
        const double dx = (x + pad * rs.site * 0.5) - cell.x;
        const double cost = dx * dx + dy * dy;
        if (cost < best_cost) {
          best_cost = cost;
          best_row = r;
          best_seg = static_cast<int>(s);
          best_sc = sc;
        }
      }
    }

    if (best_row < 0) {
      ++result.failed_cells;
      result.success = false;
      continue;
    }
    RowState& rs = rows[static_cast<std::size_t>(best_row)];
    Segment& seg = rs.segments[static_cast<std::size_t>(best_seg)];
    bool ok = false;
    trial_or_commit(seg, best_sc, /*commit=*/true, ok);
    placement[static_cast<std::size_t>(cid)] = {best_row, best_seg,
                                                static_cast<int>(seg.cells.size()) - 1};
  }

  // --- write back final positions ----------------------------------------
  for (std::size_t r = 0; r < rows.size(); ++r) {
    RowState& rs = rows[r];
    for (Segment& seg : rs.segments) {
      // Recover per-cell slot positions: clusters hold merged runs in
      // order; walk clusters and lay cells sequentially. Cluster positions
      // are continuous (weighted averages), so snap each onto the site
      // grid left-to-right, never overlapping the previous cluster.
      std::size_t cell_idx = 0;
      double cursor = seg.lo;
      for (const Cluster& cl : seg.clusters) {
        double x = seg.lo + std::round((cl.x - seg.lo) / rs.site) * rs.site;
        x = clamp(x, cursor, std::max(cursor, seg.hi - cl.w));
        cursor = x + cl.w;
        // Cells belonging to this cluster occupy cl.w in total; they were
        // appended in order, so consume cells until the width is filled.
        double filled = 0.0;
        while (cell_idx < seg.cells.size() && filled + 1e-9 < cl.w) {
          const SegCell& sc = seg.cells[cell_idx];
          Cell& cell = design.cells[static_cast<std::size_t>(sc.id)];
          const int pad =
              static_cast<std::size_t>(sc.id) < pad_sites.size()
                  ? pad_sites[static_cast<std::size_t>(sc.id)]
                  : 0;
          // Center the physical cell inside its padded slot, snapped to
          // the site grid (left-biased for odd padding).
          const double slot_x = x + filled;
          const double left_pad = (pad / 2) * rs.site;
          const double old_x = cell.x, old_y = cell.y;
          cell.x = slot_x + left_pad;
          cell.y = rs.y;
          const double disp =
              std::abs(cell.x - old_x) + std::abs(cell.y - old_y);
          result.total_displacement += disp;
          result.max_displacement = std::max(result.max_displacement, disp);
          ++result.placed;
          filled += sc.width;
          ++cell_idx;
        }
      }
    }
  }

  if (result.failed_cells > 0) {
    PUFFER_LOG_WARN(kTag, "%d cells could not be legalized", result.failed_cells);
  }
  return result;
}

}  // namespace puffer
