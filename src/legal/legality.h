// Legality verification: overlap-free, in-die, row- and site-aligned.
// Used by tests and asserted by the flow after legalization.
#pragma once

#include <string>

#include "netlist/design.h"

namespace puffer {

struct LegalityReport {
  bool legal = true;
  int overlaps = 0;        // movable-movable or movable-macro overlaps
  int off_grid = 0;        // not row/site aligned
  int out_of_die = 0;
  std::string summary() const;
};

LegalityReport check_legality(const Design& design);

}  // namespace puffer
