// pufferd's connection layer: a poll()-driven, single-threaded frame
// router in front of the ServeSessionManager.
//
// One thread (the caller of run()) owns every socket: it accepts
// connections, incrementally decodes PUFM frames (io/checkpoint.h
// FrameBuffer), dispatches requests to the session manager, and flushes
// per-connection output buffers on POLLOUT. Runner threads never touch a
// socket -- they queue SessionEvents and wake the poll loop through a
// self-pipe, so there is exactly one writer per fd and no frame can
// interleave.
//
// Malformed traffic policy: a corrupt *frame* (bad magic/version/
// checksum) poisons the byte stream, so the connection is closed; a
// well-framed but undecodable *body* gets a kError reply and the
// connection lives on. Admission rejections are kRejected replies --
// explicit backpressure, never a hang or a silent drop.
//
// Graceful drain (request_drain(), wired to SIGTERM/SIGINT by the
// daemon): new submits are rejected with kDraining, running sessions
// finish, their frames are delivered, buffers flush, then run()
// returns. request_drain() is async-signal-safe.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "serve/session_manager.h"

namespace puffer {

class PufferServer {
 public:
  // Binds and listens on `address` ("host:port" or a UDS path -- see
  // io/net.h) and replays any existing request log in
  // config.spool_dir. Throws CheckpointError when the bind fails.
  PufferServer(const std::string& address, ServeConfig config);
  ~PufferServer();
  PufferServer(const PufferServer&) = delete;
  PufferServer& operator=(const PufferServer&) = delete;

  // Serves until a drain completes. Call from one thread only.
  void run();

  // Starts a graceful drain; safe from signal handlers and other
  // threads. Idempotent.
  void request_drain();

  ServeSessionManager& manager() { return *manager_; }

 private:
  struct Connection {
    int fd = -1;
    bool hello_done = false;
    bool closing = false;  // flush out, then close
    FrameBuffer in;
    std::string out;           // encoded frames awaiting the socket
    std::size_t out_pos = 0;   // flushed prefix of `out`
    std::vector<std::uint64_t> submitted;  // sessions from this conn
  };

  void accept_new();
  void read_conn(int fd);
  void flush_conn(Connection& conn);
  void close_conn(int fd);
  void queue_frame(int fd, ServeMsgType type, const std::string& body);
  void queue_error(int fd, const std::string& message);
  void handle_frame(int fd, const WireFrame& frame);
  void handle_submit(int fd, const WireFrame& frame);
  void dispatch_events();
  int conn_inflight(const Connection& conn) const;
  bool out_buffers_empty() const;

  std::string address_;
  int listen_fd_ = -1;
  int wake_rd_ = -1, wake_wr_ = -1;  // self-pipe
  std::atomic<bool> drain_requested_{false};
  bool draining_ = false;
  std::unique_ptr<ServeSessionManager> manager_;
  std::map<int, std::unique_ptr<Connection>> conns_;
  // session id -> subscriber connection fds
  std::map<std::uint64_t, std::vector<int>> subs_;
};

}  // namespace puffer
