#include "serve/session_manager.h"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "common/logger.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "core/config_io.h"
#include "io/bookshelf.h"
#include "io/checkpoint.h"
#include "io/design_codec.h"
#include "serve/telemetry.h"

namespace puffer {

namespace {

constexpr const char* kTag = "serve";

// mkdir -p (same idiom as the orchestrator's checkpoint directory).
void ensure_dir(const std::string& path) {
  if (path.empty()) return;
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) return;
  if (errno == ENOENT) {
    const std::size_t slash = path.find_last_of('/');
    if (slash != std::string::npos && slash > 0) {
      ensure_dir(path.substr(0, slash));
      if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) return;
    }
  }
  throw CheckpointError("cannot create directory " + path + ": " +
                        std::strerror(errno));
}

// Bundle file names become spool paths; anything that could escape the
// job directory is rejected at admission.
bool safe_bundle_name(const std::string& name) {
  return !name.empty() && name.find('/') == std::string::npos &&
         name.find('\\') == std::string::npos && name != "." && name != "..";
}

}  // namespace

ServeConfig validate_serve_config(ServeConfig config) {
  if (config.spool_dir.empty()) {
    throw std::invalid_argument("ServeConfig.spool_dir must be set");
  }
  if (config.max_running < 1) {
    throw std::invalid_argument("ServeConfig.max_running must be positive");
  }
  if (config.max_queued < 1) {
    throw std::invalid_argument("ServeConfig.max_queued must be positive");
  }
  if (config.per_conn_inflight < 1) {
    throw std::invalid_argument(
        "ServeConfig.per_conn_inflight must be positive");
  }
  return config;
}

struct ServeSessionManager::Impl {
  ServeSession pub;
  std::string raw_body;     // SubmitMsg body (empty once terminal)
  std::string job_file;     // spool file holding raw_body
  std::string result_file;  // spool file holding the encoded ResultMsg
  std::string result_body;  // in-memory copy (lazily loaded from spool)
  std::atomic<bool> cancel{false};
  std::thread thread;
};

ServeSessionManager::ServeSessionManager(ServeConfig config,
                                         std::function<void()> wake)
    : config_(validate_serve_config(std::move(config))),
      wake_(std::move(wake)) {
  ensure_dir(config_.spool_dir);
  lease_want_ = std::max(1, par::num_threads() / config_.max_running);

  const std::string log_path = spool_path("requests.jsonl");
  const std::vector<RecoveredSession> recovered =
      replay_request_log(RequestLog::load(log_path));
  log_ = std::make_unique<RequestLog>(log_path);
  for (const RecoveredSession& rec : recovered) {
    admit_recovered(rec);
  }
  if (!recovered.empty()) {
    PUFFER_LOG_INFO(kTag, "recovered %zu session(s) from %s",
                    recovered.size(), log_path.c_str());
  }
}

ServeSessionManager::~ServeSessionManager() {
  draining_ = true;
  for (auto& [id, impl] : sessions_) {
    (void)id;
    impl->cancel.store(true);
  }
  for (auto& [id, impl] : sessions_) {
    (void)id;
    if (impl->thread.joinable()) impl->thread.join();
  }
}

std::string ServeSessionManager::spool_path(const std::string& file) const {
  return config_.spool_dir + "/" + file;
}

void ServeSessionManager::admit_recovered(const RecoveredSession& rec) {
  next_id_ = std::max(next_id_, rec.session_id + 1);
  auto impl = std::make_unique<Impl>();
  impl->pub.id = rec.session_id;
  impl->pub.job_name = rec.job_name;
  impl->job_file = rec.job_file;
  if (rec.finished) {
    const std::uint8_t s = rec.summary.state;
    impl->pub.state = s <= static_cast<std::uint8_t>(SessionState::kFailed)
                          ? static_cast<SessionState>(s)
                          : SessionState::kFailed;
    impl->pub.summary = rec.summary;
    impl->result_file = rec.result_file;
  } else if (rec.cancelled) {
    // Cancelled before the finish record landed: finalize it now.
    impl->pub.state = SessionState::kCancelled;
    impl->pub.summary.state =
        static_cast<std::uint8_t>(SessionState::kCancelled);
    RequestLogRecord fin;
    fin.type = RequestLogRecord::Type::kFinish;
    fin.session_id = rec.session_id;
    fin.state = impl->pub.summary.state;
    log_->append(fin);
  } else {
    // Queued or mid-run at the crash: the flow is deterministic, so a
    // re-run reproduces the result bit-identically. Re-admit.
    try {
      impl->raw_body = read_file(spool_path(rec.job_file));
      impl->pub.state = SessionState::kQueued;
      queue_.push_back(rec.session_id);
    } catch (const CheckpointError& e) {
      impl->pub.state = SessionState::kFailed;
      impl->pub.summary.state =
          static_cast<std::uint8_t>(SessionState::kFailed);
      impl->pub.summary.message =
          std::string("recovery: job blob unreadable: ") + e.what();
      RequestLogRecord fin;
      fin.type = RequestLogRecord::Type::kFinish;
      fin.session_id = rec.session_id;
      fin.state = impl->pub.summary.state;
      fin.message = impl->pub.summary.message;
      log_->append(fin);
    }
  }
  sessions_[rec.session_id] = std::move(impl);
}

ServeSessionManager::AdmitResult ServeSessionManager::submit(
    const std::string& raw_submit_body) {
  AdmitResult res;
  if (draining_) {
    res.reason = RejectReason::kDraining;
    res.message = "daemon is draining";
    return res;
  }
  if (static_cast<int>(queue_.size()) >= config_.max_queued) {
    res.reason = RejectReason::kQueueFull;
    res.message = "admission queue is full (" +
                  std::to_string(config_.max_queued) + ")";
    return res;
  }

  SubmitMsg msg;
  try {
    msg = decode_submit(raw_submit_body);
    if (msg.format == static_cast<std::uint8_t>(JobFormat::kBinaryDesign)) {
      (void)decode_design(msg.design_blob);  // reject garbage at the door
    } else {
      if (msg.files.empty() || !safe_bundle_name(msg.aux_name)) {
        throw CheckpointError("bundle needs files and a valid aux name");
      }
      bool has_aux = false;
      for (const auto& f : msg.files) {
        if (!safe_bundle_name(f.first)) {
          throw CheckpointError("bundle file name '" + f.first +
                                "' is not a plain basename");
        }
        has_aux = has_aux || f.first == msg.aux_name;
      }
      if (!has_aux) {
        throw CheckpointError("aux file '" + msg.aux_name +
                              "' missing from bundle");
      }
    }
  } catch (const CheckpointError& e) {
    res.reason = RejectReason::kBadRequest;
    res.message = e.what();
    return res;
  }

  const std::uint64_t sid = next_id_++;
  auto impl = std::make_unique<Impl>();
  impl->pub.id = sid;
  impl->pub.job_name = msg.job_name;
  impl->pub.state = SessionState::kQueued;
  impl->raw_body = raw_submit_body;
  impl->job_file = "job_" + std::to_string(sid) + ".bin";
  {
    std::lock_guard<std::mutex> lock(log_mu_);
    atomic_write_file(spool_path(impl->job_file), raw_submit_body);
    RequestLogRecord rec;
    rec.type = RequestLogRecord::Type::kSubmit;
    rec.session_id = sid;
    rec.job_file = impl->job_file;
    rec.job_name = msg.job_name;
    log_->append(rec);
  }
  queue_.push_back(sid);
  sessions_[sid] = std::move(impl);

  res.accepted = true;
  res.session_id = sid;
  res.state = SessionState::kQueued;
  res.queue_depth = static_cast<std::int32_t>(queue_.size()) - 1 + running_;
  PUFFER_LOG_INFO(kTag, "session %llu admitted (%s), %d ahead",
                  static_cast<unsigned long long>(sid), msg.job_name.c_str(),
                  res.queue_depth);
  return res;
}

bool ServeSessionManager::cancel(std::uint64_t session_id) {
  const auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return false;
  Impl& impl = *it->second;
  if (session_terminal(impl.pub.state)) return true;  // already settled
  {
    std::lock_guard<std::mutex> lock(log_mu_);
    RequestLogRecord rec;
    rec.type = RequestLogRecord::Type::kCancel;
    rec.session_id = session_id;
    log_->append(rec);
  }
  if (impl.pub.state == SessionState::kQueued) {
    impl.pub.state = SessionState::kCancelled;
    impl.pub.summary.state =
        static_cast<std::uint8_t>(SessionState::kCancelled);
    impl.raw_body.clear();
    queue_.erase(std::remove(queue_.begin(), queue_.end(), session_id),
                 queue_.end());
    std::lock_guard<std::mutex> lock(log_mu_);
    RequestLogRecord fin;
    fin.type = RequestLogRecord::Type::kFinish;
    fin.session_id = session_id;
    fin.state = impl.pub.summary.state;
    log_->append(fin);
  } else {
    // Running: flag it; the progress hook aborts at the next
    // padding-round boundary and the finish event settles the state.
    impl.cancel.store(true);
  }
  return true;
}

void ServeSessionManager::pump() {
  while (running_ < config_.max_running && !queue_.empty()) {
    const std::uint64_t sid = queue_.front();
    queue_.pop_front();
    const auto it = sessions_.find(sid);
    if (it == sessions_.end() ||
        it->second->pub.state != SessionState::kQueued) {
      continue;  // cancelled while queued
    }
    start_session(*it->second);
  }
}

void ServeSessionManager::start_session(Impl& impl) {
  {
    std::lock_guard<std::mutex> lock(log_mu_);
    RequestLogRecord rec;
    rec.type = RequestLogRecord::Type::kStart;
    rec.session_id = impl.pub.id;
    log_->append(rec);
  }
  impl.pub.state = SessionState::kRunning;
  ++running_;
  impl.thread = std::thread(&ServeSessionManager::run_session, this, &impl);
}

void ServeSessionManager::run_session(Impl* impl) {
  const std::uint64_t sid = impl->pub.id;
  Timer timer;
  SessionEvent fin;
  fin.kind = SessionEvent::Kind::kFinished;
  fin.session_id = sid;
  fin.summary.state = static_cast<std::uint8_t>(SessionState::kFailed);

  try {
    const SubmitMsg msg = decode_submit(impl->raw_body);
    Design design;
    if (msg.format == static_cast<std::uint8_t>(JobFormat::kBinaryDesign)) {
      design = decode_design(msg.design_blob);
    } else {
      // Materialize the Bookshelf bundle in a per-job spool directory.
      const std::string dir =
          spool_path("job_" + std::to_string(sid) + "_files");
      {
        std::lock_guard<std::mutex> lock(log_mu_);
        ensure_dir(dir);
        for (const auto& f : msg.files) {
          atomic_write_file(dir + "/" + f.first, f.second);
        }
      }
      design = read_bookshelf(dir + "/" + msg.aux_name);
    }
    // Unknown keys / bad values in the override text fail the session
    // (admission only vets the netlist; strategy errors surface here).
    PufferConfig cfg = config_from_text(msg.config_text, config_.base_config);
    cfg.num_threads = 0;  // sessions never resize the shared pool

    // The whole session computes under this lease: max_running sessions
    // split the global worker budget instead of stacking full pools.
    par::WorkerLease lease(lease_want_);

    PufferFlow flow(design, cfg);
    TelemetryRound prev;
    bool have_prev = false;
    flow.set_progress_hook([&](const FlowProgress& p) {
      SessionEvent ev;
      ev.kind = SessionEvent::Kind::kTelemetry;
      ev.session_id = sid;
      ev.round = make_round(p, have_prev ? &prev : nullptr);
      prev = ev.round;
      have_prev = true;
      push_event(std::move(ev));
      return !impl->cancel.load();
    });
    const FlowMetrics metrics = flow.run();

    fin.summary.runtime_s = timer.elapsed_seconds();
    fin.summary.padding_rounds = metrics.padding_rounds;
    if (metrics.aborted_early) {
      fin.summary.state = static_cast<std::uint8_t>(SessionState::kCancelled);
    } else {
      ResultMsg result;
      result.session_id = sid;
      result.checksum = position_checksum(design);
      result.hpwl_legal = metrics.hpwl_legal;
      result.x.reserve(design.cells.size());
      result.y.reserve(design.cells.size());
      for (const Cell& c : design.cells) {
        result.x.push_back(c.x);
        result.y.push_back(c.y);
      }
      fin.summary.state = static_cast<std::uint8_t>(SessionState::kDone);
      fin.summary.checksum = result.checksum;
      fin.summary.hpwl_legal = result.hpwl_legal;
      fin.result_body = encode_result(result);
    }
  } catch (const std::exception& e) {
    fin.summary.state = static_cast<std::uint8_t>(SessionState::kFailed);
    fin.summary.message = e.what();
    fin.summary.runtime_s = timer.elapsed_seconds();
  }

  // Spool the result + log the finish before the poll thread learns of
  // it, so a crash right after the event can always be replayed.
  {
    std::lock_guard<std::mutex> lock(log_mu_);
    RequestLogRecord rec;
    rec.type = RequestLogRecord::Type::kFinish;
    rec.session_id = sid;
    rec.state = fin.summary.state;
    rec.checksum = fin.summary.checksum;
    rec.hpwl_legal = fin.summary.hpwl_legal;
    rec.runtime_s = fin.summary.runtime_s;
    rec.rounds = fin.summary.padding_rounds;
    rec.message = fin.summary.message;
    if (!fin.result_body.empty()) {
      rec.result_file = "result_" + std::to_string(sid) + ".bin";
      atomic_write_file(spool_path(rec.result_file), fin.result_body);
      impl->result_file = rec.result_file;
    }
    log_->append(rec);
  }
  push_event(std::move(fin));
}

void ServeSessionManager::push_event(SessionEvent event) {
  {
    std::lock_guard<std::mutex> lock(ev_mu_);
    events_.push_back(std::move(event));
  }
  if (wake_) wake_();
}

std::vector<SessionEvent> ServeSessionManager::drain_events() {
  std::lock_guard<std::mutex> lock(ev_mu_);
  std::vector<SessionEvent> out(events_.begin(), events_.end());
  events_.clear();
  return out;
}

const ServeSession* ServeSessionManager::apply(const SessionEvent& event) {
  const auto it = sessions_.find(event.session_id);
  if (it == sessions_.end()) return nullptr;
  Impl& impl = *it->second;
  if (event.kind == SessionEvent::Kind::kTelemetry) {
    if (!session_terminal(impl.pub.state)) {
      impl.pub.history.push_back(event.round);
    }
    return &impl.pub;
  }
  // Finished: the runner pushed this as its last action, so the join is
  // (nearly) instant.
  impl.pub.state = static_cast<SessionState>(event.summary.state);
  impl.pub.summary = event.summary;
  impl.result_body = event.result_body;
  impl.raw_body.clear();
  if (impl.thread.joinable()) impl.thread.join();
  --running_;
  PUFFER_LOG_INFO(kTag, "session %llu finished: %s",
                  static_cast<unsigned long long>(impl.pub.id),
                  session_state_name(impl.pub.state));
  return &impl.pub;
}

const ServeSession* ServeSessionManager::find(
    std::uint64_t session_id) const {
  const auto it = sessions_.find(session_id);
  return it == sessions_.end() ? nullptr : &it->second->pub;
}

SnapshotMsg ServeSessionManager::snapshot(std::uint64_t session_id) const {
  const ServeSession* s = find(session_id);
  SnapshotMsg m;
  if (!s) return m;
  m.session_id = s->id;
  m.state = static_cast<std::uint8_t>(s->state);
  m.history = s->history;
  if (session_terminal(s->state)) {
    m.has_summary = 1;
    m.summary = s->summary;
  }
  return m;
}

bool ServeSessionManager::result_body(std::uint64_t session_id,
                                      std::string* out) {
  const auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return false;
  Impl& impl = *it->second;
  if (impl.pub.state != SessionState::kDone) return false;
  if (impl.result_body.empty()) {
    if (impl.result_file.empty()) return false;
    try {
      impl.result_body = read_file(spool_path(impl.result_file));
    } catch (const CheckpointError&) {
      return false;
    }
  }
  *out = impl.result_body;
  return true;
}

StatusMsg ServeSessionManager::status(std::uint64_t session_id) const {
  StatusMsg m;
  for (const auto& [id, impl] : sessions_) {
    (void)id;
    switch (impl->pub.state) {
      case SessionState::kQueued:
        ++m.queued;
        break;
      case SessionState::kRunning:
        ++m.running;
        break;
      case SessionState::kDone:
        ++m.done;
        break;
      case SessionState::kCancelled:
        ++m.cancelled;
        break;
      case SessionState::kFailed:
        ++m.failed;
        break;
    }
  }
  m.max_running = config_.max_running;
  m.max_queued = config_.max_queued;
  m.draining = draining_ ? 1 : 0;
  if (session_id != 0) {
    const ServeSession* s = find(session_id);
    if (s) {
      m.has_session = 1;
      m.session_id = s->id;
      m.session_state = static_cast<std::uint8_t>(s->state);
      m.session_rounds = static_cast<std::int32_t>(s->history.size());
    }
  }
  return m;
}

bool ServeSessionManager::idle() const {
  if (running_ > 0) return false;
  for (const auto& [id, impl] : sessions_) {
    (void)id;
    if (!session_terminal(impl->pub.state)) return false;
  }
  return true;
}

}  // namespace puffer
