#include "serve/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/logger.h"
#include "io/net.h"

namespace puffer {

namespace {

constexpr const char* kTag = "pufferd";
// Poll timeout: the self-pipe delivers wakeups, so this only bounds
// shutdown latency on missed edges.
constexpr int kPollMs = 200;

}  // namespace

PufferServer::PufferServer(const std::string& address, ServeConfig config)
    : address_(address) {
  ignore_sigpipe();
  listen_fd_ = listen_socket(address);
  set_nonblocking(listen_fd_);

  int pipefd[2];
  if (::pipe(pipefd) != 0) {
    throw CheckpointError(std::string("pufferd: pipe: ") +
                          std::strerror(errno));
  }
  wake_rd_ = pipefd[0];
  wake_wr_ = pipefd[1];
  set_nonblocking(wake_rd_);
  set_nonblocking(wake_wr_);

  const int wr = wake_wr_;
  manager_ = std::make_unique<ServeSessionManager>(
      std::move(config), [wr] {
        const char byte = 'e';
        // A full pipe already guarantees a pending wakeup.
        (void)!::write(wr, &byte, 1);
      });
  PUFFER_LOG_INFO(kTag, "listening on %s (max_running=%d max_queued=%d)",
                  address_.c_str(), manager_->config().max_running,
                  manager_->config().max_queued);
}

PufferServer::~PufferServer() {
  // Join runners before touching fds the wake callback writes to.
  manager_.reset();
  for (auto& [fd, conn] : conns_) {
    (void)conn;
    ::close(fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_rd_ >= 0) ::close(wake_rd_);
  if (wake_wr_ >= 0) ::close(wake_wr_);
  if (is_unix_address(address_)) ::unlink(address_.c_str());
}

void PufferServer::request_drain() {
  drain_requested_.store(true);
  const char byte = 'd';
  (void)!::write(wake_wr_, &byte, 1);
}

int PufferServer::conn_inflight(const Connection& conn) const {
  int n = 0;
  for (const std::uint64_t sid : conn.submitted) {
    const ServeSession* s = manager_->find(sid);
    if (s && !session_terminal(s->state)) ++n;
  }
  return n;
}

bool PufferServer::out_buffers_empty() const {
  for (const auto& [fd, conn] : conns_) {
    (void)fd;
    if (conn->out_pos < conn->out.size()) return false;
  }
  return true;
}

void PufferServer::run() {
  std::vector<pollfd> fds;
  while (true) {
    if (drain_requested_.load() && !draining_) {
      draining_ = true;
      manager_->set_draining();
      PUFFER_LOG_INFO(kTag, "draining: finishing %d running session(s)",
                      manager_->status(0).running);
    }
    dispatch_events();
    manager_->pump();
    if (draining_ && manager_->idle()) {
      // Sessions done, frames queued; flush what the peers will take
      // and leave. (A peer that never reads does not hold up shutdown:
      // its remaining bytes die with the connection.)
      for (auto& [fd, conn] : conns_) {
        (void)fd;
        flush_conn(*conn);
      }
      if (out_buffers_empty()) break;
    }

    fds.clear();
    fds.push_back({listen_fd_, POLLIN, 0});
    fds.push_back({wake_rd_, POLLIN, 0});
    for (const auto& [fd, conn] : conns_) {
      short ev = conn->closing ? 0 : POLLIN;
      if (conn->out_pos < conn->out.size()) ev |= POLLOUT;
      fds.push_back({fd, ev, 0});
    }

    const int rc = ::poll(fds.data(), fds.size(), kPollMs);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw CheckpointError(std::string("pufferd: poll: ") +
                            std::strerror(errno));
    }

    if (fds[1].revents & POLLIN) {
      char buf[256];
      while (::read(wake_rd_, buf, sizeof(buf)) > 0) {
      }
    }
    if (fds[0].revents & POLLIN) accept_new();

    // Collect ready fds first: handlers may close connections, which
    // would invalidate iteration over conns_.
    std::vector<std::pair<int, short>> ready;
    for (std::size_t i = 2; i < fds.size(); ++i) {
      if (fds[i].revents != 0) ready.emplace_back(fds[i].fd, fds[i].revents);
    }
    for (const auto& [fd, revents] : ready) {
      const auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      if (revents & (POLLERR | POLLHUP | POLLNVAL)) {
        close_conn(fd);
        continue;
      }
      if (revents & POLLOUT) {
        flush_conn(*it->second);
        if (it->second->closing &&
            it->second->out_pos >= it->second->out.size()) {
          close_conn(fd);
          continue;
        }
      }
      if (revents & POLLIN) read_conn(fd);
    }
  }
  PUFFER_LOG_INFO(kTag, "drain complete, exiting");
}

void PufferServer::accept_new() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      PUFFER_LOG_INFO(kTag, "accept failed: %s", std::strerror(errno));
      return;
    }
    set_nonblocking(fd);
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conns_[fd] = std::move(conn);
  }
}

void PufferServer::read_conn(int fd) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Connection& conn = *it->second;
  char buf[1 << 16];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      conn.in.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {  // peer closed
      close_conn(fd);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close_conn(fd);
    return;
  }
  WireFrame frame;
  try {
    while (conn.in.next(&frame)) {
      handle_frame(fd, frame);
      if (conns_.find(fd) == conns_.end()) return;  // handler closed it
    }
  } catch (const CheckpointError& e) {
    // Corrupt framing: the stream is unusable beyond this point.
    PUFFER_LOG_INFO(kTag, "closing fd %d: %s", fd, e.what());
    close_conn(fd);
  }
}

void PufferServer::flush_conn(Connection& conn) {
  while (conn.out_pos < conn.out.size()) {
    const ssize_t n = ::write(conn.fd, conn.out.data() + conn.out_pos,
                              conn.out.size() - conn.out_pos);
    if (n > 0) {
      conn.out_pos += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    // EPIPE & friends: the peer is gone; drop the buffer, the poll loop
    // reaps the connection on the next POLLERR/HUP.
    conn.out_pos = conn.out.size();
    break;
  }
  if (conn.out_pos >= conn.out.size()) {
    conn.out.clear();
    conn.out_pos = 0;
  } else if (conn.out_pos > (1u << 20)) {
    conn.out.erase(0, conn.out_pos);
    conn.out_pos = 0;
  }
}

void PufferServer::close_conn(int fd) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  for (auto& [sid, watchers] : subs_) {
    (void)sid;
    watchers.erase(std::remove(watchers.begin(), watchers.end(), fd),
                   watchers.end());
  }
  ::close(fd);
  conns_.erase(it);
}

void PufferServer::queue_frame(int fd, ServeMsgType type,
                               const std::string& body) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  it->second->out += encode_frame(static_cast<std::uint32_t>(type), body);
  flush_conn(*it->second);  // opportunistic: most frames fit in one write
}

void PufferServer::queue_error(int fd, const std::string& message) {
  ServeErrorMsg err;
  err.message = message;
  queue_frame(fd, ServeMsgType::kError, encode_serve_error(err));
}

void PufferServer::handle_submit(int fd, const WireFrame& frame) {
  Connection& conn = *conns_.at(fd);
  if (conn_inflight(conn) >= manager_->config().per_conn_inflight) {
    RejectedMsg rej;
    rej.reason = static_cast<std::uint8_t>(RejectReason::kPerConnCap);
    rej.message = "connection already has " +
                  std::to_string(manager_->config().per_conn_inflight) +
                  " session(s) in flight";
    queue_frame(fd, ServeMsgType::kRejected, encode_rejected(rej));
    return;
  }
  const ServeSessionManager::AdmitResult res = manager_->submit(frame.body);
  if (!res.accepted) {
    RejectedMsg rej;
    rej.reason = static_cast<std::uint8_t>(res.reason);
    rej.message = res.message;
    queue_frame(fd, ServeMsgType::kRejected, encode_rejected(rej));
    return;
  }
  conn.submitted.push_back(res.session_id);
  SubmitAckMsg ack;
  ack.session_id = res.session_id;
  ack.state = static_cast<std::uint8_t>(res.state);
  ack.queue_depth = res.queue_depth;
  queue_frame(fd, ServeMsgType::kSubmitAck, encode_submit_ack(ack));
  manager_->pump();
}

void PufferServer::handle_frame(int fd, const WireFrame& frame) {
  const auto type = static_cast<ServeMsgType>(frame.type);
  try {
    if (!conns_.at(fd)->hello_done) {
      if (type != ServeMsgType::kClientHello) {
        queue_error(fd, "expected ClientHello first");
        conns_.at(fd)->closing = true;
        return;
      }
      const ClientHelloMsg hello = decode_client_hello(frame.body);
      if (hello.protocol_version != kServeProtocolVersion) {
        queue_error(fd, "unsupported protocol version " +
                            std::to_string(hello.protocol_version));
        conns_.at(fd)->closing = true;
        return;
      }
      conns_.at(fd)->hello_done = true;
      ServerHelloMsg reply;
      reply.daemon_name = manager_->config().daemon_name;
      queue_frame(fd, ServeMsgType::kServerHello,
                  encode_server_hello(reply));
      return;
    }
    switch (type) {
      case ServeMsgType::kSubmit:
        handle_submit(fd, frame);
        return;
      case ServeMsgType::kSubscribe: {
        const SessionRefMsg ref = decode_session_ref(frame.body);
        if (!manager_->find(ref.session_id)) {
          queue_error(fd, "unknown session " +
                              std::to_string(ref.session_id));
          return;
        }
        std::vector<int>& watchers = subs_[ref.session_id];
        if (std::find(watchers.begin(), watchers.end(), fd) ==
            watchers.end()) {
          watchers.push_back(fd);
        }
        queue_frame(fd, ServeMsgType::kSnapshot,
                    encode_snapshot_msg(manager_->snapshot(ref.session_id)));
        return;
      }
      case ServeMsgType::kDetach: {
        const SessionRefMsg ref = decode_session_ref(frame.body);
        std::vector<int>& watchers = subs_[ref.session_id];
        watchers.erase(std::remove(watchers.begin(), watchers.end(), fd),
                       watchers.end());
        // Queued after any in-flight telemetry: the ack is a barrier.
        queue_frame(fd, ServeMsgType::kDetachAck,
                    encode_session_ref(ref));
        return;
      }
      case ServeMsgType::kCancel: {
        const SessionRefMsg ref = decode_session_ref(frame.body);
        if (!manager_->cancel(ref.session_id)) {
          queue_error(fd, "unknown session " +
                              std::to_string(ref.session_id));
          return;
        }
        const ServeSession* s = manager_->find(ref.session_id);
        if (s && s->state == SessionState::kCancelled) {
          // Cancelled straight from the queue: finalize subscribers now
          // (a running session's cancel settles via its finish event).
          DoneMsg done;
          done.session_id = s->id;
          done.summary = s->summary;
          const std::string body = encode_done(done);
          for (const int wfd : subs_[s->id]) {
            queue_frame(wfd, ServeMsgType::kDone, body);
          }
          subs_.erase(s->id);
        }
        queue_frame(fd, ServeMsgType::kStatus,
                    encode_status(manager_->status(ref.session_id)));
        return;
      }
      case ServeMsgType::kFetch: {
        const SessionRefMsg ref = decode_session_ref(frame.body);
        std::string body;
        if (!manager_->result_body(ref.session_id, &body)) {
          const ServeSession* s = manager_->find(ref.session_id);
          queue_error(fd, "no result for session " +
                              std::to_string(ref.session_id) + " (" +
                              (s ? session_state_name(s->state) : "unknown") +
                              ")");
          return;
        }
        queue_frame(fd, ServeMsgType::kResult, body);
        return;
      }
      case ServeMsgType::kQuery: {
        const SessionRefMsg ref = decode_session_ref(frame.body);
        queue_frame(fd, ServeMsgType::kStatus,
                    encode_status(manager_->status(ref.session_id)));
        return;
      }
      default:
        queue_error(fd, "unexpected message type " +
                            std::to_string(frame.type));
        return;
    }
  } catch (const CheckpointError& e) {
    // Well-framed but undecodable body: report and keep the connection.
    queue_error(fd, e.what());
  }
}

void PufferServer::dispatch_events() {
  for (const SessionEvent& ev : manager_->drain_events()) {
    const ServeSession* s = manager_->apply(ev);
    if (!s) continue;
    const auto watchers = subs_.find(ev.session_id);
    if (ev.kind == SessionEvent::Kind::kTelemetry) {
      if (watchers == subs_.end() || watchers->second.empty()) continue;
      TelemetryMsg msg;
      msg.session_id = ev.session_id;
      msg.round = ev.round;
      const std::string body = encode_telemetry(msg);
      for (const int fd : watchers->second) {
        queue_frame(fd, ServeMsgType::kTelemetry, body);
      }
    } else {
      if (watchers != subs_.end()) {
        DoneMsg done;
        done.session_id = ev.session_id;
        done.summary = ev.summary;
        const std::string body = encode_done(done);
        for (const int fd : watchers->second) {
          queue_frame(fd, ServeMsgType::kDone, body);
        }
        subs_.erase(watchers);
      }
    }
  }
}

}  // namespace puffer
