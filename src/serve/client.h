// Blocking client for pufferd, shared by the puffer_client CLI and the
// serve tests.
//
// One connection, synchronous requests. Because a subscribed session
// streams telemetry at its own pace, a reply to a request may be
// preceded by unrelated frames; the client parses everything it reads
// into ServeEvents and queues what a caller was not waiting for, so no
// frame is ever dropped or reordered.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "serve/serve_protocol.h"

namespace puffer {

// One parsed daemon->client frame; `type` selects the valid member.
struct ServeEvent {
  ServeMsgType type = ServeMsgType::kError;
  SubmitAckMsg ack;
  RejectedMsg rejected;
  SnapshotMsg snapshot;
  TelemetryMsg telemetry;
  DoneMsg done;
  ResultMsg result;
  StatusMsg status;
  SessionRefMsg detach_ack;
  ServeErrorMsg error;
};

class ServeClient {
 public:
  // Connects (with retry while the daemon boots) and runs the hello
  // exchange. Throws CheckpointError on failure or version mismatch.
  ServeClient(const std::string& address, double connect_timeout_s = 10.0,
              const std::string& client_name = "puffer_client");
  ~ServeClient();
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  // Submit: the reply is kSubmitAck or kRejected.
  ServeEvent submit(const SubmitMsg& job);

  // Subscribe: returns the snapshot; telemetry then arrives as events.
  SnapshotMsg subscribe(std::uint64_t session_id);

  // Detach: drains the stream up to the ack (the barrier) and returns
  // every event read on the way, in order.
  std::vector<ServeEvent> detach(std::uint64_t session_id);

  ServeEvent cancel(std::uint64_t session_id);  // kStatus or kError
  ServeEvent fetch(std::uint64_t session_id);   // kResult or kError
  ServeEvent query(std::uint64_t session_id);   // kStatus or kError

  // Next event: queued first, then read from the socket (blocking).
  // Throws CheckpointError if the daemon closes the connection.
  ServeEvent next_event();

  // Drains events until the session's kDone arrives (returned);
  // telemetry for it is appended to *rounds when non-null.
  DoneMsg wait_done(std::uint64_t session_id,
                    std::vector<TelemetryRound>* rounds = nullptr);

  int fd() const { return fd_; }

 private:
  ServeEvent read_event();
  // Reads (queueing mismatches) until pred matches.
  ServeEvent read_until(const std::function<bool(const ServeEvent&)>& pred);

  int fd_ = -1;
  std::deque<ServeEvent> pending_;
};

}  // namespace puffer
