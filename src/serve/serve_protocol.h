// Client/daemon wire protocol for placement-as-a-service (pufferd).
//
// Messages ride the same PUFM length-prefixed frames as the
// coordinator/worker protocol (io/checkpoint.h: write_frame_fd /
// FrameBuffer) over a Unix-domain or TCP socket, with bodies encoded by
// BinaryWriter/Reader -- every double crosses the wire as its IEEE-754
// bit pattern, so a placement fetched from the daemon is bit-identical
// to one produced in process.
//
// Lifecycle (see docs/architecture.md for the full table):
//
//   client                            pufferd
//   ------                            -------
//   ClientHello                 --->
//                               <---  ServerHello
//   Submit(design, config)      --->
//                               <---  SubmitAck(session_id, queued)
//                                     ... or Rejected(reason)  [backpressure]
//   Subscribe(session_id)       --->
//                               <---  Snapshot(state, round history)
//                               <---  Telemetry(round delta)    [per round]
//                               <---  ...
//                               <---  Done(final summary)
//   Fetch(session_id)           --->
//                               <---  Result(positions, checksum)
//
// Detach/Cancel/Query may be sent at any time; Telemetry frames already
// queued when a Detach arrives are delivered before the DetachAck, so a
// client can treat the ack as a stream barrier. Sessions are addressed
// by id and survive the submitting connection: a client may disconnect
// and re-attach from a new connection.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "io/checkpoint.h"

namespace puffer {

// Protocol (message-schema) version, checked in the hello exchange on
// top of the per-frame wire version.
constexpr std::uint32_t kServeProtocolVersion = 1;

enum class ServeMsgType : std::uint32_t {
  // client -> daemon
  kClientHello = 1,
  kSubmit = 2,
  kSubscribe = 3,
  kDetach = 4,
  kCancel = 5,
  kFetch = 6,
  kQuery = 7,
  // daemon -> client
  kServerHello = 32,
  kSubmitAck = 33,
  kRejected = 34,
  kSnapshot = 35,
  kTelemetry = 36,
  kDone = 37,
  kResult = 38,
  kStatus = 39,
  kDetachAck = 40,
  kError = 41,
};

// Session lifecycle: kQueued -> kRunning -> {kDone, kCancelled, kFailed}.
// (A cancel of a still-queued session goes straight to kCancelled.)
enum class SessionState : std::uint8_t {
  kQueued = 0,
  kRunning = 1,
  kDone = 2,
  kCancelled = 3,
  kFailed = 4,
};

inline bool session_terminal(SessionState s) {
  return s == SessionState::kDone || s == SessionState::kCancelled ||
         s == SessionState::kFailed;
}

const char* session_state_name(SessionState s);

// Admission-control rejection reasons (explicit backpressure: a client
// submitting past capacity always gets one of these, never a hang or a
// silent drop).
enum class RejectReason : std::uint8_t {
  kQueueFull = 1,    // bounded admission queue at capacity
  kPerConnCap = 2,   // this connection's in-flight cap reached
  kDraining = 3,     // daemon is draining (SIGTERM); finish, don't accept
  kBadRequest = 4,   // malformed job (undecodable design, bad config)
};

const char* reject_reason_name(RejectReason r);

struct ClientHelloMsg {
  std::uint32_t protocol_version = kServeProtocolVersion;
  std::string client_name;
};

struct ServerHelloMsg {
  std::uint32_t protocol_version = kServeProtocolVersion;
  std::string daemon_name;
};

// How the job's netlist is encoded.
enum class JobFormat : std::uint8_t {
  kBinaryDesign = 0,     // io/design_codec.h blob
  kBookshelfBundle = 1,  // named Bookshelf file texts (.aux + members)
};

struct SubmitMsg {
  std::uint8_t format = static_cast<std::uint8_t>(JobFormat::kBinaryDesign);
  std::string job_name;     // client-side label (logs only)
  std::string design_blob;  // kBinaryDesign: encode_design bytes
  // kBookshelfBundle: (file name, file text) pairs; aux_name selects the
  // .aux member. File names must be plain basenames (no '/').
  std::vector<std::pair<std::string, std::string>> files;
  std::string aux_name;
  // Strategy overrides applied onto the daemon's base config
  // (core/config_io.h text form; empty = daemon defaults).
  std::string config_text;
};

struct SubmitAckMsg {
  std::uint64_t session_id = 0;
  std::uint8_t state = 0;        // SessionState at admission
  std::int32_t queue_depth = 0;  // sessions ahead of this one
};

struct RejectedMsg {
  std::uint8_t reason = 0;  // RejectReason
  std::string message;
};

// Subscribe / Detach / Cancel / Fetch / Query all carry just the id.
// Query with id 0 asks for daemon-wide stats.
struct SessionRefMsg {
  std::uint64_t session_id = 0;
};

// One padding round's telemetry: cumulative values plus deltas against
// the previous round, and a downsampled congestion-heatmap tile.
struct TelemetryRound {
  std::int32_t round = -1;
  double est_overflow_pct = 0.0;  // estimated total overflow after round
  double hpwl = 0.0;              // GP HPWL after the round's estimate
  double overflow_delta = 0.0;    // vs previous round (round 0: vs 0)
  double hpwl_delta = 0.0;
  // Row-major max-pooled congestion tile; one byte per tile cell:
  // 128 = demand equals capacity, 64 per unit of signed congestion
  // (see serve/telemetry.h).
  std::int32_t tile_nx = 0;
  std::int32_t tile_ny = 0;
  std::string tile;
};

// Terminal summary of a session (valid once state is terminal).
struct SessionSummary {
  std::uint8_t state = 0;  // SessionState
  std::uint64_t checksum = 0;  // position_checksum of the final placement
  double hpwl_legal = 0.0;
  double runtime_s = 0.0;
  std::int32_t padding_rounds = 0;
  std::string message;  // failure reason for kFailed
};

// Snapshot-on-subscribe: the full cumulative round history so far, plus
// the terminal summary when the session already finished.
struct SnapshotMsg {
  std::uint64_t session_id = 0;
  std::uint8_t state = 0;  // SessionState at snapshot time
  std::vector<TelemetryRound> history;
  std::uint8_t has_summary = 0;
  SessionSummary summary;
};

struct TelemetryMsg {
  std::uint64_t session_id = 0;
  TelemetryRound round;
};

struct DoneMsg {
  std::uint64_t session_id = 0;
  SessionSummary summary;
};

struct ResultMsg {
  std::uint64_t session_id = 0;
  std::uint64_t checksum = 0;
  double hpwl_legal = 0.0;
  // Final lower-left positions, index-aligned with the submitted
  // design's cells (fixed cells included).
  std::vector<double> x, y;
};

struct StatusMsg {
  // Daemon-wide counters.
  std::int32_t queued = 0;
  std::int32_t running = 0;
  std::int32_t done = 0;
  std::int32_t cancelled = 0;
  std::int32_t failed = 0;
  std::int32_t max_running = 0;
  std::int32_t max_queued = 0;
  std::uint8_t draining = 0;
  // Session-specific part (present when the query named a session).
  std::uint8_t has_session = 0;
  std::uint64_t session_id = 0;
  std::uint8_t session_state = 0;  // SessionState
  std::int32_t session_rounds = 0;
};

struct ServeErrorMsg {
  std::string message;
};

// Body codecs. decode_* throw CheckpointError on malformed input
// (truncation, trailing bytes, out-of-range enums).
std::string encode_client_hello(const ClientHelloMsg& m);
ClientHelloMsg decode_client_hello(const std::string& body);
std::string encode_server_hello(const ServerHelloMsg& m);
ServerHelloMsg decode_server_hello(const std::string& body);
std::string encode_submit(const SubmitMsg& m);
SubmitMsg decode_submit(const std::string& body);
std::string encode_submit_ack(const SubmitAckMsg& m);
SubmitAckMsg decode_submit_ack(const std::string& body);
std::string encode_rejected(const RejectedMsg& m);
RejectedMsg decode_rejected(const std::string& body);
std::string encode_session_ref(const SessionRefMsg& m);
SessionRefMsg decode_session_ref(const std::string& body);
std::string encode_snapshot_msg(const SnapshotMsg& m);
SnapshotMsg decode_snapshot_msg(const std::string& body);
std::string encode_telemetry(const TelemetryMsg& m);
TelemetryMsg decode_telemetry(const std::string& body);
std::string encode_done(const DoneMsg& m);
DoneMsg decode_done(const std::string& body);
std::string encode_result(const ResultMsg& m);
ResultMsg decode_result(const std::string& body);
std::string encode_status(const StatusMsg& m);
StatusMsg decode_status(const std::string& body);
std::string encode_serve_error(const ServeErrorMsg& m);
ServeErrorMsg decode_serve_error(const std::string& body);

// Typed frame send over the blocking stream layer (client side; the
// daemon queues frames on its non-blocking connections instead).
void send_serve_msg(int fd, ServeMsgType type, const std::string& body);

}  // namespace puffer
