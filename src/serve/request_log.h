// Append-only request log for the serve daemon (pufferd).
//
// Same crash-safety idiom as the trial journal (orchestrate/
// trial_journal.h): one flat JSONL record per line, fsync per append, a
// tolerant loader that drops at most one torn final line. Together with
// the spool directory -- which keeps every session's raw submit body and
// final result blob as atomically-written files -- the log makes the
// daemon restartable: replaying it reconstructs each session's last
// known state, finished sessions reload their results from the spool,
// and sessions that were queued or running at the crash are re-admitted
// (the deterministic flow re-runs them to bit-identical results).
//
// Record schema:
//   {"type":"header","version":1}
//   {"type":"submit","sid":N,"job":"job_N.bin","name":"..."}
//   {"type":"start","sid":N}
//   {"type":"cancel","sid":N}
//   {"type":"finish","sid":N,"state":S,"checksum":"..hex..",
//    "hpwl_bits":"..hex..","runtime_bits":"..hex..","rounds":R,
//    "result":"result_N.bin","msg":"..."}
//
// state is the numeric SessionState; checksum/hpwl/runtime are IEEE-754
// / integer bit patterns in hex so a recovered summary is bit-identical
// to the one streamed before the restart.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "serve/serve_protocol.h"

namespace puffer {

struct RequestLogRecord {
  enum class Type {
    kHeader,
    kSubmit,
    kStart,
    kCancel,
    kFinish,
  };
  Type type = Type::kHeader;

  std::uint64_t session_id = 0;
  std::string job_file;     // submit: spool file holding the raw body
  std::string job_name;     // submit: client label
  std::uint8_t state = 0;   // finish: terminal SessionState
  std::uint64_t checksum = 0;
  double hpwl_legal = 0.0;
  double runtime_s = 0.0;
  int rounds = 0;
  std::string result_file;  // finish: spool file holding the ResultMsg body
  std::string message;      // finish: failure reason
};

class RequestLog {
 public:
  // Opens `path` for appending (created when missing; a fresh file gets
  // a header record). Throws CheckpointError when it cannot be opened.
  explicit RequestLog(const std::string& path);
  ~RequestLog();
  RequestLog(const RequestLog&) = delete;
  RequestLog& operator=(const RequestLog&) = delete;

  // Serializes, appends one line, flushes and fsyncs.
  void append(const RequestLogRecord& rec);

  const std::string& path() const { return path_; }

  // One-record codec (exposed for tests).
  static std::string encode(const RequestLogRecord& rec);
  // Returns false for a malformed/torn line (never throws).
  static bool decode(const std::string& line, RequestLogRecord* out);

  // Tolerant loader: records up to the first malformed line; a missing
  // file yields an empty vector.
  static std::vector<RequestLogRecord> load(const std::string& path);

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  int fd_ = -1;
};

// A session's state as reconstructed from a log replay.
struct RecoveredSession {
  std::uint64_t session_id = 0;
  std::string job_file;
  std::string job_name;
  bool started = false;
  bool cancelled = false;
  bool finished = false;
  // Valid when finished:
  SessionSummary summary;
  std::string result_file;
};

// Folds a loaded log into per-session recovery state, in first-submit
// order. Records referencing a session id with no submit record are
// ignored (they can only come from a torn log).
std::vector<RecoveredSession> replay_request_log(
    const std::vector<RequestLogRecord>& records);

}  // namespace puffer
