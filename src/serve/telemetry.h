// Per-round telemetry construction for the serve daemon: turns the
// flow's FlowProgress callback payload into the wire-form TelemetryRound
// (cumulative metrics, deltas against the previous round, and a
// downsampled congestion-heatmap tile small enough to stream every
// round).
#pragma once

#include "core/flow.h"
#include "serve/serve_protocol.h"

namespace puffer {

// Largest tile edge streamed per round; grids bigger than this are
// max-pooled down (a Gcell grid smaller than the cap streams 1:1).
constexpr int kTelemetryTileMax = 32;

// Quantization of the signed congestion value cg() into a tile byte:
// byte = clamp(round(128 + 64 * cg), 0, 255), i.e. 128 = demand equals
// capacity, 192 = 100% overflow, 64 = 100% slack.
std::uint8_t quantize_congestion(double cg);

// Max-pooled, quantized tile of the combined congestion map. Max pooling
// (not averaging) so a single overflowed Gcell stays visible after
// downsampling.
void congestion_tile(const RoutingMaps& maps, int max_edge, int* nx, int* ny,
                     std::string* tile);

// Builds round `p.round`'s record; `prev` is the previous round's record
// (nullptr for the first round, deltas measured against zero).
TelemetryRound make_round(const FlowProgress& p, const TelemetryRound* prev);

}  // namespace puffer
