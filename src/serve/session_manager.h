// Managed placement sessions for the serve daemon.
//
// The ServeSessionManager owns the session table, the bounded admission
// queue and the runner threads. Threading contract: every public method
// is called from the daemon's poll thread only; runner threads touch
// nothing but their own session's cancel flag, the spool/request log
// (mutex-guarded) and the event queue. Runner results re-enter the poll
// thread through drain_events() -- the poll loop applies each event
// (apply()) and forwards the corresponding frames to subscribers, so
// session state and round history are only ever mutated single-threaded.
//
// Determinism: each session runs the standard PufferFlow on a private
// Design copy under a par::WorkerLease of num_threads()/max_running
// workers, with PufferConfig.num_threads forced to 0 (sessions must
// never resize the shared pool). The bit-identity contract of the
// kernels therefore extends to the daemon: a job submitted over the
// wire yields the same position_checksum as PufferFlow::run() on the
// same design + config in-process, regardless of what else the daemon
// is running.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/flow.h"
#include "serve/request_log.h"
#include "serve/serve_protocol.h"

namespace puffer {

struct ServeConfig {
  // Spool directory: request log, raw job bodies, result blobs. Created
  // when missing; an existing log is replayed (session recovery).
  std::string spool_dir = "pufferd_spool";
  std::string daemon_name = "pufferd";
  int max_running = 1;       // concurrent running sessions
  int max_queued = 4;        // bounded admission queue (excludes running)
  int per_conn_inflight = 2; // non-terminal sessions per connection
  PufferConfig base_config;  // submit config_text overrides apply on top
};

// Validates ranges; throws std::invalid_argument on nonsense.
ServeConfig validate_serve_config(ServeConfig config);

// What a runner thread reports back to the poll thread.
struct SessionEvent {
  enum class Kind { kTelemetry, kFinished };
  Kind kind = Kind::kTelemetry;
  std::uint64_t session_id = 0;
  TelemetryRound round;     // kTelemetry
  SessionSummary summary;   // kFinished
  std::string result_body;  // kFinished + done: encoded ResultMsg
};

// Poll-thread view of one session.
struct ServeSession {
  std::uint64_t id = 0;
  std::string job_name;
  SessionState state = SessionState::kQueued;
  std::vector<TelemetryRound> history;
  SessionSummary summary;  // valid once state is terminal
};

class ServeSessionManager {
 public:
  // `wake` is invoked (from runner threads) whenever an event is queued;
  // the daemon uses it to interrupt poll(). Replays an existing request
  // log: finished sessions are restored, unfinished ones re-admitted.
  ServeSessionManager(ServeConfig config, std::function<void()> wake);
  ~ServeSessionManager();
  ServeSessionManager(const ServeSessionManager&) = delete;
  ServeSessionManager& operator=(const ServeSessionManager&) = delete;

  const ServeConfig& config() const { return config_; }

  struct AdmitResult {
    bool accepted = false;
    // accepted:
    std::uint64_t session_id = 0;
    SessionState state = SessionState::kQueued;
    std::int32_t queue_depth = 0;
    // rejected:
    RejectReason reason = RejectReason::kBadRequest;
    std::string message;
  };

  // Admission control. Rejects (never blocks, never drops) when the
  // daemon is draining, the queue is full, or the submit body is
  // malformed (undecodable message / design, bad bundle file names).
  // On acceptance the job is spooled + logged, then pump() starts it
  // when a runner slot frees up.
  AdmitResult submit(const std::string& raw_submit_body);

  // Cancel: queued sessions finalize immediately; running sessions get
  // their cancel flag set and finalize at the next padding-round
  // boundary (a flow past its padding rounds finishes as kDone -- the
  // result is valid either way). Returns false for an unknown id.
  bool cancel(std::uint64_t session_id);

  // Starts queued sessions while runner slots are free. Call after
  // submit / apply / set_draining.
  void pump();

  // Moves all pending runner events out (poll thread takes ownership).
  std::vector<SessionEvent> drain_events();

  // Applies one drained event to the session table (appends history or
  // finalizes + joins the runner). Returns the session, or nullptr for
  // a stale id.
  const ServeSession* apply(const SessionEvent& event);

  // nullptr when the id is unknown.
  const ServeSession* find(std::uint64_t session_id) const;

  // Snapshot-on-subscribe payload: current state + full round history
  // (+ summary when terminal).
  SnapshotMsg snapshot(std::uint64_t session_id) const;

  // Encoded ResultMsg body for a kDone session (loads the spooled blob
  // after a restart). False when the session is unknown, not done, or
  // the blob is missing.
  bool result_body(std::uint64_t session_id, std::string* out);

  // Daemon-wide counters (+ the named session when session_id != 0).
  StatusMsg status(std::uint64_t session_id) const;

  // Drain mode: stop admitting, finish what's running.
  void set_draining() { draining_ = true; }
  bool draining() const { return draining_; }
  // True when nothing is queued or running (drain complete).
  bool idle() const;

 private:
  struct Impl;  // per-session runner state (cancel flag, thread, body)

  std::uint64_t next_id_ = 1;
  void admit_recovered(const RecoveredSession& rec);
  void start_session(Impl& impl);
  void run_session(Impl* impl);  // runner-thread body
  void push_event(SessionEvent event);
  std::string spool_path(const std::string& file) const;

  ServeConfig config_;
  std::function<void()> wake_;
  std::unique_ptr<RequestLog> log_;
  std::mutex log_mu_;  // request log + spool writes (runner + poll thread)

  std::map<std::uint64_t, std::unique_ptr<Impl>> sessions_;
  std::deque<std::uint64_t> queue_;
  int running_ = 0;
  bool draining_ = false;
  int lease_want_ = 1;

  std::mutex ev_mu_;
  std::deque<SessionEvent> events_;
};

}  // namespace puffer
