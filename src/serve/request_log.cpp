#include "serve/request_log.h"

#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <unordered_map>

#include "io/checkpoint.h"

namespace puffer {
namespace {

constexpr int kLogVersion = 1;

std::string hex_u64(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}

std::uint64_t double_bits(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double bits_double(std::uint64_t bits) {
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

// Minimal flat-object JSON field extraction -- the log only ever parses
// lines it wrote itself (same idiom and caveats as the trial journal).
bool find_raw(const std::string& line, const std::string& key,
              std::string* out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  std::size_t p = at + needle.size();
  while (p < line.size() && line[p] == ' ') ++p;
  if (p >= line.size()) return false;
  if (line[p] == '"') {
    const std::size_t end = line.find('"', p + 1);
    if (end == std::string::npos) return false;
    *out = line.substr(p + 1, end - p - 1);
    return true;
  }
  std::size_t end = p;
  while (end < line.size() && line[end] != ',' && line[end] != '}') {
    ++end;
  }
  if (end == line.size()) return false;
  *out = line.substr(p, end - p);
  return true;
}

bool get_hex(const std::string& line, const std::string& key,
             std::uint64_t* out) {
  std::string raw;
  if (!find_raw(line, key, &raw) || raw.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const std::uint64_t v = std::strtoull(raw.c_str(), &end, 16);
  if (errno != 0 || end == raw.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

bool get_int(const std::string& line, const std::string& key, int* out) {
  std::string raw;
  if (!find_raw(line, key, &raw) || raw.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(raw.c_str(), &end, 10);
  if (errno != 0 || end == raw.c_str() || *end != '\0') return false;
  *out = static_cast<int>(v);
  return true;
}

bool get_string(const std::string& line, const std::string& key,
                std::string* out) {
  return find_raw(line, key, out);
}

// Session labels and failure messages go through the log as JSON string
// values; anything that would break the flat-line format is replaced.
std::string sanitize(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    if (c == '"' || c == '\\' || c == '\n' || c == '\r') c = '_';
  }
  return out;
}

}  // namespace

RequestLog::RequestLog(const std::string& path) : path_(path) {
  const bool fresh = ::access(path.c_str(), F_OK) != 0;
  file_ = std::fopen(path.c_str(), "ab");
  if (!file_) {
    throw CheckpointError("request log: cannot open " + path + ": " +
                          std::strerror(errno));
  }
  fd_ = ::fileno(file_);
  if (fresh) {
    RequestLogRecord header;
    header.type = RequestLogRecord::Type::kHeader;
    append(header);
  }
}

RequestLog::~RequestLog() {
  if (file_) std::fclose(file_);
}

void RequestLog::append(const RequestLogRecord& rec) {
  const std::string line = encode(rec) + "\n";
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size()) {
    throw CheckpointError("request log: short write to " + path_);
  }
  if (std::fflush(file_) != 0) {
    throw CheckpointError("request log: flush failed for " + path_);
  }
  if (fd_ >= 0 && ::fsync(fd_) != 0) {
    throw CheckpointError("request log: fsync failed for " + path_ + ": " +
                          std::strerror(errno));
  }
}

std::string RequestLog::encode(const RequestLogRecord& rec) {
  char buf[512];
  std::string s;
  switch (rec.type) {
    case RequestLogRecord::Type::kHeader:
      std::snprintf(buf, sizeof(buf), "{\"type\":\"header\",\"version\":%d}",
                    kLogVersion);
      s = buf;
      break;
    case RequestLogRecord::Type::kSubmit:
      std::snprintf(buf, sizeof(buf),
                    "{\"type\":\"submit\",\"sid\":%" PRIu64
                    ",\"job\":\"%s\",\"name\":\"%s\"}",
                    rec.session_id, sanitize(rec.job_file).c_str(),
                    sanitize(rec.job_name).c_str());
      s = buf;
      break;
    case RequestLogRecord::Type::kStart:
      std::snprintf(buf, sizeof(buf),
                    "{\"type\":\"start\",\"sid\":%" PRIu64 "}",
                    rec.session_id);
      s = buf;
      break;
    case RequestLogRecord::Type::kCancel:
      std::snprintf(buf, sizeof(buf),
                    "{\"type\":\"cancel\",\"sid\":%" PRIu64 "}",
                    rec.session_id);
      s = buf;
      break;
    case RequestLogRecord::Type::kFinish:
      std::snprintf(buf, sizeof(buf),
                    "{\"type\":\"finish\",\"sid\":%" PRIu64
                    ",\"state\":%d,\"checksum\":\"%s\",\"hpwl_bits\":\"%s\","
                    "\"runtime_bits\":\"%s\",\"rounds\":%d,\"result\":\"%s\","
                    "\"msg\":\"%s\"}",
                    rec.session_id, static_cast<int>(rec.state),
                    hex_u64(rec.checksum).c_str(),
                    hex_u64(double_bits(rec.hpwl_legal)).c_str(),
                    hex_u64(double_bits(rec.runtime_s)).c_str(), rec.rounds,
                    sanitize(rec.result_file).c_str(),
                    sanitize(rec.message).c_str());
      s = buf;
      break;
  }
  return s;
}

bool RequestLog::decode(const std::string& line, RequestLogRecord* out) {
  if (line.empty() || line.front() != '{' || line.back() != '}') return false;
  std::string type;
  if (!get_string(line, "type", &type)) return false;
  RequestLogRecord rec;
  std::string sid_raw;
  if (type == "header") {
    rec.type = RequestLogRecord::Type::kHeader;
    int version = 0;
    if (!get_int(line, "version", &version) || version != kLogVersion) {
      return false;
    }
  } else {
    if (!find_raw(line, "sid", &sid_raw) || sid_raw.empty()) return false;
    char* end = nullptr;
    errno = 0;
    rec.session_id = std::strtoull(sid_raw.c_str(), &end, 10);
    if (errno != 0 || end == sid_raw.c_str() || *end != '\0') return false;
    if (type == "submit") {
      rec.type = RequestLogRecord::Type::kSubmit;
      if (!get_string(line, "job", &rec.job_file)) return false;
      if (!get_string(line, "name", &rec.job_name)) return false;
    } else if (type == "start") {
      rec.type = RequestLogRecord::Type::kStart;
    } else if (type == "cancel") {
      rec.type = RequestLogRecord::Type::kCancel;
    } else if (type == "finish") {
      rec.type = RequestLogRecord::Type::kFinish;
      int state = 0;
      if (!get_int(line, "state", &state) || state < 0 ||
          state > static_cast<int>(SessionState::kFailed)) {
        return false;
      }
      rec.state = static_cast<std::uint8_t>(state);
      std::uint64_t bits = 0;
      if (!get_hex(line, "checksum", &rec.checksum)) return false;
      if (!get_hex(line, "hpwl_bits", &bits)) return false;
      rec.hpwl_legal = bits_double(bits);
      if (!get_hex(line, "runtime_bits", &bits)) return false;
      rec.runtime_s = bits_double(bits);
      if (!get_int(line, "rounds", &rec.rounds)) return false;
      if (!get_string(line, "result", &rec.result_file)) return false;
      if (!get_string(line, "msg", &rec.message)) return false;
    } else {
      return false;
    }
  }
  *out = rec;
  return true;
}

std::vector<RequestLogRecord> RequestLog::load(const std::string& path) {
  std::vector<RequestLogRecord> records;
  std::ifstream in(path);
  if (!in) return records;
  std::string line;
  while (std::getline(in, line)) {
    RequestLogRecord rec;
    if (!decode(line, &rec)) break;  // torn tail: drop it and stop
    records.push_back(rec);
  }
  return records;
}

std::vector<RecoveredSession> replay_request_log(
    const std::vector<RequestLogRecord>& records) {
  std::vector<RecoveredSession> sessions;
  std::unordered_map<std::uint64_t, std::size_t> index;
  for (const RequestLogRecord& rec : records) {
    if (rec.type == RequestLogRecord::Type::kHeader) continue;
    if (rec.type == RequestLogRecord::Type::kSubmit) {
      if (index.count(rec.session_id)) continue;  // torn log artifact
      index[rec.session_id] = sessions.size();
      RecoveredSession s;
      s.session_id = rec.session_id;
      s.job_file = rec.job_file;
      s.job_name = rec.job_name;
      sessions.push_back(s);
      continue;
    }
    const auto it = index.find(rec.session_id);
    if (it == index.end()) continue;  // record without a submit: ignore
    RecoveredSession& s = sessions[it->second];
    switch (rec.type) {
      case RequestLogRecord::Type::kStart:
        s.started = true;
        break;
      case RequestLogRecord::Type::kCancel:
        s.cancelled = true;
        break;
      case RequestLogRecord::Type::kFinish:
        s.finished = true;
        s.summary.state = rec.state;
        s.summary.checksum = rec.checksum;
        s.summary.hpwl_legal = rec.hpwl_legal;
        s.summary.runtime_s = rec.runtime_s;
        s.summary.padding_rounds = rec.rounds;
        s.summary.message = rec.message;
        s.result_file = rec.result_file;
        break;
      default:
        break;
    }
  }
  return sessions;
}

}  // namespace puffer
