#include "serve/telemetry.h"

#include <algorithm>
#include <cmath>

namespace puffer {

std::uint8_t quantize_congestion(double cg) {
  const double q = std::lround(128.0 + 64.0 * cg);
  return static_cast<std::uint8_t>(std::clamp(q, 0.0, 255.0));
}

void congestion_tile(const RoutingMaps& maps, int max_edge, int* nx, int* ny,
                     std::string* tile) {
  const Map2D<double> cg = maps.cg_map();
  const int gx = cg.nx();
  const int gy = cg.ny();
  if (gx <= 0 || gy <= 0 || max_edge <= 0) {
    *nx = 0;
    *ny = 0;
    tile->clear();
    return;
  }
  const int tnx = std::min(gx, max_edge);
  const int tny = std::min(gy, max_edge);
  *nx = tnx;
  *ny = tny;
  tile->assign(static_cast<std::size_t>(tnx) * static_cast<std::size_t>(tny),
               '\0');
  for (int ty = 0; ty < tny; ++ty) {
    // Gcell rows [y0, y1) pool into tile row ty (uniform partition).
    const int y0 = static_cast<int>(static_cast<long long>(ty) * gy / tny);
    const int y1 = static_cast<int>(static_cast<long long>(ty + 1) * gy / tny);
    for (int tx = 0; tx < tnx; ++tx) {
      const int x0 = static_cast<int>(static_cast<long long>(tx) * gx / tnx);
      const int x1 =
          static_cast<int>(static_cast<long long>(tx + 1) * gx / tnx);
      double best = cg.at(x0, y0);
      for (int y = y0; y < y1; ++y) {
        for (int x = x0; x < x1; ++x) {
          best = std::max(best, cg.at(x, y));
        }
      }
      (*tile)[static_cast<std::size_t>(ty) * static_cast<std::size_t>(tnx) +
              static_cast<std::size_t>(tx)] =
          static_cast<char>(quantize_congestion(best));
    }
  }
}

TelemetryRound make_round(const FlowProgress& p, const TelemetryRound* prev) {
  TelemetryRound t;
  t.round = p.round;
  t.est_overflow_pct = p.est.total_pct();
  t.hpwl = p.hpwl;
  t.overflow_delta =
      t.est_overflow_pct - (prev ? prev->est_overflow_pct : 0.0);
  t.hpwl_delta = t.hpwl - (prev ? prev->hpwl : 0.0);
  if (p.maps != nullptr) {
    congestion_tile(*p.maps, kTelemetryTileMax, &t.tile_nx, &t.tile_ny,
                    &t.tile);
  }
  return t;
}

}  // namespace puffer
