#include "serve/serve_protocol.h"

namespace puffer {

namespace {

// Every decoder consumes the whole body; trailing bytes mean a codec
// mismatch and are rejected rather than silently ignored.
void finish_decode(const BinaryReader& r, const char* what) {
  if (!r.at_end()) {
    throw CheckpointError(std::string("serve: trailing bytes after ") + what);
  }
}

void check_count(std::uint64_t n, std::size_t remaining, std::size_t min_size,
                 const char* what) {
  if (min_size > 0 && n > remaining / min_size) {
    throw CheckpointError(std::string("serve: ") + what +
                          " count exceeds buffer");
  }
}

std::uint8_t get_session_state(BinaryReader& r) {
  const std::uint8_t s = r.get_u8();
  if (s > static_cast<std::uint8_t>(SessionState::kFailed)) {
    throw CheckpointError("serve: invalid session state");
  }
  return s;
}

void put_round(BinaryWriter& w, const TelemetryRound& t) {
  w.put_i32(t.round);
  w.put_f64(t.est_overflow_pct);
  w.put_f64(t.hpwl);
  w.put_f64(t.overflow_delta);
  w.put_f64(t.hpwl_delta);
  w.put_i32(t.tile_nx);
  w.put_i32(t.tile_ny);
  w.put_string(t.tile);
}

TelemetryRound get_round(BinaryReader& r) {
  TelemetryRound t;
  t.round = r.get_i32();
  t.est_overflow_pct = r.get_f64();
  t.hpwl = r.get_f64();
  t.overflow_delta = r.get_f64();
  t.hpwl_delta = r.get_f64();
  t.tile_nx = r.get_i32();
  t.tile_ny = r.get_i32();
  t.tile = r.get_string();
  if (t.tile_nx < 0 || t.tile_ny < 0 ||
      t.tile.size() != static_cast<std::size_t>(t.tile_nx) *
                           static_cast<std::size_t>(t.tile_ny)) {
    throw CheckpointError("serve: telemetry tile size mismatch");
  }
  return t;
}

void put_summary(BinaryWriter& w, const SessionSummary& s) {
  w.put_u8(s.state);
  w.put_u64(s.checksum);
  w.put_f64(s.hpwl_legal);
  w.put_f64(s.runtime_s);
  w.put_i32(s.padding_rounds);
  w.put_string(s.message);
}

SessionSummary get_summary(BinaryReader& r) {
  SessionSummary s;
  s.state = get_session_state(r);
  s.checksum = r.get_u64();
  s.hpwl_legal = r.get_f64();
  s.runtime_s = r.get_f64();
  s.padding_rounds = r.get_i32();
  s.message = r.get_string();
  return s;
}

}  // namespace

const char* session_state_name(SessionState s) {
  switch (s) {
    case SessionState::kQueued:
      return "queued";
    case SessionState::kRunning:
      return "running";
    case SessionState::kDone:
      return "done";
    case SessionState::kCancelled:
      return "cancelled";
    case SessionState::kFailed:
      return "failed";
  }
  return "?";
}

const char* reject_reason_name(RejectReason r) {
  switch (r) {
    case RejectReason::kQueueFull:
      return "queue-full";
    case RejectReason::kPerConnCap:
      return "per-connection-cap";
    case RejectReason::kDraining:
      return "draining";
    case RejectReason::kBadRequest:
      return "bad-request";
  }
  return "?";
}

std::string encode_client_hello(const ClientHelloMsg& m) {
  BinaryWriter w;
  w.put_u32(m.protocol_version);
  w.put_string(m.client_name);
  return w.take();
}

ClientHelloMsg decode_client_hello(const std::string& body) {
  BinaryReader r(body);
  ClientHelloMsg m;
  m.protocol_version = r.get_u32();
  m.client_name = r.get_string();
  finish_decode(r, "client hello");
  return m;
}

std::string encode_server_hello(const ServerHelloMsg& m) {
  BinaryWriter w;
  w.put_u32(m.protocol_version);
  w.put_string(m.daemon_name);
  return w.take();
}

ServerHelloMsg decode_server_hello(const std::string& body) {
  BinaryReader r(body);
  ServerHelloMsg m;
  m.protocol_version = r.get_u32();
  m.daemon_name = r.get_string();
  finish_decode(r, "server hello");
  return m;
}

std::string encode_submit(const SubmitMsg& m) {
  BinaryWriter w;
  w.put_u8(m.format);
  w.put_string(m.job_name);
  w.put_string(m.design_blob);
  w.put_u64(m.files.size());
  for (const auto& f : m.files) {
    w.put_string(f.first);
    w.put_string(f.second);
  }
  w.put_string(m.aux_name);
  w.put_string(m.config_text);
  return w.take();
}

SubmitMsg decode_submit(const std::string& body) {
  BinaryReader r(body);
  SubmitMsg m;
  m.format = r.get_u8();
  if (m.format > static_cast<std::uint8_t>(JobFormat::kBookshelfBundle)) {
    throw CheckpointError("serve: invalid job format");
  }
  m.job_name = r.get_string();
  m.design_blob = r.get_string();
  const std::uint64_t nfiles = r.get_u64();
  check_count(nfiles, r.remaining(), 8 + 8, "submit file");
  m.files.resize(static_cast<std::size_t>(nfiles));
  for (auto& f : m.files) {
    f.first = r.get_string();
    f.second = r.get_string();
  }
  m.aux_name = r.get_string();
  m.config_text = r.get_string();
  finish_decode(r, "submit");
  return m;
}

std::string encode_submit_ack(const SubmitAckMsg& m) {
  BinaryWriter w;
  w.put_u64(m.session_id);
  w.put_u8(m.state);
  w.put_i32(m.queue_depth);
  return w.take();
}

SubmitAckMsg decode_submit_ack(const std::string& body) {
  BinaryReader r(body);
  SubmitAckMsg m;
  m.session_id = r.get_u64();
  m.state = get_session_state(r);
  m.queue_depth = r.get_i32();
  finish_decode(r, "submit ack");
  return m;
}

std::string encode_rejected(const RejectedMsg& m) {
  BinaryWriter w;
  w.put_u8(m.reason);
  w.put_string(m.message);
  return w.take();
}

RejectedMsg decode_rejected(const std::string& body) {
  BinaryReader r(body);
  RejectedMsg m;
  m.reason = r.get_u8();
  if (m.reason < static_cast<std::uint8_t>(RejectReason::kQueueFull) ||
      m.reason > static_cast<std::uint8_t>(RejectReason::kBadRequest)) {
    throw CheckpointError("serve: invalid reject reason");
  }
  m.message = r.get_string();
  finish_decode(r, "rejected");
  return m;
}

std::string encode_session_ref(const SessionRefMsg& m) {
  BinaryWriter w;
  w.put_u64(m.session_id);
  return w.take();
}

SessionRefMsg decode_session_ref(const std::string& body) {
  BinaryReader r(body);
  SessionRefMsg m;
  m.session_id = r.get_u64();
  finish_decode(r, "session ref");
  return m;
}

std::string encode_snapshot_msg(const SnapshotMsg& m) {
  BinaryWriter w;
  w.put_u64(m.session_id);
  w.put_u8(m.state);
  w.put_u64(m.history.size());
  for (const TelemetryRound& t : m.history) {
    put_round(w, t);
  }
  w.put_u8(m.has_summary);
  if (m.has_summary) {
    put_summary(w, m.summary);
  }
  return w.take();
}

SnapshotMsg decode_snapshot_msg(const std::string& body) {
  BinaryReader r(body);
  SnapshotMsg m;
  m.session_id = r.get_u64();
  m.state = get_session_state(r);
  const std::uint64_t nrounds = r.get_u64();
  check_count(nrounds, r.remaining(), 4 + 4 * 8 + 4 + 4 + 8, "snapshot round");
  m.history.resize(static_cast<std::size_t>(nrounds));
  for (TelemetryRound& t : m.history) {
    t = get_round(r);
  }
  m.has_summary = r.get_u8();
  if (m.has_summary) {
    m.summary = get_summary(r);
  }
  finish_decode(r, "snapshot");
  return m;
}

std::string encode_telemetry(const TelemetryMsg& m) {
  BinaryWriter w;
  w.put_u64(m.session_id);
  put_round(w, m.round);
  return w.take();
}

TelemetryMsg decode_telemetry(const std::string& body) {
  BinaryReader r(body);
  TelemetryMsg m;
  m.session_id = r.get_u64();
  m.round = get_round(r);
  finish_decode(r, "telemetry");
  return m;
}

std::string encode_done(const DoneMsg& m) {
  BinaryWriter w;
  w.put_u64(m.session_id);
  put_summary(w, m.summary);
  return w.take();
}

DoneMsg decode_done(const std::string& body) {
  BinaryReader r(body);
  DoneMsg m;
  m.session_id = r.get_u64();
  m.summary = get_summary(r);
  finish_decode(r, "done");
  return m;
}

std::string encode_result(const ResultMsg& m) {
  BinaryWriter w;
  w.put_u64(m.session_id);
  w.put_u64(m.checksum);
  w.put_f64(m.hpwl_legal);
  w.put_f64_vec(m.x);
  w.put_f64_vec(m.y);
  return w.take();
}

ResultMsg decode_result(const std::string& body) {
  BinaryReader r(body);
  ResultMsg m;
  m.session_id = r.get_u64();
  m.checksum = r.get_u64();
  m.hpwl_legal = r.get_f64();
  m.x = r.get_f64_vec();
  m.y = r.get_f64_vec();
  if (m.x.size() != m.y.size()) {
    throw CheckpointError("serve: result position vectors disagree");
  }
  finish_decode(r, "result");
  return m;
}

std::string encode_status(const StatusMsg& m) {
  BinaryWriter w;
  w.put_i32(m.queued);
  w.put_i32(m.running);
  w.put_i32(m.done);
  w.put_i32(m.cancelled);
  w.put_i32(m.failed);
  w.put_i32(m.max_running);
  w.put_i32(m.max_queued);
  w.put_u8(m.draining);
  w.put_u8(m.has_session);
  if (m.has_session) {
    w.put_u64(m.session_id);
    w.put_u8(m.session_state);
    w.put_i32(m.session_rounds);
  }
  return w.take();
}

StatusMsg decode_status(const std::string& body) {
  BinaryReader r(body);
  StatusMsg m;
  m.queued = r.get_i32();
  m.running = r.get_i32();
  m.done = r.get_i32();
  m.cancelled = r.get_i32();
  m.failed = r.get_i32();
  m.max_running = r.get_i32();
  m.max_queued = r.get_i32();
  m.draining = r.get_u8();
  m.has_session = r.get_u8();
  if (m.has_session) {
    m.session_id = r.get_u64();
    m.session_state = get_session_state(r);
    m.session_rounds = r.get_i32();
  }
  finish_decode(r, "status");
  return m;
}

std::string encode_serve_error(const ServeErrorMsg& m) {
  BinaryWriter w;
  w.put_string(m.message);
  return w.take();
}

ServeErrorMsg decode_serve_error(const std::string& body) {
  BinaryReader r(body);
  ServeErrorMsg m;
  m.message = r.get_string();
  finish_decode(r, "error");
  return m;
}

void send_serve_msg(int fd, ServeMsgType type, const std::string& body) {
  write_frame_fd(fd, static_cast<std::uint32_t>(type), body);
}

}  // namespace puffer
