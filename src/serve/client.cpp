#include "serve/client.h"

#include <unistd.h>

#include "io/net.h"

namespace puffer {

ServeClient::ServeClient(const std::string& address,
                         double connect_timeout_s,
                         const std::string& client_name) {
  ignore_sigpipe();
  fd_ = connect_socket_retry(address, connect_timeout_s);
  ClientHelloMsg hello;
  hello.client_name = client_name;
  send_serve_msg(fd_, ServeMsgType::kClientHello,
                 encode_client_hello(hello));
  const ServeEvent reply = read_until([](const ServeEvent& e) {
    return e.type == ServeMsgType::kServerHello ||
           e.type == ServeMsgType::kError;
  });
  if (reply.type == ServeMsgType::kError) {
    throw CheckpointError("serve client: handshake rejected: " +
                          reply.error.message);
  }
}

ServeClient::~ServeClient() {
  if (fd_ >= 0) ::close(fd_);
}

ServeEvent ServeClient::read_event() {
  WireFrame frame;
  if (!read_frame_fd(fd_, &frame)) {
    throw CheckpointError("serve client: daemon closed the connection");
  }
  ServeEvent ev;
  ev.type = static_cast<ServeMsgType>(frame.type);
  switch (ev.type) {
    case ServeMsgType::kServerHello:
      (void)decode_server_hello(frame.body);
      break;
    case ServeMsgType::kSubmitAck:
      ev.ack = decode_submit_ack(frame.body);
      break;
    case ServeMsgType::kRejected:
      ev.rejected = decode_rejected(frame.body);
      break;
    case ServeMsgType::kSnapshot:
      ev.snapshot = decode_snapshot_msg(frame.body);
      break;
    case ServeMsgType::kTelemetry:
      ev.telemetry = decode_telemetry(frame.body);
      break;
    case ServeMsgType::kDone:
      ev.done = decode_done(frame.body);
      break;
    case ServeMsgType::kResult:
      ev.result = decode_result(frame.body);
      break;
    case ServeMsgType::kStatus:
      ev.status = decode_status(frame.body);
      break;
    case ServeMsgType::kDetachAck:
      ev.detach_ack = decode_session_ref(frame.body);
      break;
    case ServeMsgType::kError:
      ev.error = decode_serve_error(frame.body);
      break;
    default:
      throw CheckpointError("serve client: unexpected frame type " +
                            std::to_string(frame.type));
  }
  return ev;
}

ServeEvent ServeClient::read_until(
    const std::function<bool(const ServeEvent&)>& pred) {
  while (true) {
    ServeEvent ev = read_event();
    if (pred(ev)) return ev;
    pending_.push_back(std::move(ev));
  }
}

ServeEvent ServeClient::next_event() {
  if (!pending_.empty()) {
    ServeEvent ev = std::move(pending_.front());
    pending_.pop_front();
    return ev;
  }
  return read_event();
}

ServeEvent ServeClient::submit(const SubmitMsg& job) {
  send_serve_msg(fd_, ServeMsgType::kSubmit, encode_submit(job));
  return read_until([](const ServeEvent& e) {
    return e.type == ServeMsgType::kSubmitAck ||
           e.type == ServeMsgType::kRejected;
  });
}

SnapshotMsg ServeClient::subscribe(std::uint64_t session_id) {
  SessionRefMsg ref;
  ref.session_id = session_id;
  send_serve_msg(fd_, ServeMsgType::kSubscribe, encode_session_ref(ref));
  const ServeEvent ev = read_until([session_id](const ServeEvent& e) {
    return (e.type == ServeMsgType::kSnapshot &&
            e.snapshot.session_id == session_id) ||
           e.type == ServeMsgType::kError;
  });
  if (ev.type == ServeMsgType::kError) {
    throw CheckpointError("serve client: subscribe failed: " +
                          ev.error.message);
  }
  return ev.snapshot;
}

std::vector<ServeEvent> ServeClient::detach(std::uint64_t session_id) {
  SessionRefMsg ref;
  ref.session_id = session_id;
  send_serve_msg(fd_, ServeMsgType::kDetach, encode_session_ref(ref));
  std::vector<ServeEvent> before;
  // Everything already queued locally precedes the ack by definition.
  before.insert(before.end(), pending_.begin(), pending_.end());
  pending_.clear();
  while (true) {
    ServeEvent ev = read_event();
    if (ev.type == ServeMsgType::kDetachAck &&
        ev.detach_ack.session_id == session_id) {
      return before;
    }
    before.push_back(std::move(ev));
  }
}

ServeEvent ServeClient::cancel(std::uint64_t session_id) {
  SessionRefMsg ref;
  ref.session_id = session_id;
  send_serve_msg(fd_, ServeMsgType::kCancel, encode_session_ref(ref));
  return read_until([](const ServeEvent& e) {
    return e.type == ServeMsgType::kStatus || e.type == ServeMsgType::kError;
  });
}

ServeEvent ServeClient::fetch(std::uint64_t session_id) {
  SessionRefMsg ref;
  ref.session_id = session_id;
  send_serve_msg(fd_, ServeMsgType::kFetch, encode_session_ref(ref));
  return read_until([session_id](const ServeEvent& e) {
    return (e.type == ServeMsgType::kResult &&
            e.result.session_id == session_id) ||
           e.type == ServeMsgType::kError;
  });
}

ServeEvent ServeClient::query(std::uint64_t session_id) {
  SessionRefMsg ref;
  ref.session_id = session_id;
  send_serve_msg(fd_, ServeMsgType::kQuery, encode_session_ref(ref));
  return read_until([](const ServeEvent& e) {
    return e.type == ServeMsgType::kStatus || e.type == ServeMsgType::kError;
  });
}

DoneMsg ServeClient::wait_done(std::uint64_t session_id,
                               std::vector<TelemetryRound>* rounds) {
  // Consume matching events already queued, keeping everything else.
  std::deque<ServeEvent> keep;
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    ServeEvent& ev = pending_[i];
    if (ev.type == ServeMsgType::kTelemetry &&
        ev.telemetry.session_id == session_id) {
      if (rounds) rounds->push_back(ev.telemetry.round);
      continue;
    }
    if (ev.type == ServeMsgType::kDone && ev.done.session_id == session_id) {
      const DoneMsg done = ev.done;
      for (std::size_t j = i + 1; j < pending_.size(); ++j) {
        keep.push_back(std::move(pending_[j]));
      }
      pending_ = std::move(keep);
      return done;
    }
    keep.push_back(std::move(ev));
  }
  pending_ = std::move(keep);
  while (true) {
    ServeEvent ev = read_event();
    if (ev.type == ServeMsgType::kTelemetry &&
        ev.telemetry.session_id == session_id) {
      if (rounds) rounds->push_back(ev.telemetry.round);
      continue;
    }
    if (ev.type == ServeMsgType::kDone && ev.done.session_id == session_id) {
      return ev.done;
    }
    pending_.push_back(std::move(ev));
  }
}

}  // namespace puffer
