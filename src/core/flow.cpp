#include "core/flow.h"

#include <algorithm>

#include "common/logger.h"
#include "common/parallel.h"

namespace puffer {

namespace {
constexpr const char* kTag = "flow";
}

PufferFlow::PufferFlow(Design& design, PufferConfig config)
    : design_(design), config_(config), legalizer_(config.legal) {}

FlowMetrics PufferFlow::run() { return run_internal(nullptr, nullptr); }

std::uint64_t PufferFlow::prefix_key(double fork_overflow) const {
  BinaryWriter w;
  w.put_u8(config_.init.keep_existing ? 1 : 0);
  w.put_i32(config_.init.sweeps);
  w.put_f64(config_.init.jitter_frac);
  w.put_u64(config_.init.seed);
  w.put_i32(config_.gp.bin_dim);
  w.put_f64(config_.gp.target_density);
  w.put_f64(config_.gp.stop_overflow);
  w.put_i32(config_.gp.max_iters);
  w.put_u8(config_.gp.use_fillers ? 1 : 0);
  w.put_u64(config_.gp.seed);
  w.put_f64(config_.gp.mu_max);
  w.put_f64(config_.gp.mu_min);
  w.put_f64(config_.gp.hpwl_ref_frac);
  w.put_f64(config_.gp.lambda_freeze_overflow);
  w.put_f64(fork_overflow);
  return fnv1a_bytes(w.buffer().data(), w.buffer().size());
}

FlowMetrics PufferFlow::run_prefix(double fork_overflow, const RngStream& rng,
                                   FlowSnapshot* out) {
  FlowMetrics metrics;
  Timer total;
  if (config_.num_threads > 0) par::set_num_threads(config_.num_threads);

  {
    ScopedStageTimer t(metrics.stages, "initial_place");
    initial_place(design_, config_.init);
  }
  EPlaceEngine engine(design_, config_.gp);
  estimator_ =
      std::make_unique<CongestionEstimator>(design_, config_.congestion);
  {
    ScopedStageTimer t(metrics.stages, "global_place");
    engine.run_to_overflow(fork_overflow);
  }
  // Warm the demand ledger at the fork: every continuation's first
  // padding round is then incremental over the fork state.
  {
    ScopedStageTimer t(metrics.stages, "routability_opt");
    estimator_->estimate_incremental();
  }
  metrics.hpwl_gp = design_.total_hpwl();
  metrics.gp_kernels.add(engine.kernel_times());
  metrics.estimation = estimator_->incremental_stats();
  metrics.runtime_s = total.elapsed_seconds();
  PUFFER_LOG_INFO(kTag,
                  "prefix done in %.1fs at overflow %.3f (iter %d), hpwl %.4g",
                  metrics.runtime_s, engine.density_overflow(),
                  engine.iteration(), metrics.hpwl_gp);

  if (out) {
    out->design_key = design_structure_key(design_);
    out->prefix_key = prefix_key(fork_overflow);
    out->fork_overflow = fork_overflow;
    const std::size_t n = design_.cells.size();
    out->x.resize(n);
    out->y.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      out->x[i] = design_.cells[i].x;
      out->y[i] = design_.cells[i].y;
    }
    out->padding.clear();  // the fork precedes every padding round
    out->rng_key = rng.key();
    out->rng_counter = rng.counter();
    out->congestion_fingerprint = estimator_->config_fingerprint();
    out->ledger_blob = estimator_->save_incremental_state();
  }
  return metrics;
}

FlowMetrics PufferFlow::run_from(const FlowSnapshot& snapshot,
                                 const RoundCallback& cb) {
  return run_internal(&snapshot, cb);
}

FlowMetrics PufferFlow::run_internal(const FlowSnapshot* snapshot,
                                     const RoundCallback& cb) {
  FlowMetrics metrics;
  Timer total;
  if (config_.num_threads > 0) par::set_num_threads(config_.num_threads);

  if (snapshot == nullptr) {
    ScopedStageTimer t(metrics.stages, "initial_place");
    initial_place(design_, config_.init);
  } else {
    ScopedStageTimer t(metrics.stages, "restore");
    if (snapshot->design_key != design_structure_key(design_)) {
      throw CheckpointError("flow: snapshot was taken from a different design");
    }
    if (snapshot->x.size() != design_.cells.size()) {
      throw CheckpointError("flow: snapshot cell count disagrees with design");
    }
    for (std::size_t i = 0; i < design_.cells.size(); ++i) {
      design_.cells[i].x = snapshot->x[i];
      design_.cells[i].y = snapshot->y[i];
    }
  }

  // The placement engine reads the design's (restored) positions at
  // construction, so the Nesterov state restarts at the fork boundary —
  // identically for an in-memory and an on-disk snapshot.
  EPlaceEngine engine(design_, config_.gp);
  PaddingEngine padder(design_, engine.movable_cells(), config_.padding);
  // One estimator for all padding rounds: its demand ledger and topology
  // cache carry over, so each round pays only for the nets that moved.
  estimator_ = std::make_unique<CongestionEstimator>(design_, config_.congestion);
  if (snapshot != nullptr) {
    ScopedStageTimer t(metrics.stages, "restore");
    if (!snapshot->padding.empty()) {
      engine.set_padding(snapshot->padding);
    }
    // The ledger is a pure warm start: restore it only when it was built
    // under this flow's congestion config, else stay cold (full rebuild on
    // the first round — bit-identical results either way, see PR-2).
    if (!snapshot->ledger_blob.empty() &&
        snapshot->congestion_fingerprint == estimator_->config_fingerprint()) {
      estimator_->restore_incremental_state(snapshot->ledger_blob);
    }
  }

  // Global placement with interleaved routability optimization.
  int round = 0;
  {
    ScopedStageTimer t(metrics.stages, "global_place");
    while (true) {
      engine.run_to_overflow(config_.padding.tau);
      if (!padder.should_trigger(engine.density_overflow())) break;
      ScopedStageTimer t2(metrics.stages, "routability_opt");
      const CongestionResult congestion = estimator_->estimate_incremental();
      const OverflowStats est_of = compute_overflow(congestion.maps);
      metrics.round_est_overflow.push_back(est_of.total_pct());
      if (cb && !cb(round, est_of)) {
        metrics.aborted_early = true;
        break;
      }
      if (progress_hook_) {
        FlowProgress progress;
        progress.round = round;
        progress.est = est_of;
        progress.hpwl = design_.total_hpwl();
        progress.maps = &congestion.maps;
        if (!progress_hook_(progress)) {
          metrics.aborted_early = true;
          PUFFER_LOG_INFO(kTag, "flow cancelled by progress hook at round %d",
                          round);
          break;
        }
      }
      ++round;
      const IncrementalStats& est = estimator_->incremental_stats();
      const std::vector<double>& pad = padder.update(congestion);
      engine.set_padding(pad);
      PUFFER_LOG_INFO(kTag,
                      "padding round %d at iter %d (overflow %.3f, est "
                      "expanded %d segs; %s est %.3fs, %d/%d nets dirty, "
                      "cache hit %.0f%%)",
                      padder.attempts(), engine.iteration(),
                      engine.density_overflow(), congestion.expanded_segments,
                      est.last_was_full ? "full" : "incr", est.last_time_s,
                      est.last_dirty_nets, est.last_total_nets,
                      100.0 * estimator_->tree_cache().hit_rate());
      // Let the density system absorb the new areas before re-estimating.
      for (int k = 0; k < config_.padding.spacing_iters; ++k) {
        if (!engine.step()) break;
      }
      engine.sync_to_design();
    }
    if (!metrics.aborted_early) {
      engine.run_to_overflow(config_.final_overflow);
    }
  }
  metrics.hpwl_gp = design_.total_hpwl();
  metrics.padding_rounds = padder.rounds();
  metrics.gp_kernels.add(engine.kernel_times());
  {
    const GpKernelTimes& k = metrics.gp_kernels;
    PUFFER_LOG_INFO(kTag,
                    "gp kernels: wl %.2fs density %.2fs poisson %.2fs "
                    "assemble %.2fs nesterov %.2fs (%d evals, %d iters)",
                    k.wirelength_s, k.density_s, k.poisson_s, k.assemble_s,
                    k.nesterov_s, k.gradient_evals, k.iterations);
  }

  if (metrics.aborted_early) {
    // Pruned session: no final convergence, no legalization. The design
    // holds the mid-flow positions; the orchestrator only reads the
    // per-round overflow trail and the deterministic penalty loss.
    metrics.runtime_s = total.elapsed_seconds();
    metrics.estimation = estimator_->incremental_stats();
    metrics.rsmt_cache_hit_rate = estimator_->tree_cache().hit_rate();
    metrics.padding_stage = padder.stage_metrics();
    PUFFER_LOG_INFO(kTag, "flow aborted by round callback after round %d",
                    round);
    return metrics;
  }

  // White-space-assisted legalization: inherit the GP padding.
  {
    ScopedStageTimer t(metrics.stages, "legalize");
    std::vector<double> pad_by_cell(design_.cells.size(), 0.0);
    const auto& movable = engine.movable_cells();
    for (std::size_t i = 0; i < movable.size(); ++i) {
      pad_by_cell[static_cast<std::size_t>(movable[i])] = padder.padding()[i];
    }
    const std::vector<int> levels =
        discretize_padding(design_, pad_by_cell, config_.discrete);
    double pad_area = 0.0;
    const double site_area = design_.tech.site_width * design_.tech.row_height;
    for (int lv : levels) pad_area += lv * site_area;
    metrics.padding_area = pad_area;
    if (metrics.padding_area <= 0.0 && metrics.padding_rounds > 0) {
      // Padding was applied during GP but quantization dropped every
      // discrete level; report the continuous applied area (capped by the
      // discrete budget so the two paths stay comparable).
      double movable_area = 0.0;
      for (CellId cid : movable) {
        movable_area += design_.cells[static_cast<std::size_t>(cid)].area();
      }
      metrics.padding_area =
          std::min(padder.peak_applied_area(),
                   config_.discrete.max_pad_area_frac * movable_area);
    }
    metrics.legalize = legalizer_.legalize(design_, levels);
  }
  if (config_.run_dp) {
    ScopedStageTimer t(metrics.stages, "detailed_place");
    metrics.dp = detailed_place(design_, config_.dp);
  }
  metrics.hpwl_legal = design_.total_hpwl();
  metrics.legality = check_legality(design_);
  metrics.runtime_s = total.elapsed_seconds();
  metrics.estimation = estimator_->incremental_stats();
  metrics.rsmt_cache_hit_rate = estimator_->tree_cache().hit_rate();
  metrics.padding_stage = padder.stage_metrics();
  PUFFER_LOG_INFO(kTag, "flow done in %.1fs: hpwl %.4g -> %.4g, %s",
                  metrics.runtime_s, metrics.hpwl_gp, metrics.hpwl_legal,
                  metrics.legality.summary().c_str());
  PUFFER_LOG_INFO(
      kTag,
      "legalize: %s %.3fs, %d placed (%d failed), avg/max disp %.3g/%.3g, "
      "%d/%d rows rebuilt",
      metrics.legalize.incremental ? "incr" : "full", metrics.legalize.time_s,
      metrics.legalize.placed, metrics.legalize.failed_cells,
      metrics.legalize.avg_displacement(), metrics.legalize.max_displacement,
      metrics.legalize.rows_rebuilt, metrics.legalize.rows_total);
  if (config_.run_dp) {
    PUFFER_LOG_INFO(kTag,
                    "dp: %.3fs, %d/%d moves accepted in %d passes, hpwl "
                    "%.4g -> %.4g (%.2f%%)",
                    metrics.dp.time_s, metrics.dp.accepted_moves,
                    metrics.dp.evaluated_moves, metrics.dp.passes,
                    metrics.dp.hpwl_before, metrics.dp.hpwl_after,
                    metrics.dp.improvement_pct());
  }
  if (metrics.estimation.calls > 0) {
    PUFFER_LOG_INFO(
        kTag,
        "estimation: %d calls (%d full), %.1f%% nets dirty on incr rounds, "
        "incr %.3fs / full %.3fs, rsmt cache hit %.0f%%, drift %llu",
        metrics.estimation.calls, metrics.estimation.full_rebuilds,
        100.0 * metrics.estimation.dirty_net_frac(),
        metrics.estimation.incremental_time_s, metrics.estimation.full_time_s,
        100.0 * metrics.rsmt_cache_hit_rate,
        static_cast<unsigned long long>(metrics.estimation.drift_count));
  }
  if (metrics.padding_stage.extracts > 0) {
    const PaddingStageMetrics& fs = metrics.padding_stage;
    PUFFER_LOG_INFO(
        kTag,
        "padding features: %d extracts (%d full) in %.3fs, %.1f%% gcells "
        "dirty on incr rounds, incidence hit %.0f%%, nets %lld reused / "
        "%lld recomputed, drift %llu",
        fs.extracts, fs.full_rebuilds, fs.feature_time_s,
        100.0 * fs.dirty_gcell_frac(), 100.0 * fs.incidence_hit_rate(),
        static_cast<long long>(fs.nets_reused),
        static_cast<long long>(fs.nets_recomputed),
        static_cast<unsigned long long>(fs.drift_count));
  }
  return metrics;
}

RouteResult evaluate_routability(const Design& design,
                                 const RouterConfig& config,
                                 CongestionEstimator* warm) {
  GlobalRouter router(design, config,
                      warm ? &warm->tree_cache() : nullptr);
  return router.route();
}

}  // namespace puffer
