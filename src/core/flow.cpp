#include "core/flow.h"

#include <algorithm>

#include "common/logger.h"
#include "common/parallel.h"

namespace puffer {

namespace {
constexpr const char* kTag = "flow";
}

PufferFlow::PufferFlow(Design& design, PufferConfig config)
    : design_(design), config_(config), legalizer_(config.legal) {}

FlowMetrics PufferFlow::run() {
  FlowMetrics metrics;
  Timer total;
  if (config_.num_threads > 0) par::set_num_threads(config_.num_threads);

  {
    ScopedStageTimer t(metrics.stages, "initial_place");
    initial_place(design_, config_.init);
  }

  EPlaceEngine engine(design_, config_.gp);
  PaddingEngine padder(design_, engine.movable_cells(), config_.padding);
  // One estimator for all padding rounds: its demand ledger and topology
  // cache carry over, so each round pays only for the nets that moved.
  estimator_ = std::make_unique<CongestionEstimator>(design_, config_.congestion);

  // Global placement with interleaved routability optimization.
  {
    ScopedStageTimer t(metrics.stages, "global_place");
    while (true) {
      engine.run_to_overflow(config_.padding.tau);
      if (!padder.should_trigger(engine.density_overflow())) break;
      ScopedStageTimer t2(metrics.stages, "routability_opt");
      const CongestionResult congestion = estimator_->estimate_incremental();
      const IncrementalStats& est = estimator_->incremental_stats();
      const std::vector<double>& pad = padder.update(congestion);
      engine.set_padding(pad);
      PUFFER_LOG_INFO(kTag,
                      "padding round %d at iter %d (overflow %.3f, est "
                      "expanded %d segs; %s est %.3fs, %d/%d nets dirty, "
                      "cache hit %.0f%%)",
                      padder.attempts(), engine.iteration(),
                      engine.density_overflow(), congestion.expanded_segments,
                      est.last_was_full ? "full" : "incr", est.last_time_s,
                      est.last_dirty_nets, est.last_total_nets,
                      100.0 * estimator_->tree_cache().hit_rate());
      // Let the density system absorb the new areas before re-estimating.
      for (int k = 0; k < config_.padding.spacing_iters; ++k) {
        if (!engine.step()) break;
      }
      engine.sync_to_design();
    }
    engine.run_to_overflow(config_.final_overflow);
  }
  metrics.hpwl_gp = design_.total_hpwl();
  metrics.padding_rounds = padder.rounds();

  // White-space-assisted legalization: inherit the GP padding.
  {
    ScopedStageTimer t(metrics.stages, "legalize");
    std::vector<double> pad_by_cell(design_.cells.size(), 0.0);
    const auto& movable = engine.movable_cells();
    for (std::size_t i = 0; i < movable.size(); ++i) {
      pad_by_cell[static_cast<std::size_t>(movable[i])] = padder.padding()[i];
    }
    const std::vector<int> levels =
        discretize_padding(design_, pad_by_cell, config_.discrete);
    double pad_area = 0.0;
    const double site_area = design_.tech.site_width * design_.tech.row_height;
    for (int lv : levels) pad_area += lv * site_area;
    metrics.padding_area = pad_area;
    if (metrics.padding_area <= 0.0 && metrics.padding_rounds > 0) {
      // Padding was applied during GP but quantization dropped every
      // discrete level; report the continuous applied area (capped by the
      // discrete budget so the two paths stay comparable).
      double movable_area = 0.0;
      for (CellId cid : movable) {
        movable_area += design_.cells[static_cast<std::size_t>(cid)].area();
      }
      metrics.padding_area =
          std::min(padder.peak_applied_area(),
                   config_.discrete.max_pad_area_frac * movable_area);
    }
    metrics.legalize = legalizer_.legalize(design_, levels);
  }
  if (config_.run_dp) {
    ScopedStageTimer t(metrics.stages, "detailed_place");
    metrics.dp = detailed_place(design_, config_.dp);
  }
  metrics.hpwl_legal = design_.total_hpwl();
  metrics.legality = check_legality(design_);
  metrics.runtime_s = total.elapsed_seconds();
  metrics.estimation = estimator_->incremental_stats();
  metrics.rsmt_cache_hit_rate = estimator_->tree_cache().hit_rate();
  PUFFER_LOG_INFO(kTag, "flow done in %.1fs: hpwl %.4g -> %.4g, %s",
                  metrics.runtime_s, metrics.hpwl_gp, metrics.hpwl_legal,
                  metrics.legality.summary().c_str());
  PUFFER_LOG_INFO(
      kTag,
      "legalize: %s %.3fs, %d placed (%d failed), avg/max disp %.3g/%.3g, "
      "%d/%d rows rebuilt",
      metrics.legalize.incremental ? "incr" : "full", metrics.legalize.time_s,
      metrics.legalize.placed, metrics.legalize.failed_cells,
      metrics.legalize.avg_displacement(), metrics.legalize.max_displacement,
      metrics.legalize.rows_rebuilt, metrics.legalize.rows_total);
  if (config_.run_dp) {
    PUFFER_LOG_INFO(kTag,
                    "dp: %.3fs, %d/%d moves accepted in %d passes, hpwl "
                    "%.4g -> %.4g (%.2f%%)",
                    metrics.dp.time_s, metrics.dp.accepted_moves,
                    metrics.dp.evaluated_moves, metrics.dp.passes,
                    metrics.dp.hpwl_before, metrics.dp.hpwl_after,
                    metrics.dp.improvement_pct());
  }
  if (metrics.estimation.calls > 0) {
    PUFFER_LOG_INFO(
        kTag,
        "estimation: %d calls (%d full), %.1f%% nets dirty on incr rounds, "
        "incr %.3fs / full %.3fs, rsmt cache hit %.0f%%, drift %llu",
        metrics.estimation.calls, metrics.estimation.full_rebuilds,
        100.0 * metrics.estimation.dirty_net_frac(),
        metrics.estimation.incremental_time_s, metrics.estimation.full_time_s,
        100.0 * metrics.rsmt_cache_hit_rate,
        static_cast<unsigned long long>(metrics.estimation.drift_count));
  }
  return metrics;
}

RouteResult evaluate_routability(const Design& design,
                                 const RouterConfig& config,
                                 CongestionEstimator* warm) {
  GlobalRouter router(design, config,
                      warm ? &warm->tree_cache() : nullptr);
  return router.route();
}

}  // namespace puffer
