// Experiment harness: runs one benchmark through one placer and the
// neutral evaluation router, producing the Table II row quantities
// (HOF %, VOF %, routed WL, runtime seconds).
#pragma once

#include <string>

#include "core/baselines.h"
#include "core/flow.h"
#include "io/synthetic.h"

namespace puffer {

enum class PlacerKind { kCommercialProxy, kReplaceRc, kPuffer };

const char* placer_name(PlacerKind kind);

struct ExperimentResult {
  std::string benchmark;
  PlacerKind placer = PlacerKind::kPuffer;
  FlowMetrics flow;
  RouteResult route;

  double hof_pct() const { return route.overflow.hof_pct; }
  double vof_pct() const { return route.overflow.vof_pct; }
  double routed_wl() const { return route.wirelength; }
  double runtime_s() const { return flow.runtime_s; }
  // The paper's 1% pass criterion, per direction.
  bool pass_h() const { return hof_pct() <= 1.0; }
  bool pass_v() const { return vof_pct() <= 1.0; }
};

struct ExperimentConfig {
  PufferConfig puffer;                 // used by kPuffer
  ReplaceRcConfig replace_rc;          // used by kReplaceRc
  CommercialProxyConfig commercial;    // used by kCommercialProxy
  RouterConfig eval_router;            // identical neutral evaluator
};

// Logs the per-stage observability lines (legalization, detailed
// placement, orchestrator) for a finished flow. run_experiment calls it;
// the trial orchestrator calls it on the best trial's FlowMetrics so
// orchestrated runs report stage metrics through the same channel.
void log_flow_stage_metrics(const std::string& benchmark,
                            const char* placer_label, const FlowMetrics& flow);

// Places `design` in-place with the chosen placer and evaluates it.
ExperimentResult run_experiment(Design& design, PlacerKind kind,
                                const ExperimentConfig& config = {});

// Convenience: generate the synthetic benchmark, place, evaluate.
ExperimentResult run_benchmark(const SyntheticSpec& spec, PlacerKind kind,
                               const ExperimentConfig& config = {});

}  // namespace puffer
