// Comparator placers for the Table II experiments.
//
// * ReplaceRc: a RePlAce-style routability-driven placer [5] on the same
//   electrostatic engine. Its optimizer uses only the local congestion
//   ratio: cells in overflowed regions are inflated by a superlinear
//   function of the ratio, monotonically (no recycling, no multi-feature
//   mix), and legalization runs plain Abacus without inherited padding.
//
// * CommercialProxy: stand-in for the commercial placer (Innovus), which
//   cannot be redistributed. Same engine, but its routability optimizer
//   consults the *actual global router* each round (rip-up-and-reroute in
//   the loop) instead of the fast estimator, runs more rounds with
//   conservative spreading, and converges the placement further. This
//   preserves the behaviour that matters for the comparison: the highest
//   per-round congestion accuracy and the best wirelength, at the largest
//   runtime.
#pragma once

#include "core/flow.h"

namespace puffer {

struct ReplaceRcConfig {
  GpConfig gp;

  ReplaceRcConfig() {
    // RePlAce runs a fixed fine density grid regardless of design size
    // (vs. our engine's adaptive choice), one source of its longer
    // runtimes on small and mid-size designs. The finer grid raises the
    // measurable overflow floor, so the lambda latch must engage earlier
    // or congested designs never freeze and wirelength diverges.
    gp.bin_dim = 128;
    gp.max_iters = 1600;
    gp.lambda_freeze_overflow = 0.25;
  }
  CongestionConfig congestion;
  LegalizeConfig legal;
  InitialPlaceConfig init;
  double trigger_overflow = 0.28;  // optimizer trigger (fires above the lambda latch)
  int max_rounds = 6;
  double inflate_exponent = 2.0;  // ratio^k inflation
  double max_inflate = 1.8;       // width multiplier cap
  // Per-round cap on the added inflation area vs movable area (RePlAce's
  // inflation-budget control); excess is scaled down.
  double round_area_cap = 0.05;
  double final_overflow = 0.10;
};

FlowMetrics run_replace_rc(Design& design, const ReplaceRcConfig& config);

struct CommercialProxyConfig {
  GpConfig gp;
  CongestionConfig congestion;  // still used for net topologies/features
  RouterConfig router;          // in-the-loop router
  PaddingParams padding;        // conservative multi-feature padding
  LegalizeConfig legal;
  DiscretePaddingConfig discrete;
  InitialPlaceConfig init;
  double final_overflow = 0.09;

  CommercialProxyConfig();
};

FlowMetrics run_commercial_proxy(Design& design,
                                 const CommercialProxyConfig& config);

}  // namespace puffer
