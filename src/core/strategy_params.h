// Bridge between the generic strategy-exploration machinery and PUFFER's
// concrete strategy parameters (paper SS III-C): the explored parameter
// list with initial ranges, the relevance grouping used by Algorithm 3,
// and the mapping from an Assignment onto a PufferConfig.
//
// Following the paper, exploration is run on a *small* design with a
// routability problem (OR1200) and the resulting configuration is applied
// to the large benchmarks.
#pragma once

#include "core/experiment.h"
#include "explore/strategy_explorer.h"

namespace puffer {

// The 17 strategy parameters (feature weights, padding formula, ramp,
// triggers, estimator knobs, legalization discretization).
std::vector<ParamSpec> puffer_param_specs();

// Relevance groups over puffer_param_specs() indices: feature weights,
// padding magnitude/recycling, utilization ramp + triggers, estimation,
// legalization.
std::vector<std::vector<int>> puffer_param_groups();

// Applies an assignment (aligned with puffer_param_specs()) onto a base
// configuration.
PufferConfig apply_assignment(const PufferConfig& base, const Assignment& a);

// Black-box loss for strategy exploration: run PUFFER with the candidate
// strategy on the benchmark and return the total overflow ratio
// (HOF + VOF, in %) reported by the evaluation router.
double evaluate_strategy(const SyntheticSpec& spec, const Assignment& a,
                         const ExperimentConfig& base);

}  // namespace puffer
