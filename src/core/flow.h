// The PUFFER routability-driven placement flow (paper Fig. 2):
//
//   initial placement
//   -> global placement (electrostatic engine)
//        ... whenever the trigger conditions hold (density overflow < tau,
//            previous padding utilization < eta, round < xi):
//        -> routability optimizer: congestion estimation -> multi-feature
//           cell padding (with recycling + utilization control) -> the
//           padded areas feed back into the density engine
//   -> final wirelength-driven convergence
//   -> white-space-assisted legalization (discretized inherited padding
//      + Abacus)
//
// Evaluation (HOF/VOF/WL, Table II) is deliberately *outside* the flow:
// evaluate_routability() runs the independent global router on the final
// legal placement, mirroring the paper's use of the commercial router as
// a neutral evaluator.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/timer.h"
#include "congestion/estimator.h"
#include "dp/detailed_place.h"
#include "gp/engine.h"
#include "gp/initial_place.h"
#include "io/checkpoint.h"
#include "legal/abacus.h"
#include "legal/discrete_padding.h"
#include "legal/legality.h"
#include "netlist/design.h"
#include "padding/padding.h"
#include "router/global_router.h"

namespace puffer {

struct PufferConfig {
  GpConfig gp;
  CongestionConfig congestion;
  PaddingParams padding;
  LegalizeConfig legal;
  DiscretePaddingConfig discrete;
  InitialPlaceConfig init;
  DetailedPlaceConfig dp;
  // Run wirelength-driven detailed placement after legalization (off by
  // default: the paper's flow evaluates directly after legalization).
  bool run_dp = false;
  double final_overflow = 0.10;  // GP convergence target after padding
  // Worker threads for the parallel kernels: 0 = keep the current global
  // setting (PUFFER_THREADS env / hardware), 1 = exact serial path.
  // Results are bit-identical for any value (see docs/architecture.md).
  int num_threads = 0;
};

// Evaluation-router stage metrics: filled by the experiment harness from
// the RouteResult of the neutral evaluation that follows the flow (the
// router runs outside run(), so the flow itself leaves these zero).
struct RouterStageMetrics {
  double route_time_s = 0.0;  // total route() wall time
  double rrr_time_s = 0.0;    // rip-up-and-reroute phase wall time
  int segments = 0;
  int rerouted = 0;
  int rounds_used = 0;
};

// Orchestration-stage metrics: filled by the trial orchestrator
// (src/orchestrate/) on the best trial's FlowMetrics so the experiment
// CSV carries exploration observability next to the router/legalization
// stage numbers. All-zero for a plain (non-orchestrated) flow.
struct OrchestratorStageMetrics {
  int trials_run = 0;      // sessions evaluated to completion
  int trials_pruned = 0;   // sessions stopped by the early-stop rule
  int trials_resumed = 0;  // completed trials replayed from the journal
  double checkpoint_save_s = 0.0;     // snapshot encode+write wall time
  double checkpoint_restore_s = 0.0;  // snapshot read+decode (summed)
  // Busy-worker fraction of the trial phase: sum of session wall times /
  // (elapsed wall time x concurrency).
  double scheduler_utilization = 0.0;
  double prefix_s = 0.0;  // shared-prefix wall time (or restore time)
  double trials_s = 0.0;  // wall time of the concurrent trial phase
};

struct FlowMetrics {
  double hpwl_gp = 0.0;      // after global placement
  double hpwl_legal = 0.0;   // after legalization
  int padding_rounds = 0;
  double padding_area = 0.0;
  double runtime_s = 0.0;
  StageTimes stages;
  LegalityReport legality;
  // Incremental-estimation observability: ledger stats accumulated over
  // the padding rounds plus the RSMT topology-cache hit rate.
  IncrementalStats estimation;
  double rsmt_cache_hit_rate = 0.0;
  // Padding feature-pipeline observability: extraction wall time,
  // dirty-Gcell fraction, per-net cache hit rates, verified rebuilds
  // (see padding/features.h).
  PaddingStageMetrics padding_stage;
  RouterStageMetrics router;
  // Legalization / detailed-placement stage observability (wall time,
  // dirty-row fraction, displacement — see LegalizeResult /
  // DetailedPlaceResult). dp is all-zero unless run_dp is set.
  LegalizeResult legalize;
  DetailedPlaceResult dp;
  // Estimated total overflow (%) after each padding-round congestion
  // estimate, in round order — the rung metrics the early-stop pruner
  // reads.
  std::vector<double> round_est_overflow;
  // True when a round callback stopped the flow before final convergence
  // (the session was pruned; legalization was skipped).
  bool aborted_early = false;
  OrchestratorStageMetrics orchestrator;
  // Per-kernel wall-time breakdown of the global-placement Nesterov loop
  // (wirelength gradient, density rasterization, Poisson solve, gradient
  // assembly, step updates).
  GpKernelTimes gp_kernels;
};

// Per-padding-round progress hook for run_from(): called after each
// round's congestion estimate with the round index (0-based) and the
// estimated overflow. Returning false aborts the flow (skipping final
// convergence and legalization) — the early-stop pruning mechanism.
using RoundCallback =
    std::function<bool(int round, const OverflowStats& est)>;

// Richer per-round progress record for observers (the serve daemon's
// streaming telemetry): the round's estimated overflow, the current
// HPWL, and a read-only view of the round's congestion maps (valid only
// for the duration of the hook call). Observers must not mutate the
// design — the hook is called mid-flow and anything it changes would
// break the determinism contract.
struct FlowProgress {
  int round = 0;
  OverflowStats est;
  double hpwl = 0.0;
  const RoutingMaps* maps = nullptr;
};

// Returning false cancels the flow at the round boundary: the run stops
// before final convergence and legalization with aborted_early set, the
// same early-exit path the pruning callback uses. Cancellation is only
// observed at padding-round boundaries (a flow that never triggers
// padding runs to completion).
using ProgressHook = std::function<bool(const FlowProgress&)>;

class PufferFlow {
 public:
  PufferFlow(Design& design, PufferConfig config);

  // Runs the full flow; the design's cell positions are the result.
  FlowMetrics run();

  // --- staged flow (trial orchestration; see docs/architecture.md) ----
  //
  // run_prefix() executes the trial-invariant part of the flow — initial
  // placement plus global placement down to `fork_overflow` — and then
  // warms the congestion ledger with one estimate. It captures the fork
  // state (positions, RNG stream, serialized ledger) into *out.
  // `fork_overflow` must be >= the largest padding trigger tau any
  // continuation will use, so no padding round ever lands in the prefix.
  //
  // run_from() restores the fork state and runs the rest of the flow:
  // a fresh placement engine (the Nesterov state restarts from the
  // restored positions at the boundary — the staged contract), the
  // padding loop, final convergence and legalization. `cb` (optional)
  // is the per-round pruning hook.
  //
  // Bit-identity contract: run_from(s) produces identical results
  // whether `s` came from run_prefix() in the same process or through
  // save_snapshot()/load_snapshot() on disk — the codec is bit-exact and
  // the restore path is the same either way. Identical across
  // PUFFER_THREADS like every other kernel.
  FlowMetrics run_prefix(double fork_overflow, const RngStream& rng,
                         FlowSnapshot* out);
  FlowMetrics run_from(const FlowSnapshot& snapshot,
                       const RoundCallback& cb = nullptr);

  // Hash of the prefix-relevant configuration (initial placement, GP,
  // fork point). Trials may only fork from a snapshot whose prefix_key
  // matches their own flow config.
  std::uint64_t prefix_key(double fork_overflow) const;

  // The flow's congestion estimator (valid after run(); null before).
  // Exposed so the evaluation router can warm-start from the flow's RSMT
  // topology cache instead of rebuilding every net's tree.
  CongestionEstimator* estimator() { return estimator_.get(); }

  // The flow's legalizer. Its ledger persists across run() calls, so
  // repeat invocations on a perturbed design (padding re-tuning, TPE
  // trials re-running the flow) legalize incrementally.
  IncrementalLegalizer& legalizer() { return legalizer_; }

  // Installs a per-round telemetry/cancellation observer, invoked (after
  // the pruning callback, when both are set) at every padding-round
  // boundary of run() and run_from(). Read-only: installing a hook never
  // changes the flow's results.
  void set_progress_hook(ProgressHook hook) {
    progress_hook_ = std::move(hook);
  }

 private:
  // Shared body of run() / run_from(): `snapshot` non-null restores the
  // fork state instead of running initial placement.
  FlowMetrics run_internal(const FlowSnapshot* snapshot,
                           const RoundCallback& cb);

  Design& design_;
  PufferConfig config_;
  ProgressHook progress_hook_;
  // Owned by the flow so the demand ledger and topology cache persist
  // across padding rounds (and outlive run() for warm evaluation).
  std::unique_ptr<CongestionEstimator> estimator_;
  IncrementalLegalizer legalizer_;
};

// Runs the evaluation router on the design's current placement. `warm`
// (optional) shares the flow estimator's RSMT topology cache with the
// router, skipping tree construction for nets unmoved since the last
// estimate.
RouteResult evaluate_routability(const Design& design,
                                 const RouterConfig& config = {},
                                 CongestionEstimator* warm = nullptr);

}  // namespace puffer
