// The PUFFER routability-driven placement flow (paper Fig. 2):
//
//   initial placement
//   -> global placement (electrostatic engine)
//        ... whenever the trigger conditions hold (density overflow < tau,
//            previous padding utilization < eta, round < xi):
//        -> routability optimizer: congestion estimation -> multi-feature
//           cell padding (with recycling + utilization control) -> the
//           padded areas feed back into the density engine
//   -> final wirelength-driven convergence
//   -> white-space-assisted legalization (discretized inherited padding
//      + Abacus)
//
// Evaluation (HOF/VOF/WL, Table II) is deliberately *outside* the flow:
// evaluate_routability() runs the independent global router on the final
// legal placement, mirroring the paper's use of the commercial router as
// a neutral evaluator.
#pragma once

#include <memory>

#include "common/timer.h"
#include "congestion/estimator.h"
#include "dp/detailed_place.h"
#include "gp/engine.h"
#include "gp/initial_place.h"
#include "legal/abacus.h"
#include "legal/discrete_padding.h"
#include "legal/legality.h"
#include "netlist/design.h"
#include "padding/padding.h"
#include "router/global_router.h"

namespace puffer {

struct PufferConfig {
  GpConfig gp;
  CongestionConfig congestion;
  PaddingParams padding;
  LegalizeConfig legal;
  DiscretePaddingConfig discrete;
  InitialPlaceConfig init;
  DetailedPlaceConfig dp;
  // Run wirelength-driven detailed placement after legalization (off by
  // default: the paper's flow evaluates directly after legalization).
  bool run_dp = false;
  double final_overflow = 0.10;  // GP convergence target after padding
  // Worker threads for the parallel kernels: 0 = keep the current global
  // setting (PUFFER_THREADS env / hardware), 1 = exact serial path.
  // Results are bit-identical for any value (see docs/architecture.md).
  int num_threads = 0;
};

// Evaluation-router stage metrics: filled by the experiment harness from
// the RouteResult of the neutral evaluation that follows the flow (the
// router runs outside run(), so the flow itself leaves these zero).
struct RouterStageMetrics {
  double route_time_s = 0.0;  // total route() wall time
  double rrr_time_s = 0.0;    // rip-up-and-reroute phase wall time
  int segments = 0;
  int rerouted = 0;
  int rounds_used = 0;
};

struct FlowMetrics {
  double hpwl_gp = 0.0;      // after global placement
  double hpwl_legal = 0.0;   // after legalization
  int padding_rounds = 0;
  double padding_area = 0.0;
  double runtime_s = 0.0;
  StageTimes stages;
  LegalityReport legality;
  // Incremental-estimation observability: ledger stats accumulated over
  // the padding rounds plus the RSMT topology-cache hit rate.
  IncrementalStats estimation;
  double rsmt_cache_hit_rate = 0.0;
  RouterStageMetrics router;
  // Legalization / detailed-placement stage observability (wall time,
  // dirty-row fraction, displacement — see LegalizeResult /
  // DetailedPlaceResult). dp is all-zero unless run_dp is set.
  LegalizeResult legalize;
  DetailedPlaceResult dp;
};

class PufferFlow {
 public:
  PufferFlow(Design& design, PufferConfig config);

  // Runs the full flow; the design's cell positions are the result.
  FlowMetrics run();

  // The flow's congestion estimator (valid after run(); null before).
  // Exposed so the evaluation router can warm-start from the flow's RSMT
  // topology cache instead of rebuilding every net's tree.
  CongestionEstimator* estimator() { return estimator_.get(); }

  // The flow's legalizer. Its ledger persists across run() calls, so
  // repeat invocations on a perturbed design (padding re-tuning, TPE
  // trials re-running the flow) legalize incrementally.
  IncrementalLegalizer& legalizer() { return legalizer_; }

 private:
  Design& design_;
  PufferConfig config_;
  // Owned by the flow so the demand ledger and topology cache persist
  // across padding rounds (and outlive run() for warm evaluation).
  std::unique_ptr<CongestionEstimator> estimator_;
  IncrementalLegalizer legalizer_;
};

// Runs the evaluation router on the design's current placement. `warm`
// (optional) shares the flow estimator's RSMT topology cache with the
// router, skipping tree construction for nets unmoved since the last
// estimate.
RouteResult evaluate_routability(const Design& design,
                                 const RouterConfig& config = {},
                                 CongestionEstimator* warm = nullptr);

}  // namespace puffer
