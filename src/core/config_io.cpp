#include "core/config_io.h"

#include <cmath>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>

#include "common/str_util.h"

namespace puffer {
namespace {

// One registry drives both directions: name -> {getter, setter}.
struct Field {
  std::function<double(const PufferConfig&)> get;
  std::function<void(PufferConfig&, double)> set;
  const char* comment;
};

const std::map<std::string, Field>& registry() {
  static const std::map<std::string, Field> fields = {
      // Padding formula (Eq. 14).
      {"padding.alpha_local_cg",
       {[](const PufferConfig& c) { return c.padding.alpha[0]; },
        [](PufferConfig& c, double v) { c.padding.alpha[0] = v; },
        "feature weight: local congestion"}},
      {"padding.alpha_local_pin",
       {[](const PufferConfig& c) { return c.padding.alpha[1]; },
        [](PufferConfig& c, double v) { c.padding.alpha[1] = v; },
        "feature weight: local pin density"}},
      {"padding.alpha_sur_cg",
       {[](const PufferConfig& c) { return c.padding.alpha[2]; },
        [](PufferConfig& c, double v) { c.padding.alpha[2] = v; },
        "feature weight: surrounding congestion (CNN)"}},
      {"padding.alpha_sur_pin",
       {[](const PufferConfig& c) { return c.padding.alpha[3]; },
        [](PufferConfig& c, double v) { c.padding.alpha[3] = v; },
        "feature weight: surrounding pin density (CNN)"}},
      {"padding.alpha_pin_cg",
       {[](const PufferConfig& c) { return c.padding.alpha[4]; },
        [](PufferConfig& c, double v) { c.padding.alpha[4] = v; },
        "feature weight: pin congestion (GNN)"}},
      {"padding.beta",
       {[](const PufferConfig& c) { return c.padding.beta; },
        [](PufferConfig& c, double v) { c.padding.beta = v; },
        "formula offset"}},
      {"padding.mu",
       {[](const PufferConfig& c) { return c.padding.mu; },
        [](PufferConfig& c, double v) { c.padding.mu = v; },
        "padding magnitude"}},
      {"padding.zeta",
       {[](const PufferConfig& c) { return c.padding.zeta; },
        [](PufferConfig& c, double v) { c.padding.zeta = v; },
        "recycling effort (Eq. 15)"}},
      {"padding.pu_low",
       {[](const PufferConfig& c) { return c.padding.pu_low; },
        [](PufferConfig& c, double v) { c.padding.pu_low = v; },
        "utilization ramp start (Eq. 16)"}},
      {"padding.pu_high",
       {[](const PufferConfig& c) { return c.padding.pu_high; },
        [](PufferConfig& c, double v) { c.padding.pu_high = v; },
        "utilization ramp end (Eq. 16)"}},
      {"padding.xi",
       {[](const PufferConfig& c) { return static_cast<double>(c.padding.xi); },
        [](PufferConfig& c, double v) { c.padding.xi = static_cast<int>(std::llround(v)); },
        "max optimization rounds"}},
      {"padding.tau",
       {[](const PufferConfig& c) { return c.padding.tau; },
        [](PufferConfig& c, double v) { c.padding.tau = v; },
        "density-overflow trigger"}},
      {"padding.eta",
       {[](const PufferConfig& c) { return c.padding.eta; },
        [](PufferConfig& c, double v) { c.padding.eta = v; },
        "utilization trigger threshold"}},
      {"padding.spacing_iters",
       {[](const PufferConfig& c) { return static_cast<double>(c.padding.spacing_iters); },
        [](PufferConfig& c, double v) { c.padding.spacing_iters = static_cast<int>(std::llround(v)); },
        "GP iterations between rounds"}},
      {"padding.kernel_gcells",
       {[](const PufferConfig& c) { return static_cast<double>(c.padding.feature.kernel_gcells); },
        [](PufferConfig& c, double v) { c.padding.feature.kernel_gcells = static_cast<int>(std::llround(v)); },
        "CNN kernel margin (Gcells)"}},
      {"padding.z_candidates",
       {[](const PufferConfig& c) { return static_cast<double>(c.padding.feature.z_candidates); },
        [](PufferConfig& c, double v) { c.padding.feature.z_candidates = static_cast<int>(std::llround(v)); },
        "Z-path samples for pin congestion"}},
      {"padding.use_legacy_extractor",
       {[](const PufferConfig& c) { return c.padding.feature.use_legacy_extractor ? 1.0 : 0.0; },
        [](PufferConfig& c, double v) { c.padding.feature.use_legacy_extractor = v >= 0.5; },
        "0/1: serial oracle feature path"}},
      {"padding.feature_incremental",
       {[](const PufferConfig& c) { return c.padding.feature.incremental ? 1.0 : 0.0; },
        [](PufferConfig& c, double v) { c.padding.feature.incremental = v >= 0.5; },
        "0/1: reuse maps across rounds"}},
      {"padding.feature_rebuild_interval",
       {[](const PufferConfig& c) { return static_cast<double>(c.padding.feature.full_rebuild_interval); },
        [](PufferConfig& c, double v) { c.padding.feature.full_rebuild_interval = static_cast<int>(std::llround(v)); },
        "extracts between full rebuilds"}},
      {"padding.feature_verify_rebuild",
       {[](const PufferConfig& c) { return c.padding.feature.verify_rebuild ? 1.0 : 0.0; },
        [](PufferConfig& c, double v) { c.padding.feature.verify_rebuild = v >= 0.5; },
        "0/1: check drift on full rebuilds"}},
      // Congestion estimation.
      {"congestion.pin_penalty",
       {[](const PufferConfig& c) { return c.congestion.pin_penalty; },
        [](PufferConfig& c, double v) { c.congestion.pin_penalty = v; },
        "local-net demand per pin"}},
      {"congestion.expand_radius",
       {[](const PufferConfig& c) { return static_cast<double>(c.congestion.expand_radius); },
        [](PufferConfig& c, double v) { c.congestion.expand_radius = static_cast<int>(std::llround(v)); },
        "detour expansion radius (Gcells)"}},
      {"congestion.detour_expansion",
       {[](const PufferConfig& c) { return c.congestion.enable_detour_expansion ? 1.0 : 0.0; },
        [](PufferConfig& c, double v) { c.congestion.enable_detour_expansion = v >= 0.5; },
        "0/1: detour-imitating expansion"}},
      {"congestion.rows_per_gcell",
       {[](const PufferConfig& c) { return c.congestion.rows_per_gcell; },
        [](PufferConfig& c, double v) { c.congestion.rows_per_gcell = v; },
        "Gcell height in rows"}},
      {"congestion.congested_ratio",
       {[](const PufferConfig& c) { return c.congestion.congested_ratio; },
        [](PufferConfig& c, double v) { c.congestion.congested_ratio = v; },
        "expansion trigger demand/capacity"}},
      // Global placement.
      {"gp.target_density",
       {[](const PufferConfig& c) { return c.gp.target_density; },
        [](PufferConfig& c, double v) { c.gp.target_density = v; },
        "equilibrium density"}},
      {"gp.max_iters",
       {[](const PufferConfig& c) { return static_cast<double>(c.gp.max_iters); },
        [](PufferConfig& c, double v) { c.gp.max_iters = static_cast<int>(std::llround(v)); },
        "Nesterov iteration cap"}},
      {"gp.bin_dim",
       {[](const PufferConfig& c) { return static_cast<double>(c.gp.bin_dim); },
        [](PufferConfig& c, double v) { c.gp.bin_dim = static_cast<int>(std::llround(v)); },
        "density bins per axis (0 = auto)"}},
      {"gp.lambda_freeze_overflow",
       {[](const PufferConfig& c) { return c.gp.lambda_freeze_overflow; },
        [](PufferConfig& c, double v) { c.gp.lambda_freeze_overflow = v; },
        "lambda latch threshold"}},
      // Legalization.
      {"discrete.theta",
       {[](const PufferConfig& c) { return c.discrete.theta; },
        [](PufferConfig& c, double v) { c.discrete.theta = v; },
        "discrete padding levels (Eq. 17)"}},
      {"discrete.max_pad_area_frac",
       {[](const PufferConfig& c) { return c.discrete.max_pad_area_frac; },
        [](PufferConfig& c, double v) { c.discrete.max_pad_area_frac = v; },
        "legalization padding cap"}},
      {"legal.max_row_search",
       {[](const PufferConfig& c) { return static_cast<double>(c.legal.max_row_search); },
        [](PufferConfig& c, double v) { c.legal.max_row_search = static_cast<int>(std::llround(v)); },
        "Abacus row search width"}},
      // Flow.
      {"flow.final_overflow",
       {[](const PufferConfig& c) { return c.final_overflow; },
        [](PufferConfig& c, double v) { c.final_overflow = v; },
        "post-padding convergence target"}},
  };
  return fields;
}

}  // namespace

std::string config_to_text(const PufferConfig& config) {
  std::ostringstream os;
  os << "# PUFFER strategy configuration\n";
  for (const auto& [key, field] : registry()) {
    os << key << " = " << field.get(config) << "  # " << field.comment << '\n';
  }
  return os.str();
}

PufferConfig config_from_text(const std::string& text,
                              const PufferConfig& base) {
  PufferConfig config = base;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::string_view t = trim(line);
    if (t.empty()) continue;
    const auto eq = t.find('=');
    if (eq == std::string_view::npos) {
      throw ConfigError("line " + std::to_string(line_no) + ": expected key = value");
    }
    const std::string key{trim(t.substr(0, eq))};
    const std::string value{trim(t.substr(eq + 1))};
    const auto it = registry().find(key);
    if (it == registry().end()) {
      throw ConfigError("line " + std::to_string(line_no) + ": unknown key '" + key + "'");
    }
    try {
      std::size_t used = 0;
      const double v = std::stod(value, &used);
      if (used != value.size()) throw std::invalid_argument(value);
      it->second.set(config, v);
    } catch (const std::exception&) {
      throw ConfigError("line " + std::to_string(line_no) + ": bad value '" +
                        value + "' for " + key);
    }
  }
  return config;
}

void save_config(const PufferConfig& config, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw ConfigError("cannot write " + path);
  out << config_to_text(config);
}

PufferConfig load_config(const std::string& path, const PufferConfig& base) {
  std::ifstream in(path);
  if (!in) throw ConfigError("cannot read " + path);
  std::stringstream ss;
  ss << in.rdbuf();
  return config_from_text(ss.str(), base);
}

}  // namespace puffer
