#include "core/baselines.h"

#include <algorithm>
#include <cmath>

#include "common/logger.h"

namespace puffer {

namespace {
constexpr const char* kTag = "baseline";
}

FlowMetrics run_replace_rc(Design& design, const ReplaceRcConfig& config) {
  FlowMetrics metrics;
  Timer total;

  {
    ScopedStageTimer t(metrics.stages, "initial_place");
    initial_place(design, config.init);
  }

  EPlaceEngine engine(design, config.gp);
  CongestionEstimator estimator(design, config.congestion);
  const auto& movable = engine.movable_cells();
  std::vector<double> pad(movable.size(), 0.0);

  {
    ScopedStageTimer t(metrics.stages, "global_place");
    int rounds = 0;
    while (true) {
      engine.run_to_overflow(config.trigger_overflow);
      if (engine.density_overflow() >= config.trigger_overflow ||
          rounds >= config.max_rounds) {
        break;
      }
      ScopedStageTimer t2(metrics.stages, "routability_opt");
      const CongestionResult congestion = estimator.estimate();
      const Map2D<double> cg = congestion.maps.cg_map();
      // Local-ratio inflation: width multiplier = ratio^k for overflowed
      // cells, monotone across rounds (RePlAce-style), with a per-round
      // budget on the added area.
      std::vector<double> want(movable.size(), 0.0);
      double added = 0.0;
      for (std::size_t i = 0; i < movable.size(); ++i) {
        const Cell& c = design.cells[static_cast<std::size_t>(movable[i])];
        GcellIndex lo, hi;
        congestion.maps.grid.range_of(c.rect(), lo, hi);
        double worst = 0.0;
        for (int gy = lo.gy; gy <= hi.gy; ++gy) {
          for (int gx = lo.gx; gx <= hi.gx; ++gx) {
            worst = std::max(worst, cg.at(gx, gy));
          }
        }
        if (worst <= 0.0) continue;
        const double ratio = 1.0 + worst;  // demand/capacity
        const double mult = std::min(std::pow(ratio, config.inflate_exponent),
                                     config.max_inflate);
        const double target_pad = (mult - 1.0) * c.width;
        if (target_pad > pad[i]) {
          want[i] = target_pad - pad[i];
          added += want[i] * c.height;
        }
      }
      const double budget = config.round_area_cap * design.movable_area();
      const double scale = added > budget ? budget / added : 1.0;
      for (std::size_t i = 0; i < movable.size(); ++i) {
        pad[i] += want[i] * scale;
      }
      engine.set_padding(pad);
      ++rounds;
      metrics.padding_rounds = rounds;
      PUFFER_LOG_INFO(kTag, "replace_rc inflation round %d at iter %d "
                      "(added %.3g area, scale %.2f)",
                      rounds, engine.iteration(), added * scale, scale);
      // RePlAce's routability mode fully re-converges the placement after
      // every inflation round (place -> estimate -> inflate -> re-place),
      // the main source of its longer runtimes.
      engine.run_to_overflow(config.final_overflow);
    }
    engine.run_to_overflow(config.final_overflow);
  }
  metrics.hpwl_gp = design.total_hpwl();

  {
    ScopedStageTimer t(metrics.stages, "legalize");
    legalize(design, {}, config.legal);
  }
  metrics.hpwl_legal = design.total_hpwl();
  metrics.legality = check_legality(design);
  metrics.runtime_s = total.elapsed_seconds();
  return metrics;
}

CommercialProxyConfig::CommercialProxyConfig() {
  // Conservative, accuracy-first defaults: the optimizer fires late (on a
  // nearly-spread placement, where routed maps are meaningful), runs more
  // rounds with a slower ramp, and the in-loop router works harder.
  padding.xi = 12;
  padding.tau = 0.25;
  padding.pu_low = 0.01;
  padding.pu_high = 0.06;
  padding.mu = 4.0;
  padding.spacing_iters = 45;
  router.rr_rounds = 8;
  router.bbox_margin = 10;
  gp.max_iters = 1600;
}

FlowMetrics run_commercial_proxy(Design& design,
                                 const CommercialProxyConfig& config) {
  FlowMetrics metrics;
  Timer total;

  {
    ScopedStageTimer t(metrics.stages, "initial_place");
    initial_place(design, config.init);
  }

  EPlaceEngine engine(design, config.gp);
  PaddingEngine padder(design, engine.movable_cells(), config.padding);
  CongestionEstimator estimator(design, config.congestion);

  {
    ScopedStageTimer t(metrics.stages, "global_place");
    while (true) {
      engine.run_to_overflow(config.padding.tau);
      if (!padder.should_trigger(engine.density_overflow())) break;
      ScopedStageTimer t2(metrics.stages, "routability_opt");
      // Estimator supplies the topologies; the in-loop global router
      // replaces the probabilistic demand with actual routed demand.
      CongestionResult congestion = estimator.estimate();
      GlobalRouter router(design, config.router);
      const RouteResult routed = router.route();
      if (routed.maps.grid.nx() == congestion.maps.grid.nx() &&
          routed.maps.grid.ny() == congestion.maps.grid.ny()) {
        congestion.maps.dmd_h = routed.maps.dmd_h;
        congestion.maps.dmd_v = routed.maps.dmd_v;
        congestion.maps.cap_h = routed.maps.cap_h;
        congestion.maps.cap_v = routed.maps.cap_v;
      }
      const std::vector<double>& pad = padder.update(congestion);
      engine.set_padding(pad);
      PUFFER_LOG_INFO(kTag, "proxy padding round %d at iter %d (router OF %.3f%%)",
                      padder.attempts(), engine.iteration(),
                      routed.overflow.total_pct());
      for (int k = 0; k < config.padding.spacing_iters; ++k) {
        if (!engine.step()) break;
      }
      engine.sync_to_design();
    }
    engine.run_to_overflow(config.final_overflow);
  }
  metrics.hpwl_gp = design.total_hpwl();
  metrics.padding_rounds = padder.rounds();

  {
    ScopedStageTimer t(metrics.stages, "legalize");
    std::vector<double> pad_by_cell(design.cells.size(), 0.0);
    const auto& movable = engine.movable_cells();
    for (std::size_t i = 0; i < movable.size(); ++i) {
      pad_by_cell[static_cast<std::size_t>(movable[i])] = padder.padding()[i];
    }
    const std::vector<int> levels =
        discretize_padding(design, pad_by_cell, config.discrete);
    legalize(design, levels, config.legal);
  }
  metrics.hpwl_legal = design.total_hpwl();
  metrics.legality = check_legality(design);
  metrics.runtime_s = total.elapsed_seconds();
  return metrics;
}

}  // namespace puffer
