#include "core/strategy_params.h"

namespace puffer {

std::vector<ParamSpec> puffer_param_specs() {
  using K = ParamKind;
  return {
      {"alpha_local_cg", K::kContinuous, 0.0, 3.0},
      {"alpha_local_pin", K::kContinuous, 0.0, 2.0},
      {"alpha_sur_cg", K::kContinuous, 0.0, 3.0},
      {"alpha_sur_pin", K::kContinuous, 0.0, 2.0},
      {"alpha_pin_cg", K::kContinuous, 0.0, 1.5},
      {"beta", K::kContinuous, 0.0, 2.0},
      {"mu", K::kContinuous, 1.0, 12.0},
      {"zeta", K::kContinuous, 1.0, 10.0},
      {"pu_low", K::kContinuous, 0.005, 0.05},
      {"pu_high", K::kContinuous, 0.05, 0.25},
      {"xi", K::kInteger, 4.0, 12.0},
      {"tau", K::kContinuous, 0.15, 0.45},
      {"pin_penalty", K::kContinuous, 0.0, 0.15},
      {"expand_radius", K::kInteger, 1.0, 8.0},
      {"detour_expansion", K::kCategorical, 0.0, 2.0},  // off / on
      {"kernel_gcells", K::kInteger, 1.0, 4.0},
      {"theta", K::kContinuous, 4.0, 16.0},
  };
}

std::vector<std::vector<int>> puffer_param_groups() {
  return {
      {0, 1, 2, 3, 4, 5},  // feature weights + offset
      {6, 7},              // padding magnitude + recycling
      {8, 9, 10, 11},      // utilization ramp + triggers
      {12, 13, 14},        // congestion estimation
      {15, 16},            // kernel span + legalization discretization
  };
}

PufferConfig apply_assignment(const PufferConfig& base, const Assignment& a) {
  PufferConfig cfg = base;
  for (int k = 0; k < FeatureVector::kCount; ++k) {
    cfg.padding.alpha[k] = a[static_cast<std::size_t>(k)];
  }
  cfg.padding.beta = a[5];
  cfg.padding.mu = a[6];
  cfg.padding.zeta = a[7];
  cfg.padding.pu_low = a[8];
  cfg.padding.pu_high = std::max(a[9], a[8] + 0.01);
  cfg.padding.xi = static_cast<int>(a[10]);
  cfg.padding.tau = a[11];
  cfg.congestion.pin_penalty = a[12];
  cfg.congestion.expand_radius = static_cast<int>(a[13]);
  cfg.congestion.enable_detour_expansion = a[14] >= 0.5;
  cfg.padding.feature.kernel_gcells = static_cast<int>(a[15]);
  cfg.discrete.theta = a[16];
  return cfg;
}

double evaluate_strategy(const SyntheticSpec& spec, const Assignment& a,
                         const ExperimentConfig& base) {
  ExperimentConfig cfg = base;
  cfg.puffer = apply_assignment(base.puffer, a);
  const ExperimentResult r = run_benchmark(spec, PlacerKind::kPuffer, cfg);
  return r.hof_pct() + r.vof_pct();
}

}  // namespace puffer
