#include "core/experiment.h"

#include "common/logger.h"

namespace puffer {

const char* placer_name(PlacerKind kind) {
  switch (kind) {
    case PlacerKind::kCommercialProxy:
      return "Commercial_Proxy";
    case PlacerKind::kReplaceRc:
      return "RePlAce_RC";
    case PlacerKind::kPuffer:
      return "PUFFER";
  }
  return "?";
}

ExperimentResult run_experiment(Design& design, PlacerKind kind,
                                const ExperimentConfig& config) {
  ExperimentResult result;
  result.benchmark = design.name;
  result.placer = kind;
  switch (kind) {
    case PlacerKind::kPuffer: {
      PufferFlow flow(design, config.puffer);
      result.flow = flow.run();
      // Warm evaluation: the router reuses the flow's RSMT topology cache
      // for nets legalization left (quantized-)unmoved.
      result.route =
          evaluate_routability(design, config.eval_router, flow.estimator());
      break;
    }
    case PlacerKind::kReplaceRc:
      result.flow = run_replace_rc(design, config.replace_rc);
      result.route = evaluate_routability(design, config.eval_router);
      break;
    case PlacerKind::kCommercialProxy:
      result.flow = run_commercial_proxy(design, config.commercial);
      result.route = evaluate_routability(design, config.eval_router);
      break;
  }
  result.flow.router.route_time_s = result.route.route_time_s;
  result.flow.router.rrr_time_s = result.route.rrr_time_s;
  result.flow.router.segments = result.route.segments;
  result.flow.router.rerouted = result.route.rerouted;
  result.flow.router.rounds_used = result.route.rounds_used;
  result.flow.stages.add("evaluate_route", result.route.route_time_s);
  PUFFER_LOG_INFO("experiment",
                  "%s / %s: HOF %.2f%% VOF %.2f%% WL %.4g RT %.1fs (route "
                  "%.2fs, %d segs, %d rerouted over %d rounds)",
                  result.benchmark.c_str(), placer_name(kind),
                  result.hof_pct(), result.vof_pct(), result.routed_wl(),
                  result.runtime_s(), result.route.route_time_s,
                  result.route.segments, result.route.rerouted,
                  result.route.rounds_used);
  log_flow_stage_metrics(result.benchmark, placer_name(kind), result.flow);
  return result;
}

void log_flow_stage_metrics(const std::string& benchmark,
                            const char* placer_label,
                            const FlowMetrics& flow) {
  const LegalizeResult& lg = flow.legalize;
  if (lg.placed > 0 || lg.failed_cells > 0) {
    if (flow.dp.passes > 0) {
      PUFFER_LOG_INFO("experiment",
                      "%s / %s: legalize %s %.3fs (%d placed, %d failed, "
                      "avg disp %.3g, %.0f%% rows rebuilt), dp %.3fs "
                      "(%d moves, %.2f%% hpwl)",
                      benchmark.c_str(), placer_label,
                      lg.incremental ? "incr" : "full", lg.time_s, lg.placed,
                      lg.failed_cells, lg.avg_displacement(),
                      100.0 * lg.dirty_row_frac(), flow.dp.time_s,
                      flow.dp.accepted_moves, flow.dp.improvement_pct());
    } else {
      PUFFER_LOG_INFO("experiment",
                      "%s / %s: legalize %s %.3fs (%d placed, %d failed, "
                      "avg disp %.3g, %.0f%% rows rebuilt), dp off",
                      benchmark.c_str(), placer_label,
                      lg.incremental ? "incr" : "full", lg.time_s, lg.placed,
                      lg.failed_cells, lg.avg_displacement(),
                      100.0 * lg.dirty_row_frac());
    }
  }
  const PaddingStageMetrics& pf = flow.padding_stage;
  if (pf.extracts > 0) {
    PUFFER_LOG_INFO("experiment",
                    "%s / %s: padding features %.3fs over %d extracts "
                    "(%d full), %.1f%% gcells dirty, incidence hit %.0f%%, "
                    "drift %llu",
                    benchmark.c_str(), placer_label, pf.feature_time_s,
                    pf.extracts, pf.full_rebuilds,
                    100.0 * pf.dirty_gcell_frac(),
                    100.0 * pf.incidence_hit_rate(),
                    static_cast<unsigned long long>(pf.drift_count));
  }
  const OrchestratorStageMetrics& orch = flow.orchestrator;
  if (orch.trials_run > 0 || orch.trials_resumed > 0 ||
      orch.trials_pruned > 0) {
    PUFFER_LOG_INFO("experiment",
                    "%s / %s: orchestrator %d run / %d pruned / %d resumed, "
                    "prefix %.2fs, trials %.2fs, ckpt save %.0fms restore "
                    "%.0fms, utilization %.0f%%",
                    benchmark.c_str(), placer_label, orch.trials_run,
                    orch.trials_pruned, orch.trials_resumed, orch.prefix_s,
                    orch.trials_s, 1000.0 * orch.checkpoint_save_s,
                    1000.0 * orch.checkpoint_restore_s,
                    100.0 * orch.scheduler_utilization);
  }
}

ExperimentResult run_benchmark(const SyntheticSpec& spec, PlacerKind kind,
                               const ExperimentConfig& config) {
  Design design = generate_synthetic(spec);
  return run_experiment(design, kind, config);
}

}  // namespace puffer
