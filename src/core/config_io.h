// Textual (key = value) serialization of the PUFFER strategy
// configuration, so explored strategies can be saved, diffed and fed
// back to the CLI (`puffer_place --config strategy.cfg`).
//
// Format: one `key = value` per line, `#` comments, unknown keys are an
// error (typos must not silently fall back to defaults). Keys cover the
// strategy-relevant fields of PufferConfig; everything else keeps the
// value of the `base` configuration passed to the parser.
#pragma once

#include <stdexcept>
#include <string>

#include "core/flow.h"

namespace puffer {

struct ConfigError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

// Serializes the strategy-relevant fields, with comments.
std::string config_to_text(const PufferConfig& config);

// Parses `text`, overriding fields of `base`. Throws ConfigError on
// unknown keys or malformed values.
PufferConfig config_from_text(const std::string& text,
                              const PufferConfig& base = {});

void save_config(const PufferConfig& config, const std::string& path);
PufferConfig load_config(const std::string& path,
                         const PufferConfig& base = {});

}  // namespace puffer
