#include "fft/fft.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace puffer {

bool is_pow2(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft(std::vector<std::complex<double>>& a, bool invert) {
  const std::size_t n = a.size();
  if (!is_pow2(n)) throw std::invalid_argument("fft size must be a power of 2");
  if (n == 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang =
        2.0 * std::numbers::pi / static_cast<double>(len) * (invert ? 1.0 : -1.0);
    const std::complex<double> wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = a[i + k];
        const std::complex<double> v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (invert) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& x : a) x *= inv_n;
  }
}

}  // namespace puffer
