// Iterative radix-2 complex FFT.
//
// This is the computational backend for the cosine/sine transforms used by
// the electrostatic placement solver (see dct.h). Sizes must be powers of
// two; the density grid is chosen accordingly.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace puffer {

// True if n is a power of two (n >= 1).
bool is_pow2(std::size_t n);

// Smallest power of two >= n (n >= 1).
std::size_t next_pow2(std::size_t n);

// In-place FFT. `invert` computes the inverse transform including the 1/N
// scaling, so fft(fft(x), invert=true) == x up to rounding.
// Throws std::invalid_argument when the size is not a power of two.
void fft(std::vector<std::complex<double>>& a, bool invert);

}  // namespace puffer
