#include "fft/dct.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "common/parallel.h"
#include "fft/fft.h"

namespace puffer {
namespace {

using cd = std::complex<double>;

// DCT-II via a single N-point complex FFT on the even/odd reordering
// v[n] = x[2n], v[N-1-n] = x[2n+1]:
//   dct2(x)[k] = Re( exp(-i*pi*k/(2N)) * FFT(v)[k] ).
std::vector<double> dct2_impl(const std::vector<double>& x) {
  const std::size_t n = x.size();
  if (!is_pow2(n)) throw std::invalid_argument("dct2 size must be a power of 2");
  std::vector<cd> v(n);
  for (std::size_t i = 0; i < n / 2; ++i) {
    v[i] = x[2 * i];
    v[n - 1 - i] = x[2 * i + 1];
  }
  if (n == 1) v[0] = x[0];
  fft(v, false);
  std::vector<double> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    const double ang = -std::numbers::pi * static_cast<double>(k) /
                       (2.0 * static_cast<double>(n));
    out[k] = (v[k] * cd(std::cos(ang), std::sin(ang))).real();
  }
  return out;
}

// Inverse of dct2 (so idct(dct2(x)) == x): reconstruct the spectrum of the
// reordered sequence and run one inverse FFT.
std::vector<double> idct_impl(const std::vector<double>& X) {
  const std::size_t n = X.size();
  if (!is_pow2(n)) throw std::invalid_argument("idct size must be a power of 2");
  if (n == 1) return {X[0]};
  std::vector<cd> v(n);
  v[0] = cd(X[0], 0.0);
  for (std::size_t k = 1; k < n; ++k) {
    const double ang = std::numbers::pi * static_cast<double>(k) /
                       (2.0 * static_cast<double>(n));
    v[k] = cd(std::cos(ang), std::sin(ang)) * cd(X[k], -X[n - k]);
  }
  fft(v, true);
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n / 2; ++i) {
    out[2 * i] = v[i].real();
    out[2 * i + 1] = v[n - 1 - i].real();
  }
  return out;
}

}  // namespace

std::vector<double> dct2(const std::vector<double>& x) { return dct2_impl(x); }

std::vector<double> dct3_raw(const std::vector<double>& X) {
  // dct3_raw(X) = (N/2) * idct(X'') with X''[0] = 2*X[0]; see header.
  const std::size_t n = X.size();
  std::vector<double> scaled = X;
  if (!scaled.empty()) scaled[0] *= 2.0;
  std::vector<double> out = idct_impl(scaled);
  const double s = static_cast<double>(n) / 2.0;
  for (double& v : out) v *= s;
  return out;
}

std::vector<double> idxst_raw(const std::vector<double>& X) {
  // sin(pi*k*(2m+1)/(2N)) = (-1)^m * cos(pi*(N-k)*(2m+1)/(2N)), so the
  // shifted sine series is a flipped cosine series with alternating signs.
  const std::size_t n = X.size();
  std::vector<double> flipped(n, 0.0);
  for (std::size_t k = 1; k < n; ++k) flipped[k] = X[n - k];
  std::vector<double> out = dct3_raw(flipped);
  for (std::size_t m = 1; m < n; m += 2) out[m] = -out[m];
  return out;
}

namespace {

using Transform1D = std::vector<double> (*)(const std::vector<double>&);

std::vector<double> apply_2d(const std::vector<double>& data, std::size_t nx,
                             std::size_t ny, Transform1D along_x,
                             Transform1D along_y) {
  if (data.size() != nx * ny) {
    throw std::invalid_argument("2d transform: size mismatch");
  }
  // The 1D transforms along rows (then columns) are independent and write
  // disjoint output slices, so both passes fan out per line.
  std::vector<double> tmp(nx * ny);
  par::parallel_for(
      0, static_cast<std::int64_t>(ny), 8,
      [&](std::int64_t b, std::int64_t e, int) {
        std::vector<double> row(nx);
        for (std::int64_t ni = b; ni < e; ++ni) {
          const std::size_t n = static_cast<std::size_t>(ni);
          for (std::size_t m = 0; m < nx; ++m) row[m] = data[n * nx + m];
          const std::vector<double> tr = along_x(row);
          for (std::size_t m = 0; m < nx; ++m) tmp[n * nx + m] = tr[m];
        }
      });
  std::vector<double> out(nx * ny);
  par::parallel_for(
      0, static_cast<std::int64_t>(nx), 8,
      [&](std::int64_t b, std::int64_t e, int) {
        std::vector<double> col(ny);
        for (std::int64_t mi = b; mi < e; ++mi) {
          const std::size_t m = static_cast<std::size_t>(mi);
          for (std::size_t n = 0; n < ny; ++n) col[n] = tmp[n * nx + m];
          const std::vector<double> tr = along_y(col);
          for (std::size_t n = 0; n < ny; ++n) out[n * nx + m] = tr[n];
        }
      });
  return out;
}

}  // namespace

std::vector<double> dct2_2d(const std::vector<double>& data, std::size_t nx,
                            std::size_t ny) {
  return apply_2d(data, nx, ny, &dct2, &dct2);
}

std::vector<double> dct3_raw_2d(const std::vector<double>& data, std::size_t nx,
                                std::size_t ny) {
  return apply_2d(data, nx, ny, &dct3_raw, &dct3_raw);
}

std::vector<double> idxst_dct3_2d(const std::vector<double>& data,
                                  std::size_t nx, std::size_t ny) {
  return apply_2d(data, nx, ny, &idxst_raw, &dct3_raw);
}

std::vector<double> dct3_idxst_2d(const std::vector<double>& data,
                                  std::size_t nx, std::size_t ny) {
  return apply_2d(data, nx, ny, &dct3_raw, &idxst_raw);
}

}  // namespace puffer
